//! Cross-registry hygiene: how consistent are the IRR and the RPKI?
//!
//! §8.2 of the paper traces large MANRS networks' poor IRR validity to
//! "networks that adopt RPKI leaving IRR records unmaintained, causing
//! BGP announcements to become IRR Invalid and creating inconsistency
//! between IRR and RPKI records" — the phenomenon the same authors
//! measured in *IRR Hygiene in the RPKI Era* (PAM '22). This example
//! quantifies that inconsistency on a generated world: the joint
//! (RPKI status × IRR status) distribution of announcements, and where
//! the disagreeing pairs live.
//!
//! ```sh
//! cargo run --example registry_hygiene
//! ```

use manrs_ecosystem::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let world = ScenarioWorld::builder(ScenarioConfig::small(77)).build();
    let members = world.member_asns();

    // Joint status distribution.
    let mut joint: BTreeMap<(RpkiStatus, IrrStatus), usize> = BTreeMap::new();
    for a in &world.announcements {
        *joint.entry((a.rpki, a.irr)).or_insert(0) += 1;
    }
    let total = world.announcements.len();
    println!("joint registry status of {total} announcements:");
    println!("{:<18} {:<18} {:>8} {:>7}", "RPKI", "IRR", "count", "share");
    for ((rpki, irr), count) in &joint {
        println!(
            "{:<18} {:<18} {:>8} {:>6.1}%",
            rpki.to_string(),
            irr.to_string(),
            count,
            *count as f64 / total as f64 * 100.0
        );
    }

    // Coverage comparison (the paper: IRR covers far more space).
    let routed = world.observed_table.total_space();
    let irr_covered = routed.v4_covered_fraction(&world.irr.covered_space()) * 100.0;
    let rpki_covered = routed.v4_covered_fraction(&world.vrps.covered_space()) * 100.0;
    println!();
    println!("routed space covered: IRR {irr_covered:.1}% vs RPKI {rpki_covered:.1}%");
    println!("(paper, May 2022: IRR 94.7% vs RPKI 35.2% of routed IPv4 space)");

    // Inconsistent pairs: RPKI says fine, IRR disagrees (stale objects).
    let stale: Vec<&Announcement> = world
        .announcements
        .iter()
        .filter(|a| a.rpki == RpkiStatus::Valid && a.irr == IrrStatus::InvalidAsn)
        .collect();
    println!();
    println!(
        "RPKI-Valid but IRR-Invalid (stale IRR in the RPKI era): {} announcements",
        stale.len()
    );
    let member_share = stale
        .iter()
        .filter(|a| members.contains(&a.origin))
        .count();
    println!(
        "  {} of them originated by MANRS members — the §8.2 neglect effect",
        member_share
    );
    for a in stale.iter().take(5) {
        println!("    e.g. {a}");
    }

    // And per-population rates of that inconsistency.
    let rate = |member: bool| {
        let (mut incons, mut tot) = (0usize, 0usize);
        for a in &world.announcements {
            if members.contains(&a.origin) == member && a.rpki == RpkiStatus::Valid {
                tot += 1;
                if a.irr == IrrStatus::InvalidAsn {
                    incons += 1;
                }
            }
        }
        (incons, tot)
    };
    let (mi, mt) = rate(true);
    let (ni, nt) = rate(false);
    println!();
    println!(
        "inconsistency rate among RPKI-Valid announcements: members {}/{} ({:.1}%), \
         non-members {}/{} ({:.1}%)",
        mi,
        mt,
        mi as f64 / mt.max(1) as f64 * 100.0,
        ni,
        nt,
        ni as f64 / nt.max(1) as f64 * 100.0
    );
}
