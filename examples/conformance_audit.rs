//! Conformance audit for one network — the tool the paper's §12 promises
//! operators: "check if you meet the requirements to join MANRS".
//!
//! Picks an interesting (unconformant) member AS from a generated world
//! and prints a per-prefix breakdown with remediation hints, then shows
//! the same audit for a clean AS.
//!
//! ```sh
//! cargo run --example conformance_audit
//! ```

use manrs_ecosystem::prelude::*;

fn audit(world: &ScenarioWorld, asn: Asn) {
    let date = world.config.snapshot_date;
    let info = world.world.topology.info(asn).expect("AS exists");
    let metrics = compute_action4(&world.ihr);
    let m = metrics.get(&asn);

    println!("=== Audit of {asn} ===");
    println!("organization:   {}", world.world.orgs.org(info.org).unwrap().name);
    println!("region:         {} ({})", info.rir, info.country);
    println!("size class:     {}", world.cones.size_class(asn));
    println!("customer degree: {}", world.cones.degree(asn));
    println!(
        "MANRS member:   {}",
        match world.manrs.program_of(asn, date) {
            Some(p) => format!("yes ({p} program)"),
            None => "no".into(),
        }
    );
    println!();

    // Per-prefix origination report.
    let rows: Vec<_> = world
        .ihr
        .prefix_origins
        .iter()
        .filter(|po| po.origin == asn)
        .collect();
    if rows.is_empty() {
        println!("originates nothing: trivially conformant to Action 4");
    } else {
        println!("{:<20} {:>15} {:>15}  remediation", "prefix", "RPKI", "IRR");
        for po in &rows {
            let hint = match (po.rpki, po.irr) {
                (RpkiStatus::Valid, _) => "-",
                (_, IrrStatus::Valid) => "consider adding a ROA",
                (_, IrrStatus::InvalidLength) => "registered less-specific; OK for MANRS",
                (RpkiStatus::InvalidAsn, _) => "ROA names another AS: fix origin or ROA",
                (RpkiStatus::InvalidLength, _) => "announcement exceeds maxLength: raise it",
                (_, IrrStatus::InvalidAsn) => "route object names another AS: update it",
                _ => "register a route object or ROA",
            };
            println!("{:<20} {:>15} {:>15}  {hint}", po.prefix.to_string(), po.rpki.to_string(), po.irr.to_string());
        }
        let m = m.expect("has rows, has metrics");
        println!();
        println!("RPKI-valid origination: {:>6.1}%  (Formula 1)", m.og_rpki_valid_pct());
        println!("IRR-valid origination:  {:>6.1}%  (Formula 2)", m.og_irr_valid_pct());
        println!("MANRS conformance:      {:>6.1}%  (Formula 3)", m.og_conformant_pct());
        for (name, threshold) in [
            ("ISP program (>=90%)", ConformanceThreshold::Isp),
            ("CDN program (100%)", ConformanceThreshold::Cdn),
        ] {
            let verdict = action4_verdict(Some(m), threshold);
            println!("Action 4 vs {name}: {verdict:?}");
        }
    }

    // Action 1 side.
    let a1 = compute_action1(&world.ihr);
    println!();
    match a1.get(&asn) {
        None => println!("provides no transit: trivially conformant to Action 1"),
        Some(m) => {
            println!("propagated announcements:       {}", m.propagated);
            println!("  RPKI Invalid among them:      {:.2}%  (Formula 4)", m.pg_rpki_invalid_pct());
            println!("  IRR Invalid among them:       {:.2}%  (Formula 5)", m.pg_irr_invalid_pct());
            println!("  unconformant from customers:  {:.2}%  (Formula 6)", m.pg_unconformant_pct());
            println!("Action 1 verdict: {:?}", action1_verdict(Some(m)));
        }
    }
    println!();
}

fn main() {
    let world = ScenarioWorld::builder(ScenarioConfig::small(7)).build();
    let metrics = compute_action4(&world.ihr);
    let members = world.member_asns();

    // An unconformant member, if the world has one; else the worst one.
    let dirty = members
        .iter()
        .filter_map(|asn| metrics.get(asn).map(|m| (*asn, m.og_conformant_pct())))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(asn, _)| asn)
        .expect("some member originates");
    audit(&world, dirty);

    // And a clean one for contrast.
    let clean = members
        .iter()
        .filter_map(|asn| metrics.get(asn).map(|m| (*asn, m.og_conformant_pct())))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(asn, _)| asn)
        .expect("some member originates");
    if clean != dirty {
        audit(&world, clean);
    }
}
