//! Quickstart: build a seeded world, run the full MANRS measurement
//! pipeline, and print the headline numbers.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use manrs_ecosystem::prelude::*;

fn main() {
    // A small, deterministic world: ~400 ASes, full pipeline in seconds.
    let world = ScenarioWorld::builder(ScenarioConfig::small(2024)).build();
    let date = world.config.snapshot_date;
    let members = world.member_asns();

    println!("== World ==");
    println!("ASes:                 {}", world.world.topology.len());
    println!("organizations:        {}", world.world.orgs.org_count());
    println!("announcements:        {}", world.announcements.len());
    println!("visible at vantages:  {}", world.rib.visible_count());
    println!("VRPs (RPKI):          {}", world.vrps.len());
    println!("IRR route objects:    {}", world.irr.route_count());
    println!("MANRS member ASes:    {}", members.len());
    println!();

    // Action 4: how well do members register what they announce?
    let a4 = compute_action4(&world.ihr);
    let mut member_conf = 0usize;
    let mut member_total = 0usize;
    for asn in &members {
        member_total += 1;
        if action4_verdict(a4.get(asn), ConformanceThreshold::Isp).is_conformant() {
            member_conf += 1;
        }
    }
    println!("== Action 4 (register your announcements) ==");
    println!(
        "conformant members:   {member_conf}/{member_total} ({:.1}%)",
        member_conf as f64 / member_total.max(1) as f64 * 100.0
    );

    // Action 1: do members filter their customers?
    let a1 = compute_action1(&world.ihr);
    let mut filter_conf = 0usize;
    for asn in &members {
        if action1_verdict(a1.get(asn)).is_conformant() {
            filter_conf += 1;
        }
    }
    println!();
    println!("== Action 1 (filter your customers) ==");
    println!(
        "conformant members:   {filter_conf}/{member_total} ({:.1}%)",
        filter_conf as f64 / member_total.max(1) as f64 * 100.0
    );

    // Impact: RPKI saturation and transit preference.
    let sat = rpki_saturation(&world.observed_table, &members, &world.vrps, date);
    println!();
    println!("== Impact ==");
    println!("RPKI saturation:      MANRS {:.1}%  vs  non-MANRS {:.1}%", sat.manrs_pct, sat.non_manrs_pct);

    let scores = preference_scores(&world.ihr, &members);
    let by_status = |status: fn(&RpkiStatus) -> bool| -> Vec<_> {
        scores.iter().filter(|s| status(&s.rpki)).copied().collect()
    };
    let mean = |v: &[manrs_ecosystem::core::PreferenceScore]| {
        v.iter().map(|s| s.score).sum::<f64>() / v.len().max(1) as f64
    };
    let valid = by_status(|s| *s == RpkiStatus::Valid);
    let invalid = by_status(|s| s.is_invalid());
    println!(
        "MANRS preference:     RPKI-Valid routes {:+.2} mean score ({} pairs), RPKI-Invalid {:+.2} ({} pairs)",
        mean(&valid),
        valid.len(),
        mean(&invalid),
        invalid.len()
    );
    println!();
    println!("A lower preference score for Invalid routes means MANRS transits");
    println!("carry proportionally less invalid traffic — they filter better.");
    println!("(On a world this small the Invalid sample is tiny; run");
    println!(" `cargo run --release --example ecosystem_report` for the full picture.)");
}
