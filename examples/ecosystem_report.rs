//! The full ecosystem report: every paper finding (7.0–9.4) regenerated
//! on a medium-scale world and printed in the paper's own vocabulary.
//!
//! ```sh
//! cargo run --release --example ecosystem_report
//! ```

use manrs_ecosystem::prelude::*;
use manrs_ecosystem::scenario::SnapshotSeries;

fn main() {
    let world = ScenarioWorld::builder(ScenarioConfig::medium(1)).build();
    let date = world.config.snapshot_date;
    let members = world.member_asns();

    println!("MANRS ecosystem report — snapshot {date}");
    println!("world: {} ASes, {} orgs, {} announcements, {} vantage points",
        world.world.topology.len(),
        world.world.orgs.org_count(),
        world.announcements.len(),
        world.vantages.len());
    println!();

    // ---- §7: participation -------------------------------------------
    let completeness = ParticipationAnalysis::registration_completeness(
        &world.manrs,
        &world.world.orgs,
        &world.observed_table,
        date,
    );
    println!("[Finding 7.0] {}/{} member orgs registered all their ASes ({:.0}%); \
              {}/{} announce all space via registered ASes ({:.0}%)",
        completeness.fully_registered(), completeness.total(),
        completeness.fully_registered() as f64 / completeness.total().max(1) as f64 * 100.0,
        completeness.all_space_via_registered(), completeness.total(),
        completeness.all_space_via_registered() as f64 / completeness.total().max(1) as f64 * 100.0);
    println!("              {} orgs leak space from unregistered ASes; {} announce only from them; \
              {} keep quiescent unregistered ASes",
        completeness.some_space_unregistered(),
        completeness.only_space_unregistered(),
        completeness.quiescent_unregistered());
    println!();

    // ---- §8: Action 4 ---------------------------------------------------
    let a4 = compute_action4(&world.ihr);
    let class_of = |asn: &Asn| world.cones.size_class(*asn);
    for class in SizeClass::ALL {
        let stats = |member: bool| -> (usize, usize, usize) {
            let mut total = 0;
            let mut all_valid = 0;
            let mut none_valid = 0;
            for (asn, m) in &a4 {
                if class_of(asn) == class && members.contains(asn) == member {
                    total += 1;
                    if m.only_rpki_valid() {
                        all_valid += 1;
                    }
                    if m.no_rpki_valid() {
                        none_valid += 1;
                    }
                }
            }
            (total, all_valid, none_valid)
        };
        let (mt, ma, mn) = stats(true);
        let (nt, na, nn) = stats(false);
        println!("[Finding 8.1/{class}] only-RPKI-Valid originators: MANRS {}/{} ({:.0}%) vs non-MANRS {}/{} ({:.0}%); \
                  zero-Valid: {:.0}% vs {:.0}%",
            ma, mt, pct(ma, mt), na, nt, pct(na, nt), pct(mn, mt), pct(nn, nt));
    }
    println!();

    // §8.3 conformance verdicts.
    for (label, program, threshold) in [
        ("8.3 CDNs", ManrsProgram::Cdn, ConformanceThreshold::Cdn),
        ("8.4 ISPs", ManrsProgram::Isp, ConformanceThreshold::Isp),
    ] {
        let asns = world.manrs.program_asns(program, date);
        let conformant = asns
            .iter()
            .filter(|a| action4_verdict(a4.get(a), threshold).is_conformant())
            .count();
        println!("[Finding {label}] {}/{} member ASes conformant to Action 4 ({:.0}%)",
            conformant, asns.len(), pct(conformant, asns.len()));
    }
    println!();

    // ---- §8.6: impact ---------------------------------------------------
    let sat_series: Vec<_> = SnapshotSeries::yearly(&world)
        .map(|s| rpki_saturation(&s.table, &s.members, &s.vrps, s.date))
        .collect();
    let last = sat_series.last().unwrap();
    println!("[Finding 8.8] RPKI saturation {}: MANRS {:.1}% vs non-MANRS {:.1}%",
        last.date, last.manrs_pct, last.non_manrs_pct);
    print!("              series (MANRS):");
    for p in &sat_series {
        print!(" {}:{:.0}%", p.date.year(), p.manrs_pct);
    }
    println!();
    println!();

    // ---- §9: Action 1 ----------------------------------------------------
    let a1 = compute_action1(&world.ihr);
    for class in SizeClass::ALL {
        let max_inv = |member: bool| -> f64 {
            a1.iter()
                .filter(|(asn, m)| {
                    class_of(asn) == class && members.contains(*asn) == member && m.propagated > 0
                })
                .map(|(_, m)| m.pg_rpki_invalid_pct())
                .fold(0.0f64, f64::max)
        };
        println!("[Finding 9.1/{class}] max propagated RPKI-Invalid share: MANRS {:.1}% vs non-MANRS {:.1}%",
            max_inv(true), max_inv(false));
    }
    let mut transit_conf = 0usize;
    let mut transit_total = 0usize;
    let mut trivially = 0usize;
    for asn in &members {
        match a1.get(asn) {
            None => trivially += 1,
            Some(m) if m.propagated == 0 => trivially += 1,
            Some(m) => {
                transit_total += 1;
                if m.customer_unconformant == 0 {
                    transit_conf += 1;
                }
            }
        }
    }
    println!("[Finding 9.3] transit members fully Action-1 conformant: {}/{} ({:.0}%); \
              {} trivially conformant (no transit); overall {:.0}%",
        transit_conf, transit_total, pct(transit_conf, transit_total), trivially,
        pct(transit_conf + trivially, members.len()));
    println!();

    // ---- §9.4: preference scores -----------------------------------------
    let scores = preference_scores(&world.ihr, &members);
    for (label, filt) in [
        ("Valid", RpkiStatus::Valid),
        ("NotFound", RpkiStatus::NotFound),
    ] {
        let subset: Vec<_> = scores.iter().filter(|s| s.rpki == filt).copied().collect();
        println!("[Finding 9.4] RPKI {label}: {:.0}% of {} prefix-origins prefer MANRS transit",
            fraction_preferring_manrs(&subset) * 100.0, subset.len());
    }
    let invalid: Vec<_> = scores.iter().filter(|s| s.rpki.is_invalid()).copied().collect();
    println!("[Finding 9.4] RPKI Invalid: {:.0}% of {} prefix-origins prefer MANRS transit \
              (lower = MANRS filters better)",
        fraction_preferring_manrs(&invalid) * 100.0, invalid.len());
    println!();

    // ---- Extensions beyond the paper (its §12 future work) ------------
    use manrs_ecosystem::core::action3_summary;
    use manrs_ecosystem::scenario::{generate_incidents, protection_payoff};
    use manrs_ecosystem::core::pre_post_exposure;

    let member_list: Vec<Asn> = members.iter().copied().collect();
    let non_members: Vec<Asn> = world
        .world
        .topology
        .asns()
        .filter(|a| !members.contains(a))
        .collect();
    let m3 = action3_summary(member_list.iter(), &world.irr, &world.peeringdb, date, 365);
    let n3 = action3_summary(non_members.iter(), &world.irr, &world.peeringdb, date, 365);
    println!("[Extension: Action 3] current contact info: members {}/{} ({:.0}%) vs \
              non-members {:.0}%",
        m3.conformant, m3.total, pct(m3.conformant, m3.total),
        pct(n3.conformant, n3.total));

    let incidents = generate_incidents(&world, 400, 7);
    let exposure = pre_post_exposure(
        &incidents,
        &world.manrs,
        &world.world.orgs,
        Date::ymd(2016, 1, 1),
        date,
    );
    println!("[Extension: incidents] member-victim incident rate: {:.2}/yr before joining \
              vs {:.2}/yr after ({} vs {} incidents)",
        exposure.rate_before(), exposure.rate_after(), exposure.before, exposure.after);
    let (protected, unprotected) = protection_payoff(&world, &incidents);
    if let (Some(p), Some(u)) = (protected, unprotected) {
        println!("[Extension: incidents] forged-route visibility: {:.0}% of vantages when the \
                  victim is ROA-protected vs {:.0}% when not",
            p * 100.0, u * 100.0);
    }
}

fn pct(n: usize, d: usize) -> f64 {
    n as f64 / d.max(1) as f64 * 100.0
}
