//! Hijack containment study: how much does the MANRS posture actually
//! help when an origin hijack happens?
//!
//! Injects exact-prefix and more-specific hijacks against signed and
//! unsigned victims, under three deployment worlds (nobody filters, the
//! calibrated world, universal MANRS), and reports how far each hijack
//! spreads — the §2.1 threat model exercised end to end.
//!
//! ```sh
//! cargo run --example hijack_study
//! ```

use manrs_ecosystem::bgp::propagate::{propagate_dense, DenseGraph};
use manrs_ecosystem::prelude::*;

fn main() {
    let world = ScenarioWorld::builder(ScenarioConfig::small(99)).build();
    let n = world.world.topology.len();

    // Victims: one RPKI-protected announcement, one fully unregistered.
    let signed = world
        .announcements
        .iter()
        .find(|a| a.rpki == RpkiStatus::Valid && a.prefix.len() < 24)
        .expect("signed victim");
    let unsigned = world
        .announcements
        .iter()
        .find(|a| a.rpki == RpkiStatus::NotFound && a.irr == IrrStatus::NotFound && a.prefix.len() < 24)
        .expect("unsigned victim");

    // The attacker: a small stub network.
    let attacker = world
        .world
        .topology
        .asns()
        .find(|a| world.cones.size_class(*a) == SizeClass::Small && !world.is_member(*a))
        .expect("a stub attacker");

    let worlds: [(&str, PolicyTable); 3] = [
        ("no filtering anywhere", PolicyTable::with_default(PolicySet::OPEN)),
        ("calibrated world", world.policies.clone()),
        ("universal MANRS ISP", PolicyTable::with_default(PolicySet::MANRS_ISP)),
    ];

    println!("hijack containment: ASes accepting the forged route (of {n})");
    println!();
    println!(
        "{:<28} {:>18} {:>18} {:>18} {:>18}",
        "deployment", "exact/signed", "specific/signed", "exact/unsigned", "specific/unsigned"
    );
    for (label, policies) in &worlds {
        let graph = DenseGraph::build(&world.world.topology, policies);
        let mut cells = Vec::new();
        for victim in [signed, unsigned] {
            for incident in [
                Incident::OriginHijack { victim_prefix: victim.prefix, attacker },
                Incident::SubprefixHijack { victim_prefix: victim.prefix, attacker },
            ] {
                let ann = incident
                    .announcement(&world.vrps, &world.irr)
                    .expect("study victims are splittable");
                let outcome = propagate_dense(&graph, &ann);
                // Subtract the attacker itself.
                cells.push(outcome.reached().saturating_sub(1));
            }
        }
        println!(
            "{:<28} {:>18} {:>18} {:>18} {:>18}",
            label, cells[0], cells[1], cells[2], cells[3]
        );
    }

    println!();
    println!("Reading the table:");
    println!("- Signed victims shrink the hijack wherever ROV is deployed;");
    println!("  under universal MANRS the forged route dies at the first hop.");
    println!("- Unsigned victims get no protection from ROV at all — the");
    println!("  incentive the paper's Fig. 6 saturation trend is about.");
}
