#!/usr/bin/env python3
"""Schema and invariant checks for BENCH_sweep.json.

Shared by the CI smoke step (small scale) and the scheduled paper-scale
job. The adoption-sweep harness amortizes world construction across a
Monte-Carlo grid, so the structural guarantees are:

* the warm per-trial cost beats a cold full world build by the
  amortization floor (5x at medium/paper scale, 2x at small where the
  cold build itself is nearly free);
* a warm trial cycle — overlay on, measure, overlay off — performs
  zero heap allocations (counting global allocator around a full warm
  re-run of the grid);
* every registry delta lands through the copy-on-write splice path:
  zero compiled-index rebuilds across the whole grid;
* the overlay path defers compaction (the per-trial re-anchor makes it
  unnecessary), so the grid reports zero compactions;
* per-cell bootstrap intervals are ordered and every reported share is
  a probability.
"""

import json
import sys

SCHEMA = (
    "host_cpus",
    "seed",
    "scale",
    "threads",
    "fractions",
    "mixes",
    "trials_per_cell",
    "hijacks_per_trial",
    "trials",
    "pairs",
    "as_count",
    "cold_build_secs",
    "base_build_secs",
    "warm_wall_secs",
    "warm_trial_secs",
    "trials_per_sec",
    "amortized_speedup",
    "overlay_allocs_steady",
    "index_patches",
    "index_rebuilds",
    "compactions",
    "cells",
)

CELL_METRICS = (
    "attacker_share",
    "victim_share",
    "disconnected_share",
    "detected_share",
    "conformant_share",
    "unconformant_share",
    "manrs_transit_share",
)

# Amortization floor: warm trials must beat a cold full world build by
# this factor. Small worlds build in milliseconds, so the bar is lower
# there; at medium and paper scale the cold build dominates and the
# shared-base design must clear 5x with room to spare.
SPEEDUP_FLOOR = {"small": 2.0}
SPEEDUP_FLOOR_DEFAULT = 5.0


def main(path: str) -> None:
    with open(path) as f:
        data = json.load(f)
    for key in SCHEMA:
        assert key in data, f"missing {key}"
    assert isinstance(data["host_cpus"], int) and data["host_cpus"] >= 1
    assert data["pairs"] > 0, "sweep ran over an empty pair universe"
    assert data["trials"] == data["fractions"] * data["mixes"] * data["trials_per_cell"], (
        "trial count does not cover the grid"
    )
    assert len(data["cells"]) == data["fractions"] * data["mixes"], (
        "cell count does not cover the grid"
    )

    # Amortization: the whole point of the shared frozen base.
    floor = SPEEDUP_FLOOR.get(data["scale"], SPEEDUP_FLOOR_DEFAULT)
    assert data["amortized_speedup"] >= floor, (
        f"warm trial only {data['amortized_speedup']:.1f}x faster than a cold "
        f"world build (floor {floor}x at {data['scale']} scale)"
    )

    # Zero-allocation warm trial cycle.
    assert data["overlay_allocs_steady"] == 0, (
        f"warm trial cycle hit the allocator: {data['overlay_allocs_steady']}"
    )
    # Every delta splices; the copy-on-write path never falls back to
    # reflattening, and deferred compaction means none fire mid-grid.
    assert data["index_patches"] > 0, "grid spliced nothing"
    assert data["index_rebuilds"] == 0, (
        f"overlay fell back to index rebuilds: {data['index_rebuilds']}"
    )
    assert data["compactions"] == 0, (
        f"overlay path compacted mid-grid: {data['compactions']}"
    )

    for cell in data["cells"]:
        where = f"cell ({cell['fraction']}, {cell['mix']})"
        assert 0.0 <= cell["fraction"] <= 1.0, f"{where}: fraction out of range"
        assert cell["adopters_mean"] >= 0.0, f"{where}: negative adopter count"
        for name in CELL_METRICS:
            m = cell[name]
            assert m["ci_lo"] <= m["mean"] <= m["ci_hi"], (
                f"{where}: {name} bootstrap interval disordered"
            )
            assert 0.0 <= m["ci_lo"] and m["ci_hi"] <= 1.0, (
                f"{where}: {name} is not a probability"
            )
        routed = (
            cell["attacker_share"]["mean"]
            + cell["victim_share"]["mean"]
            + cell["disconnected_share"]["mean"]
        )
        # Tolerance covers the 6-decimal rounding of three summed means.
        assert abs(routed - 1.0) < 1e-5, (
            f"{where}: outcome shares sum to {routed}, not 1"
        )

    print(f"{path} schema OK")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_sweep.json")
