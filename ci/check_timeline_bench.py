#!/usr/bin/env python3
"""Schema and invariant checks for BENCH_timeline.json.

Shared by the CI smoke step (small scale) and the scheduled paper-scale
job: every measurement carries the step-cost keys, the incremental
engine must beat a full rebuild per step, and the in-place index
patching must hold its two structural guarantees — a warm weekly replay
performs zero full compiled-index rebuilds, and a warm splice cycle
performs zero heap allocations.
"""

import json
import sys


def main(path: str) -> None:
    with open(path) as f:
        data = json.load(f)
    assert isinstance(data["host_cpus"], int) and data["host_cpus"] >= 1
    assert isinstance(data["seed"], int), "world seed not recorded"
    assert data["measurements"], "no measurements recorded"
    for m in data["measurements"]:
        for key in (
            "scale",
            "weeks",
            "churn",
            "pairs",
            "deltas",
            "full_secs_per_step",
            "incremental_secs_per_step",
            "pairs_revalidated_per_step",
            "index_patches_per_step",
            "index_rebuilds_per_step",
            "index_rebuild_secs_per_step",
            "patch_allocs_steady",
            "speedup",
        ):
            assert key in m, f"missing {key}"
        assert m["incremental_secs_per_step"] < m["full_secs_per_step"], (
            f"incremental step not faster than full rebuild: {m}"
        )
        # A warm weekly replay never falls back to rebuilding the
        # compiled indexes: every delta splices in place.
        assert m["index_rebuilds_per_step"] == 0, (
            f"weekly replay fell back to index rebuilds: {m}"
        )
        # Steady-state splices are allocation-free (measured by a
        # counting global allocator around a warm remove/insert cycle).
        assert m["patch_allocs_steady"] == 0, (
            f"steady-state patch cycle hit the allocator: {m}"
        )
        assert m["index_rebuild_secs_per_step"] > 0, (
            f"index rebuild cost was not measured: {m}"
        )
        if m["scale"] == "medium":
            # Medium-scale churn crosses the batch threshold, so the
            # splice path must actually be exercised there.
            assert m["index_patches_per_step"] > 0, (
                f"medium-scale replay applied no index patches: {m}"
            )
    print(f"{path} schema OK")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_timeline.json")
