#!/usr/bin/env python3
"""Schema and invariant checks for BENCH_timeline.json.

Shared by the CI smoke step (small scale) and the scheduled paper-scale
job: every measurement carries the step-cost keys, and the incremental
engine must beat a full rebuild per step.
"""

import json
import sys


def main(path: str) -> None:
    with open(path) as f:
        data = json.load(f)
    assert isinstance(data["host_cpus"], int) and data["host_cpus"] >= 1
    assert data["measurements"], "no measurements recorded"
    for m in data["measurements"]:
        for key in (
            "scale",
            "weeks",
            "churn",
            "pairs",
            "deltas",
            "full_secs_per_step",
            "incremental_secs_per_step",
            "pairs_revalidated_per_step",
            "speedup",
        ):
            assert key in m, f"missing {key}"
        assert m["incremental_secs_per_step"] < m["full_secs_per_step"], (
            f"incremental step not faster than full rebuild: {m}"
        )
    print(f"{path} schema OK")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_timeline.json")
