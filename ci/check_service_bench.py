#!/usr/bin/env python3
"""Schema and invariant checks for BENCH_service.json.

Shared by the CI smoke step (small scale) and the scheduled paper-scale
job. Beyond schema, the serving layer must hold its structural
guarantees at every scale:

* the steady-state read path performs zero heap allocations (measured
  by a counting global allocator around warm validation batches);
* a warm weekly replay publishes every epoch by splicing — zero full
  compiled-index rebuilds and zero clone fallbacks in the buffer pool;
* full-table revalidation reports zero drifted pairs (shard indexes
  and stored statuses agree inside every epoch);
* the service's own post-replay self-verification passes.

Reader throughput during the replay must stay within 20% of the
undisturbed baseline, but only on hosts with enough cores for the
readers and the writer to actually run concurrently — and p99 batch
latency is bounded to catch gross read-path regressions.
"""

import json
import sys

SCHEMA = (
    "host_cpus",
    "seed",
    "scale",
    "shards",
    "readers",
    "pairs",
    "batch_size",
    "weeks",
    "churn",
    "point_p50_us",
    "point_p99_us",
    "point_qps",
    "allocs_steady",
    "revalidate_secs",
    "revalidate_drifted",
    "baseline_reader_qps",
    "replay_reader_qps",
    "reader_drop_ratio",
    "stale_epoch_window_max",
    "replay_secs",
    "steps_applied",
    "epochs_published",
    "index_patches",
    "index_rebuilds",
    "patch_failures",
    "epoch_clones",
    "compactions",
    "rows_patched",
    "max_fragmentation_vrp",
    "max_fragmentation_irr",
    "verified",
)

# Generous absolute bound on p99 batch latency (microseconds for a
# 1024-pair batch): a steady-state read is index probes only, so even
# paper scale on a loaded runner sits orders of magnitude below this.
P99_BOUND_US = 50_000.0


def main(path: str) -> None:
    with open(path) as f:
        data = json.load(f)
    for key in SCHEMA:
        assert key in data, f"missing {key}"
    assert isinstance(data["host_cpus"], int) and data["host_cpus"] >= 1
    assert data["pairs"] > 0, "service served an empty table"

    # Zero-allocation steady-state read path.
    assert data["allocs_steady"] == 0, (
        f"steady-state read path hit the allocator: {data['allocs_steady']}"
    )
    # Every epoch of a warm replay is published by splicing into a
    # recycled buffer: no full rebuilds, no clone fallbacks.
    assert data["epochs_published"] >= 1, "replay published no epochs"
    assert data["index_rebuilds"] == 0, (
        f"steady-state replay fell back to index rebuilds: {data['index_rebuilds']}"
    )
    assert data["epoch_clones"] == 0, (
        f"buffer pool fell back to cloning epochs: {data['epoch_clones']}"
    )
    assert data["patch_failures"] == data["index_rebuilds"] == 0, (
        "patch failures must be zero when no rebuilds were needed"
    )
    # Consistency: no drift between shard indexes and stored statuses,
    # and the post-replay self-verification passed.
    assert data["revalidate_drifted"] == 0, (
        f"revalidation drifted: {data['revalidate_drifted']}"
    )
    assert data["verified"] is True, "service self-verification failed"

    assert 0 < data["point_p50_us"] <= data["point_p99_us"], "latency percentiles inverted"
    assert data["point_p99_us"] <= P99_BOUND_US, (
        f"p99 batch latency regressed: {data['point_p99_us']:.1f}us > {P99_BOUND_US}us"
    )

    # Concurrent-read guarantee: applying deltas must not stall readers.
    # The gate is decided from the artifact alone — `host_cpus` is the
    # core count of the machine that *produced* the JSON, recorded by
    # the bench itself, never the runner re-checking it (a committed
    # 1-core artifact must not fail on a 16-core CI host, and a 16-core
    # artifact must not dodge the gate on a 1-core checker). The ratio
    # only measures writer interference when every recorded reader and
    # the writer had a core to themselves; below that the readers
    # time-slice one another and the ratio measures the scheduler.
    cores_needed = data["readers"] + 1
    if data["host_cpus"] >= cores_needed:
        assert data["reader_drop_ratio"] <= 0.20, (
            f"reader throughput dropped {data['reader_drop_ratio']:.1%} during replay"
        )
    else:
        print(
            f"  reader-drop gate skipped: artifact recorded host_cpus="
            f"{data['host_cpus']} < {cores_needed} "
            f"({data['readers']} readers + 1 writer)"
        )

    print(f"{path} schema OK")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_service.json")
