#!/usr/bin/env python3
"""Schema and invariant checks for BENCH_propagation.json.

Shared by the CI smoke step (small scale) and the scheduled paper-scale
job, so both validate the exact same contract:

* every measurement carries the standard timing/throughput keys;
* ``collect_table`` also carries the legacy-baseline comparison and must
  beat the pre-pool algorithm;
* ``reverse_collection`` records both collection strategies at the same
  thread count (forward in ``serial_secs``/``forward_secs``, reverse in
  ``parallel_secs``/``reverse_secs``) plus the vantage/class counts that
  drive the ``Auto`` strategy choice — and whenever there are fewer
  vantages than filter classes, the reverse traversal must be strictly
  faster than the forward one. It also carries the plan's own
  ``CostReport`` (``forward_cost``/``reverse_cost``/``closure_sum``/
  ``chosen_strategy``/``cost_path_aware``): the chosen strategy must be
  consistent with the recorded costs — forward when the mix is
  path-aware, otherwise whichever modeled cost is lower;
* ``validation_batch`` carries ``batch_allocations`` (the steady-state
  heap allocations of one warm serial batch run), which must be zero,
  and its serial throughput must beat ``validation_scalar``'s at every
  non-small scale — by at least 4x at medium, where both paths are
  measured on the same warm world and the compiled-index win is the
  whole point of the batch engine;
* ``policy_mixes`` records, per scale and named extension mix, the
  acceptance-class split and the strategy ``Auto`` resolves to. A
  path-blind mix must keep resolving to ``reverse`` at medium scale
  (the cost model's whole point is that few vantages beat many
  classes), and a path-aware mix must always resolve ``forward`` —
  reverse traversal cannot reproduce path-dependent verdicts.
"""

import json
import sys

STANDARD_KEYS = (
    "scale",
    "stage",
    "elements",
    "serial_secs",
    "parallel_secs",
    "serial_elements_per_sec",
    "parallel_elements_per_sec",
    "parallel_allocations",
    "peak_rss_kb",
    "speedup",
)

REQUIRED_STAGES = (
    "collect_table",
    "reverse_collection",
    "path_extraction",
    "validation_scalar",
    "validation_batch",
)


def main(path: str) -> None:
    with open(path) as f:
        data = json.load(f)
    assert isinstance(data["host_cpus"], int) and data["host_cpus"] >= 1
    stages = {m["stage"] for m in data["measurements"]}
    for required in REQUIRED_STAGES:
        assert required in stages, f"missing stage {required}"
    scalar_serial_eps = {
        m["scale"]: m["serial_elements_per_sec"]
        for m in data["measurements"]
        if m["stage"] == "validation_scalar"
    }
    for m in data["measurements"]:
        for key in STANDARD_KEYS:
            assert key in m, f"missing {key}"
        if m["stage"] == "collect_table":
            for key in (
                "legacy_serial_secs",
                "legacy_serial_elements_per_sec",
                "improvement_vs_legacy",
            ):
                assert key in m, f"missing {key}"
            assert m["improvement_vs_legacy"] > 1.0, (
                f"interned collection regressed below the pre-pool baseline: {m}"
            )
        if m["stage"] == "reverse_collection":
            for key in ("forward_secs", "reverse_secs", "vantage_count", "class_count"):
                assert key in m, f"missing {key}"
            assert m["forward_secs"] == m["serial_secs"]
            assert m["reverse_secs"] == m["parallel_secs"]
            for key in (
                "forward_cost",
                "reverse_cost",
                "closure_sum",
                "chosen_strategy",
                "cost_path_aware",
            ):
                assert key in m, f"missing cost-report key {key}: {m}"
            assert m["forward_cost"] > 0.0 and m["reverse_cost"] > 0.0, m
            assert m["chosen_strategy"] in ("forward", "reverse"), m
            if m["cost_path_aware"]:
                assert m["chosen_strategy"] == "forward", (
                    f"path-aware world must force forward collection: {m}"
                )
            else:
                expected = (
                    "reverse" if m["reverse_cost"] < m["forward_cost"] else "forward"
                )
                assert m["chosen_strategy"] == expected, (
                    f"chosen strategy contradicts the recorded costs: {m}"
                )
            if m["vantage_count"] < m["class_count"] and m["scale"] != "small":
                # Small worlds fit in noise; medium and paper scale must
                # show the asymptotic win whenever Auto would pick reverse.
                assert m["reverse_secs"] < m["forward_secs"], (
                    f"reverse collection not faster with fewer vantages than classes: {m}"
                )
        if m["stage"] == "validation_batch":
            assert "batch_allocations" in m, f"missing batch_allocations: {m}"
            assert m["batch_allocations"] == 0, (
                f"batched validation allocates in steady state: {m}"
            )
            if m["scale"] != "small":
                # Small batches fit in noise; at medium and paper scale
                # the compiled kernels must beat the scalar validators
                # serially (no thread-count excuse). Medium is the
                # calibrated scale where a 4x serial win is required.
                floor = 4.0 if m["scale"] == "medium" else 1.0
                assert (
                    m["serial_elements_per_sec"]
                    >= floor * scalar_serial_eps[m["scale"]]
                ), (
                    f"batched validation below {floor}x scalar at {m['scale']}: "
                    f"{m['serial_elements_per_sec']} < "
                    f"{floor} * {scalar_serial_eps[m['scale']]}"
                )
    mixes = data["policy_mixes"]
    assert mixes, "policy_mixes section missing or empty"
    mix_keys = (
        "scale",
        "mix",
        "accept_classes",
        "origin_classes",
        "resolved_strategy",
        "path_aware",
    )
    for r in mixes:
        for key in mix_keys:
            assert key in r, f"missing {key} in policy mix record: {r}"
        assert r["resolved_strategy"] in ("forward", "reverse"), r
        if r["path_aware"]:
            assert r["resolved_strategy"] == "forward", (
                f"path-aware mix must force forward collection: {r}"
            )
        elif r["scale"] == "medium":
            assert r["resolved_strategy"] == "reverse", (
                f"path-blind mix regressed to forward at medium scale: {r}"
            )
    print(f"{path} schema OK")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_propagation.json")
