#!/usr/bin/env python3
"""Schema and invariant checks for BENCH_vantage.json.

Shared by the CI smoke step (small scale) and the scheduled paper-scale
job. The vantage-point value optimization ranks vantages by marginal
coverage and hands back the smallest greedy prefix whose *measured*
bias against the full-vantage collection sits within tolerance, so the
structural guarantees are:

* the tolerance-selected subset really is within tolerance — both the
  bench's own `within_tolerance` verdict and the raw bias fields
  (max per-AS hegemony delta, worst conformance drift) must clear the
  requested bound;
* a warm serial ranking pass performs zero heap allocations (counting
  global allocator around a full `rank_into` re-run);
* reverse collection on the selected subset beats the full-vantage
  collection at medium scale and above (at small scale both are
  sub-millisecond, so only selected ≤ full coverage is asserted);
* the greedy order is a valid weighted set cover: marginal link gains
  never exceed standalone coverage, the cumulative covered-link count
  is consistent with the link universe, and the selected size never
  exceeds the vantage total.
"""

import json
import sys

SCHEMA = (
    "host_cpus",
    "seed",
    "scale",
    "threads",
    "tolerance",
    "vantages_total",
    "selected",
    "total_links",
    "total_weight",
    "covered_links_selected",
    "visible_full",
    "ases_scored",
    "selection_secs",
    "selection_allocs_steady",
    "reverse_full_secs",
    "reverse_selected_secs",
    "reverse_naive_secs",
    "speedup_selected",
    "hegemony_mean_abs_delta",
    "hegemony_max_abs_delta",
    "hegemony_p95_abs_delta",
    "max_conformance_drift",
    "missed_links",
    "visible_selected",
    "naive_hegemony_mean_abs_delta",
    "naive_hegemony_max_abs_delta",
    "naive_hegemony_p95_abs_delta",
    "naive_max_conformance_drift",
    "naive_missed_links",
    "naive_visible_selected",
    "within_tolerance",
    "greedy_order",
)


def main(path: str) -> None:
    with open(path) as f:
        data = json.load(f)
    for key in SCHEMA:
        assert key in data, f"missing {key}"
    assert isinstance(data["host_cpus"], int) and data["host_cpus"] >= 1
    assert data["vantages_total"] > 0, "bench ran with no vantages"
    assert 0 < data["selected"] <= data["vantages_total"], (
        f"selected {data['selected']} outside 1..={data['vantages_total']}"
    )
    tol = data["tolerance"]
    assert tol > 0.0, "tolerance must be positive (0 degenerates to the full set)"

    # The whole contract: the subset's measured bias honors the bound.
    assert data["within_tolerance"] is True, "selected subset exceeded tolerance"
    assert data["hegemony_max_abs_delta"] <= tol, (
        f"max hegemony delta {data['hegemony_max_abs_delta']} > tolerance {tol}"
    )
    assert data["max_conformance_drift"] <= tol, (
        f"conformance drift {data['max_conformance_drift']} > tolerance {tol}"
    )
    assert 0.0 <= data["hegemony_mean_abs_delta"] <= data["hegemony_max_abs_delta"]
    assert data["hegemony_p95_abs_delta"] <= data["hegemony_max_abs_delta"]

    # Warm ranking never touches the allocator.
    assert data["selection_allocs_steady"] == 0, (
        f"warm ranking hit the allocator: {data['selection_allocs_steady']}"
    )

    # The payoff: fewer vantages means cheaper reverse collection. Small
    # worlds finish in microseconds where timer noise dominates, so the
    # wall-clock gate only applies from medium up.
    assert data["reverse_full_secs"] > 0.0 and data["reverse_selected_secs"] > 0.0
    if data["scale"] != "small":
        assert data["reverse_selected_secs"] < data["reverse_full_secs"], (
            f"selected-subset collection ({data['reverse_selected_secs']:.6f}s) "
            f"not faster than full ({data['reverse_full_secs']:.6f}s)"
        )
        assert data["speedup_selected"] > 1.0

    # Greedy set-cover sanity over the reported order.
    order = data["greedy_order"]
    assert len(order) == data["vantages_total"], "greedy order misses vantages"
    covered = 0
    for entry in order:
        assert entry["marginal_links"] <= entry["standalone_links"], (
            f"vantage {entry['vantage']}: marginal gain exceeds standalone coverage"
        )
        assert entry["marginal_mass"] >= 0.0
        covered += entry["marginal_links"]
    assert covered <= data["total_links"], "covered links exceed the link universe"
    selected_cover = sum(e["marginal_links"] for e in order[: data["selected"]])
    assert selected_cover == data["covered_links_selected"], (
        "covered_links_selected disagrees with the greedy prefix"
    )
    assert data["missed_links"] <= data["naive_missed_links"] or (
        data["hegemony_max_abs_delta"] <= data["naive_hegemony_max_abs_delta"]
    ), "greedy subset dominated by the naive top-k on both bias axes"

    print(f"{path} schema OK")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_vantage.json")
