//! The honesty check of the reproduction: behaviour differences that the
//! generator *put in* must be *recovered* by the paper's measurement
//! pipeline, through the same formulas the paper uses.

use manrs_ecosystem::prelude::*;
use std::sync::OnceLock;

fn world() -> &'static ScenarioWorld {
    static WORLD: OnceLock<ScenarioWorld> = OnceLock::new();
    WORLD.get_or_init(|| ScenarioWorld::builder(ScenarioConfig::small(2)).build())
}

fn mean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        None
    } else {
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }
}

/// Finding 8.1: MANRS ASes originate RPKI-Valid prefixes more often.
#[test]
fn manrs_ases_more_rpki_valid() {
    let w = world();
    let metrics = compute_action4(&w.ihr);
    let members = w.member_asns();
    let manrs = mean(
        metrics
            .iter()
            .filter(|(asn, _)| members.contains(asn))
            .map(|(_, m)| m.og_rpki_valid_pct()),
    )
    .expect("member origins exist");
    let non = mean(
        metrics
            .iter()
            .filter(|(asn, _)| !members.contains(asn))
            .map(|(_, m)| m.og_rpki_valid_pct()),
    )
    .expect("non-member origins exist");
    assert!(
        manrs > non + 10.0,
        "MANRS RPKI validity {manrs:.1}% must clearly exceed non-MANRS {non:.1}%"
    );
}

/// Finding 8.8 / Fig. 6: MANRS routed space is better RPKI-covered.
#[test]
fn manrs_saturation_higher() {
    let w = world();
    let sat = rpki_saturation(
        &w.observed_table,
        &w.member_asns(),
        &w.vrps,
        Date::ymd(2022, 5, 1),
    );
    assert!(
        sat.manrs_pct > sat.non_manrs_pct + 10.0,
        "MANRS saturation {:.1}% vs non-MANRS {:.1}%",
        sat.manrs_pct,
        sat.non_manrs_pct
    );
}

/// §9.1 mechanism check: ASes that truly deploy ROV propagate fewer RPKI
/// Invalid announcements than open transits.
#[test]
fn rov_deployers_propagate_fewer_invalids() {
    let w = world();
    let metrics = compute_action1(&w.ihr);
    // Restrict to real transits (propagated something).
    let rov = mean(
        metrics
            .iter()
            .filter(|(asn, m)| w.truth_rov.contains(asn) && m.propagated > 0)
            .map(|(_, m)| m.pg_rpki_invalid_pct()),
    )
    .expect("ROV transits exist");
    let open = mean(
        metrics
            .iter()
            .filter(|(asn, m)| !w.truth_rov.contains(asn) && m.propagated > 0)
            .map(|(_, m)| m.pg_rpki_invalid_pct()),
    )
    .expect("open transits exist");
    assert!(
        rov < open,
        "ROV deployers at {rov:.2}% must sit below open transits at {open:.2}%"
    );
    // A ROV deployer can still carry Invalid Length routes it originated
    // itself, but imports are filtered: its propagated invalid share is
    // structurally capped. Check the max too.
    let rov_max = metrics
        .iter()
        .filter(|(asn, m)| w.truth_rov.contains(asn) && m.propagated > 0)
        .map(|(_, m)| m.pg_rpki_invalid_pct())
        .fold(0.0f64, f64::max);
    let open_max = metrics
        .iter()
        .filter(|(asn, m)| !w.truth_rov.contains(asn) && m.propagated > 0)
        .map(|(_, m)| m.pg_rpki_invalid_pct())
        .fold(0.0f64, f64::max);
    assert!(rov_max <= open_max);
}

/// Fig. 9: RPKI-Invalid announcements avoid MANRS transits relative to
/// Valid ones.
#[test]
fn invalid_routes_avoid_manrs_transit() {
    let w = world();
    let scores = preference_scores(&w.ihr, &w.member_asns());
    let valid: Vec<_> = scores.iter().filter(|s| s.rpki == RpkiStatus::Valid).copied().collect();
    let invalid: Vec<_> = scores
        .iter()
        .filter(|s| s.rpki.is_invalid())
        .copied()
        .collect();
    assert!(!valid.is_empty() && !invalid.is_empty());
    // Small worlds carry only a handful of Invalid pairs, so compare the
    // robust statistic (mean score) rather than the fraction above zero,
    // which is what the bench harness reports at paper scale.
    let mean = |v: &[manrs_ecosystem::core::PreferenceScore]| {
        v.iter().map(|s| s.score).sum::<f64>() / v.len() as f64
    };
    assert!(
        mean(&invalid) < mean(&valid),
        "invalid mean preference ({:.3}) must sit below valid ({:.3})",
        mean(&invalid),
        mean(&valid)
    );
    // And the paper's own statistic: the fraction of pairs preferring
    // MANRS transit (Fig. 9's "14% vs 34%").
    assert!(
        fraction_preferring_manrs(&invalid) < fraction_preferring_manrs(&valid),
        "invalid pairs must prefer MANRS transit less often than valid pairs"
    );
}

/// §8.2 shape: among large networks, MANRS members keep *less* valid IRR
/// state than non-members (RPKI-era neglect), while still leading on
/// RPKI.
#[test]
fn large_manrs_neglect_irr() {
    let w = world();
    let metrics = compute_action4(&w.ihr);
    let members = w.member_asns();
    let large = |asn: &Asn| w.cones.size_class(*asn) == SizeClass::Large;
    let manrs_irr = mean(
        metrics
            .iter()
            .filter(|(asn, _)| members.contains(asn) && large(asn))
            .map(|(_, m)| m.og_irr_valid_pct()),
    );
    let non_irr = mean(
        metrics
            .iter()
            .filter(|(asn, _)| !members.contains(asn) && large(asn))
            .map(|(_, m)| m.og_irr_valid_pct()),
    );
    if let (Some(manrs_irr), Some(non_irr)) = (manrs_irr, non_irr) {
        assert!(
            manrs_irr < non_irr + 5.0,
            "large MANRS IRR validity {manrs_irr:.1}% should not exceed large non-MANRS {non_irr:.1}% by much"
        );
    }
}

/// Membership itself must skew toward larger networks, as in §7.
#[test]
fn membership_skews_large() {
    let w = world();
    let members = w.member_asns();
    let rate = |class: SizeClass| {
        let (mut m, mut t) = (0usize, 0usize);
        for asn in w.world.topology.asns() {
            if w.cones.size_class(asn) == class {
                t += 1;
                if members.contains(&asn) {
                    m += 1;
                }
            }
        }
        m as f64 / t.max(1) as f64
    };
    assert!(rate(SizeClass::Large) > rate(SizeClass::Small));
}

/// The observed conformance rate of MANRS ISPs lands in the paper's
/// ballpark (the vast majority conformant, but not all).
#[test]
fn most_but_not_all_members_conformant() {
    let w = world();
    let metrics = compute_action4(&w.ihr);
    let members = w.member_asns();
    let verdicts: Vec<Action4Verdict> = members
        .iter()
        .map(|asn| action4_verdict(metrics.get(asn), ConformanceThreshold::Isp))
        .collect();
    let conformant = verdicts.iter().filter(|v| v.is_conformant()).count();
    let rate = conformant as f64 / verdicts.len() as f64;
    assert!(
        (0.75..=1.0).contains(&rate),
        "conformance rate {rate:.2} out of the credible band"
    );
    assert!(
        verdicts.iter().any(|v| !v.is_conformant()),
        "a calibrated world should include some unconformant members"
    );
}
