//! Longitudinal behaviour: yearly growth series and weekly conformance
//! stability (§7, §8.5, §8.6).

use manrs_ecosystem::prelude::*;
use std::sync::OnceLock;

fn world() -> &'static ScenarioWorld {
    static WORLD: OnceLock<ScenarioWorld> = OnceLock::new();
    WORLD.get_or_init(|| ScenarioWorld::builder(ScenarioConfig::small(4)).build())
}

#[test]
fn growth_series_is_monotone() {
    let w = world();
    let dates: Vec<Date> = SnapshotSeries::yearly(w).map(|s| s.date).collect();
    let series = ParticipationAnalysis::growth_series(&w.manrs, &dates);
    for pair in series.windows(2) {
        assert!(pair[0].orgs <= pair[1].orgs);
        assert!(pair[0].asns <= pair[1].asns);
    }
    let last = series.last().unwrap();
    assert!(last.orgs > 0 && last.asns >= last.orgs);
}

#[test]
fn saturation_series_rises_and_separates() {
    let w = world();
    let snaps: Vec<_> = SnapshotSeries::yearly(w).collect();
    let mut points = Vec::new();
    for snap in &snaps {
        points.push(rpki_saturation(&snap.table, &snap.members, &snap.vrps, snap.date));
    }
    // Saturation rises over the years for both groups...
    let first = points.first().unwrap();
    let last = points.last().unwrap();
    assert!(last.manrs_pct >= first.manrs_pct);
    assert!(last.non_manrs_pct >= first.non_manrs_pct);
    // ...and MANRS ends clearly ahead (Fig. 6's 58.2% vs 30.2% shape).
    assert!(last.manrs_pct > last.non_manrs_pct);
}

#[test]
fn brazil_wave_shows_in_lacnic_counts() {
    let w = world();
    let series = ParticipationAnalysis::by_rir_series(
        &w.manrs,
        &w.world.topology,
        &[Date::ymd(2020, 1, 1), Date::ymd(2021, 1, 1)],
    );
    let before = series[0].1.get(&Rir::Lacnic).copied().unwrap_or(0);
    let after = series[1].1.get(&Rir::Lacnic).copied().unwrap_or(0);
    assert!(
        after > before,
        "the 2020 NIC.br wave must grow LACNIC membership ({before} -> {after})"
    );
}

#[test]
fn weekly_stability_mostly_stable() {
    let w = world();
    let snapshots: Vec<_> = SnapshotSeries::weekly(w, 12, 0.004).map(|s| s.ihr).collect();
    assert_eq!(snapshots.len(), 12);
    let members: Vec<Asn> = w.member_asns().into_iter().collect();
    let histories = conformance_histories(&snapshots, &members, ConformanceThreshold::Isp);
    let summary = stability_summary(&histories);
    let stable = summary.get(&StabilityClass::AlwaysConformant).copied().unwrap_or(0)
        + summary.get(&StabilityClass::AlwaysUnconformant).copied().unwrap_or(0);
    let fluctuating = summary.get(&StabilityClass::Fluctuating).copied().unwrap_or(0);
    assert!(
        stable > fluctuating * 3,
        "most members stay put (stable {stable}, fluctuating {fluctuating})"
    );
}

#[test]
fn higher_churn_more_fluctuation() {
    let w = world();
    let members: Vec<Asn> = w.member_asns().into_iter().collect();
    let count_fluct = |churn: f64| {
        let snaps: Vec<_> = SnapshotSeries::weekly(w, 8, churn).map(|s| s.ihr).collect();
        let hist = conformance_histories(&snaps, &members, ConformanceThreshold::Isp);
        stability_summary(&hist)
            .get(&StabilityClass::Fluctuating)
            .copied()
            .unwrap_or(0)
    };
    assert!(count_fluct(0.0) == 0);
    assert!(count_fluct(0.05) >= count_fluct(0.0));
}

#[test]
fn registration_completeness_in_credible_band() {
    let w = world();
    let c = ParticipationAnalysis::registration_completeness(
        &w.manrs,
        &w.world.orgs,
        &w.observed_table,
        Date::ymd(2022, 5, 1),
    );
    assert!(c.total() > 0);
    let full = c.fully_registered() as f64 / c.total() as f64;
    // The paper: 70% fully registered, 82% all space via registered.
    assert!(
        (0.4..=1.0).contains(&full),
        "fully-registered fraction {full:.2} implausible"
    );
    assert!(c.all_space_via_registered() >= c.fully_registered());
}
