//! End-to-end pipeline invariants on a seeded world.

use manrs_ecosystem::prelude::*;
use std::sync::OnceLock;

fn world() -> &'static ScenarioWorld {
    static WORLD: OnceLock<ScenarioWorld> = OnceLock::new();
    WORLD.get_or_init(|| ScenarioWorld::builder(ScenarioConfig::small(1)).build())
}

#[test]
fn deterministic_rebuild() {
    let again = ScenarioWorld::builder(ScenarioConfig::small(1)).build();
    let w = world();
    assert_eq!(w.announcements, again.announcements);
    assert_eq!(w.ihr.prefix_origins.len(), again.ihr.prefix_origins.len());
    assert_eq!(w.ihr.transits.len(), again.ihr.transits.len());
    assert_eq!(w.observed_table.entries(), again.observed_table.entries());
}

#[test]
fn observations_match_announcements() {
    let w = world();
    assert_eq!(w.rib.observations.len(), w.announcements.len());
    for (obs, ann) in w.rib.observations.iter().zip(&w.announcements) {
        assert_eq!(obs.prefix, ann.prefix);
        assert_eq!(obs.origin, ann.origin);
        assert_eq!(obs.rpki, ann.rpki);
        assert_eq!(obs.irr, ann.irr);
    }
}

#[test]
fn every_path_runs_vantage_to_origin() {
    let w = world();
    for obs in w.rib.visible() {
        for path in w.rib.paths_of(obs) {
            assert_eq!(*path.last().unwrap(), obs.origin);
            assert!(w.vantages.contains(path.first().unwrap()));
            // Paths are simple.
            let mut sorted = path.to_vec();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), path.len());
        }
    }
}

#[test]
fn ihr_datasets_are_consistent_with_rib() {
    let w = world();
    assert_eq!(w.ihr.prefix_origins.len(), w.rib.visible_count());
    // Every transit row's AS appears on at least one of that
    // observation's paths and is never the origin.
    for t in &w.ihr.transits {
        assert_ne!(t.transit, t.origin);
        assert!(t.hegemony > 0.0 && t.hegemony <= 1.0);
        let obs = w
            .rib
            .observations
            .iter()
            .find(|o| o.prefix == t.prefix && o.origin == t.origin)
            .expect("transit row corresponds to an observation");
        assert!(w.rib.paths_of(obs).any(|p| p.contains(&t.transit)));
    }
}

#[test]
fn metrics_cover_exactly_the_observed_ases() {
    let w = world();
    let a4 = compute_action4(&w.ihr);
    let origins: std::collections::BTreeSet<Asn> =
        w.ihr.prefix_origins.iter().map(|po| po.origin).collect();
    assert_eq!(a4.keys().copied().collect::<std::collections::BTreeSet<_>>(), origins);
    let a1 = compute_action1(&w.ihr);
    let transits: std::collections::BTreeSet<Asn> =
        w.ihr.transits.iter().map(|t| t.transit).collect();
    assert_eq!(a1.keys().copied().collect::<std::collections::BTreeSet<_>>(), transits);
}

#[test]
fn percentages_are_bounded() {
    let w = world();
    for m in compute_action4(&w.ihr).values() {
        for pct in [m.og_rpki_valid_pct(), m.og_irr_valid_pct(), m.og_conformant_pct()] {
            assert!((0.0..=100.0).contains(&pct));
        }
        assert!(m.conformant <= m.originated);
    }
    for m in compute_action1(&w.ihr).values() {
        for pct in [m.pg_rpki_invalid_pct(), m.pg_irr_invalid_pct(), m.pg_unconformant_pct()] {
            assert!((0.0..=100.0).contains(&pct));
        }
        assert!(m.customer_propagated <= m.propagated);
        assert!(m.customer_unconformant <= m.customer_propagated);
    }
}

#[test]
fn relying_party_accounting_holds() {
    let w = world();
    assert_eq!(
        w.rp_report.accepted + w.rp_report.rejected_total(),
        w.rp_report.examined
    );
    assert_eq!(w.rp_report.accepted, w.vrps.len());
}

#[test]
fn both_address_families_flow_through_the_pipeline() {
    use manrs_ecosystem::net::AddressFamily;
    let w = world();
    let v6_announced = w
        .announcements
        .iter()
        .filter(|a| a.prefix.family() == AddressFamily::Ipv6)
        .count();
    assert!(v6_announced > 0, "dual-stack world must announce IPv6");
    // v6 announcements are validated (some Valid exist), visible, and
    // reach the analysis datasets.
    assert!(w
        .announcements
        .iter()
        .any(|a| a.prefix.family() == AddressFamily::Ipv6 && a.rpki == RpkiStatus::Valid));
    assert!(w
        .ihr
        .prefix_origins
        .iter()
        .any(|po| po.prefix.family() == AddressFamily::Ipv6));
    assert!(w
        .ihr
        .transits
        .iter()
        .any(|t| t.prefix.family() == AddressFamily::Ipv6));
}

#[test]
fn member_sets_are_subsets_of_the_topology() {
    let w = world();
    for asn in w.member_asns() {
        assert!(w.world.topology.contains(asn), "{asn} in MANRS but not in topology");
    }
    for asn in &w.truth_rov {
        assert!(w.world.topology.contains(*asn));
    }
}
