//! Failure injection: hijacks, registry corruption, vantage loss. The
//! pipeline must degrade the way the paper's §11 limitations describe —
//! never panic, and never hallucinate visibility it does not have.

use manrs_ecosystem::prelude::*;
use manrs_ecosystem::bgp::TableCollector;
use std::sync::OnceLock;

fn world() -> &'static ScenarioWorld {
    static WORLD: OnceLock<ScenarioWorld> = OnceLock::new();
    WORLD.get_or_init(|| ScenarioWorld::builder(ScenarioConfig::small(3)).build())
}

/// A more-specific hijack against a ROA-protected victim is RPKI Invalid
/// and reaches fewer ASes than the same hijack against an unprotected
/// victim, because deployed ROV filters it.
#[test]
fn rov_contains_hijacks_of_signed_prefixes() {
    let w = world();
    // Pick a victim whose announcement is RPKI Valid and one NotFound.
    let signed = w
        .announcements
        .iter()
        .find(|a| a.rpki == RpkiStatus::Valid && a.prefix.len() < 24)
        .expect("signed victim exists");
    let unsigned = w
        .announcements
        .iter()
        .find(|a| a.rpki == RpkiStatus::NotFound && a.irr == IrrStatus::NotFound && a.prefix.len() < 24)
        .expect("unsigned victim exists");
    let attacker = *w.vantages.last().expect("vantages exist");

    let run = |victim: &Announcement| {
        let hijack = Incident::OriginHijack { victim_prefix: victim.prefix, attacker };
        let ann = hijack.announcement(&w.vrps, &w.irr).expect("exact hijacks always announce");
        let rib = TableCollector::new(&w.world.topology, &w.policies, &w.vantages)
            .plan()
            .collect(&[ann]);
        (ann, rib.observations[0].paths.len())
    };

    let (signed_ann, signed_seen) = run(signed);
    let (unsigned_ann, unsigned_seen) = run(unsigned);
    assert_eq!(signed_ann.rpki, RpkiStatus::InvalidAsn, "hijack of signed space is Invalid");
    assert_eq!(unsigned_ann.rpki, RpkiStatus::NotFound, "hijack of unsigned space is NotFound");
    assert!(
        signed_seen <= unsigned_seen,
        "ROV must not make the signed hijack MORE visible ({signed_seen} vs {unsigned_seen})"
    );
}

/// Removing vantage points only ever shrinks visibility (§11: limited
/// routing table visibility).
#[test]
fn fewer_vantages_never_increase_visibility() {
    let w = world();
    let full = w.rib.visible_count();
    let half: Vec<Asn> = w.vantages.iter().copied().take(w.vantages.len() / 2).collect();
    let rib_half = TableCollector::new(&w.world.topology, &w.policies, &half)
        .plan()
        .collect(&w.announcements);
    assert!(rib_half.visible_count() <= full);
    let rib_none = TableCollector::new(&w.world.topology, &w.policies, &[])
        .plan()
        .collect(&w.announcements);
    assert_eq!(rib_none.visible_count(), 0);
}

/// Revoking every CA kills the VRP set; all announcements become RPKI
/// NotFound and conformance falls back to the IRR.
#[test]
fn revoking_all_cas_degrades_to_irr_only() {
    let w = world();
    let mut repo = w.repository.clone();
    let ca_ids: Vec<_> = w
        .repository
        .roas()
        .map(|r| r.ca)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for ca in ca_ids {
        repo.revoke_ca(ca).unwrap();
    }
    let (vrps, report) = RelyingParty::new(Date::ymd(2022, 5, 1)).validate(&repo);
    assert!(vrps.is_empty());
    assert_eq!(report.accepted, 0);
    for a in &w.announcements {
        let status = validate_origin(&vrps, &a.prefix, a.origin);
        assert_eq!(status, RpkiStatus::NotFound);
    }
}

/// Corrupt RPSL text yields errors with line numbers, not panics, and
/// parseable objects around unknown classes still load.
#[test]
fn corrupt_rpsl_is_an_error_not_a_panic() {
    let bad_inputs = [
        "route: 10.0.0.0/33\norigin: AS1\n",
        "route: 10.0.0.0/8\n", // missing origin
        "route: banana\norigin: AS1\n",
        "   leading continuation\n",
        "route: 10.0.0.0/8\norigin: ASnope\n",
    ];
    for text in bad_inputs {
        assert!(manrs_ecosystem::irr::rpsl::parse_file(text).is_err(), "{text:?}");
    }
    // A file mixing unknown classes and a good object parses the good one.
    let mixed = "person: Someone\naddress: nowhere\n\nroute: 10.0.0.0/8\norigin: AS1\n";
    let objs = manrs_ecosystem::irr::rpsl::parse_file(mixed).unwrap();
    assert_eq!(objs.len(), 1);
}

/// An announcement for space nobody holds (bogon) is NotFound in both
/// registries and MANRS-unconformant only if... it is not: NotFound/
/// NotFound is the grey zone. The pipeline must classify, not crash.
#[test]
fn bogon_announcements_are_grey_zone() {
    let w = world();
    let bogon: Prefix = "240.0.0.0/8".parse().unwrap();
    let origin = Asn(64_499);
    let rpki = validate_origin(&w.vrps, &bogon, origin);
    let irr = validate_irr(&w.irr, &bogon, origin);
    assert_eq!(rpki, RpkiStatus::NotFound);
    assert_eq!(irr, IrrStatus::NotFound);
    let ann = Announcement::new(bogon, origin, rpki, irr);
    assert!(!ann.is_manrs_conformant());
    assert!(!ann.is_manrs_unconformant());
}

/// AS0 ROAs make every announcement of the prefix Invalid — the §8.1
/// Indonesian ISP case must be reproducible on demand.
#[test]
fn as0_roa_invalidates_the_holder() {
    let w = world();
    // Find an AS0 VRP if the calibrated world minted one; otherwise
    // force the situation directly.
    let mut vrps = VrpSet::new();
    let victim: Prefix = "10.0.0.0/16".parse().unwrap();
    vrps.insert(Vrp::new(victim, Asn::ZERO, 16));
    assert_eq!(
        validate_origin(&vrps, &victim, Asn(64_500)),
        RpkiStatus::InvalidAsn
    );
    // And the world's own AS0 misconfigurations, if any, behave the same.
    let as0_roas = w
        .repository
        .roas()
        .filter(|r| r.roa.asn.is_zero() && !r.revoked)
        .count();
    if as0_roas > 0 {
        let any_as0 = w
            .repository
            .roas()
            .find(|r| r.roa.asn.is_zero() && !r.revoked)
            .unwrap();
        let status = validate_origin(&w.vrps, &any_as0.roa.prefix, Asn(64_500));
        assert!(matches!(status, RpkiStatus::InvalidAsn | RpkiStatus::NotFound));
    }
}
