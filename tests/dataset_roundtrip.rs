//! The on-disk round trip: a built world serialized through every
//! dataset format (RIB dump, VRP CSV, RPSL, as-rel, as2org), parsed
//! back, and analyzed — the conformance verdicts must be identical to
//! the in-memory pipeline's. This is the path the `manrs-audit` CLI
//! drives.

use manrs_ecosystem::bgp::{parse_table_dump, write_table_dump};
use manrs_ecosystem::irr::{rpsl, IrrDatabase, IrrRegistry, RpslObject};
use manrs_ecosystem::prelude::*;
use manrs_ecosystem::rpki::{parse_vrps_csv, write_vrps_csv};
use manrs_ecosystem::topology::{datasets, AsInfo, NetworkKind};
use std::sync::OnceLock;

fn world() -> &'static ScenarioWorld {
    static WORLD: OnceLock<ScenarioWorld> = OnceLock::new();
    WORLD.get_or_init(|| ScenarioWorld::builder(ScenarioConfig::small(6)).build())
}

/// Serializes and reparses every dataset, rebuilding the analysis inputs.
fn round_trip() -> (manrs_ecosystem::ihr::IhrSnapshot, VrpSet, IrrRegistry) {
    let w = world();
    // RPKI: VRP set → CSV → VRP set.
    let vrp_list: Vec<Vrp> = w.vrps.iter().into_iter().copied().collect();
    let vrps: VrpSet = parse_vrps_csv(&write_vrps_csv(&vrp_list))
        .expect("own CSV parses")
        .into_iter()
        .collect();
    // IRR: all route objects → RPSL text → one database.
    let mut objects: Vec<RpslObject> = Vec::new();
    for db in w.irr.databases() {
        objects.extend(db.routes().into_iter().cloned().map(RpslObject::Route));
    }
    let text = rpsl::serialize_file(&objects);
    let mut db = IrrDatabase::new("FILE", None);
    for obj in rpsl::parse_file(&text).expect("own RPSL parses") {
        db.add(obj);
    }
    let mut irr = IrrRegistry::new();
    irr.add_database(db);
    // Topology: as-rel + as2org.
    let (cp, pp) = datasets::parse_as_rel(&datasets::write_as_rel(&w.world.topology))
        .expect("own as-rel parses");
    let (infos, _) =
        datasets::parse_as2org(&datasets::write_as2org(&w.world.topology, &w.world.orgs))
            .expect("own as2org parses");
    let mut topology = AsTopology::new();
    for info in infos {
        topology.add_as(AsInfo { kind: NetworkKind::Stub, ..info });
    }
    for (p, c) in cp {
        topology.add_provider_customer(p, c);
    }
    for (a, b) in pp {
        topology.add_peer(a, b);
    }
    // RIB: dump text → parsed, revalidated against the reparsed registries.
    let dump = write_table_dump(&w.rib, 0);
    let rib = parse_table_dump(&dump, &vrps, &irr).expect("own dump parses");
    let ihr = build_snapshot(&rib, &topology);
    (ihr, vrps, irr)
}

#[test]
fn statuses_survive_the_file_round_trip() {
    let w = world();
    let (ihr, vrps, irr) = round_trip();
    // Same visible set.
    assert_eq!(ihr.prefix_origins.len(), w.rib.visible_count());
    // Every revalidated status matches the in-memory one.
    for obs in w.rib.visible() {
        assert_eq!(validate_origin(&vrps, &obs.prefix, obs.origin), obs.rpki);
        assert_eq!(validate_irr(&irr, &obs.prefix, obs.origin), obs.irr);
    }
}

#[test]
fn action4_verdicts_identical_after_round_trip() {
    let w = world();
    let (ihr, ..) = round_trip();
    let direct = compute_action4(&w.ihr);
    let via_files = compute_action4(&ihr);
    for asn in w.member_asns() {
        let a = action4_verdict(direct.get(&asn), ConformanceThreshold::Isp);
        let b = action4_verdict(via_files.get(&asn), ConformanceThreshold::Isp);
        assert_eq!(a, b, "{asn} verdict changed through the file round trip");
    }
}

/// Regression: the cached visible count must survive a serde round
/// trip. It used to be `#[serde(default)]`, so a deserialized RIB
/// reported `visible_count() == 0` no matter how many observations
/// were visible; it is now recomputed on deserialization.
#[test]
fn visible_count_survives_serde_round_trip() {
    // Offline builds patch serde_json with a no-op stub; skip when
    // round-tripping plainly doesn't work.
    if !serde_json::to_string(&7u32).map(|s| s == "7").unwrap_or(false) {
        return;
    }
    let w = world();
    assert!(w.rib.visible_count() > 0, "fixture world must see routes");
    let json = serde_json::to_string(&w.rib).expect("RIB serializes");
    let back: manrs_ecosystem::bgp::CollectedRib =
        serde_json::from_str(&json).expect("RIB deserializes");
    assert_eq!(back.visible_count(), w.rib.visible_count());
    assert_eq!(back.observations, w.rib.observations);
    assert_eq!(back.pool(), w.rib.pool());
    // Paths still resolve after the round trip.
    for (a, b) in w.rib.visible().zip(back.visible()) {
        assert_eq!(w.rib.materialize_paths(a), back.materialize_paths(b));
    }
}

#[test]
fn action1_metrics_identical_after_round_trip() {
    let w = world();
    let (ihr, ..) = round_trip();
    let direct = compute_action1(&w.ihr);
    let via_files = compute_action1(&ihr);
    assert_eq!(direct.len(), via_files.len());
    for (asn, m) in &direct {
        let f = via_files.get(asn).expect("transit AS survives round trip");
        assert_eq!(m.propagated, f.propagated);
        assert_eq!(m.rpki_invalid, f.rpki_invalid);
        assert_eq!(m.customer_propagated, f.customer_propagated);
        assert_eq!(m.customer_unconformant, f.customer_unconformant);
    }
}
