//! End-to-end verification of the paper's formulas on a hand-built
//! world small enough to compute by hand, plus behaviour-bracket tests
//! (all-perfect and all-negligent operator populations).

use manrs_ecosystem::prelude::*;
use manrs_ecosystem::scenario::{BehaviorMatrix, BehaviorModel};

/// Hand-built world:
///
/// ```text
///      AS1 ──────── AS2     (peers; both vantages)
///       │            │
///      AS3          AS4     (customers of 1 / 2)
///      /  \          │
///   AS5    AS6      (AS4 originates p4)
/// ```
///
/// * AS5 originates p5a (RPKI Valid) and p5b (RPKI Invalid, IRR Invalid).
/// * AS6 originates p6 (IRR Valid only).
/// * AS4 originates p4 (nothing registered).
fn build() -> (AsTopology, Vec<Announcement>, Vec<Asn>) {
    let mut t = AsTopology::new();
    for asn in 1..=6 {
        t.add_as(manrs_ecosystem::topology::AsInfo {
            asn: Asn(asn),
            org: manrs_ecosystem::topology::OrgId(asn),
            rir: Rir::Arin,
            country: "US".into(),
            kind: manrs_ecosystem::topology::NetworkKind::Transit,
        });
    }
    t.add_peer(Asn(1), Asn(2));
    t.add_provider_customer(Asn(1), Asn(3));
    t.add_provider_customer(Asn(2), Asn(4));
    t.add_provider_customer(Asn(3), Asn(5));
    t.add_provider_customer(Asn(3), Asn(6));
    let anns = vec![
        Announcement::new("10.5.0.0/16".parse().unwrap(), Asn(5), RpkiStatus::Valid, IrrStatus::Valid),
        Announcement::new("10.55.0.0/16".parse().unwrap(), Asn(5), RpkiStatus::InvalidAsn, IrrStatus::InvalidAsn),
        Announcement::new("10.6.0.0/16".parse().unwrap(), Asn(6), RpkiStatus::NotFound, IrrStatus::Valid),
        Announcement::new("10.4.0.0/16".parse().unwrap(), Asn(4), RpkiStatus::NotFound, IrrStatus::NotFound),
    ];
    (t, anns, vec![Asn(1), Asn(2)])
}

fn snapshot() -> manrs_ecosystem::ihr::IhrSnapshot {
    let (t, anns, vantages) = build();
    let rib = TableCollector::new(&t, &PolicyTable::default(), &vantages)
        .plan()
        .collect(&anns);
    build_snapshot(&rib, &t)
}

#[test]
fn formula_1_2_3_by_hand() {
    let ihr = snapshot();
    let a4 = compute_action4(&ihr);
    // AS5: 2 prefixes, 1 RPKI valid, 1 IRR valid, 1 conformant.
    let m5 = &a4[&Asn(5)];
    assert_eq!(m5.originated, 2);
    assert_eq!(m5.og_rpki_valid_pct(), 50.0); // Formula 1
    assert_eq!(m5.og_irr_valid_pct(), 50.0); // Formula 2
    assert_eq!(m5.og_conformant_pct(), 50.0); // Formula 3
    // AS6: 1 prefix, IRR valid → conformant without RPKI.
    let m6 = &a4[&Asn(6)];
    assert_eq!(m6.og_rpki_valid_pct(), 0.0);
    assert_eq!(m6.og_conformant_pct(), 100.0);
    assert!(m6.irr_only());
    // AS4: grey zone — neither conformant nor RPKI valid.
    let m4 = &a4[&Asn(4)];
    assert_eq!(m4.og_conformant_pct(), 0.0);
    // Verdicts at the ISP bar.
    assert_eq!(
        action4_verdict(Some(m5), ConformanceThreshold::Isp),
        Action4Verdict::Unconformant
    );
    assert_eq!(
        action4_verdict(Some(m6), ConformanceThreshold::Cdn),
        Action4Verdict::Conformant
    );
}

#[test]
fn formula_4_5_6_by_hand() {
    let ihr = snapshot();
    let a1 = compute_action1(&ihr);
    // AS3 transits everything AS5 and AS6 announce: 3 prefixes, one
    // RPKI-Invalid, one IRR-Invalid (same prefix), all from customers.
    let m3 = &a1[&Asn(3)];
    assert_eq!(m3.propagated, 3);
    assert!((m3.pg_rpki_invalid_pct() - 100.0 / 3.0).abs() < 1e-9); // Formula 4
    assert!((m3.pg_irr_invalid_pct() - 100.0 / 3.0).abs() < 1e-9); // Formula 5
    assert_eq!(m3.customer_propagated, 3);
    assert_eq!(m3.customer_unconformant, 1);
    assert!((m3.pg_unconformant_pct() - 100.0 / 3.0).abs() < 1e-9); // Formula 6
    assert_eq!(action1_verdict(Some(m3)), Action1Verdict::Unconformant);
    // AS1 also carries them (customer side via AS3).
    let m1 = &a1[&Asn(1)];
    assert_eq!(m1.customer_propagated, 3);
    // AS2 carries AS4's prefix from its customer, and AS5/AS6's prefixes
    // from its *peer* AS1 — peer-learned pairs don't count in Formula 6.
    let m2 = &a1[&Asn(2)];
    assert_eq!(m2.customer_propagated, 1);
    assert_eq!(m2.customer_unconformant, 0);
    assert_eq!(action1_verdict(Some(m2)), Action1Verdict::Conformant);
    // AS5/AS6 are origins only: no transit rows at all.
    assert!(!a1.contains_key(&Asn(5)));
}

#[test]
fn equation_9_by_hand() {
    let ihr = snapshot();
    // MANRS = {AS1, AS3}.
    let members: std::collections::BTreeSet<Asn> = [Asn(1), Asn(3)].into();
    let scores = preference_scores(&ihr, &members);
    // p5a (valid): paths [1,3,5] and [2,1,3,5]. With 2 viewpoints:
    // hegemony 1 = 2/2, 3 = 2/2 (members), 2 = 1/2 (non-member).
    // Score = (1 + 1) − 0.5 = 1.5.
    let valid = scores
        .iter()
        .find(|s| s.rpki == RpkiStatus::Valid)
        .expect("valid pair present");
    assert!((valid.score - 1.5).abs() < 1e-9);
    // p4: paths [2,4] and [1,2,4]: hegemony 2 = 1, 1 = 0.5 (member),
    // 4 is origin. Score = 0.5 − 1.0 = −0.5.
    let p4 = scores
        .iter()
        .find(|s| s.origin == Asn(4))
        .expect("AS4 pair present");
    assert!((p4.score + 0.5).abs() < 1e-9);
}

#[test]
fn behaviour_brackets() {
    // All-perfect world: everyone registers correctly and filters.
    let mut cfg = ScenarioConfig::small(30);
    let perfect = BehaviorMatrix {
        manrs: [BehaviorModel::PERFECT; 3],
        non_manrs: [BehaviorModel::PERFECT; 3],
        manrs_cdn: BehaviorModel::PERFECT,
    };
    cfg.behaviors = perfect;
    // Disable mis-origination noise.
    cfg.perturbations.sibling_misorigin = 0.0;
    cfg.perturbations.neighbor_misorigin = 0.0;
    cfg.perturbations.unrelated_misorigin = 0.0;
    cfg.perturbations.as0_misconfiguration = 0.0;
    let world = ScenarioWorld::builder(cfg).build();
    let metrics = compute_action4(&world.ihr);
    for (asn, m) in &metrics {
        assert_eq!(
            m.og_conformant_pct(),
            100.0,
            "{asn} unconformant in a perfect world"
        );
        assert!(m.rpki_invalid == 0, "{asn} originates invalid in a perfect world");
    }
    let a1 = compute_action1(&world.ihr);
    for (asn, m) in &a1 {
        assert_eq!(m.customer_unconformant, 0, "{asn} leaks in a perfect world");
    }

    // All-negligent world: nothing is registered anywhere.
    let mut cfg = ScenarioConfig::small(31);
    cfg.behaviors = BehaviorMatrix {
        manrs: [BehaviorModel::NEGLIGENT; 3],
        non_manrs: [BehaviorModel::NEGLIGENT; 3],
        manrs_cdn: BehaviorModel::NEGLIGENT,
    };
    let world = ScenarioWorld::builder(cfg).build();
    assert!(world.vrps.is_empty());
    assert_eq!(world.irr.route_count(), 0);
    for po in &world.ihr.prefix_origins {
        assert_eq!(po.rpki, RpkiStatus::NotFound);
        assert_eq!(po.irr, IrrStatus::NotFound);
    }
}
