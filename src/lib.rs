//! # manrs-ecosystem
//!
//! A full reproduction of *Mind Your MANRS: Measuring the MANRS
//! Ecosystem* (IMC '22) as a Rust library: the measurement pipeline, the
//! registries and routing substrates it runs on, and a calibrated
//! synthetic Internet to run it against.
//!
//! This facade re-exports every subsystem under one roof:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`net`] | `manrs-net` | prefixes, ASNs, tries, address-space accounting |
//! | [`rpki`] | `manrs-rpki` | ROAs, relying party, RFC 6811 validation |
//! | [`irr`] | `manrs-irr` | RPSL objects, IRR databases, IRR validity |
//! | [`topology`] | `manrs-topology` | AS graph, cones, CAIDA-shaped datasets |
//! | [`bgp`] | `manrs-bgp` | Gao–Rexford propagation, filtering, collectors |
//! | [`ihr`] | `manrs-ihr` | prefix-origin/transit datasets, AS hegemony |
//! | [`core`] | `manrs-core` | the paper's analyses (participation, Action 1/4, impact) |
//! | [`scenario`] | `manrs-scenario` | calibrated world generation and timelines |
//! | [`service`] | `manrs-service` | sharded snapshot query service with epoch-rotated reads |
//!
//! ## Quickstart
//!
//! ```
//! use manrs_ecosystem::prelude::*;
//!
//! // Build a small seeded world and measure Action 4 conformance.
//! let world = ScenarioWorld::builder(ScenarioConfig::small(42)).build();
//! let metrics = compute_action4(&world.ihr);
//! let members = world.member_asns();
//! let conformant = members
//!     .iter()
//!     .filter(|asn| {
//!         action4_verdict(metrics.get(asn), ConformanceThreshold::Isp).is_conformant()
//!     })
//!     .count();
//! assert!(conformant > 0);
//! ```
//!
//! See `examples/` for complete scenarios and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.

pub use manrs_bgp as bgp;
pub use manrs_core as core;
pub use manrs_ihr as ihr;
pub use manrs_irr as irr;
pub use manrs_net as net;
pub use manrs_rpki as rpki;
pub use manrs_scenario as scenario;
pub use manrs_service as service;
pub use manrs_topology as topology;

/// The commonly-used names in one import.
///
/// Only the current surface is exported here — 0.4.0 removed the
/// closed `FilteringPolicy` struct and the `Hijack`/`HijackKind` pair
/// without shims. Old call sites map to the composable equivalents:
///
/// | removed (0.3.0) | use instead (0.4.0) |
/// |-----------------|---------------------|
/// | `bgp::FilteringPolicy { rov, .. }` | [`PolicySet`](manrs_bgp::PolicySet)` of `[`PolicyExtension`](manrs_bgp::PolicyExtension)`s (e.g. `PolicySet::MANRS_ISP`)` |
/// | `bgp::Hijack { .., kind: HijackKind::ExactPrefix }` | [`Incident::OriginHijack`](manrs_bgp::Incident) |
/// | `bgp::Hijack { .., kind: HijackKind::MoreSpecific }` | [`Incident::SubprefixHijack`](manrs_bgp::Incident) |
/// | `hijack.forged_announcement(..)` | [`Incident::announcement`](manrs_bgp::Incident::announcement)` (fallible: host routes cannot split)` |
///
/// Serving-layer types ([`SnapshotService`](manrs_service::SnapshotService),
/// [`Query`](manrs_service::Query), …) are part of the prelude so the
/// quickstart path is one import.
pub mod prelude {
    pub use manrs_bgp::{
        propagate_leak_into, Announcement, CollectedRib, CollectionPlan, CollectionStrategy,
        CostReport, Incident, IncidentError, ParallelConfig, PathId, PathInterner, PathPool,
        PolicyExtension, PolicySet, PolicyTable, PropagationScratch, RouteAttrs,
        TableCollector, VantageSet,
    };
    pub use manrs_core::{
        action1_verdict, action4_verdict, attribute_mismatches, compute_action1,
        compute_action4, conformance_histories, fraction_preferring_manrs,
        preference_scores, rpki_saturation, stability_summary, Action1Metrics,
        Action1Verdict, Action4Metrics, Action4Verdict, ConformanceThreshold, Ecdf,
        ManrsProgram, ManrsRegistry, MemberRecord, ParticipationAnalysis, StabilityClass,
    };
    pub use manrs_ihr::{
        build_snapshot, hegemony_scores, BiasReport, HegemonyCounter, IhrSnapshot,
        SelectionScratch, VantageRanking, VantageScore, VantageSelector,
    };
    pub use manrs_irr::{validate_irr, IrrDatabase, IrrRegistry, IrrStatus, RouteObject};
    pub use manrs_net::{Asn, Date, Ipv4Prefix, Prefix, Rir};
    pub use manrs_rpki::{validate_origin, RelyingParty, Roa, RpkiRepository, RpkiStatus, Vrp, VrpSet};
    pub use manrs_scenario::{
        weekly_steps, BehaviorMatrix, EngineFeed, IncidentProfile, PolicyMix, RegistryDelta,
        ScenarioConfig, ScenarioWorld, ScenarioWorldBuilder, SeriesStep, SnapshotSeries,
        SweepBase, SweepPlan, SweepReport, TimelineEngine, TimelineSnapshot, TrialWorkspace,
        YearlySnapshot,
    };
    pub use manrs_service::{
        ConformanceSummary, HegemonySummary, MixImportSummary, PolicyMixDescriptor, Query,
        QueryResponse, RotationPolicy, ServiceBuilder, ServiceClient, ServiceStats,
        ShardRouter, SnapshotHandle, SnapshotService,
    };
    pub use manrs_topology::{AsTopology, ConeAnalysis, Prefix2As, SizeClass, SizeThresholds};
}
