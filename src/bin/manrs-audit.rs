//! `manrs-audit` — file-driven conformance auditing.
//!
//! The paper's §12 promises to "make our analysis code available to
//! network operators to help them monitor their state of routing
//! security and to non-MANRS networks for checking if they meet the
//! requirements to join MANRS". This binary is that tool, operating on
//! dataset files in the same shapes the original pipeline consumed:
//!
//! ```sh
//! # Write a seeded world's datasets to a directory:
//! manrs-audit generate <dir> [seed]
//!
//! # Audit one AS against those files:
//! manrs-audit audit <dir> <asn>
//! ```
//!
//! `<dir>` holds: `rib.dump` (TABLE_DUMP2 text), `vrps.csv` (validated
//! ROAs), `irr.db` (RPSL), `as-rel.txt` and `as2org.txt` (CAIDA shapes).

use manrs_ecosystem::bgp::{parse_table_dump, write_table_dump};
use manrs_ecosystem::core::{ConformanceThreshold, MemberReport};
use manrs_ecosystem::irr::{rpsl, IrrDatabase, IrrRegistry, RpslObject};
use manrs_ecosystem::prelude::*;
use manrs_ecosystem::rpki::{parse_vrps_csv, write_vrps_csv};
use manrs_ecosystem::topology::datasets;
use manrs_ecosystem::topology::{AsInfo, NetworkKind};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") if args.len() >= 2 => {
            let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
            generate(Path::new(&args[1]), seed)
        }
        Some("audit") if args.len() == 3 => audit(Path::new(&args[1]), &args[2]),
        _ => {
            eprintln!("usage: manrs-audit generate <dir> [seed]");
            eprintln!("       manrs-audit audit <dir> <asn>");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn generate(dir: &Path, seed: u64) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all(dir)?;
    eprintln!("building world (seed {seed}) ...");
    let world = ScenarioWorld::builder(ScenarioConfig::small(seed)).build();
    std::fs::write(dir.join("rib.dump"), write_table_dump(&world.rib, 1_651_363_200))?;
    let vrps: Vec<Vrp> = world.vrps.iter().into_iter().copied().collect();
    std::fs::write(dir.join("vrps.csv"), write_vrps_csv(&vrps))?;
    // Flatten every IRR database into one RPSL file (sources preserved
    // in each object's `source:` attribute).
    let mut objects: Vec<RpslObject> = Vec::new();
    for db in world.irr.databases() {
        objects.extend(db.routes().into_iter().cloned().map(RpslObject::Route));
        for asn in world.world.topology.asns() {
            if let Some(a) = db.aut_num(asn) {
                objects.push(RpslObject::AutNum(a.clone()));
            }
        }
    }
    std::fs::write(dir.join("irr.db"), rpsl::serialize_file(&objects))?;
    std::fs::write(dir.join("as-rel.txt"), datasets::write_as_rel(&world.world.topology))?;
    std::fs::write(
        dir.join("as2org.txt"),
        datasets::write_as2org(&world.world.topology, &world.world.orgs),
    )?;
    let members: Vec<String> = world
        .member_asns()
        .iter()
        .map(|a| a.to_string())
        .collect();
    std::fs::write(dir.join("manrs-members.txt"), members.join("\n") + "\n")?;
    eprintln!(
        "wrote rib.dump ({} paths), vrps.csv ({}), irr.db ({} objects), as-rel.txt, as2org.txt, manrs-members.txt",
        world.rib.visible().map(|o| o.paths.len()).sum::<usize>(),
        vrps.len(),
        objects.len()
    );
    Ok(())
}

fn audit(dir: &Path, asn_arg: &str) -> Result<(), Box<dyn std::error::Error>> {
    let asn: Asn = asn_arg.parse()?;
    // Load registries.
    let vrp_list = parse_vrps_csv(&std::fs::read_to_string(dir.join("vrps.csv"))?)?;
    let vrps: VrpSet = vrp_list.into_iter().collect();
    let mut db = IrrDatabase::new("FILE", None);
    for obj in rpsl::parse_file(&std::fs::read_to_string(dir.join("irr.db"))?)? {
        db.add(obj);
    }
    let mut irr = IrrRegistry::new();
    irr.add_database(db);
    // Load the topology (for customer relationships in the IHR build).
    let (cp, pp) = datasets::parse_as_rel(&std::fs::read_to_string(dir.join("as-rel.txt"))?)?;
    let (infos, _orgs) =
        datasets::parse_as2org(&std::fs::read_to_string(dir.join("as2org.txt"))?)?;
    let mut topology = AsTopology::new();
    for info in infos {
        topology.add_as(AsInfo { kind: NetworkKind::Stub, ..info });
    }
    for (p, c) in cp {
        topology.add_provider_customer(p, c);
    }
    for (a, b) in pp {
        topology.add_peer(a, b);
    }
    // Load and revalidate the RIB, then build the IHR view.
    let rib = parse_table_dump(&std::fs::read_to_string(dir.join("rib.dump"))?, &vrps, &irr)?;
    let ihr = build_snapshot(&rib, &topology);
    let report = MemberReport::build(
        asn,
        Date::ymd(2022, 5, 1),
        &ihr,
        ConformanceThreshold::Isp,
        None,
    );
    print!("{}", report.render());
    Ok(())
}
