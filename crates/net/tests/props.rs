//! Property-based tests for the network primitives: every data structure is
//! checked against a naive model implementation.

use manrs_net::{AddressSpace, IntervalSet, Ipv4Prefix, Prefix, PrefixMap};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Strategy for arbitrary canonical IPv4 prefixes.
fn v4_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| {
        Ipv4Prefix::from_bits_truncated(bits, len).expect("len in range")
    })
}

/// Strategy biased toward prefixes that collide (small space).
fn clustered_v4_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (0u32..16, 24u8..=32).prop_map(|(host, len)| {
        let bits = 0x0A00_0000 | (host << 4);
        Ipv4Prefix::from_bits_truncated(bits, len).expect("len in range")
    })
}

proptest! {
    /// Display → FromStr is the identity on canonical prefixes.
    #[test]
    fn prefix_display_parse_round_trip(p in v4_prefix()) {
        let s = p.to_string();
        let back: Ipv4Prefix = s.parse().expect("canonical display re-parses");
        prop_assert_eq!(p, back);
    }

    /// Containment agrees with the range view: a contains b iff a's
    /// address range includes b's.
    #[test]
    fn containment_matches_ranges(a in v4_prefix(), b in v4_prefix()) {
        let by_ranges = a.range_start() <= b.range_start() && b.range_end() <= a.range_end();
        prop_assert_eq!(a.contains(&b), by_ranges);
    }

    /// Parent of a child is the prefix itself.
    #[test]
    fn parent_child_inverse(p in v4_prefix()) {
        if let Some((lo, hi)) = p.children() {
            prop_assert_eq!(lo.parent().unwrap(), p);
            prop_assert_eq!(hi.parent().unwrap(), p);
            prop_assert!(p.contains(&lo) && p.contains(&hi));
            prop_assert!(!lo.overlaps(&hi));
        }
    }

    /// Truncation is idempotent and never sets host bits.
    #[test]
    fn truncation_idempotent(bits in any::<u32>(), len in 0u8..=32) {
        let p = Ipv4Prefix::from_bits_truncated(bits, len).unwrap();
        let again = Ipv4Prefix::new(Ipv4Addr::from(p.bits()), len).unwrap();
        prop_assert_eq!(p, again);
    }

    /// Trie covering query agrees with a naive scan.
    #[test]
    fn trie_covering_matches_naive(
        stored in prop::collection::vec(clustered_v4_prefix(), 0..40),
        query in clustered_v4_prefix(),
    ) {
        let mut map: PrefixMap<Ipv4Prefix> = PrefixMap::new();
        for p in &stored {
            map.insert(Prefix::V4(*p), *p);
        }
        let mut got: Vec<Ipv4Prefix> =
            map.covering(&Prefix::V4(query)).into_iter().copied().collect();
        got.sort();
        let mut want: Vec<Ipv4Prefix> =
            stored.iter().copied().filter(|p| p.contains(&query)).collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Trie covered_by query agrees with a naive scan.
    #[test]
    fn trie_covered_by_matches_naive(
        stored in prop::collection::vec(clustered_v4_prefix(), 0..40),
        query in clustered_v4_prefix(),
    ) {
        let mut map: PrefixMap<Ipv4Prefix> = PrefixMap::new();
        for p in &stored {
            map.insert(Prefix::V4(*p), *p);
        }
        let mut got: Vec<Ipv4Prefix> =
            map.covered_by(&Prefix::V4(query)).into_iter().copied().collect();
        got.sort();
        let mut want: Vec<Ipv4Prefix> =
            stored.iter().copied().filter(|p| query.contains(p)).collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// IntervalSet membership and length agree with a BTreeSet model on a
    /// small universe.
    #[test]
    fn interval_set_matches_model(
        ops in prop::collection::vec((0u128..200, 0u128..40), 0..30),
    ) {
        let mut set = IntervalSet::new();
        let mut model: BTreeSet<u128> = BTreeSet::new();
        for (start, width) in ops {
            let end = start + width;
            set.insert(start, end);
            model.extend(start..=end);
        }
        prop_assert_eq!(set.len(), model.len() as u128);
        for v in 0u128..=250 {
            prop_assert_eq!(set.contains(v), model.contains(&v));
        }
        // Canonical: intervals sorted, disjoint, non-adjacent.
        for w in set.intervals().windows(2) {
            prop_assert!(w[0].1 + 1 < w[1].0);
        }
    }

    /// Intersection length agrees with the model.
    #[test]
    fn intersection_matches_model(
        a_ops in prop::collection::vec((0u128..200, 0u128..30), 0..15),
        b_ops in prop::collection::vec((0u128..200, 0u128..30), 0..15),
    ) {
        let mut a = IntervalSet::new();
        let mut am: BTreeSet<u128> = BTreeSet::new();
        for (s, w) in a_ops {
            a.insert(s, s + w);
            am.extend(s..=s + w);
        }
        let mut b = IntervalSet::new();
        let mut bm: BTreeSet<u128> = BTreeSet::new();
        for (s, w) in b_ops {
            b.insert(s, s + w);
            bm.extend(s..=s + w);
        }
        prop_assert_eq!(a.intersection_len(&b), am.intersection(&bm).count() as u128);
    }

    /// AddressSpace counts a union of prefixes without double counting.
    #[test]
    fn address_space_matches_model(
        prefixes in prop::collection::vec(clustered_v4_prefix(), 0..25),
    ) {
        let ps: Vec<Prefix> = prefixes.iter().copied().map(Prefix::V4).collect();
        let space = AddressSpace::from_prefixes(&ps);
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for p in &prefixes {
            model.extend(p.range_start()..=p.range_end());
        }
        prop_assert_eq!(space.v4_len(), model.len() as u128);
    }

    /// A CoveringShape mutated by any random patch sequence answers
    /// every covering query with the same value multiset as a fresh
    /// flatten of the mutated trie. Layout may differ (a patched arena
    /// keeps closure runs a fresh flatten prunes), outcomes may not.
    #[test]
    fn patched_shape_matches_fresh_flatten(
        initial in prop::collection::vec((clustered_v4_prefix(), 0u32..4, 0u8..4), 0..12),
        ops in prop::collection::vec(
            (clustered_v4_prefix(), 0u32..4, 0u8..4, any::<bool>()),
            1..30,
        ),
    ) {
        let mut map: PrefixMap<(u32, u8)> = PrefixMap::new();
        for &(p, a, l) in &initial {
            map.insert(Prefix::V4(p), (65000 + a, 24 + l));
        }
        let mut asns = Vec::new();
        let mut lens = Vec::new();
        let mut shape = map.flatten_shape(|&(a, l)| {
            asns.push(a);
            lens.push(l);
        });
        for &(p, a, l, added) in &ops {
            let prefix = Prefix::V4(p);
            let value = (65000 + a, 24 + l);
            if added {
                map.insert(prefix, value);
                prop_assert!(shape
                    .patch_insert(&prefix, value, (&mut asns, &mut lens))
                    .is_some());
            } else {
                // Mirror VrpSet::remove_one: strip at most one copy and
                // only splice when the trie actually held one.
                let mut one = false;
                let removed = map.remove_where(&prefix, |v| {
                    if !one && *v == value {
                        one = true;
                        true
                    } else {
                        false
                    }
                });
                if removed == 1 {
                    prop_assert!(shape
                        .patch_remove(&prefix, value, (&mut asns, &mut lens))
                        .is_some());
                }
            }
        }
        if shape.fragmentation() > 0.3 {
            shape.compact((&mut asns, &mut lens));
        }
        let mut fresh_asns = Vec::new();
        let mut fresh_lens = Vec::new();
        let fresh = map.flatten_shape(|&(a, l)| {
            fresh_asns.push(a);
            fresh_lens.push(l);
        });
        let probes: Vec<Prefix> = initial
            .iter()
            .map(|&(p, ..)| Prefix::V4(p))
            .chain(ops.iter().map(|&(p, ..)| Prefix::V4(p)))
            .chain([Prefix::V4(
                Ipv4Prefix::from_bits_truncated(0x0A00_0000, 8).expect("len in range"),
            )])
            .collect();
        for q in &probes {
            let mut got: Vec<(u32, u8)> =
                shape.covering_run(q).map(|i| (asns[i], lens[i])).collect();
            got.sort_unstable();
            let mut want: Vec<(u32, u8)> = fresh
                .covering_run(q)
                .map(|i| (fresh_asns[i], fresh_lens[i]))
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
        prop_assert!(shape.live_len() >= fresh.live_len());
    }
}
