//! Flattened covering-query index and the branch-free match kernel.
//!
//! [`crate::PrefixMap::covering`] answers the RFC 6811 covering query by
//! chasing `Box`ed trie nodes and collecting `&T` references into a fresh
//! `Vec` — fine for one-off lookups, hostile to full-table validation
//! where millions of (prefix, origin) pairs hit the same frozen set.
//! [`CoveringShape`] is the compiled form of that query: the trie is
//! frozen into two flat node arrays (one per address family) whose nodes
//! carry the *closure run* of their path — the values stored at the node
//! **and at every ancestor** — as one contiguous `(start, len)` range in
//! an external struct-of-arrays arena. A covering query is then a
//! branchless-ish bit walk over `u32` indices ending in a single offset
//! range: no pointers chased twice, no allocation, and the candidate
//! attributes (`asns`, `max_lens`) sit in contiguous lanes the match
//! kernel can sweep.
//!
//! The shape stores no values itself: [`crate::PrefixMap::flatten_shape`]
//! emits values in arena order through a callback, and each consumer
//! (RPKI VRPs, IRR route objects) builds its own parallel attribute
//! arrays. Duplicating ancestor entries into every descendant run trades
//! a little arena memory (registries nest shallowly in practice) for
//! exactly one contiguous range per query.
//!
//! [`match_run`] is the shared evaluation kernel: a chunked, branch-free
//! sweep over one candidate run computing "any candidate fully matches"
//! and "any candidate has a matching origin" in one pass — the two bits
//! that, with run emptiness, decide the whole RFC 6811 / IRR status
//! lattice (Valid / InvalidLength / InvalidAsn / NotFound). The default
//! build relies on the autovectorizer ([`match_run_autovec`]); the
//! `simd` cargo feature swaps in an explicit `std::simd` form
//! ([`match_run_simd`], nightly-only) with identical outcomes.
//!
//! # In-place patching
//!
//! A frozen shape no longer has to be thrown away on registry churn:
//! [`CoveringShape::patch_insert`] / [`CoveringShape::patch_remove`]
//! splice one `(prefix, value)` registration into the arena without a
//! rebuild. The arena behaves as a gap buffer: removals shrink a run in
//! place and abandon one slot, insertions grow a run in place when it
//! sits at the arena tail and otherwise relocate it there, abandoning
//! the old slots. Abandoned ("dead") slots are never referenced by any
//! run; their share is reported by [`CoveringShape::fragmentation`] and
//! reclaimed by [`CoveringShape::compact`]. Patching preserves *match
//! outcomes* — the multiset of values each covering query resolves —
//! not the exact arena layout a fresh flatten would produce.

use crate::asn::Asn;
use crate::prefix::Prefix;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Sentinel for "no child" in the flat node arrays.
pub(crate) const FLAT_NONE: u32 = u32::MAX;

/// One flattened trie node: child indices into the same array plus the
/// closure run of its root-to-node path in the external arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct FlatNode {
    pub(crate) children: [u32; 2],
    pub(crate) run_start: u32,
    pub(crate) run_len: u32,
}

/// The compiled covering-query structure of a [`crate::PrefixMap`]:
/// flat per-family node arrays whose nodes resolve a covering query to
/// one contiguous arena range. Built by
/// [`crate::PrefixMap::flatten_shape`]; the arena's *values* live with
/// the caller as parallel attribute arrays.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoveringShape {
    pub(crate) v4: Vec<FlatNode>,
    pub(crate) v6: Vec<FlatNode>,
    pub(crate) arena_len: usize,
    /// Arena slots abandoned by patches: allocated but referenced by no
    /// run. Always zero for a freshly flattened shape.
    #[serde(default)]
    pub(crate) dead: usize,
}

fn walk(nodes: &[FlatNode], depth: u8, bit: impl Fn(u8) -> bool) -> Range<usize> {
    let Some(mut node) = nodes.first() else {
        return 0..0;
    };
    for i in 0..depth {
        let child = node.children[bit(i) as usize];
        if child == FLAT_NONE {
            break;
        }
        node = &nodes[child as usize];
    }
    let start = node.run_start as usize;
    start..start + node.run_len as usize
}

impl CoveringShape {
    /// The arena range of every stored value whose prefix covers
    /// `prefix` — the offsets of what [`crate::PrefixMap::covering`]
    /// would have returned, with zero allocation.
    #[inline]
    pub fn covering_run(&self, prefix: &Prefix) -> Range<usize> {
        match prefix {
            Prefix::V4(p) => walk(&self.v4, p.len(), |i| p.bit(i)),
            Prefix::V6(p) => walk(&self.v6, p.len(), |i| p.bit(i)),
        }
    }

    /// `true` if at least one stored value covers `prefix`.
    #[inline]
    pub fn covers(&self, prefix: &Prefix) -> bool {
        !self.covering_run(prefix).is_empty()
    }

    /// Total arena length (closure runs overlap-expanded, so this is
    /// ≥ the source map's `len`). After patching this is the *physical*
    /// column length, dead slots included.
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// Arena slots still referenced by some run.
    pub fn live_len(&self) -> usize {
        self.arena_len - self.dead
    }

    /// Share of the arena occupied by dead (patch-abandoned) slots, in
    /// `[0, 1)`. Fresh shapes report `0.0`; consumers compact past a
    /// threshold of their choosing.
    pub fn fragmentation(&self) -> f64 {
        if self.arena_len == 0 {
            0.0
        } else {
            self.dead as f64 / self.arena_len as f64
        }
    }

    /// Splices one `(prefix, value)` registration into the shape and its
    /// parallel columns, equivalent in match outcomes to re-flattening
    /// the source map with the value inserted. Missing trie spine nodes
    /// are created; the target's closure run and every descendant run
    /// gain one copy of `value` (closure runs re-emit ancestors, so each
    /// own-run below the target splices independently). Cost is
    /// O(spine + subtree nodes + relocated slots); steady-state splices
    /// allocate nothing once the columns carry spare capacity.
    ///
    /// Returns `None` when the splice cannot be represented (`u32`
    /// index overflow) — the shape may then be partially modified and
    /// **must be discarded and rebuilt** by the caller.
    pub fn patch_insert(
        &mut self,
        prefix: &Prefix,
        value: (u32, u8),
        cols: (&mut Vec<u32>, &mut Vec<u8>),
    ) -> Option<PatchStats> {
        debug_assert_eq!(cols.0.len(), cols.1.len());
        debug_assert_eq!(cols.0.len(), self.arena_len);
        let (bits, len, v6) = split_prefix(prefix);
        let nodes = if v6 { &mut self.v6 } else { &mut self.v4 };
        // Worst-case growth of one splice is bounded by the arena
        // itself (relocating the longest run), and the spine adds at
        // most 128 nodes: one conservative up-front check keeps every
        // later u32 narrowing infallible.
        if cols.0.len() >= (u32::MAX / 2) as usize
            || nodes.len() + len as usize + 1 >= FLAT_NONE as usize
        {
            return None;
        }
        let mut stats = PatchStats::default();
        if nodes.is_empty() {
            nodes.push(FlatNode { children: [FLAT_NONE; 2], run_start: 0, run_len: 0 });
        }
        // Spine walk, creating missing nodes as run-inheriting children.
        let mut node_idx = 0usize;
        let mut parent_run = (0u32, 0u32);
        for depth in 0..len {
            let bit = ((bits >> (127 - depth)) & 1) as usize;
            let run = (nodes[node_idx].run_start, nodes[node_idx].run_len);
            let child = nodes[node_idx].children[bit];
            node_idx = if child == FLAT_NONE {
                let new_idx = nodes.len() as u32;
                nodes.push(FlatNode { children: [FLAT_NONE; 2], run_start: run.0, run_len: run.1 });
                nodes[node_idx].children[bit] = new_idx;
                new_idx as usize
            } else {
                child as usize
            };
            parent_run = run;
            stats.spine_steps += 1;
        }
        let t_run = (nodes[node_idx].run_start, nodes[node_idx].run_len);
        let new_run = if t_run == parent_run {
            // No own entries at the target (an inherited — or empty —
            // run): allocate a fresh own run at the tail, re-emitting
            // the inherited closure exactly as `flatten` would.
            let (s, l) = (t_run.0 as usize, t_run.1 as usize);
            let ns = cols.0.len() as u32;
            // Guard like `run_append`: an empty inherited run may have a
            // stale start, and copying zero slots from it still
            // bounds-checks the range.
            if l > 0 {
                cols.0.extend_from_within(s..s + l);
                cols.1.extend_from_within(s..s + l);
            }
            cols.0.push(value.0);
            cols.1.push(value.1);
            stats.slots_moved += l;
            (ns, t_run.1 + 1)
        } else {
            run_append(t_run, value, &mut (cols.0, cols.1), &mut self.dead, &mut stats)
        };
        nodes[node_idx].run_start = new_run.0;
        nodes[node_idx].run_len = new_run.1;
        fix_subtree_insert(
            nodes,
            node_idx,
            t_run,
            new_run,
            value,
            &mut (cols.0, cols.1),
            &mut self.dead,
            &mut stats,
        );
        self.arena_len = cols.0.len();
        Some(stats)
    }

    /// Splices one `(prefix, value)` removal out of the shape and its
    /// parallel columns — the inverse of
    /// [`CoveringShape::patch_insert`]. One copy of `value` is removed
    /// from the target's own run and from every descendant own run
    /// (each re-emits the closure); runs shrink in place by swapping the
    /// victim to the run end, so nothing relocates and exactly one slot
    /// per spliced run goes dead (tail runs pop instead).
    ///
    /// Returns `None` when `(prefix, value)` is not registered — for a
    /// consistent caller that is a no-op before any mutation, but a
    /// defensive caller should treat `None` as "discard and rebuild"
    /// since an inconsistent shape may be left partially modified.
    pub fn patch_remove(
        &mut self,
        prefix: &Prefix,
        value: (u32, u8),
        cols: (&mut Vec<u32>, &mut Vec<u8>),
    ) -> Option<PatchStats> {
        debug_assert_eq!(cols.0.len(), cols.1.len());
        debug_assert_eq!(cols.0.len(), self.arena_len);
        let (bits, len, v6) = split_prefix(prefix);
        let nodes = if v6 { &mut self.v6 } else { &mut self.v4 };
        if nodes.is_empty() {
            return None;
        }
        let mut stats = PatchStats::default();
        let mut node_idx = 0usize;
        let mut parent_run = (0u32, 0u32);
        for depth in 0..len {
            let bit = ((bits >> (127 - depth)) & 1) as usize;
            let child = nodes[node_idx].children[bit];
            if child == FLAT_NONE {
                return None;
            }
            parent_run = (nodes[node_idx].run_start, nodes[node_idx].run_len);
            node_idx = child as usize;
            stats.spine_steps += 1;
        }
        let t_run = (nodes[node_idx].run_start, nodes[node_idx].run_len);
        if t_run == parent_run {
            // Run inherited: the target holds no own entries.
            return None;
        }
        let new_run =
            run_remove_one(t_run, value, &mut (cols.0, cols.1), &mut self.dead, &mut stats)?;
        nodes[node_idx].run_start = new_run.0;
        nodes[node_idx].run_len = new_run.1;
        let ok = fix_subtree_remove(
            nodes,
            node_idx,
            t_run,
            new_run,
            value,
            &mut (cols.0, cols.1),
            &mut self.dead,
            &mut stats,
        );
        self.arena_len = cols.0.len();
        if ok {
            Some(stats)
        } else {
            None
        }
    }

    /// Overwrites this shape with `base`'s state in place, reusing the
    /// node arrays' existing capacity — the arena-layout counterpart of
    /// `Vec::clone_from`. Callers cycling a shape through bounded
    /// splice/unsplice rounds (sweep trial overlays) re-anchor to the
    /// frozen base afterwards: the un-splices already restored *match
    /// outcomes*, but their abandoned slots would otherwise accumulate
    /// across rounds until an allocating compaction fires mid-round.
    /// Allocation-free whenever this shape previously held at least
    /// `base`'s node counts (always true for a clone of `base`). The
    /// caller restores the parallel columns the same way.
    pub fn restore_from(&mut self, base: &CoveringShape) {
        self.v4.clone_from(&base.v4);
        self.v6.clone_from(&base.v6);
        self.arena_len = base.arena_len;
        self.dead = base.dead;
    }

    /// Rewrites the arena densely, dropping every dead slot and
    /// remapping all runs (shared inherited pairs stay shared). The one
    /// patching operation that allocates; callers invoke it when
    /// [`CoveringShape::fragmentation`] crosses their threshold, and may
    /// reserve extra column capacity afterwards to keep subsequent
    /// splices allocation-free.
    pub fn compact(&mut self, cols: (&mut Vec<u32>, &mut Vec<u8>)) {
        debug_assert_eq!(cols.0.len(), cols.1.len());
        let mut new0: Vec<u32> = Vec::with_capacity(self.live_len());
        let mut new1: Vec<u8> = Vec::with_capacity(self.live_len());
        let mut remap: std::collections::BTreeMap<(u32, u32), (u32, u32)> =
            std::collections::BTreeMap::new();
        for nodes in [&mut self.v4, &mut self.v6] {
            for node in nodes.iter_mut() {
                let run = (node.run_start, node.run_len);
                let new = *remap.entry(run).or_insert_with(|| {
                    if run.1 == 0 {
                        (0, 0)
                    } else {
                        let s = new0.len() as u32;
                        let (rs, rl) = (run.0 as usize, run.1 as usize);
                        new0.extend_from_slice(&cols.0[rs..rs + rl]);
                        new1.extend_from_slice(&cols.1[rs..rs + rl]);
                        (s, run.1)
                    }
                });
                node.run_start = new.0;
                node.run_len = new.1;
            }
        }
        *cols.0 = new0;
        *cols.1 = new1;
        self.dead = 0;
        self.arena_len = cols.0.len();
    }
}

/// Work counters of one splice, for the cost decomposition
/// `profile_batch --patch` reports: spine steps walked (node creation
/// included), arena slots copied by run relocations or closure
/// re-emissions, and subtree nodes whose run was fixed up.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// Trie-spine steps walked (and nodes created) reaching the target.
    pub spine_steps: usize,
    /// Arena slots copied while relocating or re-emitting runs.
    pub slots_moved: usize,
    /// Descendant nodes whose run range was rewritten.
    pub nodes_fixed: usize,
}

impl PatchStats {
    /// Accumulates another splice's counters (for averaging).
    pub fn accumulate(&mut self, other: PatchStats) {
        self.spine_steps += other.spine_steps;
        self.slots_moved += other.slots_moved;
        self.nodes_fixed += other.nodes_fixed;
    }
}

/// Left-aligned query bits, bit length, and family of a prefix (the
/// same convention as `BatchScratch::walk_resumed`).
fn split_prefix(prefix: &Prefix) -> (u128, u8, bool) {
    match prefix {
        Prefix::V4(p) => ((p.bits() as u128) << 96, p.len(), false),
        Prefix::V6(p) => (p.bits(), p.len(), true),
    }
}

/// Appends `value` to an own run: in place when the run ends at the
/// arena tail, otherwise by relocating the whole run to the tail (the
/// old slots go dead).
fn run_append(
    run: (u32, u32),
    value: (u32, u8),
    cols: &mut (&mut Vec<u32>, &mut Vec<u8>),
    dead: &mut usize,
    stats: &mut PatchStats,
) -> (u32, u32) {
    let (s, l) = (run.0 as usize, run.1 as usize);
    // An empty run is location-less: its start may dangle past the
    // arena tail after unrelated tail-pops (a removal that drains a run
    // keeps `(start, 0)` while later pops shrink the columns below
    // `start`), so never use it as a copy source — just open a fresh
    // one-slot run at the tail.
    if l == 0 {
        let ns = cols.0.len() as u32;
        cols.0.push(value.0);
        cols.1.push(value.1);
        return (ns, 1);
    }
    if s + l == cols.0.len() {
        cols.0.push(value.0);
        cols.1.push(value.1);
        (run.0, run.1 + 1)
    } else {
        let ns = cols.0.len() as u32;
        cols.0.extend_from_within(s..s + l);
        cols.1.extend_from_within(s..s + l);
        cols.0.push(value.0);
        cols.1.push(value.1);
        *dead += l;
        stats.slots_moved += l;
        (ns, run.1 + 1)
    }
}

/// Removes one copy of `value` from an own run by swapping it to the
/// run end and shrinking; the abandoned slot goes dead unless the run
/// ends at the arena tail (then the columns pop). `None` if the run
/// holds no copy.
fn run_remove_one(
    run: (u32, u32),
    value: (u32, u8),
    cols: &mut (&mut Vec<u32>, &mut Vec<u8>),
    dead: &mut usize,
    stats: &mut PatchStats,
) -> Option<(u32, u32)> {
    let (s, l) = (run.0 as usize, run.1 as usize);
    let idx = (s..s + l).find(|&i| cols.0[i] == value.0 && cols.1[i] == value.1)?;
    let last = s + l - 1;
    cols.0.swap(idx, last);
    cols.1.swap(idx, last);
    if last + 1 == cols.0.len() {
        cols.0.pop();
        cols.1.pop();
    } else {
        *dead += 1;
    }
    stats.slots_moved += 1;
    Some((run.0, run.1 - 1))
}

/// Propagates an insertion below the spliced node: children sharing the
/// old (inherited) run adopt the new one and recurse with the same
/// pair; children with own runs splice `value` into them and recurse
/// with their own old/new pair. An own run shrunk to emptiness is
/// indistinguishable from inheritance, and treating it as inherited is
/// outcome-equivalent (both denote "no own contribution").
#[allow(clippy::too_many_arguments)]
fn fix_subtree_insert(
    nodes: &mut [FlatNode],
    idx: usize,
    old_run: (u32, u32),
    new_run: (u32, u32),
    value: (u32, u8),
    cols: &mut (&mut Vec<u32>, &mut Vec<u8>),
    dead: &mut usize,
    stats: &mut PatchStats,
) {
    for branch in 0..2 {
        let c = nodes[idx].children[branch];
        if c == FLAT_NONE {
            continue;
        }
        let ci = c as usize;
        let c_run = (nodes[ci].run_start, nodes[ci].run_len);
        let (o, n) = if c_run == old_run {
            (old_run, new_run)
        } else {
            (c_run, run_append(c_run, value, cols, dead, stats))
        };
        nodes[ci].run_start = n.0;
        nodes[ci].run_len = n.1;
        stats.nodes_fixed += 1;
        fix_subtree_insert(nodes, ci, o, n, value, cols, dead, stats);
    }
}

/// Propagates a removal below the spliced node (see
/// [`fix_subtree_insert`]); `false` if some own run unexpectedly held
/// no copy of `value` — an inconsistency the caller must repair by
/// rebuilding.
#[allow(clippy::too_many_arguments)]
fn fix_subtree_remove(
    nodes: &mut [FlatNode],
    idx: usize,
    old_run: (u32, u32),
    new_run: (u32, u32),
    value: (u32, u8),
    cols: &mut (&mut Vec<u32>, &mut Vec<u8>),
    dead: &mut usize,
    stats: &mut PatchStats,
) -> bool {
    for branch in 0..2 {
        let c = nodes[idx].children[branch];
        if c == FLAT_NONE {
            continue;
        }
        let ci = c as usize;
        let c_run = (nodes[ci].run_start, nodes[ci].run_len);
        let (o, n) = if c_run == old_run {
            (old_run, new_run)
        } else {
            match run_remove_one(c_run, value, cols, dead, stats) {
                Some(n) => (c_run, n),
                None => return false,
            }
        };
        nodes[ci].run_start = n.0;
        nodes[ci].run_len = n.1;
        stats.nodes_fixed += 1;
        if !fix_subtree_remove(nodes, ci, o, n, value, cols, dead, stats) {
            return false;
        }
    }
    true
}

/// Lanes per chunk of the match kernel. Eight 32-bit lanes fill a
/// 256-bit vector register; the compiler autovectorizes the fixed-width
/// inner loop without any unstable intrinsics.
pub const KERNEL_LANES: usize = 8;

/// What one kernel sweep learns about a candidate run — together with
/// run emptiness, enough to decide the full status lattice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchOutcome {
    /// Some candidate matched origin **and** length (RFC 6811 "match").
    pub any_valid: bool,
    /// Some candidate had a matching origin (length aside) — the
    /// InvalidLength-over-InvalidAsn precedence bit.
    pub any_origin_match: bool,
}

/// Branch-free lane sweep of one covering candidate run.
///
/// `asns[i]`/`max_lens[i]` describe candidate `i`; a candidate is an
/// *origin match* when its ASN equals `origin` (and, with
/// `EXCLUDE_AS0`, is not AS0 — RFC 6811 AS0 ROAs authorize nobody), and
/// *valid* when it is an origin match and `query_len <= max_lens[i]`.
/// The IRR lattice is the same kernel with `EXCLUDE_AS0 = false` and
/// each route object's own prefix length as its max length: a covering
/// object's length is ≤ the query length, so `query_len <= len` is
/// exactly the paper's "same prefix" test.
///
/// Dispatches to [`match_run_simd`] when built with the `simd` cargo
/// feature (nightly `std::simd`), and to [`match_run_autovec`]
/// otherwise; the two are bit-for-bit identical on every input.
#[inline]
pub fn match_run<const EXCLUDE_AS0: bool>(
    asns: &[u32],
    max_lens: &[u8],
    origin: Asn,
    query_len: u8,
) -> MatchOutcome {
    #[cfg(feature = "simd")]
    {
        match_run_simd::<EXCLUDE_AS0>(asns, max_lens, origin, query_len)
    }
    #[cfg(not(feature = "simd"))]
    {
        match_run_autovec::<EXCLUDE_AS0>(asns, max_lens, origin, query_len)
    }
}

/// The portable form of the kernel: a fixed-width inner loop over
/// per-lane accumulator arrays that the compiler autovectorizes on any
/// stable toolchain. Always compiled (the `simd` build uses it as the
/// bit-for-bit reference in tests).
#[inline]
pub fn match_run_autovec<const EXCLUDE_AS0: bool>(
    asns: &[u32],
    max_lens: &[u8],
    origin: Asn,
    query_len: u8,
) -> MatchOutcome {
    debug_assert_eq!(asns.len(), max_lens.len());
    let n = asns.len().min(max_lens.len());
    let origin = origin.value();
    let mut valid = [0u32; KERNEL_LANES];
    let mut hit = [0u32; KERNEL_LANES];
    let mut i = 0;
    while i + KERNEL_LANES <= n {
        for j in 0..KERNEL_LANES {
            let a = asns[i + j];
            let h = (a == origin) as u32
                & if EXCLUDE_AS0 { (a != 0) as u32 } else { 1 };
            hit[j] |= h;
            valid[j] |= h & (query_len <= max_lens[i + j]) as u32;
        }
        i += KERNEL_LANES;
    }
    let mut any_hit = 0u32;
    let mut any_valid = 0u32;
    for j in 0..KERNEL_LANES {
        any_hit |= hit[j];
        any_valid |= valid[j];
    }
    while i < n {
        let a = asns[i];
        let h = (a == origin) as u32 & if EXCLUDE_AS0 { (a != 0) as u32 } else { 1 };
        any_hit |= h;
        any_valid |= h & (query_len <= max_lens[i]) as u32;
        i += 1;
    }
    MatchOutcome { any_valid: any_valid != 0, any_origin_match: any_hit != 0 }
}

/// Explicit `std::simd` form of the kernel: `Simd<u32, 8>` lanes with a
/// masked tail instead of a scalar remainder loop. Outcomes are
/// bit-for-bit identical to [`match_run_autovec`]; the explicit form
/// removes the autovectorizer from the trust base and keeps the tail
/// branch-free. Nightly-only, behind the `simd` cargo feature.
///
/// The tail is handled by masking rather than sentinel padding — a
/// sentinel would need a value no legitimate candidate can carry, and
/// every `u32` is a legitimate ASN.
#[cfg(feature = "simd")]
#[inline]
pub fn match_run_simd<const EXCLUDE_AS0: bool>(
    asns: &[u32],
    max_lens: &[u8],
    origin: Asn,
    query_len: u8,
) -> MatchOutcome {
    use std::simd::prelude::*;

    debug_assert_eq!(asns.len(), max_lens.len());
    let n = asns.len().min(max_lens.len());
    let origin_v = Simd::<u32, KERNEL_LANES>::splat(origin.value());
    let zero = Simd::<u32, KERNEL_LANES>::splat(0);
    let qlen_v = Simd::<u32, KERNEL_LANES>::splat(query_len as u32);
    let mut any_hit = Mask::<i32, KERNEL_LANES>::splat(false);
    let mut any_valid = Mask::<i32, KERNEL_LANES>::splat(false);
    let mut lens = [0u32; KERNEL_LANES];
    let mut i = 0;
    while i + KERNEL_LANES <= n {
        let a = Simd::<u32, KERNEL_LANES>::from_slice(&asns[i..i + KERNEL_LANES]);
        for j in 0..KERNEL_LANES {
            lens[j] = max_lens[i + j] as u32;
        }
        let l = Simd::<u32, KERNEL_LANES>::from_array(lens);
        let mut h = a.simd_eq(origin_v);
        if EXCLUDE_AS0 {
            h &= a.simd_ne(zero);
        }
        any_hit |= h;
        any_valid |= h & qlen_v.simd_le(l);
        i += KERNEL_LANES;
    }
    let rem = n - i;
    if rem > 0 {
        let mut a_arr = [0u32; KERNEL_LANES];
        a_arr[..rem].copy_from_slice(&asns[i..n]);
        lens = [0u32; KERNEL_LANES];
        for j in 0..rem {
            lens[j] = max_lens[i + j] as u32;
        }
        let live = Mask::<i32, KERNEL_LANES>::from_bitmask((1u64 << rem) - 1);
        let a = Simd::<u32, KERNEL_LANES>::from_array(a_arr);
        let l = Simd::<u32, KERNEL_LANES>::from_array(lens);
        let mut h = a.simd_eq(origin_v) & live;
        if EXCLUDE_AS0 {
            h &= a.simd_ne(zero);
        }
        any_hit |= h;
        any_valid |= h & qlen_v.simd_le(l);
    }
    MatchOutcome { any_valid: any_valid.any(), any_origin_match: any_hit.any() }
}

/// Reusable scratch for batched covering queries: sorting a query
/// batch by prefix lets one trie descent serve every origin of the
/// same prefix, and — because sorted neighbors share long common bit
/// paths — lets each descent *resume* from the previous query's path
/// instead of re-walking from the root. All buffers are reused across
/// batches, so steady-state batching performs no allocation.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    order: Vec<u32>,
    /// Node index at each depth of the previous query's walk
    /// (`path[0]` = root, one entry per consumed bit).
    path: Vec<u32>,
    /// Left-aligned bits of the previous query's prefix (v4 bits sit in
    /// the top 32), for longest-common-prefix resume.
    prev_bits: u128,
    prev_v6: bool,
}

impl BatchScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The query indices `0..queries.len()` sorted by `(prefix, index)`
    /// — equal prefixes stay adjacent. In-place unstable sort over a
    /// reused buffer: allocation-free once warm. If the buffer already
    /// holds a prefix-sorted permutation of the right length (the
    /// common case when one pair batch is validated against several
    /// indexes back to back), the O(n log n) sort is skipped after an
    /// O(n) verification.
    pub fn order_by_prefix(&mut self, queries: &[(Prefix, Asn)]) -> &[u32] {
        assert!(queries.len() <= u32::MAX as usize, "batch too large");
        if self.order.len() == queries.len()
            && self
                .order
                .windows(2)
                .all(|w| queries[w[0] as usize].0 <= queries[w[1] as usize].0)
        {
            return &self.order;
        }
        self.order.clear();
        self.order.extend(0..queries.len() as u32);
        self.order.sort_unstable_by_key(|&i| (queries[i as usize].0, i));
        &self.order
    }

    /// Resolves the covering run of every query against `shape`,
    /// visiting queries in prefix-sorted order and invoking
    /// `f(original_index, run)` for each. Equal adjacent prefixes reuse
    /// the previous run outright; distinct neighbors resume the bit
    /// walk from their longest common bit prefix, so a sorted batch
    /// costs amortized O(1) trie steps per query instead of O(len).
    pub fn covering_runs(
        &mut self,
        shape: &CoveringShape,
        queries: &[(Prefix, Asn)],
        mut f: impl FnMut(usize, Range<usize>),
    ) {
        self.order_by_prefix(queries);
        // The walk cache is only meaningful within one (shape, batch)
        // sweep: start from the root.
        self.path.clear();
        let order = std::mem::take(&mut self.order);
        let mut prev: Option<(Prefix, Range<usize>)> = None;
        for &i in &order {
            let prefix = queries[i as usize].0;
            let run = match &prev {
                Some((p, r)) if *p == prefix => r.clone(),
                _ => {
                    let r = self.walk_resumed(shape, &prefix);
                    prev = Some((prefix, r.clone()));
                    r
                }
            };
            f(i as usize, run);
        }
        self.order = order;
    }

    /// One covering walk that resumes from the cached previous path at
    /// the longest common bit prefix. Correct for any query order (the
    /// first `lcp` trie steps of two prefixes are identical by
    /// construction); fastest when queries arrive sorted.
    fn walk_resumed(&mut self, shape: &CoveringShape, prefix: &Prefix) -> Range<usize> {
        let (nodes, bits, len, v6) = match prefix {
            Prefix::V4(p) => (&shape.v4, (p.bits() as u128) << 96, p.len(), false),
            Prefix::V6(p) => (&shape.v6, p.bits(), p.len(), true),
        };
        if nodes.is_empty() {
            self.path.clear();
            self.prev_v6 = v6;
            return 0..0;
        }
        let mut depth: usize;
        if self.prev_v6 == v6 && !self.path.is_empty() {
            let lcp = (self.prev_bits ^ bits).leading_zeros() as usize;
            depth = lcp.min(self.path.len() - 1).min(len as usize);
            self.path.truncate(depth + 1);
        } else {
            self.path.clear();
            self.path.push(0);
            depth = 0;
        }
        self.prev_bits = bits;
        self.prev_v6 = v6;
        let mut node = self.path[depth] as usize;
        while depth < len as usize {
            let bit = (bits >> (127 - depth)) & 1;
            let child = nodes[node].children[bit as usize];
            if child == FLAT_NONE {
                break;
            }
            node = child as usize;
            self.path.push(child);
            depth += 1;
        }
        let start = nodes[node].run_start as usize;
        start..start + nodes[node].run_len as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::PrefixMap;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn empty_shape_covers_nothing() {
        let map: PrefixMap<u8> = PrefixMap::new();
        let mut arena: Vec<u8> = Vec::new();
        let shape = map.flatten_shape(|&v| arena.push(v));
        assert!(arena.is_empty());
        assert_eq!(shape.arena_len(), 0);
        assert!(!shape.covers(&p("10.0.0.0/8")));
        assert_eq!(shape.covering_run(&p("::/0")), 0..0);
    }

    #[test]
    fn runs_are_closure_expanded() {
        let mut map = PrefixMap::new();
        map.insert(p("10.0.0.0/8"), 8u8);
        map.insert(p("10.1.0.0/16"), 16u8);
        map.insert(p("11.0.0.0/8"), 11u8);
        let mut arena: Vec<u8> = Vec::new();
        let shape = map.flatten_shape(|&v| arena.push(v));
        // The /16's run repeats its ancestor /8.
        assert_eq!(shape.arena_len(), 4);
        let run = shape.covering_run(&p("10.1.2.0/24"));
        assert_eq!(&arena[run], &[8, 16]);
        let run = shape.covering_run(&p("10.2.0.0/16"));
        assert_eq!(&arena[run], &[8]);
        let run = shape.covering_run(&p("11.5.0.0/16"));
        assert_eq!(&arena[run], &[11]);
        assert!(shape.covering_run(&p("12.0.0.0/8")).is_empty());
        // Less specific than anything stored: uncovered.
        assert!(!shape.covers(&p("10.0.0.0/7")));
    }

    #[test]
    fn stale_empty_runs_survive_resplicing() {
        // Regression: a removal that drains a run at the arena tail pops
        // the columns and leaves the node with `(old_tail, 0)`; a later
        // pop from the run just below strands that start past the new
        // tail. Splicing through such a node again must not use the
        // stale start as a copy source — it used to panic in the
        // `extend_from_within` bounds check even for the zero-slot copy.
        let mut map = PrefixMap::new();
        map.insert(p("10.0.0.0/8"), 1u32);
        map.insert(p("11.0.0.0/8"), 2u32);
        let mut vals: Vec<u32> = Vec::new();
        let mut shape = map.flatten_shape(|&v| vals.push(v));
        let mut lens: Vec<u8> = vec![0; vals.len()];
        // Drain tail-first: the 11/8 run pops to `(1, 0)`, then the 10/8
        // pop shrinks the arena to 0 — the 11/8 node's empty run now
        // starts past the tail.
        assert!(shape.patch_remove(&p("11.0.0.0/8"), (2, 0), (&mut vals, &mut lens)).is_some());
        assert!(shape.patch_remove(&p("10.0.0.0/8"), (1, 0), (&mut vals, &mut lens)).is_some());
        assert_eq!(vals.len(), 0);
        // Inherited-empty path: the spine child created under 11/8
        // inherits the stale empty run and re-emits it as its own.
        assert!(shape.patch_insert(&p("11.0.0.0/16"), (3, 0), (&mut vals, &mut lens)).is_some());
        // Own-empty path: appending to the stale empty run itself.
        assert!(shape.patch_insert(&p("11.0.0.0/8"), (2, 0), (&mut vals, &mut lens)).is_some());
        assert!(shape.patch_insert(&p("10.0.0.0/8"), (1, 0), (&mut vals, &mut lens)).is_some());
        let run = shape.covering_run(&p("11.0.0.0/24"));
        let mut got: Vec<u32> = vals[run].to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![2, 3]);
        let run = shape.covering_run(&p("10.0.0.0/24"));
        assert_eq!(&vals[run], &[1]);
    }

    #[test]
    fn shape_agrees_with_map_covering() {
        let mut map = PrefixMap::new();
        for s in [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "10.1.0.0/16",
            "10.1.0.0/16",
            "10.1.2.0/24",
            "192.168.0.0/16",
            "2001:db8::/32",
            "2001:db8:0:0:8000::/65",
        ] {
            map.insert(p(s), s.to_owned());
        }
        let mut arena: Vec<String> = Vec::new();
        let shape = map.flatten_shape(|v| arena.push(v.clone()));
        for q in [
            "10.1.2.0/25",
            "10.1.0.0/16",
            "10.9.0.0/16",
            "172.16.0.0/12",
            "2001:db8:0:0:8000::/80",
            "2001:db9::/32",
        ] {
            let q = p(q);
            let want: Vec<String> = map.covering(&q).into_iter().cloned().collect();
            let got: Vec<String> = arena[shape.covering_run(&q)].to_vec();
            assert_eq!(got, want, "query {q}");
            assert_eq!(shape.covers(&q), !want.is_empty());
        }
    }

    #[test]
    fn kernel_matches_scalar_predicates() {
        // 20 candidates exercises both the 8-lane chunks and the tail.
        let asns: Vec<u32> = (0..20).map(|i| i % 4).collect();
        let lens: Vec<u8> = (0..20).map(|i| 16 + (i % 5) as u8).collect();
        for origin in 0..5u32 {
            for qlen in 14..=22u8 {
                for exclude in [false, true] {
                    let scalar_hit = asns.iter().any(|&a| {
                        a == origin && (!exclude || a != 0)
                    });
                    let scalar_valid = asns.iter().zip(&lens).any(|(&a, &l)| {
                        a == origin && (!exclude || a != 0) && qlen <= l
                    });
                    let out = if exclude {
                        match_run::<true>(&asns, &lens, Asn(origin), qlen)
                    } else {
                        match_run::<false>(&asns, &lens, Asn(origin), qlen)
                    };
                    assert_eq!(out.any_origin_match, scalar_hit);
                    assert_eq!(out.any_valid, scalar_valid);
                }
            }
        }
        // Empty run.
        let out = match_run::<true>(&[], &[], Asn(1), 24);
        assert_eq!(out, MatchOutcome::default());
    }

    #[test]
    fn batch_scratch_groups_equal_prefixes() {
        let q = [
            (p("10.1.0.0/16"), Asn(1)),
            (p("10.0.0.0/8"), Asn(2)),
            (p("10.1.0.0/16"), Asn(3)),
        ];
        let mut scratch = BatchScratch::new();
        let order = scratch.order_by_prefix(&q);
        assert_eq!(order, &[1, 0, 2]);
        // Reuse is stable.
        let order = scratch.order_by_prefix(&q[..2]);
        assert_eq!(order, &[1, 0]);
    }

    fn flatten_cols(map: &PrefixMap<(u32, u8)>) -> (CoveringShape, Vec<u32>, Vec<u8>) {
        let mut asns = Vec::new();
        let mut lens = Vec::new();
        let shape = map.flatten_shape(|&(a, l)| {
            asns.push(a);
            lens.push(l);
        });
        (shape, asns, lens)
    }

    /// Sorted value multiset a covering query resolves — the patching
    /// equivalence relation (layout may differ, outcomes may not).
    fn run_multiset(
        shape: &CoveringShape,
        asns: &[u32],
        lens: &[u8],
        q: &Prefix,
    ) -> Vec<(u32, u8)> {
        let mut v: Vec<(u32, u8)> =
            shape.covering_run(q).map(|i| (asns[i], lens[i])).collect();
        v.sort_unstable();
        v
    }

    const PROBES: [&str; 8] = [
        "10.0.0.0/8",
        "10.1.0.0/16",
        "10.1.2.0/24",
        "10.1.2.0/25",
        "10.9.0.0/16",
        "172.16.0.0/12",
        "2001:db8::/32",
        "2001:db8:0:0:8000::/80",
    ];

    #[test]
    fn patched_shape_matches_reflatten() {
        let mut map: PrefixMap<(u32, u8)> = PrefixMap::new();
        for (s, a, l) in [
            ("10.0.0.0/8", 65001, 16),
            ("10.1.0.0/16", 65001, 24),
            ("10.1.0.0/16", 65002, 20),
            ("2001:db8::/32", 65010, 48),
        ] {
            map.insert(p(s), (a, l));
        }
        let (mut shape, mut asns, mut lens) = flatten_cols(&map);
        // A scripted churn sequence hitting every splice path: new leaf
        // under existing cover, new copy on an existing own run, insert
        // at an entry-less interior node, v6, removes from middle and
        // tail, reinsertion after removal.
        let script: [(&str, u32, u8, bool); 9] = [
            ("10.1.2.0/24", 65003, 25, true),
            ("10.1.0.0/16", 65001, 22, true),
            ("10.0.0.0/7", 64999, 8, true),
            ("2001:db8:0:0:8000::/65", 65011, 96, true),
            ("10.1.0.0/16", 65002, 20, false),
            ("10.0.0.0/8", 65001, 16, false),
            ("10.0.0.0/8", 65001, 17, true),
            ("2001:db8::/32", 65010, 48, false),
            ("10.1.2.0/24", 65003, 25, false),
        ];
        for (s, a, l, add) in script {
            let prefix = p(s);
            if add {
                map.insert(prefix, (a, l));
                let stats = shape
                    .patch_insert(&prefix, (a, l), (&mut asns, &mut lens))
                    .expect("insert splice");
                assert!(stats.spine_steps as u8 == prefix.len());
            } else {
                let mut one = true;
                assert_eq!(
                    map.remove_where(&prefix, |v| {
                        let hit = one && *v == (a, l);
                        one &= !hit;
                        hit
                    }),
                    1
                );
                shape
                    .patch_remove(&prefix, (a, l), (&mut asns, &mut lens))
                    .expect("remove splice");
            }
            assert_eq!(asns.len(), shape.arena_len());
            assert_eq!(shape.live_len() + shape.dead, shape.arena_len());
            let (fresh_shape, fresh_asns, fresh_lens) = flatten_cols(&map);
            for q in PROBES {
                let q = p(q);
                assert_eq!(
                    run_multiset(&shape, &asns, &lens, &q),
                    run_multiset(&fresh_shape, &fresh_asns, &fresh_lens, &q),
                    "probe {q} after ({s}, {a}, {l}, add={add})"
                );
            }
        }
        // The churn left dead slots behind; compaction reclaims them
        // without changing any outcome.
        assert!(shape.fragmentation() > 0.0);
        shape.compact((&mut asns, &mut lens));
        assert_eq!(shape.fragmentation(), 0.0);
        assert_eq!(shape.arena_len(), shape.live_len());
        let (fresh_shape, fresh_asns, fresh_lens) = flatten_cols(&map);
        // A patched shape may keep closure re-emission runs at nodes a
        // fresh flatten would prune (all own entries removed), so its
        // live arena only bounds the fresh one from above.
        assert!(shape.live_len() >= fresh_shape.arena_len());
        for q in PROBES {
            let q = p(q);
            assert_eq!(
                run_multiset(&shape, &asns, &lens, &q),
                run_multiset(&fresh_shape, &fresh_asns, &fresh_lens, &q),
            );
        }
    }

    #[test]
    fn patch_insert_grows_empty_shape() {
        let map: PrefixMap<(u32, u8)> = PrefixMap::new();
        let (mut shape, mut asns, mut lens) = flatten_cols(&map);
        shape
            .patch_insert(&p("192.0.2.0/24"), (65000, 24), (&mut asns, &mut lens))
            .expect("splice into empty shape");
        assert_eq!(
            run_multiset(&shape, &asns, &lens, &p("192.0.2.0/28")),
            vec![(65000, 24)]
        );
        assert!(!shape.covers(&p("192.0.0.0/16")));
        assert!(shape.covering_run(&p("198.51.100.0/24")).is_empty());
    }

    #[test]
    fn patch_remove_of_absent_value_is_a_clean_miss() {
        let mut map: PrefixMap<(u32, u8)> = PrefixMap::new();
        map.insert(p("10.0.0.0/8"), (65001, 16));
        let (mut shape, mut asns, mut lens) = flatten_cols(&map);
        let before = (shape.clone(), asns.clone(), lens.clone());
        // Unknown prefix, and known prefix with unknown value: both
        // miss on the spine or the target's own run, before anything
        // mutates.
        for (s, v) in [("10.1.0.0/16", (65001, 16)), ("10.0.0.0/8", (65009, 16))] {
            assert!(shape.patch_remove(&p(s), v, (&mut asns, &mut lens)).is_none());
            assert_eq!((shape.clone(), asns.clone(), lens.clone()), before);
        }
    }

    /// The explicit-SIMD kernel must be bit-for-bit identical to the
    /// autovectorized reference on every input, including the masked
    /// tail and `u32::MAX` ASNs (no sentinel value is available to the
    /// tail, so it must be masked).
    #[cfg(feature = "simd")]
    #[test]
    fn simd_kernel_matches_autovec() {
        // Deterministic pseudo-random batches via a splitmix64 walk.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for n in [0usize, 1, 7, 8, 9, 16, 23, 64, 100] {
            let asns: Vec<u32> = (0..n)
                .map(|_| match next() % 5 {
                    0 => 0,
                    1 => u32::MAX,
                    2 => 65001,
                    _ => (next() % 70000) as u32,
                })
                .collect();
            let lens: Vec<u8> = (0..n).map(|_| (next() % 33) as u8).collect();
            for origin in [0u32, 65001, u32::MAX, 7] {
                for qlen in [0u8, 8, 24, 32] {
                    assert_eq!(
                        match_run_simd::<true>(&asns, &lens, Asn(origin), qlen),
                        match_run_autovec::<true>(&asns, &lens, Asn(origin), qlen),
                        "n={n} origin={origin} qlen={qlen} exclude=true"
                    );
                    assert_eq!(
                        match_run_simd::<false>(&asns, &lens, Asn(origin), qlen),
                        match_run_autovec::<false>(&asns, &lens, Asn(origin), qlen),
                        "n={n} origin={origin} qlen={qlen} exclude=false"
                    );
                }
            }
        }
    }
}
