//! Flattened covering-query index and the branch-free match kernel.
//!
//! [`crate::PrefixMap::covering`] answers the RFC 6811 covering query by
//! chasing `Box`ed trie nodes and collecting `&T` references into a fresh
//! `Vec` — fine for one-off lookups, hostile to full-table validation
//! where millions of (prefix, origin) pairs hit the same frozen set.
//! [`CoveringShape`] is the compiled form of that query: the trie is
//! frozen into two flat node arrays (one per address family) whose nodes
//! carry the *closure run* of their path — the values stored at the node
//! **and at every ancestor** — as one contiguous `(start, len)` range in
//! an external struct-of-arrays arena. A covering query is then a
//! branchless-ish bit walk over `u32` indices ending in a single offset
//! range: no pointers chased twice, no allocation, and the candidate
//! attributes (`asns`, `max_lens`) sit in contiguous lanes the match
//! kernel can sweep.
//!
//! The shape stores no values itself: [`crate::PrefixMap::flatten_shape`]
//! emits values in arena order through a callback, and each consumer
//! (RPKI VRPs, IRR route objects) builds its own parallel attribute
//! arrays. Duplicating ancestor entries into every descendant run trades
//! a little arena memory (registries nest shallowly in practice) for
//! exactly one contiguous range per query.
//!
//! [`match_run`] is the shared evaluation kernel: a chunked, branch-free
//! sweep over one candidate run computing "any candidate fully matches"
//! and "any candidate has a matching origin" in one pass — the two bits
//! that, with run emptiness, decide the whole RFC 6811 / IRR status
//! lattice (Valid / InvalidLength / InvalidAsn / NotFound).

use crate::asn::Asn;
use crate::prefix::Prefix;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Sentinel for "no child" in the flat node arrays.
pub(crate) const FLAT_NONE: u32 = u32::MAX;

/// One flattened trie node: child indices into the same array plus the
/// closure run of its root-to-node path in the external arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct FlatNode {
    pub(crate) children: [u32; 2],
    pub(crate) run_start: u32,
    pub(crate) run_len: u32,
}

/// The compiled covering-query structure of a [`crate::PrefixMap`]:
/// flat per-family node arrays whose nodes resolve a covering query to
/// one contiguous arena range. Built by
/// [`crate::PrefixMap::flatten_shape`]; the arena's *values* live with
/// the caller as parallel attribute arrays.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoveringShape {
    pub(crate) v4: Vec<FlatNode>,
    pub(crate) v6: Vec<FlatNode>,
    pub(crate) arena_len: usize,
}

fn walk(nodes: &[FlatNode], depth: u8, bit: impl Fn(u8) -> bool) -> Range<usize> {
    let Some(mut node) = nodes.first() else {
        return 0..0;
    };
    for i in 0..depth {
        let child = node.children[bit(i) as usize];
        if child == FLAT_NONE {
            break;
        }
        node = &nodes[child as usize];
    }
    let start = node.run_start as usize;
    start..start + node.run_len as usize
}

impl CoveringShape {
    /// The arena range of every stored value whose prefix covers
    /// `prefix` — the offsets of what [`crate::PrefixMap::covering`]
    /// would have returned, with zero allocation.
    #[inline]
    pub fn covering_run(&self, prefix: &Prefix) -> Range<usize> {
        match prefix {
            Prefix::V4(p) => walk(&self.v4, p.len(), |i| p.bit(i)),
            Prefix::V6(p) => walk(&self.v6, p.len(), |i| p.bit(i)),
        }
    }

    /// `true` if at least one stored value covers `prefix`.
    #[inline]
    pub fn covers(&self, prefix: &Prefix) -> bool {
        !self.covering_run(prefix).is_empty()
    }

    /// Total arena length (closure runs overlap-expanded, so this is
    /// ≥ the source map's `len`).
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }
}

/// Lanes per chunk of the match kernel. Eight 32-bit lanes fill a
/// 256-bit vector register; the compiler autovectorizes the fixed-width
/// inner loop without any unstable intrinsics.
pub const KERNEL_LANES: usize = 8;

/// What one kernel sweep learns about a candidate run — together with
/// run emptiness, enough to decide the full status lattice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchOutcome {
    /// Some candidate matched origin **and** length (RFC 6811 "match").
    pub any_valid: bool,
    /// Some candidate had a matching origin (length aside) — the
    /// InvalidLength-over-InvalidAsn precedence bit.
    pub any_origin_match: bool,
}

/// Branch-free lane sweep of one covering candidate run.
///
/// `asns[i]`/`max_lens[i]` describe candidate `i`; a candidate is an
/// *origin match* when its ASN equals `origin` (and, with
/// `EXCLUDE_AS0`, is not AS0 — RFC 6811 AS0 ROAs authorize nobody), and
/// *valid* when it is an origin match and `query_len <= max_lens[i]`.
/// The IRR lattice is the same kernel with `EXCLUDE_AS0 = false` and
/// each route object's own prefix length as its max length: a covering
/// object's length is ≤ the query length, so `query_len <= len` is
/// exactly the paper's "same prefix" test.
#[inline]
pub fn match_run<const EXCLUDE_AS0: bool>(
    asns: &[u32],
    max_lens: &[u8],
    origin: Asn,
    query_len: u8,
) -> MatchOutcome {
    debug_assert_eq!(asns.len(), max_lens.len());
    let n = asns.len().min(max_lens.len());
    let origin = origin.value();
    let mut valid = [0u32; KERNEL_LANES];
    let mut hit = [0u32; KERNEL_LANES];
    let mut i = 0;
    while i + KERNEL_LANES <= n {
        for j in 0..KERNEL_LANES {
            let a = asns[i + j];
            let h = (a == origin) as u32
                & if EXCLUDE_AS0 { (a != 0) as u32 } else { 1 };
            hit[j] |= h;
            valid[j] |= h & (query_len <= max_lens[i + j]) as u32;
        }
        i += KERNEL_LANES;
    }
    let mut any_hit = 0u32;
    let mut any_valid = 0u32;
    for j in 0..KERNEL_LANES {
        any_hit |= hit[j];
        any_valid |= valid[j];
    }
    while i < n {
        let a = asns[i];
        let h = (a == origin) as u32 & if EXCLUDE_AS0 { (a != 0) as u32 } else { 1 };
        any_hit |= h;
        any_valid |= h & (query_len <= max_lens[i]) as u32;
        i += 1;
    }
    MatchOutcome { any_valid: any_valid != 0, any_origin_match: any_hit != 0 }
}

/// Reusable scratch for batched covering queries: sorting a query
/// batch by prefix lets one trie descent serve every origin of the
/// same prefix, and — because sorted neighbors share long common bit
/// paths — lets each descent *resume* from the previous query's path
/// instead of re-walking from the root. All buffers are reused across
/// batches, so steady-state batching performs no allocation.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    order: Vec<u32>,
    /// Node index at each depth of the previous query's walk
    /// (`path[0]` = root, one entry per consumed bit).
    path: Vec<u32>,
    /// Left-aligned bits of the previous query's prefix (v4 bits sit in
    /// the top 32), for longest-common-prefix resume.
    prev_bits: u128,
    prev_v6: bool,
}

impl BatchScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The query indices `0..queries.len()` sorted by `(prefix, index)`
    /// — equal prefixes stay adjacent. In-place unstable sort over a
    /// reused buffer: allocation-free once warm. If the buffer already
    /// holds a prefix-sorted permutation of the right length (the
    /// common case when one pair batch is validated against several
    /// indexes back to back), the O(n log n) sort is skipped after an
    /// O(n) verification.
    pub fn order_by_prefix(&mut self, queries: &[(Prefix, Asn)]) -> &[u32] {
        assert!(queries.len() <= u32::MAX as usize, "batch too large");
        if self.order.len() == queries.len()
            && self
                .order
                .windows(2)
                .all(|w| queries[w[0] as usize].0 <= queries[w[1] as usize].0)
        {
            return &self.order;
        }
        self.order.clear();
        self.order.extend(0..queries.len() as u32);
        self.order.sort_unstable_by_key(|&i| (queries[i as usize].0, i));
        &self.order
    }

    /// Resolves the covering run of every query against `shape`,
    /// visiting queries in prefix-sorted order and invoking
    /// `f(original_index, run)` for each. Equal adjacent prefixes reuse
    /// the previous run outright; distinct neighbors resume the bit
    /// walk from their longest common bit prefix, so a sorted batch
    /// costs amortized O(1) trie steps per query instead of O(len).
    pub fn covering_runs(
        &mut self,
        shape: &CoveringShape,
        queries: &[(Prefix, Asn)],
        mut f: impl FnMut(usize, Range<usize>),
    ) {
        self.order_by_prefix(queries);
        // The walk cache is only meaningful within one (shape, batch)
        // sweep: start from the root.
        self.path.clear();
        let order = std::mem::take(&mut self.order);
        let mut prev: Option<(Prefix, Range<usize>)> = None;
        for &i in &order {
            let prefix = queries[i as usize].0;
            let run = match &prev {
                Some((p, r)) if *p == prefix => r.clone(),
                _ => {
                    let r = self.walk_resumed(shape, &prefix);
                    prev = Some((prefix, r.clone()));
                    r
                }
            };
            f(i as usize, run);
        }
        self.order = order;
    }

    /// One covering walk that resumes from the cached previous path at
    /// the longest common bit prefix. Correct for any query order (the
    /// first `lcp` trie steps of two prefixes are identical by
    /// construction); fastest when queries arrive sorted.
    fn walk_resumed(&mut self, shape: &CoveringShape, prefix: &Prefix) -> Range<usize> {
        let (nodes, bits, len, v6) = match prefix {
            Prefix::V4(p) => (&shape.v4, (p.bits() as u128) << 96, p.len(), false),
            Prefix::V6(p) => (&shape.v6, p.bits(), p.len(), true),
        };
        if nodes.is_empty() {
            self.path.clear();
            self.prev_v6 = v6;
            return 0..0;
        }
        let mut depth: usize;
        if self.prev_v6 == v6 && !self.path.is_empty() {
            let lcp = (self.prev_bits ^ bits).leading_zeros() as usize;
            depth = lcp.min(self.path.len() - 1).min(len as usize);
            self.path.truncate(depth + 1);
        } else {
            self.path.clear();
            self.path.push(0);
            depth = 0;
        }
        self.prev_bits = bits;
        self.prev_v6 = v6;
        let mut node = self.path[depth] as usize;
        while depth < len as usize {
            let bit = (bits >> (127 - depth)) & 1;
            let child = nodes[node].children[bit as usize];
            if child == FLAT_NONE {
                break;
            }
            node = child as usize;
            self.path.push(child);
            depth += 1;
        }
        let start = nodes[node].run_start as usize;
        start..start + nodes[node].run_len as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::PrefixMap;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn empty_shape_covers_nothing() {
        let map: PrefixMap<u8> = PrefixMap::new();
        let mut arena: Vec<u8> = Vec::new();
        let shape = map.flatten_shape(|&v| arena.push(v));
        assert!(arena.is_empty());
        assert_eq!(shape.arena_len(), 0);
        assert!(!shape.covers(&p("10.0.0.0/8")));
        assert_eq!(shape.covering_run(&p("::/0")), 0..0);
    }

    #[test]
    fn runs_are_closure_expanded() {
        let mut map = PrefixMap::new();
        map.insert(p("10.0.0.0/8"), 8u8);
        map.insert(p("10.1.0.0/16"), 16u8);
        map.insert(p("11.0.0.0/8"), 11u8);
        let mut arena: Vec<u8> = Vec::new();
        let shape = map.flatten_shape(|&v| arena.push(v));
        // The /16's run repeats its ancestor /8.
        assert_eq!(shape.arena_len(), 4);
        let run = shape.covering_run(&p("10.1.2.0/24"));
        assert_eq!(&arena[run], &[8, 16]);
        let run = shape.covering_run(&p("10.2.0.0/16"));
        assert_eq!(&arena[run], &[8]);
        let run = shape.covering_run(&p("11.5.0.0/16"));
        assert_eq!(&arena[run], &[11]);
        assert!(shape.covering_run(&p("12.0.0.0/8")).is_empty());
        // Less specific than anything stored: uncovered.
        assert!(!shape.covers(&p("10.0.0.0/7")));
    }

    #[test]
    fn shape_agrees_with_map_covering() {
        let mut map = PrefixMap::new();
        for s in [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "10.1.0.0/16",
            "10.1.0.0/16",
            "10.1.2.0/24",
            "192.168.0.0/16",
            "2001:db8::/32",
            "2001:db8:0:0:8000::/65",
        ] {
            map.insert(p(s), s.to_owned());
        }
        let mut arena: Vec<String> = Vec::new();
        let shape = map.flatten_shape(|v| arena.push(v.clone()));
        for q in [
            "10.1.2.0/25",
            "10.1.0.0/16",
            "10.9.0.0/16",
            "172.16.0.0/12",
            "2001:db8:0:0:8000::/80",
            "2001:db9::/32",
        ] {
            let q = p(q);
            let want: Vec<String> = map.covering(&q).into_iter().cloned().collect();
            let got: Vec<String> = arena[shape.covering_run(&q)].to_vec();
            assert_eq!(got, want, "query {q}");
            assert_eq!(shape.covers(&q), !want.is_empty());
        }
    }

    #[test]
    fn kernel_matches_scalar_predicates() {
        // 20 candidates exercises both the 8-lane chunks and the tail.
        let asns: Vec<u32> = (0..20).map(|i| i % 4).collect();
        let lens: Vec<u8> = (0..20).map(|i| 16 + (i % 5) as u8).collect();
        for origin in 0..5u32 {
            for qlen in 14..=22u8 {
                for exclude in [false, true] {
                    let scalar_hit = asns.iter().any(|&a| {
                        a == origin && (!exclude || a != 0)
                    });
                    let scalar_valid = asns.iter().zip(&lens).any(|(&a, &l)| {
                        a == origin && (!exclude || a != 0) && qlen <= l
                    });
                    let out = if exclude {
                        match_run::<true>(&asns, &lens, Asn(origin), qlen)
                    } else {
                        match_run::<false>(&asns, &lens, Asn(origin), qlen)
                    };
                    assert_eq!(out.any_origin_match, scalar_hit);
                    assert_eq!(out.any_valid, scalar_valid);
                }
            }
        }
        // Empty run.
        let out = match_run::<true>(&[], &[], Asn(1), 24);
        assert_eq!(out, MatchOutcome::default());
    }

    #[test]
    fn batch_scratch_groups_equal_prefixes() {
        let q = [
            (p("10.1.0.0/16"), Asn(1)),
            (p("10.0.0.0/8"), Asn(2)),
            (p("10.1.0.0/16"), Asn(3)),
        ];
        let mut scratch = BatchScratch::new();
        let order = scratch.order_by_prefix(&q);
        assert_eq!(order, &[1, 0, 2]);
        // Reuse is stable.
        let order = scratch.order_by_prefix(&q[..2]);
        assert_eq!(order, &[1, 0]);
    }
}
