//! Error type for parsing and constructing network primitives.

use std::fmt;

/// Errors produced when parsing or constructing ASNs and prefixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The ASN string was not a number, or exceeded the 32-bit range.
    InvalidAsn(String),
    /// The prefix string was not in `addr/len` form.
    MalformedPrefix(String),
    /// The address part of a prefix failed to parse.
    InvalidAddress(String),
    /// The prefix length exceeds the width of the address family
    /// (32 for IPv4, 128 for IPv6).
    InvalidLength { len: u16, max: u8 },
    /// The address has bits set beyond the prefix length
    /// (e.g. `10.0.0.1/8`); prefixes must be in canonical form.
    HostBitsSet(String),
    /// A max-length attribute is shorter than the prefix itself.
    MaxLengthTooShort { prefix_len: u8, max_len: u8 },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidAsn(s) => write!(f, "invalid ASN: {s:?}"),
            NetError::MalformedPrefix(s) => write!(f, "malformed prefix: {s:?}"),
            NetError::InvalidAddress(s) => write!(f, "invalid address: {s:?}"),
            NetError::InvalidLength { len, max } => {
                write!(f, "prefix length {len} exceeds family width {max}")
            }
            NetError::HostBitsSet(s) => {
                write!(f, "prefix {s:?} has host bits set beyond its length")
            }
            NetError::MaxLengthTooShort { prefix_len, max_len } => {
                write!(f, "max length {max_len} is shorter than prefix length {prefix_len}")
            }
        }
    }
}

impl std::error::Error for NetError {}
