//! CIDR prefixes for IPv4 and IPv6.
//!
//! Prefixes are stored in canonical form: the address bits beyond the
//! prefix length are always zero. Construction from non-canonical input is
//! an error (the RPKI and IRR pipelines must never silently reinterpret a
//! registration), but [`Ipv4Prefix::new_truncated`] is available for
//! generators that want the masking behaviour.

use crate::error::NetError;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// The two IP address families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AddressFamily {
    /// 32-bit IPv4.
    Ipv4,
    /// 128-bit IPv6.
    Ipv6,
}

impl AddressFamily {
    /// The number of bits in an address of this family.
    pub const fn width(self) -> u8 {
        match self {
            AddressFamily::Ipv4 => 32,
            AddressFamily::Ipv6 => 128,
        }
    }
}

macro_rules! prefix_impl {
    ($name:ident, $bits:ty, $addr:ty, $width:expr, $family:expr) => {
        impl $name {
            /// The full address space of this family (`0.0.0.0/0` / `::/0`).
            pub const DEFAULT: $name = $name { bits: 0, len: 0 };

            /// Creates a prefix, rejecting over-long lengths and host bits
            /// set beyond the prefix length.
            pub fn new(addr: $addr, len: u8) -> Result<Self, NetError> {
                if len > $width {
                    return Err(NetError::InvalidLength { len: len as u16, max: $width });
                }
                let bits = <$bits>::from(addr);
                let canonical = mask_bits::<$bits>(bits, len, $width);
                if canonical != bits {
                    return Err(NetError::HostBitsSet(format!("{}/{}", addr, len)));
                }
                Ok($name { bits, len })
            }

            /// Creates a prefix, silently zeroing host bits beyond the
            /// length. Intended for generators and arithmetic, not parsers.
            pub fn new_truncated(addr: $addr, len: u8) -> Result<Self, NetError> {
                if len > $width {
                    return Err(NetError::InvalidLength { len: len as u16, max: $width });
                }
                let bits = mask_bits::<$bits>(<$bits>::from(addr), len, $width);
                Ok($name { bits, len })
            }

            /// Creates a prefix directly from raw integer bits, truncating
            /// to canonical form.
            pub fn from_bits_truncated(bits: $bits, len: u8) -> Result<Self, NetError> {
                if len > $width {
                    return Err(NetError::InvalidLength { len: len as u16, max: $width });
                }
                Ok($name { bits: mask_bits::<$bits>(bits, len, $width), len })
            }

            /// The network address of the prefix.
            pub fn addr(&self) -> $addr {
                <$addr>::from(self.bits)
            }

            /// The raw integer value of the network address.
            pub const fn bits(&self) -> $bits {
                self.bits
            }

            /// The prefix length in bits.
            ///
            /// A prefix is never "empty"; the zero-length case is the
            /// default route, tested by `is_default`.
            #[allow(clippy::len_without_is_empty)]
            pub const fn len(&self) -> u8 {
                self.len
            }

            /// `true` only for the default route, which contains everything.
            pub const fn is_default(&self) -> bool {
                self.len == 0
            }

            /// First address covered by the prefix, as an integer.
            pub const fn range_start(&self) -> $bits {
                self.bits
            }

            /// Last address covered by the prefix, as an integer.
            pub fn range_end(&self) -> $bits {
                if self.len == 0 {
                    <$bits>::MAX
                } else if self.len >= $width {
                    self.bits
                } else {
                    self.bits | (<$bits>::MAX >> self.len)
                }
            }

            /// Returns `true` if `self` contains `other` (`other` is equal
            /// to or more specific than `self` and shares the prefix bits).
            pub fn contains(&self, other: &Self) -> bool {
                self.len <= other.len
                    && mask_bits::<$bits>(other.bits, self.len, $width) == self.bits
            }

            /// Returns `true` if the two prefixes share any address.
            pub fn overlaps(&self, other: &Self) -> bool {
                self.contains(other) || other.contains(self)
            }

            /// The immediate parent prefix (one bit shorter), or `None` for
            /// the default route.
            pub fn parent(&self) -> Option<Self> {
                if self.len == 0 {
                    None
                } else {
                    let len = self.len - 1;
                    Some($name { bits: mask_bits::<$bits>(self.bits, len, $width), len })
                }
            }

            /// The two children of the prefix (one bit longer), or `None`
            /// if the prefix is a host route.
            pub fn children(&self) -> Option<(Self, Self)> {
                if self.len >= $width {
                    None
                } else {
                    let len = self.len + 1;
                    let hi_bit: $bits = (1 as $bits) << ($width - len);
                    Some((
                        $name { bits: self.bits, len },
                        $name { bits: self.bits | hi_bit, len },
                    ))
                }
            }

            /// The value of bit `index` (0 = most significant) of the
            /// network address. Used by the radix trie.
            pub fn bit(&self, index: u8) -> bool {
                debug_assert!(index < $width);
                (self.bits >> ($width - 1 - index)) & 1 == 1
            }

            /// Number of addresses covered, as a u128 (2^(width − len)).
            pub fn address_count(&self) -> u128 {
                1u128 << ($width - self.len).min(127)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}/{}", self.addr(), self.len)
            }
        }

        impl FromStr for $name {
            type Err = NetError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let (addr_s, len_s) = s
                    .split_once('/')
                    .ok_or_else(|| NetError::MalformedPrefix(s.to_owned()))?;
                let addr: $addr = addr_s
                    .parse()
                    .map_err(|_| NetError::InvalidAddress(addr_s.to_owned()))?;
                let len: u16 = len_s
                    .parse()
                    .map_err(|_| NetError::MalformedPrefix(s.to_owned()))?;
                if len > $width {
                    return Err(NetError::InvalidLength { len, max: $width });
                }
                Self::new(addr, len as u8)
            }
        }

        impl Ord for $name {
            /// Orders by network address, then by length (shorter first),
            /// which sorts covering prefixes immediately before the
            /// prefixes they cover.
            fn cmp(&self, other: &Self) -> Ordering {
                self.bits.cmp(&other.bits).then(self.len.cmp(&other.len))
            }
        }

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
    };
}

/// Zeroes the bits of `bits` beyond `len` within a `width`-bit value.
fn mask_bits<B>(bits: B, len: u8, width: u8) -> B
where
    B: Copy
        + std::ops::Shr<u32, Output = B>
        + std::ops::Shl<u32, Output = B>
        + Default
        + PartialEq,
{
    if len == 0 {
        B::default()
    } else if len >= width {
        bits
    } else {
        let shift = (width - len) as u32;
        (bits >> shift) << shift
    }
}

/// An IPv4 CIDR prefix in canonical form.
///
/// ```
/// use manrs_net::Ipv4Prefix;
/// let p: Ipv4Prefix = "192.0.2.0/24".parse().unwrap();
/// let sub: Ipv4Prefix = "192.0.2.128/25".parse().unwrap();
/// assert!(p.contains(&sub));
/// assert_eq!(p.address_count(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    bits: u32,
    len: u8,
}

/// An IPv6 CIDR prefix in canonical form.
///
/// ```
/// use manrs_net::Ipv6Prefix;
/// let p: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
/// assert_eq!(p.len(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv6Prefix {
    bits: u128,
    len: u8,
}

prefix_impl!(Ipv4Prefix, u32, Ipv4Addr, 32, AddressFamily::Ipv4);
prefix_impl!(Ipv6Prefix, u128, Ipv6Addr, 128, AddressFamily::Ipv6);

/// An address-family-erased prefix.
///
/// Most of the analysis pipeline is family-agnostic (the paper analyses
/// IPv4 and IPv6 with identical logic), so datasets carry `Prefix` and the
/// family-specific tries are an internal detail of [`crate::PrefixMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Prefix {
    /// An IPv4 prefix.
    V4(Ipv4Prefix),
    /// An IPv6 prefix.
    V6(Ipv6Prefix),
}

impl Prefix {
    /// The address family of the prefix.
    pub const fn family(&self) -> AddressFamily {
        match self {
            Prefix::V4(_) => AddressFamily::Ipv4,
            Prefix::V6(_) => AddressFamily::Ipv6,
        }
    }

    /// The prefix length in bits.
    ///
    /// A prefix is never "empty"; the zero-length case is the default
    /// route, tested by `is_default`.
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(&self) -> u8 {
        match self {
            Prefix::V4(p) => p.len(),
            Prefix::V6(p) => p.len(),
        }
    }

    /// `true` only for a default route.
    pub const fn is_default(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if `self` contains `other`. Prefixes of different
    /// families never contain each other.
    pub fn contains(&self, other: &Prefix) -> bool {
        match (self, other) {
            (Prefix::V4(a), Prefix::V4(b)) => a.contains(b),
            (Prefix::V6(a), Prefix::V6(b)) => a.contains(b),
            _ => false,
        }
    }

    /// Returns `true` if the prefixes share any address.
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// Number of addresses covered (for IPv4, the "/32-equivalents" used
    /// in the paper's address-space percentages).
    pub fn address_count(&self) -> u128 {
        match self {
            Prefix::V4(p) => p.address_count(),
            Prefix::V6(p) => p.address_count(),
        }
    }

    /// The IPv4 prefix, if this is one.
    pub fn as_v4(&self) -> Option<Ipv4Prefix> {
        match self {
            Prefix::V4(p) => Some(*p),
            Prefix::V6(_) => None,
        }
    }

    /// The IPv6 prefix, if this is one.
    pub fn as_v6(&self) -> Option<Ipv6Prefix> {
        match self {
            Prefix::V6(p) => Some(*p),
            Prefix::V4(_) => None,
        }
    }
}

impl From<Ipv4Prefix> for Prefix {
    fn from(p: Ipv4Prefix) -> Self {
        Prefix::V4(p)
    }
}

impl From<Ipv6Prefix> for Prefix {
    fn from(p: Ipv6Prefix) -> Self {
        Prefix::V6(p)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prefix::V4(p) => p.fmt(f),
            Prefix::V6(p) => p.fmt(f),
        }
    }
}

impl FromStr for Prefix {
    type Err = NetError;

    /// Parses either family; the presence of a `:` selects IPv6.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.contains(':') {
            s.parse::<Ipv6Prefix>().map(Prefix::V6)
        } else {
            s.parse::<Ipv4Prefix>().map(Prefix::V4)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_v4() {
        let p = p4("10.0.0.0/8");
        assert_eq!(p.len(), 8);
        assert_eq!(p.to_string(), "10.0.0.0/8");
        assert_eq!(p.addr(), Ipv4Addr::new(10, 0, 0, 0));
    }

    #[test]
    fn parse_and_display_v6() {
        let p = p6("2001:db8::/32");
        assert_eq!(p.len(), 32);
        assert_eq!(p.to_string(), "2001:db8::/32");
    }

    #[test]
    fn rejects_host_bits() {
        assert_eq!(
            "10.0.0.1/8".parse::<Ipv4Prefix>(),
            Err(NetError::HostBitsSet("10.0.0.1/8".into()))
        );
        assert!("2001:db8::1/32".parse::<Ipv6Prefix>().is_err());
    }

    #[test]
    fn truncation_zeroes_host_bits() {
        let p = Ipv4Prefix::new_truncated(Ipv4Addr::new(10, 1, 2, 3), 8).unwrap();
        assert_eq!(p, p4("10.0.0.0/8"));
    }

    #[test]
    fn rejects_overlong() {
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("::/129".parse::<Ipv6Prefix>().is_err());
        assert!(Ipv4Prefix::new_truncated(Ipv4Addr::UNSPECIFIED, 33).is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("banana/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn containment_v4() {
        let a = p4("10.0.0.0/8");
        let b = p4("10.128.0.0/9");
        let c = p4("11.0.0.0/8");
        assert!(a.contains(&b));
        assert!(!b.contains(&a));
        assert!(a.contains(&a));
        assert!(!a.contains(&c));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn default_contains_everything() {
        assert!(Ipv4Prefix::DEFAULT.contains(&p4("203.0.113.0/24")));
        assert!(Ipv6Prefix::DEFAULT.contains(&p6("2001:db8::/32")));
        assert!(Ipv4Prefix::DEFAULT.is_default());
    }

    #[test]
    fn range_bounds() {
        let p = p4("192.0.2.0/24");
        assert_eq!(p.range_start(), u32::from(Ipv4Addr::new(192, 0, 2, 0)));
        assert_eq!(p.range_end(), u32::from(Ipv4Addr::new(192, 0, 2, 255)));
        assert_eq!(Ipv4Prefix::DEFAULT.range_end(), u32::MAX);
    }

    #[test]
    fn parent_child_round_trip() {
        let p = p4("192.0.2.0/24");
        let (lo, hi) = p.children().unwrap();
        assert_eq!(lo, p4("192.0.2.0/25"));
        assert_eq!(hi, p4("192.0.2.128/25"));
        assert_eq!(lo.parent().unwrap(), p);
        assert_eq!(hi.parent().unwrap(), p);
        assert!(Ipv4Prefix::DEFAULT.parent().is_none());
        assert!(p4("192.0.2.1/32").children().is_none());
    }

    #[test]
    fn bit_extraction() {
        let p = p4("128.0.0.0/1");
        assert!(p.bit(0));
        let q = p4("64.0.0.0/2");
        assert!(!q.bit(0));
        assert!(q.bit(1));
    }

    #[test]
    fn address_count() {
        assert_eq!(p4("10.0.0.0/8").address_count(), 1 << 24);
        assert_eq!(p4("192.0.2.1/32").address_count(), 1);
        assert_eq!(Prefix::from(p4("0.0.0.0/0")).address_count(), 1u128 << 32);
    }

    #[test]
    fn family_erased_containment() {
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let b: Prefix = "10.1.0.0/16".parse().unwrap();
        let c: Prefix = "2001:db8::/32".parse().unwrap();
        assert!(a.contains(&b));
        assert!(!a.contains(&c));
        assert!(!a.overlaps(&c));
        assert_eq!(a.family(), AddressFamily::Ipv4);
        assert_eq!(c.family(), AddressFamily::Ipv6);
    }

    #[test]
    fn ordering_sorts_covering_first() {
        let mut v = vec![p4("10.0.0.0/9"), p4("10.0.0.0/8"), p4("9.0.0.0/8")];
        v.sort();
        assert_eq!(v, vec![p4("9.0.0.0/8"), p4("10.0.0.0/8"), p4("10.0.0.0/9")]);
    }
}
