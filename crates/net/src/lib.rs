//! Network primitives for the MANRS ecosystem measurement library.
//!
//! This crate provides the vocabulary types shared by every other crate in
//! the workspace:
//!
//! * [`Asn`] — a 32-bit Autonomous System Number with the special values
//!   (AS0, reserved ranges) that matter for route origin validation.
//! * [`Ipv4Prefix`], [`Ipv6Prefix`] and the address-family-erased
//!   [`Prefix`] — CIDR prefixes with containment and subdivision operations.
//! * [`PrefixMap`] — a binary radix trie keyed by prefix, supporting the
//!   *covering prefix* queries at the heart of RFC 6811 route origin
//!   validation ("find every VRP whose prefix contains this announcement").
//! * [`space`] — exact address-space accounting as unions of disjoint
//!   integer intervals, used for every "% of routed address space" metric
//!   in the paper (Fig. 4b, Fig. 6, Eq. 7–8).
//!
//! The crate is deliberately synchronous and allocation-light: the whole
//! pipeline is CPU-bound batch analysis, so there is no async machinery —
//! just plain data structures with predictable behaviour.
//!
//! The optional `simd` cargo feature (nightly-only) swaps the match
//! kernel in [`flat`] to an explicit `std::simd` implementation; the
//! stable default relies on autovectorization and is outcome-identical.

#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod asn;
pub mod date;
pub mod error;
pub mod flat;
pub mod prefix;
pub mod rir;
pub mod shard;
pub mod space;
pub mod trie;

pub use asn::Asn;
pub use date::Date;
pub use error::NetError;
pub use flat::{match_run, match_run_autovec, BatchScratch, CoveringShape, MatchOutcome, PatchStats};
pub use prefix::{AddressFamily, Ipv4Prefix, Ipv6Prefix, Prefix};
pub use rir::Rir;
pub use shard::{shard_bucket, shard_bucket_span, SHARD_BUCKETS};
pub use space::{AddressSpace, IntervalSet};
pub use trie::PrefixMap;
