//! Autonomous System Numbers.

use crate::error::NetError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 32-bit Autonomous System Number.
///
/// ASNs identify the networks that participate in BGP. The type is a thin
/// newtype over `u32` with the special values that matter for routing
/// security made explicit:
///
/// * [`Asn::ZERO`] (AS0) — used in RPKI "AS0 ROAs" to declare that a prefix
///   must **not** be originated by anyone. The paper's §8.1 case study of
///   the Indonesian ISP hinges on an AS0 registration.
/// * Reserved and documentation ranges, which a well-formed synthetic
///   topology must avoid handing out to generated networks.
///
/// ```
/// use manrs_net::Asn;
/// let asn: Asn = "AS64500".parse().unwrap();
/// assert_eq!(asn, Asn::new(64500));
/// assert!(asn.is_documentation());
/// assert_eq!(asn.to_string(), "AS64500");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// AS0: "no AS may originate this prefix" (RFC 7607 / RFC 6483 §4).
    pub const ZERO: Asn = Asn(0);

    /// AS23456: the 16-bit transition ASN (RFC 6793), never a real origin.
    pub const TRANS: Asn = Asn(23_456);

    /// Creates an ASN from its numeric value.
    pub const fn new(value: u32) -> Self {
        Asn(value)
    }

    /// The numeric value of the ASN.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Returns `true` for AS0.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if the ASN falls in a documentation range
    /// (64496–64511 or 65536–65551, RFC 5398).
    pub const fn is_documentation(self) -> bool {
        (self.0 >= 64_496 && self.0 <= 64_511) || (self.0 >= 65_536 && self.0 <= 65_551)
    }

    /// Returns `true` if the ASN is private-use (64512–65534 or
    /// 4200000000–4294967294, RFC 6996).
    pub const fn is_private(self) -> bool {
        (self.0 >= 64_512 && self.0 <= 65_534) || (self.0 >= 4_200_000_000 && self.0 <= 4_294_967_294)
    }

    /// Returns `true` if the ASN is reserved and must never appear as a
    /// legitimate origin in the global table: AS0, the transition ASN,
    /// 65535, and 4294967295 (RFC 7300).
    pub const fn is_reserved(self) -> bool {
        self.0 == 0 || self.0 == 23_456 || self.0 == 65_535 || self.0 == u32::MAX
    }

    /// Returns `true` if the ASN may be handed out to a synthetic network:
    /// not reserved, not documentation, not private-use.
    pub const fn is_assignable(self) -> bool {
        !self.is_reserved() && !self.is_documentation() && !self.is_private()
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(value: u32) -> Self {
        Asn(value)
    }
}

impl FromStr for Asn {
    type Err = NetError;

    /// Parses `"AS64500"`, `"as64500"`, or a bare `"64500"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .or_else(|| s.strip_prefix("As"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| NetError::InvalidAsn(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_and_without_prefix() {
        assert_eq!("AS1".parse::<Asn>().unwrap(), Asn(1));
        assert_eq!("as42".parse::<Asn>().unwrap(), Asn(42));
        assert_eq!("65000".parse::<Asn>().unwrap(), Asn(65_000));
    }

    #[test]
    fn rejects_garbage() {
        assert!("ASX".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
        assert!("AS4294967296".parse::<Asn>().is_err());
        assert!("-1".parse::<Asn>().is_err());
    }

    #[test]
    fn display_round_trips() {
        let asn = Asn(3356);
        assert_eq!(asn.to_string(), "AS3356");
        assert_eq!(asn.to_string().parse::<Asn>().unwrap(), asn);
    }

    #[test]
    fn special_values() {
        assert!(Asn::ZERO.is_zero());
        assert!(Asn::ZERO.is_reserved());
        assert!(Asn::TRANS.is_reserved());
        assert!(Asn(65_535).is_reserved());
        assert!(Asn(u32::MAX).is_reserved());
        assert!(!Asn(3356).is_reserved());
    }

    #[test]
    fn classification_ranges() {
        assert!(Asn(64_500).is_documentation());
        assert!(Asn(65_540).is_documentation());
        assert!(Asn(64_512).is_private());
        assert!(Asn(4_200_000_000).is_private());
        assert!(Asn(3356).is_assignable());
        assert!(!Asn(64_500).is_assignable());
        assert!(!Asn::ZERO.is_assignable());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Asn(9) < Asn(10));
        assert!(Asn(100) > Asn(99));
    }
}
