//! Exact address-space accounting.
//!
//! Every "percentage of routed address space" number in the paper
//! (Fig. 4b, Fig. 6, Eq. 7–8) requires counting addresses in a *union* of
//! possibly overlapping prefixes — double counting a /16 announced both as
//! itself and as two /17s would skew the metric. [`IntervalSet`] maintains
//! a sorted set of disjoint, inclusive integer intervals; [`AddressSpace`]
//! wraps one per family and converts prefixes to intervals.

use crate::prefix::Prefix;
use serde::{Deserialize, Serialize};

/// A set of `u128` values stored as sorted, disjoint, inclusive intervals.
///
/// Adjacent intervals are coalesced, so the representation is canonical:
/// two sets with equal contents compare equal.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalSet {
    /// Sorted, pairwise-disjoint, non-adjacent `(start, end)` inclusive.
    ranges: Vec<(u128, u128)>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` if the set contains no values.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of maximal disjoint intervals.
    pub fn interval_count(&self) -> usize {
        self.ranges.len()
    }

    /// Inserts the inclusive range `[start, end]`, merging as needed.
    pub fn insert(&mut self, start: u128, end: u128) {
        assert!(start <= end, "inverted interval");
        // Find the first existing range that could touch the new one.
        // A range (s, e) touches [start, end] if e + 1 >= start (adjacency
        // coalesces) and s <= end + 1.
        // Ranges strictly before the touch zone satisfy e < start - 1: a
        // gap of at least one value remains between them and the new range.
        let lo = self.ranges.partition_point(|&(_, e)| e < start.saturating_sub(1));
        let mut new_start = start;
        let mut new_end = end;
        let mut hi = lo;
        while hi < self.ranges.len() {
            let (s, e) = self.ranges[hi];
            if s > end.saturating_add(1) {
                break;
            }
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            hi += 1;
        }
        self.ranges.splice(lo..hi, std::iter::once((new_start, new_end)));
    }

    /// `true` if `value` is in the set.
    pub fn contains(&self, value: u128) -> bool {
        match self.ranges.binary_search_by(|&(s, _)| s.cmp(&value)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.ranges[i - 1].1 >= value,
        }
    }

    /// Number of values in the set. Saturates at `u128::MAX` (only
    /// reachable when the set covers the entire 2^128 space).
    pub fn len(&self) -> u128 {
        self.ranges
            .iter()
            .fold(0u128, |acc, &(s, e)| acc.saturating_add((e - s).saturating_add(1)))
    }

    /// Size of the intersection with `other`, by two-pointer merge.
    pub fn intersection_len(&self, other: &IntervalSet) -> u128 {
        let (mut i, mut j) = (0, 0);
        let mut total = 0u128;
        while i < self.ranges.len() && j < other.ranges.len() {
            let (s1, e1) = self.ranges[i];
            let (s2, e2) = other.ranges[j];
            let lo = s1.max(s2);
            let hi = e1.min(e2);
            if lo <= hi {
                total = total.saturating_add((hi - lo).saturating_add(1));
            }
            if e1 < e2 {
                i += 1;
            } else {
                j += 1;
            }
        }
        total
    }

    /// Merges `other` into `self`.
    pub fn union_with(&mut self, other: &IntervalSet) {
        for &(s, e) in &other.ranges {
            self.insert(s, e);
        }
    }

    /// The raw intervals, for inspection.
    pub fn intervals(&self) -> &[(u128, u128)] {
        &self.ranges
    }
}

/// Address-space accounting over both families.
///
/// IPv4 addresses are counted in /32-equivalents and IPv6 in
/// /128-equivalents; the two families are tracked independently because
/// the paper reports IPv4 percentages (its Fig. 4b and Fig. 6 are IPv4).
///
/// ```
/// use manrs_net::AddressSpace;
/// let mut space = AddressSpace::new();
/// space.add(&"10.0.0.0/8".parse().unwrap());
/// space.add(&"10.0.0.0/9".parse().unwrap()); // nested: no double count
/// assert_eq!(space.v4_len(), 1 << 24);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressSpace {
    v4: IntervalSet,
    v6: IntervalSet,
}

impl AddressSpace {
    /// Creates an empty accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a space from an iterator of prefixes.
    pub fn from_prefixes<'a, I: IntoIterator<Item = &'a Prefix>>(prefixes: I) -> Self {
        let mut space = Self::new();
        for p in prefixes {
            space.add(p);
        }
        space
    }

    /// Adds all addresses of `prefix` to the set.
    pub fn add(&mut self, prefix: &Prefix) {
        match prefix {
            Prefix::V4(p) => self.v4.insert(p.range_start() as u128, p.range_end() as u128),
            Prefix::V6(p) => self.v6.insert(p.range_start(), p.range_end()),
        }
    }

    /// Number of distinct IPv4 addresses (/32-equivalents).
    pub fn v4_len(&self) -> u128 {
        self.v4.len()
    }

    /// Number of distinct IPv6 addresses (/128-equivalents).
    pub fn v6_len(&self) -> u128 {
        self.v6.len()
    }

    /// IPv4 fraction of this space relative to the full 2^32.
    pub fn v4_fraction_of_internet(&self) -> f64 {
        self.v4_len() as f64 / 2f64.powi(32)
    }

    /// Size of the IPv4 intersection with another space.
    pub fn v4_intersection_len(&self, other: &AddressSpace) -> u128 {
        self.v4.intersection_len(&other.v4)
    }

    /// Size of the IPv6 intersection with another space.
    pub fn v6_intersection_len(&self, other: &AddressSpace) -> u128 {
        self.v6.intersection_len(&other.v6)
    }

    /// Fraction of `self`'s IPv4 space also present in `other`
    /// (e.g. "ROA-covered routed address space / routed address space",
    /// Eq. 7). Returns 0 when `self` is empty.
    pub fn v4_covered_fraction(&self, other: &AddressSpace) -> f64 {
        let total = self.v4_len();
        if total == 0 {
            return 0.0;
        }
        self.v4_intersection_len(other) as f64 / total as f64
    }

    /// Merges another space into this one.
    pub fn union_with(&mut self, other: &AddressSpace) {
        self.v4.union_with(&other.v4);
        self.v6.union_with(&other.v6);
    }

    /// The IPv4 interval set.
    pub fn v4(&self) -> &IntervalSet {
        &self.v4
    }

    /// The IPv6 interval set.
    pub fn v6(&self) -> &IntervalSet {
        &self.v6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn empty_set() {
        let s = IntervalSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn insert_disjoint() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        assert_eq!(s.interval_count(), 2);
        assert_eq!(s.len(), 22);
        assert!(s.contains(10) && s.contains(20) && s.contains(35));
        assert!(!s.contains(25) && !s.contains(9) && !s.contains(41));
    }

    #[test]
    fn insert_overlapping_merges() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(15, 30);
        assert_eq!(s.interval_count(), 1);
        assert_eq!(s.intervals(), &[(10, 30)]);
    }

    #[test]
    fn insert_adjacent_coalesces() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(21, 30);
        assert_eq!(s.interval_count(), 1);
        assert_eq!(s.len(), 21);
    }

    #[test]
    fn insert_bridging_many() {
        let mut s = IntervalSet::new();
        s.insert(10, 11);
        s.insert(20, 21);
        s.insert(30, 31);
        s.insert(5, 50);
        assert_eq!(s.intervals(), &[(5, 50)]);
    }

    #[test]
    fn insert_contained_is_noop() {
        let mut s = IntervalSet::new();
        s.insert(0, 100);
        s.insert(10, 20);
        assert_eq!(s.intervals(), &[(0, 100)]);
    }

    #[test]
    fn canonical_equality() {
        let mut a = IntervalSet::new();
        a.insert(0, 5);
        a.insert(6, 10);
        let mut b = IntervalSet::new();
        b.insert(0, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn intersection() {
        let mut a = IntervalSet::new();
        a.insert(0, 10);
        a.insert(20, 30);
        let mut b = IntervalSet::new();
        b.insert(5, 25);
        assert_eq!(a.intersection_len(&b), 6 + 6); // [5,10] and [20,25]
        assert_eq!(b.intersection_len(&a), 12);
        assert_eq!(a.intersection_len(&IntervalSet::new()), 0);
    }

    #[test]
    fn full_u128_range_saturates() {
        let mut s = IntervalSet::new();
        s.insert(0, u128::MAX);
        assert_eq!(s.len(), u128::MAX); // saturated, documented
        assert!(s.contains(u128::MAX));
    }

    #[test]
    fn nested_prefixes_counted_once() {
        let mut space = AddressSpace::new();
        space.add(&p("10.0.0.0/8"));
        space.add(&p("10.0.0.0/9"));
        space.add(&p("10.128.0.0/9"));
        assert_eq!(space.v4_len(), 1 << 24);
    }

    #[test]
    fn families_tracked_separately() {
        let mut space = AddressSpace::new();
        space.add(&p("10.0.0.0/8"));
        space.add(&p("2001:db8::/32"));
        assert_eq!(space.v4_len(), 1 << 24);
        assert_eq!(space.v6_len(), 1u128 << 96);
    }

    #[test]
    fn covered_fraction() {
        let mut routed = AddressSpace::new();
        routed.add(&p("10.0.0.0/8"));
        let mut signed = AddressSpace::new();
        signed.add(&p("10.0.0.0/9"));
        signed.add(&p("192.0.2.0/24")); // outside routed; must not count
        let f = routed.v4_covered_fraction(&signed);
        assert!((f - 0.5).abs() < 1e-12);
        assert_eq!(AddressSpace::new().v4_covered_fraction(&signed), 0.0);
    }

    #[test]
    fn union_with_merges_spaces() {
        let mut a = AddressSpace::new();
        a.add(&p("10.0.0.0/9"));
        let mut b = AddressSpace::new();
        b.add(&p("10.128.0.0/9"));
        a.union_with(&b);
        assert_eq!(a.v4_len(), 1 << 24);
    }

    #[test]
    fn internet_fraction() {
        let mut a = AddressSpace::new();
        a.add(&p("0.0.0.0/2"));
        assert!((a.v4_fraction_of_internet() - 0.25).abs() < 1e-12);
    }
}
