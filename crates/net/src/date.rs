//! A minimal civil date.
//!
//! The pipeline is organized around dated snapshots (monthly RPKI archives
//! 2014–2022, weekly IHR snapshots Feb–May 2022, MANRS join dates), so a
//! small proleptic-Gregorian date type is part of the shared vocabulary.
//! The epoch-day conversion uses Howard Hinnant's `days_from_civil`
//! algorithm, which is exact over the entire supported range.

use crate::error::NetError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A calendar date (proleptic Gregorian).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

impl Date {
    /// Constructs a date, validating month and day-of-month.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, NetError> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(NetError::InvalidAddress(format!("{year:04}-{month:02}-{day:02}")));
        }
        Ok(Date { year, month, day })
    }

    /// Constructs a date from components known to be valid; panics
    /// otherwise. For literals in generators and tests.
    pub fn ymd(year: i32, month: u8, day: u8) -> Self {
        Self::new(year, month, day).expect("valid date literal")
    }

    /// The calendar year.
    pub const fn year(&self) -> i32 {
        self.year
    }

    /// The month (1–12).
    pub const fn month(&self) -> u8 {
        self.month
    }

    /// The day of month (1–31).
    pub const fn day(&self) -> u8 {
        self.day
    }

    /// Days since 1970-01-01 (may be negative).
    pub fn days_since_epoch(&self) -> i64 {
        let y = if self.month <= 2 { self.year - 1 } else { self.year } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// The date `days` after 1970-01-01.
    pub fn from_days_since_epoch(days: i64) -> Self {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
        let year = (if m <= 2 { y + 1 } else { y }) as i32;
        Date { year, month: m, day: d }
    }

    /// The date `n` days later (or earlier if negative).
    pub fn plus_days(&self, n: i64) -> Self {
        Self::from_days_since_epoch(self.days_since_epoch() + n)
    }

    /// Whole days from `self` to `other` (positive if `other` is later).
    pub fn days_until(&self, other: &Date) -> i64 {
        other.days_since_epoch() - self.days_since_epoch()
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl FromStr for Date {
    type Err = NetError;

    /// Parses `YYYY-MM-DD`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.splitn(3, '-');
        let err = || NetError::InvalidAddress(s.to_owned());
        let year: i32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let month: u8 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let day: u8 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        Date::new(year, month, day)
    }
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(year) => 29,
        2 => 28,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(Date::ymd(1970, 1, 1).days_since_epoch(), 0);
        assert_eq!(Date::from_days_since_epoch(0), Date::ymd(1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // May 1 2022, the paper's main snapshot date.
        let d = Date::ymd(2022, 5, 1);
        assert_eq!(d.days_since_epoch(), 19_113);
        assert_eq!(Date::from_days_since_epoch(19_113), d);
    }

    #[test]
    fn round_trip_over_decades() {
        for days in (0..25_000).step_by(13) {
            let d = Date::from_days_since_epoch(days);
            assert_eq!(d.days_since_epoch(), days);
        }
    }

    #[test]
    fn leap_handling() {
        assert!(Date::new(2020, 2, 29).is_ok());
        assert!(Date::new(2022, 2, 29).is_err());
        assert!(Date::new(2000, 2, 29).is_ok());
        assert!(Date::new(1900, 2, 29).is_err());
    }

    #[test]
    fn rejects_bad_components() {
        assert!(Date::new(2022, 0, 1).is_err());
        assert!(Date::new(2022, 13, 1).is_err());
        assert!(Date::new(2022, 4, 31).is_err());
        assert!(Date::new(2022, 1, 0).is_err());
    }

    #[test]
    fn parse_display_round_trip() {
        let d: Date = "2022-05-01".parse().unwrap();
        assert_eq!(d, Date::ymd(2022, 5, 1));
        assert_eq!(d.to_string(), "2022-05-01");
        assert!("2022-05".parse::<Date>().is_err());
        assert!("2022-05-32".parse::<Date>().is_err());
    }

    #[test]
    fn arithmetic() {
        let d = Date::ymd(2022, 2, 1);
        assert_eq!(d.plus_days(7), Date::ymd(2022, 2, 8));
        assert_eq!(d.plus_days(-1), Date::ymd(2022, 1, 31));
        assert_eq!(d.days_until(&Date::ymd(2022, 5, 1)), 89);
    }

    #[test]
    fn ordering() {
        assert!(Date::ymd(2021, 12, 31) < Date::ymd(2022, 1, 1));
        assert!(Date::ymd(2022, 5, 1) > Date::ymd(2022, 4, 30));
    }
}
