//! Binary radix tries keyed by IP prefix.
//!
//! The central query of RFC 6811 route origin validation is: *given an
//! announced prefix, find every registered object whose prefix covers it*.
//! [`PrefixMap`] answers that in O(prefix length) by walking a binary trie
//! from the root toward the query prefix, collecting the values stored at
//! every node on the path.
//!
//! The map stores a `Vec<T>` per exact prefix (several VRPs or route
//! objects may share a prefix), and keeps IPv4 and IPv6 in separate
//! sub-tries so the bit-walk never mixes families.

use crate::flat::{CoveringShape, FlatNode, FLAT_NONE};
use crate::prefix::{Ipv4Prefix, Ipv6Prefix, Prefix};
use serde::{Deserialize, Serialize};

/// One node of a binary trie. `entries` holds the values registered at
/// exactly this node's prefix; interior nodes without registrations have an
/// empty `entries`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node<T> {
    entries: Vec<T>,
    children: [Option<Box<Node<T>>>; 2],
}

impl<T> Default for Node<T> {
    fn default() -> Self {
        Node { entries: Vec::new(), children: [None, None] }
    }
}

impl<T> Node<T> {
    fn is_empty_leaf(&self) -> bool {
        self.entries.is_empty() && self.children[0].is_none() && self.children[1].is_none()
    }
}

/// A single-family binary trie; `B` supplies the bit-walk.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Trie<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for Trie<T> {
    fn default() -> Self {
        Trie { root: Node::default(), len: 0 }
    }
}

/// Something that can be walked bit-by-bit to a given depth.
trait BitPath: Copy {
    fn depth(&self) -> u8;
    fn bit_at(&self, index: u8) -> bool;
}

impl BitPath for Ipv4Prefix {
    fn depth(&self) -> u8 {
        self.len()
    }
    fn bit_at(&self, index: u8) -> bool {
        self.bit(index)
    }
}

impl BitPath for Ipv6Prefix {
    fn depth(&self) -> u8 {
        self.len()
    }
    fn bit_at(&self, index: u8) -> bool {
        self.bit(index)
    }
}

impl<T> Trie<T> {
    fn insert<P: BitPath>(&mut self, key: P, value: T) {
        let mut node = &mut self.root;
        for i in 0..key.depth() {
            let branch = key.bit_at(i) as usize;
            node = node.children[branch].get_or_insert_with(Box::default);
        }
        node.entries.push(value);
        self.len += 1;
    }

    fn exact<P: BitPath>(&self, key: P) -> &[T] {
        let mut node = &self.root;
        for i in 0..key.depth() {
            match &node.children[key.bit_at(i) as usize] {
                Some(child) => node = child,
                None => return &[],
            }
        }
        &node.entries
    }

    /// `true` if any value is stored on the path from the root to `key`
    /// inclusive — `covering` emptiness without collecting anything.
    fn covers<P: BitPath>(&self, key: P) -> bool {
        let mut node = &self.root;
        if !node.entries.is_empty() {
            return true;
        }
        for i in 0..key.depth() {
            match &node.children[key.bit_at(i) as usize] {
                Some(child) => {
                    node = child;
                    if !node.entries.is_empty() {
                        return true;
                    }
                }
                None => return false,
            }
        }
        false
    }

    /// Values at every prefix on the path from the root to `key`
    /// inclusive — i.e. at every stored prefix that covers `key`.
    fn covering<'a, P: BitPath>(&'a self, key: P, out: &mut Vec<&'a T>) {
        let mut node = &self.root;
        out.extend(node.entries.iter());
        for i in 0..key.depth() {
            match &node.children[key.bit_at(i) as usize] {
                Some(child) => {
                    node = child;
                    out.extend(node.entries.iter());
                }
                None => return,
            }
        }
    }

    /// Values at every stored prefix covered by `key` (equal or more
    /// specific), i.e. the whole subtree rooted at `key`.
    fn covered_by<'a, P: BitPath>(&'a self, key: P, out: &mut Vec<&'a T>) {
        let mut node = &self.root;
        for i in 0..key.depth() {
            match &node.children[key.bit_at(i) as usize] {
                Some(child) => node = child,
                None => return,
            }
        }
        collect_subtree(node, out);
    }

    fn remove_where<P: BitPath, F: FnMut(&T) -> bool>(&mut self, key: P, mut pred: F) -> usize {
        let mut node = &mut self.root;
        for i in 0..key.depth() {
            match &mut node.children[key.bit_at(i) as usize] {
                Some(child) => node = child,
                None => return 0,
            }
        }
        let before = node.entries.len();
        node.entries.retain(|t| !pred(t));
        let removed = before - node.entries.len();
        self.len -= removed;
        removed
    }

    fn for_each<'a, F: FnMut(&'a T)>(&'a self, f: &mut F) {
        fn walk<'a, T, F: FnMut(&'a T)>(node: &'a Node<T>, f: &mut F) {
            for t in &node.entries {
                f(t);
            }
            for child in node.children.iter().flatten() {
                walk(child, f);
            }
        }
        walk(&self.root, f);
    }

    /// Flattens this trie into `nodes`, emitting every stored value into
    /// the shared arena (tracked by `arena_len`) via `emit`. Each flat
    /// node's run is the *closure* of its path: the values at the node
    /// and at every ancestor, re-emitted contiguously, so a covering
    /// query resolves to exactly one range. Entry-less nodes inherit
    /// their parent's run. Traversal order (child 0 before child 1,
    /// entries in insertion order) is deterministic, so two flattens of
    /// the same trie produce identical output.
    fn flatten<'a, F: FnMut(&'a T)>(
        &'a self,
        nodes: &mut Vec<FlatNode>,
        arena_len: &mut usize,
        emit: &mut F,
    ) {
        fn walk<'a, T, F: FnMut(&'a T)>(
            node: &'a Node<T>,
            parent_run: (u32, u32),
            path: &mut Vec<&'a [T]>,
            nodes: &mut Vec<FlatNode>,
            arena_len: &mut usize,
            emit: &mut F,
        ) {
            let pushed = !node.entries.is_empty();
            let run = if pushed {
                path.push(&node.entries);
                let start = *arena_len as u32;
                let mut count = 0u32;
                for slice in path.iter() {
                    for t in *slice {
                        emit(t);
                        count += 1;
                    }
                }
                *arena_len += count as usize;
                (start, count)
            } else {
                parent_run
            };
            let idx = nodes.len();
            nodes.push(FlatNode {
                children: [FLAT_NONE; 2],
                run_start: run.0,
                run_len: run.1,
            });
            for branch in 0..2 {
                if let Some(child) = &node.children[branch] {
                    nodes[idx].children[branch] = nodes.len() as u32;
                    walk(child, run, path, nodes, arena_len, emit);
                }
            }
            if pushed {
                path.pop();
            }
        }
        let mut path: Vec<&[T]> = Vec::new();
        walk(&self.root, (0, 0), &mut path, nodes, arena_len, emit);
    }

    /// Prunes empty leaves left behind by removals. Called opportunistically.
    fn prune(&mut self) {
        fn walk<T>(node: &mut Node<T>) {
            for slot in node.children.iter_mut() {
                if let Some(child) = slot {
                    walk(child);
                    if child.is_empty_leaf() {
                        *slot = None;
                    }
                }
            }
        }
        walk(&mut self.root);
    }
}

fn collect_subtree<'a, T>(node: &'a Node<T>, out: &mut Vec<&'a T>) {
    out.extend(node.entries.iter());
    for child in node.children.iter().flatten() {
        collect_subtree(child, out);
    }
}

/// A prefix-keyed multimap over both address families.
///
/// ```
/// use manrs_net::{Prefix, PrefixMap};
/// let mut map: PrefixMap<&str> = PrefixMap::new();
/// let p8: Prefix = "10.0.0.0/8".parse().unwrap();
/// let p16: Prefix = "10.1.0.0/16".parse().unwrap();
/// map.insert(p8, "eight");
/// map.insert(p16, "sixteen");
///
/// // Everything covering 10.1.2.0/24:
/// let q: Prefix = "10.1.2.0/24".parse().unwrap();
/// let covering = map.covering(&q);
/// assert_eq!(covering, vec![&"eight", &"sixteen"]);
///
/// // Everything inside 10.0.0.0/8:
/// assert_eq!(map.covered_by(&p8).len(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixMap<T> {
    v4: Trie<T>,
    v6: Trie<T>,
}

impl<T> Default for PrefixMap<T> {
    fn default() -> Self {
        PrefixMap { v4: Trie::default(), v6: Trie::default() }
    }
}

impl<T> PrefixMap<T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of stored values (not distinct prefixes).
    pub fn len(&self) -> usize {
        self.v4.len + self.v6.len
    }

    /// `true` if no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a value at `prefix`. Multiple values may share a prefix.
    pub fn insert(&mut self, prefix: Prefix, value: T) {
        match prefix {
            Prefix::V4(p) => self.v4.insert(p, value),
            Prefix::V6(p) => self.v6.insert(p, value),
        }
    }

    /// The values stored at exactly `prefix`.
    pub fn exact(&self, prefix: &Prefix) -> &[T] {
        match prefix {
            Prefix::V4(p) => self.v4.exact(*p),
            Prefix::V6(p) => self.v6.exact(*p),
        }
    }

    /// `true` if any stored value's prefix covers `prefix` — the
    /// emptiness test of [`PrefixMap::covering`] without allocating the
    /// result vector.
    pub fn covers(&self, prefix: &Prefix) -> bool {
        match prefix {
            Prefix::V4(p) => self.v4.covers(*p),
            Prefix::V6(p) => self.v6.covers(*p),
        }
    }

    /// All values whose prefix **covers** `prefix` (equal or less
    /// specific), in root-to-leaf order. This is the RFC 6811 "covering
    /// VRP" query.
    pub fn covering(&self, prefix: &Prefix) -> Vec<&T> {
        let mut out = Vec::new();
        match prefix {
            Prefix::V4(p) => self.v4.covering(*p, &mut out),
            Prefix::V6(p) => self.v6.covering(*p, &mut out),
        }
        out
    }

    /// All values whose prefix is **covered by** `prefix` (equal or more
    /// specific).
    pub fn covered_by(&self, prefix: &Prefix) -> Vec<&T> {
        let mut out = Vec::new();
        match prefix {
            Prefix::V4(p) => self.v4.covered_by(*p, &mut out),
            Prefix::V6(p) => self.v6.covered_by(*p, &mut out),
        }
        out
    }

    /// Removes the values at `prefix` matching `pred`; returns how many
    /// were removed.
    pub fn remove_where<F: FnMut(&T) -> bool>(&mut self, prefix: &Prefix, pred: F) -> usize {
        let removed = match prefix {
            Prefix::V4(p) => self.v4.remove_where(*p, pred),
            Prefix::V6(p) => self.v6.remove_where(*p, pred),
        };
        if removed > 0 {
            self.v4.prune();
            self.v6.prune();
        }
        removed
    }

    /// Visits every stored value.
    pub fn for_each<'a, F: FnMut(&'a T)>(&'a self, mut f: F) {
        self.v4.for_each(&mut f);
        self.v6.for_each(&mut f);
    }

    /// Collects every stored value into a vector.
    pub fn values(&self) -> Vec<&T> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|t| out.push(t));
        out
    }

    /// Compiles the map's covering-query structure into a
    /// [`CoveringShape`], emitting every arena value (ancestor closures
    /// included, so values repeat) through `emit` in arena order. The
    /// caller records whatever per-value attributes it needs in parallel
    /// arrays; `CoveringShape::covering_run` then resolves a covering
    /// query to one contiguous index range over those arrays. The
    /// emission order is deterministic for a given map.
    pub fn flatten_shape<'a, F: FnMut(&'a T)>(&'a self, mut emit: F) -> CoveringShape {
        let mut shape = CoveringShape::default();
        let mut arena_len = 0usize;
        self.v4.flatten(&mut shape.v4, &mut arena_len, &mut emit);
        self.v6.flatten(&mut shape.v6, &mut arena_len, &mut emit);
        shape.arena_len = arena_len;
        shape
    }
}

impl<T> FromIterator<(Prefix, T)> for PrefixMap<T> {
    fn from_iter<I: IntoIterator<Item = (Prefix, T)>>(iter: I) -> Self {
        let mut map = PrefixMap::new();
        for (p, t) in iter {
            map.insert(p, t);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn empty_map() {
        let map: PrefixMap<u32> = PrefixMap::new();
        assert!(map.is_empty());
        assert!(map.covering(&p("10.0.0.0/8")).is_empty());
        assert!(map.covered_by(&p("0.0.0.0/0")).is_empty());
        assert!(map.exact(&p("10.0.0.0/8")).is_empty());
    }

    #[test]
    fn exact_lookup() {
        let mut map = PrefixMap::new();
        map.insert(p("10.0.0.0/8"), 1);
        map.insert(p("10.0.0.0/8"), 2);
        assert_eq!(map.exact(&p("10.0.0.0/8")), &[1, 2]);
        assert!(map.exact(&p("10.0.0.0/9")).is_empty());
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn covering_walks_root_to_leaf() {
        let mut map = PrefixMap::new();
        map.insert(p("0.0.0.0/0"), "default");
        map.insert(p("10.0.0.0/8"), "eight");
        map.insert(p("10.1.0.0/16"), "sixteen");
        map.insert(p("11.0.0.0/8"), "other");
        let covering = map.covering(&p("10.1.2.0/24"));
        assert_eq!(covering, vec![&"default", &"eight", &"sixteen"]);
        // The query prefix itself counts as covering.
        let covering = map.covering(&p("10.1.0.0/16"));
        assert_eq!(covering.len(), 3);
    }

    #[test]
    fn covered_by_returns_subtree() {
        let mut map = PrefixMap::new();
        map.insert(p("10.0.0.0/8"), 8);
        map.insert(p("10.1.0.0/16"), 16);
        map.insert(p("10.1.2.0/24"), 24);
        map.insert(p("192.168.0.0/16"), 99);
        let mut inside: Vec<i32> = map.covered_by(&p("10.0.0.0/8")).into_iter().copied().collect();
        inside.sort();
        assert_eq!(inside, vec![8, 16, 24]);
        assert_eq!(map.covered_by(&p("10.1.0.0/16")).len(), 2);
        assert_eq!(map.covered_by(&p("10.2.0.0/16")).len(), 0);
    }

    #[test]
    fn covers_matches_covering_emptiness() {
        let mut map = PrefixMap::new();
        map.insert(p("10.0.0.0/8"), 1);
        map.insert(p("2001:db8::/32"), 2);
        for q in [
            "10.0.0.0/8",
            "10.1.2.0/24",
            "10.0.0.0/7",
            "11.0.0.0/8",
            "0.0.0.0/0",
            "2001:db8::/48",
            "2001:db9::/32",
        ] {
            let q = p(q);
            assert_eq!(map.covers(&q), !map.covering(&q).is_empty(), "query {q}");
        }
        assert!(!PrefixMap::<u8>::new().covers(&p("10.0.0.0/8")));
    }

    #[test]
    fn families_do_not_mix() {
        let mut map = PrefixMap::new();
        map.insert(p("0.0.0.0/0"), "v4");
        map.insert(p("::/0"), "v6");
        assert_eq!(map.covering(&p("10.0.0.0/8")), vec![&"v4"]);
        assert_eq!(map.covering(&p("2001:db8::/32")), vec![&"v6"]);
    }

    #[test]
    fn remove_where_removes_and_prunes() {
        let mut map = PrefixMap::new();
        map.insert(p("10.1.2.0/24"), 1);
        map.insert(p("10.1.2.0/24"), 2);
        assert_eq!(map.remove_where(&p("10.1.2.0/24"), |v| *v == 1), 1);
        assert_eq!(map.exact(&p("10.1.2.0/24")), &[2]);
        assert_eq!(map.remove_where(&p("10.1.2.0/24"), |_| true), 1);
        assert!(map.is_empty());
        assert_eq!(map.remove_where(&p("10.9.9.0/24"), |_| true), 0);
    }

    #[test]
    fn values_and_for_each_visit_everything() {
        let mut map = PrefixMap::new();
        for (i, s) in ["10.0.0.0/8", "10.1.0.0/16", "2001:db8::/32"].iter().enumerate() {
            map.insert(p(s), i);
        }
        let mut vals: Vec<usize> = map.values().into_iter().copied().collect();
        vals.sort();
        assert_eq!(vals, vec![0, 1, 2]);
    }

    #[test]
    fn from_iterator() {
        let map: PrefixMap<u8> = vec![(p("10.0.0.0/8"), 1u8), (p("10.0.0.0/9"), 2u8)]
            .into_iter()
            .collect();
        assert_eq!(map.len(), 2);
        assert_eq!(map.covering(&p("10.0.0.0/9")).len(), 2);
    }

    #[test]
    fn deep_v6_paths() {
        let mut map = PrefixMap::new();
        map.insert(p("2001:db8::/32"), "a");
        map.insert(p("2001:db8:0:0:8000::/65"), "b");
        let q: Prefix = "2001:db8:0:0:8000::/80".parse().unwrap();
        assert_eq!(map.covering(&q), vec![&"a", &"b"]);
    }
}
