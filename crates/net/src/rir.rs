//! Regional Internet Registries.
//!
//! The five RIRs anchor everything regional in the paper: each is an RPKI
//! trust anchor (§2.3), operates an authoritative IRR database (§2.2), and
//! is the unit of the geographic participation analysis (§7, Fig. 4).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One of the five Regional Internet Registries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Rir {
    /// AFRINIC — Africa.
    Afrinic,
    /// APNIC — Asia-Pacific.
    Apnic,
    /// ARIN — North America.
    Arin,
    /// LACNIC — Latin America and the Caribbean.
    Lacnic,
    /// RIPE NCC — Europe, Middle East, Central Asia.
    RipeNcc,
}

impl Rir {
    /// All five RIRs, in the order the paper's figures stack them
    /// (AFRINIC, LACNIC, APNIC, RIPE, ARIN).
    pub const ALL: [Rir; 5] = [Rir::Afrinic, Rir::Lacnic, Rir::Apnic, Rir::RipeNcc, Rir::Arin];

    /// Canonical lowercase name, as used in dataset files.
    pub const fn name(self) -> &'static str {
        match self {
            Rir::Afrinic => "afrinic",
            Rir::Apnic => "apnic",
            Rir::Arin => "arin",
            Rir::Lacnic => "lacnic",
            Rir::RipeNcc => "ripe",
        }
    }
}

impl fmt::Display for Rir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rir::Afrinic => "AFRINIC",
            Rir::Apnic => "APNIC",
            Rir::Arin => "ARIN",
            Rir::Lacnic => "LACNIC",
            Rir::RipeNcc => "RIPE NCC",
        })
    }
}

impl FromStr for Rir {
    type Err = crate::NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "afrinic" => Ok(Rir::Afrinic),
            "apnic" => Ok(Rir::Apnic),
            "arin" => Ok(Rir::Arin),
            "lacnic" => Ok(Rir::Lacnic),
            "ripe" | "ripencc" | "ripe ncc" | "ripe-ncc" => Ok(Rir::RipeNcc),
            _ => Err(crate::NetError::InvalidAddress(s.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_five() {
        assert_eq!(Rir::ALL.len(), 5);
    }

    #[test]
    fn name_parse_round_trip() {
        for rir in Rir::ALL {
            assert_eq!(rir.name().parse::<Rir>().unwrap(), rir);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rir::RipeNcc.to_string(), "RIPE NCC");
        assert_eq!("RIPE NCC".parse::<Rir>().unwrap(), Rir::RipeNcc);
        assert!("mars".parse::<Rir>().is_err());
    }
}
