//! Shard-key derivation for prefix-partitioned services.
//!
//! The snapshot query service (`manrs-service`) partitions its compiled
//! indexes and pair tables by **address family + first octet**: bucket
//! `0..256` holds IPv4 prefixes by their first address octet, bucket
//! `256..512` holds IPv6 prefixes by theirs. A covering candidate (a
//! VRP or route object whose prefix *contains* a query) always shares
//! the query's first octet when its length is ≥ 8 bits; shorter
//! prefixes span a contiguous octet range and must be replicated into
//! every bucket of that span. [`shard_bucket`] and [`shard_bucket_span`]
//! encode exactly that contract, so a service that routes queries by
//! [`shard_bucket`] and replicates candidates across
//! [`shard_bucket_span`] answers every covering query from a single
//! bucket, bit-for-bit identically to an unpartitioned index.

use crate::prefix::Prefix;

/// Number of distinct shard buckets: 256 IPv4 first octets followed by
/// 256 IPv6 first octets.
pub const SHARD_BUCKETS: u16 = 512;

/// The bucket a *query* at `prefix` is routed to: its first address
/// octet, offset into the IPv6 half for v6 prefixes. For prefixes
/// shorter than 8 bits this is the first bucket of their span.
#[inline]
pub fn shard_bucket(prefix: &Prefix) -> u16 {
    shard_bucket_span(prefix).0
}

/// The inclusive bucket range a *candidate* at `prefix` can cover
/// queries in. Prefixes of length ≥ 8 occupy one bucket; shorter ones
/// span every first octet their address range touches (the default
/// route spans its family's whole half).
#[inline]
pub fn shard_bucket_span(prefix: &Prefix) -> (u16, u16) {
    match prefix {
        Prefix::V4(p) => ((p.range_start() >> 24) as u16, (p.range_end() >> 24) as u16),
        Prefix::V6(p) => {
            (256 + (p.range_start() >> 120) as u16, 256 + (p.range_end() >> 120) as u16)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn long_prefixes_occupy_one_bucket() {
        assert_eq!(shard_bucket_span(&p("10.0.0.0/8")), (10, 10));
        assert_eq!(shard_bucket_span(&p("10.20.0.0/16")), (10, 10));
        assert_eq!(shard_bucket(&p("203.0.113.0/24")), 203);
        assert_eq!(shard_bucket_span(&p("2001:db8::/32")), (256 + 0x20, 256 + 0x20));
    }

    #[test]
    fn short_prefixes_span_their_octet_range() {
        assert_eq!(shard_bucket_span(&p("10.0.0.0/7")), (10, 11));
        assert_eq!(shard_bucket_span(&p("8.0.0.0/6")), (8, 11));
        assert_eq!(shard_bucket_span(&p("0.0.0.0/0")), (0, 255));
        assert_eq!(shard_bucket_span(&p("::/0")), (256, 511));
        assert_eq!(shard_bucket_span(&p("2000::/4")), (256 + 0x20, 256 + 0x2f));
    }

    #[test]
    fn covering_candidates_share_the_query_bucket() {
        // The invariant the sharded service relies on: if a candidate
        // contains a query, the query's bucket lies inside the
        // candidate's span.
        let cases = [
            ("10.0.0.0/8", "10.1.0.0/16"),
            ("10.0.0.0/7", "11.0.0.0/8"),
            ("0.0.0.0/0", "192.0.2.0/24"),
            ("2001:db8::/32", "2001:db8::/48"),
            ("::/0", "2001:db8::/48"),
        ];
        for (cand, query) in cases {
            let (cand, query) = (p(cand), p(query));
            assert!(cand.contains(&query), "{cand} should contain {query}");
            let (lo, hi) = shard_bucket_span(&cand);
            let b = shard_bucket(&query);
            assert!(lo <= b && b <= hi, "{cand} span ({lo},{hi}) misses {query} bucket {b}");
        }
    }

    #[test]
    fn families_never_share_buckets() {
        let (v4_lo, v4_hi) = shard_bucket_span(&p("0.0.0.0/0"));
        let (v6_lo, v6_hi) = shard_bucket_span(&p("::/0"));
        assert!(v4_hi < v6_lo);
        assert_eq!(v4_lo, 0);
        assert_eq!(v6_hi, SHARD_BUCKETS - 1);
    }
}
