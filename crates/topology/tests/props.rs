//! Property tests for the topology crate: cone computation against a
//! naive reachability model, and dataset round trips on random graphs.

use manrs_net::{Asn, Rir};
use manrs_topology::{
    datasets, AsInfo, AsTopology, ConeAnalysis, NetworkKind, OrgId, SizeClass,
    SizeThresholds,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Random DAG-ish topology: customers always have higher indices than
/// their providers, peers arbitrary.
fn arb_topology() -> impl Strategy<Value = AsTopology> {
    (
        3usize..25,
        prop::collection::vec((any::<u16>(), any::<u16>()), 0..50),
        prop::collection::vec((any::<u16>(), any::<u16>()), 0..10),
    )
        .prop_map(|(n, cp, pp)| {
            let mut t = AsTopology::new();
            for i in 0..n {
                t.add_as(AsInfo {
                    asn: Asn(i as u32 + 1),
                    org: OrgId(i as u32 / 2),
                    rir: Rir::ALL[i % 5],
                    country: "XX".into(),
                    kind: NetworkKind::Transit,
                });
            }
            for (a, b) in cp {
                let customer = (a as usize % n).max(1);
                let provider = b as usize % customer;
                t.add_provider_customer(Asn(provider as u32 + 1), Asn(customer as u32 + 1));
            }
            for (a, b) in pp {
                let x = a as usize % n;
                let y = b as usize % n;
                if x != y && t.relationship(Asn(x as u32 + 1), Asn(y as u32 + 1)).is_none() {
                    t.add_peer(Asn(x as u32 + 1), Asn(y as u32 + 1));
                }
            }
            t
        })
}

/// Naive reachability over customer edges.
fn naive_cone(t: &AsTopology, root: Asn) -> BTreeSet<Asn> {
    let mut seen: BTreeSet<Asn> = [root].into();
    let mut stack = vec![root];
    while let Some(u) = stack.pop() {
        for &c in t.customers(u) {
            if seen.insert(c) {
                stack.push(c);
            }
        }
    }
    seen
}

proptest! {
    /// Cone sizes equal naive reachable-set sizes for every AS.
    #[test]
    fn cone_matches_naive_reachability(t in arb_topology()) {
        let cones = ConeAnalysis::compute(&t, SizeThresholds::PAPER);
        for asn in t.asns() {
            prop_assert_eq!(cones.cone_size(asn), naive_cone(&t, asn).len());
            prop_assert_eq!(cones.degree(asn), t.customers(asn).len());
        }
    }

    /// A provider's cone contains each customer's cone.
    #[test]
    fn cones_are_monotone_along_provider_edges(t in arb_topology()) {
        let cones = ConeAnalysis::compute(&t, SizeThresholds::PAPER);
        for asn in t.asns() {
            for &c in t.customers(asn) {
                prop_assert!(
                    cones.cone_size(asn) >= cones.cone_size(c),
                    "{} cone smaller than its customer {}", asn, c
                );
                let customer_cone = naive_cone(&t, c);
                let provider_cone = naive_cone(&t, asn);
                prop_assert!(customer_cone.is_subset(&provider_cone));
            }
        }
    }

    /// AS Rank ordering is by descending cone size, ties by ASN.
    #[test]
    fn ranking_is_sorted(t in arb_topology()) {
        let cones = ConeAnalysis::compute(&t, SizeThresholds::PAPER);
        let ranked = cones.ranked();
        prop_assert_eq!(ranked.len(), t.len());
        for w in ranked.windows(2) {
            let (a, b) = (cones.cone_size(w[0]), cones.cone_size(w[1]));
            prop_assert!(a > b || (a == b && w[0] < w[1]));
        }
    }

    /// as-rel serialization round-trips the edge sets exactly.
    #[test]
    fn as_rel_round_trip(t in arb_topology()) {
        let text = datasets::write_as_rel(&t);
        let (cp, pp) = datasets::parse_as_rel(&text).expect("own output parses");
        let mut expect_cp: Vec<(Asn, Asn)> = Vec::new();
        for asn in t.asns() {
            for &c in t.customers(asn) {
                expect_cp.push((asn, c));
            }
        }
        let mut got_cp = cp;
        expect_cp.sort();
        got_cp.sort();
        prop_assert_eq!(got_cp, expect_cp);
        // Every peer edge once.
        let mut count = 0usize;
        for asn in t.asns() {
            count += t.peers(asn).len();
        }
        prop_assert_eq!(pp.len() * 2, count);
        for (a, b) in pp {
            prop_assert!(t.peers(a).contains(&b));
        }
    }

    /// Size classes partition every AS and respect threshold ordering.
    #[test]
    fn size_classes_partition(t in arb_topology(), small in 0usize..3, gap in 1usize..5) {
        let thresholds = SizeThresholds::scaled(small, small + gap);
        let cones = ConeAnalysis::compute(&t, thresholds);
        let counts = cones.class_counts();
        let total: usize = counts.values().sum();
        prop_assert_eq!(total, t.len());
        for asn in t.asns() {
            let class = cones.size_class(asn);
            let d = cones.degree(asn);
            match class {
                SizeClass::Small => prop_assert!(d <= small),
                SizeClass::Medium => prop_assert!(d > small && d <= small + gap),
                SizeClass::Large => prop_assert!(d > small + gap),
            }
        }
    }
}
