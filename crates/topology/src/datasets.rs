//! Text serializations in the shape of the CAIDA datasets (§5.1).
//!
//! The original analysis reads flat files: `as-rel` (`a|b|-1` for
//! provider→customer, `a|b|0` for peers), `prefix2as`
//! (`prefix<TAB>length<TAB>asn`), and an `as2org`-style mapping. These
//! writers/parsers let the pipeline round-trip a generated world through
//! the same file shapes, so any stage can be pointed at files on disk.

use crate::graph::{AsInfo, AsTopology, NetworkKind};
use crate::org::{OrgDirectory, Organization, OrgId};
use crate::prefixes::Prefix2As;
use manrs_net::{Asn, NetError, Prefix, Rir};
use std::fmt::Write as _;

/// Serializes the relationship edges in CAIDA `as-rel` format:
/// `provider|customer|-1` and `peer|peer|0` lines, `#` comments allowed.
pub fn write_as_rel(topology: &AsTopology) -> String {
    let mut out = String::from("# <provider-as>|<customer-as>|-1  or  <peer-as>|<peer-as>|0\n");
    for asn in topology.asns() {
        for &customer in topology.customers(asn) {
            let _ = writeln!(out, "{}|{}|-1", asn.value(), customer.value());
        }
        for &peer in topology.peers(asn) {
            // Each peer edge once, from the lower ASN.
            if asn < peer {
                let _ = writeln!(out, "{}|{}|0", asn.value(), peer.value());
            }
        }
    }
    out
}

/// Edge lists parsed from `as-rel` text: `(provider, customer)` pairs and
/// `(peer, peer)` pairs.
pub type AsRelEdges = (Vec<(Asn, Asn)>, Vec<(Asn, Asn)>);

/// Parses `as-rel` text into edge lists: `(provider, customer)` pairs and
/// `(peer, peer)` pairs.
pub fn parse_as_rel(text: &str) -> Result<AsRelEdges, NetError> {
    let mut cp = Vec::new();
    let mut pp = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('|');
        let bad = || NetError::InvalidAddress(line.to_owned());
        let a: Asn = parts.next().ok_or_else(bad)?.parse()?;
        let b: Asn = parts.next().ok_or_else(bad)?.parse()?;
        match parts.next().ok_or_else(bad)? {
            "-1" => cp.push((a, b)),
            "0" => pp.push((a, b)),
            _ => return Err(bad()),
        }
    }
    Ok((cp, pp))
}

/// Serializes a [`Prefix2As`] in CAIDA prefix2as format:
/// `address<TAB>length<TAB>asn`.
pub fn write_prefix2as(map: &Prefix2As) -> String {
    let mut out = String::new();
    for (prefix, asn) in map.entries() {
        let (addr, len) = match prefix {
            Prefix::V4(p) => (p.addr().to_string(), p.len()),
            Prefix::V6(p) => (p.addr().to_string(), p.len()),
        };
        let _ = writeln!(out, "{addr}\t{len}\t{}", asn.value());
    }
    out
}

/// Parses prefix2as text.
pub fn parse_prefix2as(text: &str) -> Result<Prefix2As, NetError> {
    let mut map = Prefix2As::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let bad = || NetError::MalformedPrefix(line.to_owned());
        let addr = parts.next().ok_or_else(bad)?;
        let len = parts.next().ok_or_else(bad)?;
        let asn: Asn = parts.next().ok_or_else(bad)?.parse()?;
        let prefix: Prefix = format!("{addr}/{len}").parse()?;
        map.add(prefix, asn);
    }
    Ok(map)
}

/// Serializes the as2org mapping: `asn|org_id|org_name|country|rir`.
pub fn write_as2org(topology: &AsTopology, orgs: &OrgDirectory) -> String {
    let mut out = String::from("# <asn>|<org-id>|<org-name>|<country>|<rir>\n");
    for asn in topology.asns() {
        if let Some(org) = orgs.org_of(asn) {
            let _ = writeln!(
                out,
                "{}|{}|{}|{}|{}",
                asn.value(),
                org.id.0,
                org.name,
                org.country,
                org.rir.name()
            );
        }
    }
    out
}

/// Parses as2org text into a fresh directory plus kind-less node records.
/// Returned `AsInfo` entries carry [`NetworkKind::Stub`] — the file format
/// does not encode roles, just as CAIDA's does not.
pub fn parse_as2org(text: &str) -> Result<(Vec<AsInfo>, OrgDirectory), NetError> {
    let mut dir = OrgDirectory::new();
    let mut infos = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split('|').collect();
        if parts.len() != 5 {
            return Err(NetError::InvalidAddress(line.to_owned()));
        }
        let asn: Asn = parts[0].parse()?;
        let org_id = OrgId(
            parts[1]
                .parse()
                .map_err(|_| NetError::InvalidAddress(line.to_owned()))?,
        );
        let rir: Rir = parts[4].parse()?;
        if dir.org(org_id).is_none() {
            dir.add_org(Organization {
                id: org_id,
                name: parts[2].to_owned(),
                country: parts[3].to_owned(),
                rir,
            });
        }
        dir.assign(asn, org_id);
        infos.push(AsInfo {
            asn,
            org: org_id,
            rir,
            country: parts[3].to_owned(),
            kind: NetworkKind::Stub,
        });
    }
    Ok((infos, dir))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{GeneratorConfig, TopologyBuilder};

    fn world() -> crate::generate::GeneratedWorld {
        TopologyBuilder::new(GeneratorConfig {
            seed: 42,
            total_ases: 120,
            tier1_count: 4,
            mid_tier_count: 12,
            cdn_count: 3,
            ..GeneratorConfig::default()
        })
        .generate()
    }

    #[test]
    fn as_rel_round_trip() {
        let w = world();
        let text = write_as_rel(&w.topology);
        let (cp, pp) = parse_as_rel(&text).unwrap();
        // Every parsed edge exists in the topology with the right kind.
        for (p, c) in &cp {
            assert!(w.topology.customers(*p).contains(c));
        }
        for (a, b) in &pp {
            assert!(w.topology.peers(*a).contains(b));
        }
        // Counts match.
        let cp_count: usize = w.topology.asns().map(|a| w.topology.customers(a).len()).sum();
        let pp_count: usize =
            w.topology.asns().map(|a| w.topology.peers(a).len()).sum::<usize>() / 2;
        assert_eq!(cp.len(), cp_count);
        assert_eq!(pp.len(), pp_count);
    }

    #[test]
    fn prefix2as_round_trip() {
        let w = world();
        let text = write_prefix2as(&w.intended);
        let parsed = parse_prefix2as(&text).unwrap();
        assert_eq!(parsed.entries(), w.intended.entries());
    }

    #[test]
    fn as2org_round_trip() {
        let w = world();
        let text = write_as2org(&w.topology, &w.orgs);
        let (infos, dir) = parse_as2org(&text).unwrap();
        assert_eq!(infos.len(), w.topology.len());
        for asn in w.topology.asns() {
            let orig = w.orgs.org_of(asn).unwrap();
            let parsed = dir.org_of(asn).unwrap();
            assert_eq!(orig.id, parsed.id);
            assert_eq!(orig.country, parsed.country);
            assert_eq!(orig.rir, parsed.rir);
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_as_rel("1|2|9").is_err());
        assert!(parse_as_rel("1|2").is_err());
        assert!(parse_prefix2as("10.0.0.0\tbad\t1").is_err());
        assert!(parse_as2org("1|2|name|US").is_err());
        assert!(parse_as2org("x|2|name|US|arin").is_err());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let (cp, pp) = parse_as_rel("# header\n\n1|2|-1\n3|4|0\n").unwrap();
        assert_eq!(cp, vec![(Asn(1), Asn(2))]);
        assert_eq!(pp, vec![(Asn(3), Asn(4))]);
    }
}
