//! Organizations and the AS-to-organization mapping.
//!
//! The paper's §7 registration-completeness analysis is entirely
//! organization-level: MANRS membership is per-organization, but an
//! organization may own many ASes and register only some of them.

use manrs_net::{Asn, Rir};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of an organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OrgId(pub u32);

impl std::fmt::Display for OrgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ORG{}", self.0)
    }
}

/// An organization: the unit of MANRS membership and of the as2org
/// dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Organization {
    /// The organization's identifier.
    pub id: OrgId,
    /// Display name.
    pub name: String,
    /// ISO-3166-ish country code of the headquarters.
    pub country: String,
    /// The RIR serving the headquarters region.
    pub rir: Rir,
}

/// The as2org mapping: organizations and their ASes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OrgDirectory {
    orgs: BTreeMap<OrgId, Organization>,
    by_asn: BTreeMap<Asn, OrgId>,
    members: BTreeMap<OrgId, Vec<Asn>>,
}

impl OrgDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an organization.
    pub fn add_org(&mut self, org: Organization) {
        self.members.entry(org.id).or_default();
        self.orgs.insert(org.id, org);
    }

    /// Assigns an ASN to an organization (an ASN belongs to exactly one
    /// organization; re-assignment moves it).
    pub fn assign(&mut self, asn: Asn, org: OrgId) {
        if let Some(prev) = self.by_asn.insert(asn, org) {
            if let Some(list) = self.members.get_mut(&prev) {
                list.retain(|a| *a != asn);
            }
        }
        self.members.entry(org).or_default().push(asn);
    }

    /// The organization owning `asn`.
    pub fn org_of(&self, asn: Asn) -> Option<&Organization> {
        self.by_asn.get(&asn).and_then(|id| self.orgs.get(id))
    }

    /// All ASes of an organization — the "sibling" set used by the
    /// paper's Table 1 attribution.
    pub fn asns_of(&self, org: OrgId) -> &[Asn] {
        self.members.get(&org).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `true` if two ASNs belong to the same organization.
    pub fn are_siblings(&self, a: Asn, b: Asn) -> bool {
        match (self.by_asn.get(&a), self.by_asn.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Every organization.
    pub fn orgs(&self) -> impl Iterator<Item = &Organization> {
        self.orgs.values()
    }

    /// Number of organizations.
    pub fn org_count(&self) -> usize {
        self.orgs.len()
    }

    /// The organization record by id.
    pub fn org(&self, id: OrgId) -> Option<&Organization> {
        self.orgs.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org(id: u32, name: &str) -> Organization {
        Organization { id: OrgId(id), name: name.into(), country: "US".into(), rir: Rir::Arin }
    }

    #[test]
    fn assignment_and_lookup() {
        let mut dir = OrgDirectory::new();
        dir.add_org(org(1, "Example"));
        dir.assign(Asn(100), OrgId(1));
        dir.assign(Asn(200), OrgId(1));
        assert_eq!(dir.org_of(Asn(100)).unwrap().name, "Example");
        assert_eq!(dir.asns_of(OrgId(1)), &[Asn(100), Asn(200)]);
        assert!(dir.org_of(Asn(999)).is_none());
    }

    #[test]
    fn siblings() {
        let mut dir = OrgDirectory::new();
        dir.add_org(org(1, "A"));
        dir.add_org(org(2, "B"));
        dir.assign(Asn(1), OrgId(1));
        dir.assign(Asn(2), OrgId(1));
        dir.assign(Asn(3), OrgId(2));
        assert!(dir.are_siblings(Asn(1), Asn(2)));
        assert!(!dir.are_siblings(Asn(1), Asn(3)));
        assert!(!dir.are_siblings(Asn(1), Asn(99)));
    }

    #[test]
    fn reassignment_moves_asn() {
        let mut dir = OrgDirectory::new();
        dir.add_org(org(1, "A"));
        dir.add_org(org(2, "B"));
        dir.assign(Asn(1), OrgId(1));
        dir.assign(Asn(1), OrgId(2));
        assert!(dir.asns_of(OrgId(1)).is_empty());
        assert_eq!(dir.asns_of(OrgId(2)), &[Asn(1)]);
        assert_eq!(dir.org_of(Asn(1)).unwrap().id, OrgId(2));
    }

    #[test]
    fn counts() {
        let mut dir = OrgDirectory::new();
        dir.add_org(org(1, "A"));
        dir.add_org(org(2, "B"));
        assert_eq!(dir.org_count(), 2);
        assert_eq!(dir.orgs().count(), 2);
        assert!(dir.org(OrgId(1)).is_some());
        assert!(dir.org(OrgId(9)).is_none());
    }
}
