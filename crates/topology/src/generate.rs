//! Random Internet topology generation.
//!
//! The generator builds a three-layer hierarchy that reproduces the macro
//! shape the paper's size classes assume (§6.2): a small clique of tier-1
//! transits peering with each other, a preferential-attachment middle
//! tier of regional transits, and a heavy-tailed edge of stub networks.
//! CDNs attach like stubs but multi-home and peer widely, and originate
//! many more prefixes — as the paper's CDN program members do (§8.3: two
//! CDNs originate more than 3,500 prefixes).
//!
//! Generation is fully deterministic in the seed.

use crate::graph::{AsInfo, AsTopology, NetworkKind};
use crate::org::{OrgDirectory, Organization, OrgId};
use crate::prefixes::{Prefix2As, PrefixAllocator};
use manrs_net::{Asn, Ipv4Prefix, Ipv6Prefix, Prefix, Rir};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the topology generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// RNG seed; everything is deterministic in it.
    pub seed: u64,
    /// Total number of ASes (tier-1 + mid + CDN + stubs).
    pub total_ases: usize,
    /// Number of tier-1 transit providers (fully peered clique).
    pub tier1_count: usize,
    /// Number of mid-tier (regional) transit providers.
    pub mid_tier_count: usize,
    /// Number of CDN / cloud networks.
    pub cdn_count: usize,
    /// Per-RIR share of ASes; normalized internally. The default is
    /// loosely the real 2022 distribution (RIPE and APNIC heavy in AS
    /// count, ARIN heavy in space).
    pub region_weights: [(Rir, f64); 5],
    /// Probability that a new AS joins an existing organization of its
    /// region rather than founding a new one (multi-AS organizations are
    /// the subject of the paper's Finding 7.0).
    pub sibling_probability: f64,
    /// Cap on ASes per organization.
    pub max_asns_per_org: usize,
    /// Probability that an announced block is also de-aggregated into
    /// more-specifics (traffic engineering, §3).
    pub deaggregate_probability: f64,
    /// Probability a stub network is dual-stacked (holds and announces
    /// IPv6 space). Transit and CDN networks are always dual-stacked.
    pub stub_dual_stack_probability: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 0,
            total_ases: 2_000,
            tier1_count: 10,
            mid_tier_count: 150,
            cdn_count: 15,
            region_weights: [
                (Rir::Arin, 0.18),
                (Rir::RipeNcc, 0.30),
                (Rir::Apnic, 0.22),
                (Rir::Lacnic, 0.22),
                (Rir::Afrinic, 0.08),
            ],
            sibling_probability: 0.18,
            max_asns_per_org: 30,
            deaggregate_probability: 0.25,
            stub_dual_stack_probability: 0.35,
        }
    }
}

/// Everything the generator produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedWorld {
    /// The relationship graph.
    pub topology: AsTopology,
    /// Organizations and the as2org mapping.
    pub orgs: OrgDirectory,
    /// The allocator after allocation (usable for region lookups and
    /// trust-anchor resources).
    pub allocator: PrefixAllocator,
    /// Allocated (held) IPv4 blocks per AS.
    pub resources: BTreeMap<Asn, Vec<Ipv4Prefix>>,
    /// Allocated (held) IPv6 blocks per AS (empty for v4-only networks).
    pub resources_v6: BTreeMap<Asn, Vec<Ipv6Prefix>>,
    /// The *intended* announcements of every AS: what each network means
    /// to originate (whole blocks plus de-aggregated specifics). The
    /// scenario layer perturbs this into the observed table.
    pub intended: Prefix2As,
}

impl GeneratedWorld {
    /// The IPv4 resources held by `asn`.
    pub fn resources_of(&self, asn: Asn) -> &[Ipv4Prefix] {
        self.resources.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The IPv6 resources held by `asn`.
    pub fn resources_v6_of(&self, asn: Asn) -> &[Ipv6Prefix] {
        self.resources_v6.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every block held by `asn`, both families, as family-erased
    /// prefixes.
    pub fn all_resources(&self, asn: Asn) -> Vec<Prefix> {
        self.resources_of(asn)
            .iter()
            .map(|p| Prefix::V4(*p))
            .chain(self.resources_v6_of(asn).iter().map(|p| Prefix::V6(*p)))
            .collect()
    }
}

/// The topology generator. See the module docs for the model.
pub struct TopologyBuilder {
    config: GeneratorConfig,
}

impl TopologyBuilder {
    /// Creates a builder with the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        assert!(
            config.tier1_count + config.mid_tier_count + config.cdn_count <= config.total_ases,
            "role counts exceed total_ases"
        );
        assert!(config.tier1_count >= 1, "need at least one tier-1");
        TopologyBuilder { config }
    }

    /// Generates the world.
    pub fn generate(&self) -> GeneratedWorld {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // --- Roles -----------------------------------------------------
        let n = cfg.total_ases;
        let mut kinds = Vec::with_capacity(n);
        for i in 0..n {
            let kind = if i < cfg.tier1_count + cfg.mid_tier_count {
                NetworkKind::Transit
            } else if i < cfg.tier1_count + cfg.mid_tier_count + cfg.cdn_count {
                NetworkKind::Cdn
            } else {
                NetworkKind::Stub
            };
            kinds.push(kind);
        }

        // --- Regions ---------------------------------------------------
        let weight_sum: f64 = cfg.region_weights.iter().map(|(_, w)| w).sum();
        let pick_region = |rng: &mut StdRng| -> Rir {
            let mut x = rng.random_range(0.0..weight_sum);
            for (rir, w) in cfg.region_weights {
                if x < w {
                    return rir;
                }
                x -= w;
            }
            cfg.region_weights[0].0
        };
        // Tier-1s skew toward ARIN, matching "most large networks are
        // from the ARIN region" (Fig. 4 caption).
        let mut regions = Vec::with_capacity(n);
        for (i, kind) in kinds.iter().enumerate() {
            let rir = if (i < cfg.tier1_count && rng.random_bool(0.6))
                || (*kind == NetworkKind::Cdn && rng.random_bool(0.7))
            {
                Rir::Arin
            } else {
                pick_region(&mut rng)
            };
            regions.push(rir);
        }

        // --- Organizations ----------------------------------------------
        let mut orgs = OrgDirectory::new();
        let mut region_orgs: BTreeMap<Rir, Vec<(OrgId, usize)>> = BTreeMap::new();
        let mut next_org = 0u32;
        let mut org_of: Vec<OrgId> = Vec::with_capacity(n);
        for i in 0..n {
            let rir = regions[i];
            let candidates = region_orgs.entry(rir).or_default();
            let join_existing = !candidates.is_empty()
                && kinds[i] == NetworkKind::Stub
                && rng.random_bool(cfg.sibling_probability);
            let org_id = if join_existing {
                let idx = rng.random_range(0..candidates.len());
                let (id, count) = &mut candidates[idx];
                let id = *id;
                *count += 1;
                if *count >= cfg.max_asns_per_org {
                    candidates.swap_remove(idx);
                }
                id
            } else {
                let id = OrgId(next_org);
                next_org += 1;
                orgs.add_org(Organization {
                    id,
                    name: format!("Org-{}-{}", rir.name(), id.0),
                    country: country_for(rir, &mut rng),
                    rir,
                });
                candidates.push((id, 1));
                id
            };
            org_of.push(org_id);
        }

        // --- Nodes -------------------------------------------------------
        // ASNs are dense small integers offset to avoid reserved ranges.
        let mut topology = AsTopology::new();
        let asn_of = |i: usize| Asn(1_000 + i as u32);
        for i in 0..n {
            let asn = asn_of(i);
            topology.add_as(AsInfo {
                asn,
                org: org_of[i],
                rir: regions[i],
                country: orgs.org(org_of[i]).expect("org exists").country.clone(),
                kind: kinds[i],
            });
            orgs.assign(asn, org_of[i]);
        }

        // --- Edges -------------------------------------------------------
        // Tier-1 clique.
        for a in 0..cfg.tier1_count {
            for b in (a + 1)..cfg.tier1_count {
                topology.add_peer(asn_of(a), asn_of(b));
            }
        }
        // Transit pool with preferential-attachment weights
        // (weight = current customer count + 1).
        let transit_end = cfg.tier1_count + cfg.mid_tier_count;
        let pick_transit =
            |rng: &mut StdRng, topology: &AsTopology, upper: usize, exclude: Asn| -> Asn {
                let total: usize = (0..upper)
                    .map(|i| topology.customers(asn_of(i)).len() + 1)
                    .sum();
                let mut x = rng.random_range(0..total.max(1));
                for i in 0..upper {
                    let w = topology.customers(asn_of(i)).len() + 1;
                    if x < w && asn_of(i) != exclude {
                        return asn_of(i);
                    }
                    x = x.saturating_sub(w);
                }
                // Fallback: first non-excluded.
                (0..upper)
                    .map(asn_of)
                    .find(|a| *a != exclude)
                    .unwrap_or_else(|| asn_of(0))
            };

        // Mid tier: 1–3 providers among tier-1s and earlier mids.
        for i in cfg.tier1_count..transit_end {
            let asn = asn_of(i);
            let provider_count = 1 + rng.random_range(0..3usize);
            for _ in 0..provider_count {
                let provider = pick_transit(&mut rng, &topology, i.max(cfg.tier1_count), asn);
                if provider != asn {
                    topology.add_provider_customer(provider, asn);
                }
            }
            // Occasional lateral peering between mids.
            if i > cfg.tier1_count && rng.random_bool(0.3) {
                let j = rng.random_range(cfg.tier1_count..i);
                topology.add_peer(asn, asn_of(j));
            }
        }

        // CDNs: multi-home to 2–4 transits and peer widely with mids.
        let cdn_end = transit_end + cfg.cdn_count;
        for i in transit_end..cdn_end {
            let asn = asn_of(i);
            for _ in 0..(2 + rng.random_range(0..3usize)) {
                let provider = pick_transit(&mut rng, &topology, transit_end, asn);
                topology.add_provider_customer(provider, asn);
            }
            let peer_count = rng.random_range(2..8usize).min(cfg.mid_tier_count);
            for _ in 0..peer_count {
                if cfg.mid_tier_count > 0 {
                    let j = rng.random_range(cfg.tier1_count..transit_end);
                    topology.add_peer(asn, asn_of(j));
                }
            }
        }

        // Stubs: 1–2 providers, preferential attachment over all transits.
        for (i, org) in org_of.iter().enumerate().skip(cdn_end) {
            let asn = asn_of(i);
            let multi_homed = rng.random_bool(0.3);
            let provider_count = if multi_homed { 2 } else { 1 };
            for _ in 0..provider_count {
                let provider = pick_transit(&mut rng, &topology, transit_end, asn);
                topology.add_provider_customer(provider, asn);
            }
            // Sibling stubs usually sit behind another AS of the same org.
            let siblings = orgs.asns_of(*org);
            if siblings.len() > 1 && rng.random_bool(0.5) {
                let main = siblings[0];
                if main != asn && topology.contains(main) {
                    topology.add_provider_customer(main, asn);
                }
            }
        }

        // --- Prefixes ------------------------------------------------------
        let mut allocator = PrefixAllocator::new();
        let mut resources: BTreeMap<Asn, Vec<Ipv4Prefix>> = BTreeMap::new();
        let mut resources_v6: BTreeMap<Asn, Vec<Ipv6Prefix>> = BTreeMap::new();
        let mut intended = Prefix2As::new();
        for i in 0..n {
            let asn = asn_of(i);
            let rir = regions[i];
            let (block_count, len_lo, len_hi) = match kinds[i] {
                NetworkKind::Stub => (1 + rng.random_range(0..3usize), 21, 24),
                NetworkKind::Cdn => (8 + rng.random_range(0..20usize), 18, 22),
                NetworkKind::Transit if i < cfg.tier1_count => {
                    (6 + rng.random_range(0..12usize), 14, 19)
                }
                NetworkKind::Transit => (2 + rng.random_range(0..6usize), 18, 22),
            };
            let mut blocks = Vec::with_capacity(block_count);
            for _ in 0..block_count {
                let len = rng.random_range(len_lo..=len_hi) as u8;
                let block = allocator
                    .allocate(rir, len)
                    .expect("default pools sized for generated worlds");
                blocks.push(block);
                intended.add(Prefix::V4(block), asn);
                // De-aggregation: also announce the two children of the
                // block (a common traffic-engineering shape).
                if len < 24 && rng.random_bool(cfg.deaggregate_probability) {
                    if let Some((lo, hi)) = block.children() {
                        intended.add(Prefix::V4(lo), asn);
                        intended.add(Prefix::V4(hi), asn);
                    }
                }
            }
            resources.insert(asn, blocks);

            // IPv6: infrastructure is dual-stacked, stubs often not.
            let dual_stack = kinds[i] != NetworkKind::Stub
                || rng.random_bool(cfg.stub_dual_stack_probability);
            let mut v6_blocks = Vec::new();
            if dual_stack {
                let (count6, lo6, hi6) = match kinds[i] {
                    NetworkKind::Stub => (1usize, 40u8, 48u8),
                    NetworkKind::Cdn => (2 + rng.random_range(0..4usize), 32, 40),
                    NetworkKind::Transit if i < cfg.tier1_count => (2, 28, 32),
                    NetworkKind::Transit => (1 + rng.random_range(0..2usize), 32, 40),
                };
                for _ in 0..count6 {
                    let len = rng.random_range(lo6..=hi6.max(lo6));
                    let block = allocator
                        .allocate_v6(rir, len.min(64))
                        .expect("v6 pools sized for generated worlds");
                    v6_blocks.push(block);
                    intended.add(Prefix::V6(block), asn);
                    if len < 48 && rng.random_bool(cfg.deaggregate_probability) {
                        if let Some((lo, hi)) = block.children() {
                            intended.add(Prefix::V6(lo), asn);
                            intended.add(Prefix::V6(hi), asn);
                        }
                    }
                }
            }
            resources_v6.insert(asn, v6_blocks);
        }

        GeneratedWorld { topology, orgs, allocator, resources, resources_v6, intended }
    }
}

fn country_for(rir: Rir, rng: &mut StdRng) -> String {
    let options: &[&str] = match rir {
        Rir::Arin => &["US", "US", "US", "CA"],
        Rir::RipeNcc => &["DE", "GB", "FR", "NL", "RU"],
        Rir::Apnic => &["CN", "JP", "IN", "AU", "ID"],
        Rir::Lacnic => &["BR", "BR", "AR", "MX", "CL"],
        Rir::Afrinic => &["ZA", "NG", "KE", "EG"],
    };
    (*options.choose(rng).expect("non-empty")).to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::{ConeAnalysis, SizeThresholds};

    fn small_world(seed: u64) -> GeneratedWorld {
        TopologyBuilder::new(GeneratorConfig {
            seed,
            total_ases: 400,
            tier1_count: 6,
            mid_tier_count: 40,
            cdn_count: 6,
            ..GeneratorConfig::default()
        })
        .generate()
    }

    #[test]
    fn deterministic_in_seed() {
        let a = small_world(7);
        let b = small_world(7);
        assert_eq!(a.topology.len(), b.topology.len());
        assert_eq!(a.intended.entries(), b.intended.entries());
        for asn in a.topology.asns() {
            assert_eq!(a.topology.customers(asn), b.topology.customers(asn));
            assert_eq!(a.resources_of(asn), b.resources_of(asn));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_world(1);
        let b = small_world(2);
        assert_ne!(a.intended.entries(), b.intended.entries());
    }

    #[test]
    fn every_as_has_a_path_to_tier1() {
        // Every non-tier-1 AS must have at least one provider, so routes
        // can always climb to the clique.
        let world = small_world(3);
        for (i, asn) in world.topology.asns().enumerate() {
            if i >= 6 {
                assert!(
                    !world.topology.providers(asn).is_empty(),
                    "{asn} has no providers"
                );
            }
        }
    }

    #[test]
    fn intended_announcements_cover_resources() {
        let world = small_world(4);
        for asn in world.topology.asns() {
            let blocks = world.all_resources(asn);
            assert!(!blocks.is_empty());
            let announced = world.intended.prefixes_of(asn);
            for block in &blocks {
                assert!(announced.contains(block));
            }
            // Every announced prefix is within some held block.
            for p in announced {
                assert!(
                    blocks.iter().any(|b| b.contains(p)),
                    "{asn} announces {p} outside its resources"
                );
            }
        }
    }

    #[test]
    fn v6_presence_matches_roles() {
        let world = small_world(12);
        // Tier-1s (the first 6 ASes) are always dual-stacked.
        for i in 0..6 {
            let asn = Asn(1_000 + i);
            assert!(
                !world.resources_v6_of(asn).is_empty(),
                "{asn} is tier-1 and must hold v6"
            );
        }
        // Some stubs are v6-less, some dual-stacked.
        let stubs_with: usize = world
            .topology
            .asns()
            .filter(|a| {
                world.topology.info(*a).unwrap().kind == NetworkKind::Stub
                    && !world.resources_v6_of(*a).is_empty()
            })
            .count();
        let stubs_without: usize = world
            .topology
            .asns()
            .filter(|a| {
                world.topology.info(*a).unwrap().kind == NetworkKind::Stub
                    && world.resources_v6_of(*a).is_empty()
            })
            .count();
        assert!(stubs_with > 0 && stubs_without > 0);
        // v6 allocations are globally disjoint.
        let mut space = manrs_net::AddressSpace::new();
        let mut total = 0u128;
        for asn in world.topology.asns() {
            for b in world.resources_v6_of(asn) {
                total += b.address_count();
                space.add(&Prefix::V6(*b));
            }
        }
        assert_eq!(space.v6_len(), total, "v6 blocks overlap");
    }

    #[test]
    fn resources_are_globally_disjoint() {
        let world = small_world(5);
        let mut space = manrs_net::AddressSpace::new();
        let mut total = 0u128;
        for asn in world.topology.asns() {
            for b in world.resources_of(asn) {
                total += b.address_count();
                space.add(&Prefix::V4(*b));
            }
        }
        assert_eq!(space.v4_len(), total, "allocated blocks overlap");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let world = small_world(6);
        let cones = ConeAnalysis::compute(&world.topology, SizeThresholds::scaled(2, 30));
        let counts = cones.class_counts();
        let small = counts.get(&crate::SizeClass::Small).copied().unwrap_or(0);
        let large = counts.get(&crate::SizeClass::Large).copied().unwrap_or(0);
        assert!(small > 300, "most ASes should be small, got {small}");
        assert!(large >= 1, "at least one large transit expected");
    }

    #[test]
    fn multi_as_orgs_exist() {
        let world = small_world(8);
        let multi = world
            .orgs
            .orgs()
            .filter(|o| world.orgs.asns_of(o.id).len() > 1)
            .count();
        assert!(multi > 5, "expected multi-AS organizations, got {multi}");
    }

    #[test]
    fn regions_match_allocator() {
        let world = small_world(9);
        for asn in world.topology.asns() {
            let rir = world.topology.info(asn).unwrap().rir;
            for block in world.resources_of(asn) {
                assert_eq!(world.allocator.region_of(block), Some(rir));
            }
        }
    }

    #[test]
    #[should_panic(expected = "role counts exceed total_ases")]
    fn rejects_inconsistent_config() {
        TopologyBuilder::new(GeneratorConfig {
            total_ases: 10,
            tier1_count: 8,
            mid_tier_count: 8,
            ..GeneratorConfig::default()
        });
    }
}
