//! Customer cones, degrees, AS Rank, and size classes.
//!
//! The paper classifies ASes by *customer degree* — the number of direct
//! AS-level customers inferred by CAIDA AS Rank — into small (≤2), medium
//! (≤180), and large (>180) networks (§6.2, thresholds from Dhamdhere &
//! Dovrolis). The customer *cone* (all ASes reachable by walking only
//! provider→customer edges) gives the AS Rank ordering used to
//! characterize participants (§3, RQ1).

use crate::graph::AsTopology;
use manrs_net::Asn;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Customer-degree thresholds separating the size classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeThresholds {
    /// Maximum customer degree of a small network.
    pub small_max: usize,
    /// Maximum customer degree of a medium network.
    pub medium_max: usize,
}

impl SizeThresholds {
    /// The paper's thresholds: small ≤ 2 < medium ≤ 180 < large.
    pub const PAPER: SizeThresholds = SizeThresholds { small_max: 2, medium_max: 180 };

    /// Scaled-down thresholds for small synthetic worlds where no AS can
    /// plausibly reach 180 direct customers.
    pub fn scaled(small_max: usize, medium_max: usize) -> Self {
        assert!(small_max < medium_max);
        SizeThresholds { small_max, medium_max }
    }
}

impl Default for SizeThresholds {
    fn default() -> Self {
        Self::PAPER
    }
}

/// The paper's three network size classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SizeClass {
    /// Customer degree ≤ small_max (edge networks; the vast majority).
    Small,
    /// small_max < degree ≤ medium_max (regional transits).
    Medium,
    /// degree > medium_max (major transit providers).
    Large,
}

impl SizeClass {
    /// Classifies a customer degree.
    pub fn classify(degree: usize, thresholds: SizeThresholds) -> SizeClass {
        if degree <= thresholds.small_max {
            SizeClass::Small
        } else if degree <= thresholds.medium_max {
            SizeClass::Medium
        } else {
            SizeClass::Large
        }
    }

    /// All classes in ascending order.
    pub const ALL: [SizeClass; 3] = [SizeClass::Small, SizeClass::Medium, SizeClass::Large];
}

impl std::fmt::Display for SizeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SizeClass::Small => "small",
            SizeClass::Medium => "medium",
            SizeClass::Large => "large",
        })
    }
}

/// Customer-cone and degree analysis over a topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConeAnalysis {
    degrees: BTreeMap<Asn, usize>,
    cone_sizes: BTreeMap<Asn, usize>,
    thresholds: SizeThresholds,
}

impl ConeAnalysis {
    /// Computes degrees and cone sizes for every AS.
    ///
    /// Cone sizes are computed by walking provider→customer edges from
    /// each AS with memoization over the customer DAG; cycles (which CAIDA
    /// data does contain in rare cases, and a generator bug could create)
    /// are tolerated by counting the reachable set directly when a cycle
    /// is detected.
    pub fn compute(topology: &AsTopology, thresholds: SizeThresholds) -> Self {
        let degrees: BTreeMap<Asn, usize> = topology
            .asns()
            .map(|asn| (asn, topology.customers(asn).len()))
            .collect();
        let mut cone_sizes = BTreeMap::new();
        // Memoized cone *sets* would be O(n^2) memory on big graphs;
        // instead run one BFS per AS over customer edges. The customer
        // DAG is shallow (provider hierarchies are a handful of levels),
        // and stubs (the vast majority) terminate immediately.
        for asn in topology.asns() {
            let mut seen: BTreeSet<Asn> = BTreeSet::new();
            seen.insert(asn);
            let mut queue = vec![asn];
            while let Some(current) = queue.pop() {
                for &c in topology.customers(current) {
                    if seen.insert(c) {
                        queue.push(c);
                    }
                }
            }
            cone_sizes.insert(asn, seen.len());
        }
        ConeAnalysis { degrees, cone_sizes, thresholds }
    }

    /// Direct customer degree of `asn` (0 for unknown ASes).
    pub fn degree(&self, asn: Asn) -> usize {
        self.degrees.get(&asn).copied().unwrap_or(0)
    }

    /// Customer cone size of `asn`, **including itself** (CAIDA's
    /// convention); 0 for unknown ASes.
    pub fn cone_size(&self, asn: Asn) -> usize {
        self.cone_sizes.get(&asn).copied().unwrap_or(0)
    }

    /// The size class of `asn`.
    pub fn size_class(&self, asn: Asn) -> SizeClass {
        SizeClass::classify(self.degree(asn), self.thresholds)
    }

    /// The thresholds in use.
    pub fn thresholds(&self) -> SizeThresholds {
        self.thresholds
    }

    /// ASNs ordered by descending cone size (AS Rank order; ties by
    /// ascending ASN for determinism).
    pub fn ranked(&self) -> Vec<Asn> {
        let mut asns: Vec<Asn> = self.cone_sizes.keys().copied().collect();
        asns.sort_by_key(|asn| (std::cmp::Reverse(self.cone_size(*asn)), *asn));
        asns
    }

    /// Count of ASes per size class.
    pub fn class_counts(&self) -> BTreeMap<SizeClass, usize> {
        let mut counts = BTreeMap::new();
        for &asn in self.degrees.keys() {
            *counts.entry(self.size_class(asn)).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AsInfo, NetworkKind};
    use crate::org::OrgId;
    use manrs_net::Rir;

    fn topology(edges: &[(u32, u32)], n: u32) -> AsTopology {
        let mut t = AsTopology::new();
        for asn in 1..=n {
            t.add_as(AsInfo {
                asn: Asn(asn),
                org: OrgId(asn),
                rir: Rir::Arin,
                country: "US".into(),
                kind: NetworkKind::Transit,
            });
        }
        for &(p, c) in edges {
            t.add_provider_customer(Asn(p), Asn(c));
        }
        t
    }

    #[test]
    fn classify_paper_thresholds() {
        let t = SizeThresholds::PAPER;
        assert_eq!(SizeClass::classify(0, t), SizeClass::Small);
        assert_eq!(SizeClass::classify(2, t), SizeClass::Small);
        assert_eq!(SizeClass::classify(3, t), SizeClass::Medium);
        assert_eq!(SizeClass::classify(180, t), SizeClass::Medium);
        assert_eq!(SizeClass::classify(181, t), SizeClass::Large);
    }

    #[test]
    fn chain_cones() {
        // 1 -> 2 -> 3 -> 4 (provider to customer).
        let t = topology(&[(1, 2), (2, 3), (3, 4)], 4);
        let cones = ConeAnalysis::compute(&t, SizeThresholds::PAPER);
        assert_eq!(cones.cone_size(Asn(1)), 4);
        assert_eq!(cones.cone_size(Asn(2)), 3);
        assert_eq!(cones.cone_size(Asn(4)), 1);
        assert_eq!(cones.degree(Asn(1)), 1);
        assert_eq!(cones.degree(Asn(4)), 0);
    }

    #[test]
    fn diamond_counts_once() {
        // 1 -> {2,3} -> 4: 4 must be counted once in 1's cone.
        let t = topology(&[(1, 2), (1, 3), (2, 4), (3, 4)], 4);
        let cones = ConeAnalysis::compute(&t, SizeThresholds::PAPER);
        assert_eq!(cones.cone_size(Asn(1)), 4);
        assert_eq!(cones.degree(Asn(1)), 2);
    }

    #[test]
    fn cycle_tolerated() {
        // Pathological 1 -> 2 -> 1 cycle plus 2 -> 3.
        let t = topology(&[(1, 2), (2, 1), (2, 3)], 3);
        let cones = ConeAnalysis::compute(&t, SizeThresholds::PAPER);
        assert_eq!(cones.cone_size(Asn(1)), 3);
        assert_eq!(cones.cone_size(Asn(2)), 3);
        assert_eq!(cones.cone_size(Asn(3)), 1);
    }

    #[test]
    fn ranked_by_cone() {
        let t = topology(&[(1, 2), (2, 3), (2, 4)], 4);
        let cones = ConeAnalysis::compute(&t, SizeThresholds::PAPER);
        let ranked = cones.ranked();
        assert_eq!(ranked[0], Asn(1));
        assert_eq!(ranked[1], Asn(2));
        // Ties (3 and 4 both have cone 1) break by ASN.
        assert_eq!(&ranked[2..], &[Asn(3), Asn(4)]);
    }

    #[test]
    fn class_counts_with_scaled_thresholds() {
        let t = topology(&[(1, 2), (1, 3), (1, 4), (2, 4)], 4);
        let cones = ConeAnalysis::compute(&t, SizeThresholds::scaled(0, 2));
        let counts = cones.class_counts();
        // Degrees: 1 -> 3 customers (large), 2 -> 1 (medium), 3,4 -> 0 (small).
        assert_eq!(counts.get(&SizeClass::Large), Some(&1));
        assert_eq!(counts.get(&SizeClass::Medium), Some(&1));
        assert_eq!(counts.get(&SizeClass::Small), Some(&2));
    }

    #[test]
    fn unknown_asn_defaults() {
        let t = topology(&[], 1);
        let cones = ConeAnalysis::compute(&t, SizeThresholds::PAPER);
        assert_eq!(cones.degree(Asn(99)), 0);
        assert_eq!(cones.cone_size(Asn(99)), 0);
        assert_eq!(cones.size_class(Asn(99)), SizeClass::Small);
    }
}
