//! Synthetic AS-level Internet topology.
//!
//! The paper leans on four CAIDA inference datasets: `as2org` (which
//! organization owns which ASes), `as-rel` (customer/provider/peer
//! relationships), AS Rank (customer cones), and `prefix2as` (who
//! originates what). This crate builds a synthetic Internet with the same
//! interfaces:
//!
//! * [`org`] — organizations and the AS-to-organization mapping.
//! * [`graph`] — the business-relationship graph ([`AsTopology`]):
//!   customer–provider and peer–peer edges with adjacency queries.
//! * [`cone`] — customer cones, customer degrees, AS Rank ordering, and
//!   the paper's small/medium/large size classes (§6.2: ≤2, ≤180, >180
//!   customers, thresholds from Dhamdhere & Dovrolis).
//! * [`prefixes`] — address allocation: per-RIR pools handing out
//!   disjoint blocks, and the prefix2as view of who originates what.
//! * [`generate`] — the random topology generator: a clique of tier-1
//!   transits, a preferential-attachment middle tier, and a large stub
//!   edge, calibrated to produce the heavy-tailed degree distribution the
//!   size classes assume.
//! * [`datasets`] — text serializations in the shape of the CAIDA files
//!   (`as-rel`, `prefix2as`, `as2org`) so the pipeline can be pointed at
//!   files on disk exactly as the original analysis was.

pub mod cone;
pub mod datasets;
pub mod generate;
pub mod graph;
pub mod org;
pub mod prefixes;

pub use cone::{ConeAnalysis, SizeClass, SizeThresholds};
pub use generate::{GeneratedWorld, GeneratorConfig, TopologyBuilder};
pub use graph::{AsInfo, AsTopology, NetworkKind, Relationship};
pub use org::{OrgDirectory, OrgId, Organization};
pub use prefixes::{PrefixAllocator, Prefix2As};
