//! The AS-level business-relationship graph.
//!
//! Mirrors the information content of CAIDA's `as-rel` dataset: each edge
//! is either customer–provider (the customer pays) or peer–peer
//! (settlement-free). The propagation engine in `manrs-bgp` and the
//! Action 1 analysis in `manrs-core` both run over this graph.

use crate::org::OrgId;
use manrs_net::{Asn, Rir};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Coarse role of a network, used by the generator and by program
/// enrollment in the scenario layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkKind {
    /// A transit provider (sells connectivity to customers).
    Transit,
    /// An edge/stub network (enterprise, access ISP).
    Stub,
    /// A content distribution network or cloud provider.
    Cdn,
}

/// Per-AS metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Owning organization.
    pub org: OrgId,
    /// The RIR that allocated the ASN.
    pub rir: Rir,
    /// Country of operation.
    pub country: String,
    /// Coarse role.
    pub kind: NetworkKind,
}

/// The relationship between two ASes, from the first AS's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// The other AS is my customer (I provide transit to them).
    Customer,
    /// The other AS is my provider.
    Provider,
    /// Settlement-free peer.
    Peer,
}

/// The AS-level topology: nodes with metadata and relationship edges.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsTopology {
    nodes: BTreeMap<Asn, AsInfo>,
    /// For each AS: its direct customers.
    customers: BTreeMap<Asn, Vec<Asn>>,
    /// For each AS: its providers.
    providers: BTreeMap<Asn, Vec<Asn>>,
    /// For each AS: its peers.
    peers: BTreeMap<Asn, Vec<Asn>>,
}

impl AsTopology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node. Re-adding an ASN replaces its metadata but keeps
    /// edges.
    pub fn add_as(&mut self, info: AsInfo) {
        let asn = info.asn;
        self.nodes.insert(asn, info);
        self.customers.entry(asn).or_default();
        self.providers.entry(asn).or_default();
        self.peers.entry(asn).or_default();
    }

    /// Adds a customer–provider edge. No-op if already present.
    ///
    /// # Panics
    /// Panics if either AS is unknown — edges between unregistered nodes
    /// are always a construction bug.
    pub fn add_provider_customer(&mut self, provider: Asn, customer: Asn) {
        assert!(self.nodes.contains_key(&provider), "unknown provider {provider}");
        assert!(self.nodes.contains_key(&customer), "unknown customer {customer}");
        let c = self.customers.get_mut(&provider).expect("registered");
        if !c.contains(&customer) {
            c.push(customer);
        }
        let p = self.providers.get_mut(&customer).expect("registered");
        if !p.contains(&provider) {
            p.push(provider);
        }
    }

    /// Adds a symmetric peer edge. No-op if already present.
    pub fn add_peer(&mut self, a: Asn, b: Asn) {
        assert!(self.nodes.contains_key(&a), "unknown peer {a}");
        assert!(self.nodes.contains_key(&b), "unknown peer {b}");
        let pa = self.peers.get_mut(&a).expect("registered");
        if !pa.contains(&b) {
            pa.push(b);
        }
        let pb = self.peers.get_mut(&b).expect("registered");
        if !pb.contains(&a) {
            pb.push(a);
        }
    }

    /// Node metadata.
    pub fn info(&self, asn: Asn) -> Option<&AsInfo> {
        self.nodes.get(&asn)
    }

    /// `true` if the AS exists.
    pub fn contains(&self, asn: Asn) -> bool {
        self.nodes.contains_key(&asn)
    }

    /// All ASNs, ascending.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.nodes.keys().copied()
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if there are no ASes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Direct customers of `asn`.
    pub fn customers(&self, asn: Asn) -> &[Asn] {
        self.customers.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Providers of `asn`.
    pub fn providers(&self, asn: Asn) -> &[Asn] {
        self.providers.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Peers of `asn`.
    pub fn peers(&self, asn: Asn) -> &[Asn] {
        self.peers.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The relationship from `a` toward `b`, if the two are adjacent.
    pub fn relationship(&self, a: Asn, b: Asn) -> Option<Relationship> {
        if self.customers(a).contains(&b) {
            Some(Relationship::Customer)
        } else if self.providers(a).contains(&b) {
            Some(Relationship::Provider)
        } else if self.peers(a).contains(&b) {
            Some(Relationship::Peer)
        } else {
            None
        }
    }

    /// Number of directed customer edges plus peer edges (each peer link
    /// counted once).
    pub fn edge_count(&self) -> usize {
        let cp: usize = self.customers.values().map(Vec::len).sum();
        let pp: usize = self.peers.values().map(Vec::len).sum();
        cp + pp / 2
    }

    /// `true` if `a` and `b` have a customer–provider relationship in
    /// either direction — half of the paper's Table 1 "Sibling/C-P"
    /// attribution test.
    pub fn has_customer_provider_link(&self, a: Asn, b: Asn) -> bool {
        matches!(
            self.relationship(a, b),
            Some(Relationship::Customer) | Some(Relationship::Provider)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(asn: u32) -> AsInfo {
        AsInfo {
            asn: Asn(asn),
            org: OrgId(asn),
            rir: Rir::Arin,
            country: "US".into(),
            kind: NetworkKind::Transit,
        }
    }

    fn triangle() -> AsTopology {
        // 1 provides to 2; 2 provides to 3; 1 peers with 3.
        let mut t = AsTopology::new();
        for asn in 1..=3 {
            t.add_as(node(asn));
        }
        t.add_provider_customer(Asn(1), Asn(2));
        t.add_provider_customer(Asn(2), Asn(3));
        t.add_peer(Asn(1), Asn(3));
        t
    }

    #[test]
    fn adjacency_queries() {
        let t = triangle();
        assert_eq!(t.customers(Asn(1)), &[Asn(2)]);
        assert_eq!(t.providers(Asn(2)), &[Asn(1)]);
        assert_eq!(t.peers(Asn(3)), &[Asn(1)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.edge_count(), 3);
    }

    #[test]
    fn relationship_perspective() {
        let t = triangle();
        assert_eq!(t.relationship(Asn(1), Asn(2)), Some(Relationship::Customer));
        assert_eq!(t.relationship(Asn(2), Asn(1)), Some(Relationship::Provider));
        assert_eq!(t.relationship(Asn(1), Asn(3)), Some(Relationship::Peer));
        assert_eq!(t.relationship(Asn(2), Asn(3)), Some(Relationship::Customer));
        assert_eq!(t.relationship(Asn(3), Asn(2)), Some(Relationship::Provider));
    }

    #[test]
    fn cp_link_test() {
        let t = triangle();
        assert!(t.has_customer_provider_link(Asn(1), Asn(2)));
        assert!(t.has_customer_provider_link(Asn(2), Asn(1)));
        assert!(!t.has_customer_provider_link(Asn(1), Asn(3))); // peers
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut t = triangle();
        t.add_provider_customer(Asn(1), Asn(2));
        t.add_peer(Asn(3), Asn(1));
        assert_eq!(t.customers(Asn(1)).len(), 1);
        assert_eq!(t.peers(Asn(1)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown customer")]
    fn edge_to_unknown_panics() {
        let mut t = AsTopology::new();
        t.add_as(node(1));
        t.add_provider_customer(Asn(1), Asn(99));
    }

    #[test]
    fn missing_nodes_queries() {
        let t = triangle();
        assert!(t.customers(Asn(42)).is_empty());
        assert!(t.relationship(Asn(1), Asn(42)).is_none());
        assert!(!t.contains(Asn(42)));
    }
}
