//! Address allocation and the prefix2as view.
//!
//! Each RIR administers disjoint top-level IPv4 space; [`PrefixAllocator`]
//! hands out non-overlapping blocks from per-RIR pools, so a generated
//! world has the same invariant as the real one: a prefix belongs to
//! exactly one RIR region. [`Prefix2As`] is the routing-table view — who
//! originates what — mirroring CAIDA's prefix2as dataset (§5.1).

use manrs_net::{AddressSpace, Asn, Ipv4Prefix, Ipv6Prefix, NetError, Prefix, Rir};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Hands out disjoint IPv4 blocks from per-RIR pools.
///
/// Pools are fixed /8-aligned regions (one slice of the space per RIR),
/// loosely modelled on real allocation history. Allocation is a simple
/// bump pointer at a given prefix length; the allocator never reuses
/// space, so every handed-out block is disjoint by construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixAllocator {
    /// Per RIR: (pool start /8 index, pool end /8 index exclusive,
    /// next free address).
    pools: BTreeMap<Rir, Pool>,
    /// Per RIR IPv6 pools (each a slice of 2000::/12 space).
    pools_v6: BTreeMap<Rir, PoolV6>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Pool {
    start: u32,
    end: u32,
    next: u32,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PoolV6 {
    start: u128,
    end: u128,
    next: u128,
}

impl Default for PrefixAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixAllocator {
    /// Creates an allocator with the default per-RIR pools: ARIN starting
    /// at 4.0.0.0, RIPE at 77.0.0.0, APNIC at 110.0.0.0, LACNIC at
    /// 148.0.0.0, AFRINIC at 196.0.0.0. Each pool is 28 /8s wide —
    /// disjoint by construction and roomy enough for any generated world.
    pub fn new() -> Self {
        let mk = |first_octet: u32| {
            let start = first_octet << 24;
            Pool { start, end: start + (28 << 24), next: start }
        };
        let pools = [
            (Rir::Arin, mk(4)),
            (Rir::RipeNcc, mk(77)),
            (Rir::Apnic, mk(110)),
            (Rir::Lacnic, mk(148)),
            (Rir::Afrinic, mk(196)),
        ]
        .into_iter()
        .collect();
        // IPv6: one /16 of space per RIR carved out of 2000::/12,
        // mirroring the real 2001::, 2400::, 2600::, 2800::, 2c00::
        // allocations (APNIC, ARIN, LACNIC, AFRINIC order approximated).
        let mk6 = |first_hextet: u128| {
            let start = first_hextet << 112;
            PoolV6 { start, end: start + (1u128 << 112), next: start }
        };
        let pools_v6 = [
            (Rir::RipeNcc, mk6(0x2001)),
            (Rir::Apnic, mk6(0x2400)),
            (Rir::Arin, mk6(0x2600)),
            (Rir::Lacnic, mk6(0x2800)),
            (Rir::Afrinic, mk6(0x2c00)),
        ]
        .into_iter()
        .collect();
        PrefixAllocator { pools, pools_v6 }
    }

    /// Allocates one IPv6 block of length `len` from `rir`'s pool.
    pub fn allocate_v6(&mut self, rir: Rir, len: u8) -> Result<Ipv6Prefix, NetError> {
        assert!((16..=64).contains(&len), "v6 allocation length out of range");
        let pool = self.pools_v6.get_mut(&rir).expect("every RIR has a v6 pool");
        let size = 1u128 << (128 - len);
        let aligned = pool.next.div_ceil(size) * size;
        if aligned + size > pool.end {
            return Err(NetError::InvalidAddress(format!("{rir} v6 pool exhausted")));
        }
        pool.next = aligned + size;
        Ipv6Prefix::from_bits_truncated(aligned, len)
    }

    /// The RIR whose IPv6 pool contains `prefix`, if any.
    pub fn region_of_v6(&self, prefix: &Ipv6Prefix) -> Option<Rir> {
        let addr = prefix.range_start();
        self.pools_v6
            .iter()
            .find(|(_, pool)| pool.start <= addr && addr < pool.end)
            .map(|(rir, _)| *rir)
    }

    /// Allocates one block of length `len` from `rir`'s pool.
    pub fn allocate(&mut self, rir: Rir, len: u8) -> Result<Ipv4Prefix, NetError> {
        assert!((8..=32).contains(&len), "allocation length out of range");
        let pool = self.pools.get_mut(&rir).expect("every RIR has a pool");
        let size = 1u32 << (32 - len);
        // Align the bump pointer to the block size.
        let aligned = pool.next.div_ceil(size) * size;
        if aligned + size > pool.end {
            return Err(NetError::InvalidAddress(format!("{rir} pool exhausted")));
        }
        pool.next = aligned + size;
        Ipv4Prefix::from_bits_truncated(aligned, len)
    }

    /// The RIR whose pool contains `prefix`, if any.
    pub fn region_of(&self, prefix: &Ipv4Prefix) -> Option<Rir> {
        let addr = prefix.range_start();
        self.pools
            .iter()
            .find(|(_, pool)| pool.start <= addr && addr < pool.end)
            .map(|(rir, _)| *rir)
    }

    /// The full pools of a RIR as a prefix set (for trust anchor
    /// resources), both families.
    pub fn pool_prefixes(&self, rir: Rir) -> Vec<Prefix> {
        let pool = &self.pools[&rir];
        let mut out = Vec::new();
        let mut addr = pool.start;
        while addr < pool.end {
            out.push(Prefix::V4(Ipv4Prefix::from_bits_truncated(addr, 8).expect("aligned /8")));
            addr += 1 << 24;
        }
        let pool6 = &self.pools_v6[&rir];
        out.push(Prefix::V6(
            Ipv6Prefix::from_bits_truncated(pool6.start, 16).expect("aligned /16"),
        ));
        out
    }
}

/// The prefix2as mapping: each routed prefix and its origin AS(es).
///
/// A prefix can legitimately appear with several origins (multi-origin
/// announcements, or a hijack); the dataset keeps them all, as CAIDA's
/// does.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Prefix2As {
    entries: Vec<(Prefix, Asn)>,
    by_origin: BTreeMap<Asn, Vec<Prefix>>,
}

impl Prefix2As {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `origin` originates `prefix`.
    pub fn add(&mut self, prefix: Prefix, origin: Asn) {
        self.entries.push((prefix, origin));
        self.by_origin.entry(origin).or_default().push(prefix);
    }

    /// All (prefix, origin) pairs, in insertion order.
    pub fn entries(&self) -> &[(Prefix, Asn)] {
        &self.entries
    }

    /// The prefixes originated by `asn`.
    pub fn prefixes_of(&self, asn: Asn) -> &[Prefix] {
        self.by_origin.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All origin ASNs present.
    pub fn origins(&self) -> impl Iterator<Item = Asn> + '_ {
        self.by_origin.keys().copied()
    }

    /// Number of (prefix, origin) pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Address space routed by `asn`.
    pub fn space_of(&self, asn: Asn) -> AddressSpace {
        AddressSpace::from_prefixes(self.prefixes_of(asn))
    }

    /// Address space routed by any origin in `asns`.
    pub fn space_of_many<'a, I: IntoIterator<Item = &'a Asn>>(&self, asns: I) -> AddressSpace {
        let mut space = AddressSpace::new();
        for asn in asns {
            for p in self.prefixes_of(*asn) {
                space.add(p);
            }
        }
        space
    }

    /// Total routed address space across all origins.
    pub fn total_space(&self) -> AddressSpace {
        let mut space = AddressSpace::new();
        for (p, _) in &self.entries {
            space.add(p);
        }
        space
    }
}

impl FromIterator<(Prefix, Asn)> for Prefix2As {
    fn from_iter<I: IntoIterator<Item = (Prefix, Asn)>>(iter: I) -> Self {
        let mut map = Prefix2As::new();
        for (p, a) in iter {
            map.add(p, a);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint() {
        let mut alloc = PrefixAllocator::new();
        let mut space = AddressSpace::new();
        let mut total = 0u128;
        for len in [16u8, 20, 24, 24, 16, 22] {
            let p = alloc.allocate(Rir::Arin, len).unwrap();
            total += p.address_count();
            space.add(&Prefix::V4(p));
        }
        // No overlap: union size equals the sum of block sizes.
        assert_eq!(space.v4_len(), total);
    }

    #[test]
    fn pools_are_disjoint_across_rirs() {
        let mut alloc = PrefixAllocator::new();
        let a = alloc.allocate(Rir::Arin, 16).unwrap();
        let r = alloc.allocate(Rir::RipeNcc, 16).unwrap();
        assert!(!Prefix::V4(a).overlaps(&Prefix::V4(r)));
        assert_eq!(alloc.region_of(&a), Some(Rir::Arin));
        assert_eq!(alloc.region_of(&r), Some(Rir::RipeNcc));
    }

    #[test]
    fn region_of_unpooled_space() {
        let alloc = PrefixAllocator::new();
        let p: Ipv4Prefix = "203.0.113.0/24".parse().unwrap();
        assert_eq!(alloc.region_of(&p), Some(Rir::Afrinic)); // 196+28 > 203
        let q: Ipv4Prefix = "1.0.0.0/8".parse().unwrap();
        assert_eq!(alloc.region_of(&q), None);
    }

    #[test]
    fn pool_prefixes_cover_allocations() {
        let mut alloc = PrefixAllocator::new();
        let p = alloc.allocate(Rir::Apnic, 20).unwrap();
        let pool = alloc.pool_prefixes(Rir::Apnic);
        assert_eq!(pool.len(), 29); // 28 v4 /8s + one v6 /16
        assert!(pool.iter().any(|pp| pp.contains(&Prefix::V4(p))));
        let p6 = alloc.allocate_v6(Rir::Apnic, 32).unwrap();
        assert!(pool.iter().any(|pp| pp.contains(&Prefix::V6(p6))));
    }

    #[test]
    fn v6_allocations_disjoint_and_regional() {
        let mut alloc = PrefixAllocator::new();
        let a = alloc.allocate_v6(Rir::RipeNcc, 32).unwrap();
        let b = alloc.allocate_v6(Rir::RipeNcc, 40).unwrap();
        let c = alloc.allocate_v6(Rir::Arin, 32).unwrap();
        assert!(!Prefix::V6(a).overlaps(&Prefix::V6(b)));
        assert!(!Prefix::V6(a).overlaps(&Prefix::V6(c)));
        assert_eq!(alloc.region_of_v6(&a), Some(Rir::RipeNcc));
        assert_eq!(alloc.region_of_v6(&c), Some(Rir::Arin));
        // 2001:: space belongs to RIPE in our pools.
        let outside: Ipv6Prefix = "3001::/32".parse().unwrap();
        assert_eq!(alloc.region_of_v6(&outside), None);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut alloc = PrefixAllocator::new();
        // 28 /8s = 28 * 2^24 addresses; /9 blocks are 2^23 → 56 fit.
        for _ in 0..56 {
            alloc.allocate(Rir::Lacnic, 9).unwrap();
        }
        assert!(alloc.allocate(Rir::Lacnic, 9).is_err());
    }

    #[test]
    fn prefix2as_queries() {
        let p1: Prefix = "10.0.0.0/8".parse().unwrap();
        let p2: Prefix = "192.0.2.0/24".parse().unwrap();
        let map: Prefix2As = [(p1, Asn(1)), (p2, Asn(1)), (p2, Asn(2))].into_iter().collect();
        assert_eq!(map.len(), 3);
        assert_eq!(map.prefixes_of(Asn(1)), &[p1, p2]);
        assert_eq!(map.prefixes_of(Asn(2)), &[p2]);
        assert!(map.prefixes_of(Asn(3)).is_empty());
        assert_eq!(map.origins().count(), 2);
        assert_eq!(map.space_of(Asn(2)).v4_len(), 256);
        assert_eq!(map.total_space().v4_len(), (1 << 24) + 256);
        assert_eq!(map.space_of_many([Asn(1), Asn(2)].iter()).v4_len(), (1 << 24) + 256);
    }
}
