//! Compiled, batch-oriented IRR validity classification.
//!
//! The IRR mirror of `manrs_rpki::CompiledVrpIndex`: a frozen
//! [`IrrRegistry`] is compiled into a flattened covering index
//! ([`manrs_net::CoveringShape`]) whose per-path route-object candidates
//! live in one struct-of-arrays arena, so the §6.1 classification runs
//! as batch sweeps over contiguous runs instead of per-query allocating
//! trie walks across every database.
//!
//! The classification itself reuses the shared [`manrs_net::match_run`]
//! kernel: since the paper takes "the prefix length as the max length
//! value" for IRR, a covering route object (whose length is necessarily
//! ≤ the query's) is an exact-prefix match precisely when
//! `query_len <= object_len` — the same predicate RFC 6811 applies to
//! maxLength. The kernel runs with `EXCLUDE_AS0 = false` because the
//! IRR lattice has no AS0 carve-out. The scalar [`crate::validate_irr`]
//! remains the oracle; proptests pin equivalence.

use crate::database::IrrRegistry;
use crate::validation::IrrStatus;
use manrs_net::{match_run, Asn, BatchScratch, CoveringShape, PatchStats, Prefix, PrefixMap};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Fragmentation ratio past which a successful
/// [`CompiledIrrIndex::apply_object_delta`] compacts the arena (see the
/// identically-valued constant in `manrs_rpki::compiled` for the
/// rationale).
const COMPACT_FRAGMENTATION: f64 = 0.5;

/// A frozen [`IrrRegistry`] compiled for batched validity
/// classification across every database.
///
/// Build cost is one merge of all databases plus one deterministic trie
/// traversal; afterwards every query is allocation-free. The index is a
/// snapshot — single-object churn can be mirrored in place with
/// [`CompiledIrrIndex::apply_object_delta`], structural churn calls for
/// a rebuild.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompiledIrrIndex {
    shape: CoveringShape,
    /// Candidate origin ASNs, arena order (parallel to `lens`).
    origins: Vec<u32>,
    /// Candidate registered prefix lengths, arena order — the IRR
    /// stand-in for maxLength.
    lens: Vec<u8>,
}

impl CompiledIrrIndex {
    /// Compiles `registry` into a batch index. Deterministic: two builds
    /// from the same registry produce identical indexes.
    pub fn build(registry: &IrrRegistry) -> Self {
        CompiledIrrIndex::build_where(registry, |_| true)
    }

    /// Compiles only the route objects whose prefix satisfies `keep` —
    /// the shard-aware constructor behind the snapshot query service.
    ///
    /// For a query set routed such that every object able to cover a
    /// query is kept (the [`manrs_net::shard_bucket_span`] contract),
    /// the filtered index classifies those queries bit-for-bit
    /// identically to the full [`CompiledIrrIndex::build`].
    pub fn build_where<F: FnMut(&Prefix) -> bool>(registry: &IrrRegistry, mut keep: F) -> Self {
        // Merge every database into one trie first (the union view the
        // registry validates against), keyed by the only two attributes
        // classification reads.
        let mut merged: PrefixMap<(u32, u8)> = PrefixMap::new();
        for db in registry.databases() {
            for route in db.routes() {
                if keep(&route.prefix) {
                    merged.insert(route.prefix, (route.origin.value(), route.prefix.len()));
                }
            }
        }
        let mut origins = Vec::new();
        let mut lens = Vec::new();
        let shape = merged.flatten_shape(|&(origin, len)| {
            origins.push(origin);
            lens.push(len);
        });
        debug_assert_eq!(origins.len(), shape.arena_len());
        CompiledIrrIndex { shape, origins, lens }
    }

    /// Number of live arena candidates (covering closures expanded;
    /// patch-abandoned slots are not counted).
    pub fn candidate_count(&self) -> usize {
        self.shape.live_len()
    }

    /// Splices one route-object addition (`added = true`) or removal
    /// into the compiled form. The build merges **every** database, with
    /// one candidate per registered copy — so a registry-level removal
    /// that strips `n` databases must be mirrored by `n` calls here.
    /// Classification only reads `(origin, prefix length)`, so those are
    /// the whole delta. Returns `false` when the splice cannot be
    /// applied (overflow, or removing an object the index never held):
    /// the index must then be discarded and rebuilt.
    ///
    /// Patching preserves classification outcomes, not arena layout.
    /// Crossing [`COMPACT_FRAGMENTATION`] triggers an automatic
    /// compaction.
    pub fn apply_object_delta(&mut self, prefix: &Prefix, origin: Asn, added: bool) -> bool {
        self.apply_object_delta_stats(prefix, origin, added).is_some()
    }

    /// [`CompiledIrrIndex::apply_object_delta`] with its work made
    /// visible: on success, returns the splice's [`PatchStats`] and
    /// whether it triggered an automatic compaction — the counters
    /// `BENCH_service.json` and `profile_batch --patch` report.
    pub fn apply_object_delta_stats(
        &mut self,
        prefix: &Prefix,
        origin: Asn,
        added: bool,
    ) -> Option<(PatchStats, bool)> {
        let value = (origin.value(), prefix.len());
        let cols = (&mut self.origins, &mut self.lens);
        let stats = if added {
            self.shape.patch_insert(prefix, value, cols)?
        } else {
            self.shape.patch_remove(prefix, value, cols)?
        };
        let compacted = self.shape.fragmentation() > COMPACT_FRAGMENTATION;
        if compacted {
            self.shape.compact((&mut self.origins, &mut self.lens));
        }
        Some((stats, compacted))
    }

    /// [`CompiledIrrIndex::apply_object_delta_stats`] with the
    /// automatic compaction suppressed: the caller owns the compaction
    /// policy.
    ///
    /// Compaction allocates, so a splice loop that must stay
    /// allocation-free once warm (the adoption-sweep overlay path)
    /// cannot afford it firing mid-run. A caller that periodically
    /// re-anchors the arena with [`CompiledIrrIndex::restore_from`]
    /// never accumulates fragmentation across runs, making the
    /// automatic trigger pure overhead; one that does not should stick
    /// with [`CompiledIrrIndex::apply_object_delta_stats`].
    pub fn apply_object_delta_deferred(
        &mut self,
        prefix: &Prefix,
        origin: Asn,
        added: bool,
    ) -> Option<PatchStats> {
        let value = (origin.value(), prefix.len());
        let cols = (&mut self.origins, &mut self.lens);
        if added {
            self.shape.patch_insert(prefix, value, cols)
        } else {
            self.shape.patch_remove(prefix, value, cols)
        }
    }

    /// Share of the arena abandoned by patches (see
    /// [`CoveringShape::fragmentation`]).
    pub fn fragmentation(&self) -> f64 {
        self.shape.fragmentation()
    }

    /// Pre-reserves arena capacity for `slots` future splice slots so a
    /// bounded run of [`CompiledIrrIndex::apply_object_delta`] calls
    /// performs no allocation.
    pub fn reserve_headroom(&mut self, slots: usize) {
        self.origins.reserve(slots);
        self.lens.reserve(slots);
    }

    /// Overwrites this index with `base`'s exact state in place,
    /// reusing existing capacity (see
    /// [`CoveringShape::restore_from`]). Sweep workspaces call this
    /// after un-splicing a trial's deltas: the removals already
    /// restored classification outcomes, and the re-anchor resets the
    /// arena *layout* so patch-abandoned slots never accumulate across
    /// trials. Allocation-free for an index cloned from `base`.
    pub fn restore_from(&mut self, base: &Self) {
        self.shape.restore_from(&base.shape);
        self.origins.clone_from(&base.origins);
        self.lens.clone_from(&base.lens);
    }

    /// `true` if at least one route object covers `prefix`.
    pub fn is_covered(&self, prefix: &Prefix) -> bool {
        self.shape.covers(prefix)
    }

    #[inline]
    fn status_for(&self, run: Range<usize>, origin: Asn, query_len: u8) -> IrrStatus {
        if run.is_empty() {
            return IrrStatus::NotFound;
        }
        let out = match_run::<false>(
            &self.origins[run.clone()],
            &self.lens[run],
            origin,
            query_len,
        );
        if out.any_valid {
            IrrStatus::Valid
        } else if out.any_origin_match {
            IrrStatus::InvalidLength
        } else {
            IrrStatus::InvalidAsn
        }
    }

    /// Classifies one route; equivalent to [`crate::validate_irr`] on
    /// the source registry, without allocating.
    #[inline]
    pub fn validate(&self, prefix: &Prefix, origin: Asn) -> IrrStatus {
        self.status_for(self.shape.covering_run(prefix), origin, prefix.len())
    }

    /// Classifies a batch of routes; `statuses[i]` corresponds to
    /// `queries[i]`. Convenience wrapper over
    /// [`CompiledIrrIndex::validate_batch_into`] with fresh scratch.
    pub fn validate_batch(&self, queries: &[(Prefix, Asn)]) -> Vec<IrrStatus> {
        let mut out = Vec::new();
        self.validate_batch_into(queries, &mut BatchScratch::new(), &mut out);
        out
    }

    /// Classifies a batch of routes into a reused output buffer;
    /// prefix-sorted processing, input-order results, allocation-free
    /// with warm buffers.
    pub fn validate_batch_into(
        &self,
        queries: &[(Prefix, Asn)],
        scratch: &mut BatchScratch,
        out: &mut Vec<IrrStatus>,
    ) {
        out.clear();
        out.resize(queries.len(), IrrStatus::NotFound);
        scratch.covering_runs(&self.shape, queries, |i, run| {
            let (prefix, origin) = queries[i];
            out[i] = self.status_for(run, origin, prefix.len());
        });
    }
}

impl From<&IrrRegistry> for CompiledIrrIndex {
    fn from(registry: &IrrRegistry) -> Self {
        CompiledIrrIndex::build(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::IrrDatabase;
    use crate::object::RouteObject;
    use crate::validation::validate_irr;
    use manrs_net::Date;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn route(prefix: &str, origin: u32, source: &str) -> RouteObject {
        RouteObject {
            prefix: prefix.parse().unwrap(),
            origin: Asn(origin),
            descr: String::new(),
            mnt_by: "M".into(),
            source: source.into(),
            last_modified: Date::ymd(2022, 1, 1),
        }
    }

    fn sample_registry() -> IrrRegistry {
        let mut ripe = IrrDatabase::new("RIPE", Some(manrs_net::Rir::RipeNcc));
        ripe.add_route(route("10.0.0.0/8", 1, "RIPE"));
        ripe.add_route(route("10.0.0.0/16", 2, "RIPE"));
        let mut radb = IrrDatabase::new("RADB", None);
        radb.add_route(route("10.0.0.0/16", 3, "RADB"));
        radb.add_route(route("2001:db8::/32", 1, "RADB"));
        let mut reg = IrrRegistry::new();
        reg.add_database(ripe);
        reg.add_database(radb);
        reg
    }

    #[test]
    fn single_queries_match_scalar_oracle() {
        let reg = sample_registry();
        let index = CompiledIrrIndex::build(&reg);
        for q in [
            "10.0.0.0/8",
            "10.0.0.0/16",
            "10.0.0.0/24",
            "10.5.0.0/16",
            "10.0.0.0/7",
            "192.0.2.0/24",
            "2001:db8::/32",
            "2001:db8::/48",
            "2001:db9::/32",
        ] {
            for origin in [0u32, 1, 2, 3, 77] {
                let q = p(q);
                assert_eq!(
                    index.validate(&q, Asn(origin)),
                    validate_irr(&reg, &q, Asn(origin)),
                    "query {q} origin {origin}"
                );
            }
        }
    }

    #[test]
    fn batch_preserves_input_order() {
        let reg = sample_registry();
        let index = CompiledIrrIndex::build(&reg);
        let queries = vec![
            (p("10.0.0.0/24"), Asn(2)),
            (p("10.0.0.0/16"), Asn(3)),
            (p("192.0.2.0/24"), Asn(1)),
            (p("10.0.0.0/16"), Asn(7)),
        ];
        let statuses = index.validate_batch(&queries);
        let expected: Vec<IrrStatus> =
            queries.iter().map(|(q, o)| validate_irr(&reg, q, *o)).collect();
        assert_eq!(statuses, expected);
        assert_eq!(
            statuses,
            vec![
                IrrStatus::InvalidLength,
                IrrStatus::Valid,
                IrrStatus::NotFound,
                IrrStatus::InvalidAsn,
            ]
        );
    }

    #[test]
    fn empty_registry() {
        let index = CompiledIrrIndex::build(&IrrRegistry::new());
        assert_eq!(index.candidate_count(), 0);
        assert_eq!(index.validate(&p("10.0.0.0/8"), Asn(1)), IrrStatus::NotFound);
        assert!(index.validate_batch(&[]).is_empty());
    }

    #[test]
    fn build_is_deterministic() {
        let reg = sample_registry();
        assert_eq!(CompiledIrrIndex::build(&reg), CompiledIrrIndex::build(&reg));
    }

    #[test]
    fn object_deltas_match_rebuild() {
        let mut reg = sample_registry();
        let mut index = CompiledIrrIndex::build(&reg);
        // Mirror registry mutations delta-by-delta: additions go to one
        // database, removals strip every database (one splice per
        // stripped copy).
        let script: [(&str, u32, bool); 4] = [
            ("10.0.0.0/24", 2, true),
            ("10.0.0.0/16", 2, false),
            ("192.0.2.0/24", 9, true),
            ("2001:db8::/32", 1, false),
        ];
        for (s, origin, added) in script {
            let prefix = p(s);
            if added {
                assert!(reg.add_route(route(s, origin, "RADB")));
                assert!(index.apply_object_delta(&prefix, Asn(origin), true));
            } else {
                let stripped = reg.remove_route(&prefix, Asn(origin));
                assert!(stripped > 0);
                for _ in 0..stripped {
                    assert!(index.apply_object_delta(&prefix, Asn(origin), false));
                }
            }
            let rebuilt = CompiledIrrIndex::build(&reg);
            assert_eq!(index.candidate_count(), rebuilt.candidate_count());
            for q in ["10.0.0.0/16", "10.0.0.0/24", "192.0.2.0/28", "2001:db8::/48"] {
                for o in [0u32, 1, 2, 3, 9] {
                    let q = p(q);
                    assert_eq!(
                        index.validate(&q, Asn(o)),
                        rebuilt.validate(&q, Asn(o)),
                        "query {q} origin {o} after ({s}, {origin}, {added})"
                    );
                }
            }
        }
        assert!(!index.apply_object_delta(&p("198.51.100.0/24"), Asn(1), false));
    }
}
