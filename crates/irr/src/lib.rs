//! Internet Routing Registry model.
//!
//! The IRR (§2.2 of the paper) is a collection of RPSL databases in which
//! networks register the routes they intend to originate. This crate
//! provides:
//!
//! * [`object`] — the RPSL objects the analysis touches: `route`/`route6`
//!   objects (prefix → origin AS), `aut-num`, `as-set`, and `mntner`.
//! * [`rpsl`] — a line-oriented RPSL text parser and serializer
//!   (attribute/value pairs, continuation lines, `#` comments, objects
//!   separated by blank lines), with round-trip guarantees.
//! * [`database`] — a single IRR database (authoritative to one RIR, or a
//!   third-party registry), plus [`database::IrrRegistry`]: the world view
//!   assembled from many databases the way RADb mirrors aggregate them.
//! * [`asset`] — `as-set` expansion with cycle tolerance, as used by IXPs
//!   and cloud providers to build filter lists.
//! * [`validation`] — IRR validity of a (prefix, origin) pair using the
//!   paper's §6.1 rule: the RPKI algorithm with each route object's own
//!   prefix length standing in for the missing maxLength attribute.
//! * [`compiled`] — the batch engine: [`CompiledIrrIndex`] freezes the
//!   merged registry into a struct-of-arrays covering index for
//!   allocation-free, batched classification.

pub mod asset;
pub mod compiled;
pub mod database;
pub mod object;
pub mod rpsl;
pub mod validation;

pub use asset::expand_as_set;
pub use compiled::CompiledIrrIndex;
pub use database::{IrrDatabase, IrrRegistry};
pub use object::{AsSet, AsSetMember, AutNum, Mntner, RouteObject, RpslObject};
pub use validation::{validate_irr, IrrStatus};
