//! `as-set` expansion.
//!
//! IXPs and cloud providers expand a peer's `as-set` into the concrete
//! list of ASNs they will accept announcements from (§2.2). Sets nest and
//! — in the wild — contain cycles and dangling references; expansion must
//! tolerate both.

use crate::database::IrrRegistry;
use crate::object::AsSetMember;
use manrs_net::Asn;
use std::collections::BTreeSet;

/// The result of expanding an as-set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Expansion {
    /// All concrete ASNs reachable from the root set.
    pub asns: BTreeSet<Asn>,
    /// Names of referenced sets that no database defines.
    pub missing: BTreeSet<String>,
    /// Number of distinct sets visited (including the root, if defined).
    pub sets_visited: usize,
}

/// Expands `name` against the registry, following nested sets
/// breadth-first. Cycles are harmless (each set is visited once);
/// undefined references are reported in [`Expansion::missing`].
pub fn expand_as_set(registry: &IrrRegistry, name: &str) -> Expansion {
    let mut expansion = Expansion::default();
    let mut visited: BTreeSet<String> = BTreeSet::new();
    let mut queue: Vec<String> = vec![name.to_owned()];
    while let Some(current) = queue.pop() {
        if !visited.insert(current.clone()) {
            continue;
        }
        let Some(set) = registry.as_set(&current) else {
            expansion.missing.insert(current);
            continue;
        };
        expansion.sets_visited += 1;
        for member in &set.members {
            match member {
                AsSetMember::Asn(asn) => {
                    expansion.asns.insert(*asn);
                }
                AsSetMember::Set(nested) => queue.push(nested.clone()),
            }
        }
    }
    expansion
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::IrrDatabase;
    use crate::object::AsSet;

    fn set(name: &str, members: Vec<AsSetMember>) -> AsSet {
        AsSet { name: name.into(), members, mnt_by: "M".into(), source: "RADB".into() }
    }

    fn registry(sets: Vec<AsSet>) -> IrrRegistry {
        let mut db = IrrDatabase::new("RADB", None);
        for s in sets {
            db.add_as_set(s);
        }
        let mut reg = IrrRegistry::new();
        reg.add_database(db);
        reg
    }

    #[test]
    fn flat_set() {
        let reg = registry(vec![set(
            "AS-FLAT",
            vec![AsSetMember::Asn(Asn(1)), AsSetMember::Asn(Asn(2))],
        )]);
        let e = expand_as_set(&reg, "AS-FLAT");
        assert_eq!(e.asns, [Asn(1), Asn(2)].into_iter().collect());
        assert!(e.missing.is_empty());
        assert_eq!(e.sets_visited, 1);
    }

    #[test]
    fn nested_sets() {
        let reg = registry(vec![
            set("AS-TOP", vec![AsSetMember::Asn(Asn(1)), AsSetMember::Set("AS-MID".into())]),
            set("AS-MID", vec![AsSetMember::Asn(Asn(2)), AsSetMember::Set("AS-LEAF".into())]),
            set("AS-LEAF", vec![AsSetMember::Asn(Asn(3))]),
        ]);
        let e = expand_as_set(&reg, "AS-TOP");
        assert_eq!(e.asns, [Asn(1), Asn(2), Asn(3)].into_iter().collect());
        assert_eq!(e.sets_visited, 3);
    }

    #[test]
    fn cycles_terminate() {
        let reg = registry(vec![
            set("AS-A", vec![AsSetMember::Asn(Asn(1)), AsSetMember::Set("AS-B".into())]),
            set("AS-B", vec![AsSetMember::Asn(Asn(2)), AsSetMember::Set("AS-A".into())]),
        ]);
        let e = expand_as_set(&reg, "AS-A");
        assert_eq!(e.asns, [Asn(1), Asn(2)].into_iter().collect());
        assert_eq!(e.sets_visited, 2);
        assert!(e.missing.is_empty());
    }

    #[test]
    fn self_referencing_set() {
        let reg = registry(vec![set(
            "AS-SELF",
            vec![AsSetMember::Asn(Asn(9)), AsSetMember::Set("AS-SELF".into())],
        )]);
        let e = expand_as_set(&reg, "AS-SELF");
        assert_eq!(e.asns, [Asn(9)].into_iter().collect());
    }

    #[test]
    fn missing_references_reported() {
        let reg = registry(vec![set("AS-HAS-GAP", vec![AsSetMember::Set("AS-GONE".into())])]);
        let e = expand_as_set(&reg, "AS-HAS-GAP");
        assert!(e.asns.is_empty());
        assert_eq!(e.missing, ["AS-GONE".to_owned()].into_iter().collect());
    }

    #[test]
    fn missing_root() {
        let reg = registry(vec![]);
        let e = expand_as_set(&reg, "AS-NOWHERE");
        assert_eq!(e.sets_visited, 0);
        assert_eq!(e.missing.len(), 1);
    }
}
