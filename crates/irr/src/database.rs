//! IRR databases and the assembled registry view.
//!
//! Authoritative IRR databases are run by the five RIRs and contain only
//! the address space that RIR manages; other organizations run
//! non-authoritative registries (RADb being the big one), and RADb-style
//! mirroring folds many databases into one collection (§2.2).
//! [`IrrRegistry`] models the union view the paper's pipeline validates
//! against.

use crate::object::{AsSet, AutNum, RouteObject, RpslObject};
use manrs_net::{AddressSpace, Asn, Prefix, PrefixMap, Rir};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One IRR database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IrrDatabase {
    /// Database tag, e.g. `"RIPE"` or `"RADB"`.
    pub source: String,
    /// `Some(rir)` if the database is authoritative for that RIR's space.
    pub authoritative: Option<Rir>,
    routes: PrefixMap<RouteObject>,
    as_sets: BTreeMap<String, AsSet>,
    aut_nums: BTreeMap<Asn, AutNum>,
    route_count: usize,
}

impl IrrDatabase {
    /// Creates an empty database.
    pub fn new(source: impl Into<String>, authoritative: Option<Rir>) -> Self {
        IrrDatabase {
            source: source.into(),
            authoritative,
            routes: PrefixMap::new(),
            as_sets: BTreeMap::new(),
            aut_nums: BTreeMap::new(),
            route_count: 0,
        }
    }

    /// Adds any RPSL object. `mntner` objects are accepted and ignored
    /// (the pipeline does not index them).
    pub fn add(&mut self, object: RpslObject) {
        match object {
            RpslObject::Route(r) => self.add_route(r),
            RpslObject::AsSet(s) => self.add_as_set(s),
            RpslObject::AutNum(a) => self.add_aut_num(a),
            RpslObject::Mntner(_) => {}
        }
    }

    /// Registers an aut-num object (replacing a previous one for the
    /// same ASN). Contact attributes on aut-nums are what MANRS
    /// Action 3 is about.
    pub fn add_aut_num(&mut self, aut_num: AutNum) {
        self.aut_nums.insert(aut_num.asn, aut_num);
    }

    /// The aut-num object for `asn`, if registered here.
    pub fn aut_num(&self, asn: Asn) -> Option<&AutNum> {
        self.aut_nums.get(&asn)
    }

    /// Registers a route object.
    pub fn add_route(&mut self, route: RouteObject) {
        self.routes.insert(route.prefix, route);
        self.route_count += 1;
    }

    /// Removes route objects for `prefix` originated by `origin`;
    /// returns how many were deleted.
    pub fn remove_route(&mut self, prefix: &Prefix, origin: Asn) -> usize {
        let removed = self.routes.remove_where(prefix, |r| r.origin == origin);
        self.route_count -= removed;
        removed
    }

    /// Registers an as-set (replacing a previous one of the same name).
    pub fn add_as_set(&mut self, set: AsSet) {
        self.as_sets.insert(set.name.clone(), set);
    }

    /// Number of route objects.
    pub fn route_count(&self) -> usize {
        self.route_count
    }

    /// Route objects whose prefix covers `prefix`.
    pub fn covering_routes(&self, prefix: &Prefix) -> Vec<&RouteObject> {
        self.routes.covering(prefix)
    }

    /// Route objects registered at exactly `prefix`.
    pub fn exact_routes(&self, prefix: &Prefix) -> &[RouteObject] {
        self.routes.exact(prefix)
    }

    /// The as-set with the given name.
    pub fn as_set(&self, name: &str) -> Option<&AsSet> {
        self.as_sets.get(name)
    }

    /// Every route object.
    pub fn routes(&self) -> Vec<&RouteObject> {
        self.routes.values()
    }

    /// Address space covered by registered route objects.
    pub fn covered_space(&self) -> AddressSpace {
        let mut space = AddressSpace::new();
        self.routes.for_each(|r| space.add(&r.prefix));
        space
    }
}

/// The union view over a set of IRR databases, in a fixed resolution
/// order. Queries are answered across *all* databases — the IHR's IRR
/// status (§5.3) likewise validates against the merged collection.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IrrRegistry {
    databases: Vec<IrrDatabase>,
}

impl IrrRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a database. Order matters only for as-set name shadowing
    /// (earlier databases win), mirroring RADb resolution.
    pub fn add_database(&mut self, db: IrrDatabase) {
        self.databases.push(db);
    }

    /// The databases, in resolution order.
    pub fn databases(&self) -> &[IrrDatabase] {
        &self.databases
    }

    /// Mutable access by source tag.
    pub fn database_mut(&mut self, source: &str) -> Option<&mut IrrDatabase> {
        self.databases.iter_mut().find(|d| d.source == source)
    }

    /// Registers a route object in the database whose source tag matches
    /// the object's `source`; returns `false` (dropping the object) when
    /// no such database exists. The typed-delta path of the timeline
    /// engine routes additions through here.
    pub fn add_route(&mut self, route: RouteObject) -> bool {
        match self.databases.iter_mut().find(|d| d.source == route.source) {
            Some(db) => {
                db.add_route(route);
                true
            }
            None => false,
        }
    }

    /// Removes route objects for `prefix` originated by `origin` from
    /// *every* database (mirrors can hold duplicates); returns how many
    /// were deleted across the collection.
    pub fn remove_route(&mut self, prefix: &Prefix, origin: Asn) -> usize {
        self.databases.iter_mut().map(|db| db.remove_route(prefix, origin)).sum()
    }

    /// Route objects covering `prefix`, across every database.
    pub fn covering_routes(&self, prefix: &Prefix) -> Vec<&RouteObject> {
        let mut out = Vec::new();
        for db in &self.databases {
            out.extend(db.covering_routes(prefix));
        }
        out
    }

    /// Resolves an as-set name: the first database that defines it wins.
    pub fn as_set(&self, name: &str) -> Option<&AsSet> {
        self.databases.iter().find_map(|db| db.as_set(name))
    }

    /// Resolves an aut-num: the first database that registers it wins.
    pub fn aut_num(&self, asn: Asn) -> Option<&AutNum> {
        self.databases.iter().find_map(|db| db.aut_num(asn))
    }

    /// Total route objects across databases (duplicates across mirrors
    /// count separately, as they do in the real collection).
    pub fn route_count(&self) -> usize {
        self.databases.iter().map(|d| d.route_count()).sum()
    }

    /// Address space covered by route objects in any database — the
    /// "IRR covered" side of the paper's §8.6 comparison.
    pub fn covered_space(&self) -> AddressSpace {
        let mut space = AddressSpace::new();
        for db in &self.databases {
            space.union_with(&db.covered_space());
        }
        space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_net::Date;

    fn route(prefix: &str, origin: u32, source: &str) -> RouteObject {
        RouteObject {
            prefix: prefix.parse().unwrap(),
            origin: Asn(origin),
            descr: String::new(),
            mnt_by: "M".into(),
            source: source.into(),
            last_modified: Date::ymd(2022, 1, 1),
        }
    }

    #[test]
    fn add_and_query_routes() {
        let mut db = IrrDatabase::new("RIPE", Some(Rir::RipeNcc));
        db.add_route(route("10.0.0.0/8", 1, "RIPE"));
        db.add_route(route("10.1.0.0/16", 2, "RIPE"));
        assert_eq!(db.route_count(), 2);
        let covering = db.covering_routes(&"10.1.0.0/16".parse().unwrap());
        assert_eq!(covering.len(), 2);
        assert_eq!(db.exact_routes(&"10.0.0.0/8".parse().unwrap()).len(), 1);
    }

    #[test]
    fn remove_route() {
        let mut db = IrrDatabase::new("RADB", None);
        db.add_route(route("10.0.0.0/8", 1, "RADB"));
        db.add_route(route("10.0.0.0/8", 2, "RADB"));
        assert_eq!(db.remove_route(&"10.0.0.0/8".parse().unwrap(), Asn(1)), 1);
        assert_eq!(db.route_count(), 1);
        assert_eq!(db.exact_routes(&"10.0.0.0/8".parse().unwrap())[0].origin, Asn(2));
    }

    #[test]
    fn registry_merges_databases() {
        let mut ripe = IrrDatabase::new("RIPE", Some(Rir::RipeNcc));
        ripe.add_route(route("10.0.0.0/8", 1, "RIPE"));
        let mut radb = IrrDatabase::new("RADB", None);
        radb.add_route(route("10.0.0.0/16", 2, "RADB"));
        let mut reg = IrrRegistry::new();
        reg.add_database(ripe);
        reg.add_database(radb);
        assert_eq!(reg.route_count(), 2);
        let covering = reg.covering_routes(&"10.0.0.0/16".parse().unwrap());
        assert_eq!(covering.len(), 2);
    }

    #[test]
    fn registry_level_route_churn() {
        let mut ripe = IrrDatabase::new("RIPE", Some(Rir::RipeNcc));
        ripe.add_route(route("10.0.0.0/8", 1, "RIPE"));
        let mut radb = IrrDatabase::new("RADB", None);
        radb.add_route(route("10.0.0.0/8", 1, "RADB")); // mirror duplicate
        let mut reg = IrrRegistry::new();
        reg.add_database(ripe);
        reg.add_database(radb);

        assert!(reg.add_route(route("10.1.0.0/16", 2, "RADB")));
        assert!(!reg.add_route(route("10.1.0.0/16", 2, "ALTDB")), "unknown source dropped");
        assert_eq!(reg.route_count(), 3);

        // Removal sweeps every database.
        assert_eq!(reg.remove_route(&"10.0.0.0/8".parse().unwrap(), Asn(1)), 2);
        assert_eq!(reg.remove_route(&"10.0.0.0/8".parse().unwrap(), Asn(1)), 0);
        assert_eq!(reg.route_count(), 1);
    }

    #[test]
    fn as_set_resolution_order() {
        let mut first = IrrDatabase::new("RIPE", Some(Rir::RipeNcc));
        first.add_as_set(AsSet {
            name: "AS-X".into(),
            members: vec![],
            mnt_by: "A".into(),
            source: "RIPE".into(),
        });
        let mut second = IrrDatabase::new("RADB", None);
        second.add_as_set(AsSet {
            name: "AS-X".into(),
            members: vec![],
            mnt_by: "B".into(),
            source: "RADB".into(),
        });
        let mut reg = IrrRegistry::new();
        reg.add_database(first);
        reg.add_database(second);
        assert_eq!(reg.as_set("AS-X").unwrap().mnt_by, "A");
        assert!(reg.as_set("AS-MISSING").is_none());
    }

    #[test]
    fn covered_space_union() {
        let mut a = IrrDatabase::new("A", None);
        a.add_route(route("10.0.0.0/9", 1, "A"));
        let mut b = IrrDatabase::new("B", None);
        b.add_route(route("10.0.0.0/8", 1, "B")); // superset
        let mut reg = IrrRegistry::new();
        reg.add_database(a);
        reg.add_database(b);
        assert_eq!(reg.covered_space().v4_len(), 1 << 24);
    }

    #[test]
    fn aut_num_registration_and_resolution() {
        use crate::object::AutNum;
        let mk = |asn: u32, source: &str, contact: &str| AutNum {
            asn: Asn(asn),
            as_name: format!("AS{asn}-NAME"),
            mnt_by: "M".into(),
            source: source.into(),
            admin_c: contact.into(),
        };
        let mut ripe = IrrDatabase::new("RIPE", Some(Rir::RipeNcc));
        ripe.add_aut_num(mk(1, "RIPE", "noc@one.example"));
        let mut radb = IrrDatabase::new("RADB", None);
        radb.add_aut_num(mk(1, "RADB", "stale@old.example"));
        radb.add_aut_num(mk(2, "RADB", ""));
        let mut reg = IrrRegistry::new();
        reg.add_database(ripe);
        reg.add_database(radb);
        // Resolution order: RIPE's record wins for AS1.
        assert_eq!(reg.aut_num(Asn(1)).unwrap().admin_c, "noc@one.example");
        assert_eq!(reg.aut_num(Asn(2)).unwrap().admin_c, "");
        assert!(reg.aut_num(Asn(3)).is_none());
        // Replacement within one database.
        let db = reg.database_mut("RADB").unwrap();
        db.add_aut_num(mk(2, "RADB", "fresh@two.example"));
        assert_eq!(reg.aut_num(Asn(2)).unwrap().admin_c, "fresh@two.example");
    }

    #[test]
    fn add_dispatches_by_class() {
        let mut db = IrrDatabase::new("RADB", None);
        db.add(RpslObject::Route(route("10.0.0.0/8", 1, "RADB")));
        db.add(RpslObject::AsSet(AsSet {
            name: "AS-Y".into(),
            members: vec![],
            mnt_by: String::new(),
            source: "RADB".into(),
        }));
        db.add(RpslObject::AutNum(crate::object::AutNum {
            asn: Asn(7),
            as_name: "SEVEN".into(),
            mnt_by: String::new(),
            source: "RADB".into(),
            admin_c: "ops@seven.example".into(),
        }));
        assert_eq!(db.route_count(), 1);
        assert!(db.as_set("AS-Y").is_some());
        assert!(db.aut_num(Asn(7)).is_some());
    }
}
