//! IRR validity classification.
//!
//! The paper (§6.1) classifies a (prefix, origin) pair against the IRR
//! with "the same classification method as RPKI, but since there is no
//! standardized max length attribute in IRR, we consider the prefix
//! length as the max length value". Concretely, with the covering route
//! objects of the announced prefix:
//!
//! * `Valid` — a covering route object has the same origin **and** the
//!   same prefix (exact match).
//! * `InvalidLength` — a covering route object has the same origin but
//!   the announcement is more specific (the de-aggregation case that §3
//!   treats as MANRS-conformant).
//! * `InvalidAsn` — covering route objects exist, none with this origin.
//! * `NotFound` — nothing covers the prefix.

use crate::database::IrrRegistry;
use manrs_net::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// IRR validity of a (prefix, origin) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IrrStatus {
    /// Exact route object match (prefix and origin).
    Valid,
    /// Matching origin, but the announcement is more specific than the
    /// registered route — treated as conformant by MANRS (§3).
    InvalidLength,
    /// Covering route objects exist, none authorizing this origin.
    InvalidAsn,
    /// No covering route object.
    NotFound,
}

impl IrrStatus {
    /// `true` for the hard-invalid state (wrong origin). `InvalidLength`
    /// is *not* included: the paper treats it as conformant.
    pub const fn is_invalid(self) -> bool {
        matches!(self, IrrStatus::InvalidAsn)
    }
}

impl std::str::FromStr for IrrStatus {
    type Err = manrs_net::NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace(' ', "-").as_str() {
            "valid" => Ok(IrrStatus::Valid),
            "invalid-length" | "invalid-prefix-length" => Ok(IrrStatus::InvalidLength),
            "invalid-asn" | "invalid" => Ok(IrrStatus::InvalidAsn),
            "notfound" | "not-found" => Ok(IrrStatus::NotFound),
            _ => Err(manrs_net::NetError::InvalidAddress(s.to_owned())),
        }
    }
}

impl fmt::Display for IrrStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IrrStatus::Valid => "Valid",
            IrrStatus::InvalidLength => "Invalid Length",
            IrrStatus::InvalidAsn => "Invalid ASN",
            IrrStatus::NotFound => "NotFound",
        })
    }
}

/// Classifies `(prefix, origin)` against every database in the registry.
///
/// ```
/// use manrs_irr::{validate_irr, IrrRegistry, IrrDatabase, IrrStatus, RouteObject};
/// use manrs_net::{Asn, Date};
///
/// let mut db = IrrDatabase::new("RADB", None);
/// db.add_route(RouteObject {
///     prefix: "203.0.113.0/24".parse().unwrap(),
///     origin: Asn(64500),
///     descr: String::new(),
///     mnt_by: "M".into(),
///     source: "RADB".into(),
///     last_modified: Date::ymd(2022, 1, 1),
/// });
/// let mut reg = IrrRegistry::new();
/// reg.add_database(db);
///
/// let p = "203.0.113.0/24".parse().unwrap();
/// assert_eq!(validate_irr(&reg, &p, Asn(64500)), IrrStatus::Valid);
/// assert_eq!(validate_irr(&reg, &p, Asn(64501)), IrrStatus::InvalidAsn);
/// ```
pub fn validate_irr(registry: &IrrRegistry, prefix: &Prefix, origin: Asn) -> IrrStatus {
    let covering = registry.covering_routes(prefix);
    if covering.is_empty() {
        return IrrStatus::NotFound;
    }
    let mut saw_matching_origin = false;
    for route in covering {
        if route.origin == origin {
            if route.prefix.len() == prefix.len() {
                return IrrStatus::Valid;
            }
            saw_matching_origin = true;
        }
    }
    if saw_matching_origin {
        IrrStatus::InvalidLength
    } else {
        IrrStatus::InvalidAsn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::IrrDatabase;
    use crate::object::RouteObject;
    use manrs_net::Date;

    fn registry(entries: &[(&str, u32)]) -> IrrRegistry {
        let mut db = IrrDatabase::new("RADB", None);
        for (prefix, origin) in entries {
            db.add_route(RouteObject {
                prefix: prefix.parse().unwrap(),
                origin: Asn(*origin),
                descr: String::new(),
                mnt_by: "M".into(),
                source: "RADB".into(),
                last_modified: Date::ymd(2022, 1, 1),
            });
        }
        let mut reg = IrrRegistry::new();
        reg.add_database(db);
        reg
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn status_display_parse_round_trip() {
        for status in [
            IrrStatus::Valid,
            IrrStatus::InvalidLength,
            IrrStatus::InvalidAsn,
            IrrStatus::NotFound,
        ] {
            let parsed: IrrStatus = status.to_string().parse().unwrap();
            assert_eq!(parsed, status);
        }
        assert!("martian".parse::<IrrStatus>().is_err());
    }

    #[test]
    fn not_found() {
        let reg = registry(&[("10.0.0.0/16", 1)]);
        assert_eq!(validate_irr(&reg, &p("11.0.0.0/16"), Asn(1)), IrrStatus::NotFound);
        // Less specific than the registration: not covered.
        assert_eq!(validate_irr(&reg, &p("10.0.0.0/8"), Asn(1)), IrrStatus::NotFound);
    }

    #[test]
    fn exact_match_is_valid() {
        let reg = registry(&[("10.0.0.0/16", 1)]);
        assert_eq!(validate_irr(&reg, &p("10.0.0.0/16"), Asn(1)), IrrStatus::Valid);
    }

    #[test]
    fn more_specific_is_invalid_length() {
        let reg = registry(&[("10.0.0.0/16", 1)]);
        assert_eq!(validate_irr(&reg, &p("10.0.128.0/20"), Asn(1)), IrrStatus::InvalidLength);
        assert!(!IrrStatus::InvalidLength.is_invalid());
    }

    #[test]
    fn wrong_origin_is_invalid_asn() {
        let reg = registry(&[("10.0.0.0/16", 1)]);
        assert_eq!(validate_irr(&reg, &p("10.0.0.0/16"), Asn(2)), IrrStatus::InvalidAsn);
        assert!(IrrStatus::InvalidAsn.is_invalid());
    }

    #[test]
    fn invalid_length_beats_invalid_asn() {
        // One covering object with the right origin (but shorter), one
        // exact object with the wrong origin.
        let reg = registry(&[("10.0.0.0/8", 1), ("10.0.0.0/16", 2)]);
        assert_eq!(validate_irr(&reg, &p("10.0.0.0/16"), Asn(1)), IrrStatus::InvalidLength);
    }

    #[test]
    fn any_exact_match_wins() {
        // Two objects at the same prefix with different origins:
        // both origins validate (multi-homing / multiple registrations).
        let reg = registry(&[("10.0.0.0/16", 1), ("10.0.0.0/16", 2)]);
        assert_eq!(validate_irr(&reg, &p("10.0.0.0/16"), Asn(1)), IrrStatus::Valid);
        assert_eq!(validate_irr(&reg, &p("10.0.0.0/16"), Asn(2)), IrrStatus::Valid);
        assert_eq!(validate_irr(&reg, &p("10.0.0.0/16"), Asn(3)), IrrStatus::InvalidAsn);
    }

    #[test]
    fn cross_database_objects_combine() {
        let mut ripe = IrrDatabase::new("RIPE", Some(manrs_net::Rir::RipeNcc));
        ripe.add_route(RouteObject {
            prefix: p("10.0.0.0/16"),
            origin: Asn(1),
            descr: String::new(),
            mnt_by: "M".into(),
            source: "RIPE".into(),
            last_modified: Date::ymd(2022, 1, 1),
        });
        let mut radb = IrrDatabase::new("RADB", None);
        radb.add_route(RouteObject {
            prefix: p("10.0.0.0/16"),
            origin: Asn(2),
            descr: String::new(),
            mnt_by: "M".into(),
            source: "RADB".into(),
            last_modified: Date::ymd(2022, 1, 1),
        });
        let mut reg = IrrRegistry::new();
        reg.add_database(ripe);
        reg.add_database(radb);
        assert_eq!(validate_irr(&reg, &p("10.0.0.0/16"), Asn(2)), IrrStatus::Valid);
    }

    #[test]
    fn v6_validation() {
        let reg = registry(&[("2001:db8::/32", 1)]);
        assert_eq!(validate_irr(&reg, &p("2001:db8::/32"), Asn(1)), IrrStatus::Valid);
        assert_eq!(validate_irr(&reg, &p("2001:db8::/48"), Asn(1)), IrrStatus::InvalidLength);
        assert_eq!(validate_irr(&reg, &p("2001:db8::/48"), Asn(2)), IrrStatus::InvalidAsn);
    }
}
