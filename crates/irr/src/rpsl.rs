//! RPSL text parsing and serialization.
//!
//! The IRR snapshots the paper consumes (§5.4) are flat RPSL text files:
//! objects are blocks of `attribute: value` lines separated by blank
//! lines; a line starting with whitespace or `+` continues the previous
//! value; `#` starts a comment. This module parses that format into
//! [`RpslObject`]s and serializes them back, with a lossless round trip
//! for the attributes the pipeline models.

use crate::object::{AsSet, AsSetMember, AutNum, Mntner, RouteObject, RpslObject};
use manrs_net::{Asn, Date, Prefix};
use std::fmt::Write as _;

/// A parse failure, with the (1-based) line where the offending object
/// starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpslError {
    /// Line number of the object's first line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for RpslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RPSL parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RpslError {}

/// One raw attribute block: ordered (key, value) pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawObject {
    /// Line number of the first attribute.
    pub line: usize,
    /// Attributes in file order; keys are lowercased.
    pub attributes: Vec<(String, String)>,
}

impl RawObject {
    /// First value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, RpslError> {
        self.get(key).ok_or_else(|| RpslError {
            line: self.line,
            message: format!("missing required attribute {key:?}"),
        })
    }
}

/// Splits RPSL text into raw attribute blocks.
pub fn split_objects(text: &str) -> Result<Vec<RawObject>, RpslError> {
    let mut objects = Vec::new();
    let mut current: Option<RawObject> = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        // Strip comments; a '#' inside a value starts a comment in RPSL.
        let line = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        if line.trim().is_empty() {
            if let Some(obj) = current.take() {
                objects.push(obj);
            }
            continue;
        }
        let continuation = line.starts_with(' ') || line.starts_with('\t') || line.starts_with('+');
        if continuation {
            let Some(obj) = current.as_mut() else {
                return Err(RpslError {
                    line: line_no,
                    message: "continuation line before any attribute".into(),
                });
            };
            let Some(last) = obj.attributes.last_mut() else {
                return Err(RpslError {
                    line: line_no,
                    message: "continuation line before any attribute".into(),
                });
            };
            let cont = line.trim_start_matches(['+', ' ', '\t']).trim_end();
            if !cont.is_empty() {
                if !last.1.is_empty() {
                    last.1.push(' ');
                }
                last.1.push_str(cont);
            }
            continue;
        }
        let Some((key, value)) = line.split_once(':') else {
            return Err(RpslError {
                line: line_no,
                message: format!("expected `attribute: value`, got {raw_line:?}"),
            });
        };
        let obj = current.get_or_insert_with(|| RawObject { line: line_no, attributes: Vec::new() });
        obj.attributes
            .push((key.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    if let Some(obj) = current.take() {
        objects.push(obj);
    }
    Ok(objects)
}

/// Interprets one raw block as a typed object. The block's first
/// attribute determines the class, as in real RPSL.
pub fn parse_object(raw: &RawObject) -> Result<RpslObject, RpslError> {
    let Some((class, first_value)) = raw.attributes.first() else {
        return Err(RpslError { line: raw.line, message: "empty object".into() });
    };
    let err = |message: String| RpslError { line: raw.line, message };
    match class.as_str() {
        "route" | "route6" => {
            let prefix: Prefix = first_value
                .parse()
                .map_err(|e| err(format!("bad prefix {first_value:?}: {e}")))?;
            let origin: Asn = raw
                .require("origin")?
                .parse()
                .map_err(|e| err(format!("bad origin: {e}")))?;
            let last_modified: Date = match raw.get("last-modified") {
                Some(v) => v.parse().map_err(|e| err(format!("bad last-modified: {e}")))?,
                None => Date::ymd(1995, 1, 1), // IRR predates the attribute
            };
            Ok(RpslObject::Route(RouteObject {
                prefix,
                origin,
                descr: raw.get("descr").unwrap_or_default().to_owned(),
                mnt_by: raw.get("mnt-by").unwrap_or_default().to_owned(),
                source: raw.get("source").unwrap_or_default().to_owned(),
                last_modified,
            }))
        }
        "aut-num" => {
            let asn: Asn = first_value
                .parse()
                .map_err(|e| err(format!("bad aut-num: {e}")))?;
            Ok(RpslObject::AutNum(AutNum {
                asn,
                as_name: raw.get("as-name").unwrap_or_default().to_owned(),
                mnt_by: raw.get("mnt-by").unwrap_or_default().to_owned(),
                source: raw.get("source").unwrap_or_default().to_owned(),
                admin_c: raw.get("admin-c").unwrap_or_default().to_owned(),
            }))
        }
        "as-set" => {
            let mut members = Vec::new();
            for (k, v) in &raw.attributes {
                if k != "members" {
                    continue;
                }
                for part in v.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    match part.parse::<Asn>() {
                        Ok(asn) => members.push(AsSetMember::Asn(asn)),
                        Err(_) => members.push(AsSetMember::Set(part.to_owned())),
                    }
                }
            }
            Ok(RpslObject::AsSet(AsSet {
                name: first_value.clone(),
                members,
                mnt_by: raw.get("mnt-by").unwrap_or_default().to_owned(),
                source: raw.get("source").unwrap_or_default().to_owned(),
            }))
        }
        "mntner" => Ok(RpslObject::Mntner(Mntner {
            name: first_value.clone(),
            auth: raw.get("auth").unwrap_or_default().to_owned(),
            source: raw.get("source").unwrap_or_default().to_owned(),
        })),
        other => Err(err(format!("unknown object class {other:?}"))),
    }
}

/// Parses a whole RPSL file. Unknown object classes are skipped (real
/// snapshots carry many classes the pipeline does not model); malformed
/// objects of known classes are errors.
pub fn parse_file(text: &str) -> Result<Vec<RpslObject>, RpslError> {
    let mut out = Vec::new();
    for raw in split_objects(text)? {
        match parse_object(&raw) {
            Ok(obj) => out.push(obj),
            Err(e) if e.message.starts_with("unknown object class") => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// Serializes one object to RPSL text (no trailing blank line).
pub fn serialize_object(obj: &RpslObject) -> String {
    let mut s = String::new();
    match obj {
        RpslObject::Route(r) => {
            let _ = writeln!(s, "{}:         {}", r.class(), r.prefix);
            let _ = writeln!(s, "origin:        {}", r.origin);
            if !r.descr.is_empty() {
                let _ = writeln!(s, "descr:         {}", r.descr);
            }
            if !r.mnt_by.is_empty() {
                let _ = writeln!(s, "mnt-by:        {}", r.mnt_by);
            }
            let _ = writeln!(s, "last-modified: {}", r.last_modified);
            if !r.source.is_empty() {
                let _ = writeln!(s, "source:        {}", r.source);
            }
        }
        RpslObject::AutNum(a) => {
            let _ = writeln!(s, "aut-num:       {}", a.asn);
            let _ = writeln!(s, "as-name:       {}", a.as_name);
            if !a.admin_c.is_empty() {
                let _ = writeln!(s, "admin-c:       {}", a.admin_c);
            }
            if !a.mnt_by.is_empty() {
                let _ = writeln!(s, "mnt-by:        {}", a.mnt_by);
            }
            if !a.source.is_empty() {
                let _ = writeln!(s, "source:        {}", a.source);
            }
        }
        RpslObject::AsSet(set) => {
            let _ = writeln!(s, "as-set:        {}", set.name);
            if !set.members.is_empty() {
                let members: Vec<String> = set.members.iter().map(|m| m.to_string()).collect();
                let _ = writeln!(s, "members:       {}", members.join(", "));
            }
            if !set.mnt_by.is_empty() {
                let _ = writeln!(s, "mnt-by:        {}", set.mnt_by);
            }
            if !set.source.is_empty() {
                let _ = writeln!(s, "source:        {}", set.source);
            }
        }
        RpslObject::Mntner(m) => {
            let _ = writeln!(s, "mntner:        {}", m.name);
            if !m.auth.is_empty() {
                let _ = writeln!(s, "auth:          {}", m.auth);
            }
            if !m.source.is_empty() {
                let _ = writeln!(s, "source:        {}", m.source);
            }
        }
    }
    s
}

/// Serializes many objects into one file, blank-line separated.
pub fn serialize_file(objects: &[RpslObject]) -> String {
    objects
        .iter()
        .map(serialize_object)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_route() {
        let text = "route: 192.0.2.0/24\norigin: AS64500\ndescr: Example\nmnt-by: MAINT-EX\nlast-modified: 2022-03-01\nsource: RADB\n";
        let objs = parse_file(text).unwrap();
        assert_eq!(objs.len(), 1);
        let r = objs[0].as_route().unwrap();
        assert_eq!(r.prefix, "192.0.2.0/24".parse().unwrap());
        assert_eq!(r.origin, Asn(64_500));
        assert_eq!(r.descr, "Example");
        assert_eq!(r.source, "RADB");
        assert_eq!(r.last_modified, Date::ymd(2022, 3, 1));
    }

    #[test]
    fn parses_multiple_objects_and_comments() {
        let text = "\
route: 192.0.2.0/24   # the prefix
origin: AS64500

# a full-line comment between objects

aut-num: AS64500
as-name: EXAMPLE-AS
";
        let objs = parse_file(text).unwrap();
        assert_eq!(objs.len(), 2);
        assert_eq!(objs[1].class(), "aut-num");
    }

    #[test]
    fn continuation_lines_join_values() {
        let text = "route: 192.0.2.0/24\norigin: AS64500\ndescr: first part\n  second part\n+ third part\n";
        let objs = parse_file(text).unwrap();
        let r = objs[0].as_route().unwrap();
        assert_eq!(r.descr, "first part second part third part");
    }

    #[test]
    fn route6_objects() {
        let text = "route6: 2001:db8::/32\norigin: AS64500\n";
        let objs = parse_file(text).unwrap();
        let r = objs[0].as_route().unwrap();
        assert_eq!(r.prefix, "2001:db8::/32".parse().unwrap());
        assert_eq!(r.class(), "route6");
    }

    #[test]
    fn as_set_members_parse() {
        let text = "as-set: AS-EXAMPLE\nmembers: AS1, AS2, AS-CUSTOMERS\nmembers: AS3\n";
        let objs = parse_file(text).unwrap();
        match &objs[0] {
            RpslObject::AsSet(set) => {
                assert_eq!(set.name, "AS-EXAMPLE");
                assert_eq!(
                    set.members,
                    vec![
                        AsSetMember::Asn(Asn(1)),
                        AsSetMember::Asn(Asn(2)),
                        AsSetMember::Set("AS-CUSTOMERS".into()),
                        AsSetMember::Asn(Asn(3)),
                    ]
                );
            }
            other => panic!("expected as-set, got {other:?}"),
        }
    }

    #[test]
    fn unknown_classes_are_skipped() {
        let text = "inetnum: 192.0.2.0 - 192.0.2.255\nnetname: EXAMPLE\n\nroute: 192.0.2.0/24\norigin: AS64500\n";
        let objs = parse_file(text).unwrap();
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].class(), "route");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "\n\nroute: not-a-prefix\norigin: AS1\n";
        let err = parse_file(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("bad prefix"));
    }

    #[test]
    fn missing_origin_is_an_error() {
        let err = parse_file("route: 192.0.2.0/24\n").unwrap_err();
        assert!(err.message.contains("origin"));
    }

    #[test]
    fn continuation_without_attribute_is_an_error() {
        let err = parse_file("  dangling\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn garbage_line_is_an_error() {
        assert!(parse_file("route: 192.0.2.0/24\norigin: AS1\nnonsense line\n").is_err());
    }

    #[test]
    fn round_trip_route() {
        let original = RpslObject::Route(RouteObject {
            prefix: "198.51.100.0/24".parse().unwrap(),
            origin: Asn(64_501),
            descr: "Round trip".into(),
            mnt_by: "MAINT-RT".into(),
            source: "RIPE".into(),
            last_modified: Date::ymd(2021, 7, 15),
        });
        let text = serialize_object(&original);
        let parsed = parse_file(&text).unwrap();
        assert_eq!(parsed, vec![original]);
    }

    #[test]
    fn round_trip_file_of_everything() {
        let objects = vec![
            RpslObject::Route(RouteObject {
                prefix: "192.0.2.0/24".parse().unwrap(),
                origin: Asn(1),
                descr: "a".into(),
                mnt_by: "M".into(),
                source: "RADB".into(),
                last_modified: Date::ymd(2022, 1, 1),
            }),
            RpslObject::AutNum(AutNum {
                asn: Asn(1),
                as_name: "ONE".into(),
                mnt_by: "M".into(),
                source: "RADB".into(),
                admin_c: "OP1-EX".into(),
            }),
            RpslObject::AsSet(AsSet {
                name: "AS-ONE".into(),
                members: vec![AsSetMember::Asn(Asn(2)), AsSetMember::Set("AS-TWO".into())],
                mnt_by: "M".into(),
                source: "RADB".into(),
            }),
            RpslObject::Mntner(Mntner {
                name: "M".into(),
                auth: "MAGIC".into(),
                source: "RADB".into(),
            }),
        ];
        let text = serialize_file(&objects);
        let parsed = parse_file(&text).unwrap();
        assert_eq!(parsed, objects);
    }
}
