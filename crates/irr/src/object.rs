//! RPSL objects.
//!
//! Only the attributes the measurement pipeline consumes are modelled as
//! typed fields; everything else an operator might put in an object is
//! carried in `remarks`-style free attributes by the [`crate::rpsl`]
//! parser layer.

use manrs_net::{Asn, Date, Prefix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A `route` (IPv4) or `route6` (IPv6) object: the registration of an
/// intended (prefix, origin) announcement.
///
/// This is the object MANRS Action 4 is about: members must register the
/// announcements they intend to originate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteObject {
    /// The registered prefix.
    pub prefix: Prefix,
    /// The AS authorized to originate it.
    pub origin: Asn,
    /// Human-readable description.
    pub descr: String,
    /// Maintainer responsible for the object.
    pub mnt_by: String,
    /// Source database tag (e.g. `RIPE`, `RADB`).
    pub source: String,
    /// Last modification date — stale objects are the paper's §8.2 story.
    pub last_modified: Date,
}

impl RouteObject {
    /// The RPSL class name for this object's family.
    pub fn class(&self) -> &'static str {
        match self.prefix {
            Prefix::V4(_) => "route",
            Prefix::V6(_) => "route6",
        }
    }
}

impl fmt::Display for RouteObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} origin {}", self.class(), self.prefix, self.origin)
    }
}

/// An `aut-num` object: registration of an AS and its policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AutNum {
    /// The AS number.
    pub asn: Asn,
    /// The network's name.
    pub as_name: String,
    /// Maintainer.
    pub mnt_by: String,
    /// Source database tag.
    pub source: String,
    /// Contact e-mail — MANRS Action 3 requires this to be current.
    pub admin_c: String,
}

/// A member of an `as-set`: either a concrete ASN or a nested set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsSetMember {
    /// A concrete AS number.
    Asn(Asn),
    /// A nested `as-set` referenced by name.
    Set(String),
}

impl fmt::Display for AsSetMember {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsSetMember::Asn(asn) => asn.fmt(f),
            AsSetMember::Set(name) => f.write_str(name),
        }
    }
}

/// An `as-set` object: a named collection of ASes (and nested sets) used
/// to authorize customer origination (§2.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsSet {
    /// The set's name, canonically starting with `AS-`.
    pub name: String,
    /// Direct members.
    pub members: Vec<AsSetMember>,
    /// Maintainer.
    pub mnt_by: String,
    /// Source database tag.
    pub source: String,
}

/// A `mntner` object: the authentication anchor for modifications.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mntner {
    /// The maintainer handle.
    pub name: String,
    /// Authentication scheme descriptor (opaque to the pipeline).
    pub auth: String,
    /// Source database tag.
    pub source: String,
}

/// Any RPSL object the pipeline understands.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RpslObject {
    /// `route` / `route6`.
    Route(RouteObject),
    /// `aut-num`.
    AutNum(AutNum),
    /// `as-set`.
    AsSet(AsSet),
    /// `mntner`.
    Mntner(Mntner),
}

impl RpslObject {
    /// The RPSL class name.
    pub fn class(&self) -> &'static str {
        match self {
            RpslObject::Route(r) => r.class(),
            RpslObject::AutNum(_) => "aut-num",
            RpslObject::AsSet(_) => "as-set",
            RpslObject::Mntner(_) => "mntner",
        }
    }

    /// The route object, if this is one.
    pub fn as_route(&self) -> Option<&RouteObject> {
        match self {
            RpslObject::Route(r) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_class_follows_family() {
        let mk = |p: &str| RouteObject {
            prefix: p.parse().unwrap(),
            origin: Asn(64_500),
            descr: "test".into(),
            mnt_by: "MAINT-TEST".into(),
            source: "RADB".into(),
            last_modified: Date::ymd(2022, 1, 1),
        };
        assert_eq!(mk("10.0.0.0/8").class(), "route");
        assert_eq!(mk("2001:db8::/32").class(), "route6");
        assert_eq!(mk("10.0.0.0/8").to_string(), "route: 10.0.0.0/8 origin AS64500");
    }

    #[test]
    fn object_class_names() {
        let route = RpslObject::Route(RouteObject {
            prefix: "10.0.0.0/8".parse().unwrap(),
            origin: Asn(1),
            descr: String::new(),
            mnt_by: String::new(),
            source: String::new(),
            last_modified: Date::ymd(2022, 1, 1),
        });
        assert_eq!(route.class(), "route");
        assert!(route.as_route().is_some());
        let autnum = RpslObject::AutNum(AutNum {
            asn: Asn(1),
            as_name: "TEST".into(),
            mnt_by: String::new(),
            source: String::new(),
            admin_c: String::new(),
        });
        assert_eq!(autnum.class(), "aut-num");
        assert!(autnum.as_route().is_none());
    }

    #[test]
    fn as_set_member_display() {
        assert_eq!(AsSetMember::Asn(Asn(1)).to_string(), "AS1");
        assert_eq!(AsSetMember::Set("AS-EXAMPLE".into()).to_string(), "AS-EXAMPLE");
    }
}
