//! Property tests for the IRR crate: parser round trips and validation
//! against a naive oracle.

use manrs_irr::{
    validate_irr, CompiledIrrIndex, IrrDatabase, IrrRegistry, IrrStatus, RouteObject,
    RpslObject,
};
use manrs_net::{Asn, Date, Ipv4Prefix, Ipv6Prefix, Prefix};
use proptest::prelude::*;

fn prefix() -> impl Strategy<Value = Prefix> {
    (0u32..8, 8u8..=28).prop_map(|(net, len)| {
        let bits = 0x0A00_0000 | (net << 20);
        Prefix::V4(Ipv4Prefix::from_bits_truncated(bits, len).unwrap())
    })
}

/// Clustered space over both families (~25% v6, 2001:db8 subnets) so
/// both family tries and the shared arena get exercised.
fn any_prefix() -> impl Strategy<Value = Prefix> {
    (0u8..4, 0u32..8, 0u8..=20).prop_map(|(fam, net, extra)| {
        if fam == 0 {
            let bits =
                0x2001_0db8_0000_0000_0000_0000_0000_0000u128 | ((net as u128) << 88);
            Prefix::V6(Ipv6Prefix::from_bits_truncated(bits, 32 + extra).unwrap())
        } else {
            let bits = 0x0A00_0000 | (net << 20);
            Prefix::V4(Ipv4Prefix::from_bits_truncated(bits, 8 + extra).unwrap())
        }
    })
}

fn route_object_any() -> impl Strategy<Value = RouteObject> {
    (any_prefix(), 1u32..6, 0i64..3000).prop_map(|(prefix, origin, age)| RouteObject {
        prefix,
        origin: Asn(origin),
        descr: String::new(),
        mnt_by: "MAINT-PROP".into(),
        source: "RADB".into(),
        last_modified: Date::ymd(2014, 1, 1).plus_days(age),
    })
}

fn route_object() -> impl Strategy<Value = RouteObject> {
    (prefix(), 1u32..6, 0i64..3000, "[A-Za-z0-9 ]{0,20}").prop_map(
        |(prefix, origin, age, descr)| RouteObject {
            prefix,
            origin: Asn(origin),
            descr: descr.trim().to_owned(),
            mnt_by: "MAINT-PROP".into(),
            source: "RADB".into(),
            last_modified: Date::ymd(2014, 1, 1).plus_days(age),
        },
    )
}

fn registry(routes: &[RouteObject]) -> IrrRegistry {
    let mut db = IrrDatabase::new("RADB", None);
    for r in routes {
        db.add_route(r.clone());
    }
    let mut reg = IrrRegistry::new();
    reg.add_database(db);
    reg
}

/// Straight transcription of the paper's §6.1 IRR rule.
fn oracle(routes: &[RouteObject], prefix: &Prefix, origin: Asn) -> IrrStatus {
    let covering: Vec<&RouteObject> =
        routes.iter().filter(|r| r.prefix.contains(prefix)).collect();
    if covering.is_empty() {
        return IrrStatus::NotFound;
    }
    if covering
        .iter()
        .any(|r| r.origin == origin && r.prefix.len() == prefix.len())
    {
        return IrrStatus::Valid;
    }
    if covering.iter().any(|r| r.origin == origin) {
        IrrStatus::InvalidLength
    } else {
        IrrStatus::InvalidAsn
    }
}

proptest! {
    /// RPSL serialization round-trips every generated route object.
    #[test]
    fn rpsl_route_round_trip(routes in prop::collection::vec(route_object(), 1..10)) {
        let objects: Vec<RpslObject> =
            routes.iter().cloned().map(RpslObject::Route).collect();
        let text = manrs_irr::rpsl::serialize_file(&objects);
        let parsed = manrs_irr::rpsl::parse_file(&text).expect("serialized text parses");
        prop_assert_eq!(parsed, objects);
    }

    /// Trie-backed IRR validation agrees with the linear oracle.
    #[test]
    fn irr_validation_matches_oracle(
        routes in prop::collection::vec(route_object(), 0..25),
        query in prefix(),
        origin in 1u32..6,
    ) {
        let reg = registry(&routes);
        prop_assert_eq!(
            validate_irr(&reg, &query, Asn(origin)),
            oracle(&routes, &query, Asn(origin))
        );
    }

    /// The compiled batch engine agrees bit-for-bit with the scalar
    /// validator over mixed-family registries (duplicate prefixes
    /// across origins included) and query batches with duplicates —
    /// including the empty registry and the empty batch.
    #[test]
    fn batch_matches_scalar(
        routes in prop::collection::vec(route_object_any(), 0..25),
        queries in prop::collection::vec((any_prefix(), 1u32..6), 0..40),
    ) {
        let reg = registry(&routes);
        let index = CompiledIrrIndex::build(&reg);
        let batch: Vec<(Prefix, Asn)> =
            queries.iter().map(|&(p, o)| (p, Asn(o))).collect();
        let got = index.validate_batch(&batch);
        let want: Vec<IrrStatus> =
            batch.iter().map(|(p, o)| validate_irr(&reg, p, *o)).collect();
        prop_assert_eq!(got, want);
    }

    /// Index compilation is a pure function of the registry contents.
    #[test]
    fn index_build_is_deterministic(routes in prop::collection::vec(route_object_any(), 0..25)) {
        let a = registry(&routes);
        let b = registry(&routes);
        prop_assert_eq!(CompiledIrrIndex::build(&a), CompiledIrrIndex::build(&b));
    }

    /// Registering a route object for an announcement makes it Valid;
    /// removing it restores the prior status.
    #[test]
    fn register_then_remove_round_trip(
        routes in prop::collection::vec(route_object(), 0..15),
        target in prefix(),
        origin in 1u32..6,
    ) {
        let mut db = IrrDatabase::new("RADB", None);
        for r in &routes {
            db.add_route(r.clone());
        }
        // Only safe when no identical (prefix, origin) object pre-exists.
        prop_assume!(!routes.iter().any(|r| r.prefix == target && r.origin == Asn(origin)));
        let before = {
            let mut reg = IrrRegistry::new();
            reg.add_database(db.clone());
            validate_irr(&reg, &target, Asn(origin))
        };
        db.add_route(RouteObject {
            prefix: target,
            origin: Asn(origin),
            descr: String::new(),
            mnt_by: "M".into(),
            source: "RADB".into(),
            last_modified: Date::ymd(2022, 1, 1),
        });
        let mut reg = IrrRegistry::new();
        reg.add_database(db);
        prop_assert_eq!(validate_irr(&reg, &target, Asn(origin)), IrrStatus::Valid);
        let db = reg.database_mut("RADB").unwrap();
        prop_assert_eq!(db.remove_route(&target, Asn(origin)), 1);
        prop_assert_eq!(validate_irr(&reg, &target, Asn(origin)), before);
    }
}
