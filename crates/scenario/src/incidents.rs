//! Incident-log generation for the §12 future-work analysis.
//!
//! Samples mis-origination incidents over the study window: a random
//! attacker forges a random victim's block at a random date. Each
//! incident is validated against the RPKI *as it stood at the incident
//! date* (the repository carries real validity windows), then propagated
//! under the world's filtering policies to measure how many vantage
//! points accepted the forged route.
//!
//! The containment model is an approximation the caller should know
//! about: propagation uses the snapshot-date policies rather than
//! reconstructing each year's deployment. Exposure *counting* (the
//! pre/post-join comparison) does not depend on that approximation.

use crate::build::ScenarioWorld;
use manrs_bgp::propagate::{propagate_dense_into, DenseGraph, PropagationScratch};
use manrs_bgp::Announcement;
use manrs_core::Incident;
use manrs_irr::validate_irr;
use manrs_net::{Asn, Date, Prefix};
use manrs_rpki::{validate_origin, RelyingParty, RpkiStatus, VrpSet};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// Generates `count` incidents, deterministically in `seed`.
pub fn generate_incidents(world: &ScenarioWorld, count: usize, seed: u64) -> Vec<Incident> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x494E_4349);
    let asns: Vec<Asn> = world.world.topology.asns().collect();
    let graph = DenseGraph::build(&world.world.topology, &world.policies);
    let window_start = Date::ymd(2016, 1, 1);
    let window_days = window_start.days_until(&world.config.snapshot_date);
    // One relying-party pass per incident year, cached.
    let mut vrps_by_year: BTreeMap<i32, VrpSet> = BTreeMap::new();
    // One scratch reused across all incident propagations: no per-
    // incident allocation.
    let mut scratch = PropagationScratch::with_capacity(graph.len());
    let mut incidents = Vec::with_capacity(count);
    for _ in 0..count {
        let date = window_start.plus_days(rng.random_range(0..window_days.max(1)));
        let victim = *asns.choose(&mut rng).expect("nonempty world");
        let attacker = *asns.choose(&mut rng).expect("nonempty world");
        if attacker == victim {
            continue;
        }
        let Some(block) = world.world.resources_of(victim).first() else {
            continue;
        };
        let prefix = Prefix::V4(*block);
        let vrps = vrps_by_year.entry(date.year()).or_insert_with(|| {
            RelyingParty::new(date).validate(&world.repository).0
        });
        let victim_protected = vrps.is_covered(&prefix);
        let rpki = validate_origin(vrps, &prefix, attacker);
        let irr = validate_irr(&world.irr, &prefix, attacker);
        let forged = Announcement::new(prefix, attacker, rpki, irr);
        propagate_dense_into(&graph, &forged, &mut scratch);
        let vantages_accepting = world
            .vantages
            .iter()
            .filter(|v| scratch.route(&graph, **v).is_some())
            .count();
        incidents.push(Incident {
            date,
            prefix,
            victim,
            attacker,
            victim_protected,
            vantages_accepting,
            vantages_total: world.vantages.len(),
        });
    }
    incidents
}

/// Convenience: are forged routes against ROA-covered space less visible
/// in this world? Returns `(protected_mean, unprotected_mean)` incident
/// visibility, skipping incidents whose forged route was not even RPKI
/// Invalid (same-org reannouncements).
pub fn protection_payoff(world: &ScenarioWorld, incidents: &[Incident]) -> (Option<f64>, Option<f64>) {
    // Recheck protection against the snapshot VRP set for a clean split.
    let refined: Vec<Incident> = incidents
        .iter()
        .map(|i| {
            let covered = world.vrps.is_covered(&i.prefix);
            let mut updated = *i;
            updated.victim_protected = covered
                && validate_origin(&world.vrps, &i.prefix, i.attacker) != RpkiStatus::Valid;
            updated
        })
        .collect();
    manrs_core::containment_by_protection(&refined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use manrs_bgp::propagate::propagate_dense;
    use manrs_core::pre_post_exposure;

    fn world() -> ScenarioWorld {
        ScenarioWorld::builder(ScenarioConfig::small(21)).build()
    }

    #[test]
    fn incidents_are_deterministic_and_bounded() {
        let w = world();
        let a = generate_incidents(&w, 40, 9);
        let b = generate_incidents(&w, 40, 9);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for i in &a {
            assert!(i.vantages_accepting <= i.vantages_total);
            assert_ne!(i.victim, i.attacker);
            assert!(i.date >= Date::ymd(2016, 1, 1));
            assert!(i.date <= w.config.snapshot_date);
        }
    }

    #[test]
    fn protection_pays_off_where_rov_is_deployed() {
        // Containment is a function of deployment: under universal ROV,
        // forged routes against ROA-covered space die at the first hop
        // while unprotected victims get no help. The calibrated world
        // sits in between (ROV deployment is partial), so the strong
        // assertion runs against a universal-ROV policy table.
        use manrs_bgp::{PolicySet, PolicyTable};
        let w = world();
        let incidents = generate_incidents(&w, 150, 10);
        let policies = PolicyTable::with_default(PolicySet::MANRS_ISP);
        let graph = DenseGraph::build(&w.world.topology, &policies);
        let mut protected_vis = Vec::new();
        let mut unprotected_vis = Vec::new();
        for i in &incidents {
            let rpki = validate_origin(&w.vrps, &i.prefix, i.attacker);
            let irr = validate_irr(&w.irr, &i.prefix, i.attacker);
            // Skip incidents where the registries happen to authorize
            // the "attacker" (sibling reannouncements).
            if rpki == RpkiStatus::Valid {
                continue;
            }
            let forged = Announcement::new(i.prefix, i.attacker, rpki, irr);
            let outcome = propagate_dense(&graph, &forged);
            let seen = w
                .vantages
                .iter()
                .filter(|v| outcome.route(&graph, **v).is_some())
                .count() as f64
                / w.vantages.len() as f64;
            if w.vrps.is_covered(&i.prefix) {
                protected_vis.push(seen);
            } else {
                unprotected_vis.push(seen);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(!protected_vis.is_empty() && !unprotected_vis.is_empty());
        assert!(
            mean(&protected_vis) < mean(&unprotected_vis),
            "under universal ROV, protected victims must be better contained \
             ({:.2} vs {:.2})",
            mean(&protected_vis),
            mean(&unprotected_vis)
        );
        // Invalid forged routes reach no vantage at all under full ROV.
        assert!(mean(&protected_vis) < 0.05);

        // And the payoff helper runs on the calibrated world without
        // requiring a gap (deployment there is partial).
        let (p, u) = protection_payoff(&w, &incidents);
        assert!(p.is_some() && u.is_some());
    }

    #[test]
    fn pre_post_exposure_runs_over_generated_log() {
        let w = world();
        let incidents = generate_incidents(&w, 80, 11);
        let e = pre_post_exposure(
            &incidents,
            &w.manrs,
            &w.world.orgs,
            Date::ymd(2016, 1, 1),
            w.config.snapshot_date,
        );
        // Member orgs are a small slice of the world; just require the
        // accounting to be self-consistent.
        assert!(e.days_before >= 0 && e.days_after >= 0);
        assert!(e.rate_before() >= 0.0 && e.rate_after() >= 0.0);
    }
}
