//! Calibrated synthetic worlds for the MANRS experiments.
//!
//! The paper measures real operators; this crate encodes the paper's
//! *measured* behavioural differences as generative parameters and runs
//! the full pipeline over the result, so that every figure and table can
//! be regenerated end-to-end. The honest core of the reproduction lives
//! here: if the behaviour matrix says MANRS members register ROAs more
//! often, the pipeline should *recover* that difference through the same
//! metrics the paper uses — and the integration tests assert it does.
//!
//! * [`config`] — scenario configuration with presets from test-sized to
//!   paper-scale worlds.
//! * [`behavior`] — the behaviour matrix: per (membership, size class)
//!   probabilities for RPKI registration, IRR hygiene, ROV deployment
//!   and IRR customer filtering, calibrated to §8–§9.
//! * [`enroll`] — MANRS enrollment with the paper's documented growth
//!   events (NIC.br Brazil push, China Telecom, the 2020 CDN program).
//! * [`build`] — the world builder: registries, policies, announcements,
//!   propagation, collection, IHR datasets.
//! * [`engine`] — the incremental [`TimelineEngine`]: typed registry
//!   deltas, reverse indexes, and affected-pair re-validation, so
//!   stepping a world through time costs work proportional to what
//!   changed instead of a full rebuild.
//! * [`timeline`] — yearly snapshots 2015–2022 (Figs. 2/4/6) and weekly
//!   churn snapshots (§8.5 stability), both expressed as delta streams
//!   replayed through one engine by [`SnapshotSeries`].
//! * [`incidents`] — incident-log generation for the §12 future-work
//!   pre/post-join exposure analysis.
//! * [`sweep`] — Monte-Carlo adoption sweeps: a [`SweepPlan`] fans a
//!   grid of (adoption fraction, policy mix, seed) trials over a shared
//!   frozen [`SweepBase`] with per-worker copy-on-write overlays, so
//!   warm trials cost splices and propagations instead of world builds.

pub mod behavior;
pub mod build;
pub mod config;
pub mod engine;
pub mod enroll;
pub mod incidents;
pub mod sweep;
pub mod timeline;

pub use behavior::{BehaviorMatrix, BehaviorModel};
pub use build::{ScenarioWorld, ScenarioWorldBuilder};
pub use config::ScenarioConfig;
pub use engine::{
    patch_beats_rebuild, EngineFeed, EngineStats, RegistryDelta, TimelineEngine, TimelineSnapshot,
};
pub use incidents::{generate_incidents, protection_payoff};
pub use sweep::{
    CellReport, IncidentProfile, MetricSummary, PolicyMix, SweepBase, SweepPlan, SweepReport,
    SweepTotals, TrialCounters, TrialOutcome, TrialSpec, TrialWorkspace,
};
pub use timeline::{
    weekly_steps, yearly_dates, yearly_steps, SeriesStep, SnapshotSeries, YearlySnapshot,
};
