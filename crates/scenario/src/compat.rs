//! Deprecated 0.2.0 surface, consolidated.
//!
//! Everything here forwards through the builder-style APIs
//! ([`ScenarioWorld::builder`] / [`SnapshotSeries`]) and exists only so
//! pre-0.2.0 callers keep compiling. New code should not import from
//! this module; the deprecation notes name the replacement.

use crate::build::ScenarioWorld;
use crate::config::ScenarioConfig;
use crate::timeline::{SnapshotSeries, YearlySnapshot};
use manrs_bgp::ParallelConfig;
use manrs_ihr::IhrSnapshot;

impl ScenarioWorld {
    /// Builds the world with the thread count taken from `MANRS_THREADS`.
    #[deprecated(since = "0.2.0", note = "use `ScenarioWorld::builder(config).build()`")]
    pub fn build(config: ScenarioConfig) -> Self {
        ScenarioWorld::builder(config).build()
    }

    /// Builds the world with an explicit parallelism configuration.
    #[deprecated(
        since = "0.2.0",
        note = "use `ScenarioWorld::builder(config).parallel(cfg).build()`"
    )]
    pub fn build_with(config: ScenarioConfig, par: &ParallelConfig) -> Self {
        ScenarioWorld::builder(config).parallel(*par).build()
    }
}

/// Builds the yearly snapshots for a world.
#[deprecated(since = "0.2.0", note = "use `SnapshotSeries::yearly(world)`")]
pub fn yearly_snapshots(world: &ScenarioWorld) -> Vec<YearlySnapshot> {
    SnapshotSeries::yearly(world)
        .map(|s| YearlySnapshot { date: s.date, table: s.table, vrps: s.vrps, members: s.members })
        .collect()
}

/// Weekly registration-churn snapshots (§8.5).
///
/// Starting from the world's registries, each week flips a small number
/// of registrations: some ASes lose a ROA (revoked/expired), some IRR
/// objects churn. The visible prefix-origin set is held fixed (routing
/// does not change in this model — the paper likewise observed prefix
/// sets to be stable) and statuses are re-validated.
#[deprecated(since = "0.2.0", note = "use `SnapshotSeries::weekly(world, weeks, churn)`")]
pub fn weekly_snapshots(world: &ScenarioWorld, weeks: usize, churn: f64) -> Vec<IhrSnapshot> {
    SnapshotSeries::weekly(world, weeks, churn)
        .map(|s| IhrSnapshot { prefix_origins: s.ihr.prefix_origins, transits: Vec::new() })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use manrs_ihr::PrefixOriginRecord;
    use manrs_irr::validate_irr;
    use manrs_net::Date;
    use manrs_rpki::{validate_origin, RelyingParty};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn world() -> ScenarioWorld {
        ScenarioWorld::builder(ScenarioConfig::small(7)).build()
    }

    #[test]
    fn build_shims_match_builder() {
        let a = ScenarioWorld::build(ScenarioConfig::small(42));
        let b = ScenarioWorld::build_with(ScenarioConfig::small(42), &ParallelConfig::serial());
        let c = ScenarioWorld::builder(ScenarioConfig::small(42)).build();
        assert_eq!(a.announcements, c.announcements);
        assert_eq!(a.vantages, c.vantages);
        assert_eq!(b.rib.observations, c.rib.observations);
        assert_eq!(b.rib.visible_count(), c.rib.visible_count());
    }

    #[test]
    fn yearly_shim_matches_series() {
        let w = world();
        let legacy = yearly_snapshots(&w);
        let series: Vec<_> = SnapshotSeries::yearly(&w).collect();
        assert_eq!(legacy.len(), series.len());
        for (l, s) in legacy.iter().zip(&series) {
            assert_eq!(l.date, s.date);
            assert_eq!(l.table.entries(), s.table.entries());
            assert_eq!(l.members, s.members);
        }
    }

    #[test]
    fn zero_weeks_shim_is_a_no_op() {
        let w = world();
        assert!(weekly_snapshots(&w, 0, 0.5).is_empty());
    }

    #[test]
    fn weekly_shim_matches_legacy_algorithm() {
        // The deprecated shim must reproduce the pre-engine output
        // exactly: same RNG stream, same statuses, empty transits.
        let w = world();
        let churn = 0.02;
        let weeks = 4;

        // The legacy algorithm, verbatim: clone registries, churn them
        // in place, full-revalidate the visible set each week.
        let mut rng = StdRng::seed_from_u64(w.config.seed ^ 0x5745_454B);
        let mut repository = w.repository.clone();
        let mut irr = w.irr.clone();
        let base_date = Date::ymd(2022, 2, 1);
        let roa_ids: Vec<_> = repository.roas().map(|r| r.id).collect();
        let mut legacy: Vec<IhrSnapshot> = Vec::new();
        for week in 0..weeks {
            let date = base_date.plus_days(7 * week as i64);
            if week > 0 {
                for id in &roa_ids {
                    if rng.random_bool(churn) {
                        let _ = repository.revoke_roa(*id);
                    }
                }
                let entries = w.world.intended.entries();
                for _ in 0..((entries.len() as f64 * churn).ceil() as usize) {
                    let (prefix, origin) = entries[rng.random_range(0..entries.len())];
                    irr.remove_route(&prefix, origin);
                }
            }
            let (vrps, _) = RelyingParty::new(date).validate(&repository);
            let prefix_origins = w
                .rib
                .visible()
                .map(|obs| PrefixOriginRecord {
                    prefix: obs.prefix,
                    origin: obs.origin,
                    rpki: validate_origin(&vrps, &obs.prefix, obs.origin),
                    irr: validate_irr(&irr, &obs.prefix, obs.origin),
                    viewpoints: obs.paths.len(),
                })
                .collect();
            legacy.push(IhrSnapshot { prefix_origins, transits: Vec::new() });
        }

        let shimmed = weekly_snapshots(&w, weeks, churn);
        assert_eq!(shimmed.len(), legacy.len());
        for (s, l) in shimmed.iter().zip(&legacy) {
            assert_eq!(s.prefix_origins, l.prefix_origins);
            assert!(s.transits.is_empty());
        }
    }
}
