//! The scenario world builder.
//!
//! Assembles every substrate into one coherent, seeded world:
//!
//! 1. generate the topology and address plan (`manrs-topology`);
//! 2. enroll MANRS members ([`crate::enroll`]);
//! 3. populate the RPKI repository and IRR databases according to the
//!    behaviour matrix — including the misconfigurations the paper
//!    observes (stale IRR objects, AS0 ROAs, maxLength slips);
//! 4. perturb announcements (sibling / customer-provider / unrelated
//!    mis-originations, §8.4);
//! 5. assign filtering policies (ROV, IRR customer filtering) and record
//!    the ground truth for the inference-validation ablation;
//! 6. validate every (prefix, origin) against both registries, propagate
//!    the table, collect it at the vantage points, and build the IHR
//!    datasets.

use crate::behavior::BehaviorModel;
use crate::config::ScenarioConfig;
use crate::enroll::enroll;
use manrs_bgp::{
    validate_pairs_batch, Announcement, CollectedRib, ParallelConfig, PolicyExtension, PolicySet,
    PolicyTable, TableCollector,
};
use manrs_core::{ManrsProgram, ManrsRegistry, PeeringDb, PeeringDbRecord};
use manrs_ihr::{build_snapshot, IhrSnapshot};
use manrs_irr::{AutNum, CompiledIrrIndex, IrrDatabase, IrrRegistry, RouteObject};
use manrs_net::{Asn, Date, Prefix, Rir};
use manrs_rpki::repository::TrustAnchor;
use manrs_rpki::{
    CompiledVrpIndex, RelyingParty, Roa, RpkiRepository, ValidationReport, VrpSet,
};
use manrs_topology::{
    ConeAnalysis, GeneratedWorld, NetworkKind, OrgId, Prefix2As, SizeClass, TopologyBuilder,
};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::{BTreeMap, BTreeSet};

/// A fully-built world plus every intermediate artifact the analyses and
/// experiments need.
pub struct ScenarioWorld {
    /// The configuration that produced this world.
    pub config: ScenarioConfig,
    /// Topology, organizations, address plan, intended announcements.
    pub world: GeneratedWorld,
    /// Customer cones and size classes.
    pub cones: ConeAnalysis,
    /// MANRS membership.
    pub manrs: ManrsRegistry,
    /// The RPKI publication state (all eras; validate at any date).
    pub repository: RpkiRepository,
    /// VRPs validated at the snapshot date.
    pub vrps: VrpSet,
    /// The relying-party report for the snapshot validation.
    pub rp_report: ValidationReport,
    /// The IRR registry (authoritative databases plus a RADB-style
    /// catch-all).
    pub irr: IrrRegistry,
    /// The PeeringDB analog (Action 3 contact records).
    pub peeringdb: PeeringDb,
    /// Per-AS filtering policies.
    pub policies: PolicyTable,
    /// Every announcement injected into BGP, validated.
    pub announcements: Vec<Announcement>,
    /// The observed routing table (visible prefix-origin pairs).
    pub observed_table: Prefix2As,
    /// The collected RIB (vantage paths per announcement).
    pub rib: CollectedRib,
    /// The IHR datasets derived from the RIB.
    pub ihr: IhrSnapshot,
    /// The vantage ASes.
    pub vantages: Vec<Asn>,
    /// When each AS became active in BGP (drives the yearly series).
    pub active_since: BTreeMap<Asn, Date>,
    /// Ground truth: ASes that actually deploy ROV.
    pub truth_rov: BTreeSet<Asn>,
    /// Ground truth: ASes that actually IRR-filter customers.
    pub truth_irr_filter: BTreeSet<Asn>,
}

/// Builder-style construction of a [`ScenarioWorld`]: fix the
/// configuration, optionally override the parallelism, then build.
///
/// ```no_run
/// use manrs_scenario::{ScenarioConfig, ScenarioWorld};
/// use manrs_bgp::ParallelConfig;
///
/// let world = ScenarioWorld::builder(ScenarioConfig::small(42))
///     .parallel(ParallelConfig::serial())
///     .build();
/// # let _ = world;
/// ```
///
/// Only the embarrassingly parallel stages fan out (per-announcement
/// RPKI/IRR validation and table collection); all RNG-driven generation
/// stays serial, so the built world is bit-for-bit identical for any
/// thread count.
#[derive(Debug, Clone)]
pub struct ScenarioWorldBuilder {
    config: ScenarioConfig,
    parallel: ParallelConfig,
}

impl ScenarioWorldBuilder {
    /// Overrides the parallelism configuration (default: thread count
    /// from `MANRS_THREADS`, auto-detected when unset).
    pub fn parallel(mut self, cfg: ParallelConfig) -> Self {
        self.parallel = cfg;
        self
    }

    /// Builds the world. Deterministic in the config's seeds —
    /// parallelism never changes the result.
    pub fn build(self) -> ScenarioWorld {
        let ScenarioWorldBuilder { config, parallel } = self;
        let par = &parallel;
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5343_454E);
        let world = TopologyBuilder::new(config.topology.clone()).generate();
        let cones = ConeAnalysis::compute(&world.topology, config.thresholds);
        let manrs = enroll(&world, &cones, &config.enrollment, config.seed);
        let snapshot = config.snapshot_date;

        // --- Activation dates -----------------------------------------
        // Infrastructure (transit, CDN) is old; stubs appear over the
        // years, so the routed table grows like Fig. 4's.
        let mut active_since = BTreeMap::new();
        for asn in world.topology.asns() {
            let info = world.topology.info(asn).expect("known");
            let date = match info.kind {
                NetworkKind::Transit | NetworkKind::Cdn => Date::ymd(2014, 1, 1),
                NetworkKind::Stub => {
                    if rng.random_bool(0.5) {
                        Date::ymd(2014, 1, 1)
                    } else {
                        let year = 2015 + rng.random_range(0..7i32);
                        Date::ymd(year, rng.random_range(1..=12u8), rng.random_range(1..=28u8))
                    }
                }
            };
            active_since.insert(asn, date);
        }

        // --- Behaviour per AS -------------------------------------------
        let model_of = |asn: Asn| -> BehaviorModel {
            let is_member = manrs.is_member_as(asn, snapshot);
            let is_cdn_member =
                manrs.program_of(asn, snapshot) == Some(ManrsProgram::Cdn);
            config
                .behaviors
                .model(is_member, is_cdn_member, cones.size_class(asn))
        };

        // --- RPKI repository ---------------------------------------------
        let mut repository = RpkiRepository::new();
        for rir in Rir::ALL {
            repository.install_anchor(TrustAnchor {
                rir,
                resources: world.allocator.pool_prefixes(rir),
            });
        }
        // One CA per organization holding all its ASes' blocks.
        let mut org_blocks: BTreeMap<OrgId, (Rir, Vec<Prefix>)> = BTreeMap::new();
        for asn in world.topology.asns() {
            let info = world.topology.info(asn).expect("known");
            let entry = org_blocks.entry(info.org).or_insert((info.rir, Vec::new()));
            entry
                .1
                .extend(world.all_resources(asn));
        }
        let mut org_ca = BTreeMap::new();
        for (org, (rir, blocks)) in &org_blocks {
            let ca = repository
                .issue_ca(*rir, blocks.clone(), Date::ymd(2012, 1, 1), Date::ymd(2030, 1, 1))
                .expect("org blocks within anchor pools");
            org_ca.insert(*org, ca);
        }

        let all_asns: Vec<Asn> = world.topology.asns().collect();

        // --- Stratified behaviour draws ---------------------------------
        // Per-AS i.i.d. Bernoulli draws give small worlds enough
        // variance to flip the paper's §8 class orderings under an
        // unlucky seed: one large non-member failing its 95%
        // IRR-registration draw craters a three-AS class mean by ~30
        // points. Quota sampling pins every behaviour cell's *realized*
        // rate to its calibrated probability while keeping *which* AS
        // exhibits it random: group the ASes by the exact key
        // `BehaviorMatrix::model` resolves — (membership,
        // CDN-membership, size class) — shuffle each cell, and mark the
        // first round(p·n). The per-object probabilities (`rpki_correct`,
        // `irr_stale`) get the same treatment over the cell's pooled
        // (AS, prefix) registration slots.
        let mut cells: BTreeMap<(bool, bool, SizeClass), Vec<Asn>> = BTreeMap::new();
        for &asn in &all_asns {
            let is_member = manrs.is_member_as(asn, snapshot);
            let is_cdn = manrs.program_of(asn, snapshot) == Some(ManrsProgram::Cdn);
            cells.entry((is_member, is_cdn, cones.size_class(asn))).or_default().push(asn);
        }
        let mut rpki_registrants: BTreeSet<Asn> = BTreeSet::new();
        let mut irr_registrants: BTreeSet<Asn> = BTreeSet::new();
        let mut rov_deployers: BTreeSet<Asn> = BTreeSet::new();
        let mut irr_filterers: BTreeSet<Asn> = BTreeSet::new();
        let mut contact_diligent: BTreeSet<Asn> = BTreeSet::new();
        let mut rpki_incorrect: BTreeSet<(Asn, Prefix)> = BTreeSet::new();
        let mut irr_stale_slots: BTreeSet<(Asn, Prefix)> = BTreeSet::new();
        for ((is_member, is_cdn, size), pool) in &cells {
            let model = config.behaviors.model(*is_member, *is_cdn, *size);
            rpki_registrants.extend(quota_mark(&mut rng, pool, model.rpki_registers));
            irr_registrants.extend(quota_mark(&mut rng, pool, model.irr_registers));
            rov_deployers.extend(quota_mark(&mut rng, pool, model.rov_deploys));
            irr_filterers.extend(quota_mark(&mut rng, pool, model.irr_filters_customers));
            contact_diligent.extend(quota_mark(&mut rng, pool, model.contact_current));
            let rpki_slots: Vec<(Asn, Prefix)> = pool
                .iter()
                .filter(|a| rpki_registrants.contains(a))
                .flat_map(|&a| world.all_resources(a).into_iter().map(move |p| (a, p)))
                .collect();
            rpki_incorrect.extend(quota_mark(&mut rng, &rpki_slots, 1.0 - model.rpki_correct));
            let irr_slots: Vec<(Asn, Prefix)> = pool
                .iter()
                .filter(|a| irr_registrants.contains(a))
                .flat_map(|&a| world.all_resources(a).into_iter().map(move |p| (a, p)))
                .collect();
            irr_stale_slots.extend(quota_mark(&mut rng, &irr_slots, model.irr_stale));
        }

        let not_after = Date::ymd(2030, 1, 1);
        for &asn in &all_asns {
            if !rpki_registrants.contains(&asn) {
                continue;
            }
            let info = world.topology.info(asn).expect("known");
            let ca = org_ca[&info.org];
            // Registration happens late in the study window — and for
            // members, mostly after joining (drives Fig. 6's divergence).
            let base_reg_year = 2018 + rng.random_range(0..4i32);
            let mut not_before = Date::ymd(
                base_reg_year,
                rng.random_range(1..=12u8),
                rng.random_range(1..=28u8),
            );
            if let Some(record) = manrs.record_of(asn) {
                if record.joined > not_before {
                    not_before = record.joined;
                }
            }
            if not_before > snapshot {
                not_before = snapshot;
            }
            for prefix in world.all_resources(asn) {
                let correct = !rpki_incorrect.contains(&(asn, prefix));
                let roa = if correct {
                    // maxLength leaves room for the generator's one-level
                    // de-aggregation (v4 children stop at /24, v6 at /48).
                    let cap = match prefix {
                        Prefix::V4(_) => 24,
                        Prefix::V6(_) => 48,
                    };
                    let max_length = (prefix.len() + 1).min(cap).max(prefix.len());
                    Roa::new(prefix, asn, max_length, not_before, not_after)
                        .expect("valid maxLength")
                } else if rng.random_bool(config.perturbations.as0_misconfiguration * 20.0) {
                    // AS0 slip (rare even among misconfigurations).
                    Roa::exact(prefix, Asn::ZERO, not_before, not_after)
                } else if rng.random_bool(0.5) {
                    // Wrong origin: usually a related AS (the paper's
                    // Table 1 finds >50% of mismatching origins are
                    // siblings or customers/providers).
                    let wrong = related_wrong_origin(&world, asn, &all_asns, &mut rng);
                    Roa::exact(prefix, wrong, not_before, not_after)
                } else {
                    // maxLength too tight for the announced children.
                    Roa::exact(prefix, asn, not_before, not_after)
                };
                repository.sign_roa(ca, roa).expect("block within org CA");
            }
        }

        // --- IRR databases -------------------------------------------------
        let mut authoritative: BTreeMap<Rir, IrrDatabase> = Rir::ALL
            .into_iter()
            .map(|rir| (rir, IrrDatabase::new(rir.name().to_uppercase(), Some(rir))))
            .collect();
        let mut radb = IrrDatabase::new("RADB", None);
        for &asn in &all_asns {
            if !irr_registrants.contains(&asn) {
                continue;
            }
            let info = world.topology.info(asn).expect("known");
            for prefix in world.all_resources(asn) {
                let stale = irr_stale_slots.contains(&(asn, prefix));
                let (origin, last_modified) = if stale {
                    // Stale object: the outdated origin from the era the
                    // block changed hands — usually the previous holder,
                    // a sibling or a direct customer/provider (the
                    // paper's Table 1: >50% Sibling/C-P).
                    let wrong = related_wrong_origin(&world, asn, &all_asns, &mut rng);
                    let year = 2015 + rng.random_range(0..3i32);
                    (wrong, Date::ymd(year, rng.random_range(1..=12u8), 15))
                } else {
                    let year = 2019 + rng.random_range(0..3i32);
                    (asn, Date::ymd(year, rng.random_range(1..=12u8), 15))
                };
                let object = RouteObject {
                    prefix,
                    origin,
                    descr: world.orgs.org(info.org).expect("org").name.to_string(),
                    mnt_by: format!("MAINT-{}", info.org),
                    source: String::new(), // set below by destination DB
                    last_modified,
                };
                // Authoritative database of the region ~60%, RADB 40%.
                if rng.random_bool(0.6) {
                    let db = authoritative.get_mut(&info.rir).expect("all RIRs");
                    let mut obj = object.clone();
                    obj.source = db.source.clone();
                    db.add_route(obj);
                } else {
                    let mut obj = object;
                    obj.source = "RADB".into();
                    radb.add_route(obj);
                }
            }
        }
        // Contact information (MANRS Action 3): aut-num objects with an
        // admin-c go to the region's authoritative database; a parallel
        // PeeringDB record may exist, fresher for diligent networks.
        let mut peeringdb = PeeringDb::new();
        for &asn in &all_asns {
            let info = world.topology.info(asn).expect("known");
            let current = contact_diligent.contains(&asn);
            let db = authoritative.get_mut(&info.rir).expect("all RIRs");
            db.add_aut_num(AutNum {
                asn,
                as_name: format!("AS{}-{}", asn.value(), info.country),
                mnt_by: format!("MAINT-{}", info.org),
                source: db.source.clone(),
                admin_c: if current {
                    format!("noc-{}@{}.example", asn.value(), info.country.to_lowercase())
                } else {
                    String::new() // contact never filled in or scrubbed
                },
            });
            if rng.random_bool(0.7) {
                let updated = if current {
                    Date::ymd(2021 + rng.random_range(0..2i32), rng.random_range(1..=4u8), 10)
                } else {
                    Date::ymd(2016 + rng.random_range(0..3i32), rng.random_range(1..=12u8), 10)
                };
                peeringdb.upsert(PeeringDbRecord {
                    asn,
                    contact: format!("peering-{}@example.net", asn.value()),
                    updated,
                });
            }
        }

        // as-sets: every transit publishes AS-<n>-CUSTOMERS listing its
        // direct customers plus their customer sets — the filter-list
        // machinery IXPs and clouds expand (§2.2). Diligent networks
        // keep them current; others let entries drift (a dropped
        // customer).
        for &asn in &all_asns {
            let customers = world.topology.customers(asn);
            if customers.is_empty() {
                continue;
            }
            let model = model_of(asn);
            let mut members_list: Vec<manrs_irr::AsSetMember> = Vec::new();
            for &c in customers {
                if rng.random_bool(model.irr_stale) {
                    continue; // stale set: this customer never got added
                }
                if !world.topology.customers(c).is_empty() {
                    members_list
                        .push(manrs_irr::AsSetMember::Set(format!("AS-{}-CUSTOMERS", c.value())));
                }
                members_list.push(manrs_irr::AsSetMember::Asn(c));
            }
            radb.add_as_set(manrs_irr::AsSet {
                name: format!("AS-{}-CUSTOMERS", asn.value()),
                members: members_list,
                mnt_by: format!("MAINT-{}", world.topology.info(asn).expect("known").org),
                source: "RADB".into(),
            });
        }

        let mut irr = IrrRegistry::new();
        for (_, db) in authoritative {
            irr.add_database(db);
        }
        irr.add_database(radb);

        // --- Announcement perturbations --------------------------------
        // Quiescent ASes hold (and may have registered) space but
        // announce nothing — the paper's trivially-conformant members
        // and Finding 7.0's quiescent unregistered ASes. Vantage
        // candidates stay active: real collectors peer with live
        // networks.
        let quiescent: BTreeSet<Asn> = all_asns
            .iter()
            .copied()
            .filter(|asn| {
                world.topology.info(*asn).map(|i| i.kind) == Some(NetworkKind::Stub)
                    && rng.random_bool(config.perturbations.quiescent)
            })
            .collect();
        // Start from the intended table minus quiescent origins, then
        // mis-originate.
        let mut raw: Vec<(Prefix, Asn)> = world
            .intended
            .entries()
            .iter()
            .filter(|(_, origin)| !quiescent.contains(origin))
            .copied()
            .collect();
        for &asn in &all_asns {
            if quiescent.contains(&asn) {
                continue;
            }
            let info = world.topology.info(asn).expect("known");
            // Sibling mis-origination: announce one of a sibling's
            // blocks from this AS.
            let siblings = world.orgs.asns_of(info.org);
            if siblings.len() > 1 && rng.random_bool(config.perturbations.sibling_misorigin) {
                let victim = *siblings.iter().find(|s| **s != asn).expect("len > 1");
                if let Some(block) = world.all_resources(victim).first() {
                    raw.push((*block, asn));
                }
            }
            // Customer/provider mis-origination.
            if rng.random_bool(config.perturbations.neighbor_misorigin) {
                let neighbor = world
                    .topology
                    .providers(asn)
                    .first()
                    .or_else(|| world.topology.customers(asn).first())
                    .copied();
                if let Some(n) = neighbor {
                    if let Some(block) = world.all_resources(n).first() {
                        raw.push((*block, asn));
                    }
                }
            }
            // Unrelated fat-finger.
            if rng.random_bool(config.perturbations.unrelated_misorigin) {
                let victim = *all_asns.choose(&mut rng).expect("nonempty");
                if victim != asn && !world.orgs.are_siblings(victim, asn) {
                    if let Some(block) = world.all_resources(victim).first() {
                        raw.push((*block, asn));
                    }
                }
            }
        }

        // --- Policies -------------------------------------------------------
        let mut policies = PolicyTable::with_default(PolicySet::OPEN);
        let mut truth_rov = BTreeSet::new();
        let mut truth_irr_filter = BTreeSet::new();
        for &asn in &all_asns {
            let rov = rov_deployers.contains(&asn);
            let irr_filter = irr_filterers.contains(&asn);
            let is_cdn_member =
                manrs.program_of(asn, snapshot) == Some(ManrsProgram::Cdn);
            let mut set = PolicySet::OPEN;
            if rov {
                set = set.with(PolicyExtension::Rov);
                truth_rov.insert(asn);
            }
            if irr_filter {
                set = set.with(PolicyExtension::IrrCustomer);
                if is_cdn_member {
                    set = set.with(PolicyExtension::IrrPeer);
                }
                truth_irr_filter.insert(asn);
            }
            if !set.is_empty() {
                policies.set(asn, set);
            }
        }
        // IXP route servers: the configured number of highest-peer-degree
        // ASes validate on behalf of their members (lowest ASN breaks
        // degree ties, keeping the designation seed-stable).
        if config.route_servers > 0 {
            let mut by_degree: Vec<(usize, Asn)> = all_asns
                .iter()
                .map(|&asn| (world.topology.peers(asn).len(), asn))
                .collect();
            by_degree.sort_by_key(|&(deg, asn)| (std::cmp::Reverse(deg), asn));
            for &(_, asn) in by_degree.iter().take(config.route_servers) {
                policies.set(asn, policies.get(asn).union(PolicySet::ROUTE_SERVER));
            }
        }

        // --- Validation and propagation -----------------------------------
        let (vrps, rp_report) = RelyingParty::new(snapshot).validate(&repository);
        // Whole-table validation runs through the compiled batch
        // indexes: one build amortized over every (prefix, origin),
        // thread-chunked, order-preserving.
        let rpki_index = CompiledVrpIndex::build(&vrps);
        let irr_index = CompiledIrrIndex::build(&irr);
        let statuses = validate_pairs_batch(par, &rpki_index, &irr_index, &raw);
        let announcements: Vec<Announcement> = raw
            .iter()
            .zip(statuses)
            .map(|(&(prefix, origin), (rpki, irr))| {
                Announcement::new(prefix, origin, rpki, irr)
            })
            .collect();

        // Vantage points: the largest cones (RouteViews-like full-table
        // peers) plus a few mid-rank viewpoints for diversity.
        let ranked = cones.ranked();
        let mut vantages: Vec<Asn> = ranked
            .iter()
            .copied()
            .take(config.vantage_count.saturating_sub(config.vantage_count / 4))
            .collect();
        let mid_start = ranked.len() / 4;
        for i in 0..config.vantage_count / 4 {
            if let Some(asn) = ranked.get(mid_start + i * 7) {
                if !vantages.contains(asn) {
                    vantages.push(*asn);
                }
            }
        }

        // Scenario worlds have a handful of vantages and thousands of
        // (origin, filter-class) classes, so `Auto` resolves to the
        // reverse per-vantage traversal here.
        let rib = TableCollector::new(&world.topology, &policies, &vantages)
            .parallel(*par)
            .plan()
            .collect(&announcements);
        let ihr = build_snapshot(&rib, &world.topology);
        let mut observed_table = Prefix2As::new();
        for obs in rib.visible() {
            observed_table.add(obs.prefix, obs.origin);
        }

        ScenarioWorld {
            config,
            world,
            cones,
            manrs,
            repository,
            vrps,
            rp_report,
            irr,
            peeringdb,
            policies,
            announcements,
            observed_table,
            rib,
            ihr,
            vantages,
            active_since,
            truth_rov,
            truth_irr_filter,
        }
    }
}

impl ScenarioWorld {
    /// Starts building a world from a configuration. See
    /// [`ScenarioWorldBuilder`].
    pub fn builder(config: ScenarioConfig) -> ScenarioWorldBuilder {
        ScenarioWorldBuilder { config, parallel: ParallelConfig::from_env() }
    }

    /// Member ASNs at the snapshot date.
    pub fn member_asns(&self) -> BTreeSet<Asn> {
        self.manrs.member_asns(self.config.snapshot_date)
    }

    /// Convenience: is this AS a MANRS member at the snapshot date?
    pub fn is_member(&self, asn: Asn) -> bool {
        self.manrs.is_member_as(asn, self.config.snapshot_date)
    }
}

/// Quota (stratified) sampling: marks `round(p·n)` elements of `pool`,
/// chosen uniformly at random. Unlike per-element Bernoulli draws, the
/// realized rate is pinned to `p` for every cell at every seed — which
/// element exhibits the behaviour stays random, but class-level rates
/// (the quantities the paper's §8 orderings compare) cannot drift.
fn quota_mark<T: Ord + Copy>(rng: &mut StdRng, pool: &[T], p: f64) -> BTreeSet<T> {
    let mut shuffled = pool.to_vec();
    shuffled.shuffle(rng);
    let quota = ((pool.len() as f64) * p).round() as usize;
    shuffled.truncate(quota.min(pool.len()));
    shuffled.into_iter().collect()
}

/// Picks a plausible "wrong origin" for a misconfigured registration:
/// usually a sibling AS or a direct customer/provider (a prefix that
/// changed hands within the business), occasionally an unrelated AS.
fn related_wrong_origin(
    world: &GeneratedWorld,
    asn: Asn,
    all_asns: &[Asn],
    rng: &mut StdRng,
) -> Asn {
    let info = world.topology.info(asn).expect("known AS");
    if rng.random_bool(0.75) {
        // Related: sibling first, then neighbor.
        let sibling = world
            .orgs
            .asns_of(info.org)
            .iter()
            .copied()
            .find(|s| *s != asn);
        if let Some(s) = sibling {
            if rng.random_bool(0.5) {
                return s;
            }
        }
        let neighbor = world
            .topology
            .providers(asn)
            .first()
            .or_else(|| world.topology.customers(asn).first())
            .copied();
        if let Some(n) = neighbor {
            return n;
        }
        if let Some(s) = sibling {
            return s;
        }
    }
    *all_asns.choose(rng).expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn built() -> ScenarioWorld {
        ScenarioWorld::builder(ScenarioConfig::small(42)).build()
    }

    #[test]
    fn build_is_deterministic() {
        let a = built();
        let b = built();
        assert_eq!(a.announcements, b.announcements);
        assert_eq!(a.vantages, b.vantages);
        assert_eq!(a.manrs.members(), b.manrs.members());
        assert_eq!(a.vrps.len(), b.vrps.len());
    }

    #[test]
    fn parallel_build_matches_serial() {
        let serial = ScenarioWorld::builder(ScenarioConfig::small(42))
            .parallel(ParallelConfig::serial())
            .build();
        let parallel = ScenarioWorld::builder(ScenarioConfig::small(42))
            .parallel(ParallelConfig::with_threads(4))
            .build();
        assert_eq!(serial.announcements, parallel.announcements);
        assert_eq!(serial.vantages, parallel.vantages);
        assert_eq!(serial.rib.observations, parallel.rib.observations);
        assert_eq!(serial.rib.visible_count(), parallel.rib.visible_count());
    }

    #[test]
    fn world_is_populated() {
        let w = built();
        assert!(!w.announcements.is_empty());
        assert!(!w.vrps.is_empty(), "some ROAs must validate");
        assert!(w.irr.route_count() > 0);
        assert!(!w.member_asns().is_empty());
        assert!(!w.truth_rov.is_empty());
        assert!(!w.ihr.prefix_origins.is_empty());
        assert!(!w.ihr.transits.is_empty());
        assert_eq!(w.rp_report.accepted, w.vrps.len());
    }

    #[test]
    fn most_announcements_are_visible() {
        let w = built();
        let visible = w.rib.visible_count();
        let total = w.announcements.len();
        assert!(
            visible * 10 >= total * 8,
            "at least 80% visibility expected, got {visible}/{total}"
        );
    }

    #[test]
    fn statuses_are_mixed() {
        use manrs_rpki::RpkiStatus;
        let w = built();
        let valid = w.announcements.iter().filter(|a| a.rpki == RpkiStatus::Valid).count();
        let invalid = w.announcements.iter().filter(|a| a.rpki.is_invalid()).count();
        let notfound = w
            .announcements
            .iter()
            .filter(|a| a.rpki == RpkiStatus::NotFound)
            .count();
        assert!(valid > 0 && invalid > 0 && notfound > 0, "{valid}/{invalid}/{notfound}");
        let irr_valid = w
            .announcements
            .iter()
            .filter(|a| a.irr == manrs_irr::IrrStatus::Valid)
            .count();
        assert!(irr_valid > valid, "IRR adoption must exceed RPKI adoption");
    }

    #[test]
    fn as_sets_expand_to_customer_cones() {
        use manrs_irr::expand_as_set;
        let w = built();
        // Pick a transit with customers; its as-set expansion must be a
        // subset of its customer cone (stale entries may be missing,
        // never extra).
        let transit = w
            .world
            .topology
            .asns()
            .find(|a| w.world.topology.customers(*a).len() >= 3)
            .expect("a transit with customers");
        let expansion = expand_as_set(&w.irr, &format!("AS-{}-CUSTOMERS", transit.value()));
        assert!(!expansion.asns.is_empty(), "expansion must find customers");
        let mut cone: std::collections::BTreeSet<Asn> = std::collections::BTreeSet::new();
        let mut stack = vec![transit];
        while let Some(u) = stack.pop() {
            for &c in w.world.topology.customers(u) {
                if cone.insert(c) {
                    stack.push(c);
                }
            }
        }
        for asn in &expansion.asns {
            assert!(cone.contains(asn), "{asn} in as-set but outside the cone");
        }
    }

    #[test]
    fn contact_data_is_generated() {
        let w = built();
        assert!(!w.peeringdb.is_empty());
        // Every AS has an aut-num (possibly with empty contact).
        for asn in w.world.topology.asns() {
            assert!(w.irr.aut_num(asn).is_some(), "{asn} missing aut-num");
        }
    }

    #[test]
    fn members_are_more_contactable() {
        use manrs_core::action3_summary;
        let w = built();
        let date = w.config.snapshot_date;
        let members: Vec<_> = w.member_asns().into_iter().collect();
        let non: Vec<_> = w
            .world
            .topology
            .asns()
            .filter(|a| !w.is_member(*a))
            .collect();
        let ms = action3_summary(members.iter(), &w.irr, &w.peeringdb, date, 365);
        let ns = action3_summary(non.iter(), &w.irr, &w.peeringdb, date, 365);
        let rate = |s: &manrs_core::Action3Summary| s.conformant as f64 / s.total.max(1) as f64;
        assert!(
            rate(&ms) > rate(&ns),
            "members must publish contacts more often ({:.2} vs {:.2})",
            rate(&ms),
            rate(&ns)
        );
    }

    #[test]
    fn active_since_covers_every_as() {
        let w = built();
        for asn in w.world.topology.asns() {
            assert!(w.active_since.contains_key(&asn));
        }
    }
}
