//! Time series over a built world, driven by the incremental
//! [`TimelineEngine`].
//!
//! Two granularities, matching the paper's two longitudinal analyses:
//!
//! * **Yearly snapshots 2015–2022** (Figs. 2, 4a, 4b, 6): the routed
//!   table at each year contains the announcements of ASes active by
//!   then; the VRP set is the repository validated at that date (ROAs
//!   carry real validity windows, so history falls out of RFC 6487
//!   currency checks); membership follows join dates.
//! * **Weekly snapshots Feb–May 2022** (§8.5 stability): routing held
//!   fixed, registration churning — a few ROAs and route objects appear
//!   or disappear each week, statuses are re-validated over the same
//!   visible set.
//!
//! Both are expressed the same way: a list of [`SeriesStep`]s (a date
//! plus the [`RegistryDelta`]s landing on it) replayed through one
//! [`TimelineEngine`] by the [`SnapshotSeries`] iterator. The yearly
//! series derives its deltas from join and activation dates; the weekly
//! series draws churn deltas from a seeded RNG, so equal seeds give
//! equal delta streams.

use crate::build::ScenarioWorld;
use crate::engine::{RegistryDelta, TimelineEngine, TimelineSnapshot};
use manrs_bgp::Announcement;
use manrs_irr::{CompiledIrrIndex, IrrRegistry};
use manrs_net::{Asn, BatchScratch, Date, Prefix};
use manrs_rpki::{CompiledVrpIndex, VrpSet};
use manrs_topology::Prefix2As;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::{BTreeSet, VecDeque};

/// One yearly snapshot of the world.
pub struct YearlySnapshot {
    /// The snapshot date (January 1 of the year, except the final
    /// snapshot which is the paper's May 1, 2022).
    pub date: Date,
    /// The routed table as of the date.
    pub table: Prefix2As,
    /// VRPs validated at the date.
    pub vrps: VrpSet,
    /// Member ASNs as of the date.
    pub members: BTreeSet<Asn>,
}

/// The paper's yearly series: January 1 of 2015–2022, with the 2022
/// point at May 1 (the headline snapshot).
pub fn yearly_dates() -> Vec<Date> {
    let mut dates: Vec<Date> = (2015..2022).map(|y| Date::ymd(y, 1, 1)).collect();
    dates.push(Date::ymd(2022, 5, 1));
    dates
}

/// One point of a timeline: the date to advance the engine to, plus the
/// registry deltas landing on it.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesStep {
    /// The step's snapshot date.
    pub date: Date,
    /// The deltas applied before materializing the snapshot.
    pub deltas: Vec<RegistryDelta>,
}

/// The yearly delta stream: the first date carries no deltas (the
/// engine initializes there); each later date carries the membership
/// joins and origin activations that happened since the previous one.
/// ROA validity-window crossings need no deltas — the engine's event
/// queue fires them as time advances.
pub fn yearly_steps(world: &ScenarioWorld) -> Vec<SeriesStep> {
    let dates = yearly_dates();
    let mut steps = Vec::with_capacity(dates.len());
    let mut prev_members = world.manrs.member_asns(dates[0]);
    let mut prev_date = dates[0];
    steps.push(SeriesStep { date: dates[0], deltas: Vec::new() });
    for &date in &dates[1..] {
        let members = world.manrs.member_asns(date);
        let mut deltas: Vec<RegistryDelta> = members
            .difference(&prev_members)
            .map(|&asn| RegistryDelta::MemberJoined { asn })
            .collect();
        for (&origin, &since) in &world.active_since {
            if prev_date < since && since <= date {
                deltas.push(RegistryDelta::OriginActivated { origin });
            }
        }
        steps.push(SeriesStep { date, deltas });
        prev_members = members;
        prev_date = date;
    }
    steps
}

/// The weekly churn delta stream (§8.5), seeded: each week after the
/// first, every ROA is independently revoked with probability `churn`,
/// and `ceil(intended × churn)` route objects are dropped at random
/// intended announcements. Equal seeds produce equal streams; the RNG
/// is consumed identically even when a delta turns out to be a no-op
/// (re-revoking an already-revoked ROA), so streams at different churn
/// rates stay comparable.
pub fn weekly_steps(
    world: &ScenarioWorld,
    weeks: usize,
    churn: f64,
    seed: u64,
) -> Vec<SeriesStep> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5745_454B);
    let base_date = Date::ymd(2022, 2, 1);
    let roa_ids: Vec<_> = world.repository.roas().map(|r| r.id).collect();
    let entries = world.world.intended.entries();
    let mut steps = Vec::with_capacity(weeks);
    for week in 0..weeks {
        let date = base_date.plus_days(7 * week as i64);
        let mut deltas = Vec::new();
        if week > 0 {
            for id in &roa_ids {
                if rng.random_bool(churn) {
                    deltas.push(RegistryDelta::RoaRemoved { roa: *id });
                }
            }
            if !entries.is_empty() {
                for _ in 0..((entries.len() as f64 * churn).ceil() as usize) {
                    let (prefix, origin) = entries[rng.random_range(0..entries.len())];
                    deltas.push(RegistryDelta::RouteObjectRemoved { prefix, origin });
                }
            }
        }
        steps.push(SeriesStep { date, deltas });
    }
    steps
}

/// An iterator of [`TimelineSnapshot`]s: one [`TimelineEngine`] stepped
/// through a list of [`SeriesStep`]s, materializing after each. This is
/// the unified front for both of the paper's time series:
///
/// ```no_run
/// use manrs_scenario::{ScenarioConfig, ScenarioWorld, SnapshotSeries};
///
/// let world = ScenarioWorld::builder(ScenarioConfig::small(42)).build();
/// for snap in SnapshotSeries::yearly(&world) {
///     println!("{:?}: {} routed prefixes", snap.date, snap.table.len());
/// }
/// let weekly: Vec<_> = SnapshotSeries::weekly(&world, 12, 0.004).collect();
/// # let _ = weekly;
/// ```
///
/// The engine is created lazily at the first step's date, so an empty
/// step list yields nothing and does no work.
pub struct SnapshotSeries<'w> {
    world: &'w ScenarioWorld,
    engine: Option<TimelineEngine<'w>>,
    steps: VecDeque<SeriesStep>,
}

impl<'w> SnapshotSeries<'w> {
    /// A series over explicit steps. Dates must be non-decreasing (the
    /// engine only moves forward in time).
    pub fn from_steps(world: &'w ScenarioWorld, steps: Vec<SeriesStep>) -> Self {
        SnapshotSeries { world, engine: None, steps: steps.into() }
    }

    /// The paper's yearly series (see [`yearly_steps`]).
    pub fn yearly(world: &'w ScenarioWorld) -> Self {
        Self::from_steps(world, yearly_steps(world))
    }

    /// The weekly churn series, seeded from the world's scenario seed so
    /// the delta stream is reproducible per world (see [`weekly_steps`]).
    pub fn weekly(world: &'w ScenarioWorld, weeks: usize, churn: f64) -> Self {
        Self::weekly_seeded(world, weeks, churn, world.config.seed)
    }

    /// [`SnapshotSeries::weekly`] with an explicit seed for the churn
    /// stream, independent of the world's seed.
    pub fn weekly_seeded(world: &'w ScenarioWorld, weeks: usize, churn: f64, seed: u64) -> Self {
        Self::from_steps(world, weekly_steps(world, weeks, churn, seed))
    }

    /// The engine driving the series (`None` until the first snapshot
    /// has been produced). Exposes registries and work counters
    /// mid-iteration.
    pub fn engine(&self) -> Option<&TimelineEngine<'w>> {
        self.engine.as_ref()
    }
}

impl<'w> Iterator for SnapshotSeries<'w> {
    type Item = TimelineSnapshot;

    fn next(&mut self) -> Option<TimelineSnapshot> {
        let step = self.steps.pop_front()?;
        match &mut self.engine {
            None => {
                let mut engine = TimelineEngine::new(self.world, step.date);
                engine.apply_all(step.deltas);
                self.engine = Some(engine);
            }
            Some(engine) => engine.step(step.date, step.deltas),
        }
        Some(self.engine.as_ref().expect("just set").materialize())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.steps.len(), Some(self.steps.len()))
    }
}

impl ExactSizeIterator for SnapshotSeries<'_> {}

/// Re-validates the world's announcements against arbitrary registries
/// (used by ablations and by tests that perturb registries).
pub fn revalidate(
    world: &ScenarioWorld,
    vrps: &VrpSet,
    irr: &IrrRegistry,
) -> Vec<Announcement> {
    let rpki_index = CompiledVrpIndex::build(vrps);
    let irr_index = CompiledIrrIndex::build(irr);
    let pairs: Vec<(Prefix, Asn)> =
        world.announcements.iter().map(|a| (a.prefix, a.origin)).collect();
    let mut scratch = BatchScratch::new();
    let (mut rpki_out, mut irr_out) = (Vec::new(), Vec::new());
    rpki_index.validate_batch_into(&pairs, &mut scratch, &mut rpki_out);
    irr_index.validate_batch_into(&pairs, &mut scratch, &mut irr_out);
    world
        .announcements
        .iter()
        .zip(rpki_out)
        .zip(irr_out)
        .map(|((a, rpki), irr)| Announcement::new(a.prefix, a.origin, rpki, irr))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use manrs_ihr::IhrSnapshot;
    use manrs_rpki::{RelyingParty, Vrp};

    fn world() -> ScenarioWorld {
        ScenarioWorld::builder(ScenarioConfig::small(7)).build()
    }

    fn sorted_vrps(set: &VrpSet) -> Vec<Vrp> {
        let mut v: Vec<Vrp> = set.iter().into_iter().copied().collect();
        v.sort();
        v
    }

    #[test]
    fn yearly_series_shape() {
        let dates = yearly_dates();
        assert_eq!(dates.len(), 8);
        assert_eq!(dates[0], Date::ymd(2015, 1, 1));
        assert_eq!(*dates.last().unwrap(), Date::ymd(2022, 5, 1));
        let steps = yearly_steps(&world());
        assert_eq!(steps.len(), 8);
        assert!(steps[0].deltas.is_empty(), "engine initializes at the first date");
    }

    #[test]
    fn yearly_snapshots_grow() {
        let w = world();
        let snaps: Vec<_> = SnapshotSeries::yearly(&w).collect();
        assert_eq!(snaps.len(), 8);
        // Routed table, membership and VRP set all grow monotonically
        // over the years (nothing is removed in the yearly model).
        for pair in snaps.windows(2) {
            assert!(pair[0].table.len() <= pair[1].table.len());
            assert!(pair[0].members.len() <= pair[1].members.len());
            assert!(pair[0].vrps.len() <= pair[1].vrps.len());
        }
        assert!(snaps[0].members.len() < snaps[7].members.len());
        assert!(snaps[0].vrps.len() < snaps[7].vrps.len());
    }

    #[test]
    fn yearly_series_matches_full_recompute() {
        // The incremental engine must agree with the direct definition:
        // at each date, table = intended entries of active ASes, VRPs =
        // repository validated at the date, members = joins by the date.
        let w = world();
        for snap in SnapshotSeries::yearly(&w) {
            let date = snap.date;
            let mut table = Prefix2As::new();
            for (prefix, origin) in w.world.intended.entries() {
                if w.active_since.get(origin).map(|d| *d <= date).unwrap_or(false) {
                    table.add(*prefix, *origin);
                }
            }
            let mut want: Vec<_> = table.entries().to_vec();
            let mut got: Vec<_> = snap.table.entries().to_vec();
            want.sort();
            got.sort();
            assert_eq!(got, want, "routed table at {date:?}");

            let (vrps, _) = RelyingParty::new(date).validate(&w.repository);
            assert_eq!(sorted_vrps(&snap.vrps), sorted_vrps(&vrps), "VRPs at {date:?}");
            assert_eq!(snap.members, w.manrs.member_asns(date), "members at {date:?}");
        }
    }

    #[test]
    fn weekly_snapshots_hold_visibility_fixed() {
        let w = world();
        let weeks: Vec<_> = SnapshotSeries::weekly(&w, 4, 0.01).collect();
        assert_eq!(weeks.len(), 4);
        let visible = w.rib.visible_count();
        for snap in &weeks {
            assert_eq!(snap.ihr.prefix_origins.len(), visible);
        }
    }

    #[test]
    fn weekly_churn_changes_some_statuses() {
        let w = world();
        let weeks: Vec<_> = SnapshotSeries::weekly(&w, 6, 0.02).collect();
        let first = &weeks[0].ihr;
        let last = &weeks[5].ihr;
        let changed = first
            .prefix_origins
            .iter()
            .zip(&last.prefix_origins)
            .filter(|(a, b)| a.rpki != b.rpki || a.irr != b.irr)
            .count();
        assert!(changed > 0, "churn must flip some statuses");
        // But most stay stable, like the paper found.
        assert!(changed * 2 < first.prefix_origins.len());
    }

    #[test]
    fn zero_churn_only_improves_statuses() {
        // Even with zero churn, ROAs whose validity windows open during
        // the span activate — statuses may flip away from NotFound but
        // never toward it, and the IRR (no validity windows) stays
        // frozen.
        let w = world();
        let weeks: Vec<_> = SnapshotSeries::weekly(&w, 3, 0.0).collect();
        for pair in weeks.windows(2) {
            let nf = |snap: &IhrSnapshot| {
                snap.prefix_origins
                    .iter()
                    .filter(|po| po.rpki == manrs_rpki::RpkiStatus::NotFound)
                    .count()
            };
            assert!(nf(&pair[1].ihr) <= nf(&pair[0].ihr), "NotFound count grew without churn");
            for (a, b) in pair[0].ihr.prefix_origins.iter().zip(&pair[1].ihr.prefix_origins) {
                assert_eq!(a.irr, b.irr, "IRR status changed without churn");
            }
        }
    }

    #[test]
    fn zero_weeks_is_a_no_op() {
        // Regression: asking for an empty series builds no engine and
        // yields nothing, at any churn rate.
        let w = world();
        let mut series = SnapshotSeries::weekly(&w, 0, 0.5);
        assert_eq!(series.len(), 0);
        assert!(series.next().is_none());
        assert!(series.engine().is_none(), "no step, no engine");
    }

    #[test]
    fn weekly_seed_threading() {
        let w = world();
        let a = weekly_steps(&w, 4, 0.05, 1);
        let b = weekly_steps(&w, 4, 0.05, 1);
        let c = weekly_steps(&w, 4, 0.05, 2);
        assert_eq!(a, b, "equal seeds, equal delta streams");
        assert_ne!(a, c, "different seeds, different delta streams");
    }

    #[test]
    fn revalidate_round_trips_unchanged_registries() {
        let w = world();
        let again = revalidate(&w, &w.vrps, &w.irr);
        assert_eq!(again, w.announcements);
    }
}
