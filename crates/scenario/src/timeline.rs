//! Time series over a built world.
//!
//! Two granularities, matching the paper's two longitudinal analyses:
//!
//! * **Yearly snapshots 2015–2022** (Figs. 2, 4a, 4b, 6): the routed
//!   table at each year contains the announcements of ASes active by
//!   then; the VRP set is the repository validated at that date (ROAs
//!   carry real validity windows, so history falls out of RFC 6487
//!   currency checks); membership follows join dates.
//! * **Weekly snapshots Feb–May 2022** (§8.5 stability): routing held
//!   fixed, registration churning — a few ROAs and route objects appear
//!   or disappear each week, statuses are re-validated, and the IHR
//!   prefix-origin dataset is rebuilt over the same visible set.

use crate::build::ScenarioWorld;
use manrs_bgp::Announcement;
use manrs_ihr::{IhrSnapshot, PrefixOriginRecord};
use manrs_irr::{validate_irr, IrrRegistry};
use manrs_net::{Asn, Date};
use manrs_rpki::{validate_origin, RelyingParty, VrpSet};
use manrs_topology::Prefix2As;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeSet;

/// One yearly snapshot of the world.
pub struct YearlySnapshot {
    /// The snapshot date (January 1 of the year, except the final
    /// snapshot which is the paper's May 1, 2022).
    pub date: Date,
    /// The routed table as of the date.
    pub table: Prefix2As,
    /// VRPs validated at the date.
    pub vrps: VrpSet,
    /// Member ASNs as of the date.
    pub members: BTreeSet<Asn>,
}

/// The paper's yearly series: January 1 of 2015–2022, with the 2022
/// point at May 1 (the headline snapshot).
pub fn yearly_dates() -> Vec<Date> {
    let mut dates: Vec<Date> = (2015..2022).map(|y| Date::ymd(y, 1, 1)).collect();
    dates.push(Date::ymd(2022, 5, 1));
    dates
}

/// Builds the yearly snapshots for a world.
pub fn yearly_snapshots(world: &ScenarioWorld) -> Vec<YearlySnapshot> {
    yearly_dates()
        .into_iter()
        .map(|date| {
            let mut table = Prefix2As::new();
            for (prefix, origin) in world.world.intended.entries() {
                let active = world
                    .active_since
                    .get(origin)
                    .map(|d| *d <= date)
                    .unwrap_or(false);
                if active {
                    table.add(*prefix, *origin);
                }
            }
            let (vrps, _) = RelyingParty::new(date).validate(&world.repository);
            YearlySnapshot {
                date,
                table,
                vrps,
                members: world.manrs.member_asns(date),
            }
        })
        .collect()
}

/// Weekly registration-churn snapshots (§8.5).
///
/// Starting from the world's registries, each week flips a small number
/// of registrations: some ASes lose a ROA (revoked/expired), some gain
/// one, some IRR objects churn. The visible prefix-origin set is held
/// fixed (routing does not change in this model — the paper likewise
/// observed prefix sets to be stable) and statuses are re-validated.
pub fn weekly_snapshots(world: &ScenarioWorld, weeks: usize, churn: f64) -> Vec<IhrSnapshot> {
    let mut rng = StdRng::seed_from_u64(world.config.seed ^ 0x5745_454B);
    let mut repository = world.repository.clone();
    let mut irr = world.irr.clone();
    let base_date = Date::ymd(2022, 2, 1);
    let mut snapshots = Vec::with_capacity(weeks);
    let roa_ids: Vec<_> = repository.roas().map(|r| r.id).collect();
    for week in 0..weeks {
        let date = base_date.plus_days(7 * week as i64);
        if week > 0 {
            // Churn: revoke a few ROAs...
            for id in &roa_ids {
                if rng.random_bool(churn) {
                    let _ = repository.revoke_roa(*id);
                }
            }
            // ...and churn a few IRR route objects (drop one origin's
            // object at a random announcement's prefix).
            let entries = world.world.intended.entries();
            if !entries.is_empty() {
                for _ in 0..((entries.len() as f64 * churn).ceil() as usize) {
                    let (prefix, origin) = entries[rng.random_range(0..entries.len())];
                    remove_route_everywhere(&mut irr, &prefix, origin);
                }
            }
        }
        let (vrps, _) = RelyingParty::new(date).validate(&repository);
        let prefix_origins = world
            .rib
            .visible()
            .map(|obs| PrefixOriginRecord {
                prefix: obs.prefix,
                origin: obs.origin,
                rpki: validate_origin(&vrps, &obs.prefix, obs.origin),
                irr: validate_irr(&irr, &obs.prefix, obs.origin),
                viewpoints: obs.paths.len(),
            })
            .collect();
        snapshots.push(IhrSnapshot { prefix_origins, transits: Vec::new() });
    }
    snapshots
}

fn remove_route_everywhere(irr: &mut IrrRegistry, prefix: &manrs_net::Prefix, origin: Asn) {
    let sources: Vec<String> = irr.databases().iter().map(|d| d.source.clone()).collect();
    for source in sources {
        if let Some(db) = irr.database_mut(&source) {
            db.remove_route(prefix, origin);
        }
    }
}

/// Re-validates the world's announcements against arbitrary registries
/// (used by ablations and by tests that perturb registries).
pub fn revalidate(
    world: &ScenarioWorld,
    vrps: &VrpSet,
    irr: &IrrRegistry,
) -> Vec<Announcement> {
    world
        .announcements
        .iter()
        .map(|a| {
            Announcement::new(
                a.prefix,
                a.origin,
                validate_origin(vrps, &a.prefix, a.origin),
                validate_irr(irr, &a.prefix, a.origin),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn world() -> ScenarioWorld {
        ScenarioWorld::build(ScenarioConfig::small(7))
    }

    #[test]
    fn yearly_series_shape() {
        let dates = yearly_dates();
        assert_eq!(dates.len(), 8);
        assert_eq!(dates[0], Date::ymd(2015, 1, 1));
        assert_eq!(*dates.last().unwrap(), Date::ymd(2022, 5, 1));
    }

    #[test]
    fn yearly_snapshots_grow() {
        let w = world();
        let snaps = yearly_snapshots(&w);
        assert_eq!(snaps.len(), 8);
        // Routed table, membership and VRP set all grow monotonically
        // over the years (nothing is removed in the yearly model).
        for pair in snaps.windows(2) {
            assert!(pair[0].table.len() <= pair[1].table.len());
            assert!(pair[0].members.len() <= pair[1].members.len());
            assert!(pair[0].vrps.len() <= pair[1].vrps.len());
        }
        assert!(snaps[0].members.len() < snaps[7].members.len());
        assert!(snaps[0].vrps.len() < snaps[7].vrps.len());
    }

    #[test]
    fn weekly_snapshots_hold_visibility_fixed() {
        let w = world();
        let weeks = weekly_snapshots(&w, 4, 0.01);
        assert_eq!(weeks.len(), 4);
        let visible = w.rib.visible_count();
        for snap in &weeks {
            assert_eq!(snap.prefix_origins.len(), visible);
        }
    }

    #[test]
    fn weekly_churn_changes_some_statuses() {
        let w = world();
        let weeks = weekly_snapshots(&w, 6, 0.02);
        let first = &weeks[0];
        let last = &weeks[5];
        let changed = first
            .prefix_origins
            .iter()
            .zip(&last.prefix_origins)
            .filter(|(a, b)| a.rpki != b.rpki || a.irr != b.irr)
            .count();
        assert!(changed > 0, "churn must flip some statuses");
        // But most stay stable, like the paper found.
        assert!(changed * 2 < first.prefix_origins.len());
    }

    #[test]
    fn zero_churn_only_improves_statuses() {
        // Even with zero churn, ROAs whose validity windows open during
        // the 12-week span activate — statuses may flip away from
        // NotFound but never toward it, and the IRR (no validity
        // windows) stays frozen.
        let w = world();
        let weeks = weekly_snapshots(&w, 3, 0.0);
        for pair in weeks.windows(2) {
            let nf = |snap: &manrs_ihr::IhrSnapshot| {
                snap.prefix_origins
                    .iter()
                    .filter(|po| po.rpki == manrs_rpki::RpkiStatus::NotFound)
                    .count()
            };
            assert!(nf(&pair[1]) <= nf(&pair[0]), "NotFound count grew without churn");
            for (a, b) in pair[0].prefix_origins.iter().zip(&pair[1].prefix_origins) {
                assert_eq!(a.irr, b.irr, "IRR status changed without churn");
            }
        }
    }

    #[test]
    fn revalidate_round_trips_unchanged_registries() {
        let w = world();
        let again = revalidate(&w, &w.vrps, &w.irr);
        assert_eq!(again, w.announcements);
    }
}
