//! Scenario configuration and presets.

use crate::behavior::BehaviorMatrix;
use manrs_net::Date;
use manrs_topology::{GeneratorConfig, SizeThresholds};
use serde::{Deserialize, Serialize};

/// Enrollment parameters: which fraction of each population joins MANRS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnrollmentConfig {
    /// Fraction of organizations joining the ISP program, by the size
    /// class of their largest AS [small, medium, large].
    pub isp_fraction: [f64; 3],
    /// Fraction of CDN organizations joining the CDN program (it only
    /// exists from 2020 on).
    pub cdn_fraction: f64,
    /// Probability a multi-AS member registers *all* its ASes (the
    /// paper: 70% did).
    pub full_registration: f64,
    /// Number of additional small LACNIC organizations enrolled in 2020
    /// by the Brazil outreach event (scaled to world size; Fig. 4a).
    pub brazil_2020_boost: usize,
}

impl Default for EnrollmentConfig {
    fn default() -> Self {
        EnrollmentConfig {
            // Membership skews large: 24 of 109 large ASes are MANRS vs
            // 433 of 67k small ones.
            isp_fraction: [0.02, 0.07, 0.25],
            cdn_fraction: 0.6,
            full_registration: 0.40,
            brazil_2020_boost: 20,
        }
    }
}

/// Announcement-perturbation probabilities (the raw material for
/// Table 1's attribution and the §8 invalid counts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerturbationConfig {
    /// Probability an organization with siblings mis-originates one of
    /// its blocks from the wrong sibling AS.
    pub sibling_misorigin: f64,
    /// Probability an AS announces one block of a direct
    /// customer/provider (business dynamics, the C-P column).
    pub neighbor_misorigin: f64,
    /// Probability of an unrelated mis-origination (fat-finger hijack).
    pub unrelated_misorigin: f64,
    /// Probability an RPKI-registering AS signs one block as AS0 by
    /// mistake (the §8.1 Indonesian-ISP case).
    pub as0_misconfiguration: f64,
    /// Probability an AS is quiescent: it holds (and may register)
    /// address space but announces nothing. The paper found 95 MANRS ISP
    /// ASes originating no prefix (§8.3) and 80 member orgs with
    /// quiescent unregistered ASes (Finding 7.0).
    pub quiescent: f64,
}

impl Default for PerturbationConfig {
    fn default() -> Self {
        PerturbationConfig {
            sibling_misorigin: 0.06,
            neighbor_misorigin: 0.03,
            unrelated_misorigin: 0.01,
            as0_misconfiguration: 0.005,
            quiescent: 0.12,
        }
    }
}

/// Full scenario configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed (independent of the topology seed).
    pub seed: u64,
    /// Topology generation parameters.
    pub topology: GeneratorConfig,
    /// Size-class thresholds (scaled worlds need scaled thresholds).
    pub thresholds: SizeThresholds,
    /// The headline snapshot date (the paper: 2022-05-01).
    pub snapshot_date: Date,
    /// Enrollment parameters.
    pub enrollment: EnrollmentConfig,
    /// Behaviour matrix.
    pub behaviors: BehaviorMatrix,
    /// Announcement perturbations.
    pub perturbations: PerturbationConfig,
    /// Number of vantage ASes (largest cones are picked first, like
    /// RouteViews peers).
    pub vantage_count: usize,
    /// Number of IXP route-server parties: the highest-peer-degree ASes
    /// get the [`manrs_bgp::PolicySet::ROUTE_SERVER`] posture, dropping
    /// RPKI-Invalid and IRR Invalid-ASN announcements on behalf of
    /// their members regardless of relationship.
    pub route_servers: usize,
}

impl ScenarioConfig {
    /// A small world for unit/integration tests: ~400 ASes, a few
    /// seconds end to end in debug builds.
    pub fn small(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            topology: GeneratorConfig {
                seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
                total_ases: 400,
                tier1_count: 6,
                mid_tier_count: 45,
                cdn_count: 8,
                ..GeneratorConfig::default()
            },
            thresholds: SizeThresholds::scaled(2, 25),
            snapshot_date: Date::ymd(2022, 5, 1),
            enrollment: EnrollmentConfig {
                // Small worlds need higher fractions to produce usable
                // member populations.
                isp_fraction: [0.10, 0.25, 0.50],
                cdn_fraction: 0.6,
                ..EnrollmentConfig::default()
            },
            behaviors: BehaviorMatrix::calibrated(),
            perturbations: PerturbationConfig::default(),
            vantage_count: 12,
            route_servers: 0,
        }
    }

    /// A medium world for examples and figure regeneration: ~3000 ASes.
    pub fn medium(seed: u64) -> Self {
        ScenarioConfig {
            topology: GeneratorConfig {
                seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
                total_ases: 3_000,
                tier1_count: 10,
                mid_tier_count: 220,
                cdn_count: 18,
                ..GeneratorConfig::default()
            },
            thresholds: SizeThresholds::scaled(2, 60),
            enrollment: EnrollmentConfig {
                isp_fraction: [0.05, 0.15, 0.35],
                ..EnrollmentConfig::default()
            },
            vantage_count: 25,
            ..ScenarioConfig::small(seed)
        }
    }

    /// A paper-scale world (tens of thousands of ASes). Only sensible in
    /// release builds; used by the heavyweight benches.
    pub fn paper_scale(seed: u64) -> Self {
        ScenarioConfig {
            topology: GeneratorConfig {
                seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
                total_ases: 20_000,
                tier1_count: 14,
                mid_tier_count: 1_200,
                cdn_count: 40,
                ..GeneratorConfig::default()
            },
            thresholds: SizeThresholds::scaled(2, 120),
            enrollment: EnrollmentConfig::default(),
            vantage_count: 40,
            ..ScenarioConfig::small(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_internally_consistent() {
        for cfg in [
            ScenarioConfig::small(1),
            ScenarioConfig::medium(1),
            ScenarioConfig::paper_scale(1),
        ] {
            assert!(cfg.topology.tier1_count + cfg.topology.mid_tier_count
                + cfg.topology.cdn_count <= cfg.topology.total_ases);
            assert!(cfg.vantage_count > 0);
            assert!(cfg.vantage_count < cfg.topology.total_ases);
            assert_eq!(cfg.snapshot_date, Date::ymd(2022, 5, 1));
        }
    }

    #[test]
    fn seeds_decorrelate_topology_from_scenario() {
        let a = ScenarioConfig::small(1);
        let b = ScenarioConfig::small(2);
        assert_ne!(a.topology.seed, b.topology.seed);
        assert_ne!(a.seed, a.topology.seed);
    }
}
