//! MANRS enrollment generation.
//!
//! Builds a [`ManrsRegistry`] over a generated world, reproducing the
//! participation dynamics of §7: membership skewed toward larger
//! networks, join dates following the observed growth curve (slow start,
//! acceleration from 2019), the 2020 NIC.br outreach wave of small
//! Brazilian ASes, a China-Telecom-like large APNIC ISP joining in 2020,
//! the CDN program existing only from 2020, and organizations that
//! register only part of their AS holdings (Finding 7.0).

use crate::config::EnrollmentConfig;
use manrs_core::{ManrsProgram, ManrsRegistry, MemberRecord};
use manrs_net::{Asn, Date};
use manrs_topology::{ConeAnalysis, GeneratedWorld, NetworkKind, OrgId, SizeClass};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// Relative weight of each join year 2015–2022, matching the Fig. 2
/// growth shape (most joins in 2019–2021).
const YEAR_WEIGHTS: [(i32, f64); 8] = [
    (2015, 0.03),
    (2016, 0.04),
    (2017, 0.06),
    (2018, 0.09),
    (2019, 0.16),
    (2020, 0.28),
    (2021, 0.20),
    (2022, 0.14),
];

fn sample_join_date(rng: &mut StdRng, earliest_year: i32) -> Date {
    let total: f64 = YEAR_WEIGHTS
        .iter()
        .filter(|(y, _)| *y >= earliest_year)
        .map(|(_, w)| w)
        .sum();
    let mut x = rng.random_range(0.0..total);
    let mut year = earliest_year;
    for (y, w) in YEAR_WEIGHTS {
        if y < earliest_year {
            continue;
        }
        if x < w {
            year = y;
            break;
        }
        x -= w;
        year = y;
    }
    let month = rng.random_range(1..=12u8);
    // 2022 joins must precede the paper's May 1 snapshot to be visible.
    let month = if year == 2022 { month.min(4) } else { month };
    Date::ymd(year, month, rng.random_range(1..=28u8))
}

/// Generates the enrollment.
pub fn enroll(
    world: &GeneratedWorld,
    cones: &ConeAnalysis,
    config: &EnrollmentConfig,
    seed: u64,
) -> ManrsRegistry {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4D_414E_5253);
    let mut registry = ManrsRegistry::new();

    // Group ASes by organization, noting each org's largest class and
    // whether it runs a CDN.
    let mut org_asns: BTreeMap<OrgId, Vec<Asn>> = BTreeMap::new();
    for asn in world.topology.asns() {
        let org = world.topology.info(asn).expect("known AS").org;
        org_asns.entry(org).or_default().push(asn);
    }

    let mut brazil_budget = config.brazil_2020_boost;
    let mut largest_apnic: Option<(OrgId, usize)> = None;

    for (org, asns) in &org_asns {
        let org_info = world.orgs.org(*org).expect("org exists");
        let max_class = asns
            .iter()
            .map(|a| cones.size_class(*a))
            .max()
            .unwrap_or(SizeClass::Small);
        let is_cdn = asns.iter().any(|a| {
            world.topology.info(*a).map(|i| i.kind) == Some(NetworkKind::Cdn)
        });

        // Track the biggest APNIC transit org for the China Telecom
        // event.
        if org_info.rir == manrs_net::Rir::Apnic && !is_cdn {
            let cone: usize = asns.iter().map(|a| cones.cone_size(*a)).max().unwrap_or(0);
            if largest_apnic.map(|(_, c)| cone > c).unwrap_or(true) {
                largest_apnic = Some((*org, cone));
            }
        }

        let (program, base_fraction, earliest) = if is_cdn {
            (ManrsProgram::Cdn, config.cdn_fraction, 2020)
        } else {
            let idx = match max_class {
                SizeClass::Small => 0,
                SizeClass::Medium => 1,
                SizeClass::Large => 2,
            };
            (ManrsProgram::Isp, config.isp_fraction[idx], 2015)
        };

        // The NIC.br wave: small Brazilian orgs get pulled in, join date
        // pinned to 2020.
        let brazil_wave = brazil_budget > 0
            && org_info.country == "BR"
            && max_class == SizeClass::Small
            && !is_cdn;

        let joins = rng.random_bool(base_fraction.clamp(0.0, 1.0)) || brazil_wave;
        if !joins {
            continue;
        }

        let joined = if brazil_wave {
            brazil_budget -= 1;
            Date::ymd(2020, rng.random_range(5..=9u8), rng.random_range(1..=28u8))
        } else {
            sample_join_date(&mut rng, earliest)
        };

        // Partial registration (Finding 7.0): most orgs register all
        // ASes; the rest leave a nonempty subset out.
        let registered: Vec<Asn> = if asns.len() == 1
            || rng.random_bool(config.full_registration.clamp(0.0, 1.0))
        {
            asns.clone()
        } else {
            let keep = rng.random_range(1..asns.len());
            let mut shuffled = asns.clone();
            shuffled.shuffle(&mut rng);
            let mut subset: Vec<Asn> = shuffled.into_iter().take(keep).collect();
            subset.sort();
            subset
        };

        registry.enroll(MemberRecord { org: *org, program, joined, registered_asns: registered });
    }

    // China Telecom event: the largest APNIC transit org joins in 2020
    // if it has not already.
    if let Some((org, _)) = largest_apnic {
        if !registry.is_member_org(org, Date::ymd(2023, 1, 1)) {
            registry.enroll(MemberRecord {
                org,
                program: ManrsProgram::Isp,
                joined: Date::ymd(2020, 8, 15),
                registered_asns: org_asns[&org].clone(),
            });
        }
    }

    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_topology::{GeneratorConfig, SizeThresholds, TopologyBuilder};

    fn world() -> (GeneratedWorld, ConeAnalysis) {
        let w = TopologyBuilder::new(GeneratorConfig {
            seed: 11,
            total_ases: 500,
            tier1_count: 6,
            mid_tier_count: 50,
            cdn_count: 8,
            ..GeneratorConfig::default()
        })
        .generate();
        let cones = ConeAnalysis::compute(&w.topology, SizeThresholds::scaled(2, 25));
        (w, cones)
    }

    fn config() -> EnrollmentConfig {
        EnrollmentConfig {
            isp_fraction: [0.10, 0.30, 0.60],
            cdn_fraction: 0.6,
            full_registration: 0.7,
            brazil_2020_boost: 10,
        }
    }

    #[test]
    fn enrollment_is_deterministic() {
        let (w, cones) = world();
        let a = enroll(&w, &cones, &config(), 3);
        let b = enroll(&w, &cones, &config(), 3);
        assert_eq!(a.members(), b.members());
        assert!(!a.members().is_empty());
    }

    #[test]
    fn join_dates_precede_snapshot() {
        let (w, cones) = world();
        let reg = enroll(&w, &cones, &config(), 4);
        let snapshot = Date::ymd(2022, 5, 1);
        for m in reg.members() {
            assert!(m.joined >= Date::ymd(2015, 1, 1));
            assert!(m.joined <= snapshot, "join date {} after snapshot", m.joined);
        }
    }

    #[test]
    fn cdn_members_join_after_program_launch() {
        let (w, cones) = world();
        let reg = enroll(&w, &cones, &config(), 5);
        let cdn_members: Vec<_> = reg
            .members()
            .iter()
            .filter(|m| m.program == ManrsProgram::Cdn)
            .collect();
        assert!(!cdn_members.is_empty(), "some CDNs must join");
        for m in cdn_members {
            assert!(m.joined >= Date::ymd(2020, 1, 1), "CDN joined {} before 2020", m.joined);
        }
    }

    #[test]
    fn some_orgs_register_partially() {
        let (w, cones) = world();
        let reg = enroll(&w, &cones, &config(), 6);
        let partial = reg.members().iter().any(|m| {
            let owned = w.orgs.asns_of(m.org).len();
            owned > m.registered_asns.len()
        });
        assert!(partial, "expected at least one partially-registered org");
    }

    #[test]
    fn membership_skews_large() {
        let (w, cones) = world();
        // Widely-separated fractions: small member counts are inflated
        // by small sibling ASes of large member orgs, so the per-class
        // gap in the *config* must be big for the per-AS gap to be
        // testable on a 500-AS world.
        let cfg = EnrollmentConfig { isp_fraction: [0.03, 0.3, 0.95], ..config() };
        let reg = enroll(&w, &cones, &cfg, 7);
        let date = Date::ymd(2022, 5, 1);
        let mut rates: Vec<f64> = Vec::new();
        for class in [SizeClass::Small, SizeClass::Large] {
            let (mut member, mut total) = (0usize, 0usize);
            for asn in w.topology.asns() {
                if cones.size_class(asn) == class {
                    total += 1;
                    if reg.is_member_as(asn, date) {
                        member += 1;
                    }
                }
            }
            rates.push(member as f64 / total.max(1) as f64);
        }
        assert!(
            rates[1] > rates[0],
            "large networks should join more often ({rates:?})"
        );
    }
}
