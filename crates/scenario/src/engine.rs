//! The incremental timeline engine.
//!
//! Both of the paper's longitudinal analyses (§7 yearly participation,
//! §8.5 weekly stability) step a built world through time while its
//! registries change. Rebuilding and re-validating the *entire* visible
//! prefix-origin set at every step is wasteful: a weekly step churns a
//! handful of ROAs and route objects, each of which can only affect the
//! pairs its prefix covers. [`TimelineEngine`] maintains per-pair
//! validation state plus reverse indexes, applies typed
//! [`RegistryDelta`]s, re-validates **only** the affected pairs, and
//! patches the [`IhrSnapshot`] in place.
//!
//! The incremental path shares its per-object rules with the full
//! relying-party pass ([`RelyingParty::evaluate`] is the body of
//! `RelyingParty::validate`'s loop), so incremental state is equivalent
//! to a full recompute *by construction* — and a property test in this
//! crate asserts it bit-for-bit across random delta sequences.
//!
//! Three reverse indexes make deltas cheap:
//!
//! * a coverage trie mapping each visible pair's prefix to its slot, so
//!   a VRP or route object at prefix `P` re-validates exactly the pairs
//!   whose prefix is contained in `P` (`PrefixMap::covered_by`);
//! * a per-ROA contribution map recording which [`Vrp`] each accepted
//!   object put into the set, so a revocation retracts exactly one copy
//!   (twin registrations stay);
//! * a validity-window event queue (from
//!   [`acceptance_window`](manrs_rpki::acceptance_window)) that turns
//!   the passage of time itself into deltas: advancing the date fires
//!   activation/expiry events for exactly the ROAs whose windows open
//!   or close in between.
//!
//! The compiled batch indexes are maintained *in place*: registry
//! deltas queue per-index pending lists, and the next batch round
//! splices them into the frozen arenas
//! ([`CompiledVrpIndex::apply_roa_delta`] /
//! [`CompiledIrrIndex::apply_object_delta`]) instead of rebuilding —
//! a calibrated cost model ([`plan_revalidation`],
//! [`patch_beats_rebuild`]) picks scalar vs. batch rounds and
//! patch vs. rebuild syncs, so steady weekly churn never pays a full
//! index rebuild.

use crate::build::ScenarioWorld;
use manrs_ihr::{IhrSnapshot, SnapshotIndex};
use manrs_irr::{validate_irr, CompiledIrrIndex, IrrRegistry, IrrStatus, RouteObject};
use manrs_net::{Asn, BatchScratch, Date, Prefix, PrefixMap};
use manrs_rpki::{
    acceptance_window, validate_origin, CaId, CompiledVrpIndex, RelyingParty, RoaId, Roa,
    RpkiRepository, RpkiStatus, Vrp, VrpSet,
};
use manrs_topology::Prefix2As;
use std::collections::{BTreeMap, BTreeSet};

/// Cost-model constants for [`plan_revalidation`] and
/// [`patch_beats_rebuild`], in units of "one batched slot
/// revalidation". Calibrated against the scalar-oracle and `--patch`
/// stages of `profile_batch` at medium scale: one scalar validation
/// (two allocating trie walks) costs a few batched slots, one arena
/// splice costs a couple, and a full compiled-index rebuild costs a
/// fixed setup plus a per-candidate traversal share. The constants only
/// steer *which* equally-correct path runs, so drift on other hosts
/// shifts thresholds without affecting results.
const SCALAR_SLOT_COST: f64 = 6.0;
/// Fixed overhead of one batch round (argsort + buffer setup).
const BATCH_ROUND_BASE: f64 = 160.0;
/// One in-place index splice (`apply_roa_delta` / `apply_object_delta`).
const PATCH_SPLICE_COST: f64 = 2.5;
/// Fixed cost of one compiled-index rebuild (trie merge + flatten setup).
const REBUILD_BASE: f64 = 250.0;
/// Per-candidate share of a compiled-index rebuild.
const REBUILD_PER_CANDIDATE: f64 = 1.2;

/// How a revalidation round answers its affected pairs; chosen by
/// [`plan_revalidation`]. Statuses are identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RevalidationPath {
    /// Per-pair scalar validators straight off the registries; the
    /// compiled indexes stay unsynced (pending deltas keep queueing).
    Scalar,
    /// Sync both compiled indexes (patch or rebuild, whichever is
    /// cheaper), then answer the whole round through the batch kernels.
    Batch,
}

/// `true` when splicing `pending` deltas into a compiled index of
/// `candidates` live slots is cheaper than rebuilding it from source.
///
/// Public so downstream epoch builders (the `manrs-service` writer)
/// make the same patch-or-rebuild call per shard that the engine makes
/// for its own indexes.
pub fn patch_beats_rebuild(pending: usize, candidates: usize) -> bool {
    pending as f64 * PATCH_SPLICE_COST < REBUILD_BASE + candidates as f64 * REBUILD_PER_CANDIDATE
}

/// Expected cost of bringing one compiled index up to date: zero when
/// clean, otherwise the cheaper of patching and rebuilding.
pub(crate) fn index_sync_cost(pending: usize, candidates: usize) -> f64 {
    if pending == 0 {
        return 0.0;
    }
    let patch = pending as f64 * PATCH_SPLICE_COST;
    let rebuild = REBUILD_BASE + candidates as f64 * REBUILD_PER_CANDIDATE;
    patch.min(rebuild)
}

/// Picks the cheaper answer for a round of `affected` pairs given each
/// compiled index's pending-delta queue and live candidate count. The
/// scalar path pays per pair but nothing for index upkeep; the batch
/// path pays a fixed base, one batched slot per pair, and whatever
/// bringing the indexes up to date costs. Replaces the former fixed
/// 32-pair threshold (which this model reproduces when both indexes are
/// clean: 160 / (6 − 1) = 32).
pub(crate) fn plan_revalidation(
    affected: usize,
    rpki_pending: usize,
    rpki_candidates: usize,
    irr_pending: usize,
    irr_candidates: usize,
) -> RevalidationPath {
    let scalar = affected as f64 * SCALAR_SLOT_COST;
    let batch = BATCH_ROUND_BASE
        + affected as f64
        + index_sync_cost(rpki_pending, rpki_candidates)
        + index_sync_cost(irr_pending, irr_candidates);
    if scalar <= batch {
        RevalidationPath::Scalar
    } else {
        RevalidationPath::Batch
    }
}

/// One typed change to the registries or the routed world. The timeline
/// series are just streams of these applied to a [`TimelineEngine`].
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryDelta {
    /// A new ROA is signed under an existing CA. Ignored (like a real
    /// publication point rejecting it) if the CA is unknown or does not
    /// hold the prefix.
    RoaAdded {
        /// The signing CA.
        ca: CaId,
        /// The payload to sign.
        roa: Roa,
    },
    /// An existing ROA is revoked (withdrawn). Unknown or already
    /// revoked ids are a no-op.
    RoaRemoved {
        /// The object to revoke.
        roa: RoaId,
    },
    /// A route object is registered in the IRR database matching its
    /// `source` tag. Dropped if no such database exists.
    RouteObjectAdded {
        /// The object to register.
        object: RouteObject,
    },
    /// Route objects for (prefix, origin) are deleted from every IRR
    /// database (mirrors hold duplicates).
    RouteObjectRemoved {
        /// The registered prefix.
        prefix: Prefix,
        /// The registered origin.
        origin: Asn,
    },
    /// An AS (all of an org's ASNs arrive as individual deltas) joins
    /// MANRS.
    MemberJoined {
        /// The joining AS.
        asn: Asn,
    },
    /// An AS starts announcing its intended prefixes (drives the yearly
    /// routed-table growth). Already-active origins are a no-op.
    OriginActivated {
        /// The newly active origin.
        origin: Asn,
    },
}

/// Counters describing how much work the engine actually did — the
/// numbers `bench_timeline` reports against the full-rebuild baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Deltas applied (including no-ops).
    pub deltas_applied: usize,
    /// Validity-window events fired by date advancement.
    pub events_fired: usize,
    /// (prefix, origin) pairs re-validated incrementally.
    pub pairs_revalidated: usize,
    /// Snapshot rows whose statuses actually changed.
    pub rows_patched: usize,
    /// Single-delta splices applied in place to the compiled indexes.
    pub index_patches: usize,
    /// Full compiled-index rebuilds (construction excluded). A healthy
    /// weekly timeline performs zero after warm-up.
    pub index_rebuilds: usize,
}

/// The engine→service delta feed: every state change the engine makes
/// between two drains, in application order, so an epoch builder can
/// mirror the engine's registries and statuses without re-deriving
/// validation. Enabled with [`TimelineEngine::enable_feed`]; drained
/// with [`TimelineEngine::take_feed`] after each step.
#[derive(Debug, Clone)]
pub struct EngineFeed {
    /// The engine date when the feed was drained.
    pub date: Date,
    /// VRP deltas (`true` = inserted) in application order — the same
    /// entries the engine queues for its own compiled-index sync.
    pub vrp: Vec<(Vrp, bool)>,
    /// Route-object deltas, one entry per registered copy.
    pub irr: Vec<(Prefix, Asn, bool)>,
    /// Pair-status changes: `(slot, rpki, irr)` for every slot whose
    /// status actually moved. Slots index the engine's fixed pair table
    /// ([`TimelineEngine::pairs`]).
    pub status: Vec<(usize, RpkiStatus, IrrStatus)>,
}

impl EngineFeed {
    fn new(date: Date) -> Self {
        EngineFeed { date, vrp: Vec::new(), irr: Vec::new(), status: Vec::new() }
    }

    /// `true` when the drained interval changed nothing.
    pub fn is_empty(&self) -> bool {
        self.vrp.is_empty() && self.irr.is_empty() && self.status.is_empty()
    }
}

/// A fully materialized point of a timeline: everything the yearly and
/// weekly analyses consume, cloned out of the engine's live state.
#[derive(Debug, Clone)]
pub struct TimelineSnapshot {
    /// The snapshot date.
    pub date: Date,
    /// The routed table as of the date (origins active by then).
    pub table: Prefix2As,
    /// VRPs validated at the date.
    pub vrps: VrpSet,
    /// Member ASNs as of the date.
    pub members: BTreeSet<Asn>,
    /// The IHR datasets over the world's fixed visible set, statuses
    /// validated at the date against the engine's registries.
    pub ihr: IhrSnapshot,
}

/// Incremental re-validation state over one built world.
///
/// The engine clones the world's registries (so delta streams never
/// mutate the world) and owns the evolving validation state: the VRP
/// set, the per-pair statuses, the patched snapshot, the routed table,
/// and the membership set. Time only moves forward
/// ([`TimelineEngine::advance_to`]); registry changes arrive as
/// [`RegistryDelta`]s ([`TimelineEngine::apply_all`]), and
/// [`TimelineEngine::step`] does both in one re-validation batch.
pub struct TimelineEngine<'w> {
    world: &'w ScenarioWorld,
    date: Date,
    repository: RpkiRepository,
    irr: IrrRegistry,
    vrps: VrpSet,
    /// Which VRP each accepted ROA currently contributes.
    contributions: BTreeMap<RoaId, Vrp>,
    /// Pending validity-window crossings, keyed by the first date the
    /// ROA's acceptance changes.
    events: BTreeSet<(Date, RoaId)>,
    members: BTreeSet<Asn>,
    active: BTreeSet<Asn>,
    table: Prefix2As,
    /// The distinct visible (prefix, origin) pairs, slot-indexed.
    pairs: Vec<(Prefix, Asn)>,
    /// Reverse index: pair prefix → slot, queried with `covered_by` to
    /// find every pair a registry change at some prefix can affect.
    coverage: PrefixMap<usize>,
    /// Current (rpki, irr) status per slot — the engine's source of
    /// truth, mirrored into `snapshot` by in-place patching.
    status: Vec<(RpkiStatus, IrrStatus)>,
    snapshot: IhrSnapshot,
    index: SnapshotIndex,
    /// Compiled VRP index over `vrps`, always present. Deltas queue in
    /// `pending_vrp` and are spliced in (or trigger one rebuild) right
    /// before the next batch round needs the index.
    rpki_index: CompiledVrpIndex,
    /// Compiled route-object index over `irr`; synced the same way from
    /// `pending_irr`.
    irr_index: CompiledIrrIndex,
    /// VRP deltas (`true` = inserted) not yet reflected in `rpki_index`,
    /// in application order.
    pending_vrp: Vec<(Vrp, bool)>,
    /// Route-object deltas (one entry per registered copy) not yet
    /// reflected in `irr_index`, in application order.
    pending_irr: Vec<(Prefix, Asn, bool)>,
    /// Reused argsort scratch for the batch revalidation rounds.
    scratch: BatchScratch,
    /// Reused batch query/result buffers.
    batch_pairs: Vec<(Prefix, Asn)>,
    batch_rpki: Vec<RpkiStatus>,
    batch_irr: Vec<IrrStatus>,
    stats: EngineStats,
    /// When enabled, mirrors every registry and status change for an
    /// external epoch builder ([`TimelineEngine::enable_feed`]).
    feed: Option<EngineFeed>,
}

impl<'w> TimelineEngine<'w> {
    /// Builds the engine's initial state: registries cloned from the
    /// world, every visible pair validated at `date`, validity-window
    /// events scheduled for every ROA whose acceptance changes after
    /// `date`.
    pub fn new(world: &'w ScenarioWorld, date: Date) -> Self {
        let repository = world.repository.clone();
        let irr = world.irr.clone();

        let rp = RelyingParty::new(date);
        let mut vrps = VrpSet::new();
        let mut contributions = BTreeMap::new();
        let mut events = BTreeSet::new();
        for signed in repository.roas() {
            if let Some((start, end)) = acceptance_window(&repository, signed) {
                if start > date {
                    events.insert((start, signed.id));
                }
                let after_end = end.plus_days(1);
                if after_end > date {
                    events.insert((after_end, signed.id));
                }
            }
            if let Ok(vrp) = rp.evaluate(&repository, signed) {
                vrps.insert(vrp);
                contributions.insert(signed.id, vrp);
            }
        }

        let members = world.manrs.member_asns(date);
        let active: BTreeSet<Asn> = world
            .active_since
            .iter()
            .filter(|(_, since)| **since <= date)
            .map(|(asn, _)| *asn)
            .collect();
        let mut table = Prefix2As::new();
        for (prefix, origin) in world.world.intended.entries() {
            if active.contains(origin) {
                table.add(*prefix, *origin);
            }
        }

        let mut snapshot = world.ihr.clone();
        let index = SnapshotIndex::build(&snapshot);
        let mut pairs: Vec<(Prefix, Asn)> = Vec::new();
        let mut seen: BTreeSet<(Prefix, Asn)> = BTreeSet::new();
        let mut coverage = PrefixMap::new();
        for obs in world.rib.visible() {
            let key = (obs.prefix, obs.origin);
            if seen.insert(key) {
                coverage.insert(obs.prefix, pairs.len());
                pairs.push(key);
            }
        }
        // Initial validation is a full-table round: compile both
        // indexes once and answer every pair through the batch kernels.
        let rpki_index = CompiledVrpIndex::build(&vrps);
        let irr_index = CompiledIrrIndex::build(&irr);
        let mut scratch = BatchScratch::new();
        let (mut batch_rpki, mut batch_irr) = (Vec::new(), Vec::new());
        rpki_index.validate_batch_into(&pairs, &mut scratch, &mut batch_rpki);
        irr_index.validate_batch_into(&pairs, &mut scratch, &mut batch_irr);
        let mut status = Vec::with_capacity(pairs.len());
        for (i, &(prefix, origin)) in pairs.iter().enumerate() {
            let (rpki, irr_status) = (batch_rpki[i], batch_irr[i]);
            index.patch(&mut snapshot, prefix, origin, rpki, irr_status);
            status.push((rpki, irr_status));
        }

        TimelineEngine {
            world,
            date,
            repository,
            irr,
            vrps,
            contributions,
            events,
            members,
            active,
            table,
            pairs,
            coverage,
            status,
            snapshot,
            index,
            rpki_index,
            irr_index,
            pending_vrp: Vec::new(),
            pending_irr: Vec::new(),
            scratch,
            batch_pairs: Vec::new(),
            batch_rpki,
            batch_irr,
            stats: EngineStats::default(),
            feed: None,
        }
    }

    /// The current engine date.
    pub fn date(&self) -> Date {
        self.date
    }

    /// The world this engine steps through time.
    pub fn world(&self) -> &'w ScenarioWorld {
        self.world
    }

    /// The IHR snapshot, patched to the current date and registry state.
    pub fn snapshot(&self) -> &IhrSnapshot {
        &self.snapshot
    }

    /// The routed table as of the current date.
    pub fn table(&self) -> &Prefix2As {
        &self.table
    }

    /// The VRP set as of the current date and registry state.
    pub fn vrps(&self) -> &VrpSet {
        &self.vrps
    }

    /// The engine's (delta-mutated) RPKI repository.
    pub fn repository(&self) -> &RpkiRepository {
        &self.repository
    }

    /// The engine's (delta-mutated) IRR registry.
    pub fn irr(&self) -> &IrrRegistry {
        &self.irr
    }

    /// Member ASNs as of the current date.
    pub fn members(&self) -> &BTreeSet<Asn> {
        &self.members
    }

    /// The distinct visible (prefix, origin) pairs under incremental
    /// maintenance.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// The fixed, slot-indexed pair table — the indexing space of
    /// [`EngineFeed::status`].
    pub fn pairs(&self) -> &[(Prefix, Asn)] {
        &self.pairs
    }

    /// The current (rpki, irr) status per slot — the engine's source of
    /// truth, aligned with [`TimelineEngine::pairs`].
    pub fn statuses(&self) -> &[(RpkiStatus, IrrStatus)] {
        &self.status
    }

    /// Starts mirroring every registry and status change into an
    /// [`EngineFeed`]. Changes made before this call are not replayed;
    /// callers snapshot the current state first, then drain the feed
    /// after each step with [`TimelineEngine::take_feed`].
    pub fn enable_feed(&mut self) {
        if self.feed.is_none() {
            self.feed = Some(EngineFeed::new(self.date));
        }
    }

    /// Drains the accumulated feed (stamped with the current engine
    /// date) and starts a fresh one. `None` when the feed was never
    /// enabled.
    pub fn take_feed(&mut self) -> Option<EngineFeed> {
        let mut feed = self.feed.replace(EngineFeed::new(self.date))?;
        feed.date = self.date;
        Some(feed)
    }

    /// Work counters accumulated since construction (or the last
    /// [`TimelineEngine::take_stats`]).
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Returns and resets the work counters — per-step accounting for
    /// benchmarks.
    pub fn take_stats(&mut self) -> EngineStats {
        std::mem::take(&mut self.stats)
    }

    /// Advances the engine to `date` (which must not move backwards),
    /// firing the validity-window events in between and re-validating
    /// the pairs they cover.
    pub fn advance_to(&mut self, date: Date) {
        let mut affected = BTreeSet::new();
        self.advance_inner(date, &mut affected);
        self.revalidate_slots(&affected);
    }

    /// Applies one delta and re-validates the pairs it covers.
    pub fn apply(&mut self, delta: RegistryDelta) {
        self.apply_all(std::iter::once(delta));
    }

    /// Applies a batch of deltas, re-validating each affected pair once
    /// no matter how many deltas touch it.
    pub fn apply_all<I: IntoIterator<Item = RegistryDelta>>(&mut self, deltas: I) {
        let mut affected = BTreeSet::new();
        for delta in deltas {
            self.apply_inner(delta, &mut affected);
        }
        self.revalidate_slots(&affected);
    }

    /// One timeline step: advance to `date`, apply the step's deltas,
    /// and re-validate every affected pair in a single batch.
    pub fn step<I: IntoIterator<Item = RegistryDelta>>(&mut self, date: Date, deltas: I) {
        let mut affected = BTreeSet::new();
        self.advance_inner(date, &mut affected);
        for delta in deltas {
            self.apply_inner(delta, &mut affected);
        }
        self.revalidate_slots(&affected);
    }

    /// Clones the current state into a [`TimelineSnapshot`].
    pub fn materialize(&self) -> TimelineSnapshot {
        TimelineSnapshot {
            date: self.date,
            table: self.table.clone(),
            vrps: self.vrps.clone(),
            members: self.members.clone(),
            ihr: self.snapshot.clone(),
        }
    }

    fn advance_inner(&mut self, date: Date, affected: &mut BTreeSet<usize>) {
        assert!(date >= self.date, "TimelineEngine only moves forward in time");
        self.date = date;
        let due: Vec<(Date, RoaId)> =
            self.events.range(..=(date, RoaId(u64::MAX))).copied().collect();
        for key in due {
            self.events.remove(&key);
            self.stats.events_fired += 1;
            self.sync_roa(key.1, affected);
        }
    }

    fn apply_inner(&mut self, delta: RegistryDelta, affected: &mut BTreeSet<usize>) {
        self.stats.deltas_applied += 1;
        match delta {
            RegistryDelta::RoaAdded { ca, roa } => {
                if let Ok(id) = self.repository.sign_roa(ca, roa) {
                    self.schedule_roa(id);
                    self.sync_roa(id, affected);
                }
            }
            RegistryDelta::RoaRemoved { roa } => {
                if self.repository.revoke_roa(roa).is_ok() {
                    self.sync_roa(roa, affected);
                }
            }
            RegistryDelta::RouteObjectAdded { object } => {
                let (prefix, origin) = (object.prefix, object.origin);
                if self.irr.add_route(object) {
                    self.pending_irr.push((prefix, origin, true));
                    if let Some(feed) = self.feed.as_mut() {
                        feed.irr.push((prefix, origin, true));
                    }
                    self.mark_covered(&prefix, affected);
                }
            }
            RegistryDelta::RouteObjectRemoved { prefix, origin } => {
                // The registry strips every database; the compiled index
                // holds one candidate per stripped copy.
                let stripped = self.irr.remove_route(&prefix, origin);
                if stripped > 0 {
                    self.pending_irr.extend((0..stripped).map(|_| (prefix, origin, false)));
                    if let Some(feed) = self.feed.as_mut() {
                        feed.irr.extend((0..stripped).map(|_| (prefix, origin, false)));
                    }
                    self.mark_covered(&prefix, affected);
                }
            }
            RegistryDelta::MemberJoined { asn } => {
                self.members.insert(asn);
            }
            RegistryDelta::OriginActivated { origin } => {
                if self.active.insert(origin) {
                    for prefix in self.world.world.intended.prefixes_of(origin) {
                        self.table.add(*prefix, origin);
                    }
                }
            }
        }
    }

    /// Schedules the validity-window crossings of a (newly signed) ROA
    /// that lie after the current date.
    fn schedule_roa(&mut self, id: RoaId) {
        let Some(signed) = self.repository.roa(id) else { return };
        if let Some((start, end)) = acceptance_window(&self.repository, signed) {
            if start > self.date {
                self.events.insert((start, id));
            }
            let after_end = end.plus_days(1);
            if after_end > self.date {
                self.events.insert((after_end, id));
            }
        }
    }

    /// Re-derives one ROA's acceptance at the current date and
    /// reconciles the VRP set with what it contributed before. Safe to
    /// call spuriously (an event firing after the ROA was revoked, a
    /// revocation of an already-rejected object): a no-op when the
    /// contribution is unchanged.
    fn sync_roa(&mut self, id: RoaId, affected: &mut BTreeSet<usize>) {
        let rp = RelyingParty::new(self.date);
        let accepted =
            self.repository.roa(id).and_then(|signed| rp.evaluate(&self.repository, signed).ok());
        let previous = self.contributions.get(&id).copied();
        match (previous, accepted) {
            (None, Some(vrp)) => {
                self.vrps.insert(vrp);
                self.pending_vrp.push((vrp, true));
                if let Some(feed) = self.feed.as_mut() {
                    feed.vrp.push((vrp, true));
                }
                self.contributions.insert(id, vrp);
                self.mark_covered(&vrp.prefix, affected);
            }
            (Some(vrp), None) => {
                self.vrps.remove_one(&vrp);
                self.pending_vrp.push((vrp, false));
                if let Some(feed) = self.feed.as_mut() {
                    feed.vrp.push((vrp, false));
                }
                self.contributions.remove(&id);
                self.mark_covered(&vrp.prefix, affected);
            }
            (Some(old), Some(new)) if old != new => {
                self.vrps.remove_one(&old);
                self.vrps.insert(new);
                self.pending_vrp.push((old, false));
                self.pending_vrp.push((new, true));
                if let Some(feed) = self.feed.as_mut() {
                    feed.vrp.push((old, false));
                    feed.vrp.push((new, true));
                }
                self.contributions.insert(id, new);
                self.mark_covered(&old.prefix, affected);
                self.mark_covered(&new.prefix, affected);
            }
            _ => {}
        }
    }

    /// Marks every pair whose prefix is covered by `prefix` (equal or
    /// more specific) — exactly the pairs whose RFC 6811 / IRR outcome a
    /// registry change at `prefix` can influence.
    fn mark_covered(&self, prefix: &Prefix, affected: &mut BTreeSet<usize>) {
        for &slot in self.coverage.covered_by(prefix) {
            affected.insert(slot);
        }
    }

    fn revalidate_slots(&mut self, affected: &BTreeSet<usize>) {
        if affected.is_empty() {
            return;
        }
        let path = plan_revalidation(
            affected.len(),
            self.pending_vrp.len(),
            self.rpki_index.candidate_count(),
            self.pending_irr.len(),
            self.irr_index.candidate_count(),
        );
        if path == RevalidationPath::Batch {
            self.revalidate_slots_batch(affected);
            return;
        }
        // Scalar path: answer straight off the registries, leaving the
        // compiled indexes unsynced (their pending queues keep
        // accumulating until a batch round amortizes the sync).
        for &slot in affected {
            let (prefix, origin) = self.pairs[slot];
            let rpki = validate_origin(&self.vrps, &prefix, origin);
            let irr_status = validate_irr(&self.irr, &prefix, origin);
            self.stats.pairs_revalidated += 1;
            self.patch_slot(slot, prefix, origin, rpki, irr_status);
        }
    }

    /// Brings `rpki_index` up to date with the VRP set: splices the
    /// pending deltas in application order when the cost model favors
    /// it (weekly churn always does), falling back to one full rebuild
    /// when patching is dearer or a splice cannot be applied.
    fn sync_rpki_index(&mut self) {
        if self.pending_vrp.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_vrp);
        if patch_beats_rebuild(pending.len(), self.rpki_index.candidate_count())
            && pending.iter().all(|(vrp, added)| self.rpki_index.apply_roa_delta(vrp, *added))
        {
            self.stats.index_patches += pending.len();
            return;
        }
        self.rpki_index = CompiledVrpIndex::build(&self.vrps);
        self.stats.index_rebuilds += 1;
    }

    /// Brings `irr_index` up to date with the registry; same policy as
    /// [`TimelineEngine::sync_rpki_index`].
    fn sync_irr_index(&mut self) {
        if self.pending_irr.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_irr);
        if patch_beats_rebuild(pending.len(), self.irr_index.candidate_count())
            && pending.iter().all(|(p, o, added)| self.irr_index.apply_object_delta(p, *o, *added))
        {
            self.stats.index_patches += pending.len();
            return;
        }
        self.irr_index = CompiledIrrIndex::build(&self.irr);
        self.stats.index_rebuilds += 1;
    }

    /// Batch revalidation round: sync both compiled indexes (patch in
    /// place, or rebuild if cheaper), then answer the whole round
    /// through the batch kernels with the engine's reused scratch and
    /// buffers.
    fn revalidate_slots_batch(&mut self, affected: &BTreeSet<usize>) {
        self.sync_rpki_index();
        self.sync_irr_index();
        self.batch_pairs.clear();
        self.batch_pairs.extend(affected.iter().map(|&slot| self.pairs[slot]));
        self.rpki_index.validate_batch_into(
            &self.batch_pairs,
            &mut self.scratch,
            &mut self.batch_rpki,
        );
        self.irr_index.validate_batch_into(
            &self.batch_pairs,
            &mut self.scratch,
            &mut self.batch_irr,
        );
        self.stats.pairs_revalidated += affected.len();
        for (i, &slot) in affected.iter().enumerate() {
            let (prefix, origin) = self.pairs[slot];
            let (rpki, irr_status) = (self.batch_rpki[i], self.batch_irr[i]);
            self.patch_slot(slot, prefix, origin, rpki, irr_status);
        }
    }

    fn patch_slot(
        &mut self,
        slot: usize,
        prefix: Prefix,
        origin: Asn,
        rpki: RpkiStatus,
        irr_status: IrrStatus,
    ) {
        if (rpki, irr_status) != self.status[slot] {
            self.status[slot] = (rpki, irr_status);
            if let Some(feed) = self.feed.as_mut() {
                feed.status.push((slot, rpki, irr_status));
            }
            self.stats.rows_patched +=
                self.index.patch(&mut self.snapshot, prefix, origin, rpki, irr_status);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn world() -> ScenarioWorld {
        ScenarioWorld::builder(ScenarioConfig::small(11)).build()
    }

    /// Full recompute of every pair's statuses against the engine's
    /// current registries — the reference the incremental path must
    /// match bit-for-bit.
    fn reference_statuses(engine: &TimelineEngine<'_>) -> Vec<(RpkiStatus, IrrStatus)> {
        let (vrps, _) = RelyingParty::new(engine.date()).validate(engine.repository());
        engine
            .pairs
            .iter()
            .map(|(p, o)| (validate_origin(&vrps, p, *o), validate_irr(engine.irr(), p, *o)))
            .collect()
    }

    fn snapshot_statuses(engine: &TimelineEngine<'_>) -> Vec<(RpkiStatus, IrrStatus)> {
        engine
            .pairs
            .iter()
            .map(|&(prefix, origin)| {
                let row = engine
                    .snapshot()
                    .prefix_origins
                    .iter()
                    .find(|po| po.prefix == prefix && po.origin == origin)
                    .expect("pair has a snapshot row");
                (row.rpki, row.irr)
            })
            .collect()
    }

    #[test]
    fn init_matches_world_snapshot() {
        let w = world();
        let engine = TimelineEngine::new(&w, w.config.snapshot_date);
        // At the world's own snapshot date, the engine's patched
        // snapshot must be exactly the world's.
        assert_eq!(engine.snapshot().prefix_origins, w.ihr.prefix_origins);
        assert_eq!(engine.snapshot().transits, w.ihr.transits);
        assert_eq!(engine.vrps().len(), w.vrps.len());
        assert_eq!(engine.members(), &w.member_asns());
    }

    #[test]
    fn revocation_revalidates_only_covered_pairs() {
        let w = world();
        let mut engine = TimelineEngine::new(&w, w.config.snapshot_date);
        engine.take_stats();
        // Revoke the ROA behind some accepted contribution.
        let (&id, _) = engine.contributions.iter().next().expect("accepted ROAs exist");
        engine.apply(RegistryDelta::RoaRemoved { roa: id });
        let stats = engine.take_stats();
        assert!(stats.pairs_revalidated < engine.pair_count());
        assert_eq!(snapshot_statuses(&engine), reference_statuses(&engine));
    }

    #[test]
    fn mixed_delta_batch_matches_full_recompute() {
        let w = world();
        let mut engine = TimelineEngine::new(&w, Date::ymd(2022, 2, 1));
        let ids: Vec<RoaId> = engine.repository().roas().map(|r| r.id).collect();
        let entries = w.world.intended.entries().to_vec();
        let mut deltas: Vec<RegistryDelta> = Vec::new();
        for id in ids.iter().step_by(5) {
            deltas.push(RegistryDelta::RoaRemoved { roa: *id });
        }
        for (prefix, origin) in entries.iter().step_by(7) {
            deltas.push(RegistryDelta::RouteObjectRemoved { prefix: *prefix, origin: *origin });
        }
        engine.step(Date::ymd(2022, 3, 1), deltas);
        assert_eq!(snapshot_statuses(&engine), reference_statuses(&engine));

        // A second step with nothing to do changes nothing.
        let before = snapshot_statuses(&engine);
        engine.apply_all(std::iter::empty());
        assert_eq!(snapshot_statuses(&engine), before);
    }

    #[test]
    fn window_crossings_fire_as_events() {
        let w = world();
        // Start early enough that many ROA windows are still closed,
        // then sweep to the snapshot date: every activation must fire as
        // an event and land the engine on the full-recompute statuses.
        let mut engine = TimelineEngine::new(&w, Date::ymd(2015, 1, 1));
        engine.take_stats();
        engine.advance_to(Date::ymd(2022, 5, 1));
        let stats = engine.take_stats();
        assert!(stats.events_fired > 0, "window openings must fire");
        assert_eq!(snapshot_statuses(&engine), reference_statuses(&engine));
        assert_eq!(engine.vrps().len(), w.vrps.len(), "same date, same VRPs as the world");
    }

    #[test]
    #[should_panic(expected = "only moves forward")]
    fn time_cannot_move_backwards() {
        let w = world();
        let mut engine = TimelineEngine::new(&w, Date::ymd(2022, 2, 1));
        engine.advance_to(Date::ymd(2022, 1, 1));
    }

    #[test]
    fn cost_model_reproduces_scalar_batch_crossover() {
        // With clean indexes the model must reproduce the former fixed
        // threshold: scalar below 32 affected pairs, batch above.
        assert_eq!(plan_revalidation(1, 0, 10_000, 0, 10_000), RevalidationPath::Scalar);
        assert_eq!(plan_revalidation(31, 0, 10_000, 0, 10_000), RevalidationPath::Scalar);
        assert_eq!(plan_revalidation(33, 0, 10_000, 0, 10_000), RevalidationPath::Batch);
        // Pending index deltas make the batch round dearer, shifting
        // the crossover upward — but only until the sync cost saturates
        // at the rebuild bound.
        assert_eq!(plan_revalidation(33, 40, 10_000, 0, 10_000), RevalidationPath::Scalar);
        let crossover = |rpki_pending| {
            (0..100_000)
                .find(|&n| {
                    plan_revalidation(n, rpki_pending, 10_000, 0, 10_000)
                        == RevalidationPath::Batch
                })
                .unwrap()
        };
        let clean = crossover(0);
        assert!(crossover(40) > clean);
        // Monotone in `affected`: once batch wins it keeps winning.
        for n in crossover(40)..crossover(40) + 100 {
            assert_eq!(plan_revalidation(n, 40, 10_000, 0, 10_000), RevalidationPath::Batch);
        }
    }

    #[test]
    fn cost_model_patches_small_deltas_and_rebuilds_floods() {
        // Weekly churn: a handful of deltas against thousands of
        // candidates — always patch.
        assert!(patch_beats_rebuild(1, 10_000));
        assert!(patch_beats_rebuild(50, 10_000));
        // A delta flood rewriting most of a small index — rebuild.
        assert!(!patch_beats_rebuild(5_000, 100));
        // The sync cost never exceeds the rebuild bound.
        let rebuild_bound = index_sync_cost(usize::MAX / 2, 100);
        assert!(index_sync_cost(1_000_000, 100) <= rebuild_bound);
        assert_eq!(index_sync_cost(0, 100), 0.0);
    }

    #[test]
    fn weekly_replay_patches_indexes_without_rebuilds() {
        let w = world();
        let mut engine = TimelineEngine::new(&w, Date::ymd(2022, 2, 1));
        engine.take_stats();
        // A weekly replay with enough churn that batch rounds occur,
        // plus one deliberately delta-heavy step (a quarter of all
        // ROAs revoked) to force index syncs with a deep pending queue.
        let steps = crate::timeline::weekly_steps(&w, 8, 0.05, w.config.seed);
        for step in steps {
            engine.step(step.date, step.deltas);
        }
        let ids: Vec<RoaId> = engine.repository().roas().map(|r| r.id).collect();
        engine.apply_all(
            ids.iter().step_by(4).map(|&roa| RegistryDelta::RoaRemoved { roa }),
        );
        let stats = engine.stats();
        assert!(stats.index_patches > 0, "batch rounds must splice, got {stats:?}");
        assert_eq!(
            stats.index_rebuilds, 0,
            "weekly churn must never trigger a full index rebuild, got {stats:?}"
        );
        assert_eq!(snapshot_statuses(&engine), reference_statuses(&engine));
    }

    #[test]
    fn origin_activation_and_membership_deltas() {
        let w = world();
        let d0 = Date::ymd(2015, 1, 1);
        let mut engine = TimelineEngine::new(&w, d0);
        let before = engine.table().len();
        // Find an origin not yet active at d0 that owns intended space.
        let origin = w
            .active_since
            .iter()
            .find(|(asn, since)| {
                **since > d0 && !w.world.intended.prefixes_of(**asn).is_empty()
            })
            .map(|(asn, _)| *asn)
            .expect("some origin activates after 2015");
        engine.apply(RegistryDelta::OriginActivated { origin });
        assert!(engine.table().len() > before);
        let grown = engine.table().len();
        engine.apply(RegistryDelta::OriginActivated { origin });
        assert_eq!(engine.table().len(), grown, "re-activation is a no-op");

        assert!(!engine.members().contains(&Asn(u32::MAX)));
        engine.apply(RegistryDelta::MemberJoined { asn: Asn(u32::MAX) });
        assert!(engine.members().contains(&Asn(u32::MAX)));
    }

    #[test]
    fn feed_mirrors_engine_state() {
        let w = world();
        let mut engine = TimelineEngine::new(&w, Date::ymd(2022, 2, 1));
        engine.enable_feed();
        // Replaying the drained feed on top of a snapshot of the
        // pre-step state must land exactly on the engine's post-step
        // state — the contract the service's epoch builder relies on.
        let mut mirror_vrps = engine.vrps().clone();
        let mut mirror_status = engine.statuses().to_vec();
        let steps = crate::timeline::weekly_steps(&w, 6, 0.05, w.config.seed);
        for step in steps {
            engine.step(step.date, step.deltas);
            let feed = engine.take_feed().expect("feed enabled");
            assert_eq!(feed.date, engine.date());
            for (vrp, added) in &feed.vrp {
                if *added {
                    mirror_vrps.insert(*vrp);
                } else {
                    mirror_vrps.remove_one(vrp);
                }
            }
            for &(slot, rpki, irr_status) in &feed.status {
                mirror_status[slot] = (rpki, irr_status);
            }
        }
        assert_eq!(mirror_vrps.len(), engine.vrps().len());
        assert_eq!(mirror_status, engine.statuses());
        // Draining again with no intervening step yields an empty feed.
        assert!(engine.take_feed().expect("feed enabled").is_empty());
    }
}
