//! The incremental timeline engine.
//!
//! Both of the paper's longitudinal analyses (§7 yearly participation,
//! §8.5 weekly stability) step a built world through time while its
//! registries change. Rebuilding and re-validating the *entire* visible
//! prefix-origin set at every step is wasteful: a weekly step churns a
//! handful of ROAs and route objects, each of which can only affect the
//! pairs its prefix covers. [`TimelineEngine`] maintains per-pair
//! validation state plus reverse indexes, applies typed
//! [`RegistryDelta`]s, re-validates **only** the affected pairs, and
//! patches the [`IhrSnapshot`] in place.
//!
//! The incremental path shares its per-object rules with the full
//! relying-party pass ([`RelyingParty::evaluate`] is the body of
//! `RelyingParty::validate`'s loop), so incremental state is equivalent
//! to a full recompute *by construction* — and a property test in this
//! crate asserts it bit-for-bit across random delta sequences.
//!
//! Three reverse indexes make deltas cheap:
//!
//! * a coverage trie mapping each visible pair's prefix to its slot, so
//!   a VRP or route object at prefix `P` re-validates exactly the pairs
//!   whose prefix is contained in `P` (`PrefixMap::covered_by`);
//! * a per-ROA contribution map recording which [`Vrp`] each accepted
//!   object put into the set, so a revocation retracts exactly one copy
//!   (twin registrations stay);
//! * a validity-window event queue (from
//!   [`acceptance_window`](manrs_rpki::acceptance_window)) that turns
//!   the passage of time itself into deltas: advancing the date fires
//!   activation/expiry events for exactly the ROAs whose windows open
//!   or close in between.

use crate::build::ScenarioWorld;
use manrs_ihr::{IhrSnapshot, SnapshotIndex};
use manrs_irr::{validate_irr, CompiledIrrIndex, IrrRegistry, IrrStatus, RouteObject};
use manrs_net::{Asn, BatchScratch, Date, Prefix, PrefixMap};
use manrs_rpki::{
    acceptance_window, validate_origin, CaId, CompiledVrpIndex, RelyingParty, RoaId, Roa,
    RpkiRepository, RpkiStatus, Vrp, VrpSet,
};
use manrs_topology::Prefix2As;
use std::collections::{BTreeMap, BTreeSet};

/// Below this many affected pairs a revalidation round uses the scalar
/// per-pair validators; at or above it, the compiled batch indexes
/// (rebuilt lazily if a delta invalidated them) answer the whole round.
/// Statuses are identical either way.
const BATCH_REVALIDATION_THRESHOLD: usize = 32;

/// One typed change to the registries or the routed world. The timeline
/// series are just streams of these applied to a [`TimelineEngine`].
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryDelta {
    /// A new ROA is signed under an existing CA. Ignored (like a real
    /// publication point rejecting it) if the CA is unknown or does not
    /// hold the prefix.
    RoaAdded {
        /// The signing CA.
        ca: CaId,
        /// The payload to sign.
        roa: Roa,
    },
    /// An existing ROA is revoked (withdrawn). Unknown or already
    /// revoked ids are a no-op.
    RoaRemoved {
        /// The object to revoke.
        roa: RoaId,
    },
    /// A route object is registered in the IRR database matching its
    /// `source` tag. Dropped if no such database exists.
    RouteObjectAdded {
        /// The object to register.
        object: RouteObject,
    },
    /// Route objects for (prefix, origin) are deleted from every IRR
    /// database (mirrors hold duplicates).
    RouteObjectRemoved {
        /// The registered prefix.
        prefix: Prefix,
        /// The registered origin.
        origin: Asn,
    },
    /// An AS (all of an org's ASNs arrive as individual deltas) joins
    /// MANRS.
    MemberJoined {
        /// The joining AS.
        asn: Asn,
    },
    /// An AS starts announcing its intended prefixes (drives the yearly
    /// routed-table growth). Already-active origins are a no-op.
    OriginActivated {
        /// The newly active origin.
        origin: Asn,
    },
}

/// Counters describing how much work the engine actually did — the
/// numbers `bench_timeline` reports against the full-rebuild baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Deltas applied (including no-ops).
    pub deltas_applied: usize,
    /// Validity-window events fired by date advancement.
    pub events_fired: usize,
    /// (prefix, origin) pairs re-validated incrementally.
    pub pairs_revalidated: usize,
    /// Snapshot rows whose statuses actually changed.
    pub rows_patched: usize,
}

/// A fully materialized point of a timeline: everything the yearly and
/// weekly analyses consume, cloned out of the engine's live state.
#[derive(Debug, Clone)]
pub struct TimelineSnapshot {
    /// The snapshot date.
    pub date: Date,
    /// The routed table as of the date (origins active by then).
    pub table: Prefix2As,
    /// VRPs validated at the date.
    pub vrps: VrpSet,
    /// Member ASNs as of the date.
    pub members: BTreeSet<Asn>,
    /// The IHR datasets over the world's fixed visible set, statuses
    /// validated at the date against the engine's registries.
    pub ihr: IhrSnapshot,
}

/// Incremental re-validation state over one built world.
///
/// The engine clones the world's registries (so delta streams never
/// mutate the world) and owns the evolving validation state: the VRP
/// set, the per-pair statuses, the patched snapshot, the routed table,
/// and the membership set. Time only moves forward
/// ([`TimelineEngine::advance_to`]); registry changes arrive as
/// [`RegistryDelta`]s ([`TimelineEngine::apply_all`]), and
/// [`TimelineEngine::step`] does both in one re-validation batch.
pub struct TimelineEngine<'w> {
    world: &'w ScenarioWorld,
    date: Date,
    repository: RpkiRepository,
    irr: IrrRegistry,
    vrps: VrpSet,
    /// Which VRP each accepted ROA currently contributes.
    contributions: BTreeMap<RoaId, Vrp>,
    /// Pending validity-window crossings, keyed by the first date the
    /// ROA's acceptance changes.
    events: BTreeSet<(Date, RoaId)>,
    members: BTreeSet<Asn>,
    active: BTreeSet<Asn>,
    table: Prefix2As,
    /// The distinct visible (prefix, origin) pairs, slot-indexed.
    pairs: Vec<(Prefix, Asn)>,
    /// Reverse index: pair prefix → slot, queried with `covered_by` to
    /// find every pair a registry change at some prefix can affect.
    coverage: PrefixMap<usize>,
    /// Current (rpki, irr) status per slot — the engine's source of
    /// truth, mirrored into `snapshot` by in-place patching.
    status: Vec<(RpkiStatus, IrrStatus)>,
    snapshot: IhrSnapshot,
    index: SnapshotIndex,
    /// Compiled VRP index over `vrps`; `None` when a delta has mutated
    /// the set since the last build (rebuilt lazily by large rounds).
    rpki_index: Option<CompiledVrpIndex>,
    /// Compiled route-object index over `irr`; invalidated the same way.
    irr_index: Option<CompiledIrrIndex>,
    /// Reused argsort scratch for the batch revalidation rounds.
    scratch: BatchScratch,
    /// Reused batch query/result buffers.
    batch_pairs: Vec<(Prefix, Asn)>,
    batch_rpki: Vec<RpkiStatus>,
    batch_irr: Vec<IrrStatus>,
    stats: EngineStats,
}

impl<'w> TimelineEngine<'w> {
    /// Builds the engine's initial state: registries cloned from the
    /// world, every visible pair validated at `date`, validity-window
    /// events scheduled for every ROA whose acceptance changes after
    /// `date`.
    pub fn new(world: &'w ScenarioWorld, date: Date) -> Self {
        let repository = world.repository.clone();
        let irr = world.irr.clone();

        let rp = RelyingParty::new(date);
        let mut vrps = VrpSet::new();
        let mut contributions = BTreeMap::new();
        let mut events = BTreeSet::new();
        for signed in repository.roas() {
            if let Some((start, end)) = acceptance_window(&repository, signed) {
                if start > date {
                    events.insert((start, signed.id));
                }
                let after_end = end.plus_days(1);
                if after_end > date {
                    events.insert((after_end, signed.id));
                }
            }
            if let Ok(vrp) = rp.evaluate(&repository, signed) {
                vrps.insert(vrp);
                contributions.insert(signed.id, vrp);
            }
        }

        let members = world.manrs.member_asns(date);
        let active: BTreeSet<Asn> = world
            .active_since
            .iter()
            .filter(|(_, since)| **since <= date)
            .map(|(asn, _)| *asn)
            .collect();
        let mut table = Prefix2As::new();
        for (prefix, origin) in world.world.intended.entries() {
            if active.contains(origin) {
                table.add(*prefix, *origin);
            }
        }

        let mut snapshot = world.ihr.clone();
        let index = SnapshotIndex::build(&snapshot);
        let mut pairs: Vec<(Prefix, Asn)> = Vec::new();
        let mut seen: BTreeSet<(Prefix, Asn)> = BTreeSet::new();
        let mut coverage = PrefixMap::new();
        for obs in world.rib.visible() {
            let key = (obs.prefix, obs.origin);
            if seen.insert(key) {
                coverage.insert(obs.prefix, pairs.len());
                pairs.push(key);
            }
        }
        // Initial validation is a full-table round: compile both
        // indexes once and answer every pair through the batch kernels.
        let rpki_index = CompiledVrpIndex::build(&vrps);
        let irr_index = CompiledIrrIndex::build(&irr);
        let mut scratch = BatchScratch::new();
        let (mut batch_rpki, mut batch_irr) = (Vec::new(), Vec::new());
        rpki_index.validate_batch_into(&pairs, &mut scratch, &mut batch_rpki);
        irr_index.validate_batch_into(&pairs, &mut scratch, &mut batch_irr);
        let mut status = Vec::with_capacity(pairs.len());
        for (i, &(prefix, origin)) in pairs.iter().enumerate() {
            let (rpki, irr_status) = (batch_rpki[i], batch_irr[i]);
            index.patch(&mut snapshot, prefix, origin, rpki, irr_status);
            status.push((rpki, irr_status));
        }

        TimelineEngine {
            world,
            date,
            repository,
            irr,
            vrps,
            contributions,
            events,
            members,
            active,
            table,
            pairs,
            coverage,
            status,
            snapshot,
            index,
            rpki_index: Some(rpki_index),
            irr_index: Some(irr_index),
            scratch,
            batch_pairs: Vec::new(),
            batch_rpki,
            batch_irr,
            stats: EngineStats::default(),
        }
    }

    /// The current engine date.
    pub fn date(&self) -> Date {
        self.date
    }

    /// The world this engine steps through time.
    pub fn world(&self) -> &'w ScenarioWorld {
        self.world
    }

    /// The IHR snapshot, patched to the current date and registry state.
    pub fn snapshot(&self) -> &IhrSnapshot {
        &self.snapshot
    }

    /// The routed table as of the current date.
    pub fn table(&self) -> &Prefix2As {
        &self.table
    }

    /// The VRP set as of the current date and registry state.
    pub fn vrps(&self) -> &VrpSet {
        &self.vrps
    }

    /// The engine's (delta-mutated) RPKI repository.
    pub fn repository(&self) -> &RpkiRepository {
        &self.repository
    }

    /// The engine's (delta-mutated) IRR registry.
    pub fn irr(&self) -> &IrrRegistry {
        &self.irr
    }

    /// Member ASNs as of the current date.
    pub fn members(&self) -> &BTreeSet<Asn> {
        &self.members
    }

    /// The distinct visible (prefix, origin) pairs under incremental
    /// maintenance.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Work counters accumulated since construction (or the last
    /// [`TimelineEngine::take_stats`]).
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Returns and resets the work counters — per-step accounting for
    /// benchmarks.
    pub fn take_stats(&mut self) -> EngineStats {
        std::mem::take(&mut self.stats)
    }

    /// Advances the engine to `date` (which must not move backwards),
    /// firing the validity-window events in between and re-validating
    /// the pairs they cover.
    pub fn advance_to(&mut self, date: Date) {
        let mut affected = BTreeSet::new();
        self.advance_inner(date, &mut affected);
        self.revalidate_slots(&affected);
    }

    /// Applies one delta and re-validates the pairs it covers.
    pub fn apply(&mut self, delta: RegistryDelta) {
        self.apply_all(std::iter::once(delta));
    }

    /// Applies a batch of deltas, re-validating each affected pair once
    /// no matter how many deltas touch it.
    pub fn apply_all<I: IntoIterator<Item = RegistryDelta>>(&mut self, deltas: I) {
        let mut affected = BTreeSet::new();
        for delta in deltas {
            self.apply_inner(delta, &mut affected);
        }
        self.revalidate_slots(&affected);
    }

    /// One timeline step: advance to `date`, apply the step's deltas,
    /// and re-validate every affected pair in a single batch.
    pub fn step<I: IntoIterator<Item = RegistryDelta>>(&mut self, date: Date, deltas: I) {
        let mut affected = BTreeSet::new();
        self.advance_inner(date, &mut affected);
        for delta in deltas {
            self.apply_inner(delta, &mut affected);
        }
        self.revalidate_slots(&affected);
    }

    /// Clones the current state into a [`TimelineSnapshot`].
    pub fn materialize(&self) -> TimelineSnapshot {
        TimelineSnapshot {
            date: self.date,
            table: self.table.clone(),
            vrps: self.vrps.clone(),
            members: self.members.clone(),
            ihr: self.snapshot.clone(),
        }
    }

    fn advance_inner(&mut self, date: Date, affected: &mut BTreeSet<usize>) {
        assert!(date >= self.date, "TimelineEngine only moves forward in time");
        self.date = date;
        let due: Vec<(Date, RoaId)> =
            self.events.range(..=(date, RoaId(u64::MAX))).copied().collect();
        for key in due {
            self.events.remove(&key);
            self.stats.events_fired += 1;
            self.sync_roa(key.1, affected);
        }
    }

    fn apply_inner(&mut self, delta: RegistryDelta, affected: &mut BTreeSet<usize>) {
        self.stats.deltas_applied += 1;
        match delta {
            RegistryDelta::RoaAdded { ca, roa } => {
                if let Ok(id) = self.repository.sign_roa(ca, roa) {
                    self.schedule_roa(id);
                    self.sync_roa(id, affected);
                }
            }
            RegistryDelta::RoaRemoved { roa } => {
                if self.repository.revoke_roa(roa).is_ok() {
                    self.sync_roa(roa, affected);
                }
            }
            RegistryDelta::RouteObjectAdded { object } => {
                let prefix = object.prefix;
                if self.irr.add_route(object) {
                    self.irr_index = None;
                    self.mark_covered(&prefix, affected);
                }
            }
            RegistryDelta::RouteObjectRemoved { prefix, origin } => {
                if self.irr.remove_route(&prefix, origin) > 0 {
                    self.irr_index = None;
                    self.mark_covered(&prefix, affected);
                }
            }
            RegistryDelta::MemberJoined { asn } => {
                self.members.insert(asn);
            }
            RegistryDelta::OriginActivated { origin } => {
                if self.active.insert(origin) {
                    for prefix in self.world.world.intended.prefixes_of(origin) {
                        self.table.add(*prefix, origin);
                    }
                }
            }
        }
    }

    /// Schedules the validity-window crossings of a (newly signed) ROA
    /// that lie after the current date.
    fn schedule_roa(&mut self, id: RoaId) {
        let Some(signed) = self.repository.roa(id) else { return };
        if let Some((start, end)) = acceptance_window(&self.repository, signed) {
            if start > self.date {
                self.events.insert((start, id));
            }
            let after_end = end.plus_days(1);
            if after_end > self.date {
                self.events.insert((after_end, id));
            }
        }
    }

    /// Re-derives one ROA's acceptance at the current date and
    /// reconciles the VRP set with what it contributed before. Safe to
    /// call spuriously (an event firing after the ROA was revoked, a
    /// revocation of an already-rejected object): a no-op when the
    /// contribution is unchanged.
    fn sync_roa(&mut self, id: RoaId, affected: &mut BTreeSet<usize>) {
        let rp = RelyingParty::new(self.date);
        let accepted =
            self.repository.roa(id).and_then(|signed| rp.evaluate(&self.repository, signed).ok());
        let previous = self.contributions.get(&id).copied();
        match (previous, accepted) {
            (None, Some(vrp)) => {
                self.vrps.insert(vrp);
                self.rpki_index = None;
                self.contributions.insert(id, vrp);
                self.mark_covered(&vrp.prefix, affected);
            }
            (Some(vrp), None) => {
                self.vrps.remove_one(&vrp);
                self.rpki_index = None;
                self.contributions.remove(&id);
                self.mark_covered(&vrp.prefix, affected);
            }
            (Some(old), Some(new)) if old != new => {
                self.vrps.remove_one(&old);
                self.vrps.insert(new);
                self.rpki_index = None;
                self.contributions.insert(id, new);
                self.mark_covered(&old.prefix, affected);
                self.mark_covered(&new.prefix, affected);
            }
            _ => {}
        }
    }

    /// Marks every pair whose prefix is covered by `prefix` (equal or
    /// more specific) — exactly the pairs whose RFC 6811 / IRR outcome a
    /// registry change at `prefix` can influence.
    fn mark_covered(&self, prefix: &Prefix, affected: &mut BTreeSet<usize>) {
        for &slot in self.coverage.covered_by(prefix) {
            affected.insert(slot);
        }
    }

    fn revalidate_slots(&mut self, affected: &BTreeSet<usize>) {
        if affected.len() >= BATCH_REVALIDATION_THRESHOLD {
            self.revalidate_slots_batch(affected);
            return;
        }
        for &slot in affected {
            let (prefix, origin) = self.pairs[slot];
            let rpki = validate_origin(&self.vrps, &prefix, origin);
            let irr_status = validate_irr(&self.irr, &prefix, origin);
            self.stats.pairs_revalidated += 1;
            self.patch_slot(slot, prefix, origin, rpki, irr_status);
        }
    }

    /// Batch revalidation round: rebuild whichever compiled index a
    /// delta invalidated (amortized over every affected pair), then
    /// answer the whole round through the batch kernels with the
    /// engine's reused scratch and buffers.
    fn revalidate_slots_batch(&mut self, affected: &BTreeSet<usize>) {
        let rpki_index =
            self.rpki_index.get_or_insert_with(|| CompiledVrpIndex::build(&self.vrps));
        let irr_index =
            self.irr_index.get_or_insert_with(|| CompiledIrrIndex::build(&self.irr));
        self.batch_pairs.clear();
        self.batch_pairs.extend(affected.iter().map(|&slot| self.pairs[slot]));
        rpki_index.validate_batch_into(&self.batch_pairs, &mut self.scratch, &mut self.batch_rpki);
        irr_index.validate_batch_into(&self.batch_pairs, &mut self.scratch, &mut self.batch_irr);
        self.stats.pairs_revalidated += affected.len();
        for (i, &slot) in affected.iter().enumerate() {
            let (prefix, origin) = self.pairs[slot];
            let (rpki, irr_status) = (self.batch_rpki[i], self.batch_irr[i]);
            self.patch_slot(slot, prefix, origin, rpki, irr_status);
        }
    }

    fn patch_slot(
        &mut self,
        slot: usize,
        prefix: Prefix,
        origin: Asn,
        rpki: RpkiStatus,
        irr_status: IrrStatus,
    ) {
        if (rpki, irr_status) != self.status[slot] {
            self.status[slot] = (rpki, irr_status);
            self.stats.rows_patched +=
                self.index.patch(&mut self.snapshot, prefix, origin, rpki, irr_status);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn world() -> ScenarioWorld {
        ScenarioWorld::builder(ScenarioConfig::small(11)).build()
    }

    /// Full recompute of every pair's statuses against the engine's
    /// current registries — the reference the incremental path must
    /// match bit-for-bit.
    fn reference_statuses(engine: &TimelineEngine<'_>) -> Vec<(RpkiStatus, IrrStatus)> {
        let (vrps, _) = RelyingParty::new(engine.date()).validate(engine.repository());
        engine
            .pairs
            .iter()
            .map(|(p, o)| (validate_origin(&vrps, p, *o), validate_irr(engine.irr(), p, *o)))
            .collect()
    }

    fn snapshot_statuses(engine: &TimelineEngine<'_>) -> Vec<(RpkiStatus, IrrStatus)> {
        engine
            .pairs
            .iter()
            .map(|&(prefix, origin)| {
                let row = engine
                    .snapshot()
                    .prefix_origins
                    .iter()
                    .find(|po| po.prefix == prefix && po.origin == origin)
                    .expect("pair has a snapshot row");
                (row.rpki, row.irr)
            })
            .collect()
    }

    #[test]
    fn init_matches_world_snapshot() {
        let w = world();
        let engine = TimelineEngine::new(&w, w.config.snapshot_date);
        // At the world's own snapshot date, the engine's patched
        // snapshot must be exactly the world's.
        assert_eq!(engine.snapshot().prefix_origins, w.ihr.prefix_origins);
        assert_eq!(engine.snapshot().transits, w.ihr.transits);
        assert_eq!(engine.vrps().len(), w.vrps.len());
        assert_eq!(engine.members(), &w.member_asns());
    }

    #[test]
    fn revocation_revalidates_only_covered_pairs() {
        let w = world();
        let mut engine = TimelineEngine::new(&w, w.config.snapshot_date);
        engine.take_stats();
        // Revoke the ROA behind some accepted contribution.
        let (&id, _) = engine.contributions.iter().next().expect("accepted ROAs exist");
        engine.apply(RegistryDelta::RoaRemoved { roa: id });
        let stats = engine.take_stats();
        assert!(stats.pairs_revalidated < engine.pair_count());
        assert_eq!(snapshot_statuses(&engine), reference_statuses(&engine));
    }

    #[test]
    fn mixed_delta_batch_matches_full_recompute() {
        let w = world();
        let mut engine = TimelineEngine::new(&w, Date::ymd(2022, 2, 1));
        let ids: Vec<RoaId> = engine.repository().roas().map(|r| r.id).collect();
        let entries = w.world.intended.entries().to_vec();
        let mut deltas: Vec<RegistryDelta> = Vec::new();
        for id in ids.iter().step_by(5) {
            deltas.push(RegistryDelta::RoaRemoved { roa: *id });
        }
        for (prefix, origin) in entries.iter().step_by(7) {
            deltas.push(RegistryDelta::RouteObjectRemoved { prefix: *prefix, origin: *origin });
        }
        engine.step(Date::ymd(2022, 3, 1), deltas);
        assert_eq!(snapshot_statuses(&engine), reference_statuses(&engine));

        // A second step with nothing to do changes nothing.
        let before = snapshot_statuses(&engine);
        engine.apply_all(std::iter::empty());
        assert_eq!(snapshot_statuses(&engine), before);
    }

    #[test]
    fn window_crossings_fire_as_events() {
        let w = world();
        // Start early enough that many ROA windows are still closed,
        // then sweep to the snapshot date: every activation must fire as
        // an event and land the engine on the full-recompute statuses.
        let mut engine = TimelineEngine::new(&w, Date::ymd(2015, 1, 1));
        engine.take_stats();
        engine.advance_to(Date::ymd(2022, 5, 1));
        let stats = engine.take_stats();
        assert!(stats.events_fired > 0, "window openings must fire");
        assert_eq!(snapshot_statuses(&engine), reference_statuses(&engine));
        assert_eq!(engine.vrps().len(), w.vrps.len(), "same date, same VRPs as the world");
    }

    #[test]
    #[should_panic(expected = "only moves forward")]
    fn time_cannot_move_backwards() {
        let w = world();
        let mut engine = TimelineEngine::new(&w, Date::ymd(2022, 2, 1));
        engine.advance_to(Date::ymd(2022, 1, 1));
    }

    #[test]
    fn origin_activation_and_membership_deltas() {
        let w = world();
        let d0 = Date::ymd(2015, 1, 1);
        let mut engine = TimelineEngine::new(&w, d0);
        let before = engine.table().len();
        // Find an origin not yet active at d0 that owns intended space.
        let origin = w
            .active_since
            .iter()
            .find(|(asn, since)| {
                **since > d0 && !w.world.intended.prefixes_of(**asn).is_empty()
            })
            .map(|(asn, _)| *asn)
            .expect("some origin activates after 2015");
        engine.apply(RegistryDelta::OriginActivated { origin });
        assert!(engine.table().len() > before);
        let grown = engine.table().len();
        engine.apply(RegistryDelta::OriginActivated { origin });
        assert_eq!(engine.table().len(), grown, "re-activation is a no-op");

        assert!(!engine.members().contains(&Asn(u32::MAX)));
        engine.apply(RegistryDelta::MemberJoined { asn: Asn(u32::MAX) });
        assert!(engine.members().contains(&Asn(u32::MAX)));
    }
}
