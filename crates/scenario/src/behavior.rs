//! The operator behaviour matrix.
//!
//! Every probability here is the *generative* counterpart of a number
//! the paper measured. The defaults are calibrated so that running the
//! full pipeline over a generated world reproduces the §8–§9 findings in
//! shape: MANRS members register ROAs far more often (Fig. 5a), large
//! MANRS networks neglect their IRR objects once RPKI is in place
//! (Fig. 5b / §8.2), and MANRS networks deploy ROV and customer
//! filtering more (Figs. 7–9).

use manrs_topology::SizeClass;
use serde::{Deserialize, Serialize};

/// One population's behaviour (probabilities in [0, 1]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorModel {
    /// Probability the AS maintains RPKI ROAs at all (per AS).
    pub rpki_registers: f64,
    /// Given it registers, probability each resource block's ROA is
    /// correct (origin and maxLength).
    pub rpki_correct: f64,
    /// Probability the AS maintains IRR route objects (per AS).
    pub irr_registers: f64,
    /// Given registration, probability a route object is stale — it
    /// names an outdated origin, yielding IRR Invalid announcements.
    pub irr_stale: f64,
    /// Probability the AS deploys ROV (drops RPKI-Invalid imports).
    pub rov_deploys: f64,
    /// Probability the AS IRR-filters its customers' announcements.
    pub irr_filters_customers: f64,
    /// Probability the AS keeps current contact information published
    /// (IRR aut-num admin-c or a fresh PeeringDB record) — MANRS
    /// Action 3.
    pub contact_current: f64,
}

impl BehaviorModel {
    /// A perfectly-behaved network: registers everything correctly and
    /// filters everything. Useful for ground-truth tests.
    pub const PERFECT: BehaviorModel = BehaviorModel {
        rpki_registers: 1.0,
        rpki_correct: 1.0,
        irr_registers: 1.0,
        irr_stale: 0.0,
        rov_deploys: 1.0,
        irr_filters_customers: 1.0,
        contact_current: 1.0,
    };

    /// A network doing nothing at all.
    pub const NEGLIGENT: BehaviorModel = BehaviorModel {
        rpki_registers: 0.0,
        rpki_correct: 0.0,
        irr_registers: 0.0,
        irr_stale: 0.0,
        rov_deploys: 0.0,
        irr_filters_customers: 0.0,
        contact_current: 0.0,
    };
}

/// Behaviour for every (membership, size class) cell, plus the CDN
/// program members (which the paper treats separately in §8.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorMatrix {
    /// MANRS ISP members by size class [small, medium, large].
    pub manrs: [BehaviorModel; 3],
    /// Non-members by size class.
    pub non_manrs: [BehaviorModel; 3],
    /// MANRS CDN program members (size-independent; CDNs are judged
    /// against the stricter 100% threshold).
    pub manrs_cdn: BehaviorModel,
}

impl BehaviorMatrix {
    /// The behaviour of one AS.
    pub fn model(&self, is_manrs: bool, is_cdn_member: bool, class: SizeClass) -> BehaviorModel {
        if is_cdn_member {
            return self.manrs_cdn;
        }
        let idx = match class {
            SizeClass::Small => 0,
            SizeClass::Medium => 1,
            SizeClass::Large => 2,
        };
        if is_manrs {
            self.manrs[idx]
        } else {
            self.non_manrs[idx]
        }
    }

    /// The calibrated default (see module docs). Headline anchors from
    /// the paper, May 2022:
    ///
    /// * small MANRS: 60.1% originate only RPKI-Valid vs 24.7% of small
    ///   non-MANRS (§8.1) → per-AS registration 0.72 vs 0.28.
    /// * medium MANRS 41.5% vs 23.8% all-valid → 0.55 vs 0.30.
    /// * large MANRS all originate some Valid; median IRR validity 63.5%
    ///   (MANRS) vs 84.0% (non-MANRS) → higher `irr_stale` for large
    ///   MANRS (RPKI-era neglect, §8.2).
    /// * large MANRS propagate ≤1.1% RPKI Invalid vs ≤6.4% (§9.1) →
    ///   higher `rov_deploys`.
    pub fn calibrated() -> Self {
        BehaviorMatrix {
            manrs: [
                // Small MANRS: bimodal registration, diligent IRR.
                BehaviorModel {
                    rpki_registers: 0.72,
                    rpki_correct: 0.97,
                    irr_registers: 0.93,
                    irr_stale: 0.08,
                    rov_deploys: 0.30,
                    irr_filters_customers: 0.50,
                    contact_current: 0.95,
                },
                // Medium MANRS.
                BehaviorModel {
                    rpki_registers: 0.62,
                    rpki_correct: 0.98,
                    irr_registers: 0.92,
                    irr_stale: 0.12,
                    rov_deploys: 0.45,
                    irr_filters_customers: 0.45,
                    contact_current: 0.95,
                },
                // Large MANRS: RPKI diligent, IRR neglected, strong ROV.
                BehaviorModel {
                    rpki_registers: 0.97,
                    rpki_correct: 0.92,
                    irr_registers: 0.95,
                    irr_stale: 0.34,
                    rov_deploys: 0.82,
                    irr_filters_customers: 0.65,
                    contact_current: 0.98,
                },
            ],
            non_manrs: [
                BehaviorModel {
                    rpki_registers: 0.28,
                    rpki_correct: 0.95,
                    irr_registers: 0.90,
                    irr_stale: 0.12,
                    rov_deploys: 0.05,
                    irr_filters_customers: 0.15,
                    contact_current: 0.60,
                },
                BehaviorModel {
                    rpki_registers: 0.30,
                    rpki_correct: 0.93,
                    irr_registers: 0.88,
                    irr_stale: 0.16,
                    rov_deploys: 0.10,
                    irr_filters_customers: 0.20,
                    contact_current: 0.65,
                },
                BehaviorModel {
                    rpki_registers: 0.80,
                    rpki_correct: 0.88,
                    irr_registers: 0.95,
                    irr_stale: 0.13,
                    rov_deploys: 0.15,
                    irr_filters_customers: 0.35,
                    contact_current: 0.80,
                },
            ],
            // CDN members: near-perfect registration (86% fully meet the
            // 100% bar, the rest miss by a hair on thousands of
            // prefixes), peers-and-customers filtering.
            manrs_cdn: BehaviorModel {
                rpki_registers: 0.99,
                rpki_correct: 0.995,
                irr_registers: 0.99,
                irr_stale: 0.004,
                rov_deploys: 0.90,
                irr_filters_customers: 0.85,
                contact_current: 0.99,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_lookup_by_class_and_membership() {
        let m = BehaviorMatrix::calibrated();
        assert_eq!(m.model(true, false, SizeClass::Small), m.manrs[0]);
        assert_eq!(m.model(true, false, SizeClass::Large), m.manrs[2]);
        assert_eq!(m.model(false, false, SizeClass::Medium), m.non_manrs[1]);
        // CDN membership overrides the class cells.
        assert_eq!(m.model(true, true, SizeClass::Large), m.manrs_cdn);
    }

    #[test]
    fn calibration_orderings_hold() {
        // The generative gaps that produce the paper's findings must be
        // present in the defaults.
        let m = BehaviorMatrix::calibrated();
        for i in 0..3 {
            assert!(
                m.manrs[i].rpki_registers > m.non_manrs[i].rpki_registers,
                "MANRS must register RPKI more at class {i}"
            );
            assert!(
                m.manrs[i].rov_deploys > m.non_manrs[i].rov_deploys,
                "MANRS must deploy ROV more at class {i}"
            );
        }
        // §8.2: large MANRS neglect IRR more than large non-MANRS.
        assert!(m.manrs[2].irr_stale > m.non_manrs[2].irr_stale);
        // CDNs are the most diligent registrants.
        assert!(m.manrs_cdn.rpki_correct > m.manrs[2].rpki_correct);
    }

    #[test]
    fn probabilities_in_range() {
        let m = BehaviorMatrix::calibrated();
        let all = m
            .manrs
            .iter()
            .chain(m.non_manrs.iter())
            .chain(std::iter::once(&m.manrs_cdn));
        for b in all {
            for p in [
                b.rpki_registers,
                b.rpki_correct,
                b.irr_registers,
                b.irr_stale,
                b.rov_deploys,
                b.irr_filters_customers,
                b.contact_current,
            ] {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}
