//! Monte-Carlo adoption sweeps with cross-trial amortized world
//! construction.
//!
//! The paper measures one calibrated world; the questions it raises
//! ("does Action 1 conformance buy hijack resistance?") need
//! percent-adoption sweeps in the style of Reuter et al.'s ROV
//! deployment study: hundreds of (adoption fraction, policy mix, seed)
//! trials. Rebuilding a [`ScenarioWorld`] per trial re-pays topology
//! generation, RPKI signing, path-pool interning and compiled-index
//! flattening every time, so a naive sweep runs at seconds per trial.
//!
//! This module splits world construction in two:
//!
//! * **Shared frozen base** ([`SweepBase`]) — built once per grid: the
//!   scenario world, its CSR [`DenseGraph`], the compiled VRP/IRR index
//!   arenas, the (prefix, origin) pair universe with baseline statuses,
//!   and per-AS *pre-lowered registry deltas* (the ROA and route-object
//!   registrations each AS would add on adopting Action 1, reduced to
//!   the compact `(prefix, origin, maxLength)` form the PR 6 splice
//!   path consumes).
//! * **Per-trial copy-on-write overlays** ([`TrialWorkspace`]) — one
//!   per worker, recycled across trials: a clone of the graph whose
//!   policies are flipped in place for the trial's adopters and
//!   restored afterwards, plus clones of both compiled indexes patched
//!   forward with `patch_insert` and reverse-patched back with
//!   `patch_remove` — zero index rebuilds across the whole grid. Each
//!   workspace owns its [`BatchScratch`], two [`PropagationScratch`]es
//!   and fixed-size selection buffers, so steady-state trial execution
//!   performs no heap allocation.
//!
//! Trials fan over the deterministic fork-join executor
//! ([`manrs_bgp::par_map_with`]); every trial's RNG is seeded from the
//! plan seed and the trial's grid coordinates, so results are
//! bit-for-bit identical for any thread count. Outcomes land in a flat
//! tracker and are summarized per grid cell as mean + bootstrap
//! confidence intervals ([`SweepReport`]), serializable for figure
//! generation.
//!
//! The **MANRS preference** metric is an Eq. 9-flavored analog computed
//! from the victim propagation itself: the share of transit hops (on
//! the paths of ASes that kept routing to the legitimate origin) that
//! traverse a MANRS member or trial adopter, with uniform weights. The
//! paper's Eq. 9 weights transits by AS hegemony; computing hegemony
//! needs a full RIB collection per trial, which would dominate trial
//! cost, so the sweep reports the uniform-weight share and documents
//! the difference honestly.

use crate::build::ScenarioWorld;
use manrs_bgp::{
    par_map_with, propagate_dense_into, propagate_leak_into, Announcement, CollectedRib,
    DenseGraph, Incident, ParallelConfig, PolicyExtension, PolicySet, PropagationScratch,
    Provenance, RouteEntry, TableCollector,
};
use manrs_bgp::VantageSet;
use manrs_ihr::{BiasReport, VantageRanking, VantageSelector};
use manrs_irr::{CompiledIrrIndex, IrrStatus};
use manrs_net::{Asn, BatchScratch, Prefix};
use manrs_rpki::{CompiledVrpIndex, RpkiStatus, Vrp};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// What a trial's adopters do, per MANRS Action 1's two halves:
/// registering their resources (ROAs + IRR route objects) and filtering
/// at their edge (ROV, IRR customer filtering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PolicyMix {
    /// Display name, used as the grid-cell label.
    pub name: &'static str,
    /// Adopters register ROAs for their unregistered resources.
    pub register_roas: bool,
    /// Adopters register IRR route objects for their resources.
    pub register_irr: bool,
    /// The policy extensions adopters add to their base set.
    pub deploy: PolicySet,
}

impl PolicyMix {
    /// Registration only: adopters publish ROAs and route objects but
    /// filter nothing.
    pub const REGISTRATION: PolicyMix = PolicyMix {
        name: "registration",
        register_roas: true,
        register_irr: true,
        deploy: PolicySet::OPEN,
    };

    /// Filtering only: adopters deploy ROV and IRR customer filtering
    /// without registering anything themselves.
    pub const FILTERING: PolicyMix = PolicyMix {
        name: "filtering",
        register_roas: false,
        register_irr: false,
        deploy: PolicySet::MANRS_ISP,
    };

    /// ROV deployment only.
    pub const ROV: PolicyMix = PolicyMix {
        name: "rov",
        register_roas: false,
        register_irr: false,
        deploy: PolicySet::OPEN.with(PolicyExtension::Rov),
    };

    /// Full Action 1: register and filter.
    pub const ACTION1: PolicyMix = PolicyMix {
        name: "action1",
        register_roas: true,
        register_irr: true,
        deploy: PolicySet::MANRS_ISP,
    };

    /// RFC 9234 only-to-customers deployment: adopters reject routes
    /// carrying the OTC mark from customers and lateral peers — the
    /// route-leak defense. Registers nothing.
    pub const OTC: PolicyMix = PolicyMix {
        name: "otc",
        register_roas: false,
        register_irr: false,
        deploy: PolicySet::OPEN.with(PolicyExtension::OnlyToCustomers),
    };

    /// ASPA-style provider verification: adopters require an unbroken
    /// customer descent from customer- and peer-learned routes.
    pub const ASPA: PolicyMix = PolicyMix {
        name: "aspa",
        register_roas: false,
        register_irr: false,
        deploy: PolicySet::OPEN.with(PolicyExtension::Aspa),
    };

    /// IXP route-server posture: adopters validate on behalf of their
    /// members, dropping RPKI-Invalid and IRR Invalid-ASN announcements
    /// from any relationship.
    pub const ROUTE_SERVER: PolicyMix = PolicyMix {
        name: "route_server",
        register_roas: false,
        register_irr: false,
        deploy: PolicySet::ROUTE_SERVER,
    };

    /// The policy an adopter with base policy `base` runs under this
    /// mix. Flips are additive: an AS already filtering keeps doing so.
    pub fn apply(&self, base: PolicySet) -> PolicySet {
        base.union(self.deploy)
    }
}

/// What kind of routing incidents a sweep injects per trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncidentProfile {
    /// Seeded origin hijacks, split 50/50 between exact-prefix and
    /// more-specific forgeries (the historical default).
    Hijacks,
    /// Valley-free route leaks: a random transit AS that learned the
    /// victim's route from a provider or peer re-exports it to every
    /// neighbor. Only path-aware defenses (OTC, ASPA) contain these —
    /// the leaked route is registry-clean.
    RouteLeaks,
}

impl IncidentProfile {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            IncidentProfile::Hijacks => "hijacks",
            IncidentProfile::RouteLeaks => "route_leaks",
        }
    }
}

/// The shared frozen base of one sweep grid: everything every trial
/// reads but never writes. Built once; workers clone only the small
/// mutable parts into their [`TrialWorkspace`].
pub struct SweepBase {
    world: ScenarioWorld,
    graph: DenseGraph,
    base_policies: Vec<PolicySet>,
    vrp_index: CompiledVrpIndex,
    irr_index: CompiledIrrIndex,
    /// Every announced (prefix, origin) pair, announcement order.
    pairs: Vec<(Prefix, Asn)>,
    /// Dense-index membership mask at the snapshot date.
    member_mask: Vec<bool>,
    /// Dense indices of the world's vantage points.
    vantage_idx: Vec<u32>,
    /// CSR per-AS ROA registrations an adopter would add (resources it
    /// holds with no VRP for (prefix, self) in the base world).
    roa_offsets: Vec<u32>,
    roa_deltas: Vec<Vrp>,
    /// CSR per-AS IRR route-object registrations an adopter would add.
    irr_offsets: Vec<u32>,
    irr_deltas: Vec<(Prefix, Asn)>,
    /// Greedy marginal-coverage ranking of the world's vantages over
    /// the base RIB, computed once at freeze time so every warm trial
    /// (and every `select_vantages_within` call) reuses it.
    vantage_ranking: VantageRanking,
}

impl SweepBase {
    /// Freezes `world` into a sweep base. One-time cost: one dense
    /// graph build, two compiled-index builds, and one pass over every
    /// AS's resources to pre-lower its adoption registry deltas.
    pub fn new(world: ScenarioWorld) -> Self {
        let graph = DenseGraph::build(&world.world.topology, &world.policies);
        let n = graph.len();
        let base_policies: Vec<PolicySet> = (0..n).map(|i| graph.policy(i)).collect();
        let vrp_index = CompiledVrpIndex::build(&world.vrps);
        let irr_index = CompiledIrrIndex::build(&world.irr);
        let pairs: Vec<(Prefix, Asn)> =
            world.announcements.iter().map(|a| (a.prefix, a.origin)).collect();

        let roa_registered: BTreeSet<(Prefix, Asn)> =
            world.vrps.iter().into_iter().map(|v| (v.prefix, v.asn)).collect();
        let mut irr_registered: BTreeSet<(Prefix, Asn)> = BTreeSet::new();
        for db in world.irr.databases() {
            for route in db.routes() {
                irr_registered.insert((route.prefix, route.origin));
            }
        }

        let mut roa_offsets = Vec::with_capacity(n + 1);
        let mut roa_deltas = Vec::new();
        let mut irr_offsets = Vec::with_capacity(n + 1);
        let mut irr_deltas = Vec::new();
        roa_offsets.push(0u32);
        irr_offsets.push(0u32);
        for i in 0..n {
            let asn = graph.asn_at(i);
            for prefix in world.world.all_resources(asn) {
                if !roa_registered.contains(&(prefix, asn)) {
                    // Same maxLength the builder's correct registrations
                    // use: room for one level of de-aggregation.
                    let cap = match prefix {
                        Prefix::V4(_) => 24,
                        Prefix::V6(_) => 48,
                    };
                    let max_length = (prefix.len() + 1).min(cap).max(prefix.len());
                    roa_deltas.push(Vrp::new(prefix, asn, max_length));
                }
                if !irr_registered.contains(&(prefix, asn)) {
                    irr_deltas.push((prefix, asn));
                }
            }
            roa_offsets.push(roa_deltas.len() as u32);
            irr_offsets.push(irr_deltas.len() as u32);
        }

        let members = world.member_asns();
        let member_mask: Vec<bool> = (0..n).map(|i| members.contains(&graph.asn_at(i))).collect();
        let vantage_idx: Vec<u32> = world
            .vantages
            .iter()
            .filter_map(|v| graph.index_of(*v))
            .map(|i| i as u32)
            .collect();

        let vantage_ranking = VantageSelector::new(&world.rib).rank();

        SweepBase {
            world,
            graph,
            base_policies,
            vrp_index,
            irr_index,
            pairs,
            member_mask,
            vantage_idx,
            roa_offsets,
            roa_deltas,
            irr_offsets,
            irr_deltas,
            vantage_ranking,
        }
    }

    /// The precomputed vantage-value ranking of the base RIB.
    pub fn vantage_ranking(&self) -> &VantageRanking {
        &self.vantage_ranking
    }

    /// The smallest ranking prefix whose measured bias against the
    /// base RIB stays within `tolerance`, with its [`BiasReport`].
    /// Selection is verified against the actual full-vantage RIB; the
    /// ranking itself is the frozen one, so repeated calls only pay
    /// the bias scans.
    pub fn select_vantages_within(&self, tolerance: f64) -> (VantageSet, BiasReport) {
        VantageSelector::new(&self.world.rib).select_within(&self.vantage_ranking, tolerance)
    }

    /// The frozen world this base was built from.
    pub fn world(&self) -> &ScenarioWorld {
        &self.world
    }

    /// Number of ASes in the base graph.
    pub fn as_count(&self) -> usize {
        self.graph.len()
    }

    /// Number of announced (prefix, origin) pairs every trial
    /// revalidates.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// The ASN at dense index `idx` (the coordinate space of
    /// [`TrialWorkspace::adopters`]).
    pub fn asn_at(&self, idx: usize) -> Asn {
        self.graph.asn_at(idx)
    }

    /// The pre-lowered ROA registrations AS `idx` (dense) would add on
    /// adopting.
    fn roa_deltas_of(&self, idx: usize) -> &[Vrp] {
        &self.roa_deltas[self.roa_offsets[idx] as usize..self.roa_offsets[idx + 1] as usize]
    }

    /// The pre-lowered route-object registrations of AS `idx`.
    fn irr_deltas_of(&self, idx: usize) -> &[(Prefix, Asn)] {
        &self.irr_deltas[self.irr_offsets[idx] as usize..self.irr_offsets[idx + 1] as usize]
    }
}

/// One point of the sweep grid to execute: a (fraction, mix) cell and a
/// trial number within it, with the trial's derived RNG seed.
#[derive(Debug, Clone, Copy)]
pub struct TrialSpec {
    /// Adoption fraction of this cell.
    pub fraction: f64,
    /// Policy mix of this cell.
    pub mix: PolicyMix,
    /// Flat cell index in the plan's grid.
    pub cell: usize,
    /// Trial number within the cell.
    pub trial: usize,
    /// Derived RNG seed (deterministic in the plan seed and grid
    /// coordinates — never in worker identity).
    pub seed: u64,
}

/// Patch-path counters accumulated by one workspace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialCounters {
    /// Successful `patch_insert`/`patch_remove` splices.
    pub splices: u64,
    /// Splice failures that would force a full index rebuild. A sweep
    /// over a well-formed base never takes this path; the bench gates
    /// on it staying zero.
    pub rebuilds: u64,
    /// Arena compactions. The overlay path defers compaction (the
    /// per-trial `restore_from` re-anchor makes it unnecessary), so
    /// sweep trials keep this at zero; it stays in the counter set so
    /// report schemas match the service/timeline patch telemetry.
    pub compactions: u64,
}

/// The measured outcome of one trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Share of (AS, event) slots routed to the attacker.
    pub attacker_share: f64,
    /// Share routed to the legitimate origin.
    pub victim_share: f64,
    /// Share with no route to the contested prefix at all.
    pub disconnected_share: f64,
    /// Share of hijack events observed by at least one vantage point.
    pub detected_share: f64,
    /// Share of announced pairs MANRS-conformant under the overlay
    /// registries (§6.4).
    pub conformant_share: f64,
    /// Share of announced pairs MANRS-*un*conformant (§6.4; the two do
    /// not sum to 1).
    pub unconformant_share: f64,
    /// Uniform-weight Eq. 9 analog: share of victim-path transit hops
    /// through a MANRS member or trial adopter.
    pub manrs_transit_share: f64,
    /// Number of adopters flipped this trial.
    pub adopters: u32,
    /// Patch-path work this trial performed (splices are symmetric:
    /// every insert is reverted by a remove).
    pub counters: TrialCounters,
}

/// A recycled per-worker overlay: the copy-on-write half of a sweep.
///
/// Created once per worker from the [`SweepBase`], then driven through
/// `apply_overlay` → measurements → `clear_overlay` per trial. All
/// buffers are retained across trials, so after the first (warm-up)
/// trial the apply/measure/clear cycle performs no heap allocation.
pub struct TrialWorkspace {
    graph: DenseGraph,
    vrp: CompiledVrpIndex,
    irr: CompiledIrrIndex,
    batch: BatchScratch,
    rpki_out: Vec<RpkiStatus>,
    irr_out: Vec<IrrStatus>,
    prop_victim: PropagationScratch,
    prop_attacker: PropagationScratch,
    /// Selection buffer for the partial Fisher–Yates adopter draw.
    pick: Vec<u32>,
    /// Dense adopter membership of the applied overlay.
    adopter_flags: Vec<bool>,
    /// The applied overlay, if any: (mix, adopter count).
    applied: Option<(PolicyMix, usize)>,
    /// Cumulative patch-path counters (reset sampled per trial).
    counters: TrialCounters,
}

impl TrialWorkspace {
    /// Clones the mutable serving state out of `base` and pre-reserves
    /// arena headroom so a full-adoption trial splices without
    /// reallocating.
    pub fn new(base: &SweepBase) -> Self {
        let n = base.graph.len();
        let mut vrp = base.vrp_index.clone();
        vrp.reserve_headroom(base.roa_deltas.len() * 4 + 256);
        let mut irr = base.irr_index.clone();
        irr.reserve_headroom(base.irr_deltas.len() * 4 + 256);
        TrialWorkspace {
            graph: base.graph.clone(),
            vrp,
            irr,
            batch: BatchScratch::new(),
            rpki_out: Vec::with_capacity(base.pairs.len()),
            irr_out: Vec::with_capacity(base.pairs.len()),
            prop_victim: PropagationScratch::with_capacity(n),
            prop_attacker: PropagationScratch::with_capacity(n),
            pick: (0..n as u32).collect(),
            adopter_flags: vec![false; n],
            applied: None,
            counters: TrialCounters::default(),
        }
    }

    /// Applies one trial's copy-on-write overlay: draws
    /// `round(fraction · n)` adopters (partial Fisher–Yates, seeded),
    /// flips their filtering policies in place, splices their
    /// pre-lowered registry deltas into the compiled indexes, and
    /// revalidates every pair against the overlay. Returns the adopter
    /// count.
    ///
    /// The overlay must be cleared with
    /// [`TrialWorkspace::clear_overlay`] before the next apply.
    pub fn apply_overlay(
        &mut self,
        base: &SweepBase,
        mix: PolicyMix,
        fraction: f64,
        seed: u64,
    ) -> usize {
        assert!(self.applied.is_none(), "previous overlay not cleared");
        let n = base.graph.len();
        let mut rng = StdRng::seed_from_u64(seed);
        for (i, slot) in self.pick.iter_mut().enumerate() {
            *slot = i as u32;
        }
        // Partial Fisher–Yates: the first k slots are a uniform draw
        // without replacement — the same distribution as the builder's
        // quota sampling, without the per-trial allocation.
        let k = ((n as f64) * fraction).round().min(n as f64) as usize;
        for i in 0..k {
            let j = rng.random_range(i..n);
            self.pick.swap(i, j);
        }
        for t in 0..k {
            let idx = self.pick[t] as usize;
            self.adopter_flags[idx] = true;
            if !mix.deploy.is_empty() {
                self.graph.set_policy(idx, mix.apply(base.base_policies[idx]));
            }
            if mix.register_roas {
                for vrp in base.roa_deltas_of(idx) {
                    self.splice_roa(vrp, true);
                }
            }
            if mix.register_irr {
                for &(prefix, origin) in base.irr_deltas_of(idx) {
                    self.splice_route(&prefix, origin, true);
                }
            }
        }
        self.applied = Some((mix, k));
        self.vrp.validate_batch_into(&base.pairs, &mut self.batch, &mut self.rpki_out);
        self.irr.validate_batch_into(&base.pairs, &mut self.batch, &mut self.irr_out);
        k
    }

    /// Reverts the applied overlay: removes the spliced deltas in
    /// reverse order and restores the saved base policies, returning
    /// the workspace to the base state.
    ///
    /// Un-splicing restores match *outcomes* but leaves patch-abandoned
    /// arena slots behind; accumulated across hundreds of trials those
    /// would eventually trigger an allocating auto-compaction mid-trial.
    /// So after the removals the compiled indexes are re-anchored to the
    /// frozen base layout with an in-place `clone_from`-style copy —
    /// allocation-free, since the workspace's arenas were cloned from
    /// the base and only ever grow. Every trial therefore starts from
    /// the identical, fragmentation-free arena.
    pub fn clear_overlay(&mut self, base: &SweepBase) {
        let Some((mix, k)) = self.applied.take() else {
            return;
        };
        for t in (0..k).rev() {
            let idx = self.pick[t] as usize;
            if mix.register_irr {
                for &(prefix, origin) in base.irr_deltas_of(idx).iter().rev() {
                    self.splice_route(&prefix, origin, false);
                }
            }
            if mix.register_roas {
                for vrp in base.roa_deltas_of(idx).iter().rev() {
                    self.splice_roa(vrp, false);
                }
            }
            self.graph.set_policy(idx, base.base_policies[idx]);
            self.adopter_flags[idx] = false;
        }
        self.vrp.restore_from(&base.vrp_index);
        self.irr.restore_from(&base.irr_index);
    }

    // Deferred-compaction splices: `clear_overlay`'s `restore_from`
    // re-anchor resets fragmentation every trial, so the automatic
    // (allocating) compaction would be pure overhead in the hot loop.
    fn splice_roa(&mut self, vrp: &Vrp, added: bool) {
        match self.vrp.apply_roa_delta_deferred(vrp, added) {
            Some(_) => self.counters.splices += 1,
            None => self.counters.rebuilds += 1,
        }
    }

    fn splice_route(&mut self, prefix: &Prefix, origin: Asn, added: bool) {
        match self.irr.apply_object_delta_deferred(prefix, origin, added) {
            Some(_) => self.counters.splices += 1,
            None => self.counters.rebuilds += 1,
        }
    }

    /// The dense indices of the applied overlay's adopters (draw
    /// order). Empty when no overlay is applied.
    pub fn adopters(&self) -> &[u32] {
        match self.applied {
            Some((_, k)) => &self.pick[..k],
            None => &[],
        }
    }

    /// The overlay validation results, pair order: `(rpki, irr)` status
    /// slices parallel to the base's pairs.
    pub fn overlay_statuses(&self) -> (&[RpkiStatus], &[IrrStatus]) {
        (&self.rpki_out, &self.irr_out)
    }

    /// Cumulative patch-path counters for this workspace.
    pub fn counters(&self) -> TrialCounters {
        self.counters
    }

    /// Collects the full vantage RIB of the overlay world, reusing the
    /// base graph via [`manrs_bgp::CollectionPlan::collect_on`] —
    /// cross-trial collection never rebuilds adjacency. Allocates (it
    /// returns an owned RIB); meant for equivalence checking and
    /// figure-grade collection, not the per-trial hot loop.
    pub fn collect_overlay(&self, base: &SweepBase, parallel: ParallelConfig) -> CollectedRib {
        let announcements: Vec<Announcement> = base
            .pairs
            .iter()
            .zip(self.rpki_out.iter().zip(&self.irr_out))
            .map(|(&(prefix, origin), (&rpki, &irr))| Announcement::new(prefix, origin, rpki, irr))
            .collect();
        TableCollector::new(&base.world.world.topology, &base.world.policies, &base.world.vantages)
            .parallel(parallel)
            .plan()
            .collect_on(&self.graph, &announcements)
    }

    /// [`TrialWorkspace::collect_overlay`] restricted to a selected
    /// vantage set (typically [`SweepBase::select_vantages_within`]'s
    /// output): the reverse-collection cost drops with the set size
    /// while the observed table is exactly the projection of the full
    /// collection onto the selected vantages.
    pub fn collect_overlay_selected(
        &self,
        base: &SweepBase,
        set: &VantageSet,
        parallel: ParallelConfig,
    ) -> CollectedRib {
        let announcements: Vec<Announcement> = base
            .pairs
            .iter()
            .zip(self.rpki_out.iter().zip(&self.irr_out))
            .map(|(&(prefix, origin), (&rpki, &irr))| Announcement::new(prefix, origin, rpki, irr))
            .collect();
        TableCollector::new(&base.world.world.topology, &base.world.policies, &base.world.vantages)
            .parallel(parallel)
            .plan()
            .vantage_set(set)
            .collect_on(&self.graph, &announcements)
    }

    /// Runs one full trial: overlay on, measure, overlay off. The
    /// outcome depends only on (`base`, `spec`) — never on which worker
    /// ran it or what the workspace ran before.
    pub fn run_trial(
        &mut self,
        base: &SweepBase,
        spec: &TrialSpec,
        incidents: usize,
        profile: IncidentProfile,
    ) -> TrialOutcome {
        let before = self.counters;
        let adopters = self.apply_overlay(base, spec.mix, spec.fraction, spec.seed);
        let mut outcome = self.measure(base, spec.seed, incidents, profile);
        self.clear_overlay(base);
        outcome.adopters = adopters as u32;
        outcome.counters = TrialCounters {
            splices: self.counters.splices - before.splices,
            rebuilds: self.counters.rebuilds - before.rebuilds,
            compactions: self.counters.compactions - before.compactions,
        };
        outcome
    }

    /// Measures the applied overlay: conformance over every pair, plus
    /// `incidents` seeded routing incidents — drawn per `profile` —
    /// propagated over the overlay graph. Allocation-free once warm.
    fn measure(
        &mut self,
        base: &SweepBase,
        seed: u64,
        incidents: usize,
        profile: IncidentProfile,
    ) -> TrialOutcome {
        let n = base.graph.len();
        let pairs = base.pairs.len();
        // Independent stream from the overlay draw so adding events
        // never perturbs adopter selection.
        let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0x004d_4541_5355_5245)); // "MEASURE"

        let mut conformant = 0usize;
        let mut unconformant = 0usize;
        for i in 0..pairs {
            let ann =
                Announcement::new(base.pairs[i].0, base.pairs[i].1, self.rpki_out[i], self.irr_out[i]);
            conformant += usize::from(ann.is_manrs_conformant());
            unconformant += usize::from(ann.is_manrs_unconformant());
        }

        let mut attacker_n = 0u64;
        let mut victim_n = 0u64;
        let mut disconnected_n = 0u64;
        let mut detected_events = 0u64;
        let mut member_hops = 0u64;
        let mut transit_hops = 0u64;
        for _ in 0..incidents {
            let vi = rng.random_range(0..pairs);
            let (victim_prefix, victim_origin) = base.pairs[vi];
            let origin_idx =
                self.graph.index_of(victim_origin).expect("announcement origins are in the topology");
            let victim_ann =
                Announcement::new(victim_prefix, victim_origin, self.rpki_out[vi], self.irr_out[vi]);
            propagate_dense_into(&self.graph, &victim_ann, &mut self.prop_victim);
            // A more-specific forge wins by longest-prefix match wherever
            // it propagates; an exact forge (and a leak, which carries
            // the victim's own prefix) competes on route preference.
            let more_specific = match profile {
                IncidentProfile::Hijacks => {
                    let attacker_idx = loop {
                        let a = rng.random_range(0..n);
                        if a != origin_idx {
                            break a;
                        }
                    };
                    let attacker = self.graph.asn_at(attacker_idx);
                    let drawn = if rng.random_bool(0.5) {
                        Incident::SubprefixHijack { victim_prefix, attacker }
                    } else {
                        Incident::OriginHijack { victim_prefix, attacker }
                    };
                    // A host-route victim has no more-specific: the draw
                    // degrades to an exact-prefix hijack explicitly.
                    let incident = match drawn.forged_prefix() {
                        Ok(_) => drawn,
                        Err(_) => Incident::OriginHijack { victim_prefix, attacker },
                    };
                    let forged =
                        incident.forged_prefix().expect("exact hijacks always have a prefix");
                    // The forged announcement is validated against the
                    // *overlay* registries: a victim whose adoption
                    // registered a ROA this trial turns the hijack
                    // RPKI-Invalid for every ROV deployer.
                    let forged_ann = Announcement::new(
                        forged,
                        attacker,
                        self.vrp.validate(&forged, attacker),
                        self.irr.validate(&forged, attacker),
                    );
                    propagate_dense_into(&self.graph, &forged_ann, &mut self.prop_attacker);
                    forged != victim_prefix
                }
                IncidentProfile::RouteLeaks => {
                    // Draw a leakable AS: one whose best route to the
                    // victim came from a provider or peer (an origin- or
                    // customer-rooted route re-exported everywhere is
                    // just normal transit). Bounded retry; a dry draw
                    // leaves an empty leak wave, counting every slot for
                    // the victim.
                    let mut leaker_idx = rng.random_range(0..n);
                    for _ in 0..4 * n {
                        if leaker_idx != origin_idx
                            && matches!(
                                self.prop_victim.route_at(leaker_idx).map(|e| e.provenance),
                                Some(Provenance::Provider(_) | Provenance::Peer(_))
                            )
                        {
                            break;
                        }
                        leaker_idx = rng.random_range(0..n);
                    }
                    let leaker = self.graph.asn_at(leaker_idx);
                    propagate_leak_into(
                        &self.graph,
                        &victim_ann,
                        leaker,
                        &self.prop_victim,
                        &mut self.prop_attacker,
                    );
                    false
                }
            };

            for i in 0..n {
                match self.classify(i, more_specific) {
                    Some(true) => attacker_n += 1,
                    Some(false) => {
                        victim_n += 1;
                        // Eq. 9 analog: walk the via chain and count
                        // member vs non-member transit hops.
                        let mut cur = i;
                        loop {
                            let entry = self.prop_victim.route_at(cur).expect("routed");
                            let Some(next) = entry.via_index() else { break };
                            if next == origin_idx {
                                break;
                            }
                            transit_hops += 1;
                            member_hops +=
                                u64::from(base.member_mask[next] || self.adopter_flags[next]);
                            cur = next;
                        }
                    }
                    None => disconnected_n += 1,
                }
            }
            let detected = base
                .vantage_idx
                .iter()
                .any(|&v| self.classify(v as usize, more_specific) == Some(true));
            detected_events += u64::from(detected);
        }

        let slots = (incidents as u64 * n as u64).max(1) as f64;
        TrialOutcome {
            attacker_share: attacker_n as f64 / slots,
            victim_share: victim_n as f64 / slots,
            disconnected_share: disconnected_n as f64 / slots,
            detected_share: detected_events as f64 / (incidents.max(1)) as f64,
            conformant_share: conformant as f64 / pairs.max(1) as f64,
            unconformant_share: unconformant as f64 / pairs.max(1) as f64,
            manrs_transit_share: if transit_hops == 0 {
                0.0
            } else {
                member_hops as f64 / transit_hops as f64
            },
            adopters: 0,
            counters: TrialCounters::default(),
        }
    }

    /// Who dense index `i` routes the contested prefix to after the two
    /// propagations: `Some(true)` = attacker, `Some(false)` = victim,
    /// `None` = disconnected.
    fn classify(&self, i: usize, more_specific: bool) -> Option<bool> {
        let victim = self.prop_victim.route_at(i);
        let attacker = self.prop_attacker.route_at(i);
        match (attacker, victim) {
            (None, None) => None,
            (Some(_), None) => Some(true),
            (None, Some(_)) => Some(false),
            (Some(a), Some(v)) => {
                Some(more_specific || preference_key(&a) < preference_key(&v))
            }
        }
    }
}

/// Route-preference sort key mirroring propagation's selection order:
/// provenance rank (origin > customer > peer > provider), then path
/// length, then lowest upstream dense index. An exact-prefix tie goes
/// to the incumbent victim (strict `<`).
fn preference_key(entry: &RouteEntry) -> (u8, u32, u32) {
    let rank = match entry.provenance {
        Provenance::Origin => 0,
        Provenance::Customer(_) => 1,
        Provenance::Peer(_) => 2,
        Provenance::Provider(_) => 3,
    };
    (rank, entry.hops, entry.via_index().map_or(u32::MAX, |v| v as u32))
}

/// SplitMix64 — the seed scrambler for deriving independent per-trial
/// streams from grid coordinates.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mean and seeded-bootstrap percentile confidence interval of one
/// metric over a cell's trials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Sample mean over the cell's trials.
    pub mean: f64,
    /// 2.5th percentile of the bootstrap distribution of the mean.
    pub ci_lo: f64,
    /// 97.5th percentile of the bootstrap distribution of the mean.
    pub ci_hi: f64,
}

fn summarize(samples: &[f64], rng: &mut StdRng, resamples: usize) -> MetricSummary {
    let n = samples.len().max(1);
    let mean = samples.iter().sum::<f64>() / n as f64;
    if samples.len() < 2 {
        return MetricSummary { mean, ci_lo: mean, ci_hi: mean };
    }
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            (0..samples.len())
                .map(|_| samples[rng.random_range(0..samples.len())])
                .sum::<f64>()
                / samples.len() as f64
        })
        .collect();
    means.sort_by(f64::total_cmp);
    let idx = |q: f64| ((resamples as f64 - 1.0) * q).round() as usize;
    MetricSummary { mean, ci_lo: means[idx(0.025)], ci_hi: means[idx(0.975)] }
}

/// One grid cell's summary: the cell coordinates plus every metric's
/// mean and bootstrap CI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Adoption fraction of the cell.
    pub fraction: f64,
    /// Policy-mix name of the cell.
    pub mix: String,
    /// Trials run in the cell.
    pub trials: usize,
    /// Mean adopters per trial.
    pub adopters_mean: f64,
    /// Share of (AS, event) slots routed to the attacker.
    pub attacker_share: MetricSummary,
    /// Share routed to the legitimate origin.
    pub victim_share: MetricSummary,
    /// Share with no route at all.
    pub disconnected_share: MetricSummary,
    /// Share of events seen by ≥1 vantage.
    pub detected_share: MetricSummary,
    /// MANRS-conformant share of announced pairs.
    pub conformant_share: MetricSummary,
    /// MANRS-unconformant share of announced pairs.
    pub unconformant_share: MetricSummary,
    /// Uniform-weight Eq. 9 analog (victim-path member transit share).
    pub manrs_transit_share: MetricSummary,
    /// Total splices the cell's trials performed.
    pub splices: u64,
}

/// Whole-grid totals, the quantities the bench gate reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepTotals {
    /// Trials executed.
    pub trials: u64,
    /// Successful patch splices (inserts + reverts) across the grid.
    pub index_patches: u64,
    /// Splice failures that would have forced an index rebuild — a
    /// healthy sweep reports zero.
    pub index_rebuilds: u64,
    /// Automatic arena compactions (may vary with worker scheduling;
    /// excluded from determinism comparisons).
    pub compactions: u64,
}

/// The serialized result of one sweep grid: per-cell summaries ready
/// for figure generation, plus grid totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// The plan seed.
    pub seed: u64,
    /// Adoption fractions of the grid (cell-major axis).
    pub fractions: Vec<f64>,
    /// Policy-mix names of the grid (cell-minor axis).
    pub mixes: Vec<String>,
    /// Trials per cell.
    pub trials_per_cell: usize,
    /// Incident events per trial.
    pub hijacks_per_trial: usize,
    /// Incident profile injected per trial.
    pub incidents: String,
    /// Per-cell summaries, fraction-major order.
    pub cells: Vec<CellReport>,
    /// Whole-grid totals.
    pub totals: SweepTotals,
}

/// A Monte-Carlo adoption-sweep plan: a grid of (adoption fraction,
/// policy mix) cells, each run for a number of seeded trials over the
/// deterministic executor against one [`SweepBase`].
///
/// ```no_run
/// use manrs_scenario::{PolicyMix, ScenarioConfig, ScenarioWorld, SweepBase, SweepPlan};
///
/// let world = ScenarioWorld::builder(ScenarioConfig::small(42)).build();
/// let base = SweepBase::new(world);
/// let report = SweepPlan::new()
///     .fractions(&[0.0, 0.25, 0.5, 0.75])
///     .mixes(&[PolicyMix::ROV, PolicyMix::ACTION1])
///     .trials(8)
///     .hijacks(8)
///     .seed(7)
///     .run(&base);
/// assert_eq!(report.cells.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct SweepPlan {
    fractions: Vec<f64>,
    mixes: Vec<PolicyMix>,
    trials: usize,
    hijacks: usize,
    incidents: IncidentProfile,
    seed: u64,
    bootstrap: usize,
    parallel: ParallelConfig,
}

impl Default for SweepPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepPlan {
    /// A plan with the default grid: fractions 0/0.25/0.5/0.75, the
    /// ROV and full-Action-1 mixes, 8 trials × 8 hijack events per
    /// cell, parallelism from `MANRS_THREADS`.
    pub fn new() -> Self {
        SweepPlan {
            fractions: vec![0.0, 0.25, 0.5, 0.75],
            mixes: vec![PolicyMix::ROV, PolicyMix::ACTION1],
            trials: 8,
            hijacks: 8,
            incidents: IncidentProfile::Hijacks,
            seed: 0x004D_414E_5253, // "MANRS"
            bootstrap: 200,
            parallel: ParallelConfig::from_env(),
        }
    }

    /// Overrides the adoption fractions (clamped to `[0, 1]`).
    pub fn fractions(mut self, fractions: &[f64]) -> Self {
        self.fractions = fractions.iter().map(|f| f.clamp(0.0, 1.0)).collect();
        self
    }

    /// Overrides the policy mixes.
    pub fn mixes(mut self, mixes: &[PolicyMix]) -> Self {
        self.mixes = mixes.to_vec();
        self
    }

    /// Overrides the trials per cell.
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Overrides the incident events per trial.
    pub fn hijacks(mut self, hijacks: usize) -> Self {
        self.hijacks = hijacks.max(1);
        self
    }

    /// Overrides the incident profile the trials inject (default:
    /// origin hijacks).
    pub fn incidents(mut self, profile: IncidentProfile) -> Self {
        self.incidents = profile;
        self
    }

    /// Overrides the plan seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the bootstrap resample count.
    pub fn bootstrap(mut self, resamples: usize) -> Self {
        self.bootstrap = resamples.max(1);
        self
    }

    /// Overrides the parallelism configuration.
    pub fn parallel(mut self, cfg: ParallelConfig) -> Self {
        self.parallel = cfg;
        self
    }

    /// The trial specs of this plan's grid, execution order
    /// (fraction-major, then mix, then trial).
    pub fn specs(&self) -> Vec<TrialSpec> {
        let mut specs = Vec::with_capacity(self.fractions.len() * self.mixes.len() * self.trials);
        for (fi, &fraction) in self.fractions.iter().enumerate() {
            for (mi, &mix) in self.mixes.iter().enumerate() {
                let cell = fi * self.mixes.len() + mi;
                for trial in 0..self.trials {
                    let seed = splitmix64(
                        self.seed
                            ^ splitmix64((cell as u64) << 32 | trial as u64),
                    );
                    specs.push(TrialSpec { fraction, mix, cell, trial, seed });
                }
            }
        }
        specs
    }

    /// Runs the grid over `base` and summarizes per cell. Deterministic
    /// in the plan seed: trial RNG streams derive from grid coordinates
    /// and the fan-out preserves order, so the report's cells are
    /// bit-for-bit identical for any thread count (only the
    /// scheduling-dependent `totals.compactions` may vary).
    pub fn run(&self, base: &SweepBase) -> SweepReport {
        let specs = self.specs();
        let outcomes: Vec<TrialOutcome> = par_map_with(
            &self.parallel,
            &specs,
            || TrialWorkspace::new(base),
            |ws, spec| ws.run_trial(base, spec, self.hijacks, self.incidents),
        );

        let cell_count = self.fractions.len() * self.mixes.len();
        let mut cells = Vec::with_capacity(cell_count);
        let mut totals = SweepTotals { trials: outcomes.len() as u64, ..SweepTotals::default() };
        for cell in 0..cell_count {
            let fraction = self.fractions[cell / self.mixes.len()];
            let mix = self.mixes[cell % self.mixes.len()];
            let cell_outcomes: Vec<&TrialOutcome> = specs
                .iter()
                .zip(&outcomes)
                .filter(|(s, _)| s.cell == cell)
                .map(|(_, o)| o)
                .collect();
            let mut rng = StdRng::seed_from_u64(splitmix64(self.seed ^ 0xB007 ^ cell as u64));
            let metric = |f: &dyn Fn(&TrialOutcome) -> f64, rng: &mut StdRng| {
                let samples: Vec<f64> = cell_outcomes.iter().map(|o| f(o)).collect();
                summarize(&samples, rng, self.bootstrap)
            };
            let splices: u64 = cell_outcomes.iter().map(|o| o.counters.splices).sum();
            for o in &cell_outcomes {
                totals.index_patches += o.counters.splices;
                totals.index_rebuilds += o.counters.rebuilds;
                totals.compactions += o.counters.compactions;
            }
            cells.push(CellReport {
                fraction,
                mix: mix.name.to_string(),
                trials: cell_outcomes.len(),
                adopters_mean: cell_outcomes.iter().map(|o| o.adopters as f64).sum::<f64>()
                    / cell_outcomes.len().max(1) as f64,
                attacker_share: metric(&|o| o.attacker_share, &mut rng),
                victim_share: metric(&|o| o.victim_share, &mut rng),
                disconnected_share: metric(&|o| o.disconnected_share, &mut rng),
                detected_share: metric(&|o| o.detected_share, &mut rng),
                conformant_share: metric(&|o| o.conformant_share, &mut rng),
                unconformant_share: metric(&|o| o.unconformant_share, &mut rng),
                manrs_transit_share: metric(&|o| o.manrs_transit_share, &mut rng),
                splices,
            });
        }

        SweepReport {
            seed: self.seed,
            fractions: self.fractions.clone(),
            mixes: self.mixes.iter().map(|m| m.name.to_string()).collect(),
            trials_per_cell: self.trials,
            hijacks_per_trial: self.hijacks,
            incidents: self.incidents.name().to_string(),
            cells,
            totals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use std::sync::OnceLock;

    fn base() -> &'static SweepBase {
        static BASE: OnceLock<SweepBase> = OnceLock::new();
        BASE.get_or_init(|| {
            SweepBase::new(ScenarioWorld::builder(ScenarioConfig::small(42)).build())
        })
    }

    fn tiny_plan() -> SweepPlan {
        SweepPlan::new()
            .fractions(&[0.0, 0.5])
            .mixes(&[PolicyMix::ACTION1])
            .trials(3)
            .hijacks(4)
            .seed(11)
    }

    #[test]
    fn report_shape_and_invariants() {
        let report = tiny_plan().parallel(ParallelConfig::serial()).run(base());
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.totals.trials, 6);
        assert_eq!(report.totals.index_rebuilds, 0, "splice path must never fall back");
        for cell in &report.cells {
            assert_eq!(cell.trials, 3);
            for m in [
                &cell.attacker_share,
                &cell.victim_share,
                &cell.disconnected_share,
                &cell.detected_share,
                &cell.conformant_share,
                &cell.unconformant_share,
                &cell.manrs_transit_share,
            ] {
                assert!(m.ci_lo <= m.mean + 1e-12 && m.mean <= m.ci_hi + 1e-12);
                assert!((0.0..=1.0).contains(&m.mean), "share out of range: {m:?}");
            }
            let s = &cell.attacker_share;
            let v = &cell.victim_share;
            let d = &cell.disconnected_share;
            assert!((s.mean + v.mean + d.mean - 1.0).abs() < 1e-9);
        }
        // The zero-adoption cell splices nothing.
        assert_eq!(report.cells[0].splices, 0);
        assert!(report.cells[1].splices > 0, "adopting trials must splice");
    }

    #[test]
    fn base_vantage_ranking_selects_and_projects() {
        let b = base();
        let ranking = b.vantage_ranking();
        assert_eq!(ranking.scores.len(), b.world().vantages.len());
        assert_eq!(ranking.rib_vantages, b.world().vantages);
        // A loose tolerance shrinks the set; the bias report is the
        // measured one for exactly that set.
        let (set, report) = b.select_vantages_within(0.25);
        assert!(!set.is_empty());
        assert!(set.len() <= b.world().vantages.len());
        assert!(report.within(0.25));
        assert_eq!(report.selected, set.len());
        // Collecting the zero-overlay world on the selected set equals
        // projecting the full overlay collection onto it.
        let mut ws = TrialWorkspace::new(b);
        let full = ws.collect_overlay(b, ParallelConfig::serial());
        let sub = ws.collect_overlay_selected(b, &set, ParallelConfig::serial());
        assert_eq!(sub.vantages, set.vantages());
        assert_eq!(sub.observations.len(), full.observations.len());
        for (so, fo) in sub.observations.iter().zip(&full.observations) {
            let projected: Vec<Vec<Asn>> = full
                .materialize_paths(fo)
                .into_iter()
                .filter(|p| set.contains(p[0]))
                .collect();
            assert_eq!(sub.materialize_paths(so), projected, "{:?}", so.prefix);
        }
        // Tolerance 0 is the full set.
        let (all, zero) = b.select_vantages_within(0.0);
        assert_eq!(all.len(), b.world().vantages.len());
        assert_eq!(zero.hegemony_max_abs_delta, 0.0);
    }

    #[test]
    fn report_is_thread_invariant() {
        let serial = tiny_plan().parallel(ParallelConfig::serial()).run(base());
        for threads in [2, 4, 8] {
            let parallel =
                tiny_plan().parallel(ParallelConfig::with_threads(threads)).run(base());
            assert_eq!(serial.cells, parallel.cells, "threads={threads}");
            assert_eq!(serial.totals.index_patches, parallel.totals.index_patches);
            assert_eq!(serial.totals.index_rebuilds, parallel.totals.index_rebuilds);
        }
    }

    #[test]
    fn adoption_buys_hijack_resistance() {
        // Full Action 1 at 90% adoption must shrink the attacker's
        // reach relative to zero adoption: victims register ROAs and
        // 90% of ASes drop the now-Invalid forged announcements.
        let report = SweepPlan::new()
            .fractions(&[0.0, 0.9])
            .mixes(&[PolicyMix::ACTION1])
            .trials(4)
            .hijacks(8)
            .seed(3)
            .parallel(ParallelConfig::serial())
            .run(base());
        let low = report.cells[0].attacker_share.mean;
        let high = report.cells[1].attacker_share.mean;
        assert!(
            high < low,
            "attacker share must drop with adoption: {low:.3} -> {high:.3}"
        );
        // Registration also lifts conformance.
        assert!(
            report.cells[1].conformant_share.mean > report.cells[0].conformant_share.mean
        );
    }

    #[test]
    fn overlay_cycle_restores_base_state() {
        let b = base();
        let mut ws = TrialWorkspace::new(b);
        let spec = TrialSpec {
            fraction: 0.7,
            mix: PolicyMix::ACTION1,
            cell: 0,
            trial: 0,
            seed: 99,
        };
        let mut first = ws.run_trial(b, &spec, 4, IncidentProfile::Hijacks);
        // After clear_overlay the workspace must behave as freshly
        // cloned: same trial, same outcome, and policies equal base.
        // Auto-compaction timing depends on accumulated fragmentation,
        // so only the compaction counter may differ between cycles.
        let mut second = ws.run_trial(b, &spec, 4, IncidentProfile::Hijacks);
        first.counters.compactions = 0;
        second.counters.compactions = 0;
        assert_eq!(first, second);
        for i in 0..b.as_count() {
            assert_eq!(ws.graph.policy(i), b.base_policies[i], "policy {i} not restored");
        }
        assert_eq!(ws.counters().rebuilds, 0);
        // The overlay statuses of a cleared workspace re-validate to the
        // base world's statuses.
        ws.apply_overlay(b, PolicyMix::ACTION1, 0.0, 1);
        let (rpki, irr) = ws.overlay_statuses();
        for (i, ann) in b.world().announcements.iter().enumerate() {
            assert_eq!(rpki[i], ann.rpki);
            assert_eq!(irr[i], ann.irr);
        }
        ws.clear_overlay(b);
    }

    #[test]
    fn otc_adoption_contains_route_leaks() {
        // Route leaks are registry-clean, so only the path-aware OTC
        // defense contains them: at 90% OTC adoption the leak wave must
        // capture fewer (AS, event) slots than at zero adoption.
        let report = SweepPlan::new()
            .fractions(&[0.0, 0.9])
            .mixes(&[PolicyMix::OTC])
            .trials(4)
            .hijacks(8)
            .incidents(IncidentProfile::RouteLeaks)
            .seed(5)
            .parallel(ParallelConfig::serial())
            .run(base());
        assert_eq!(report.incidents, "route_leaks");
        let low = report.cells[0].attacker_share.mean;
        let high = report.cells[1].attacker_share.mean;
        assert!(low > 0.0, "unprotected leaks must capture someone");
        assert!(
            high < low,
            "OTC adoption must contain leaks: {low:.4} -> {high:.4}"
        );
        // Leaks carry the victim's own announcement: conformance is
        // untouched by the incident machinery.
        for cell in &report.cells {
            let s = &cell.attacker_share;
            let v = &cell.victim_share;
            let d = &cell.disconnected_share;
            assert!((s.mean + v.mean + d.mean - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn route_server_adoption_contains_hijacks() {
        // The route-server posture validates for members on *any*
        // relationship: subprefix/exact hijacks of ROA-covered victims
        // are RPKI-Invalid and get dropped wherever an adopter sits.
        let report = SweepPlan::new()
            .fractions(&[0.0, 0.9])
            .mixes(&[PolicyMix::ROUTE_SERVER])
            .trials(4)
            .hijacks(8)
            .seed(7)
            .parallel(ParallelConfig::serial())
            .run(base());
        let low = report.cells[0].attacker_share.mean;
        let high = report.cells[1].attacker_share.mean;
        assert!(
            high < low,
            "route-server adoption must shrink hijack reach: {low:.4} -> {high:.4}"
        );
    }

    #[test]
    fn specs_are_deterministic_and_cover_grid() {
        let plan = tiny_plan();
        let a = plan.specs();
        let b = plan.specs();
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.cell, y.cell);
        }
        // Distinct trials get distinct seeds.
        let mut seeds: Vec<u64> = a.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 6);
    }
}
