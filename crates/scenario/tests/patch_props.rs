//! Patch-vs-rebuild equivalence for the compiled validation indexes.
//!
//! The timeline engine splices registry deltas into [`CompiledVrpIndex`]
//! and [`CompiledIrrIndex`] in place instead of rebuilding them. These
//! properties drive both indexes with random delta sequences mirrored
//! into the source registries and assert the patched indexes are
//! indistinguishable from freshly rebuilt ones through the whole batched
//! validation pipeline — at 1, 2, 4 and 8 worker threads, so the
//! parallel fan-out sees identical column data regardless of how the
//! arena was produced.

use manrs_bgp::{validate_pairs_batch, ParallelConfig};
use manrs_irr::{CompiledIrrIndex, IrrDatabase, IrrRegistry, RouteObject};
use manrs_net::{Asn, Date, Ipv4Prefix, Prefix};
use manrs_rpki::{CompiledVrpIndex, Vrp, VrpSet};
use proptest::prelude::*;

/// Strategy biased toward colliding prefixes: a 16-slot 10.0.0.0/8
/// neighbourhood at lengths that nest, so patches constantly splice
/// into shared closure runs instead of disjoint leaves.
fn clustered_prefix() -> impl Strategy<Value = Prefix> {
    (0u32..16, 20u8..=28).prop_map(|(host, len)| {
        let bits = 0x0A00_0000 | (host << 8);
        Prefix::V4(Ipv4Prefix::from_bits_truncated(bits, len).expect("len in range"))
    })
}

fn route(prefix: Prefix, origin: u32) -> RouteObject {
    RouteObject {
        prefix,
        origin: Asn(origin),
        descr: "prop churn".into(),
        mnt_by: "MNT-PROP".into(),
        source: "RADB".into(),
        last_modified: Date::ymd(2022, 1, 1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random sequence of ROA and route-object deltas, spliced in
    /// place, validates every (prefix, origin) pair exactly like a
    /// rebuild of the mutated registries.
    #[test]
    fn patched_indexes_match_rebuilt_via_batch_validation(
        ops in prop::collection::vec(
            (clustered_prefix(), 64500u32..64508, 0u8..4, any::<bool>(), any::<bool>()),
            1..40,
        ),
    ) {
        let mut vrps = VrpSet::new();
        let mut registry = IrrRegistry::new();
        registry.add_database(IrrDatabase::new("RADB", None));
        let mut rpki = CompiledVrpIndex::build(&vrps);
        let mut irr = CompiledIrrIndex::build(&registry);

        for &(prefix, origin, slack, added, to_rpki) in &ops {
            if to_rpki {
                let max_length = (prefix.len() + slack).min(32);
                let vrp = Vrp::new(prefix, Asn(origin), max_length);
                if added {
                    vrps.insert(vrp);
                    prop_assert!(rpki.apply_roa_delta(&vrp, true));
                } else if vrps.remove_one(&vrp) {
                    // Deltas mirror the registry, so a splice of a
                    // present VRP must never fall back to a rebuild.
                    prop_assert!(rpki.apply_roa_delta(&vrp, false));
                }
            } else if added {
                prop_assert!(registry.add_route(route(prefix, origin)));
                prop_assert!(irr.apply_object_delta(&prefix, Asn(origin), true));
            } else {
                // remove_route strips every copy; one splice per copy.
                let stripped = registry.remove_route(&prefix, Asn(origin));
                for _ in 0..stripped {
                    prop_assert!(irr.apply_object_delta(&prefix, Asn(origin), false));
                }
            }
        }

        let rebuilt_rpki = CompiledVrpIndex::build(&vrps);
        let rebuilt_irr = CompiledIrrIndex::build(&registry);

        // Query grid: every delta site (right origin) plus shifted-origin
        // and never-registered probes, so NotFound / Invalid / Valid and
        // their IRR counterparts all appear.
        let mut queries: Vec<(Prefix, Asn)> = Vec::new();
        for &(prefix, origin, ..) in &ops {
            queries.push((prefix, Asn(origin)));
            queries.push((prefix, Asn(origin + 1)));
        }
        let outside =
            Prefix::V4(Ipv4Prefix::from_bits_truncated(0xC0A8_0000, 16).expect("len in range"));
        queries.push((outside, Asn(64500)));

        for threads in [1usize, 2, 4, 8] {
            let par = ParallelConfig::with_threads(threads);
            let got = validate_pairs_batch(&par, &rpki, &irr, &queries);
            let want = validate_pairs_batch(&par, &rebuilt_rpki, &rebuilt_irr, &queries);
            prop_assert_eq!(&got, &want, "thread count {}", threads);
        }

        // A patched arena may retain closure runs a fresh flatten prunes,
        // but never fewer live slots than the rebuild needs.
        prop_assert!(rpki.candidate_count() >= rebuilt_rpki.candidate_count());
        prop_assert!(irr.candidate_count() >= rebuilt_irr.candidate_count());
    }
}
