//! Property test: the incremental [`TimelineEngine`] is bit-for-bit
//! equivalent to a full recompute, for random delta sequences.
//!
//! Each case draws a sequence of steps (a date jump plus a batch of
//! deltas interpreted against the world's registries) and replays it
//! through the engine. After every step, the engine's patched snapshot
//! and VRP set must match the from-scratch reference: a full relying
//! party run over the engine's (delta-mutated) repository plus a full
//! IRR validation of every visible pair.

use manrs_irr::{validate_irr, IrrStatus, RouteObject};
use manrs_net::{Asn, Date};
use manrs_rpki::{validate_origin, RelyingParty, RpkiStatus, Vrp};
use manrs_scenario::{RegistryDelta, ScenarioConfig, ScenarioWorld, TimelineEngine};
use proptest::prelude::*;
use std::sync::OnceLock;

fn world() -> &'static ScenarioWorld {
    static WORLD: OnceLock<ScenarioWorld> = OnceLock::new();
    WORLD.get_or_init(|| ScenarioWorld::builder(ScenarioConfig::small(23)).build())
}

/// One proptest-drawn delta, interpreted against the world.
fn interpret(world: &ScenarioWorld, kind: u8, index: usize) -> RegistryDelta {
    let entries = world.world.intended.entries();
    match kind % 6 {
        0 => {
            let ids: Vec<_> = world.repository.roas().map(|r| r.id).collect();
            RegistryDelta::RoaRemoved { roa: ids[index % ids.len()] }
        }
        1 => {
            let (prefix, origin) = entries[index % entries.len()];
            RegistryDelta::RouteObjectRemoved { prefix, origin }
        }
        2 => {
            // Re-sign an existing payload under its own CA: containment
            // always holds, so the delta is never silently dropped.
            let signed: Vec<_> = world.repository.roas().collect();
            let s = signed[index % signed.len()];
            RegistryDelta::RoaAdded { ca: s.ca, roa: s.roa }
        }
        3 => {
            let (prefix, origin) = entries[index % entries.len()];
            let source = world.irr.databases()[index % world.irr.databases().len()]
                .source
                .clone();
            RegistryDelta::RouteObjectAdded {
                object: RouteObject {
                    prefix,
                    origin,
                    descr: "churn".into(),
                    mnt_by: "MAINT-PROP".into(),
                    source,
                    last_modified: Date::ymd(2022, 3, 1),
                },
            }
        }
        4 => RegistryDelta::MemberJoined { asn: Asn(64_512 + (index as u32 % 1024)) },
        _ => {
            let asns: Vec<Asn> = world.active_since.keys().copied().collect();
            RegistryDelta::OriginActivated { origin: asns[index % asns.len()] }
        }
    }
}

/// Reference: full recompute of every visible pair's statuses against
/// the engine's current registries, plus the full relying-party VRP set.
fn reference(engine: &TimelineEngine<'_>) -> (Vec<Vrp>, Vec<(RpkiStatus, IrrStatus)>) {
    let (vrps, _) = RelyingParty::new(engine.date()).validate(engine.repository());
    let statuses = engine
        .snapshot()
        .prefix_origins
        .iter()
        .map(|po| {
            (
                validate_origin(&vrps, &po.prefix, po.origin),
                validate_irr(engine.irr(), &po.prefix, po.origin),
            )
        })
        .collect();
    let mut sorted: Vec<Vrp> = vrps.iter().into_iter().copied().collect();
    sorted.sort();
    (sorted, statuses)
}

fn engine_statuses(engine: &TimelineEngine<'_>) -> Vec<(RpkiStatus, IrrStatus)> {
    engine.snapshot().prefix_origins.iter().map(|po| (po.rpki, po.irr)).collect()
}

fn sorted_engine_vrps(engine: &TimelineEngine<'_>) -> Vec<Vrp> {
    let mut v: Vec<Vrp> = engine.vrps().iter().into_iter().copied().collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random delta sequences: after every step, incremental state ==
    /// full recompute, both the per-row statuses and the VRP multiset.
    #[test]
    fn incremental_equals_full_recompute(
        steps in prop::collection::vec(
            (
                0u32..45,                                        // days to advance
                prop::collection::vec((0u8..6, 0usize..10_000), 0..8), // deltas
            ),
            1..5,
        ),
    ) {
        let w = world();
        let mut engine = TimelineEngine::new(w, Date::ymd(2022, 2, 1));
        let mut date = Date::ymd(2022, 2, 1);
        for (days, raw) in steps {
            date = date.plus_days(days as i64);
            let deltas: Vec<RegistryDelta> =
                raw.into_iter().map(|(kind, index)| interpret(w, kind, index)).collect();
            engine.step(date, deltas);

            let (want_vrps, want_statuses) = reference(&engine);
            prop_assert_eq!(sorted_engine_vrps(&engine), want_vrps);
            prop_assert_eq!(engine_statuses(&engine), want_statuses);
        }
    }

    /// Pure time advancement (no deltas): validity-window events alone
    /// keep the engine on the reference.
    #[test]
    fn advancement_only_equals_full_recompute(jumps in prop::collection::vec(1u32..400, 1..6)) {
        let w = world();
        let mut engine = TimelineEngine::new(w, Date::ymd(2015, 1, 1));
        let mut date = Date::ymd(2015, 1, 1);
        for days in jumps {
            date = date.plus_days(days as i64);
            engine.advance_to(date);
            let (want_vrps, want_statuses) = reference(&engine);
            prop_assert_eq!(sorted_engine_vrps(&engine), want_vrps);
            prop_assert_eq!(engine_statuses(&engine), want_statuses);
        }
    }
}
