//! Overlay-vs-rebuild equivalence: a copy-on-write sweep overlay must
//! be indistinguishable from a `ScenarioWorld` rebuilt from scratch
//! with the same adoption flips.
//!
//! The overlay path reuses the frozen base's dense graph (policies
//! flipped in place) and splices pre-lowered registry deltas into
//! cloned compiled indexes; the from-scratch path independently
//! re-derives the same adopters' registrations from the world's
//! resource map, rebuilds both compiled indexes from mutated source
//! registries, and collects over a freshly built graph. Every
//! validation status and every collected vantage path must agree
//! bit-for-bit, at 1, 2, 4 and 8 threads.

use manrs_bgp::{
    validate_pairs_batch, Announcement, CollectedRib, ParallelConfig, TableCollector,
};
use manrs_irr::{CompiledIrrIndex, IrrDatabase, RouteObject};
use manrs_net::{Asn, Date, Prefix};
use manrs_rpki::{CompiledVrpIndex, Vrp};
use manrs_scenario::{PolicyMix, ScenarioConfig, ScenarioWorld, SweepBase, TrialWorkspace};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::OnceLock;

fn base() -> &'static SweepBase {
    static BASE: OnceLock<SweepBase> = OnceLock::new();
    BASE.get_or_init(|| SweepBase::new(ScenarioWorld::builder(ScenarioConfig::small(37)).build()))
}

/// The from-scratch registrations adopter `asn` would add, re-derived
/// independently of the base's pre-lowered deltas: every held resource
/// not already covered by a (prefix, origin) registration, with the
/// builder's maxLength formula.
fn scratch_deltas(
    world: &ScenarioWorld,
    asn: Asn,
    roa_registered: &BTreeSet<(Prefix, Asn)>,
    irr_registered: &BTreeSet<(Prefix, Asn)>,
) -> (Vec<Vrp>, Vec<(Prefix, Asn)>) {
    let mut roas = Vec::new();
    let mut routes = Vec::new();
    for prefix in world.world.all_resources(asn) {
        if !roa_registered.contains(&(prefix, asn)) {
            let cap = match prefix {
                Prefix::V4(_) => 24,
                Prefix::V6(_) => 48,
            };
            let max_length = (prefix.len() + 1).min(cap).max(prefix.len());
            roas.push(Vrp::new(prefix, asn, max_length));
        }
        if !irr_registered.contains(&(prefix, asn)) {
            routes.push((prefix, asn));
        }
    }
    (roas, routes)
}

fn rib_paths(rib: &CollectedRib) -> Vec<(Prefix, Asn, Vec<Vec<Asn>>)> {
    rib.observations
        .iter()
        .map(|o| {
            (
                o.prefix,
                o.origin,
                o.paths.iter().map(|&id| rib.path(id).to_vec()).collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn overlay_matches_from_scratch_world(
        fraction in 0.0f64..1.0,
        mix_idx in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let mix = [
            PolicyMix::REGISTRATION,
            PolicyMix::FILTERING,
            PolicyMix::ROV,
            PolicyMix::ACTION1,
        ][mix_idx];
        let b = base();
        let world = b.world();

        // Overlay path: flip + splice into the recycled workspace.
        let mut ws = TrialWorkspace::new(b);
        ws.apply_overlay(b, mix, fraction, seed);
        let adopters: Vec<Asn> =
            ws.adopters().iter().map(|&i| b.asn_at(i as usize)).collect();
        let (ov_rpki, ov_irr) = ws.overlay_statuses();
        let (ov_rpki, ov_irr) = (ov_rpki.to_vec(), ov_irr.to_vec());

        // From-scratch path: mutate cloned source registries and
        // rebuild everything the overlay only patched.
        let mut roa_registered: BTreeSet<(Prefix, Asn)> = BTreeSet::new();
        for vrp in world.vrps.iter() {
            roa_registered.insert((vrp.prefix, vrp.asn));
        }
        let mut irr_registered: BTreeSet<(Prefix, Asn)> = BTreeSet::new();
        for db in world.irr.databases() {
            for route in db.routes() {
                irr_registered.insert((route.prefix, route.origin));
            }
        }
        let mut vrps = world.vrps.clone();
        let mut extra = IrrDatabase::new("SWEEP-TEST", None);
        let mut policies = world.policies.clone();
        for &asn in &adopters {
            if mix.register_roas || mix.register_irr {
                let (roas, routes) =
                    scratch_deltas(world, asn, &roa_registered, &irr_registered);
                if mix.register_roas {
                    for vrp in roas {
                        vrps.insert(vrp);
                    }
                }
                if mix.register_irr {
                    for (prefix, origin) in routes {
                        extra.add_route(RouteObject {
                            prefix,
                            origin,
                            descr: "sweep adoption".into(),
                            mnt_by: format!("MAINT-AS{}", origin.value()),
                            source: "SWEEP-TEST".into(),
                            last_modified: Date::ymd(2022, 5, 1),
                        });
                    }
                }
            }
            if !mix.deploy.is_empty() {
                policies.set(asn, mix.apply(policies.get(asn)));
            }
        }
        let mut irr = world.irr.clone();
        irr.add_database(extra);
        let vrp_index = CompiledVrpIndex::build(&vrps);
        let irr_index = CompiledIrrIndex::build(&irr);

        let pairs: Vec<(Prefix, Asn)> =
            world.announcements.iter().map(|a| (a.prefix, a.origin)).collect();
        for threads in [1usize, 2, 4, 8] {
            let par = ParallelConfig::with_threads(threads);

            let scratch_statuses = validate_pairs_batch(&par, &vrp_index, &irr_index, &pairs);
            for (i, &(rpki, irrst)) in scratch_statuses.iter().enumerate() {
                prop_assert_eq!(ov_rpki[i], rpki, "rpki status {} (threads {})", i, threads);
                prop_assert_eq!(ov_irr[i], irrst, "irr status {} (threads {})", i, threads);
            }

            let anns: Vec<Announcement> = pairs
                .iter()
                .zip(&scratch_statuses)
                .map(|(&(p, o), &(r, ir))| Announcement::new(p, o, r, ir))
                .collect();
            let scratch_rib =
                TableCollector::new(&world.world.topology, &policies, &world.vantages)
                    .parallel(par)
                    .plan()
                    .collect(&anns);
            let overlay_rib = ws.collect_overlay(b, par);
            prop_assert_eq!(&overlay_rib.vantages, &scratch_rib.vantages);
            prop_assert_eq!(
                rib_paths(&overlay_rib),
                rib_paths(&scratch_rib),
                "collected RIBs diverge at {} threads",
                threads
            );
        }

        ws.clear_overlay(b);
    }
}
