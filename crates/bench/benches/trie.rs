//! Radix-trie micro-benchmarks: the covering-prefix query sits on the
//! hot path of every validation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use manrs_net::{AddressSpace, Ipv4Prefix, Prefix, PrefixMap};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;

fn random_prefixes(n: usize, seed: u64) -> Vec<Prefix> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let bits: u32 = rng.random_range(0..=u32::MAX);
            let len = rng.random_range(8..=24u8);
            Prefix::V4(Ipv4Prefix::from_bits_truncated(bits, len).expect("len in range"))
        })
        .collect()
}

fn bench_trie(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_map");
    for n in [1_000usize, 10_000, 100_000] {
        let prefixes = random_prefixes(n, 1);
        let queries = random_prefixes(1_000, 2);

        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("insert", n), &prefixes, |b, ps| {
            b.iter(|| {
                let mut map: PrefixMap<u32> = PrefixMap::new();
                for (i, p) in ps.iter().enumerate() {
                    map.insert(*p, i as u32);
                }
                black_box(map.len())
            })
        });

        let map: PrefixMap<u32> = prefixes
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect();
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(BenchmarkId::new("covering", n), &queries, |b, qs| {
            b.iter(|| {
                let mut found = 0usize;
                for q in qs {
                    found += map.covering(q).len();
                }
                black_box(found)
            })
        });
    }
    group.finish();
}

fn bench_address_space(c: &mut Criterion) {
    let mut group = c.benchmark_group("address_space");
    for n in [1_000usize, 20_000] {
        let prefixes = random_prefixes(n, 3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("union", n), &prefixes, |b, ps| {
            b.iter(|| {
                let mut space = AddressSpace::new();
                for p in ps {
                    space.add(p);
                }
                black_box(space.v4_len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trie, bench_address_space);
criterion_main!(benches);
