//! Scaling of the Gao–Rexford propagation engine and the memoized
//! whole-table collection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use manrs_bgp::propagate::{
    propagate_dense, propagate_dense_into, DenseGraph, PropagationScratch,
};
use manrs_bgp::{ParallelConfig, PolicyTable, TableCollector};
use manrs_scenario::{ScenarioConfig, ScenarioWorld};
use manrs_topology::{GeneratorConfig, TopologyBuilder};
use std::hint::black_box;

fn bench_single_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagate_one_announcement");
    for n in [500usize, 2_000, 8_000] {
        let world = TopologyBuilder::new(GeneratorConfig {
            seed: 5,
            total_ases: n,
            tier1_count: 10,
            mid_tier_count: n / 15,
            cdn_count: 10,
            ..GeneratorConfig::default()
        })
        .generate();
        let policies = PolicyTable::default();
        let graph = DenseGraph::build(&world.topology, &policies);
        let (prefix, origin) = world.intended.entries()[world.intended.len() / 2];
        let ann = manrs_bgp::Announcement::new(
            prefix,
            origin,
            manrs_rpki::RpkiStatus::NotFound,
            manrs_irr::IrrStatus::NotFound,
        );
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("fresh", n), &n, |b, _| {
            b.iter(|| black_box(propagate_dense(&graph, &ann)))
        });
        // Same propagation with a reused scratch: the steady-state,
        // allocation-free path.
        let mut scratch = PropagationScratch::with_capacity(graph.len());
        group.bench_with_input(BenchmarkId::new("scratch_reuse", n), &n, |b, _| {
            b.iter(|| {
                propagate_dense_into(&graph, &ann, &mut scratch);
                black_box(scratch.reached())
            })
        });
    }
    group.finish();
}

fn bench_whole_table(c: &mut Criterion) {
    let world = ScenarioWorld::builder(ScenarioConfig::small(12)).build();
    let mut group = c.benchmark_group("collect_table");
    group.sample_size(10);
    group.throughput(Throughput::Elements(world.announcements.len() as u64));
    group.bench_function(
        BenchmarkId::new("serial", world.announcements.len()),
        |b| {
            b.iter(|| {
                black_box(
                    TableCollector::new(&world.world.topology, &world.policies, &world.vantages)
                        .parallel(ParallelConfig::serial())
                        .plan()
                        .collect(&world.announcements),
                )
            })
        },
    );
    group.bench_function(
        BenchmarkId::new("parallel", world.announcements.len()),
        |b| {
            b.iter(|| {
                black_box(
                    TableCollector::new(&world.world.topology, &world.policies, &world.vantages)
                        .parallel(ParallelConfig::auto())
                        .plan()
                        .collect(&world.announcements),
                )
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_single_propagation, bench_whole_table);
criterion_main!(benches);
