//! Throughput of the two validation kernels: RFC 6811 route origin
//! validation against the VRP trie, and IRR validity classification
//! against the registry collection. These run once per (prefix, origin)
//! per snapshot in the pipeline, so they dominate snapshot rebuilds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use manrs_irr::validate_irr;
use manrs_rpki::validate_origin;
use manrs_scenario::{ScenarioConfig, ScenarioWorld};
use std::hint::black_box;

fn bench_validation(c: &mut Criterion) {
    let world = ScenarioWorld::builder(ScenarioConfig::small(11)).build();
    let routes: Vec<_> = world
        .announcements
        .iter()
        .map(|a| (a.prefix, a.origin))
        .collect();

    let mut group = c.benchmark_group("validation");
    group.throughput(Throughput::Elements(routes.len() as u64));
    group.bench_function(BenchmarkId::new("rfc6811", routes.len()), |b| {
        b.iter(|| {
            for (prefix, origin) in &routes {
                black_box(validate_origin(&world.vrps, prefix, *origin));
            }
        })
    });
    group.bench_function(BenchmarkId::new("irr", routes.len()), |b| {
        b.iter(|| {
            for (prefix, origin) in &routes {
                black_box(validate_irr(&world.irr, prefix, *origin));
            }
        })
    });
    group.finish();

    // The relying-party pass (certificate checks + trie build).
    c.bench_function("relying_party_full_pass", |b| {
        b.iter(|| {
            let rp = manrs_rpki::RelyingParty::new(world.config.snapshot_date);
            black_box(rp.validate(&world.repository))
        })
    });
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
