//! End-to-end timing of each figure/table regeneration on a small world
//! (the analysis stage only; world construction is done once outside the
//! measured region).

use criterion::{criterion_group, criterion_main, Criterion};
use manrs_bench::experiments;
use manrs_scenario::{ScenarioConfig, ScenarioWorld};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let world = ScenarioWorld::builder(ScenarioConfig::small(14)).build();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    type Exp = (&'static str, fn(&ScenarioWorld) -> manrs_bench::ExperimentResult);
    let experiments: Vec<Exp> = vec![
        ("fig2", experiments::fig2),
        ("fig4a", experiments::fig4a),
        ("fig4b", experiments::fig4b),
        ("f70", experiments::finding7),
        ("fig5a", experiments::fig5a),
        ("fig5b", experiments::fig5b),
        ("f83", experiments::finding8_conformance),
        ("tab1", experiments::table1),
        ("f87", experiments::finding8_stability),
        ("fig6", experiments::fig6),
        ("fig7", experiments::fig7),
        ("fig8", experiments::fig8),
        ("tab2", experiments::table2),
        ("fig9", experiments::fig9),
    ];
    for (id, f) in experiments {
        group.bench_function(id, |b| b.iter(|| black_box(f(&world))));
    }
    group.finish();

    // And the world build itself, the dominant end-to-end cost.
    let mut group = c.benchmark_group("world_build");
    group.sample_size(10);
    group.bench_function("small", |b| {
        b.iter(|| black_box(ScenarioWorld::builder(ScenarioConfig::small(15)).build()))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
