//! Ablation benches: the runtime cost of the design choices — strict vs
//! lenient filtering policy, and memoized vs naive table collection.

use criterion::{criterion_group, criterion_main, Criterion};
use manrs_bgp::propagate::{propagate_dense, DenseGraph};
use manrs_bgp::{PolicyExtension, PolicySet, PolicyTable, TableCollector};
use manrs_scenario::{ScenarioConfig, ScenarioWorld};
use std::hint::black_box;

fn bench_policy_cost(c: &mut Criterion) {
    // Does filtering make propagation cheaper (fewer nodes explored) or
    // more expensive (policy checks)? The answer motivates the
    // memoization design.
    let world = ScenarioWorld::builder(ScenarioConfig::small(16)).build();
    let ann = world
        .announcements
        .iter()
        .find(|a| a.rpki.is_invalid())
        .copied()
        .expect("an invalid announcement exists");

    let mut group = c.benchmark_group("policy_cost_invalid_route");
    for (label, policy) in [
        ("open", PolicySet::OPEN),
        ("manrs_isp", PolicySet::MANRS_ISP),
        ("manrs_cdn_strict", PolicySet::MANRS_CDN.with(PolicyExtension::IrrStrictLength)),
    ] {
        let graph = DenseGraph::build(&world.world.topology, &PolicyTable::with_default(policy));
        group.bench_function(label, |b| b.iter(|| black_box(propagate_dense(&graph, &ann))));
    }
    group.finish();
}

fn bench_memoization_effect(c: &mut Criterion) {
    let world = ScenarioWorld::builder(ScenarioConfig::small(17)).build();
    let mut group = c.benchmark_group("memoization");
    group.sample_size(10);
    group.bench_function("memoized_full_table", |b| {
        b.iter(|| {
            black_box(
                TableCollector::new(&world.world.topology, &world.policies, &world.vantages)
                    .plan()
                    .collect(&world.announcements),
            )
        })
    });
    // Naive: defeat memoization by giving every announcement a distinct
    // origin-class via per-announcement propagation.
    group.bench_function("unmemoized_per_announcement", |b| {
        b.iter(|| {
            let graph = DenseGraph::build(&world.world.topology, &world.policies);
            let mut total = 0usize;
            for ann in &world.announcements {
                total += propagate_dense(&graph, ann).reached();
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policy_cost, bench_memoization_effect);
criterion_main!(benches);
