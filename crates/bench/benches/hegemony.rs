//! AS hegemony computation cost: per prefix-origin path set, and the
//! full IHR snapshot build.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use manrs_ihr::{build_snapshot, hegemony_scores};
use manrs_net::Asn;
use manrs_scenario::{ScenarioConfig, ScenarioWorld};
use std::hint::black_box;

fn bench_hegemony(c: &mut Criterion) {
    let mut group = c.benchmark_group("hegemony_scores");
    for viewpoints in [10usize, 40, 100] {
        // Synthetic path set: `viewpoints` paths of length 5 sharing a
        // backbone.
        let paths: Vec<Vec<Asn>> = (0..viewpoints)
            .map(|i| {
                vec![
                    Asn(10_000 + i as u32),
                    Asn(100 + (i % 7) as u32),
                    Asn(50),
                    Asn(9),
                ]
            })
            .collect();
        group.throughput(Throughput::Elements(viewpoints as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(viewpoints),
            &paths,
            |b, paths| b.iter(|| black_box(hegemony_scores(paths, paths.len()))),
        );
    }
    group.finish();
}

fn bench_snapshot_build(c: &mut Criterion) {
    let world = ScenarioWorld::builder(ScenarioConfig::small(13)).build();
    let mut group = c.benchmark_group("ihr_snapshot");
    group.sample_size(20);
    group.throughput(Throughput::Elements(world.rib.visible_count() as u64));
    group.bench_function("build_snapshot", |b| {
        b.iter(|| black_box(build_snapshot(&world.rib, &world.world.topology)))
    });
    group.finish();
}

criterion_group!(benches, bench_hegemony, bench_snapshot_build);
criterion_main!(benches);
