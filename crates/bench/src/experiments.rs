//! One function per paper table/figure, each returning an
//! [`ExperimentResult`] comparing the paper's reported numbers with the
//! simulation's. The binaries in `src/bin/` are thin wrappers; the
//! `all_experiments` binary runs everything and writes
//! `EXPERIMENTS.json`.

use crate::{cdf_row, pct, ExperimentResult};
use manrs_core::{
    action1_verdict, action4_verdict, attribute_mismatches, compute_action1,
    compute_action4, conformance_histories, fraction_preferring_manrs,
    preference_scores, rpki_saturation, stability_summary, Action4Metrics,
    ConformanceThreshold, Ecdf, ManrsProgram, ParticipationAnalysis, StabilityClass,
};
use manrs_ihr::PrefixOriginRecord;
use manrs_net::{Asn, Date, Rir};
use manrs_rpki::RpkiStatus;
use manrs_scenario::SnapshotSeries;
use manrs_scenario::ScenarioWorld;
use manrs_topology::SizeClass;
use std::collections::{BTreeMap, BTreeSet};

fn members(world: &ScenarioWorld) -> BTreeSet<Asn> {
    world.member_asns()
}

/// Figure 2: growth of MANRS organizations and ASes, 2015–2022.
pub fn fig2(world: &ScenarioWorld) -> ExperimentResult {
    let mut r = ExperimentResult::new("fig2", "MANRS participant growth 2015-2022");
    let dates: Vec<Date> = SnapshotSeries::yearly(world).map(|s| s.date).collect();
    let series = ParticipationAnalysis::growth_series(&world.manrs, &dates);
    for p in &series {
        r.push(
            format!("{} orgs/ASes", p.date.year()),
            "monotone growth, steep from 2019",
            format!("{} / {}", p.orgs, p.asns),
        );
    }
    let first = series.first().expect("series nonempty");
    let last = series.last().expect("series nonempty");
    r.push(
        "growth factor (orgs)",
        "~10x over the window",
        format!("{:.1}x", last.orgs as f64 / first.orgs.max(1) as f64),
    );
    r
}

/// Figure 4a: MANRS ASes per RIR over time.
pub fn fig4a(world: &ScenarioWorld) -> ExperimentResult {
    let mut r = ExperimentResult::new("fig4a", "MANRS ASes by RIR over time");
    let dates: Vec<Date> = SnapshotSeries::yearly(world).map(|s| s.date).collect();
    let series =
        ParticipationAnalysis::by_rir_series(&world.manrs, &world.world.topology, &dates);
    for (date, counts) in &series {
        let cells: Vec<String> = Rir::ALL
            .iter()
            .map(|rir| format!("{}:{}", rir.name(), counts.get(rir).copied().unwrap_or(0)))
            .collect();
        r.push(format!("{}", date.year()), "-", cells.join(" "));
    }
    // The Brazil event: LACNIC count jumps across 2020.
    let lacnic = |idx: usize| series[idx].1.get(&Rir::Lacnic).copied().unwrap_or(0);
    let pre = lacnic(5); // 2020-01-01
    let post = lacnic(6); // 2021-01-01
    r.push(
        "LACNIC jump across 2020 (NIC.br outreach)",
        "+90 small ASes (Brazil)",
        format!("{pre} -> {post}"),
    );
    r
}

/// Figure 4b: percentage of routed IPv4 space announced by MANRS ASes,
/// per RIR, over time.
pub fn fig4b(world: &ScenarioWorld) -> ExperimentResult {
    let mut r = ExperimentResult::new("fig4b", "% of routed IPv4 space by RIR over time");
    let snaps: Vec<_> = SnapshotSeries::yearly(world).collect();
    let mut last_total = 0.0;
    for snap in &snaps {
        let shares = ParticipationAnalysis::routed_space_share(
            &world.manrs,
            &world.world.topology,
            &snap.table,
            snap.date,
        );
        let total: f64 = shares.values().sum();
        last_total = total;
        let cells: Vec<String> = Rir::ALL
            .iter()
            .map(|rir| format!("{}:{:.1}%", rir.name(), shares.get(rir).copied().unwrap_or(0.0)))
            .collect();
        r.push(format!("{}", snap.date.year()), "-", cells.join(" "));
    }
    r.push(
        "total MANRS share of routed space, 2022",
        "~18% (Fig. 4b stack)",
        format!("{last_total:.1}%"),
    );
    r.push(
        "dominant region",
        "ARIN announces the most member space",
        dominant_region(world),
    );
    // RQ1 characterization: members are disproportionately significant.
    let member_set = members(world);
    let non_members: Vec<manrs_net::Asn> = world
        .world
        .topology
        .asns()
        .filter(|a| !member_set.contains(a))
        .collect();
    let mp = manrs_core::characterize(
        member_set.iter(),
        &world.cones,
        &world.observed_table,
        &world.vrps,
    );
    let np = manrs_core::characterize(
        non_members.iter(),
        &world.cones,
        &world.observed_table,
        &world.vrps,
    );
    r.push(
        "RQ1: median cone (members vs non)",
        "members skew large",
        format!("{} vs {}", mp.median_cone, np.median_cone),
    );
    r.push(
        "RQ1: RPKI-covered share of originated space",
        "members better covered",
        format!("{:.1}% vs {:.1}%", mp.rpki_covered_pct, np.rpki_covered_pct),
    );
    r
}

fn dominant_region(world: &ScenarioWorld) -> String {
    let shares = ParticipationAnalysis::routed_space_share(
        &world.manrs,
        &world.world.topology,
        &world.observed_table,
        world.config.snapshot_date,
    );
    shares
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .map(|(rir, share)| format!("{} ({share:.1}%)", rir.name()))
        .unwrap_or_else(|| "-".into())
}

/// Finding 7.0: organization registration completeness.
pub fn finding7(world: &ScenarioWorld) -> ExperimentResult {
    let mut r = ExperimentResult::new("f70", "Registration completeness (Finding 7.0)");
    let c = ParticipationAnalysis::registration_completeness(
        &world.manrs,
        &world.world.orgs,
        &world.observed_table,
        world.config.snapshot_date,
    );
    r.push("member organizations", "663", c.total().to_string());
    r.push(
        "registered all their ASes",
        "463 (70%)",
        format!("{} ({})", c.fully_registered(), pct(c.fully_registered(), c.total())),
    );
    r.push(
        "announce all space via registered ASes",
        "543 (82%)",
        format!(
            "{} ({})",
            c.all_space_via_registered(),
            pct(c.all_space_via_registered(), c.total())
        ),
    );
    r.push(
        "announce some space from unregistered ASes",
        "117",
        c.some_space_unregistered().to_string(),
    );
    r.push(
        "announce only from unregistered ASes",
        "8",
        c.only_space_unregistered().to_string(),
    );
    r.push(
        "quiescent unregistered ASes only",
        "80",
        c.quiescent_unregistered().to_string(),
    );
    r
}

struct ClassSplit<'a> {
    manrs: Vec<(&'a Asn, &'a Action4Metrics)>,
    non_manrs: Vec<(&'a Asn, &'a Action4Metrics)>,
}

fn split_by_class<'a>(
    world: &ScenarioWorld,
    metrics: &'a BTreeMap<Asn, Action4Metrics>,
    class: SizeClass,
    member_set: &BTreeSet<Asn>,
) -> ClassSplit<'a> {
    let mut split = ClassSplit { manrs: Vec::new(), non_manrs: Vec::new() };
    for (asn, m) in metrics {
        if world.cones.size_class(*asn) != class {
            continue;
        }
        if member_set.contains(asn) {
            split.manrs.push((asn, m));
        } else {
            split.non_manrs.push((asn, m));
        }
    }
    split
}

/// Figure 5a: CDFs of % originated RPKI-Valid prefixes by size class and
/// membership, plus the §8.1 bimodality counts.
pub fn fig5a(world: &ScenarioWorld) -> ExperimentResult {
    let mut r =
        ExperimentResult::new("fig5a", "% of originated RPKI-Valid prefixes (CDF by group)");
    let metrics = compute_action4(&world.ihr);
    let member_set = members(world);
    let paper_anchor = [
        ("small", "bimodal; 60.1% vs 24.7% all-Valid"),
        ("medium", "41.5% vs 23.8% all-Valid"),
        ("large", "every MANRS AS has some Valid"),
    ];
    for (class, anchor) in SizeClass::ALL.into_iter().zip(paper_anchor) {
        let split = split_by_class(world, &metrics, class, &member_set);
        let ecdf_m =
            Ecdf::new(split.manrs.iter().map(|(_, m)| m.og_rpki_valid_pct()).collect());
        let ecdf_n =
            Ecdf::new(split.non_manrs.iter().map(|(_, m)| m.og_rpki_valid_pct()).collect());
        r.push(format!("{class} MANRS CDF"), anchor.1, cdf_row(&ecdf_m));
        r.push(format!("{class} non-MANRS CDF"), "-", cdf_row(&ecdf_n));
        let all_valid =
            |v: &[(&Asn, &Action4Metrics)]| v.iter().filter(|(_, m)| m.only_rpki_valid()).count();
        let none_valid =
            |v: &[(&Asn, &Action4Metrics)]| v.iter().filter(|(_, m)| m.no_rpki_valid()).count();
        r.push(
            format!("{class}: only-Valid originators MANRS vs non"),
            match class {
                SizeClass::Small => "60.1% vs 24.7%",
                SizeClass::Medium => "41.5% vs 23.8%",
                SizeClass::Large => "12.5% vs 5.9%",
            },
            format!(
                "{} vs {}",
                pct(all_valid(&split.manrs), split.manrs.len()),
                pct(all_valid(&split.non_manrs), split.non_manrs.len())
            ),
        );
        r.push(
            format!("{class}: zero-Valid originators MANRS vs non"),
            match class {
                SizeClass::Small => "23.6% vs 68.1%",
                SizeClass::Medium => "14.8% vs 41.4%",
                SizeClass::Large => "0 ASes vs 11 ASes",
            },
            format!(
                "{} vs {}",
                pct(none_valid(&split.manrs), split.manrs.len()),
                pct(none_valid(&split.non_manrs), split.non_manrs.len())
            ),
        );
    }
    r
}

/// Figure 5b: CDFs of % originated IRR-Valid prefixes, plus the §8.2
/// medians and IRR-only counts.
pub fn fig5b(world: &ScenarioWorld) -> ExperimentResult {
    let mut r =
        ExperimentResult::new("fig5b", "% of originated IRR-Valid prefixes (CDF by group)");
    let metrics = compute_action4(&world.ihr);
    let member_set = members(world);
    for class in SizeClass::ALL {
        let split = split_by_class(world, &metrics, class, &member_set);
        let ecdf_m =
            Ecdf::new(split.manrs.iter().map(|(_, m)| m.og_irr_valid_pct()).collect());
        let ecdf_n =
            Ecdf::new(split.non_manrs.iter().map(|(_, m)| m.og_irr_valid_pct()).collect());
        let paper_median = match class {
            SizeClass::Large => "median 63.5% (MANRS) vs 84.0% (non)",
            _ => "similar between groups",
        };
        r.push(format!("{class} MANRS CDF"), paper_median, cdf_row(&ecdf_m));
        r.push(format!("{class} non-MANRS CDF"), "-", cdf_row(&ecdf_n));
        let irr_only =
            |v: &[(&Asn, &Action4Metrics)]| v.iter().filter(|(_, m)| m.irr_only()).count();
        r.push(
            format!("{class}: IRR-only registrants MANRS vs non"),
            match class {
                SizeClass::Small => "23.6% vs 65.4%",
                SizeClass::Medium => "14.8% vs 41.0%",
                SizeClass::Large => "0% vs 11.8%",
            },
            format!(
                "{} vs {}",
                pct(irr_only(&split.manrs), split.manrs.len()),
                pct(irr_only(&split.non_manrs), split.non_manrs.len())
            ),
        );
    }
    r
}

/// Findings 8.3/8.4: AS-level Action 4 conformance for the CDN and ISP
/// programs.
pub fn finding8_conformance(world: &ScenarioWorld) -> ExperimentResult {
    let mut r = ExperimentResult::new("f83", "Action 4 conformance (Findings 8.3-8.4)");
    let metrics = compute_action4(&world.ihr);
    let date = world.config.snapshot_date;
    for (label, paper, program, threshold) in [
        ("CDN program ASes conformant", "18/21 (86%)", ManrsProgram::Cdn, ConformanceThreshold::Cdn),
        ("ISP program ASes conformant", "810/849 (95%)", ManrsProgram::Isp, ConformanceThreshold::Isp),
    ] {
        let asns = world.manrs.program_asns(program, date);
        let conformant = asns
            .iter()
            .filter(|a| action4_verdict(metrics.get(a), threshold).is_conformant())
            .count();
        let trivially = asns.iter().filter(|a| !metrics.contains_key(a)).count();
        r.push(
            label,
            paper,
            format!("{}/{} ({})", conformant, asns.len(), pct(conformant, asns.len())),
        );
        r.push(
            format!("{label} [originating nothing]"),
            if program == ManrsProgram::Isp { "95 ASes" } else { "1 AS" },
            format!("{trivially} ASes"),
        );
    }
    r
}

/// Table 1: case-study attribution of unconformant prefix-origins.
pub fn table1(world: &ScenarioWorld) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "tab1",
        "Unconformant prefix-origins attributed Sibling/C-P vs Unrelated (Table 1)",
    );
    let date = world.config.snapshot_date;
    let by_origin = world.ihr.origins_by_as();
    // Member organizations with unconformant announcements, worst first.
    let mut orgs: Vec<(manrs_topology::OrgId, usize)> = Vec::new();
    for org in world.manrs.member_orgs(date) {
        let rows: Vec<&PrefixOriginRecord> = world
            .world
            .orgs
            .asns_of(org)
            .iter()
            .flat_map(|asn| by_origin.get(asn).into_iter().flatten().copied())
            .collect();
        let unconf = rows
            .iter()
            .filter(|po| manrs_core::is_unconformant_pair(po.rpki, po.irr))
            .count();
        if unconf > 0 {
            orgs.push((org, unconf));
        }
    }
    orgs.sort_by_key(|(org, n)| (std::cmp::Reverse(*n), *org));
    r.push(
        "unconformant member orgs found",
        "6 studied (3 CDNs + 3 largest ISPs)",
        orgs.len().to_string(),
    );
    for (idx, (org, _)) in orgs.iter().take(6).enumerate() {
        let rows: Vec<&PrefixOriginRecord> = world
            .world
            .orgs
            .asns_of(*org)
            .iter()
            .flat_map(|asn| by_origin.get(asn).into_iter().flatten().copied())
            .collect();
        let row = attribute_mismatches(
            &rows,
            &world.vrps,
            &world.irr,
            &world.world.orgs,
            &world.world.topology,
        );
        r.push(
            format!("case {}: RPKI-Invalid (sibling/CP | unrelated)", idx + 1),
            "mostly sibling/C-P (e.g. ISP2: 6 | 2)",
            format!("{} ({} | {})", row.rpki_invalid, row.rpki_sibling_cp, row.rpki_unrelated),
        );
        r.push(
            format!("case {}: IRR-Invalid   (sibling/CP | unrelated)", idx + 1),
            ">50% sibling/C-P (e.g. ISP3: 359 | 127)",
            format!("{} ({} | {})", row.irr_invalid, row.irr_sibling_cp, row.irr_unrelated),
        );
    }
    // Aggregate share, the paper's Finding 8.5.
    let mut sib = 0usize;
    let mut unrel = 0usize;
    for (org, _) in orgs.iter().take(6) {
        let rows: Vec<&PrefixOriginRecord> = world
            .world
            .orgs
            .asns_of(*org)
            .iter()
            .flat_map(|asn| by_origin.get(asn).into_iter().flatten().copied())
            .collect();
        let row = attribute_mismatches(
            &rows,
            &world.vrps,
            &world.irr,
            &world.world.orgs,
            &world.world.topology,
        );
        sib += row.rpki_sibling_cp + row.irr_sibling_cp;
        unrel += row.rpki_unrelated + row.irr_unrelated;
    }
    r.push(
        "sibling/C-P share across cases (Finding 8.5)",
        ">50%",
        pct(sib, sib + unrel),
    );
    r
}

/// Finding 8.7: conformance stability over 12 weekly snapshots.
pub fn finding8_stability(world: &ScenarioWorld) -> ExperimentResult {
    let mut r =
        ExperimentResult::new("f87", "Conformance stability, 12 weekly snapshots (§8.5)");
    let snapshots: Vec<_> =
        SnapshotSeries::weekly(world, 12, 0.004).map(|s| s.ihr).collect();
    let date = world.config.snapshot_date;
    for (label, paper_stable, program, threshold) in [
        ("CDN", "18/21 consistently conformant", ManrsProgram::Cdn, ConformanceThreshold::Cdn),
        ("ISP", "803/849 consistently conformant", ManrsProgram::Isp, ConformanceThreshold::Isp),
    ] {
        let asns: Vec<Asn> = world.manrs.program_asns(program, date).into_iter().collect();
        let histories = conformance_histories(&snapshots, &asns, threshold);
        let summary = stability_summary(&histories);
        let get = |c: StabilityClass| summary.get(&c).copied().unwrap_or(0);
        r.push(
            format!("{label}: always conformant"),
            paper_stable,
            format!("{}/{}", get(StabilityClass::AlwaysConformant), asns.len()),
        );
        r.push(
            format!("{label}: always unconformant"),
            if label == "ISP" { "35 ASes" } else { "3 ASes" },
            get(StabilityClass::AlwaysUnconformant).to_string(),
        );
        r.push(
            format!("{label}: fluctuating"),
            if label == "ISP" { "11 ASes" } else { "0 ASes" },
            get(StabilityClass::Fluctuating).to_string(),
        );
    }
    r
}

/// Figure 6: RPKI saturation of MANRS vs non-MANRS space over time.
pub fn fig6(world: &ScenarioWorld) -> ExperimentResult {
    let mut r = ExperimentResult::new("fig6", "RPKI-covered routed address space (Fig. 6)");
    let snaps: Vec<_> = SnapshotSeries::yearly(world).collect();
    for snap in &snaps {
        let sat = rpki_saturation(&snap.table, &snap.members, &snap.vrps, snap.date);
        r.push(
            format!("{}", snap.date.year()),
            "-",
            format!("MANRS {:.1}% / non {:.1}%", sat.manrs_pct, sat.non_manrs_pct),
        );
    }
    let last = snaps.last().expect("snapshots");
    let sat = rpki_saturation(&last.table, &last.members, &last.vrps, last.date);
    r.push(
        "2022 saturation MANRS vs non-MANRS",
        "58.2% vs 30.2%",
        format!("{:.1}% vs {:.1}%", sat.manrs_pct, sat.non_manrs_pct),
    );
    r
}

/// Figures 7a/7b: propagated RPKI-Invalid and IRR-Invalid shares.
pub fn fig7(world: &ScenarioWorld) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig7",
        "% of propagated RPKI-Invalid (7a) and IRR-Invalid (7b) prefixes",
    );
    let metrics = compute_action1(&world.ihr);
    let member_set = members(world);
    for class in SizeClass::ALL {
        let collect = |member: bool, f: fn(&manrs_core::Action1Metrics) -> f64| -> Ecdf {
            Ecdf::new(
                metrics
                    .iter()
                    .filter(|(asn, m)| {
                        world.cones.size_class(**asn) == class
                            && member_set.contains(*asn) == member
                            && m.propagated > 0
                    })
                    .map(|(_, m)| f(m))
                    .collect(),
            )
        };
        let rpki_m = collect(true, |m| m.pg_rpki_invalid_pct());
        let rpki_n = collect(false, |m| m.pg_rpki_invalid_pct());
        let paper_7a = match class {
            SizeClass::Large => "MANRS max 1.1% vs non 6.4%",
            SizeClass::Medium => "91.3% vs 92.4% propagate none",
            SizeClass::Small => "99.2% vs 99.1% propagate none",
        };
        r.push(format!("7a {class} MANRS"), paper_7a, cdf_row(&rpki_m));
        r.push(format!("7a {class} non-MANRS"), "-", cdf_row(&rpki_n));
        let irr_m = collect(true, |m| m.pg_irr_invalid_pct());
        let irr_n = collect(false, |m| m.pg_irr_invalid_pct());
        let paper_7b = match class {
            SizeClass::Large => "MANRS max 25.5% vs non 74.5%",
            _ => "small MANRS cleaner than small non-MANRS",
        };
        r.push(format!("7b {class} MANRS"), paper_7b, cdf_row(&irr_m));
        r.push(format!("7b {class} non-MANRS"), "-", cdf_row(&irr_n));
    }
    // §9.2's variance comparison for large networks.
    let var = |member: bool| -> f64 {
        Ecdf::new(
            metrics
                .iter()
                .filter(|(asn, m)| {
                    world.cones.size_class(**asn) == SizeClass::Large
                        && member_set.contains(*asn) == member
                        && m.propagated > 0
                })
                .map(|(_, m)| m.pg_irr_invalid_pct())
                .collect(),
        )
        .variance()
        .unwrap_or(0.0)
    };
    r.push(
        "variance of large-network IRR invalidity MANRS vs non",
        "39 vs 134",
        format!("{:.0} vs {:.0}", var(true), var(false)),
    );
    r
}

/// Figure 8: % of propagated MANRS-unconformant customer prefixes.
pub fn fig8(world: &ScenarioWorld) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig8",
        "% of propagated unconformant customer prefixes (Fig. 8)",
    );
    let metrics = compute_action1(&world.ihr);
    let member_set = members(world);
    for class in SizeClass::ALL {
        let collect = |member: bool| -> Ecdf {
            Ecdf::new(
                metrics
                    .iter()
                    .filter(|(asn, m)| {
                        world.cones.size_class(**asn) == class
                            && member_set.contains(*asn) == member
                            && m.customer_propagated > 0
                    })
                    .map(|(_, m)| m.pg_unconformant_pct())
                    .collect(),
            )
        };
        let m = collect(true);
        let n = collect(false);
        let paper = match class {
            SizeClass::Large => "MANRS max <15% vs non max 41.4%; MANRS median 2.5%",
            _ => "MANRS curves dominate (less unconformant)",
        };
        r.push(format!("{class} MANRS"), paper, cdf_row(&m));
        r.push(format!("{class} non-MANRS"), "-", cdf_row(&n));
    }
    r
}

/// Table 2: Action 1 conformance counts by size class.
pub fn table2(world: &ScenarioWorld) -> ExperimentResult {
    let mut r = ExperimentResult::new("tab2", "Action 1 (filtering) conformance (Table 2)");
    let metrics = compute_action1(&world.ihr);
    let member_set = members(world);
    let paper = [
        ("small", "101 (97.1%) | 104 | 448 (99.3%) | 451"),
        ("medium", "200 (65.1%) | 307 | 212 (66.4%) | 319"),
        ("large", "0 (0%) | 24 | 0 (0%) | 24"),
    ];
    for (class, (_, paper_row)) in SizeClass::ALL.into_iter().zip(paper) {
        let class_members: Vec<Asn> = member_set
            .iter()
            .copied()
            .filter(|asn| world.cones.size_class(*asn) == class)
            .collect();
        let mut transit_total = 0usize;
        let mut transit_conformant = 0usize;
        let mut trivially = 0usize;
        for asn in &class_members {
            match metrics.get(asn) {
                None => trivially += 1,
                Some(m) if m.propagated == 0 => trivially += 1,
                Some(m) => {
                    transit_total += 1;
                    if action1_verdict(Some(m)).is_conformant() {
                        transit_conformant += 1;
                    }
                }
            }
        }
        let total_conformant = transit_conformant + trivially;
        r.push(
            format!("{class}: transit-conf | transit | total-conf | total"),
            paper_row,
            format!(
                "{} ({}) | {} | {} ({}) | {}",
                transit_conformant,
                pct(transit_conformant, transit_total),
                transit_total,
                total_conformant,
                pct(total_conformant, class_members.len()),
                class_members.len()
            ),
        );
    }
    r
}

/// Figure 9: MANRS preference score distribution by RPKI status.
pub fn fig9(world: &ScenarioWorld) -> ExperimentResult {
    let mut r =
        ExperimentResult::new("fig9", "MANRS preference score by RPKI status (Fig. 9)");
    let scores = preference_scores(&world.ihr, &members(world));
    for (label, paper, pred) in [
        ("RPKI Valid", "34% prefer MANRS", pred_valid as fn(&RpkiStatus) -> bool),
        ("RPKI NotFound", "36% prefer MANRS", pred_notfound),
        ("RPKI Invalid", "14% prefer MANRS (avoid MANRS)", pred_invalid),
    ] {
        let subset: Vec<_> = scores.iter().filter(|s| pred(&s.rpki)).copied().collect();
        let mean = subset.iter().map(|s| s.score).sum::<f64>() / subset.len().max(1) as f64;
        r.push(
            label,
            paper,
            format!(
                "{:.0}% of {} prefer MANRS (mean score {:+.2})",
                fraction_preferring_manrs(&subset) * 100.0,
                subset.len(),
                mean
            ),
        );
    }
    r
}

fn pred_valid(s: &RpkiStatus) -> bool {
    *s == RpkiStatus::Valid
}
fn pred_notfound(s: &RpkiStatus) -> bool {
    *s == RpkiStatus::NotFound
}
fn pred_invalid(s: &RpkiStatus) -> bool {
    s.is_invalid()
}

/// Every experiment in paper order.
pub fn all(world: &ScenarioWorld) -> Vec<ExperimentResult> {
    vec![
        fig2(world),
        fig4a(world),
        fig4b(world),
        finding7(world),
        fig5a(world),
        fig5b(world),
        finding8_conformance(world),
        table1(world),
        finding8_stability(world),
        fig6(world),
        fig7(world),
        fig8(world),
        table2(world),
        fig9(world),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_scenario::ScenarioConfig;

    #[test]
    fn every_experiment_runs_on_a_small_world() {
        let world = ScenarioWorld::builder(ScenarioConfig::small(5)).build();
        let results = all(&world);
        assert_eq!(results.len(), 14);
        for r in &results {
            assert!(!r.rows.is_empty(), "{} produced no rows", r.id);
            r.print();
        }
        let ids: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
        assert!(ids.contains(&"fig5a") && ids.contains(&"tab2") && ids.contains(&"fig9"));
    }
}
