//! Shared machinery for the experiment harness.
//!
//! Every paper table and figure has a binary in `src/bin/` that builds a
//! world, runs the corresponding analysis, and prints the same rows or
//! series the paper reports, alongside the paper's own numbers for
//! comparison. This module holds what they share: scale selection,
//! world caching, result formatting, and the JSON experiment record
//! written by `all_experiments`.
//!
//! Scale is chosen with the `MANRS_SCALE` environment variable:
//! `small` (~400 ASes, seconds), `medium` (~3000 ASes, the default;
//! realistic shapes), or `paper` (~20k ASes, release builds only).

pub mod experiments;

use manrs_bgp::ParallelConfig;
use manrs_core::Ecdf;
use manrs_scenario::{ScenarioConfig, ScenarioWorld};
use serde::{Deserialize, Serialize};

/// The scale of a generated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// ~400 ASes.
    Small,
    /// ~3000 ASes.
    Medium,
    /// ~20000 ASes.
    Paper,
}

impl Scale {
    /// Reads `MANRS_SCALE` (default: medium).
    pub fn from_env() -> Scale {
        match std::env::var("MANRS_SCALE").as_deref() {
            Ok("small") => Scale::Small,
            Ok("paper") => Scale::Paper,
            _ => Scale::Medium,
        }
    }

    /// The scenario configuration for this scale with the harness seed.
    pub fn config(self, seed: u64) -> ScenarioConfig {
        match self {
            Scale::Small => ScenarioConfig::small(seed),
            Scale::Medium => ScenarioConfig::medium(seed),
            Scale::Paper => ScenarioConfig::paper_scale(seed),
        }
    }
}

/// The seed every experiment binary uses, so their worlds agree.
pub const HARNESS_SEED: u64 = 20_220_501;

/// The effective harness seed: [`HARNESS_SEED`] unless overridden by
/// the `MANRS_BENCH_SEED` environment variable. Bench binaries record
/// this value in their JSON artifacts so results are reproducible on
/// any host. An unparsable override falls back to the default.
pub fn harness_seed() -> u64 {
    std::env::var("MANRS_BENCH_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(HARNESS_SEED)
}

/// Builds the world at the environment-selected scale, logging progress
/// and throughput. Thread count comes from `MANRS_THREADS` (auto when
/// unset); parallelism never changes the built world. The world seed is
/// [`harness_seed()`], so `MANRS_BENCH_SEED` reseeds every bench.
pub fn build_world() -> ScenarioWorld {
    let scale = Scale::from_env();
    let par = ParallelConfig::from_env();
    let seed = harness_seed();
    let threads = par.effective_threads(usize::MAX);
    eprintln!("building {scale:?} world (seed {seed}, {threads} threads) ...");
    let start = std::time::Instant::now();
    let world = ScenarioWorld::builder(scale.config(seed)).parallel(par).build();
    let elapsed = start.elapsed().as_secs_f64();
    let announcements = world.announcements.len();
    eprintln!(
        "world ready: {} ASes, {announcements} announcements, {elapsed:.1}s \
         ({:.0} announcements/s)",
        world.world.topology.len(),
        announcements as f64 / elapsed.max(1e-9)
    );
    world
}

/// One row of an experiment result: a named quantity, the paper's value,
/// and ours.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// What the row measures.
    pub label: String,
    /// The paper's reported value (textual — units vary).
    pub paper: String,
    /// Our measured value.
    pub measured: String,
}

/// One regenerated table or figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id (e.g. `fig5a`, `table2`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The comparison rows.
    pub rows: Vec<Row>,
}

impl ExperimentResult {
    /// Creates an empty result.
    pub fn new(id: &str, title: &str) -> Self {
        ExperimentResult { id: id.into(), title: title.into(), rows: Vec::new() }
    }

    /// Adds one comparison row.
    pub fn push(&mut self, label: impl Into<String>, paper: impl Into<String>, measured: impl Into<String>) {
        self.rows.push(Row { label: label.into(), paper: paper.into(), measured: measured.into() });
    }

    /// Prints the result as an aligned table.
    pub fn print(&self) {
        println!("==== {} — {} ====", self.id, self.title);
        let w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(10)
            .max(10);
        println!("{:<w$}  {:>22}  {:>22}", "quantity", "paper", "measured (sim)", w = w);
        for r in &self.rows {
            println!("{:<w$}  {:>22}  {:>22}", r.label, r.paper, r.measured, w = w);
        }
        println!();
    }
}

/// Summarizes a CDF as the series the paper's figures plot: selected
/// percentiles of the sample distribution.
pub fn cdf_row(ecdf: &Ecdf) -> String {
    if ecdf.is_empty() {
        return "n=0".into();
    }
    format!(
        "n={} p25={:.1} p50={:.1} p75={:.1} max={:.1}",
        ecdf.len(),
        ecdf.quantile(0.25).expect("nonempty"),
        ecdf.median().expect("nonempty"),
        ecdf.quantile(0.75).expect("nonempty"),
        ecdf.max().expect("nonempty"),
    )
}

/// Percentage formatting that tolerates empty denominators.
pub fn pct(n: usize, d: usize) -> String {
    if d == 0 {
        "-".into()
    } else {
        format!("{:.1}%", n as f64 / d as f64 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_seed_defaults_without_override() {
        // CI never sets MANRS_BENCH_SEED for the test job; guard the
        // assertion so a locally exported override doesn't fail it.
        if std::env::var_os("MANRS_BENCH_SEED").is_none() {
            assert_eq!(harness_seed(), HARNESS_SEED);
        }
    }

    #[test]
    fn scale_from_env_defaults_medium() {
        // Not setting the variable in-process: just exercise config
        // construction for each scale.
        for scale in [Scale::Small, Scale::Medium, Scale::Paper] {
            let cfg = scale.config(1);
            assert!(cfg.topology.total_ases >= 400);
        }
    }

    #[test]
    fn result_formatting() {
        let mut r = ExperimentResult::new("figX", "Test");
        r.push("alpha", "1", "2");
        assert_eq!(r.rows.len(), 1);
        r.print(); // must not panic
        assert_eq!(pct(1, 4), "25.0%");
        assert_eq!(pct(1, 0), "-");
    }

    #[test]
    fn cdf_row_formats() {
        let e = Ecdf::new(vec![0.0, 50.0, 100.0]);
        let row = cdf_row(&e);
        assert!(row.contains("n=3"));
        assert!(row.contains("max=100.0"));
        assert_eq!(cdf_row(&Ecdf::new(vec![])), "n=0");
    }
}
