//! Diagnostic decomposition of the batched validation cost (not wired
//! into CI): times the cold batch (argsort + sweep), the warm
//! steady-state batch per index, and the covering-run sweep without the
//! match kernel, then prints the covering-run length distribution and
//! the scalar oracle's cost for comparison. Run at any scale with
//! `MANRS_SCALE=small|medium|paper` to see where batch time goes when
//! `BENCH_propagation.json` moves unexpectedly.

use manrs_bench::{Scale, HARNESS_SEED};
use manrs_bgp::ParallelConfig;
use manrs_irr::CompiledIrrIndex;
use manrs_net::{Asn, BatchScratch, Prefix, PrefixMap};
use manrs_rpki::{CompiledVrpIndex, RpkiStatus};
use manrs_scenario::ScenarioWorld;
use std::time::Instant;

fn time_best(reps: usize, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut sink = 0u64;
    for _ in 0..reps {
        let t = Instant::now();
        sink = sink.wrapping_add(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, sink)
}

fn main() {
    let scale = Scale::from_env();
    let parallel = ParallelConfig::from_env();
    let world = ScenarioWorld::builder(scale.config(HARNESS_SEED))
        .parallel(parallel)
        .build();
    let pairs: Vec<(Prefix, Asn)> = world
        .announcements
        .iter()
        .map(|a| (a.prefix, a.origin))
        .collect();
    let n = pairs.len();
    println!("pairs: {n}");

    let rpki_index = CompiledVrpIndex::build(&world.vrps);
    let irr_index = CompiledIrrIndex::build(&world.irr);
    println!(
        "rpki candidates: {}, irr candidates: {}",
        rpki_index.candidate_count(),
        irr_index.candidate_count()
    );

    // Cold sort (fresh scratch each rep).
    let (t, _) = time_best(20, || {
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        rpki_index.validate_batch_into(&pairs, &mut scratch, &mut out);
        out.len() as u64
    });
    println!("cold batch (sort + sweep): {:.1} us", t * 1e6);

    // Warm batch, one index.
    let mut scratch = BatchScratch::new();
    let mut out = Vec::new();
    rpki_index.validate_batch_into(&pairs, &mut scratch, &mut out);
    let (t, _) = time_best(50, || {
        rpki_index.validate_batch_into(&pairs, &mut scratch, &mut out);
        out.len() as u64
    });
    println!(
        "warm rpki batch: {:.1} us ({:.0} ns/query)",
        t * 1e6,
        t * 1e9 / n as f64
    );

    let mut irr_out = Vec::new();
    irr_index.validate_batch_into(&pairs, &mut scratch, &mut irr_out);
    let (t, _) = time_best(50, || {
        irr_index.validate_batch_into(&pairs, &mut scratch, &mut irr_out);
        irr_out.len() as u64
    });
    println!(
        "warm irr batch: {:.1} us ({:.0} ns/query)",
        t * 1e6,
        t * 1e9 / n as f64
    );

    // Sweep only, no kernel: count covering runs via covering_runs over
    // a rebuilt shape identical to the compiled index's.
    let mut vrp_map: PrefixMap<u32> = PrefixMap::new();
    for vrp in world.vrps.iter() {
        vrp_map.insert(vrp.prefix, vrp.asn.value());
    }
    let shape = vrp_map.flatten_shape(|_| {});
    let (t, _) = time_best(50, || {
        let mut acc = 0u64;
        scratch.covering_runs(&shape, &pairs, |i, run| {
            acc = acc.wrapping_add(i as u64 + run.len() as u64);
        });
        acc
    });
    println!(
        "covering_runs sweep only (rpki): {:.1} us ({:.0} ns/query)",
        t * 1e6,
        t * 1e9 / n as f64
    );

    // Run-length distribution.
    let mut hist = [0usize; 9];
    let mut total = 0usize;
    let mut distinct = std::collections::BTreeSet::new();
    scratch.covering_runs(&shape, &pairs, |i, run| {
        hist[run.len().min(8)] += 1;
        total += run.len();
        distinct.insert(pairs[i].0);
    });
    println!(
        "rpki run lens: {:?} (8 = 8+), mean {:.2}, distinct prefixes {}",
        hist,
        total as f64 / n as f64,
        distinct.len()
    );

    // Re-time the warm batch after a full table collection keeps a large
    // RIB live (the bench's heap/TLB state when its batch stage runs).
    let collector = manrs_bgp::TableCollector::new(
        &world.world.topology,
        &world.policies,
        &world.vantages,
    );
    let rib = collector.clone().parallel(parallel).plan().collect(&world.announcements);
    println!("rib observations: {}", rib.observations.len());
    let (t, _) = time_best(50, || {
        rpki_index.validate_batch_into(&pairs, &mut scratch, &mut out);
        irr_index.validate_batch_into(&pairs, &mut scratch, &mut irr_out);
        out.len() as u64
    });
    println!(
        "warm combined batch with RIB live: {:.1} us ({:.0} ns/query)",
        t * 1e6,
        t * 1e9 / (2 * n) as f64
    );
    drop(rib);
    let (t, _) = time_best(50, || {
        rpki_index.validate_batch_into(&pairs, &mut scratch, &mut out);
        irr_index.validate_batch_into(&pairs, &mut scratch, &mut irr_out);
        out.len() as u64
    });
    println!(
        "warm combined batch after RIB drop: {:.1} us ({:.0} ns/query)",
        t * 1e6,
        t * 1e9 / (2 * n) as f64
    );

    // Scalar oracle for the same pairs (per-query allocating walk).
    let (t, _) = time_best(10, || {
        let mut acc = 0u64;
        for &(prefix, origin) in &pairs {
            acc = acc.wrapping_add(
                (manrs_rpki::validate_origin(&world.vrps, &prefix, origin)
                    == RpkiStatus::Valid) as u64,
            );
        }
        acc
    });
    println!(
        "scalar rpki: {:.1} us ({:.0} ns/query)",
        t * 1e6,
        t * 1e9 / n as f64
    );
}
