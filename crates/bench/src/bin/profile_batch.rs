//! Diagnostic decomposition of the batched validation cost (not wired
//! into CI): times the cold batch (argsort + sweep), the warm
//! steady-state batch per index, and the covering-run sweep without the
//! match kernel, then prints the covering-run length distribution and
//! the scalar oracle's cost for comparison. Run at any scale with
//! `MANRS_SCALE=small|medium|paper` to see where batch time goes when
//! `BENCH_propagation.json` moves unexpectedly.
//!
//! With `--patch` the tool profiles the in-place arena splicing
//! instead: per-splice wall time cold (first touch relocates runs to
//! the arena tail) and warm (settled runs pop and re-append in place),
//! the mean `PatchStats` counters behind each, the fragmentation the
//! churn left behind, and what `compact()` and a full reflatten cost
//! against it. Run it when `BENCH_timeline.json`'s patch economy moves.

use manrs_bench::{Scale, HARNESS_SEED};
use manrs_bgp::ParallelConfig;
use manrs_irr::CompiledIrrIndex;
use manrs_net::{Asn, BatchScratch, PatchStats, Prefix, PrefixMap};
use manrs_rpki::{CompiledVrpIndex, RpkiStatus, Vrp};
use manrs_scenario::ScenarioWorld;
use std::time::Instant;

fn time_best(reps: usize, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut sink = 0u64;
    for _ in 0..reps {
        let t = Instant::now();
        sink = sink.wrapping_add(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, sink)
}

/// `--patch`: decompose the cost of in-place arena splices against the
/// rebuild they replace.
fn profile_patch(world: &ScenarioWorld) {
    let mut vrp_map: PrefixMap<(u32, u8)> = PrefixMap::new();
    for vrp in world.vrps.iter() {
        vrp_map.insert(vrp.prefix, (vrp.asn.value(), vrp.max_length));
    }
    let mut asns = Vec::new();
    let mut lens = Vec::new();
    let mut shape = vrp_map.flatten_shape(|&(a, l)| {
        asns.push(a);
        lens.push(l);
    });
    println!("arena slots: {}", shape.live_len());

    // The work every successful splice avoids.
    let (t_rebuild, _) = time_best(20, || {
        let mut a = Vec::new();
        let mut l = Vec::new();
        let s = vrp_map.flatten_shape(|&(x, y)| {
            a.push(x);
            l.push(y);
        });
        s.live_len() as u64
    });
    println!("full reflatten: {:.1} us", t_rebuild * 1e6);

    let all: Vec<Vrp> = world.vrps.iter().into_iter().copied().collect();
    let stride = (all.len() / 512).max(1);
    let sample: Vec<Vrp> = all.iter().step_by(stride).copied().collect();
    println!("sampled deltas: {} (stride {stride})", sample.len());

    // Cold pass: the first remove/insert cycle per site pays the run
    // relocation to the arena tail.
    let mut cold_stats = PatchStats::default();
    let t = Instant::now();
    for vrp in &sample {
        let value = (vrp.asn.value(), vrp.max_length);
        cold_stats.accumulate(
            shape.patch_remove(&vrp.prefix, value, (&mut asns, &mut lens)).expect("present VRP"),
        );
        cold_stats.accumulate(
            shape.patch_insert(&vrp.prefix, value, (&mut asns, &mut lens)).expect("re-insert"),
        );
    }
    let cold = t.elapsed().as_secs_f64();
    let splices = 2 * sample.len();
    println!(
        "cold splice: {:.0} ns/patch (mean spine {:.2}, slots moved {:.2}, nodes fixed {:.2})",
        cold * 1e9 / splices as f64,
        cold_stats.spine_steps as f64 / splices as f64,
        cold_stats.slots_moved as f64 / splices as f64,
        cold_stats.nodes_fixed as f64 / splices as f64,
    );

    // Warm passes: settled runs pop off and re-append at the tail.
    let mut warm_stats = PatchStats::default();
    let reps = 5;
    let t = Instant::now();
    for _ in 0..reps {
        for vrp in &sample {
            let value = (vrp.asn.value(), vrp.max_length);
            warm_stats.accumulate(
                shape.patch_remove(&vrp.prefix, value, (&mut asns, &mut lens)).expect("present"),
            );
            warm_stats.accumulate(
                shape.patch_insert(&vrp.prefix, value, (&mut asns, &mut lens)).expect("splice"),
            );
        }
    }
    let warm = t.elapsed().as_secs_f64();
    let warm_splices = reps * splices;
    println!(
        "warm splice: {:.0} ns/patch (mean spine {:.2}, slots moved {:.2}, nodes fixed {:.2})",
        warm * 1e9 / warm_splices as f64,
        warm_stats.spine_steps as f64 / warm_splices as f64,
        warm_stats.slots_moved as f64 / warm_splices as f64,
        warm_stats.nodes_fixed as f64 / warm_splices as f64,
    );
    println!(
        "splice vs reflatten: {:.0}x cheaper warm",
        t_rebuild / (warm / warm_splices as f64).max(1e-12)
    );

    println!(
        "fragmentation after churn: {:.3} ({} live / {} dead slots)",
        shape.fragmentation(),
        shape.live_len(),
        asns.len() - shape.live_len(),
    );
    let t = Instant::now();
    shape.compact((&mut asns, &mut lens));
    println!(
        "compact(): {:.1} us (fragmentation {:.3} after)",
        t.elapsed().as_secs_f64() * 1e6,
        shape.fragmentation()
    );
}

fn main() {
    let scale = Scale::from_env();
    let parallel = ParallelConfig::from_env();
    let world = ScenarioWorld::builder(scale.config(HARNESS_SEED))
        .parallel(parallel)
        .build();
    if std::env::args().any(|a| a == "--patch") {
        profile_patch(&world);
        return;
    }
    let pairs: Vec<(Prefix, Asn)> = world
        .announcements
        .iter()
        .map(|a| (a.prefix, a.origin))
        .collect();
    let n = pairs.len();
    println!("pairs: {n}");

    let rpki_index = CompiledVrpIndex::build(&world.vrps);
    let irr_index = CompiledIrrIndex::build(&world.irr);
    println!(
        "rpki candidates: {}, irr candidates: {}",
        rpki_index.candidate_count(),
        irr_index.candidate_count()
    );

    // Cold sort (fresh scratch each rep).
    let (t, _) = time_best(20, || {
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        rpki_index.validate_batch_into(&pairs, &mut scratch, &mut out);
        out.len() as u64
    });
    println!("cold batch (sort + sweep): {:.1} us", t * 1e6);

    // Warm batch, one index.
    let mut scratch = BatchScratch::new();
    let mut out = Vec::new();
    rpki_index.validate_batch_into(&pairs, &mut scratch, &mut out);
    let (t, _) = time_best(50, || {
        rpki_index.validate_batch_into(&pairs, &mut scratch, &mut out);
        out.len() as u64
    });
    println!(
        "warm rpki batch: {:.1} us ({:.0} ns/query)",
        t * 1e6,
        t * 1e9 / n as f64
    );

    let mut irr_out = Vec::new();
    irr_index.validate_batch_into(&pairs, &mut scratch, &mut irr_out);
    let (t, _) = time_best(50, || {
        irr_index.validate_batch_into(&pairs, &mut scratch, &mut irr_out);
        irr_out.len() as u64
    });
    println!(
        "warm irr batch: {:.1} us ({:.0} ns/query)",
        t * 1e6,
        t * 1e9 / n as f64
    );

    // Sweep only, no kernel: count covering runs via covering_runs over
    // a rebuilt shape identical to the compiled index's.
    let mut vrp_map: PrefixMap<u32> = PrefixMap::new();
    for vrp in world.vrps.iter() {
        vrp_map.insert(vrp.prefix, vrp.asn.value());
    }
    let shape = vrp_map.flatten_shape(|_| {});
    let (t, _) = time_best(50, || {
        let mut acc = 0u64;
        scratch.covering_runs(&shape, &pairs, |i, run| {
            acc = acc.wrapping_add(i as u64 + run.len() as u64);
        });
        acc
    });
    println!(
        "covering_runs sweep only (rpki): {:.1} us ({:.0} ns/query)",
        t * 1e6,
        t * 1e9 / n as f64
    );

    // Run-length distribution.
    let mut hist = [0usize; 9];
    let mut total = 0usize;
    let mut distinct = std::collections::BTreeSet::new();
    scratch.covering_runs(&shape, &pairs, |i, run| {
        hist[run.len().min(8)] += 1;
        total += run.len();
        distinct.insert(pairs[i].0);
    });
    println!(
        "rpki run lens: {:?} (8 = 8+), mean {:.2}, distinct prefixes {}",
        hist,
        total as f64 / n as f64,
        distinct.len()
    );

    // Re-time the warm batch after a full table collection keeps a large
    // RIB live (the bench's heap/TLB state when its batch stage runs).
    let collector = manrs_bgp::TableCollector::new(
        &world.world.topology,
        &world.policies,
        &world.vantages,
    );
    let rib = collector.clone().parallel(parallel).plan().collect(&world.announcements);
    println!("rib observations: {}", rib.observations.len());
    let (t, _) = time_best(50, || {
        rpki_index.validate_batch_into(&pairs, &mut scratch, &mut out);
        irr_index.validate_batch_into(&pairs, &mut scratch, &mut irr_out);
        out.len() as u64
    });
    println!(
        "warm combined batch with RIB live: {:.1} us ({:.0} ns/query)",
        t * 1e6,
        t * 1e9 / (2 * n) as f64
    );
    drop(rib);
    let (t, _) = time_best(50, || {
        rpki_index.validate_batch_into(&pairs, &mut scratch, &mut out);
        irr_index.validate_batch_into(&pairs, &mut scratch, &mut irr_out);
        out.len() as u64
    });
    println!(
        "warm combined batch after RIB drop: {:.1} us ({:.0} ns/query)",
        t * 1e6,
        t * 1e9 / (2 * n) as f64
    );

    // Scalar oracle for the same pairs (per-query allocating walk).
    let (t, _) = time_best(10, || {
        let mut acc = 0u64;
        for &(prefix, origin) in &pairs {
            acc = acc.wrapping_add(
                (manrs_rpki::validate_origin(&world.vrps, &prefix, origin)
                    == RpkiStatus::Valid) as u64,
            );
        }
        acc
    });
    println!(
        "scalar rpki: {:.1} us ({:.0} ns/query)",
        t * 1e6,
        t * 1e9 / n as f64
    );
}
