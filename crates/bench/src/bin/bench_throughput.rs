//! Machine-readable throughput benchmark for the parallel pipeline.
//!
//! Times the pipeline's hot stages — whole-table collection, path
//! extraction out of the collected RIB, and per-announcement registry
//! validation — serial versus parallel, verifies the outputs are
//! identical, and writes the measurements to `BENCH_propagation.json`
//! (elements/sec, wall time, thread count, speedup, allocation counts,
//! peak RSS) so regressions are diffable across commits.
//!
//! The `collect_table` stage additionally re-times the *legacy*
//! pre-pool algorithm — reproduced verbatim in [`legacy`]: nested
//! `Vec<Vec<u32>>` adjacency behind a HashMap ASN index, a binary-heap
//! descent phase, one full route-table clone per (origin,
//! filter-class), and per-announcement vantage path walks that chase
//! `Provenance` pointers through the HashMap — so the JSON carries
//! honest before/after elements-per-second for the CSR + bucket-queue
//! core and the interned path representation.
//!
//! The `reverse_collection` stage times the two [`CollectionStrategy`]
//! implementations against each other at the same thread count: the
//! forward per-(origin, filter-class) propagation versus the reverse
//! per-vantage traversal, asserting the tables are identical and
//! recording the vantage/class counts that drive the `Auto` choice.
//!
//! Scales covered: Small and Medium by default. Set
//! `MANRS_BENCH_SCALES=small` to run only the small scale (the CI smoke
//! step does), or include `paper` (~20k ASes, release builds only — the
//! scheduled CI job does) for the full-size measurement.

use manrs_bench::{Scale, HARNESS_SEED};
use manrs_bgp::{
    distinct_accept_classes, distinct_classes, par_map, validate_pairs_batch, CollectionStrategy,
    CostReport, ParallelConfig, PolicyExtension, PolicySet, PolicyTable, TableCollector,
};
use manrs_irr::{validate_irr, CompiledIrrIndex, IrrStatus};
use manrs_net::{match_run, match_run_autovec, Asn, BatchScratch, MatchOutcome};
use manrs_rpki::{validate_origin, CompiledVrpIndex, RpkiStatus};
use manrs_scenario::ScenarioWorld;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every allocation (alloc / alloc_zeroed / realloc) so stages
/// can report how many heap allocations their parallel run performs.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Peak resident set size of this process in KiB (`VmHWM` from
/// /proc/self/status), or 0 where unavailable. Monotonic over the
/// process lifetime, so per-stage values record the high-water mark
/// *reached by* that stage.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
        }
    }
    0
}

struct Measurement {
    scale: &'static str,
    stage: &'static str,
    elements: usize,
    serial_secs: f64,
    parallel_secs: f64,
    /// Heap allocations performed by one parallel run of the stage.
    parallel_allocations: u64,
    /// Process peak RSS (KiB) after the stage finished.
    peak_rss_kb: u64,
    /// Pre-pool algorithm wall time, serial — only for stages with a
    /// legacy counterpart (`collect_table`).
    legacy_serial_secs: Option<f64>,
    /// `(vantage_count, class_count)` — only for `reverse_collection`,
    /// where `serial_secs` holds the forward strategy's time and
    /// `parallel_secs` the reverse strategy's at the same thread count.
    strategy_split: Option<(usize, usize)>,
    /// The collection plan's own cost-model verdict for the measured
    /// world — only for `reverse_collection`, so the JSON records what
    /// `Auto` *would* choose alongside what both strategies cost.
    cost_report: Option<CostReport>,
    /// Steady-state heap allocations of one *serial* batch run (last
    /// rep, warm scratch) — only for `validation_batch`, where it must
    /// be zero.
    batch_allocations: Option<u64>,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs.max(1e-12)
    }

    fn parallel_eps(&self) -> f64 {
        self.elements as f64 / self.parallel_secs.max(1e-12)
    }

    fn serial_eps(&self) -> f64 {
        self.elements as f64 / self.serial_secs.max(1e-12)
    }

    fn legacy_serial_eps(&self) -> Option<f64> {
        self.legacy_serial_secs.map(|s| self.elements as f64 / s.max(1e-12))
    }
}

/// Per-policy-mix collection telemetry: how many acceptance classes an
/// extension mix splits the world's announcements into, and which
/// collection strategy `Auto` resolves to under it. Path-aware mixes
/// must resolve Forward; the CI gate checks path-blind mixes keep
/// resolving Reverse at medium scale.
struct MixRecord {
    scale: &'static str,
    mix: &'static str,
    accept_classes: usize,
    origin_classes: usize,
    resolved_strategy: &'static str,
    path_aware: bool,
}

/// Best-of-`reps` wall time for `f`, plus the allocation count of the
/// final rep.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, u64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    let mut allocs = 0;
    for _ in 0..reps {
        let before = alloc_count();
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        allocs = alloc_count() - before;
        out = Some(r);
    }
    (best, allocs, out.expect("reps >= 1"))
}

/// The seed-era collection pipeline, reproduced verbatim so
/// `collect_table`'s before/after compares two real implementations
/// rather than two wrappers over the same propagation core.
mod legacy {
    use manrs_bgp::propagate::Provenance;
    use manrs_bgp::{par_map, par_map_with, Announcement, ParallelConfig, PolicySet, PolicyTable};
    use manrs_irr::IrrStatus;
    use manrs_net::Asn;
    use manrs_topology::{AsTopology, Relationship};
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashMap};
    use std::mem;

    #[derive(Clone, Copy)]
    struct Entry {
        provenance: Provenance,
        hops: u32,
    }

    /// Pre-CSR dense view: one heap-allocated neighbor list per AS and
    /// a HashMap from ASN to dense index.
    pub struct Graph {
        asns: Vec<Asn>,
        pos: HashMap<Asn, usize>,
        providers: Vec<Vec<u32>>,
        customers: Vec<Vec<u32>>,
        peers: Vec<Vec<u32>>,
        policies: Vec<PolicySet>,
    }

    impl Graph {
        pub fn build(topology: &AsTopology, policies: &PolicyTable) -> Self {
            let asns: Vec<Asn> = topology.asns().collect();
            let pos: HashMap<Asn, usize> =
                asns.iter().enumerate().map(|(i, a)| (*a, i)).collect();
            let to_idx = |list: &[Asn]| -> Vec<u32> {
                list.iter().map(|a| pos[a] as u32).collect()
            };
            let providers = asns.iter().map(|a| to_idx(topology.providers(*a))).collect();
            let customers = asns.iter().map(|a| to_idx(topology.customers(*a))).collect();
            let peers = asns.iter().map(|a| to_idx(topology.peers(*a))).collect();
            let pol = asns.iter().map(|a| policies.get(*a)).collect();
            Graph { asns, pos, providers, customers, peers, policies: pol }
        }
    }

    #[derive(Default)]
    struct Scratch {
        entries: Vec<Option<Entry>>,
        frontier: Vec<usize>,
        next_frontier: Vec<usize>,
        senders: Vec<usize>,
        peer_offers: Vec<Option<(u32, Asn)>>,
        heap: BinaryHeap<Reverse<(u32, u32, u32)>>,
    }

    fn propagate_into(graph: &Graph, announcement: &Announcement, scratch: &mut Scratch) {
        let n = graph.asns.len();
        scratch.entries.clear();
        scratch.entries.resize(n, None);
        scratch.peer_offers.clear();
        scratch.peer_offers.resize(n, None);
        scratch.frontier.clear();
        scratch.next_frontier.clear();
        scratch.senders.clear();
        scratch.heap.clear();
        let Scratch { entries, frontier, next_frontier, senders, peer_offers, heap } = scratch;

        let Some(&origin_idx) = graph.pos.get(&announcement.origin) else {
            return;
        };
        entries[origin_idx] = Some(Entry { provenance: Provenance::Origin, hops: 0 });

        // Phase 1: customer routes climb provider edges (level BFS).
        frontier.push(origin_idx);
        let mut depth = 0u32;
        while !frontier.is_empty() {
            depth += 1;
            next_frontier.clear();
            frontier.sort_by_key(|&i| graph.asns[i]);
            for &u in frontier.iter() {
                for &p in &graph.providers[u] {
                    let p = p as usize;
                    if entries[p].is_none()
                        && graph.policies[p].accepts(announcement, Relationship::Customer)
                    {
                        entries[p] = Some(Entry {
                            provenance: Provenance::Customer(graph.asns[u]),
                            hops: depth,
                        });
                        next_frontier.push(p);
                    }
                }
            }
            mem::swap(frontier, next_frontier);
        }

        // Phase 2: one peer hop.
        senders.extend((0..n).filter(|&i| entries[i].is_some()));
        senders.sort_by_key(|&i| (entries[i].expect("routed").hops, graph.asns[i]));
        for &u in senders.iter() {
            let du = entries[u].expect("routed").hops;
            let sender = graph.asns[u];
            for &v in &graph.peers[u] {
                let v = v as usize;
                if entries[v].is_some() {
                    continue;
                }
                if !graph.policies[v].accepts(announcement, Relationship::Peer) {
                    continue;
                }
                let offer = (du + 1, sender);
                match peer_offers[v] {
                    Some(best) if best <= offer => {}
                    _ => peer_offers[v] = Some(offer),
                }
            }
        }
        for v in 0..n {
            if let Some((d, sender)) = peer_offers[v] {
                entries[v] = Some(Entry { provenance: Provenance::Peer(sender), hops: d });
            }
        }

        // Phase 3: provider routes descend customer edges (binary heap).
        for u in 0..n {
            if let Some(e) = entries[u] {
                for &c in &graph.customers[u] {
                    let c = c as usize;
                    if entries[c].is_none() {
                        heap.push(Reverse((e.hops + 1, graph.asns[u].value(), c as u32)));
                    }
                }
            }
        }
        while let Some(Reverse((d, sender_value, v))) = heap.pop() {
            let v = v as usize;
            if entries[v].is_some() {
                continue;
            }
            if !graph.policies[v].accepts(announcement, Relationship::Provider) {
                continue;
            }
            entries[v] =
                Some(Entry { provenance: Provenance::Provider(Asn(sender_value)), hops: d });
            for &c in &graph.customers[v] {
                let c = c as usize;
                if entries[c].is_none() {
                    heap.push(Reverse((d + 1, graph.asns[v].value(), c as u32)));
                }
            }
        }
    }

    /// Vantage-to-origin path by chasing `Provenance` pointers through
    /// the ASN-to-index HashMap — the seed-era per-hop walk.
    fn as_path(entries: &[Option<Entry>], graph: &Graph, asn: Asn) -> Option<Vec<Asn>> {
        let mut idx = *graph.pos.get(&asn)?;
        let mut path = Vec::new();
        loop {
            let entry = entries[idx]?;
            path.push(graph.asns[idx]);
            match entry.provenance.learned_from() {
                None => return Some(path),
                Some(next) => idx = graph.pos[&next],
            }
        }
    }

    /// One propagation + full route-table clone per (origin,
    /// filter-class), then per-announcement owned `Vec<Vec<Asn>>`
    /// vantage paths — the "before" `collect_table` measures against.
    pub fn collect(
        graph: &Graph,
        announcements: &[Announcement],
        vantages: &[Asn],
        cfg: &ParallelConfig,
    ) -> Vec<Vec<Vec<Asn>>> {
        let mut memo: HashMap<(Asn, bool, IrrStatus), usize> = HashMap::new();
        let mut reps: Vec<&Announcement> = Vec::new();
        let mut class_of: Vec<usize> = Vec::with_capacity(announcements.len());
        for ann in announcements {
            let key = (ann.origin, ann.rpki.dropped_by_rov(), ann.irr);
            let next = reps.len();
            let idx = *memo.entry(key).or_insert_with(|| {
                reps.push(ann);
                next
            });
            class_of.push(idx);
        }
        let outcomes = par_map_with(
            cfg,
            &reps,
            Scratch::default,
            |scratch, ann| {
                propagate_into(graph, ann, scratch);
                scratch.entries.clone()
            },
        );
        par_map(cfg, &class_of, |&class| {
            vantages
                .iter()
                .filter_map(|v| as_path(&outcomes[class], graph, *v))
                .collect()
        })
    }
}

fn measure_scale(
    scale: Scale,
    name: &'static str,
    parallel: &ParallelConfig,
    out: &mut Vec<Measurement>,
    mixes_out: &mut Vec<MixRecord>,
) {
    eprintln!("[{name}] building world ...");
    let world = ScenarioWorld::builder(scale.config(HARNESS_SEED)).parallel(*parallel).build();
    let serial = ParallelConfig::serial();
    let reps = match scale {
        Scale::Small => 5,
        _ => 3,
    };

    // Stage 1: whole-table collection (interned), plus the legacy
    // pre-pool algorithm as the "before" baseline.
    let collector = TableCollector::new(&world.world.topology, &world.policies, &world.vantages);
    let (t_serial, _, rib_serial) = time_best(reps, || {
        collector
            .clone()
            .parallel(serial)
            .plan()
            .strategy(CollectionStrategy::Forward)
            .collect(&world.announcements)
    });
    let (t_parallel, allocs, rib_parallel) = time_best(reps, || {
        collector
            .clone()
            .parallel(*parallel)
            .plan()
            .strategy(CollectionStrategy::Forward)
            .collect(&world.announcements)
    });
    assert_eq!(
        rib_serial.observations, rib_parallel.observations,
        "parallel collect_table diverged from serial"
    );
    assert_eq!(rib_serial.visible_count(), rib_parallel.visible_count());

    let legacy_graph = legacy::Graph::build(&world.world.topology, &world.policies);
    let (t_legacy, _, legacy_paths) = time_best(reps, || {
        legacy::collect(&legacy_graph, &world.announcements, &world.vantages, &serial)
    });
    // The interned RIB must materialize to exactly the legacy paths.
    for (obs, legacy) in rib_serial.observations.iter().zip(&legacy_paths) {
        assert_eq!(
            &rib_serial.materialize_paths(obs),
            legacy,
            "interned collection diverged from the legacy representation"
        );
    }
    out.push(Measurement {
        scale: name,
        stage: "collect_table",
        elements: world.announcements.len(),
        serial_secs: t_serial,
        parallel_secs: t_parallel,
        parallel_allocations: allocs,
        peak_rss_kb: peak_rss_kb(),
        legacy_serial_secs: Some(t_legacy),
        strategy_split: None,
        cost_report: None,
        batch_allocations: None,
    });

    // Stage 1b: collection strategy face-off — the reverse per-vantage
    // traversal against the forward per-class engine, both at the same
    // thread count. The tables must be bit-for-bit identical; only the
    // wall time may differ.
    let (t_reverse, rev_allocs, rib_reverse) = time_best(reps, || {
        collector
            .clone()
            .parallel(*parallel)
            .plan()
            .strategy(CollectionStrategy::Reverse)
            .collect(&world.announcements)
    });
    assert_eq!(
        rib_parallel.observations, rib_reverse.observations,
        "reverse collection diverged from forward"
    );
    assert_eq!(
        rib_parallel.pool(),
        rib_reverse.pool(),
        "reverse collection interned a different pool"
    );
    let cost =
        collector.clone().parallel(*parallel).plan().cost_report(&world.announcements);
    out.push(Measurement {
        scale: name,
        stage: "reverse_collection",
        elements: world.announcements.len(),
        serial_secs: t_parallel,
        parallel_secs: t_reverse,
        parallel_allocations: rev_allocs,
        peak_rss_kb: peak_rss_kb(),
        legacy_serial_secs: None,
        strategy_split: Some((
            world.vantages.len(),
            distinct_classes(&world.announcements, world.policies.active_union()),
        )),
        cost_report: Some(cost),
        batch_allocations: None,
    });

    // Stage 1c: per-policy-mix collection telemetry. Uniform worlds
    // under each named extension mix: the acceptance-class split and
    // the strategy `Auto` resolves to. No timing — this records the
    // cost-model inputs the collection layer decides by.
    let mix_table = [
        ("open", PolicySet::OPEN),
        ("rov", PolicySet::OPEN.with(PolicyExtension::Rov)),
        ("manrs_isp", PolicySet::MANRS_ISP),
        (
            "manrs_cdn_strict",
            PolicySet::MANRS_CDN.with(PolicyExtension::IrrStrictLength),
        ),
        ("route_server", PolicySet::ROUTE_SERVER),
        ("isp_aspa", PolicySet::MANRS_ISP.with(PolicyExtension::Aspa)),
        ("isp_otc", PolicySet::MANRS_ISP.with(PolicyExtension::OnlyToCustomers)),
        ("isp_path_end", PolicySet::MANRS_ISP.with(PolicyExtension::PathEnd)),
    ];
    for (mix_name, set) in mix_table {
        let policies = PolicyTable::with_default(set);
        let plan = TableCollector::new(&world.world.topology, &policies, &world.vantages)
            .parallel(*parallel)
            .plan();
        let resolved = match plan.resolved_strategy(&world.announcements) {
            CollectionStrategy::Forward => "forward",
            CollectionStrategy::Reverse => "reverse",
            CollectionStrategy::Auto => unreachable!("resolution never returns Auto"),
        };
        mixes_out.push(MixRecord {
            scale: name,
            mix: mix_name,
            accept_classes: distinct_accept_classes(&world.announcements, set),
            origin_classes: distinct_classes(&world.announcements, set),
            resolved_strategy: resolved,
            path_aware: set.reads_path(),
        });
    }

    // Stage 2: path extraction — resolving every observation's vantage
    // paths out of the collected RIB (zero-copy pool slices). Elements
    // are paths resolved per run.
    let rib = &rib_serial;
    let total_paths: usize = rib.observations.iter().map(|o| o.paths.len()).sum();
    let obs_refs: Vec<&manrs_bgp::Observation> = rib.observations.iter().collect();
    let walk = |cfg: &ParallelConfig| {
        par_map(cfg, &obs_refs, |obs| {
            let mut checksum = 0u64;
            for path in rib.paths_of(obs) {
                for asn in path {
                    checksum = checksum.wrapping_add(asn.value() as u64);
                }
            }
            checksum
        })
    };
    let (t_serial, _, sums_serial) = time_best(reps, || walk(&serial));
    let (t_parallel, allocs, sums_parallel) = time_best(reps, || walk(parallel));
    assert_eq!(sums_serial, sums_parallel, "parallel path walk diverged from serial");
    out.push(Measurement {
        scale: name,
        stage: "path_extraction",
        elements: total_paths,
        serial_secs: t_serial,
        parallel_secs: t_parallel,
        parallel_allocations: allocs,
        peak_rss_kb: peak_rss_kb(),
        legacy_serial_secs: None,
        strategy_split: None,
        cost_report: None,
        batch_allocations: None,
    });

    // Stage 3: snapshot re-validation of every (prefix, origin) against
    // the world's RPKI and IRR registries — the scalar per-pair engine.
    let pairs: Vec<_> = world.announcements.iter().map(|a| (a.prefix, a.origin)).collect();
    let (t_serial, _, v_serial) = time_best(reps, || {
        par_map(&serial, &pairs, |(prefix, origin)| {
            (validate_origin(&world.vrps, prefix, *origin), validate_irr(&world.irr, prefix, *origin))
        })
    });
    let (t_parallel, allocs, v_parallel) = time_best(reps, || {
        par_map(parallel, &pairs, |(prefix, origin)| {
            (validate_origin(&world.vrps, prefix, *origin), validate_irr(&world.irr, prefix, *origin))
        })
    });
    assert_eq!(v_serial, v_parallel, "parallel validation diverged from serial");
    out.push(Measurement {
        scale: name,
        stage: "validation_scalar",
        elements: pairs.len(),
        serial_secs: t_serial,
        parallel_secs: t_parallel,
        parallel_allocations: allocs,
        peak_rss_kb: peak_rss_kb(),
        legacy_serial_secs: None,
        strategy_split: None,
        cost_report: None,
        batch_allocations: None,
    });

    // Stage 3b: the same validation through the compiled SoA indexes
    // and the batch kernels. Index compilation happens once outside the
    // timed region (real pipelines amortize it across a whole table);
    // the serial runs reuse one scratch and output buffers, so the last
    // rep's allocation count is the steady state and must be zero.
    let rpki_index = CompiledVrpIndex::build(&world.vrps);
    let irr_index = CompiledIrrIndex::build(&world.irr);
    let mut scratch = BatchScratch::new();
    let (mut rpki_out, mut irr_out) = (Vec::new(), Vec::new());
    // Untimed warm-up: the batch contract amortizes the one-time argsort
    // and buffer page-in across a table's lifetime, so the timed reps
    // measure the steady state the contract promises (and whose
    // allocation count must be zero).
    for _ in 0..3 {
        rpki_index.validate_batch_into(&pairs, &mut scratch, &mut rpki_out);
        irr_index.validate_batch_into(&pairs, &mut scratch, &mut irr_out);
    }
    let (t_batch_serial, batch_allocs, ()) = time_best(reps, || {
        rpki_index.validate_batch_into(&pairs, &mut scratch, &mut rpki_out);
        irr_index.validate_batch_into(&pairs, &mut scratch, &mut irr_out);
    });
    let v_batch: Vec<(RpkiStatus, IrrStatus)> =
        rpki_out.iter().copied().zip(irr_out.iter().copied()).collect();
    assert_eq!(v_batch, v_serial, "batched validation diverged from scalar");
    let (t_batch_parallel, b_allocs, v_batch_par) =
        time_best(reps, || validate_pairs_batch(parallel, &rpki_index, &irr_index, &pairs));
    assert_eq!(v_batch_par, v_serial, "parallel batched validation diverged from scalar");
    out.push(Measurement {
        scale: name,
        stage: "validation_batch",
        elements: pairs.len(),
        serial_secs: t_batch_serial,
        parallel_secs: t_batch_parallel,
        parallel_allocations: b_allocs,
        peak_rss_kb: peak_rss_kb(),
        legacy_serial_secs: None,
        strategy_split: None,
        cost_report: None,
        batch_allocations: Some(batch_allocs),
    });
}

/// Stage: the candidate-run match kernel in isolation — the dispatch
/// form ([`match_run`]: explicit `std::simd` when built with
/// `--features simd`, the autovectorized loop otherwise) against the
/// always-compiled [`match_run_autovec`] reference, over synthetic runs
/// spanning the length distribution compiled indexes produce (covering
/// runs are mostly short, with a heavy tail of multi-candidate runs).
/// Outcomes are asserted identical; `serial_secs` holds the autovec
/// time and `parallel_secs` the dispatch time, so the stage's `speedup`
/// reads as the explicit-SIMD gain — 1.0x by construction on a stable
/// build, where both names resolve to the same loop.
fn measure_kernel(out: &mut Vec<Measurement>) {
    eprintln!("[kernel] generating synthetic runs ...");
    // Deterministic splitmix64 stream: release bins carry no rand dep.
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let runs: Vec<(Vec<u32>, Vec<u8>)> = (0..2048usize)
        .map(|i| {
            // 1-lane leaves dominate; every 4th run spans one vector,
            // every 16th spills into a masked tail past four vectors.
            let n = match i % 16 {
                0 => 33,
                k if k % 4 == 0 => 9,
                k => 1 + k % 5,
            };
            let asns = (0..n).map(|_| 64_500 + (next() % 8) as u32).collect();
            let lens = (0..n).map(|_| 16 + (next() % 17) as u8).collect();
            (asns, lens)
        })
        .collect();
    let queries: Vec<(Asn, u8)> = (0..64)
        .map(|_| (Asn(64_500 + (next() % 8) as u32), 8 + (next() % 25) as u8))
        .collect();
    let lanes: usize = runs.iter().map(|(a, _)| a.len()).sum::<usize>() * queries.len();

    let sweep = |kernel: fn(&[u32], &[u8], Asn, u8) -> MatchOutcome| {
        let mut checksum = 0u64;
        for (asns, lens) in &runs {
            for &(origin, qlen) in &queries {
                let o = kernel(asns, lens, origin, qlen);
                checksum = checksum
                    .wrapping_mul(3)
                    .wrapping_add((o.any_valid as u64) << 1 | o.any_origin_match as u64);
            }
        }
        checksum
    };
    let reps = 5;
    let (t_autovec, _, sum_autovec) = time_best(reps, || sweep(match_run_autovec::<true>));
    let (t_dispatch, allocs, sum_dispatch) = time_best(reps, || sweep(match_run::<true>));
    assert_eq!(sum_autovec, sum_dispatch, "kernel dispatch diverged from autovec");

    out.push(Measurement {
        scale: "synthetic",
        stage: "match_kernel",
        elements: lanes,
        serial_secs: t_autovec,
        parallel_secs: t_dispatch,
        parallel_allocations: allocs,
        peak_rss_kb: peak_rss_kb(),
        legacy_serial_secs: None,
        strategy_split: None,
        cost_report: None,
        batch_allocations: None,
    });
}

fn render_json(threads: usize, measurements: &[Measurement], mixes: &[MixRecord]) -> String {
    // Hand-rendered JSON: every value is a number or a fixed-format
    // string, and keeping serde_json out of the hot path keeps this
    // binary dependency-light.
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"threads\": {threads},");
    // Speedup is only meaningful when host_cpus >= threads; on a
    // single-core host the parallel path can at best tie serial.
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    // Which match kernel the dispatch form resolved to in this build.
    let _ = writeln!(json, "  \"simd_enabled\": {},", cfg!(feature = "simd"));
    json.push_str("  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"scale\": \"{}\",", m.scale);
        let _ = writeln!(json, "      \"stage\": \"{}\",", m.stage);
        let _ = writeln!(json, "      \"elements\": {},", m.elements);
        let _ = writeln!(json, "      \"serial_secs\": {:.6},", m.serial_secs);
        let _ = writeln!(json, "      \"parallel_secs\": {:.6},", m.parallel_secs);
        let _ = writeln!(json, "      \"serial_elements_per_sec\": {:.1},", m.serial_eps());
        let _ = writeln!(json, "      \"parallel_elements_per_sec\": {:.1},", m.parallel_eps());
        let _ = writeln!(json, "      \"parallel_allocations\": {},", m.parallel_allocations);
        let _ = writeln!(json, "      \"peak_rss_kb\": {},", m.peak_rss_kb);
        if let (Some(secs), Some(eps)) = (m.legacy_serial_secs, m.legacy_serial_eps()) {
            let _ = writeln!(json, "      \"legacy_serial_secs\": {secs:.6},");
            let _ = writeln!(json, "      \"legacy_serial_elements_per_sec\": {eps:.1},");
            let _ = writeln!(
                json,
                "      \"improvement_vs_legacy\": {:.3},",
                secs / m.serial_secs.max(1e-12)
            );
        }
        if let Some((vantages, classes)) = m.strategy_split {
            let _ = writeln!(json, "      \"forward_secs\": {:.6},", m.serial_secs);
            let _ = writeln!(json, "      \"reverse_secs\": {:.6},", m.parallel_secs);
            let _ = writeln!(json, "      \"vantage_count\": {vantages},");
            let _ = writeln!(json, "      \"class_count\": {classes},");
        }
        if let Some(cost) = m.cost_report {
            let _ = writeln!(json, "      \"forward_cost\": {:.3},", cost.forward_cost);
            let _ = writeln!(json, "      \"reverse_cost\": {:.3},", cost.reverse_cost);
            let _ = writeln!(json, "      \"closure_sum\": {},", cost.closure_sum);
            let _ = writeln!(json, "      \"cost_path_aware\": {},", cost.path_aware);
            let _ = writeln!(
                json,
                "      \"chosen_strategy\": \"{}\",",
                match cost.chosen {
                    CollectionStrategy::Forward => "forward",
                    CollectionStrategy::Reverse => "reverse",
                    CollectionStrategy::Auto => unreachable!("cost reports never choose Auto"),
                }
            );
        }
        if let Some(batch_allocs) = m.batch_allocations {
            let _ = writeln!(json, "      \"batch_allocations\": {batch_allocs},");
        }
        let _ = writeln!(json, "      \"speedup\": {:.3}", m.speedup());
        let _ = writeln!(json, "    }}{}", if i + 1 == measurements.len() { "" } else { "," });
    }
    json.push_str("  ],\n");
    json.push_str("  \"policy_mixes\": [\n");
    for (i, r) in mixes.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"scale\": \"{}\",", r.scale);
        let _ = writeln!(json, "      \"mix\": \"{}\",", r.mix);
        let _ = writeln!(json, "      \"accept_classes\": {},", r.accept_classes);
        let _ = writeln!(json, "      \"origin_classes\": {},", r.origin_classes);
        let _ = writeln!(json, "      \"resolved_strategy\": \"{}\",", r.resolved_strategy);
        let _ = writeln!(json, "      \"path_aware\": {}", r.path_aware);
        let _ = writeln!(json, "    }}{}", if i + 1 == mixes.len() { "" } else { "," });
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    let parallel = ParallelConfig::from_env();
    let threads = parallel.effective_threads(usize::MAX);
    let scales = std::env::var("MANRS_BENCH_SCALES").unwrap_or_else(|_| "small,medium".into());
    let mut measurements = Vec::new();
    let mut mixes = Vec::new();
    if scales.contains("small") {
        measure_scale(Scale::Small, "small", &parallel, &mut measurements, &mut mixes);
    }
    if scales.contains("medium") {
        measure_scale(Scale::Medium, "medium", &parallel, &mut measurements, &mut mixes);
    }
    if scales.contains("paper") {
        measure_scale(Scale::Paper, "paper", &parallel, &mut measurements, &mut mixes);
    }
    measure_kernel(&mut measurements);

    println!(
        "{:<8} {:<20} {:>10} {:>12} {:>12} {:>14} {:>12} {:>8}",
        "scale", "stage", "elements", "serial s", "parallel s", "parallel el/s", "allocs", "speedup"
    );
    for m in &measurements {
        println!(
            "{:<8} {:<20} {:>10} {:>12.4} {:>12.4} {:>14.1} {:>12} {:>7.2}x",
            m.scale,
            m.stage,
            m.elements,
            m.serial_secs,
            m.parallel_secs,
            m.parallel_eps(),
            m.parallel_allocations,
            m.speedup()
        );
        if let (Some(secs), Some(eps)) = (m.legacy_serial_secs, m.legacy_serial_eps()) {
            println!(
                "{:<8} {:<20} {:>10} {:>12.4} {:>12} {:>14.1} {:>12} {:>8}",
                m.scale, "  (legacy pre-pool)", m.elements, secs, "-", eps, "-", "-"
            );
        }
    }

    let json = render_json(threads, &measurements, &mixes);
    let path = "BENCH_propagation.json";
    std::fs::write(path, &json).expect("write benchmark artifact");
    eprintln!("wrote {path} ({threads} threads)");
}
