//! Machine-readable throughput benchmark for the parallel pipeline.
//!
//! Times the two stages the tentpole parallelized — whole-table
//! collection and per-announcement registry validation — serial versus
//! parallel, verifies the outputs are identical, and writes the
//! measurements to `BENCH_propagation.json` (elements/sec, wall time,
//! thread count, speedup) so regressions are diffable across commits.
//!
//! Scales covered: Small and Medium (`paper` scale is opt-in through
//! the ordinary `MANRS_SCALE` binaries; this file is meant to stay
//! cheap enough for CI).

use manrs_bench::{Scale, HARNESS_SEED};
use manrs_bgp::{par_map, ParallelConfig, TableCollector};
use manrs_irr::validate_irr;
use manrs_rpki::validate_origin;
use manrs_scenario::ScenarioWorld;
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    scale: &'static str,
    stage: &'static str,
    elements: usize,
    serial_secs: f64,
    parallel_secs: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs.max(1e-12)
    }

    fn parallel_eps(&self) -> f64 {
        self.elements as f64 / self.parallel_secs.max(1e-12)
    }

    fn serial_eps(&self) -> f64 {
        self.elements as f64 / self.serial_secs.max(1e-12)
    }
}

/// Best-of-`reps` wall time for `f`.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn measure_scale(
    scale: Scale,
    name: &'static str,
    parallel: &ParallelConfig,
    out: &mut Vec<Measurement>,
) {
    eprintln!("[{name}] building world ...");
    let world = ScenarioWorld::builder(scale.config(HARNESS_SEED)).parallel(*parallel).build();
    let serial = ParallelConfig::serial();
    let reps = match scale {
        Scale::Small => 5,
        _ => 3,
    };

    // Stage 1: whole-table collection.
    let collector = TableCollector::new(&world.world.topology, &world.policies, &world.vantages);
    let (t_serial, rib_serial) = time_best(reps, || {
        collector.clone().parallel(serial).collect(&world.announcements)
    });
    let (t_parallel, rib_parallel) = time_best(reps, || {
        collector.clone().parallel(*parallel).collect(&world.announcements)
    });
    assert_eq!(
        rib_serial.observations, rib_parallel.observations,
        "parallel collect_table diverged from serial"
    );
    assert_eq!(rib_serial.visible_count(), rib_parallel.visible_count());
    out.push(Measurement {
        scale: name,
        stage: "collect_table",
        elements: world.announcements.len(),
        serial_secs: t_serial,
        parallel_secs: t_parallel,
    });

    // Stage 2: snapshot re-validation of every (prefix, origin) against
    // the world's RPKI and IRR registries.
    let pairs: Vec<_> = world.announcements.iter().map(|a| (a.prefix, a.origin)).collect();
    let (t_serial, v_serial) = time_best(reps, || {
        par_map(&serial, &pairs, |(prefix, origin)| {
            (validate_origin(&world.vrps, prefix, *origin), validate_irr(&world.irr, prefix, *origin))
        })
    });
    let (t_parallel, v_parallel) = time_best(reps, || {
        par_map(parallel, &pairs, |(prefix, origin)| {
            (validate_origin(&world.vrps, prefix, *origin), validate_irr(&world.irr, prefix, *origin))
        })
    });
    assert_eq!(v_serial, v_parallel, "parallel validation diverged from serial");
    out.push(Measurement {
        scale: name,
        stage: "snapshot_validation",
        elements: pairs.len(),
        serial_secs: t_serial,
        parallel_secs: t_parallel,
    });
}

fn render_json(threads: usize, measurements: &[Measurement]) -> String {
    // Hand-rendered JSON: every value is a number or a fixed-format
    // string, and keeping serde_json out of the hot path keeps this
    // binary dependency-light.
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"threads\": {threads},");
    // Speedup is only meaningful when host_cpus >= threads; on a
    // single-core host the parallel path can at best tie serial.
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    json.push_str("  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"scale\": \"{}\",", m.scale);
        let _ = writeln!(json, "      \"stage\": \"{}\",", m.stage);
        let _ = writeln!(json, "      \"elements\": {},", m.elements);
        let _ = writeln!(json, "      \"serial_secs\": {:.6},", m.serial_secs);
        let _ = writeln!(json, "      \"parallel_secs\": {:.6},", m.parallel_secs);
        let _ = writeln!(json, "      \"serial_elements_per_sec\": {:.1},", m.serial_eps());
        let _ = writeln!(json, "      \"parallel_elements_per_sec\": {:.1},", m.parallel_eps());
        let _ = writeln!(json, "      \"speedup\": {:.3}", m.speedup());
        let _ = writeln!(json, "    }}{}", if i + 1 == measurements.len() { "" } else { "," });
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    let parallel = ParallelConfig::from_env();
    let threads = parallel.effective_threads(usize::MAX);
    let mut measurements = Vec::new();
    measure_scale(Scale::Small, "small", &parallel, &mut measurements);
    measure_scale(Scale::Medium, "medium", &parallel, &mut measurements);

    println!(
        "{:<8} {:<20} {:>10} {:>12} {:>12} {:>14} {:>8}",
        "scale", "stage", "elements", "serial s", "parallel s", "parallel el/s", "speedup"
    );
    for m in &measurements {
        println!(
            "{:<8} {:<20} {:>10} {:>12.4} {:>12.4} {:>14.1} {:>7.2}x",
            m.scale,
            m.stage,
            m.elements,
            m.serial_secs,
            m.parallel_secs,
            m.parallel_eps(),
            m.speedup()
        );
    }

    let json = render_json(threads, &measurements);
    let path = "BENCH_propagation.json";
    std::fs::write(path, &json).expect("write benchmark artifact");
    eprintln!("wrote {path} ({threads} threads)");
}
