//! Runs every paper table/figure regeneration and writes
//! `EXPERIMENTS.json` next to the workspace root.
//!
//! ```sh
//! MANRS_SCALE=medium cargo run --release -p manrs-bench --bin all_experiments
//! ```

use manrs_bench::{build_world, experiments};

fn main() {
    let world = build_world();
    let results = experiments::all(&world);
    for r in &results {
        r.print();
    }
    let json = serde_json::to_string_pretty(&results).expect("results serialize");
    let path = "EXPERIMENTS.json";
    std::fs::write(path, json).expect("write EXPERIMENTS.json");
    println!("wrote {path} ({} experiments)", results.len());
}
