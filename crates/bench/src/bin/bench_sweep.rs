//! Benchmark: Monte-Carlo adoption sweeps with amortized world
//! construction (`manrs_scenario::sweep`).
//!
//! A naive adoption sweep rebuilds a `ScenarioWorld` — topology, RPKI
//! signing, path interning, compiled-index flattening, full collection —
//! for every (adoption fraction, policy mix, seed) trial. The sweep
//! harness pays that once per grid: a shared frozen [`SweepBase`] plus
//! recycled per-worker copy-on-write overlays. This bench measures the
//! amortization directly:
//!
//! * `cold_build_secs` — one full `ScenarioWorld` build including table
//!   collection: what every trial used to cost.
//! * `warm_trial_secs` — per-trial cost of the grid once workspaces are
//!   warm (the grid is run twice; the second, fully warm pass is
//!   timed). `amortized_speedup = cold / warm` is the headline gate
//!   (≥ 5x at medium scale).
//! * `overlay_allocs_steady` — heap allocations across a full warm
//!   serial re-run of the grid on one workspace. Re-running identical
//!   trial specs from the re-anchored base arena is deterministic, so a
//!   warm repeat must allocate **zero** times.
//! * `index_rebuilds` — splice failures across the whole grid; the
//!   copy-on-write path must never fall back to reflattening.
//!
//! Results go to `BENCH_sweep.json` (gated by `ci/check_sweep_bench.py`)
//! with the per-cell adoption-vs-outcome curves embedded for figure
//! generation. `MANRS_SCALE` picks the world size; `MANRS_BENCH_SEED`
//! overrides the world seed; `MANRS_THREADS` bounds the fan-out.

use manrs_bench::{harness_seed, Scale};
use manrs_bgp::ParallelConfig;
use manrs_scenario::{
    IncidentProfile, PolicyMix, ScenarioWorld, SweepBase, SweepPlan, SweepReport, TrialWorkspace,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Heap-allocation counter wrapped around the system allocator, so the
/// steady-state probe can assert a warm trial cycle touches the
/// allocator zero times. Only `alloc`/`realloc` count: frees are not
/// growth and the probe is single-threaded.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const FRACTIONS: &[f64] = &[0.0, 0.1, 0.25, 0.5, 0.75, 0.9];
const MIXES: &[PolicyMix] = &[PolicyMix::ROV, PolicyMix::ACTION1];
const TRIALS: usize = 6;
const HIJACKS: usize = 8;

fn plan(par: ParallelConfig) -> SweepPlan {
    SweepPlan::new()
        .fractions(FRACTIONS)
        .mixes(MIXES)
        .trials(TRIALS)
        .hijacks(HIJACKS)
        .seed(harness_seed())
        .parallel(par)
}

/// Allocations across one full warm serial pass of the grid on a single
/// recycled workspace. The workspace has already executed every spec
/// once, so capacities sit at their high-water marks and the re-anchored
/// base arena makes each spec's splice sequence identical to its first
/// run — any allocation here is a real steady-state leak.
fn steady_state_allocs(base: &SweepBase, ws: &mut TrialWorkspace) -> u64 {
    let specs = plan(ParallelConfig::serial()).specs();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for spec in &specs {
        std::hint::black_box(ws.run_trial(base, spec, HIJACKS, IncidentProfile::Hijacks));
    }
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: &str,
    threads: usize,
    pairs: usize,
    as_count: usize,
    cold_build_secs: f64,
    base_build_secs: f64,
    warm_wall_secs: f64,
    allocs_steady: u64,
    report: &SweepReport,
) -> String {
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let trials = report.totals.trials.max(1);
    let warm_trial_secs = warm_wall_secs / trials as f64;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"seed\": {},", report.seed);
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"fractions\": {},", report.fractions.len());
    let _ = writeln!(json, "  \"mixes\": {},", report.mixes.len());
    let _ = writeln!(json, "  \"trials_per_cell\": {},", report.trials_per_cell);
    let _ = writeln!(json, "  \"hijacks_per_trial\": {},", report.hijacks_per_trial);
    let _ = writeln!(json, "  \"trials\": {},", report.totals.trials);
    let _ = writeln!(json, "  \"pairs\": {pairs},");
    let _ = writeln!(json, "  \"as_count\": {as_count},");
    let _ = writeln!(json, "  \"cold_build_secs\": {cold_build_secs:.6},");
    let _ = writeln!(json, "  \"base_build_secs\": {base_build_secs:.6},");
    let _ = writeln!(json, "  \"warm_wall_secs\": {warm_wall_secs:.6},");
    let _ = writeln!(json, "  \"warm_trial_secs\": {warm_trial_secs:.6},");
    let _ = writeln!(json, "  \"trials_per_sec\": {:.1},", trials as f64 / warm_wall_secs.max(1e-9));
    let _ = writeln!(
        json,
        "  \"amortized_speedup\": {:.3},",
        cold_build_secs / warm_trial_secs.max(1e-12)
    );
    let _ = writeln!(json, "  \"overlay_allocs_steady\": {allocs_steady},");
    let _ = writeln!(json, "  \"index_patches\": {},", report.totals.index_patches);
    let _ = writeln!(json, "  \"index_rebuilds\": {},", report.totals.index_rebuilds);
    let _ = writeln!(json, "  \"compactions\": {},", report.totals.compactions);
    json.push_str("  \"cells\": [\n");
    for (i, cell) in report.cells.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"fraction\": {},", cell.fraction);
        let _ = writeln!(json, "      \"mix\": \"{}\",", cell.mix);
        let _ = writeln!(json, "      \"adopters_mean\": {:.1},", cell.adopters_mean);
        for (name, m) in [
            ("attacker_share", &cell.attacker_share),
            ("victim_share", &cell.victim_share),
            ("disconnected_share", &cell.disconnected_share),
            ("detected_share", &cell.detected_share),
            ("conformant_share", &cell.conformant_share),
            ("unconformant_share", &cell.unconformant_share),
            ("manrs_transit_share", &cell.manrs_transit_share),
        ] {
            let _ = writeln!(
                json,
                "      \"{name}\": {{\"mean\": {:.6}, \"ci_lo\": {:.6}, \"ci_hi\": {:.6}}},",
                m.mean, m.ci_lo, m.ci_hi
            );
        }
        let _ = writeln!(json, "      \"splices\": {}", cell.splices);
        let _ = writeln!(json, "    }}{}", if i + 1 == report.cells.len() { "" } else { "," });
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    let scale_name = std::env::var("MANRS_SCALE").unwrap_or_else(|_| "medium".into());
    let scale = Scale::from_env();
    let par = ParallelConfig::from_env();
    let threads = par.effective_threads(usize::MAX);
    let seed = harness_seed();

    // Cold baseline: what one trial costs without amortization — a full
    // world build, collection included (`build()` collects the RIB).
    eprintln!("[cold] building {scale_name} world (seed {seed}) ...");
    let start = Instant::now();
    let world = ScenarioWorld::builder(scale.config(seed)).parallel(par).build();
    let cold_build_secs = start.elapsed().as_secs_f64();
    let pairs = world.announcements.len();
    let as_count = world.world.topology.len();
    eprintln!("[cold] {cold_build_secs:.2}s ({as_count} ASes, {pairs} pairs)");

    // The same world becomes the shared frozen base — the one-time cost
    // every trial then shares.
    let start = Instant::now();
    let base = SweepBase::new(world);
    let base_build_secs = start.elapsed().as_secs_f64();
    eprintln!("[base] frozen in {base_build_secs:.2}s");

    // Pass 1 warms worker workspaces (clones, arena headroom, scratch
    // high-water marks); pass 2 is the steady-state measurement.
    eprintln!("[grid] {} cells x {TRIALS} trials, {threads} threads ...", FRACTIONS.len() * MIXES.len());
    let sweep = plan(par);
    let report = sweep.run(&base);
    let start = Instant::now();
    let report_warm = sweep.run(&base);
    let warm_wall_secs = start.elapsed().as_secs_f64();
    assert_eq!(report.cells, report_warm.cells, "sweep must be deterministic across runs");
    let trials = report_warm.totals.trials.max(1);
    eprintln!(
        "[grid] warm: {warm_wall_secs:.3}s for {trials} trials ({:.1} trials/s)",
        trials as f64 / warm_wall_secs.max(1e-9)
    );

    // Steady-state allocation probe: one serial workspace, every spec
    // pre-run once (warm-up), then the full grid again under the
    // counter.
    eprintln!("[alloc] warming serial workspace ...");
    let mut ws = TrialWorkspace::new(&base);
    for spec in &plan(ParallelConfig::serial()).specs() {
        std::hint::black_box(ws.run_trial(&base, spec, HIJACKS, IncidentProfile::Hijacks));
    }
    let allocs_steady = steady_state_allocs(&base, &mut ws);
    eprintln!("[alloc] steady-state allocations across warm grid: {allocs_steady}");

    let warm_trial_secs = warm_wall_secs / trials as f64;
    println!(
        "{:<8} {:>8} {:>8} {:>12} {:>12} {:>12} {:>10} {:>8} {:>10}",
        "scale", "trials", "pairs", "cold s", "warm s/trial", "speedup", "allocs", "rebuilds", "patches"
    );
    println!(
        "{:<8} {:>8} {:>8} {:>12.3} {:>12.6} {:>11.1}x {:>10} {:>8} {:>10}",
        scale_name,
        trials,
        pairs,
        cold_build_secs,
        warm_trial_secs,
        cold_build_secs / warm_trial_secs.max(1e-12),
        allocs_steady,
        report_warm.totals.index_rebuilds,
        report_warm.totals.index_patches,
    );

    let json = render_json(
        &scale_name,
        threads,
        pairs,
        as_count,
        cold_build_secs,
        base_build_secs,
        warm_wall_secs,
        allocs_steady,
        &report_warm,
    );
    let path = "BENCH_sweep.json";
    std::fs::write(path, &json).expect("write benchmark artifact");
    eprintln!("wrote {path}");
}
