//! Figure 8: unconformant customer prefixes.
//!
//! Scale with `MANRS_SCALE=small|medium|paper` (default: medium).

use manrs_bench::{build_world, experiments};

fn main() {
    let world = build_world();
    experiments::fig8(&world).print();
}
