//! Findings 8.3/8.4: Action 4 conformance.
//!
//! Scale with `MANRS_SCALE=small|medium|paper` (default: medium).

use manrs_bench::{build_world, experiments};

fn main() {
    let world = build_world();
    experiments::finding8_conformance(&world).print();
}
