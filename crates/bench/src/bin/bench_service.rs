//! Machine-readable benchmark for the sharded snapshot query service.
//!
//! Exercises the serving layer the way a deployment would and records
//! the numbers the CI gate checks:
//!
//! * **point lookups** — warm 1024-pair validation batches through
//!   [`ServiceClient::validate_pairs_into`]: p50/p99 batch latency,
//!   pair throughput, and the steady-state allocation count of the
//!   read path (which must be zero — handle acquisition is a pinned
//!   refcount bump and every buffer is client-owned and warm);
//! * **full-table revalidation** — `Query::RevalidateAll` wall time
//!   and its drift count (must be zero: shard indexes and stored
//!   statuses agree inside every epoch);
//! * **concurrent replay** — reader threads hammering validation
//!   batches while the writer applies a weekly delta stream,
//!   publishing one epoch per step. Reader throughput during the
//!   replay is compared against an undisturbed baseline, and each
//!   reader tracks how far its deliberately-held old handle fell
//!   behind the freshest published epoch (the stale-read window).
//!
//! Post-replay, the service's counters report the patch economy
//! (splices vs rebuilds vs clone fallbacks, compactions, high-water
//! fragmentation) and `verify()` re-checks every shard against the
//! engine. Everything lands in `BENCH_service.json`.

use manrs_bench::{build_world, harness_seed};
use manrs_net::{Asn, Date, Prefix};
use manrs_scenario::{weekly_steps, SeriesStep};
use manrs_service::{Query, QueryResponse, RotationPolicy, ServiceStats, SnapshotService};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Heap-allocation counter wrapped around the system allocator; the
/// steady-state probe asserts a warm validation batch never touches
/// it. Only `alloc`/`realloc` count — frees are not growth.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const BATCH: usize = 1024;
const SHARDS: usize = 8;
const WEEKS: usize = 40;
const CHURN: f64 = 0.01;
/// Point-lookup timing iterations (after warm-up).
const POINT_ITERS: usize = 256;
/// Batches counted for the steady-state allocation probe.
const ALLOC_PROBE_ITERS: usize = 64;
/// Undisturbed reader-throughput measurement window.
const BASELINE_WINDOW: Duration = Duration::from_millis(250);
/// Writer pacing between weekly steps, so the replay window is wide
/// enough for stable reader-throughput sampling.
const STEP_PACING: Duration = Duration::from_millis(2);

/// A query batch: the table's own pairs cycled up to `BATCH`, plus a
/// few probes that resolve to NotFound in every shard.
fn query_batch(service: &SnapshotService) -> Vec<(Prefix, Asn)> {
    let mut pairs = service.handle().collect_pairs();
    pairs.push(("198.51.100.0/24".parse().unwrap(), Asn(64_496)));
    pairs.push(("2001:db8:ffff::/48".parse().unwrap(), Asn(64_497)));
    let mut batch = Vec::with_capacity(BATCH);
    while batch.len() < BATCH {
        let take = (BATCH - batch.len()).min(pairs.len());
        batch.extend_from_slice(&pairs[..take]);
    }
    batch
}

struct PointNumbers {
    p50_us: f64,
    p99_us: f64,
    qps: f64,
    allocs_steady: u64,
}

/// Single-threaded warm point-lookup batches: latency percentiles,
/// pair throughput, and the steady-state allocation count.
fn measure_point_lookups(service: &SnapshotService, batch: &[(Prefix, Asn)]) -> PointNumbers {
    let mut client = service.client();
    let mut out = Vec::new();
    for _ in 0..16 {
        client.validate_pairs_into(batch, &mut out);
    }
    let mut lat_us = Vec::with_capacity(POINT_ITERS);
    let timed = Instant::now();
    for _ in 0..POINT_ITERS {
        let start = Instant::now();
        client.validate_pairs_into(batch, &mut out);
        lat_us.push(start.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(&out);
    }
    let elapsed = timed.elapsed().as_secs_f64();
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];

    // Steady-state probe: everything is warm, so the whole loop must
    // hit the allocator zero times.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..ALLOC_PROBE_ITERS {
        client.validate_pairs_into(batch, &mut out);
        std::hint::black_box(&out);
    }
    let allocs_steady = ALLOCATIONS.load(Ordering::Relaxed) - before;

    PointNumbers {
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        qps: (POINT_ITERS * batch.len()) as f64 / elapsed.max(1e-9),
        allocs_steady,
    }
}

/// One timed full-table revalidation; returns `(secs, drifted)`.
fn measure_revalidate(service: &SnapshotService) -> (f64, usize) {
    let mut client = service.client();
    let start = Instant::now();
    match client.query(&Query::RevalidateAll) {
        QueryResponse::Revalidation { drifted, .. } => (start.elapsed().as_secs_f64(), drifted),
        other => panic!("unexpected response {other:?}"),
    }
}

struct ReplayNumbers {
    baseline_qps: f64,
    replay_qps: f64,
    drop_ratio: f64,
    stale_epochs_max: u64,
    replay_secs: f64,
}

/// Reader loop: validation batches until `done`, counting pairs
/// answered. Holds one old handle and refreshes it every 32 batches,
/// recording how many epochs behind the freshest publish it fell.
fn reader_loop(
    service: &SnapshotService,
    batch: &[(Prefix, Asn)],
    done: &AtomicBool,
    latest_epoch: &AtomicU64,
) -> (u64, u64) {
    let mut client = service.client();
    let mut out = Vec::new();
    let mut held = client.handle();
    let mut answered = 0u64;
    let mut stale_max = 0u64;
    let mut batches = 0u64;
    while !done.load(Ordering::Relaxed) {
        client.validate_pairs_into(batch, &mut out);
        std::hint::black_box(&out);
        answered += batch.len() as u64;
        batches += 1;
        if batches.is_multiple_of(32) {
            let freshest = latest_epoch.load(Ordering::Relaxed);
            stale_max = stale_max.max(freshest.saturating_sub(held.epoch()));
            held = client.handle();
        }
    }
    (answered, stale_max)
}

/// Reader throughput with and without the writer replaying weekly
/// deltas, plus the worst observed stale-read window.
fn measure_replay(
    service: &SnapshotService,
    batch: &[(Prefix, Asn)],
    readers: usize,
    steps: &[SeriesStep],
) -> ReplayNumbers {
    let latest_epoch = AtomicU64::new(service.handle().epoch());

    // Baseline: undisturbed readers for a fixed window.
    let done = AtomicBool::new(false);
    let baseline_answered: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| scope.spawn(|| reader_loop(service, batch, &done, &latest_epoch)))
            .collect();
        std::thread::sleep(BASELINE_WINDOW);
        done.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("baseline reader").0).sum()
    });
    let baseline_qps = baseline_answered as f64 / BASELINE_WINDOW.as_secs_f64();

    // Replay: the same readers race the writer through every step.
    let done = AtomicBool::new(false);
    let mut replay_secs = 0.0;
    let (replay_answered, stale_epochs_max) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| scope.spawn(|| reader_loop(service, batch, &done, &latest_epoch)))
            .collect();
        let start = Instant::now();
        for step in steps {
            service.apply_step(step);
            latest_epoch.store(service.handle().epoch(), Ordering::Relaxed);
            std::thread::sleep(STEP_PACING);
        }
        replay_secs = start.elapsed().as_secs_f64();
        done.store(true, Ordering::Relaxed);
        let mut answered = 0u64;
        let mut stale = 0u64;
        for handle in handles {
            let (a, s) = handle.join().expect("replay reader");
            answered += a;
            stale = stale.max(s);
        }
        (answered, stale)
    });
    let replay_qps = replay_answered as f64 / replay_secs.max(1e-9);

    ReplayNumbers {
        baseline_qps,
        replay_qps,
        drop_ratio: (1.0 - replay_qps / baseline_qps.max(1e-9)).max(0.0),
        stale_epochs_max,
        replay_secs,
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: &str,
    readers: usize,
    pairs: usize,
    point: &PointNumbers,
    reval_secs: f64,
    reval_drifted: usize,
    replay: &ReplayNumbers,
    stats: &ServiceStats,
    verified: bool,
) -> String {
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"seed\": {},", harness_seed());
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"shards\": {SHARDS},");
    let _ = writeln!(json, "  \"readers\": {readers},");
    let _ = writeln!(json, "  \"pairs\": {pairs},");
    let _ = writeln!(json, "  \"batch_size\": {BATCH},");
    let _ = writeln!(json, "  \"weeks\": {WEEKS},");
    let _ = writeln!(json, "  \"churn\": {CHURN},");
    let _ = writeln!(json, "  \"point_p50_us\": {:.3},", point.p50_us);
    let _ = writeln!(json, "  \"point_p99_us\": {:.3},", point.p99_us);
    let _ = writeln!(json, "  \"point_qps\": {:.0},", point.qps);
    let _ = writeln!(json, "  \"allocs_steady\": {},", point.allocs_steady);
    let _ = writeln!(json, "  \"revalidate_secs\": {reval_secs:.6},");
    let _ = writeln!(json, "  \"revalidate_drifted\": {reval_drifted},");
    let _ = writeln!(json, "  \"baseline_reader_qps\": {:.0},", replay.baseline_qps);
    let _ = writeln!(json, "  \"replay_reader_qps\": {:.0},", replay.replay_qps);
    let _ = writeln!(json, "  \"reader_drop_ratio\": {:.4},", replay.drop_ratio);
    let _ = writeln!(json, "  \"stale_epoch_window_max\": {},", replay.stale_epochs_max);
    let _ = writeln!(json, "  \"replay_secs\": {:.6},", replay.replay_secs);
    let _ = writeln!(json, "  \"steps_applied\": {},", stats.steps_applied);
    let _ = writeln!(json, "  \"epochs_published\": {},", stats.epochs_published);
    let _ = writeln!(json, "  \"index_patches\": {},", stats.index_patches);
    let _ = writeln!(json, "  \"index_rebuilds\": {},", stats.index_rebuilds);
    let _ = writeln!(json, "  \"patch_failures\": {},", stats.patch_failures);
    let _ = writeln!(json, "  \"epoch_clones\": {},", stats.epoch_clones);
    let _ = writeln!(json, "  \"compactions\": {},", stats.compactions);
    let _ = writeln!(json, "  \"rows_patched\": {},", stats.rows_patched);
    let _ = writeln!(json, "  \"max_fragmentation_vrp\": {:.4},", stats.max_fragmentation_vrp);
    let _ = writeln!(json, "  \"max_fragmentation_irr\": {:.4},", stats.max_fragmentation_irr);
    let _ = writeln!(json, "  \"verified\": {verified}");
    json.push_str("}\n");
    json
}

fn main() {
    let scale = std::env::var("MANRS_SCALE").unwrap_or_else(|_| "medium".into());
    let world = build_world();
    // Leave one core for the writer so the replay drop ratio measures
    // rotation interference, not CPU oversubscription.
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let readers = cpus.saturating_sub(1).clamp(1, 4);

    eprintln!("building service ({SHARDS} shards) ...");
    // Weekly steps start 2022-02-01, before the world's snapshot date.
    let service = SnapshotService::builder(&world)
        .shards(SHARDS)
        .rotation(RotationPolicy::EveryStep)
        .spare_buffers(3)
        .recycle_wait(Duration::from_millis(10))
        .start_date(Date::ymd(2022, 2, 1))
        .build();
    let pairs = service.pair_count();
    let batch = query_batch(&service);

    eprintln!("point lookups ({POINT_ITERS} x {BATCH}-pair batches) ...");
    let point = measure_point_lookups(&service, &batch);

    eprintln!("full-table revalidation ({pairs} pairs) ...");
    let (reval_secs, reval_drifted) = measure_revalidate(&service);

    eprintln!("concurrent replay ({readers} readers, {WEEKS} weekly steps) ...");
    let steps = weekly_steps(&world, WEEKS, CHURN, world.config.seed);
    let replay = measure_replay(&service, &batch, readers, &steps);

    let (post_secs, post_drifted) = measure_revalidate(&service);
    let verified = service.verify();
    let stats = service.stats();

    println!("{:<28} {:>14}", "quantity", "value");
    println!("{:<28} {:>14}", "pairs", pairs);
    println!("{:<28} {:>14.1}", "point p50 (us/batch)", point.p50_us);
    println!("{:<28} {:>14.1}", "point p99 (us/batch)", point.p99_us);
    println!("{:<28} {:>14.0}", "point pairs/s", point.qps);
    println!("{:<28} {:>14}", "steady-state allocs", point.allocs_steady);
    println!("{:<28} {:>14.6}", "revalidate (s)", reval_secs);
    println!("{:<28} {:>14.0}", "baseline reader pairs/s", replay.baseline_qps);
    println!("{:<28} {:>14.0}", "replay reader pairs/s", replay.replay_qps);
    println!("{:<28} {:>14.4}", "reader drop ratio", replay.drop_ratio);
    println!("{:<28} {:>14}", "stale window (epochs)", replay.stale_epochs_max);
    println!("{:<28} {:>14}", "epochs published", stats.epochs_published);
    println!("{:<28} {:>14}", "index patches", stats.index_patches);
    println!("{:<28} {:>14}", "index rebuilds", stats.index_rebuilds);
    println!("{:<28} {:>14}", "epoch clones", stats.epoch_clones);
    println!("{:<28} {:>14}", "compactions", stats.compactions);
    println!("{:<28} {:>14}", "verified", verified);

    assert_eq!(reval_drifted, 0, "pre-replay revalidation drifted");
    assert_eq!(post_drifted, 0, "post-replay revalidation drifted (took {post_secs:.6}s)");

    let json =
        render_json(&scale, readers, pairs, &point, reval_secs, reval_drifted, &replay, &stats, verified);
    let path = "BENCH_service.json";
    std::fs::write(path, &json).expect("write benchmark artifact");
    eprintln!("wrote {path}");
}
