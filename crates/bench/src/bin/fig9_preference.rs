//! Figure 9: MANRS preference scores.
//!
//! Scale with `MANRS_SCALE=small|medium|paper` (default: medium).

use manrs_bench::{build_world, experiments};

fn main() {
    let world = build_world();
    experiments::fig9(&world).print();
}
