//! Figures 5a/5b: origination validity CDFs.
//!
//! Scale with `MANRS_SCALE=small|medium|paper` (default: medium).

use manrs_bench::{build_world, experiments};

fn main() {
    let world = build_world();
    experiments::fig5a(&world).print();
    experiments::fig5b(&world).print();
}
