//! Benchmark: vantage-point value optimization (`manrs_ihr::selection`).
//!
//! Collecting a route table costs per (vantage × acceptance-class) on
//! the reverse strategy, so every redundant vantage point in the feed
//! is pure waste. The [`VantageSelector`] ranks vantages by marginal
//! coverage (new AS links plus incremental hegemony mass over the
//! interned path pool) and `select_within(tol)` picks the smallest
//! greedy prefix whose measured hegemony/conformance bias against the
//! full-vantage ground truth stays within `tol`. This bench measures
//! the whole chain:
//!
//! * `selection_secs` — one warm `rank_into` over the collected RIB
//!   (best of reps); `selection_allocs_steady` is the allocation count
//!   of a warm serial ranking pass and must be **zero**.
//! * `reverse_full_secs` / `reverse_selected_secs` /
//!   `reverse_naive_secs` — explicit reverse-strategy collection over
//!   all vantages, over the tolerance-selected subset, and over the
//!   naive standalone-coverage top-k of the same size.
//!   `speedup_selected = full / selected` is the headline gate.
//! * The measured [`BiasReport`] of both subsets — the selected set
//!   must satisfy `within(tolerance)`; the naive set of equal size is
//!   recorded for comparison (it typically misses more links).
//!
//! Results go to `BENCH_vantage.json` (gated by
//! `ci/check_vantage_bench.py`). `MANRS_SCALE` picks the world size;
//! `MANRS_BENCH_SEED` overrides the world seed; `MANRS_THREADS`
//! bounds the fan-out; `MANRS_VANTAGE_TOL` overrides the tolerance.

use manrs_bench::{harness_seed, Scale};
use manrs_bgp::{CollectionStrategy, ParallelConfig, TableCollector, VantageSet};
use manrs_ihr::{BiasReport, SelectionScratch, VantageRanking, VantageSelector};
use manrs_scenario::ScenarioWorld;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Heap-allocation counter wrapped around the system allocator, so the
/// steady-state probe can assert a warm serial ranking pass touches the
/// allocator zero times. Only growth (`alloc`/`realloc`) counts.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Default bias tolerance requested from `select_within`.
const DEFAULT_TOLERANCE: f64 = 0.05;

/// Best-of-`reps` wall time for `f`.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn bias_json(json: &mut String, prefix: &str, bias: &BiasReport) {
    let _ = writeln!(json, "  \"{prefix}hegemony_mean_abs_delta\": {:.9},", bias.hegemony_mean_abs_delta);
    let _ = writeln!(json, "  \"{prefix}hegemony_max_abs_delta\": {:.9},", bias.hegemony_max_abs_delta);
    let _ = writeln!(json, "  \"{prefix}hegemony_p95_abs_delta\": {:.9},", bias.hegemony_p95_abs_delta);
    let _ = writeln!(json, "  \"{prefix}max_conformance_drift\": {:.9},", bias.max_conformance_drift);
    let _ = writeln!(json, "  \"{prefix}missed_links\": {},", bias.missed_links);
    let _ = writeln!(json, "  \"{prefix}visible_selected\": {},", bias.visible_selected);
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: &str,
    threads: usize,
    seed: u64,
    tolerance: f64,
    ranking: &VantageRanking,
    selected: &VantageSet,
    bias_selected: &BiasReport,
    bias_naive: &BiasReport,
    selection_secs: f64,
    selection_allocs_steady: u64,
    reverse_full_secs: f64,
    reverse_selected_secs: f64,
    reverse_naive_secs: f64,
) -> String {
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let k = selected.len();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"tolerance\": {tolerance},");
    let _ = writeln!(json, "  \"vantages_total\": {},", ranking.scores.len());
    let _ = writeln!(json, "  \"selected\": {k},");
    let _ = writeln!(json, "  \"total_links\": {},", ranking.total_links);
    let _ = writeln!(json, "  \"total_weight\": {},", ranking.total_weight);
    let _ = writeln!(json, "  \"covered_links_selected\": {},", ranking.covered_links(k));
    let _ = writeln!(json, "  \"visible_full\": {},", bias_selected.visible_full);
    let _ = writeln!(json, "  \"ases_scored\": {},", bias_selected.ases_scored);
    let _ = writeln!(json, "  \"selection_secs\": {selection_secs:.6},");
    let _ = writeln!(json, "  \"selection_allocs_steady\": {selection_allocs_steady},");
    let _ = writeln!(json, "  \"reverse_full_secs\": {reverse_full_secs:.6},");
    let _ = writeln!(json, "  \"reverse_selected_secs\": {reverse_selected_secs:.6},");
    let _ = writeln!(json, "  \"reverse_naive_secs\": {reverse_naive_secs:.6},");
    let _ = writeln!(
        json,
        "  \"speedup_selected\": {:.3},",
        reverse_full_secs / reverse_selected_secs.max(1e-12)
    );
    bias_json(&mut json, "", bias_selected);
    bias_json(&mut json, "naive_", bias_naive);
    let _ = writeln!(json, "  \"within_tolerance\": {},", bias_selected.within(tolerance));
    json.push_str("  \"greedy_order\": [\n");
    for (i, score) in ranking.scores.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"vantage\": {}, \"marginal_links\": {}, \"marginal_mass\": {:.9}, \"standalone_links\": {}}}{}",
            score.vantage.value(),
            score.marginal_links,
            score.marginal_mass,
            score.standalone_links,
            if i + 1 == ranking.scores.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    let scale_name = std::env::var("MANRS_SCALE").unwrap_or_else(|_| "medium".into());
    let scale = Scale::from_env();
    let par = ParallelConfig::from_env();
    let threads = par.effective_threads(usize::MAX);
    let seed = harness_seed();
    let tolerance = std::env::var("MANRS_VANTAGE_TOL")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(DEFAULT_TOLERANCE);
    let reps = match scale {
        Scale::Small => 5,
        _ => 3,
    };

    eprintln!("[world] building {scale_name} world (seed {seed}) ...");
    let start = Instant::now();
    let world = ScenarioWorld::builder(scale.config(seed)).parallel(par).build();
    eprintln!(
        "[world] {:.2}s ({} ASes, {} pairs, {} vantages)",
        start.elapsed().as_secs_f64(),
        world.world.topology.len(),
        world.announcements.len(),
        world.vantages.len()
    );

    // Selection: warm the scratch once, then take the best-of-reps warm
    // ranking time at the configured thread count.
    let selector = VantageSelector::new(&world.rib).parallel(par);
    let mut scratch = SelectionScratch::new();
    let mut ranking = VantageRanking::default();
    selector.rank_into(&mut scratch, &mut ranking);
    let (selection_secs, ()) = time_best(reps, || selector.rank_into(&mut scratch, &mut ranking));
    eprintln!(
        "[rank] {} vantages, {} links, {selection_secs:.4}s warm",
        ranking.scores.len(),
        ranking.total_links
    );

    // Steady-state allocation probe: a *serial* selector with its own
    // warm scratch — a second ranking pass must not allocate.
    let serial_selector = VantageSelector::new(&world.rib).parallel(ParallelConfig::serial());
    let mut serial_scratch = SelectionScratch::new();
    let mut serial_ranking = VantageRanking::default();
    serial_selector.rank_into(&mut serial_scratch, &mut serial_ranking);
    let before = alloc_count();
    serial_selector.rank_into(&mut serial_scratch, &mut serial_ranking);
    let selection_allocs_steady = alloc_count() - before;
    assert_eq!(serial_ranking, ranking, "serial ranking diverged from parallel");
    eprintln!("[alloc] steady-state allocations across warm ranking: {selection_allocs_steady}");

    // Minimal subset within tolerance, and the naive standalone top-k
    // of the same size as the strawman.
    let (selected, bias_selected) = selector.select_within(&ranking, tolerance);
    let naive = ranking.naive_top(selected.len());
    let bias_naive = selector.bias_of(&naive);
    eprintln!(
        "[select] {}/{} vantages within tol {tolerance} (max heg delta {:.6}, missed links {})",
        selected.len(),
        ranking.scores.len(),
        bias_selected.hegemony_max_abs_delta,
        bias_selected.missed_links
    );
    assert!(
        bias_selected.within(tolerance),
        "select_within returned a set violating its own tolerance: {bias_selected:?}"
    );

    // Reverse-strategy collection at full, selected, and naive vantage
    // sets — the cost the selection actually saves.
    let collector =
        TableCollector::new(&world.world.topology, &world.policies, &world.vantages).parallel(par);
    let (reverse_full_secs, rib_full) = time_best(reps, || {
        collector
            .clone()
            .plan()
            .strategy(CollectionStrategy::Reverse)
            .collect(&world.announcements)
    });
    let (reverse_selected_secs, rib_selected) = time_best(reps, || {
        collector
            .clone()
            .plan()
            .strategy(CollectionStrategy::Reverse)
            .vantage_set(&selected)
            .collect(&world.announcements)
    });
    let (reverse_naive_secs, _) = time_best(reps, || {
        collector
            .clone()
            .plan()
            .strategy(CollectionStrategy::Reverse)
            .vantage_set(&naive)
            .collect(&world.announcements)
    });
    // The subset collection must be the projection of the full table:
    // every selected observation's paths appear in the full RIB.
    let full_paths: usize = rib_full.observations.iter().map(|o| o.paths.len()).sum();
    let selected_paths: usize = rib_selected.observations.iter().map(|o| o.paths.len()).sum();
    assert!(selected_paths <= full_paths, "subset collection grew the table");
    assert_eq!(rib_full.observations.len(), rib_selected.observations.len());

    println!(
        "{:<8} {:>9} {:>9} {:>12} {:>12} {:>12} {:>12} {:>9} {:>8}",
        "scale", "vantages", "selected", "rank s", "full s", "selected s", "naive s", "speedup", "allocs"
    );
    println!(
        "{:<8} {:>9} {:>9} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>8.2}x {:>8}",
        scale_name,
        ranking.scores.len(),
        selected.len(),
        selection_secs,
        reverse_full_secs,
        reverse_selected_secs,
        reverse_naive_secs,
        reverse_full_secs / reverse_selected_secs.max(1e-12),
        selection_allocs_steady,
    );

    let json = render_json(
        &scale_name,
        threads,
        seed,
        tolerance,
        &ranking,
        &selected,
        &bias_selected,
        &bias_naive,
        selection_secs,
        selection_allocs_steady,
        reverse_full_secs,
        reverse_selected_secs,
        reverse_naive_secs,
    );
    let path = "BENCH_vantage.json";
    std::fs::write(path, &json).expect("write benchmark artifact");
    eprintln!("wrote {path}");
}
