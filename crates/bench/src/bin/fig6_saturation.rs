//! Figure 6: RPKI saturation over time.
//!
//! Scale with `MANRS_SCALE=small|medium|paper` (default: medium).

use manrs_bench::{build_world, experiments};

fn main() {
    let world = build_world();
    experiments::fig6(&world).print();
}
