//! Figures 7a/7b: propagated invalid shares.
//!
//! Scale with `MANRS_SCALE=small|medium|paper` (default: medium).

use manrs_bench::{build_world, experiments};

fn main() {
    let world = build_world();
    experiments::fig7(&world).print();
}
