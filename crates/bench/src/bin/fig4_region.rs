//! Figures 4a/4b: per-RIR ASes and routed space.
//!
//! Scale with `MANRS_SCALE=small|medium|paper` (default: medium).

use manrs_bench::{build_world, experiments};

fn main() {
    let world = build_world();
    experiments::fig4a(&world).print();
    experiments::fig4b(&world).print();
}
