//! Figure 2: MANRS participant growth.
//!
//! Scale with `MANRS_SCALE=small|medium|paper` (default: medium).

use manrs_bench::{build_world, experiments};

fn main() {
    let world = build_world();
    experiments::fig2(&world).print();
}
