//! Finding 8.7: weekly conformance stability.
//!
//! Scale with `MANRS_SCALE=small|medium|paper` (default: medium).

use manrs_bench::{build_world, experiments};

fn main() {
    let world = build_world();
    experiments::finding8_stability(&world).print();
}
