//! Finding 7.0: registration completeness.
//!
//! Scale with `MANRS_SCALE=small|medium|paper` (default: medium).

use manrs_bench::{build_world, experiments};

fn main() {
    let world = build_world();
    experiments::finding7(&world).print();
}
