//! Table 1: unconformant-origin attribution.
//!
//! Scale with `MANRS_SCALE=small|medium|paper` (default: medium).

use manrs_bench::{build_world, experiments};

fn main() {
    let world = build_world();
    experiments::table1(&world).print();
}
