//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. **Invalid-length strictness** — the paper treats IRR
//!    Invalid-length as conformant (§3); count how many member ASes flip
//!    to unconformant if it is not.
//! 2. **Threshold sweep** — conformant-AS counts as the Action 4
//!    threshold moves through 80/90/95/100%.
//! 3. **Vantage-point sweep** — visibility and measured conformance as
//!    collectors disappear (the §11 visibility limitation, quantified).
//! 4. **Filter-inference accuracy** — the §11 inference limitation:
//!    compare "propagates no invalid" inference against the simulator's
//!    ground-truth ROV deployment.

use manrs_bench::{build_world, pct, ExperimentResult};
use manrs_core::{
    action4_verdict, compute_action1, compute_action4, ConformanceThreshold,
};
use manrs_ihr::build_snapshot;
use manrs_net::Asn;
use manrs_scenario::ScenarioWorld;

fn main() {
    let world = build_world();
    strict_length(&world).print();
    threshold_sweep(&world).print();
    vantage_sweep(&world).print();
    filter_inference(&world).print();
}

fn strict_length(world: &ScenarioWorld) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "abl-invlen",
        "Ablation: treat IRR Invalid-length as unconformant",
    );
    let metrics = compute_action4(&world.ihr);
    let members = world.member_asns();
    let lenient = members
        .iter()
        .filter(|a| action4_verdict(metrics.get(a), ConformanceThreshold::Isp).is_conformant())
        .count();
    // Strict recomputation: conformant only if RPKI Valid or IRR Valid.
    let mut strict = 0usize;
    for asn in &members {
        let rows: Vec<_> = world
            .ihr
            .prefix_origins
            .iter()
            .filter(|po| po.origin == *asn)
            .collect();
        if rows.is_empty() {
            strict += 1;
            continue;
        }
        let ok = rows
            .iter()
            .filter(|po| {
                po.rpki == manrs_rpki::RpkiStatus::Valid
                    || po.irr == manrs_irr::IrrStatus::Valid
            })
            .count();
        if ok as f64 / rows.len() as f64 * 100.0 >= 90.0 {
            strict += 1;
        }
    }
    r.push(
        "conformant members (paper rule: invalid-length OK)",
        "the paper's §3 choice",
        format!("{lenient}/{} ({})", members.len(), pct(lenient, members.len())),
    );
    r.push(
        "conformant members (strict: exact matches only)",
        "not reported (motivates §3)",
        format!("{strict}/{} ({})", members.len(), pct(strict, members.len())),
    );
    r.push(
        "members penalized purely for de-aggregation",
        "-",
        format!("{}", lenient.saturating_sub(strict)),
    );
    r
}

fn threshold_sweep(world: &ScenarioWorld) -> ExperimentResult {
    let mut r = ExperimentResult::new("abl-threshold", "Ablation: Action 4 threshold sweep");
    let metrics = compute_action4(&world.ihr);
    let members = world.member_asns();
    for threshold in [80.0, 90.0, 95.0, 100.0] {
        let conformant = members
            .iter()
            .filter(|a| {
                action4_verdict(metrics.get(a), ConformanceThreshold::Custom(threshold))
                    .is_conformant()
            })
            .count();
        r.push(
            format!("threshold {threshold:.0}%"),
            if threshold == 90.0 { "ISP rule" } else if threshold == 100.0 { "CDN rule" } else { "-" },
            format!("{conformant}/{} ({})", members.len(), pct(conformant, members.len())),
        );
    }
    r
}

fn vantage_sweep(world: &ScenarioWorld) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "abl-vantage",
        "Ablation: collector visibility vs measured conformance (§11)",
    );
    let members = world.member_asns();
    let full_vantages = world.vantages.len();
    for keep in [full_vantages, full_vantages / 2, full_vantages / 4, 1] {
        let vantages: Vec<Asn> = world.vantages.iter().copied().take(keep.max(1)).collect();
        let rib = manrs_bgp::TableCollector::new(&world.world.topology, &world.policies, &vantages)
            .plan()
            .collect(&world.announcements);
        let ihr = build_snapshot(&rib, &world.world.topology);
        let metrics = compute_action4(&ihr);
        let conformant = members
            .iter()
            .filter(|a| action4_verdict(metrics.get(a), ConformanceThreshold::Isp).is_conformant())
            .count();
        r.push(
            format!("{} vantage(s)", vantages.len()),
            "fewer viewpoints -> overestimated conformance",
            format!(
                "visible {} of {}; conformant {}",
                rib.visible_count(),
                world.announcements.len(),
                pct(conformant, members.len())
            ),
        );
    }
    r
}

fn filter_inference(world: &ScenarioWorld) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "abl-inference",
        "Ablation: 'propagates no invalid' inference vs ground-truth ROV (§11)",
    );
    let metrics = compute_action1(&world.ihr);
    // Infer ROV: a transit that propagated >= `min_propagated`
    // announcements and zero RPKI-Invalid ones.
    for min_propagated in [1usize, 10, 50] {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fne = 0usize;
        for (asn, m) in &metrics {
            if m.propagated < min_propagated {
                continue;
            }
            let inferred = m.rpki_invalid == 0;
            let truth = world.truth_rov.contains(asn);
            match (inferred, truth) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fne += 1,
                (false, false) => {}
            }
        }
        r.push(
            format!("min propagated {min_propagated}: precision / recall"),
            "previous work: low-confidence inference",
            format!("{} / {}", pct(tp, tp + fp), pct(tp, tp + fne)),
        );
    }
    r.push(
        "ground-truth ROV deployers",
        "unknown in the wild",
        world.truth_rov.len().to_string(),
    );
    r
}
