//! Table 2: Action 1 conformance counts.
//!
//! Scale with `MANRS_SCALE=small|medium|paper` (default: medium).

use manrs_bench::{build_world, experiments};

fn main() {
    let world = build_world();
    experiments::table2(&world).print();
}
