//! Machine-readable benchmark for the incremental timeline engine.
//!
//! Replays the same weekly churn delta stream two ways and times each
//! step:
//!
//! * **full rebuild** — the pre-engine algorithm: apply the deltas to
//!   cloned registries, run a complete relying-party validation, and
//!   re-validate every visible (prefix, origin) pair from scratch;
//! * **incremental** — [`TimelineEngine::step`]: apply the deltas, fire
//!   validity-window events, and re-validate only the affected pairs.
//!
//! The two paths are asserted to produce identical per-pair statuses at
//! every step, then per-step wall times and the engine's work counters
//! are written to `BENCH_timeline.json` (with `host_cpus` context, like
//! `BENCH_propagation.json`) so regressions are diffable across commits.

use manrs_bench::{Scale, HARNESS_SEED};
use manrs_irr::{validate_irr, IrrRegistry, IrrStatus};
use manrs_net::Date;
use manrs_rpki::{validate_origin, RelyingParty, RpkiRepository, RpkiStatus};
use manrs_scenario::{weekly_steps, RegistryDelta, ScenarioWorld, SeriesStep, TimelineEngine};
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    scale: &'static str,
    weeks: usize,
    churn: f64,
    pairs: usize,
    deltas: usize,
    full_secs_per_step: f64,
    incremental_secs_per_step: f64,
    pairs_revalidated_per_step: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.full_secs_per_step / self.incremental_secs_per_step.max(1e-12)
    }
}

/// The pre-engine weekly algorithm, one step at a time: mutate the
/// registries, then validate everything from scratch.
struct FullRebuild {
    repository: RpkiRepository,
    irr: IrrRegistry,
    date: Date,
}

impl FullRebuild {
    fn new(world: &ScenarioWorld, date: Date) -> Self {
        FullRebuild { repository: world.repository.clone(), irr: world.irr.clone(), date }
    }

    fn apply(&mut self, delta: &RegistryDelta) {
        match delta {
            RegistryDelta::RoaAdded { ca, roa } => {
                let _ = self.repository.sign_roa(*ca, *roa);
            }
            RegistryDelta::RoaRemoved { roa } => {
                let _ = self.repository.revoke_roa(*roa);
            }
            RegistryDelta::RouteObjectAdded { object } => {
                self.irr.add_route(object.clone());
            }
            RegistryDelta::RouteObjectRemoved { prefix, origin } => {
                self.irr.remove_route(prefix, *origin);
            }
            // Membership and activation do not affect validation state.
            RegistryDelta::MemberJoined { .. } | RegistryDelta::OriginActivated { .. } => {}
        }
    }

    fn step(&mut self, world: &ScenarioWorld, step: &SeriesStep) -> Vec<(RpkiStatus, IrrStatus)> {
        self.date = step.date;
        for delta in &step.deltas {
            self.apply(delta);
        }
        let (vrps, _) = RelyingParty::new(self.date).validate(&self.repository);
        world
            .rib
            .visible()
            .map(|obs| {
                (
                    validate_origin(&vrps, &obs.prefix, obs.origin),
                    validate_irr(&self.irr, &obs.prefix, obs.origin),
                )
            })
            .collect()
    }
}

fn measure_scale(
    scale: Scale,
    name: &'static str,
    weeks: usize,
    churn: f64,
    out: &mut Vec<Measurement>,
) {
    eprintln!("[{name}] building world ...");
    let world = ScenarioWorld::builder(scale.config(HARNESS_SEED)).build();
    let steps = weekly_steps(&world, weeks, churn, world.config.seed);
    let total_deltas: usize = steps.iter().map(|s| s.deltas.len()).sum();

    // Incremental path. Engine construction (the one-time full pass) is
    // excluded: the comparison is per-step work once both are warm.
    let mut engine = TimelineEngine::new(&world, steps[0].date);
    engine.take_stats();
    let mut full = FullRebuild::new(&world, steps[0].date);
    let mut incremental_secs = 0.0;
    let mut full_secs = 0.0;
    for step in &steps {
        let start = Instant::now();
        engine.step(step.date, step.deltas.clone());
        incremental_secs += start.elapsed().as_secs_f64();

        let start = Instant::now();
        let reference = full.step(&world, step);
        full_secs += start.elapsed().as_secs_f64();

        let incremental: Vec<_> =
            engine.snapshot().prefix_origins.iter().map(|po| (po.rpki, po.irr)).collect();
        assert_eq!(incremental, reference, "incremental diverged from full rebuild at {:?}", step.date);
    }
    let stats = engine.take_stats();

    out.push(Measurement {
        scale: name,
        weeks,
        churn,
        pairs: engine.pair_count(),
        deltas: total_deltas,
        full_secs_per_step: full_secs / weeks as f64,
        incremental_secs_per_step: incremental_secs / weeks as f64,
        pairs_revalidated_per_step: stats.pairs_revalidated as f64 / weeks as f64,
    });
}

fn render_json(measurements: &[Measurement]) -> String {
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    json.push_str("  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"scale\": \"{}\",", m.scale);
        let _ = writeln!(json, "      \"weeks\": {},", m.weeks);
        let _ = writeln!(json, "      \"churn\": {},", m.churn);
        let _ = writeln!(json, "      \"pairs\": {},", m.pairs);
        let _ = writeln!(json, "      \"deltas\": {},", m.deltas);
        let _ = writeln!(json, "      \"full_secs_per_step\": {:.6},", m.full_secs_per_step);
        let _ = writeln!(
            json,
            "      \"incremental_secs_per_step\": {:.6},",
            m.incremental_secs_per_step
        );
        let _ = writeln!(
            json,
            "      \"pairs_revalidated_per_step\": {:.1},",
            m.pairs_revalidated_per_step
        );
        let _ = writeln!(json, "      \"speedup\": {:.3}", m.speedup());
        let _ = writeln!(json, "    }}{}", if i + 1 == measurements.len() { "" } else { "," });
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    // The paper's stability analysis: 12 weekly snapshots at a churn
    // rate that flips a fraction of a percent of registrations per week.
    let weeks = 12;
    let churn = 0.004;
    let mut measurements = Vec::new();
    measure_scale(Scale::Small, "small", weeks, churn, &mut measurements);
    measure_scale(Scale::Medium, "medium", weeks, churn, &mut measurements);

    println!(
        "{:<8} {:>6} {:>8} {:>8} {:>8} {:>14} {:>14} {:>12} {:>8}",
        "scale", "weeks", "churn", "pairs", "deltas", "full s/step", "incr s/step", "reval/step", "speedup"
    );
    for m in &measurements {
        println!(
            "{:<8} {:>6} {:>8} {:>8} {:>8} {:>14.6} {:>14.6} {:>12.1} {:>7.2}x",
            m.scale,
            m.weeks,
            m.churn,
            m.pairs,
            m.deltas,
            m.full_secs_per_step,
            m.incremental_secs_per_step,
            m.pairs_revalidated_per_step,
            m.speedup()
        );
    }

    let json = render_json(&measurements);
    let path = "BENCH_timeline.json";
    std::fs::write(path, &json).expect("write benchmark artifact");
    eprintln!("wrote {path}");
}
