//! Machine-readable benchmark for the incremental timeline engine.
//!
//! Replays the same weekly churn delta stream two ways and times each
//! step:
//!
//! * **full rebuild** — the pre-engine algorithm: apply the deltas to
//!   cloned registries, run a complete relying-party validation, and
//!   re-validate every visible (prefix, origin) pair from scratch;
//! * **incremental** — [`TimelineEngine::step`]: apply the deltas, fire
//!   validity-window events, and re-validate only the affected pairs.
//!
//! The two paths are asserted to produce identical per-pair statuses at
//! every step, then per-step wall times and the engine's work counters
//! are written to `BENCH_timeline.json` (with `host_cpus` context, like
//! `BENCH_propagation.json`) so regressions are diffable across commits.
//!
//! Since the engine splices registry deltas into its compiled indexes
//! in place, the artifact also records the patch economy: how many
//! splices and full index rebuilds each replay performed, what one full
//! rebuild of both compiled indexes costs at that scale (the work every
//! splice avoids), and a steady-state allocation count for a warm
//! remove/insert patch cycle — which must be zero, the property that
//! makes splicing viable inside a latency-sensitive replay loop.

use manrs_bench::{harness_seed, Scale};
use manrs_irr::{validate_irr, CompiledIrrIndex, IrrRegistry, IrrStatus};
use manrs_net::Date;
use manrs_rpki::{validate_origin, CompiledVrpIndex, RelyingParty, RpkiRepository, RpkiStatus};
use manrs_scenario::{weekly_steps, RegistryDelta, ScenarioWorld, SeriesStep, TimelineEngine};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Heap-allocation counter wrapped around the system allocator, so the
/// steady-state patch probe can assert a warm splice cycle touches the
/// allocator zero times. Only `alloc`/`realloc` count: frees are not
/// growth and the probe is single-threaded.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Measurement {
    scale: &'static str,
    weeks: usize,
    churn: f64,
    pairs: usize,
    deltas: usize,
    full_secs_per_step: f64,
    incremental_secs_per_step: f64,
    pairs_revalidated_per_step: f64,
    index_patches_per_step: f64,
    index_rebuilds_per_step: f64,
    index_rebuild_secs_per_step: f64,
    patch_allocs_steady: u64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.full_secs_per_step / self.incremental_secs_per_step.max(1e-12)
    }
}

/// The pre-engine weekly algorithm, one step at a time: mutate the
/// registries, then validate everything from scratch.
struct FullRebuild {
    repository: RpkiRepository,
    irr: IrrRegistry,
    date: Date,
}

impl FullRebuild {
    fn new(world: &ScenarioWorld, date: Date) -> Self {
        FullRebuild { repository: world.repository.clone(), irr: world.irr.clone(), date }
    }

    fn apply(&mut self, delta: &RegistryDelta) {
        match delta {
            RegistryDelta::RoaAdded { ca, roa } => {
                let _ = self.repository.sign_roa(*ca, *roa);
            }
            RegistryDelta::RoaRemoved { roa } => {
                let _ = self.repository.revoke_roa(*roa);
            }
            RegistryDelta::RouteObjectAdded { object } => {
                self.irr.add_route(object.clone());
            }
            RegistryDelta::RouteObjectRemoved { prefix, origin } => {
                self.irr.remove_route(prefix, *origin);
            }
            // Membership and activation do not affect validation state.
            RegistryDelta::MemberJoined { .. } | RegistryDelta::OriginActivated { .. } => {}
        }
    }

    fn step(&mut self, world: &ScenarioWorld, step: &SeriesStep) -> Vec<(RpkiStatus, IrrStatus)> {
        self.date = step.date;
        for delta in &step.deltas {
            self.apply(delta);
        }
        let (vrps, _) = RelyingParty::new(self.date).validate(&self.repository);
        world
            .rib
            .visible()
            .map(|obs| {
                (
                    validate_origin(&vrps, &obs.prefix, obs.origin),
                    validate_irr(&self.irr, &obs.prefix, obs.origin),
                )
            })
            .collect()
    }
}

/// What one full compiled-index rebuild costs on the end-of-replay
/// registries: the work a successful splice avoids. Best of `reps` runs.
fn time_index_rebuild(full: &FullRebuild, reps: usize) -> f64 {
    let (vrps, _) = RelyingParty::new(full.date).validate(&full.repository);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let rpki = CompiledVrpIndex::build(&vrps);
        let irr = CompiledIrrIndex::build(&full.irr);
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box((&rpki, &irr));
        best = best.min(elapsed);
    }
    best
}

/// Allocations performed by a warm remove/insert splice cycle. After
/// one cycle the touched run sits at the arena tail (remove pops, the
/// re-insert appends in place) and `reserve_headroom` has pre-grown the
/// columns, so steady state must hit the allocator zero times.
fn steady_state_patch_allocs(full: &FullRebuild, cycles: usize) -> u64 {
    let (vrps, _) = RelyingParty::new(full.date).validate(&full.repository);
    let Some(&vrp) = vrps.iter().first().copied() else {
        return 0;
    };
    let mut index = CompiledVrpIndex::build(&vrps);
    index.reserve_headroom(64);
    // Warm-up: settle the run at the arena tail.
    for _ in 0..4 {
        assert!(index.apply_roa_delta(&vrp, false), "warm-up remove splice failed");
        assert!(index.apply_roa_delta(&vrp, true), "warm-up insert splice failed");
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..cycles {
        assert!(index.apply_roa_delta(&vrp, false), "steady remove splice failed");
        assert!(index.apply_roa_delta(&vrp, true), "steady insert splice failed");
    }
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn measure_scale(
    scale: Scale,
    name: &'static str,
    weeks: usize,
    churn: f64,
    out: &mut Vec<Measurement>,
) {
    eprintln!("[{name}] building world ...");
    let world = ScenarioWorld::builder(scale.config(harness_seed())).build();
    let steps = weekly_steps(&world, weeks, churn, world.config.seed);
    let total_deltas: usize = steps.iter().map(|s| s.deltas.len()).sum();

    // Incremental path. Engine construction (the one-time full pass) is
    // excluded: the comparison is per-step work once both are warm.
    let mut engine = TimelineEngine::new(&world, steps[0].date);
    engine.take_stats();
    let mut full = FullRebuild::new(&world, steps[0].date);
    let mut incremental_secs = 0.0;
    let mut full_secs = 0.0;
    for step in &steps {
        let start = Instant::now();
        engine.step(step.date, step.deltas.clone());
        incremental_secs += start.elapsed().as_secs_f64();

        let start = Instant::now();
        let reference = full.step(&world, step);
        full_secs += start.elapsed().as_secs_f64();

        let incremental: Vec<_> =
            engine.snapshot().prefix_origins.iter().map(|po| (po.rpki, po.irr)).collect();
        assert_eq!(incremental, reference, "incremental diverged from full rebuild at {:?}", step.date);
    }
    let stats = engine.take_stats();
    let index_rebuild_secs = time_index_rebuild(&full, 3);
    let patch_allocs = steady_state_patch_allocs(&full, 64);

    out.push(Measurement {
        scale: name,
        weeks,
        churn,
        pairs: engine.pair_count(),
        deltas: total_deltas,
        full_secs_per_step: full_secs / weeks as f64,
        incremental_secs_per_step: incremental_secs / weeks as f64,
        pairs_revalidated_per_step: stats.pairs_revalidated as f64 / weeks as f64,
        index_patches_per_step: stats.index_patches as f64 / weeks as f64,
        index_rebuilds_per_step: stats.index_rebuilds as f64 / weeks as f64,
        index_rebuild_secs_per_step: index_rebuild_secs,
        patch_allocs_steady: patch_allocs,
    });
}

fn render_json(measurements: &[Measurement]) -> String {
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"seed\": {},", harness_seed());
    json.push_str("  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"scale\": \"{}\",", m.scale);
        let _ = writeln!(json, "      \"weeks\": {},", m.weeks);
        let _ = writeln!(json, "      \"churn\": {},", m.churn);
        let _ = writeln!(json, "      \"pairs\": {},", m.pairs);
        let _ = writeln!(json, "      \"deltas\": {},", m.deltas);
        let _ = writeln!(json, "      \"full_secs_per_step\": {:.6},", m.full_secs_per_step);
        let _ = writeln!(
            json,
            "      \"incremental_secs_per_step\": {:.6},",
            m.incremental_secs_per_step
        );
        let _ = writeln!(
            json,
            "      \"pairs_revalidated_per_step\": {:.1},",
            m.pairs_revalidated_per_step
        );
        let _ = writeln!(
            json,
            "      \"index_patches_per_step\": {:.1},",
            m.index_patches_per_step
        );
        let _ = writeln!(
            json,
            "      \"index_rebuilds_per_step\": {:.1},",
            m.index_rebuilds_per_step
        );
        let _ = writeln!(
            json,
            "      \"index_rebuild_secs_per_step\": {:.6},",
            m.index_rebuild_secs_per_step
        );
        let _ = writeln!(json, "      \"patch_allocs_steady\": {},", m.patch_allocs_steady);
        let _ = writeln!(json, "      \"speedup\": {:.3}", m.speedup());
        let _ = writeln!(json, "    }}{}", if i + 1 == measurements.len() { "" } else { "," });
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    // The paper's stability analysis: 12 weekly snapshots at a churn
    // rate that flips a fraction of a percent of registrations per week.
    let weeks = 12;
    let churn = 0.004;
    let mut measurements = Vec::new();
    measure_scale(Scale::Small, "small", weeks, churn, &mut measurements);
    measure_scale(Scale::Medium, "medium", weeks, churn, &mut measurements);

    println!(
        "{:<8} {:>6} {:>8} {:>8} {:>8} {:>14} {:>14} {:>12} {:>12} {:>10} {:>14} {:>8}",
        "scale",
        "weeks",
        "churn",
        "pairs",
        "deltas",
        "full s/step",
        "incr s/step",
        "reval/step",
        "patch/step",
        "rebuilds",
        "rebuild s",
        "speedup"
    );
    for m in &measurements {
        println!(
            "{:<8} {:>6} {:>8} {:>8} {:>8} {:>14.6} {:>14.6} {:>12.1} {:>12.1} {:>10.1} {:>14.6} {:>7.2}x",
            m.scale,
            m.weeks,
            m.churn,
            m.pairs,
            m.deltas,
            m.full_secs_per_step,
            m.incremental_secs_per_step,
            m.pairs_revalidated_per_step,
            m.index_patches_per_step,
            m.index_rebuilds_per_step,
            m.index_rebuild_secs_per_step,
            m.speedup()
        );
    }

    let json = render_json(&measurements);
    let path = "BENCH_timeline.json";
    std::fs::write(path, &json).expect("write benchmark artifact");
    eprintln!("wrote {path}");
}
