//! MANRS Action 3: facilitate global operational communication.
//!
//! Action 3 (mandatory in both the ISP and CDN programs) requires
//! members to "maintain up-to-date network contact information in IRR
//! databases or PeeringDB" (§2.4). The paper scopes its measurement to
//! Actions 1 and 4 and names Action 3 as future work (§12); this module
//! implements that extension: a contact-freshness check over the IRR
//! aut-num objects and a PeeringDB analog.

use manrs_irr::IrrRegistry;
use manrs_net::{Asn, Date};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One network's PeeringDB record (the fields Action 3 cares about).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeeringDbRecord {
    /// The network's ASN.
    pub asn: Asn,
    /// NOC / policy contact e-mail.
    pub contact: String,
    /// When the record was last updated.
    pub updated: Date,
}

/// A PeeringDB analog: per-ASN records.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PeeringDb {
    records: BTreeMap<Asn, PeeringDbRecord>,
}

impl PeeringDb {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces a record.
    pub fn upsert(&mut self, record: PeeringDbRecord) {
        self.records.insert(record.asn, record);
    }

    /// The record for `asn`.
    pub fn get(&self, asn: Asn) -> Option<&PeeringDbRecord> {
        self.records.get(&asn)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Where (if anywhere) an AS publishes usable contact information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContactSource {
    /// A non-empty admin-c on an IRR aut-num object.
    Irr,
    /// A fresh PeeringDB record.
    PeeringDb,
    /// Both registries.
    Both,
    /// Neither — unconformant with Action 3.
    None,
}

/// Per-AS Action 3 verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action3Verdict {
    /// Where contact info was found.
    pub source: ContactSource,
    /// `true` if the AS meets Action 3 (any source).
    pub conformant: bool,
}

/// Checks Action 3 for one AS: a non-empty IRR admin-c, or a PeeringDB
/// record updated within `max_age_days` of `date`.
pub fn action3_verdict(
    asn: Asn,
    irr: &IrrRegistry,
    peeringdb: &PeeringDb,
    date: Date,
    max_age_days: i64,
) -> Action3Verdict {
    let irr_ok = irr
        .aut_num(asn)
        .map(|a| !a.admin_c.trim().is_empty())
        .unwrap_or(false);
    let pdb_ok = peeringdb
        .get(asn)
        .map(|r| !r.contact.trim().is_empty() && r.updated.days_until(&date) <= max_age_days)
        .unwrap_or(false);
    let source = match (irr_ok, pdb_ok) {
        (true, true) => ContactSource::Both,
        (true, false) => ContactSource::Irr,
        (false, true) => ContactSource::PeeringDb,
        (false, false) => ContactSource::None,
    };
    Action3Verdict { source, conformant: irr_ok || pdb_ok }
}

/// Action 3 conformance counts over a population.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action3Summary {
    /// ASes checked.
    pub total: usize,
    /// Conformant ASes.
    pub conformant: usize,
    /// Per-source breakdown.
    pub irr_only: usize,
    /// Fresh PeeringDB record only.
    pub peeringdb_only: usize,
    /// Both sources.
    pub both: usize,
}

/// Summarizes Action 3 over `asns`.
pub fn action3_summary<'a, I: IntoIterator<Item = &'a Asn>>(
    asns: I,
    irr: &IrrRegistry,
    peeringdb: &PeeringDb,
    date: Date,
    max_age_days: i64,
) -> Action3Summary {
    let mut summary = Action3Summary::default();
    for asn in asns {
        summary.total += 1;
        let v = action3_verdict(*asn, irr, peeringdb, date, max_age_days);
        if v.conformant {
            summary.conformant += 1;
        }
        match v.source {
            ContactSource::Irr => summary.irr_only += 1,
            ContactSource::PeeringDb => summary.peeringdb_only += 1,
            ContactSource::Both => summary.both += 1,
            ContactSource::None => {}
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_irr::{AutNum, IrrDatabase};

    fn irr_with_autnum(asn: u32, contact: &str) -> IrrRegistry {
        let mut db = IrrDatabase::new("RIPE", Some(manrs_net::Rir::RipeNcc));
        db.add_aut_num(AutNum {
            asn: Asn(asn),
            as_name: "TEST".into(),
            mnt_by: "M".into(),
            source: "RIPE".into(),
            admin_c: contact.into(),
        });
        let mut reg = IrrRegistry::new();
        reg.add_database(db);
        reg
    }

    fn pdb(asn: u32, contact: &str, updated: Date) -> PeeringDb {
        let mut db = PeeringDb::new();
        db.upsert(PeeringDbRecord { asn: Asn(asn), contact: contact.into(), updated });
        db
    }

    #[test]
    fn irr_contact_conforms() {
        let date = Date::ymd(2022, 5, 1);
        let v = action3_verdict(
            Asn(1),
            &irr_with_autnum(1, "noc@example.net"),
            &PeeringDb::new(),
            date,
            365,
        );
        assert!(v.conformant);
        assert_eq!(v.source, ContactSource::Irr);
    }

    #[test]
    fn empty_contact_does_not_conform() {
        let date = Date::ymd(2022, 5, 1);
        let v = action3_verdict(Asn(1), &irr_with_autnum(1, "  "), &PeeringDb::new(), date, 365);
        assert!(!v.conformant);
        assert_eq!(v.source, ContactSource::None);
    }

    #[test]
    fn fresh_peeringdb_conforms_stale_does_not() {
        let date = Date::ymd(2022, 5, 1);
        let fresh = pdb(1, "peering@example.net", Date::ymd(2022, 1, 1));
        let v = action3_verdict(Asn(1), &IrrRegistry::new(), &fresh, date, 365);
        assert!(v.conformant);
        assert_eq!(v.source, ContactSource::PeeringDb);
        let stale = pdb(1, "peering@example.net", Date::ymd(2018, 1, 1));
        let v = action3_verdict(Asn(1), &IrrRegistry::new(), &stale, date, 365);
        assert!(!v.conformant);
    }

    #[test]
    fn both_sources() {
        let date = Date::ymd(2022, 5, 1);
        let v = action3_verdict(
            Asn(1),
            &irr_with_autnum(1, "noc@example.net"),
            &pdb(1, "peering@example.net", Date::ymd(2022, 3, 1)),
            date,
            365,
        );
        assert_eq!(v.source, ContactSource::Both);
    }

    #[test]
    fn summary_counts() {
        let date = Date::ymd(2022, 5, 1);
        let irr = irr_with_autnum(1, "noc@example.net");
        let peeringdb = pdb(2, "x@example.net", Date::ymd(2022, 4, 1));
        let asns = [Asn(1), Asn(2), Asn(3)];
        let s = action3_summary(asns.iter(), &irr, &peeringdb, date, 365);
        assert_eq!(s.total, 3);
        assert_eq!(s.conformant, 2);
        assert_eq!(s.irr_only, 1);
        assert_eq!(s.peeringdb_only, 1);
        assert_eq!(s.both, 0);
    }
}
