//! Small statistics toolkit: empirical CDFs and summary helpers.
//!
//! Every figure in §8–§9 is a CDF of a per-AS percentage; [`Ecdf`] is the
//! common representation the bench harness prints.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution over f64 samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples (NaNs are rejected).
    ///
    /// # Panics
    /// Panics if any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(samples.iter().all(|x| !x.is_nan()), "NaN sample");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x` (0 for an empty distribution).
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples strictly greater than `x`.
    pub fn fraction_above(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        1.0 - self.fraction_at_most(x)
    }

    /// The `q`-quantile for `q` in [0, 1] (nearest-rank); `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// The median, `None` when empty.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Population variance, `None` when empty (the §9.2 comparison of
    /// large-network IRR invalidity uses variance).
    pub fn variance(&self) -> Option<f64> {
        let mean = self.mean()?;
        Some(
            self.sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
                / self.sorted.len() as f64,
        )
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// (x, F(x)) pairs suitable for plotting or printing as a series.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, x)| (*x, (i + 1) as f64 / n as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_distribution() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.fraction_at_most(1.0), 0.0);
        assert_eq!(e.fraction_above(1.0), 0.0);
        assert!(e.median().is_none());
        assert!(e.mean().is_none());
        assert!(e.variance().is_none());
    }

    #[test]
    fn fractions() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.fraction_at_most(0.5), 0.0);
        assert_eq!(e.fraction_at_most(2.0), 0.5);
        assert_eq!(e.fraction_at_most(10.0), 1.0);
        assert_eq!(e.fraction_above(2.0), 0.5);
        assert_eq!(e.fraction_above(4.0), 0.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 5.0, 4.0]);
        assert_eq!(e.median(), Some(3.0));
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(5.0));
        assert_eq!(e.quantile(0.2), Some(1.0));
        assert_eq!(e.quantile(0.21), Some(2.0));
        assert_eq!(e.min(), Some(1.0));
        assert_eq!(e.max(), Some(5.0));
    }

    #[test]
    fn mean_and_variance() {
        let e = Ecdf::new(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(e.mean(), Some(5.0));
        assert_eq!(e.variance(), Some(4.0));
    }

    #[test]
    fn points_are_monotone() {
        let e = Ecdf::new(vec![0.5, 0.1, 0.9]);
        let pts = e.points();
        assert_eq!(pts.len(), 3);
        assert!((pts[2].1 - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Ecdf::new(vec![f64::NAN]);
    }
}
