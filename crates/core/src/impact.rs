//! MANRS impact on the broader ecosystem (§6.5, §8.6, §9.4).
//!
//! * **RPKI saturation** (Eq. 7–8): the fraction of a group's routed
//!   IPv4 address space covered by VRPs, compared between MANRS and
//!   non-MANRS origins over time (Fig. 6).
//! * **MANRS preference score** (Eq. 9): for each prefix-origin, the sum
//!   of MANRS transit hegemonies minus the sum of non-MANRS transit
//!   hegemonies. If MANRS networks filter better, RPKI-Invalid
//!   announcements shift toward negative scores (Fig. 9).

use manrs_ihr::IhrSnapshot;
use manrs_net::{AddressSpace, Asn, Date, Prefix};
use manrs_rpki::{RpkiStatus, VrpSet};
use manrs_topology::Prefix2As;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One point of the Fig. 6 saturation series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaturationPoint {
    /// Snapshot date.
    pub date: Date,
    /// Eq. 7: % of MANRS routed space covered by ROAs.
    pub manrs_pct: f64,
    /// Eq. 8: % of non-MANRS routed space covered by ROAs.
    pub non_manrs_pct: f64,
}

/// Computes RPKI saturation for one snapshot: the routed space of
/// members vs non-members, each intersected with the VRP-covered space.
pub fn rpki_saturation(
    table: &Prefix2As,
    members: &BTreeSet<Asn>,
    vrps: &VrpSet,
    date: Date,
) -> SaturationPoint {
    let covered = vrps.covered_space();
    let mut manrs_space = AddressSpace::new();
    let mut other_space = AddressSpace::new();
    for (prefix, origin) in table.entries() {
        if members.contains(origin) {
            manrs_space.add(prefix);
        } else {
            other_space.add(prefix);
        }
    }
    SaturationPoint {
        date,
        manrs_pct: manrs_space.v4_covered_fraction(&covered) * 100.0,
        non_manrs_pct: other_space.v4_covered_fraction(&covered) * 100.0,
    }
}

/// Eq. 9 output for one prefix-origin pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreferenceScore {
    /// The prefix.
    pub prefix: Prefix,
    /// The origin.
    pub origin: Asn,
    /// RPKI status of the pair (the Fig. 9 grouping key).
    pub rpki: RpkiStatus,
    /// Σ hegemony over MANRS transits − Σ hegemony over non-MANRS
    /// transits.
    pub score: f64,
}

/// Computes MANRS preference scores for every prefix-origin with at
/// least one transit row.
pub fn preference_scores(
    snapshot: &IhrSnapshot,
    members: &BTreeSet<Asn>,
) -> Vec<PreferenceScore> {
    let mut acc: BTreeMap<(Prefix, Asn), (RpkiStatus, f64)> = BTreeMap::new();
    for t in &snapshot.transits {
        let entry = acc.entry((t.prefix, t.origin)).or_insert((t.rpki, 0.0));
        if members.contains(&t.transit) {
            entry.1 += t.hegemony;
        } else {
            entry.1 -= t.hegemony;
        }
    }
    acc.into_iter()
        .map(|((prefix, origin), (rpki, score))| PreferenceScore {
            prefix,
            origin,
            rpki,
            score,
        })
        .collect()
}

/// Fraction of scores strictly greater than zero, the Fig. 9 headline
/// statistic ("34% of RPKI Valid pairs preferred MANRS transit").
pub fn fraction_preferring_manrs(scores: &[PreferenceScore]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().filter(|s| s.score > 0.0).count() as f64 / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_ihr::TransitRecord;
    use manrs_irr::IrrStatus;
    use manrs_rpki::Vrp;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn saturation_splits_groups() {
        let mut table = Prefix2As::new();
        table.add(p("10.0.0.0/16"), Asn(1)); // member, covered
        table.add(p("10.1.0.0/16"), Asn(1)); // member, uncovered
        table.add(p("10.2.0.0/16"), Asn(2)); // non-member, uncovered
        table.add(p("10.3.0.0/16"), Asn(2)); // non-member, covered
        let vrps: VrpSet = [
            Vrp::new(p("10.0.0.0/16"), Asn(1), 16),
            Vrp::new(p("10.3.0.0/16"), Asn(2), 16),
        ]
        .into_iter()
        .collect();
        let members: BTreeSet<Asn> = [Asn(1)].into();
        let sat = rpki_saturation(&table, &members, &vrps, Date::ymd(2022, 5, 1));
        assert!((sat.manrs_pct - 50.0).abs() < 1e-9);
        assert!((sat.non_manrs_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_counts_cover_regardless_of_vrp_origin() {
        // Coverage is address-space coverage: a VRP for someone else
        // still covers the space (the announcement would be Invalid, but
        // the space is signed).
        let mut table = Prefix2As::new();
        table.add(p("10.0.0.0/16"), Asn(1));
        let vrps: VrpSet = [Vrp::new(p("10.0.0.0/16"), Asn(9), 16)].into_iter().collect();
        let sat = rpki_saturation(&table, &BTreeSet::new(), &vrps, Date::ymd(2022, 5, 1));
        assert!((sat.non_manrs_pct - 100.0).abs() < 1e-9);
        assert_eq!(sat.manrs_pct, 0.0); // no member space at all
    }

    fn transit(
        prefix: &str,
        origin: u32,
        transit: u32,
        hegemony: f64,
        rpki: RpkiStatus,
    ) -> TransitRecord {
        TransitRecord {
            prefix: p(prefix),
            origin: Asn(origin),
            transit: Asn(transit),
            rpki,
            irr: IrrStatus::NotFound,
            hegemony,
            from_customer: false,
        }
    }

    #[test]
    fn preference_score_signs() {
        let snapshot = IhrSnapshot {
            prefix_origins: vec![],
            transits: vec![
                transit("10.0.0.0/16", 9, 1, 0.8, RpkiStatus::Valid),
                transit("10.0.0.0/16", 9, 2, 0.3, RpkiStatus::Valid),
                transit("10.1.0.0/16", 9, 2, 0.9, RpkiStatus::InvalidAsn),
            ],
        };
        let members: BTreeSet<Asn> = [Asn(1)].into();
        let scores = preference_scores(&snapshot, &members);
        assert_eq!(scores.len(), 2);
        let valid = scores.iter().find(|s| s.rpki == RpkiStatus::Valid).unwrap();
        assert!((valid.score - 0.5).abs() < 1e-12); // 0.8 − 0.3
        let invalid = scores.iter().find(|s| s.rpki == RpkiStatus::InvalidAsn).unwrap();
        assert!((invalid.score + 0.9).abs() < 1e-12); // −0.9
    }

    #[test]
    fn fraction_preferring() {
        let mk = |score| PreferenceScore {
            prefix: p("10.0.0.0/16"),
            origin: Asn(1),
            rpki: RpkiStatus::Valid,
            score,
        };
        let scores = vec![mk(0.5), mk(-0.1), mk(0.0), mk(1.0)];
        assert!((fraction_preferring_manrs(&scores) - 0.5).abs() < 1e-12);
        assert_eq!(fraction_preferring_manrs(&[]), 0.0);
    }
}
