//! Case-study attribution of unconformant prefix-origins (§8.4, Table 1).
//!
//! For each unconformant (prefix, origin) pair of an organization's ASes,
//! the paper asks *who the registries say should be announcing it*: the
//! mismatching origin in covering VRPs / route objects. If that
//! registered origin is a sibling (same organization) or has a
//! customer-provider relationship with the BGP origin, the unconformance
//! is "likely internal misconfiguration or business dynamics, easily
//! corrected"; otherwise it is unrelated.

use crate::action4::is_unconformant_pair;
use manrs_ihr::PrefixOriginRecord;
use manrs_irr::IrrRegistry;
use manrs_net::Asn;
use manrs_rpki::VrpSet;
use manrs_topology::{AsTopology, OrgDirectory};
use serde::{Deserialize, Serialize};

/// How an unconformant pair relates to the registered origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MismatchAttribution {
    /// The mismatching registered origin is a sibling AS or has a
    /// customer-provider relationship with the BGP origin.
    SiblingOrCustomerProvider,
    /// No relationship found.
    Unrelated,
}

/// One organization's row of Table 1.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseStudyRow {
    /// RPKI-Invalid prefix-origins.
    pub rpki_invalid: usize,
    /// Of those, attributed Sibling/C-P.
    pub rpki_sibling_cp: usize,
    /// Of those, unrelated.
    pub rpki_unrelated: usize,
    /// IRR-Invalid (and RPKI-NotFound) prefix-origins.
    pub irr_invalid: usize,
    /// Of those, attributed Sibling/C-P.
    pub irr_sibling_cp: usize,
    /// Of those, unrelated.
    pub irr_unrelated: usize,
}

impl CaseStudyRow {
    /// Total unconformant pairs captured by the row.
    pub fn total(&self) -> usize {
        self.rpki_invalid + self.irr_invalid
    }
}

/// Attributes one unconformant pair given the registered origins that
/// mismatch it.
fn attribute(
    bgp_origin: Asn,
    registered_origins: &[Asn],
    orgs: &OrgDirectory,
    topology: &AsTopology,
) -> MismatchAttribution {
    let related = registered_origins.iter().any(|reg| {
        *reg != bgp_origin
            && (orgs.are_siblings(bgp_origin, *reg)
                || topology.has_customer_provider_link(bgp_origin, *reg))
    });
    if related {
        MismatchAttribution::SiblingOrCustomerProvider
    } else {
        MismatchAttribution::Unrelated
    }
}

/// Builds one organization's Table 1 row from its ASes' unconformant
/// prefix-origins.
///
/// `prefix_origins` should be the IHR prefix-origin rows of the
/// organization's ASes (the caller filters); conformant rows are
/// ignored. Pairs that are RPKI Invalid go in the RPKI columns; pairs
/// that are RPKI NotFound with IRR Invalid go in the IRR columns
/// (mirroring the paper's Table 1, whose IRR column holds RPKI-NotFound
/// pairs only).
pub fn attribute_mismatches(
    prefix_origins: &[&PrefixOriginRecord],
    vrps: &VrpSet,
    irr: &IrrRegistry,
    orgs: &OrgDirectory,
    topology: &AsTopology,
) -> CaseStudyRow {
    let mut row = CaseStudyRow::default();
    for po in prefix_origins {
        if !is_unconformant_pair(po.rpki, po.irr) {
            continue;
        }
        if po.rpki.is_invalid() {
            // Mismatching origins: ASNs of covering VRPs.
            let registered: Vec<Asn> = vrps
                .covering(&po.prefix)
                .iter()
                .map(|v| v.asn)
                .collect();
            row.rpki_invalid += 1;
            match attribute(po.origin, &registered, orgs, topology) {
                MismatchAttribution::SiblingOrCustomerProvider => row.rpki_sibling_cp += 1,
                MismatchAttribution::Unrelated => row.rpki_unrelated += 1,
            }
        } else {
            // RPKI NotFound, IRR Invalid: mismatching origins come from
            // covering route objects.
            let registered: Vec<Asn> = irr
                .covering_routes(&po.prefix)
                .iter()
                .map(|r| r.origin)
                .collect();
            row.irr_invalid += 1;
            match attribute(po.origin, &registered, orgs, topology) {
                MismatchAttribution::SiblingOrCustomerProvider => row.irr_sibling_cp += 1,
                MismatchAttribution::Unrelated => row.irr_unrelated += 1,
            }
        }
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_irr::{IrrDatabase, IrrStatus, RouteObject};
    use manrs_net::{Date, Prefix, Rir};
    use manrs_rpki::{RpkiStatus, Vrp};
    use manrs_topology::{AsInfo, NetworkKind, Organization, OrgId};

    fn world() -> (OrgDirectory, AsTopology) {
        let mut orgs = OrgDirectory::new();
        orgs.add_org(Organization {
            id: OrgId(1),
            name: "Org1".into(),
            country: "US".into(),
            rir: Rir::Arin,
        });
        orgs.add_org(Organization {
            id: OrgId(2),
            name: "Org2".into(),
            country: "US".into(),
            rir: Rir::Arin,
        });
        let mut topology = AsTopology::new();
        for (asn, org) in [(1u32, 1u32), (2, 1), (3, 2), (4, 2)] {
            orgs.assign(Asn(asn), OrgId(org));
            topology.add_as(AsInfo {
                asn: Asn(asn),
                org: OrgId(org),
                rir: Rir::Arin,
                country: "US".into(),
                kind: NetworkKind::Stub,
            });
        }
        // AS3 provides transit to AS1 (C-P relationship across orgs).
        topology.add_provider_customer(Asn(3), Asn(1));
        (orgs, topology)
    }

    fn po(prefix: &str, origin: u32, rpki: RpkiStatus, irr: IrrStatus) -> PrefixOriginRecord {
        PrefixOriginRecord {
            prefix: prefix.parse::<Prefix>().unwrap(),
            origin: Asn(origin),
            rpki,
            irr,
            viewpoints: 1,
        }
    }

    fn irr_with(entries: &[(&str, u32)]) -> IrrRegistry {
        let mut db = IrrDatabase::new("RADB", None);
        for (p, o) in entries {
            db.add_route(RouteObject {
                prefix: p.parse().unwrap(),
                origin: Asn(*o),
                descr: String::new(),
                mnt_by: "M".into(),
                source: "RADB".into(),
                last_modified: Date::ymd(2022, 1, 1),
            });
        }
        let mut reg = IrrRegistry::new();
        reg.add_database(db);
        reg
    }

    #[test]
    fn sibling_attribution() {
        let (orgs, topology) = world();
        // AS1 announces, but the ROA names sibling AS2.
        let vrps: VrpSet = [Vrp::new("10.0.0.0/16".parse().unwrap(), Asn(2), 16)]
            .into_iter()
            .collect();
        let rows = [po("10.0.0.0/16", 1, RpkiStatus::InvalidAsn, IrrStatus::NotFound)];
        let refs: Vec<&PrefixOriginRecord> = rows.iter().collect();
        let row =
            attribute_mismatches(&refs, &vrps, &IrrRegistry::new(), &orgs, &topology);
        assert_eq!(row.rpki_invalid, 1);
        assert_eq!(row.rpki_sibling_cp, 1);
        assert_eq!(row.rpki_unrelated, 0);
        assert_eq!(row.total(), 1);
    }

    #[test]
    fn customer_provider_attribution() {
        let (orgs, topology) = world();
        // AS1 announces; the route object names AS3 (AS1's provider,
        // different org).
        let irr = irr_with(&[("10.0.0.0/16", 3)]);
        let rows = [po("10.0.0.0/16", 1, RpkiStatus::NotFound, IrrStatus::InvalidAsn)];
        let refs: Vec<&PrefixOriginRecord> = rows.iter().collect();
        let row = attribute_mismatches(&refs, &VrpSet::new(), &irr, &orgs, &topology);
        assert_eq!(row.irr_invalid, 1);
        assert_eq!(row.irr_sibling_cp, 1);
    }

    #[test]
    fn unrelated_attribution() {
        let (orgs, topology) = world();
        // AS1 announces; registered origin is AS4 (different org, no
        // relationship).
        let irr = irr_with(&[("10.0.0.0/16", 4)]);
        let rows = [po("10.0.0.0/16", 1, RpkiStatus::NotFound, IrrStatus::InvalidAsn)];
        let refs: Vec<&PrefixOriginRecord> = rows.iter().collect();
        let row = attribute_mismatches(&refs, &VrpSet::new(), &irr, &orgs, &topology);
        assert_eq!(row.irr_unrelated, 1);
        assert_eq!(row.irr_sibling_cp, 0);
    }

    #[test]
    fn conformant_rows_ignored() {
        let (orgs, topology) = world();
        let rows = [
            po("10.0.0.0/16", 1, RpkiStatus::Valid, IrrStatus::Valid),
            po("10.1.0.0/16", 1, RpkiStatus::NotFound, IrrStatus::NotFound),
            po("10.2.0.0/16", 1, RpkiStatus::NotFound, IrrStatus::InvalidLength),
        ];
        let refs: Vec<&PrefixOriginRecord> = rows.iter().collect();
        let row = attribute_mismatches(
            &refs,
            &VrpSet::new(),
            &IrrRegistry::new(),
            &orgs,
            &topology,
        );
        assert_eq!(row.total(), 0);
    }

    #[test]
    fn rpki_invalid_and_irr_invalid_split_into_columns() {
        let (orgs, topology) = world();
        let vrps: VrpSet = [Vrp::new("10.0.0.0/16".parse().unwrap(), Asn(2), 16)]
            .into_iter()
            .collect();
        let irr = irr_with(&[("10.1.0.0/16", 4)]);
        let rows = [
            po("10.0.0.0/16", 1, RpkiStatus::InvalidAsn, IrrStatus::NotFound),
            po("10.1.0.0/16", 1, RpkiStatus::NotFound, IrrStatus::InvalidAsn),
        ];
        let refs: Vec<&PrefixOriginRecord> = rows.iter().collect();
        let row = attribute_mismatches(&refs, &vrps, &irr, &orgs, &topology);
        assert_eq!(row.rpki_invalid, 1);
        assert_eq!(row.irr_invalid, 1);
        assert_eq!(row.rpki_sibling_cp, 1);
        assert_eq!(row.irr_unrelated, 1);
    }
}
