//! Conformance stability over time (§8.5).
//!
//! The paper takes 12 weekly IHR snapshots (February–May 2022) and asks
//! whether each MANRS AS's Action 4 verdict is stable: most ASes stay
//! conformant or unconformant throughout, a few fluctuate.

use crate::action4::{action4_verdict, compute_action4, Action4Verdict, ConformanceThreshold};
use manrs_ihr::IhrSnapshot;
use manrs_net::Asn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An AS's stability classification over a snapshot series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StabilityClass {
    /// Conformant (including trivially) in every snapshot.
    AlwaysConformant,
    /// Unconformant in every snapshot.
    AlwaysUnconformant,
    /// Both verdicts appear across the series.
    Fluctuating,
}

/// One AS's verdict sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConformanceHistory {
    /// The AS.
    pub asn: Asn,
    /// The verdict at each snapshot, in series order.
    pub verdicts: Vec<Action4Verdict>,
}

impl ConformanceHistory {
    /// Classifies the sequence.
    pub fn class(&self) -> StabilityClass {
        let any_unconformant = self
            .verdicts
            .iter()
            .any(|v| !v.is_conformant());
        let any_conformant = self.verdicts.iter().any(|v| v.is_conformant());
        match (any_conformant, any_unconformant) {
            (_, false) => StabilityClass::AlwaysConformant,
            (false, true) => StabilityClass::AlwaysUnconformant,
            (true, true) => StabilityClass::Fluctuating,
        }
    }

    /// Number of snapshots in which the AS was unconformant.
    pub fn unconformant_count(&self) -> usize {
        self.verdicts.iter().filter(|v| !v.is_conformant()).count()
    }
}

/// Computes conformance histories for `asns` across a snapshot series.
pub fn conformance_histories(
    snapshots: &[IhrSnapshot],
    asns: &[Asn],
    threshold: ConformanceThreshold,
) -> Vec<ConformanceHistory> {
    let per_snapshot: Vec<_> = snapshots.iter().map(compute_action4).collect();
    asns.iter()
        .map(|asn| ConformanceHistory {
            asn: *asn,
            verdicts: per_snapshot
                .iter()
                .map(|metrics| action4_verdict(metrics.get(asn), threshold))
                .collect(),
        })
        .collect()
}

/// Counts histories per stability class.
pub fn stability_summary(
    histories: &[ConformanceHistory],
) -> BTreeMap<StabilityClass, usize> {
    let mut counts = BTreeMap::new();
    for h in histories {
        *counts.entry(h.class()).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_ihr::PrefixOriginRecord;
    use manrs_irr::IrrStatus;
    use manrs_rpki::RpkiStatus;

    fn snapshot(origin_status: &[(u32, RpkiStatus)]) -> IhrSnapshot {
        IhrSnapshot {
            prefix_origins: origin_status
                .iter()
                .enumerate()
                .map(|(i, (origin, rpki))| PrefixOriginRecord {
                    prefix: format!("10.{i}.0.0/16").parse().unwrap(),
                    origin: Asn(*origin),
                    rpki: *rpki,
                    irr: IrrStatus::NotFound,
                    viewpoints: 1,
                })
                .collect(),
            transits: vec![],
        }
    }

    #[test]
    fn always_conformant() {
        let snaps = vec![
            snapshot(&[(1, RpkiStatus::Valid)]),
            snapshot(&[(1, RpkiStatus::Valid)]),
        ];
        let hist = conformance_histories(&snaps, &[Asn(1)], ConformanceThreshold::Cdn);
        assert_eq!(hist[0].class(), StabilityClass::AlwaysConformant);
        assert_eq!(hist[0].unconformant_count(), 0);
    }

    #[test]
    fn always_unconformant() {
        let snaps = vec![
            snapshot(&[(1, RpkiStatus::NotFound)]),
            snapshot(&[(1, RpkiStatus::NotFound)]),
        ];
        let hist = conformance_histories(&snaps, &[Asn(1)], ConformanceThreshold::Cdn);
        assert_eq!(hist[0].class(), StabilityClass::AlwaysUnconformant);
        assert_eq!(hist[0].unconformant_count(), 2);
    }

    #[test]
    fn fluctuating() {
        let snaps = vec![
            snapshot(&[(1, RpkiStatus::Valid)]),
            snapshot(&[(1, RpkiStatus::NotFound)]),
            snapshot(&[(1, RpkiStatus::Valid)]),
        ];
        let hist = conformance_histories(&snaps, &[Asn(1)], ConformanceThreshold::Cdn);
        assert_eq!(hist[0].class(), StabilityClass::Fluctuating);
        assert_eq!(hist[0].unconformant_count(), 1);
    }

    #[test]
    fn absent_as_is_trivially_conformant_throughout() {
        let snaps = vec![snapshot(&[(1, RpkiStatus::Valid)]); 3];
        let hist = conformance_histories(&snaps, &[Asn(42)], ConformanceThreshold::Cdn);
        assert_eq!(hist[0].class(), StabilityClass::AlwaysConformant);
    }

    #[test]
    fn summary_counts() {
        let snaps = vec![
            snapshot(&[(1, RpkiStatus::Valid), (2, RpkiStatus::NotFound)]),
            snapshot(&[(1, RpkiStatus::NotFound), (2, RpkiStatus::NotFound)]),
        ];
        let hist = conformance_histories(&snaps, &[Asn(1), Asn(2)], ConformanceThreshold::Cdn);
        let summary = stability_summary(&hist);
        assert_eq!(summary[&StabilityClass::Fluctuating], 1);
        assert_eq!(summary[&StabilityClass::AlwaysUnconformant], 1);
    }
}
