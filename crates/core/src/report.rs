//! Actionable per-member conformance reports.
//!
//! ISOC sends MANRS members a private monthly conformance report; the
//! operators the paper surveyed either did not know it existed or
//! "needed more actionable information" (§10). This module generates
//! the report the paper wishes existed: per-prefix findings with
//! concrete remediation, plus the Action 1 evidence (which customer
//! announcements were propagated while unconformant).

use crate::action1::{action1_verdict, Action1Metrics, Action1Verdict};
use crate::action3::Action3Verdict;
use crate::action4::{action4_verdict, Action4Metrics, Action4Verdict, ConformanceThreshold};
use manrs_ihr::IhrSnapshot;
use manrs_irr::IrrStatus;
use manrs_net::{Asn, Date, Prefix};
use manrs_rpki::RpkiStatus;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One problematic prefix with remediation guidance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// The prefix at issue.
    pub prefix: Prefix,
    /// Its RPKI status.
    pub rpki: RpkiStatus,
    /// Its IRR status.
    pub irr: IrrStatus,
    /// What to do about it.
    pub remediation: String,
}

/// Remediation text for a (rpki, irr) status pair.
pub fn remediation_for(rpki: RpkiStatus, irr: IrrStatus) -> String {
    match (rpki, irr) {
        (RpkiStatus::Valid, _) => "no action needed".into(),
        // RPKI problems first: an Invalid announcement is dropped by
        // ROV deployers regardless of its IRR state.
        (RpkiStatus::InvalidAsn, _) => {
            "a covering ROA names a different origin: correct the ROA or stop \
             announcing from this AS"
                .into()
        }
        (RpkiStatus::InvalidLength, _) => {
            "announcement exceeds the ROA's maxLength: raise maxLength or stop \
             de-aggregating"
                .into()
        }
        (RpkiStatus::NotFound, IrrStatus::Valid) => {
            "covered by IRR only: create a ROA to gain ROV protection".into()
        }
        (RpkiStatus::NotFound, IrrStatus::InvalidLength) => {
            "announcement is more specific than the registered route: acceptable \
             for MANRS, but register the specifics if they are long-lived"
                .into()
        }
        (RpkiStatus::NotFound, IrrStatus::InvalidAsn) => {
            "a covering route object names a different origin: update or delete \
             the stale object"
                .into()
        }
        (RpkiStatus::NotFound, IrrStatus::NotFound) => {
            "no registration anywhere: create a route object and a ROA".into()
        }
    }
}

/// A member's monthly report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberReport {
    /// The member AS.
    pub asn: Asn,
    /// Report date.
    pub date: Date,
    /// Action 4 verdict at the given threshold.
    pub action4: Action4Verdict,
    /// The member's origination metrics (absent if it originates
    /// nothing).
    pub action4_metrics: Option<Action4Metrics>,
    /// Per-prefix findings needing attention (unconformant or
    /// improvable), worst first.
    pub findings: Vec<Finding>,
    /// Action 1 verdict.
    pub action1: Action1Verdict,
    /// The member's propagation metrics (absent if it provides no
    /// transit).
    pub action1_metrics: Option<Action1Metrics>,
    /// Unconformant customer announcements this AS propagated:
    /// (prefix, customer origin).
    pub leaked_customer_routes: Vec<(Prefix, Asn)>,
    /// Action 3 verdict, when contact data was checked.
    pub action3: Option<Action3Verdict>,
}

impl MemberReport {
    /// Builds the report for `asn` from an IHR snapshot.
    pub fn build(
        asn: Asn,
        date: Date,
        snapshot: &IhrSnapshot,
        threshold: ConformanceThreshold,
        action3: Option<Action3Verdict>,
    ) -> Self {
        let a4 = crate::action4::compute_action4(snapshot);
        let a1 = crate::action1::compute_action1(snapshot);
        let action4_metrics = a4.get(&asn).copied();
        let action1_metrics = a1.get(&asn).copied();

        let mut findings: Vec<Finding> = snapshot
            .prefix_origins
            .iter()
            .filter(|po| po.origin == asn && po.rpki != RpkiStatus::Valid)
            .map(|po| Finding {
                prefix: po.prefix,
                rpki: po.rpki,
                irr: po.irr,
                remediation: remediation_for(po.rpki, po.irr),
            })
            .collect();
        // Worst first: unconformant, then IRR-only, then invalid-length.
        findings.sort_by_key(|f| {
            let severity = if crate::action4::is_unconformant_pair(f.rpki, f.irr) {
                0
            } else if f.irr == IrrStatus::Valid {
                2
            } else {
                1
            };
            (severity, f.prefix)
        });

        let leaked_customer_routes: Vec<(Prefix, Asn)> = snapshot
            .transits
            .iter()
            .filter(|t| {
                t.transit == asn
                    && t.from_customer
                    && crate::action4::is_unconformant_pair(t.rpki, t.irr)
            })
            .map(|t| (t.prefix, t.origin))
            .collect();

        MemberReport {
            asn,
            date,
            action4: action4_verdict(action4_metrics.as_ref(), threshold),
            action4_metrics,
            findings,
            action1: action1_verdict(action1_metrics.as_ref()),
            action1_metrics,
            leaked_customer_routes,
            action3,
        }
    }

    /// Renders the report as operator-facing text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "MANRS conformance report for {} — {}", self.asn, self.date);
        let _ = writeln!(out, "Action 4 (register your announcements): {:?}", self.action4);
        if let Some(m) = &self.action4_metrics {
            let _ = writeln!(
                out,
                "  {} announced prefixes, {:.1}% conformant ({:.1}% RPKI-valid, {:.1}% IRR-valid)",
                m.originated,
                m.og_conformant_pct(),
                m.og_rpki_valid_pct(),
                m.og_irr_valid_pct()
            );
        }
        if self.findings.is_empty() {
            let _ = writeln!(out, "  nothing needs attention");
        } else {
            let _ = writeln!(out, "  prefixes needing attention:");
            for f in &self.findings {
                let _ = writeln!(
                    out,
                    "    {} [RPKI {}, IRR {}]: {}",
                    f.prefix, f.rpki, f.irr, f.remediation
                );
            }
        }
        let _ = writeln!(out, "Action 1 (filter your customers): {:?}", self.action1);
        if self.leaked_customer_routes.is_empty() {
            let _ = writeln!(out, "  no unconformant customer announcements propagated");
        } else {
            let _ = writeln!(out, "  unconformant customer announcements you propagated:");
            for (prefix, origin) in &self.leaked_customer_routes {
                let _ = writeln!(out, "    {prefix} announced by customer-side {origin}");
            }
        }
        if let Some(a3) = &self.action3 {
            let _ = writeln!(
                out,
                "Action 3 (publish contact info): {} (source: {:?})",
                if a3.conformant { "OK" } else { "MISSING" },
                a3.source
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_ihr::{PrefixOriginRecord, TransitRecord};

    fn snapshot() -> IhrSnapshot {
        IhrSnapshot {
            prefix_origins: vec![
                PrefixOriginRecord {
                    prefix: "10.0.0.0/16".parse().unwrap(),
                    origin: Asn(1),
                    rpki: RpkiStatus::Valid,
                    irr: IrrStatus::Valid,
                    viewpoints: 3,
                },
                PrefixOriginRecord {
                    prefix: "10.1.0.0/16".parse().unwrap(),
                    origin: Asn(1),
                    rpki: RpkiStatus::NotFound,
                    irr: IrrStatus::InvalidAsn,
                    viewpoints: 3,
                },
                PrefixOriginRecord {
                    prefix: "10.2.0.0/16".parse().unwrap(),
                    origin: Asn(1),
                    rpki: RpkiStatus::NotFound,
                    irr: IrrStatus::Valid,
                    viewpoints: 3,
                },
            ],
            transits: vec![TransitRecord {
                prefix: "10.9.0.0/16".parse().unwrap(),
                origin: Asn(7),
                transit: Asn(1),
                rpki: RpkiStatus::InvalidAsn,
                irr: IrrStatus::NotFound,
                hegemony: 0.4,
                from_customer: true,
            }],
        }
    }

    #[test]
    fn report_collects_findings_worst_first() {
        let r = MemberReport::build(
            Asn(1),
            Date::ymd(2022, 5, 1),
            &snapshot(),
            ConformanceThreshold::Isp,
            None,
        );
        assert_eq!(r.findings.len(), 2);
        // The unconformant one first.
        assert_eq!(r.findings[0].prefix, "10.1.0.0/16".parse().unwrap());
        assert!(r.findings[0].remediation.contains("stale object"));
        assert!(r.findings[1].remediation.contains("create a ROA"));
        assert_eq!(r.action4, Action4Verdict::Unconformant); // 2/3 < 90%
    }

    #[test]
    fn report_captures_customer_leaks() {
        let r = MemberReport::build(
            Asn(1),
            Date::ymd(2022, 5, 1),
            &snapshot(),
            ConformanceThreshold::Isp,
            None,
        );
        assert_eq!(r.action1, Action1Verdict::Unconformant);
        assert_eq!(r.leaked_customer_routes, vec![("10.9.0.0/16".parse().unwrap(), Asn(7))]);
    }

    #[test]
    fn report_for_quiet_as_is_trivial() {
        let r = MemberReport::build(
            Asn(42),
            Date::ymd(2022, 5, 1),
            &snapshot(),
            ConformanceThreshold::Cdn,
            None,
        );
        assert_eq!(r.action4, Action4Verdict::TriviallyConformant);
        assert_eq!(r.action1, Action1Verdict::TriviallyConformant);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn render_is_complete() {
        let r = MemberReport::build(
            Asn(1),
            Date::ymd(2022, 5, 1),
            &snapshot(),
            ConformanceThreshold::Isp,
            Some(Action3Verdict {
                source: crate::action3::ContactSource::Irr,
                conformant: true,
            }),
        );
        let text = r.render();
        assert!(text.contains("Action 4"));
        assert!(text.contains("Action 1"));
        assert!(text.contains("Action 3"));
        assert!(text.contains("10.1.0.0/16"));
        assert!(text.contains("customer-side AS7"));
    }

    #[test]
    fn remediation_covers_all_pairs() {
        for rpki in [
            RpkiStatus::Valid,
            RpkiStatus::InvalidAsn,
            RpkiStatus::InvalidLength,
            RpkiStatus::NotFound,
        ] {
            for irr in [
                IrrStatus::Valid,
                IrrStatus::InvalidAsn,
                IrrStatus::InvalidLength,
                IrrStatus::NotFound,
            ] {
                assert!(!remediation_for(rpki, irr).is_empty());
            }
        }
    }
}
