//! MANRS ecosystem measurement — the paper's contribution.
//!
//! Everything in this crate corresponds to a section of *Mind Your MANRS:
//! Measuring the MANRS Ecosystem* (IMC '22):
//!
//! * [`registry`] — the MANRS membership registry: ISP and CDN programs,
//!   per-organization AS registration (possibly partial), join dates
//!   (§2.4, §5.2).
//! * [`participation`] — who is part of MANRS (§7): growth over time,
//!   per-RIR distribution, routed address-space share, and
//!   organization-level registration completeness (Finding 7.0).
//! * [`action4`] — prefix origination behaviour (§8): Formulas 1–3
//!   (RPKI/IRR origination validity, MANRS conformance per AS) and the
//!   AS-level conformance verdicts with the ISP 90% / CDN 100%
//!   thresholds (§8.3).
//! * [`action3`] — the Action 3 extension (contact information in IRR
//!   aut-nums or PeeringDB) the paper lists as future work (§12).
//! * [`action1`] — route filtering behaviour (§9): Formulas 4–6
//!   (propagated RPKI/IRR invalidity, unconformant customer
//!   announcements) and full-conformance verdicts (§9.3, Table 2).
//! * [`case_study`] — attribution of unconformant prefix-origins to
//!   Sibling / customer-provider / Unrelated mismatching origins
//!   (Table 1, §8.4).
//! * [`stability`] — conformance over a series of snapshots (§8.5).
//! * [`incidents`] — the §12 future-work extension: routing-incident
//!   exposure before vs after joining, and incident containment by
//!   RPKI protection.
//! * [`impact`] — RPKI saturation (Eq. 7–8, §8.6) and the MANRS
//!   preference score over transit hegemonies (Eq. 9, §9.4).
//! * [`report`] — actionable per-member conformance reports (what the
//!   operators surveyed in §10 said the official monthly reports lack).
//! * [`stats`] — the small statistics toolkit (empirical CDFs,
//!   percentiles) the figures are expressed in.

pub mod action1;
pub mod action3;
pub mod action4;
pub mod case_study;
pub mod impact;
pub mod incidents;
pub mod participation;
pub mod registry;
pub mod report;
pub mod stability;
pub mod stats;

pub use action1::{action1_verdict, compute_action1, Action1Metrics, Action1Verdict};
pub use action3::{
    action3_summary, action3_verdict, Action3Summary, Action3Verdict, ContactSource,
    PeeringDb, PeeringDbRecord,
};
pub use action4::{
    action4_verdict, compute_action4, is_conformant_pair, is_unconformant_pair,
    Action4Metrics, Action4Verdict, ConformanceThreshold,
};
pub use case_study::{attribute_mismatches, CaseStudyRow, MismatchAttribution};
pub use incidents::{containment_by_protection, pre_post_exposure, Incident, PrePostExposure};
pub use impact::{
    fraction_preferring_manrs, preference_scores, rpki_saturation, PreferenceScore,
    SaturationPoint,
};
pub use participation::{
    characterize, GrowthPoint, OrgCompleteness, ParticipationAnalysis,
    PopulationProfile, RegistrationCompleteness,
};
pub use registry::{ManrsProgram, ManrsRegistry, MemberRecord};
pub use report::{remediation_for, Finding, MemberReport};
pub use stability::{
    conformance_histories, stability_summary, ConformanceHistory, StabilityClass,
};
pub use stats::Ecdf;
