//! MANRS Action 4: prefix origination behaviour (§6.4, §8).
//!
//! Per AS, over the prefixes it originates (the IHR prefix-origin
//! dataset):
//!
//! * Formula 1 — `OG_rpki_valid` = RPKI-Valid prefixes / originated.
//! * Formula 2 — `OG_irr_valid` = IRR-Valid prefixes / originated.
//! * Formula 3 — `OG_conformant` = MANRS-conformant prefixes /
//!   originated, where a (prefix, origin) is conformant iff RPKI Valid,
//!   or IRR Valid, or IRR Invalid-length (§6.4).
//!
//! AS-level verdicts (§8.3): ISP program members must exceed 90%
//! conformant origination, CDN members 100%; an AS that originates
//! nothing is *trivially conformant*.

use manrs_ihr::IhrSnapshot;
use manrs_irr::IrrStatus;
use manrs_net::Asn;
use manrs_rpki::RpkiStatus;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// MANRS conformance of one (prefix, origin) pair (§6.4).
pub fn is_conformant_pair(rpki: RpkiStatus, irr: IrrStatus) -> bool {
    rpki == RpkiStatus::Valid || matches!(irr, IrrStatus::Valid | IrrStatus::InvalidLength)
}

/// MANRS *un*conformance of one pair (§6.4): RPKI Invalid, or
/// (RPKI NotFound, IRR Invalid).
pub fn is_unconformant_pair(rpki: RpkiStatus, irr: IrrStatus) -> bool {
    rpki.is_invalid() || (rpki == RpkiStatus::NotFound && irr == IrrStatus::InvalidAsn)
}

/// Origination counters for one AS.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action4Metrics {
    /// Total originated (prefix, origin) pairs observed.
    pub originated: usize,
    /// RPKI Valid prefixes.
    pub rpki_valid: usize,
    /// RPKI Invalid (ASN or length).
    pub rpki_invalid: usize,
    /// RPKI NotFound.
    pub rpki_not_found: usize,
    /// IRR Valid prefixes.
    pub irr_valid: usize,
    /// IRR Invalid-length prefixes (conformant for MANRS purposes).
    pub irr_invalid_length: usize,
    /// IRR Invalid (wrong origin).
    pub irr_invalid_asn: usize,
    /// IRR NotFound.
    pub irr_not_found: usize,
    /// MANRS-conformant prefixes (§6.4).
    pub conformant: usize,
}

impl Action4Metrics {
    fn pct(count: usize, total: usize) -> f64 {
        if total == 0 {
            100.0 // vacuous: nothing originated, nothing wrong
        } else {
            count as f64 / total as f64 * 100.0
        }
    }

    /// Formula 1: percentage of originated prefixes that are RPKI Valid.
    pub fn og_rpki_valid_pct(&self) -> f64 {
        Self::pct(self.rpki_valid, self.originated)
    }

    /// Formula 2: percentage of originated prefixes that are IRR Valid.
    pub fn og_irr_valid_pct(&self) -> f64 {
        Self::pct(self.irr_valid, self.originated)
    }

    /// Formula 3: percentage of MANRS-conformant originated prefixes.
    pub fn og_conformant_pct(&self) -> f64 {
        Self::pct(self.conformant, self.originated)
    }

    /// `true` if this AS originated only RPKI Valid prefixes (used by
    /// the §8.1 bimodality counts).
    pub fn only_rpki_valid(&self) -> bool {
        self.originated > 0 && self.rpki_valid == self.originated
    }

    /// `true` if this AS originated no RPKI Valid prefix.
    pub fn no_rpki_valid(&self) -> bool {
        self.originated > 0 && self.rpki_valid == 0
    }

    /// `true` if registered in IRR (some covering object with the right
    /// origin) but with zero RPKI-Valid prefixes — the "IRR only"
    /// population of §8.2.
    pub fn irr_only(&self) -> bool {
        self.originated > 0
            && self.rpki_valid == 0
            && (self.irr_valid + self.irr_invalid_length) > 0
    }
}

/// The conformance threshold an AS is judged against (§8.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConformanceThreshold {
    /// ISP program: at least 90% of originated prefixes conformant.
    Isp,
    /// CDN program: 100%.
    Cdn,
    /// Ablation: any custom minimum percentage.
    Custom(f64),
}

impl ConformanceThreshold {
    /// The minimum conformant percentage required.
    pub fn min_pct(&self) -> f64 {
        match self {
            ConformanceThreshold::Isp => 90.0,
            ConformanceThreshold::Cdn => 100.0,
            ConformanceThreshold::Custom(p) => *p,
        }
    }
}

/// AS-level Action 4 verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action4Verdict {
    /// The AS originated nothing (§8.3 treats these as conformant).
    TriviallyConformant,
    /// Meets the threshold.
    Conformant,
    /// Below the threshold.
    Unconformant,
}

impl Action4Verdict {
    /// `true` for either conformant flavour.
    pub fn is_conformant(&self) -> bool {
        !matches!(self, Action4Verdict::Unconformant)
    }
}

/// Computes per-AS origination metrics from an IHR snapshot.
pub fn compute_action4(snapshot: &IhrSnapshot) -> BTreeMap<Asn, Action4Metrics> {
    let mut map: BTreeMap<Asn, Action4Metrics> = BTreeMap::new();
    for po in &snapshot.prefix_origins {
        let m = map.entry(po.origin).or_default();
        m.originated += 1;
        match po.rpki {
            RpkiStatus::Valid => m.rpki_valid += 1,
            RpkiStatus::InvalidAsn | RpkiStatus::InvalidLength => m.rpki_invalid += 1,
            RpkiStatus::NotFound => m.rpki_not_found += 1,
        }
        match po.irr {
            IrrStatus::Valid => m.irr_valid += 1,
            IrrStatus::InvalidLength => m.irr_invalid_length += 1,
            IrrStatus::InvalidAsn => m.irr_invalid_asn += 1,
            IrrStatus::NotFound => m.irr_not_found += 1,
        }
        if is_conformant_pair(po.rpki, po.irr) {
            m.conformant += 1;
        }
    }
    map
}

/// Judges one AS's metrics against a threshold. ASes absent from the
/// metrics map (originating nothing) are trivially conformant; pass
/// `None`.
pub fn action4_verdict(
    metrics: Option<&Action4Metrics>,
    threshold: ConformanceThreshold,
) -> Action4Verdict {
    match metrics {
        None => Action4Verdict::TriviallyConformant,
        Some(m) if m.originated == 0 => Action4Verdict::TriviallyConformant,
        Some(m) => {
            if m.og_conformant_pct() >= threshold.min_pct() {
                Action4Verdict::Conformant
            } else {
                Action4Verdict::Unconformant
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_ihr::PrefixOriginRecord;
    use manrs_net::Prefix;

    fn po(prefix: &str, origin: u32, rpki: RpkiStatus, irr: IrrStatus) -> PrefixOriginRecord {
        PrefixOriginRecord {
            prefix: prefix.parse::<Prefix>().unwrap(),
            origin: Asn(origin),
            rpki,
            irr,
            viewpoints: 1,
        }
    }

    fn snapshot(rows: Vec<PrefixOriginRecord>) -> IhrSnapshot {
        IhrSnapshot { prefix_origins: rows, transits: vec![] }
    }

    #[test]
    fn pair_conformance_rules() {
        use IrrStatus as I;
        use RpkiStatus as R;
        assert!(is_conformant_pair(R::Valid, I::NotFound));
        assert!(is_conformant_pair(R::NotFound, I::Valid));
        assert!(is_conformant_pair(R::NotFound, I::InvalidLength));
        assert!(!is_conformant_pair(R::NotFound, I::NotFound));
        assert!(!is_conformant_pair(R::InvalidAsn, I::NotFound));
        assert!(is_unconformant_pair(R::InvalidAsn, I::Valid));
        assert!(is_unconformant_pair(R::InvalidLength, I::NotFound));
        assert!(is_unconformant_pair(R::NotFound, I::InvalidAsn));
        assert!(!is_unconformant_pair(R::NotFound, I::NotFound));
        assert!(!is_unconformant_pair(R::Valid, I::InvalidAsn));
    }

    #[test]
    fn formulas_over_mixed_origination() {
        let s = snapshot(vec![
            po("10.0.0.0/16", 1, RpkiStatus::Valid, IrrStatus::Valid),
            po("10.1.0.0/16", 1, RpkiStatus::NotFound, IrrStatus::Valid),
            po("10.2.0.0/16", 1, RpkiStatus::NotFound, IrrStatus::InvalidAsn),
            po("10.3.0.0/16", 1, RpkiStatus::InvalidAsn, IrrStatus::NotFound),
        ]);
        let metrics = compute_action4(&s);
        let m = &metrics[&Asn(1)];
        assert_eq!(m.originated, 4);
        assert_eq!(m.og_rpki_valid_pct(), 25.0);
        assert_eq!(m.og_irr_valid_pct(), 50.0);
        assert_eq!(m.og_conformant_pct(), 50.0);
        assert_eq!(m.rpki_invalid, 1);
        assert_eq!(m.irr_invalid_asn, 1);
    }

    #[test]
    fn verdicts_and_thresholds() {
        // 9 of 10 conformant = 90%: passes ISP, fails CDN.
        let mut rows: Vec<PrefixOriginRecord> = (0..9)
            .map(|i| {
                po(&format!("10.{i}.0.0/16"), 1, RpkiStatus::Valid, IrrStatus::Valid)
            })
            .collect();
        rows.push(po("10.9.0.0/16", 1, RpkiStatus::NotFound, IrrStatus::NotFound));
        let metrics = compute_action4(&snapshot(rows));
        let m = metrics.get(&Asn(1));
        assert_eq!(action4_verdict(m, ConformanceThreshold::Isp), Action4Verdict::Conformant);
        assert_eq!(action4_verdict(m, ConformanceThreshold::Cdn), Action4Verdict::Unconformant);
        assert_eq!(
            action4_verdict(m, ConformanceThreshold::Custom(95.0)),
            Action4Verdict::Unconformant
        );
        assert_eq!(
            action4_verdict(None, ConformanceThreshold::Cdn),
            Action4Verdict::TriviallyConformant
        );
        assert!(Action4Verdict::TriviallyConformant.is_conformant());
        assert!(!Action4Verdict::Unconformant.is_conformant());
    }

    #[test]
    fn bimodality_helpers() {
        let all_valid = compute_action4(&snapshot(vec![
            po("10.0.0.0/16", 1, RpkiStatus::Valid, IrrStatus::NotFound),
        ]));
        assert!(all_valid[&Asn(1)].only_rpki_valid());
        assert!(!all_valid[&Asn(1)].no_rpki_valid());
        assert!(!all_valid[&Asn(1)].irr_only());

        let irr_only = compute_action4(&snapshot(vec![
            po("10.0.0.0/16", 1, RpkiStatus::NotFound, IrrStatus::Valid),
        ]));
        assert!(irr_only[&Asn(1)].irr_only());
        assert!(irr_only[&Asn(1)].no_rpki_valid());
    }

    #[test]
    fn multiple_origins_tracked_separately() {
        let s = snapshot(vec![
            po("10.0.0.0/16", 1, RpkiStatus::Valid, IrrStatus::Valid),
            po("10.1.0.0/16", 2, RpkiStatus::NotFound, IrrStatus::NotFound),
        ]);
        let metrics = compute_action4(&s);
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[&Asn(1)].og_conformant_pct(), 100.0);
        assert_eq!(metrics[&Asn(2)].og_conformant_pct(), 0.0);
    }

    #[test]
    fn empty_metrics_percentages_are_vacuous() {
        let m = Action4Metrics::default();
        assert_eq!(m.og_conformant_pct(), 100.0);
        assert!(!m.only_rpki_valid());
        assert!(!m.irr_only());
    }
}
