//! MANRS Action 1: route filtering behaviour (§6.4, §9).
//!
//! Per AS, over the announcements it *propagated* (the IHR transit
//! dataset):
//!
//! * Formula 4 — `PG_rpki_inv` = (RPKI Invalid + Invalid-length)
//!   propagated prefixes / total propagated.
//! * Formula 5 — `PG_irr_inv` = IRR-Invalid propagated prefixes / total.
//! * Formula 6 — `PG_unc` = MANRS-unconformant prefixes received from
//!   *direct customers* / total propagated customer prefixes.
//!
//! A MANRS AS is fully Action 1 conformant when it propagates zero
//! unconformant customer announcements; ASes providing no transit are
//! trivially conformant (§9.3, Table 2).

use crate::action4::is_unconformant_pair;
use manrs_ihr::IhrSnapshot;
use manrs_irr::IrrStatus;
use manrs_net::Asn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Propagation counters for one AS.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action1Metrics {
    /// Total (prefix, origin) pairs this AS was observed propagating.
    pub propagated: usize,
    /// Of those: RPKI Invalid (ASN or length).
    pub rpki_invalid: usize,
    /// Of those: IRR Invalid (wrong origin).
    pub irr_invalid: usize,
    /// Propagated pairs learned from a direct customer.
    pub customer_propagated: usize,
    /// Customer-learned pairs that are MANRS-unconformant.
    pub customer_unconformant: usize,
}

impl Action1Metrics {
    fn pct(count: usize, total: usize) -> f64 {
        if total == 0 {
            0.0 // nothing propagated, nothing invalid
        } else {
            count as f64 / total as f64 * 100.0
        }
    }

    /// Formula 4: percentage of propagated prefixes that are RPKI
    /// Invalid.
    pub fn pg_rpki_invalid_pct(&self) -> f64 {
        Self::pct(self.rpki_invalid, self.propagated)
    }

    /// Formula 5: percentage of propagated prefixes that are IRR
    /// Invalid.
    pub fn pg_irr_invalid_pct(&self) -> f64 {
        Self::pct(self.irr_invalid, self.propagated)
    }

    /// Formula 6: percentage of unconformant prefixes among those
    /// received from direct customers.
    pub fn pg_unconformant_pct(&self) -> f64 {
        Self::pct(self.customer_unconformant, self.customer_propagated)
    }
}

/// AS-level Action 1 verdict (§9.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action1Verdict {
    /// The AS propagated no announcements at all (no transit role).
    TriviallyConformant,
    /// Propagated announcements, none unconformant from customers.
    Conformant,
    /// Propagated at least one unconformant customer announcement.
    Unconformant,
}

impl Action1Verdict {
    /// `true` for either conformant flavour.
    pub fn is_conformant(&self) -> bool {
        !matches!(self, Action1Verdict::Unconformant)
    }
}

/// Computes per-AS propagation metrics from the IHR transit dataset.
pub fn compute_action1(snapshot: &IhrSnapshot) -> BTreeMap<Asn, Action1Metrics> {
    let mut map: BTreeMap<Asn, Action1Metrics> = BTreeMap::new();
    for t in &snapshot.transits {
        let m = map.entry(t.transit).or_default();
        m.propagated += 1;
        if t.rpki.is_invalid() {
            m.rpki_invalid += 1;
        }
        if t.irr == IrrStatus::InvalidAsn {
            m.irr_invalid += 1;
        }
        if t.from_customer {
            m.customer_propagated += 1;
            if is_unconformant_pair(t.rpki, t.irr) {
                m.customer_unconformant += 1;
            }
        }
    }
    map
}

/// Judges one AS's Action 1 conformance. Pass `None` for ASes that never
/// appear as transits.
pub fn action1_verdict(metrics: Option<&Action1Metrics>) -> Action1Verdict {
    match metrics {
        None => Action1Verdict::TriviallyConformant,
        Some(m) if m.propagated == 0 => Action1Verdict::TriviallyConformant,
        Some(m) => {
            if m.customer_unconformant == 0 {
                Action1Verdict::Conformant
            } else {
                Action1Verdict::Unconformant
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_ihr::TransitRecord;
    use manrs_net::Prefix;
    use manrs_rpki::RpkiStatus;

    fn tr(
        prefix: &str,
        transit: u32,
        rpki: RpkiStatus,
        irr: IrrStatus,
        from_customer: bool,
    ) -> TransitRecord {
        TransitRecord {
            prefix: prefix.parse::<Prefix>().unwrap(),
            origin: Asn(9_999),
            transit: Asn(transit),
            rpki,
            irr,
            hegemony: 0.5,
            from_customer,
        }
    }

    fn snapshot(rows: Vec<TransitRecord>) -> IhrSnapshot {
        IhrSnapshot { prefix_origins: vec![], transits: rows }
    }

    #[test]
    fn formulas_four_and_five() {
        let s = snapshot(vec![
            tr("10.0.0.0/16", 1, RpkiStatus::Valid, IrrStatus::Valid, false),
            tr("10.1.0.0/16", 1, RpkiStatus::InvalidAsn, IrrStatus::NotFound, false),
            tr("10.2.0.0/16", 1, RpkiStatus::InvalidLength, IrrStatus::NotFound, false),
            tr("10.3.0.0/16", 1, RpkiStatus::NotFound, IrrStatus::InvalidAsn, false),
        ]);
        let m = &compute_action1(&s)[&Asn(1)];
        assert_eq!(m.propagated, 4);
        assert_eq!(m.pg_rpki_invalid_pct(), 50.0); // both invalid kinds count
        assert_eq!(m.pg_irr_invalid_pct(), 25.0);
    }

    #[test]
    fn formula_six_customer_scope() {
        let s = snapshot(vec![
            // Unconformant but from a peer: not counted by Formula 6.
            tr("10.0.0.0/16", 1, RpkiStatus::InvalidAsn, IrrStatus::NotFound, false),
            // Unconformant from a customer: counted.
            tr("10.1.0.0/16", 1, RpkiStatus::NotFound, IrrStatus::InvalidAsn, true),
            // Conformant from a customer.
            tr("10.2.0.0/16", 1, RpkiStatus::Valid, IrrStatus::Valid, true),
        ]);
        let m = &compute_action1(&s)[&Asn(1)];
        assert_eq!(m.customer_propagated, 2);
        assert_eq!(m.customer_unconformant, 1);
        assert_eq!(m.pg_unconformant_pct(), 50.0);
    }

    #[test]
    fn verdicts() {
        let clean = snapshot(vec![tr(
            "10.0.0.0/16",
            1,
            RpkiStatus::Valid,
            IrrStatus::Valid,
            true,
        )]);
        let m = compute_action1(&clean);
        assert_eq!(action1_verdict(m.get(&Asn(1))), Action1Verdict::Conformant);
        assert_eq!(action1_verdict(None), Action1Verdict::TriviallyConformant);
        assert!(Action1Verdict::TriviallyConformant.is_conformant());

        let dirty = snapshot(vec![tr(
            "10.0.0.0/16",
            1,
            RpkiStatus::InvalidAsn,
            IrrStatus::NotFound,
            true,
        )]);
        let m = compute_action1(&dirty);
        assert_eq!(action1_verdict(m.get(&Asn(1))), Action1Verdict::Unconformant);
    }

    #[test]
    fn invalid_length_customer_announcement_is_conformant() {
        // §3: de-aggregated (IRR invalid-length) customer announcements
        // are conformant; propagating them must not flip the verdict.
        let s = snapshot(vec![tr(
            "10.0.0.0/17",
            1,
            RpkiStatus::NotFound,
            IrrStatus::InvalidLength,
            true,
        )]);
        let m = compute_action1(&s);
        assert_eq!(action1_verdict(m.get(&Asn(1))), Action1Verdict::Conformant);
    }

    #[test]
    fn zero_propagation_percentages() {
        let m = Action1Metrics::default();
        assert_eq!(m.pg_rpki_invalid_pct(), 0.0);
        assert_eq!(m.pg_unconformant_pct(), 0.0);
    }
}
