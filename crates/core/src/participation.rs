//! MANRS participation analysis (§6.3, §7).
//!
//! Three views of who is in MANRS:
//!
//! * growth of member organizations and ASes over time (Fig. 2);
//! * member ASes and routed IPv4 space by RIR over time (Fig. 4a/4b);
//! * organization-level registration completeness (Finding 7.0): how
//!   many member organizations registered *all* their ASes, and how much
//!   of their address space is announced through registered ASes.

use crate::registry::ManrsRegistry;
use manrs_net::{AddressSpace, Date, Rir};
use manrs_topology::{AsTopology, OrgDirectory, Prefix2As};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One point of the Fig. 2 growth series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrowthPoint {
    /// Snapshot date.
    pub date: Date,
    /// Member organizations as of the date.
    pub orgs: usize,
    /// Registered member ASes as of the date.
    pub asns: usize,
}

/// One organization's registration completeness (Finding 7.0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrgCompleteness {
    /// The organization.
    pub org: manrs_topology::OrgId,
    /// ASes the organization owns.
    pub owned_asns: usize,
    /// ASes it registered in MANRS.
    pub registered_asns: usize,
    /// IPv4 /32-equivalents announced by its registered ASes.
    pub registered_space: u128,
    /// IPv4 /32-equivalents announced by all its ASes.
    pub total_space: u128,
}

impl OrgCompleteness {
    /// All owned ASes are registered.
    pub fn fully_registered(&self) -> bool {
        self.registered_asns == self.owned_asns
    }

    /// Everything the org announces flows through registered ASes.
    pub fn announces_only_via_registered(&self) -> bool {
        self.registered_space == self.total_space
    }

    /// The org announces space, but none of it from registered ASes.
    pub fn announces_only_via_unregistered(&self) -> bool {
        self.total_space > 0 && self.registered_space == 0
    }
}

/// Aggregate registration-completeness results (Finding 7.0).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrationCompleteness {
    /// Per-organization rows.
    pub orgs: Vec<OrgCompleteness>,
}

impl RegistrationCompleteness {
    /// Number of member organizations.
    pub fn total(&self) -> usize {
        self.orgs.len()
    }

    /// Organizations with every AS registered (paper: 70%).
    pub fn fully_registered(&self) -> usize {
        self.orgs.iter().filter(|o| o.fully_registered()).count()
    }

    /// Organizations announcing all space via registered ASes (82%).
    pub fn all_space_via_registered(&self) -> usize {
        self.orgs
            .iter()
            .filter(|o| o.announces_only_via_registered())
            .count()
    }

    /// Organizations leaking space from unregistered ASes (117 in the
    /// paper).
    pub fn some_space_unregistered(&self) -> usize {
        self.orgs
            .iter()
            .filter(|o| !o.announces_only_via_registered())
            .count()
    }

    /// Of those, organizations whose *entire* announced space comes from
    /// unregistered ASes (8 in the paper).
    pub fn only_space_unregistered(&self) -> usize {
        self.orgs
            .iter()
            .filter(|o| o.announces_only_via_unregistered())
            .count()
    }

    /// Organizations not fully registered that nevertheless announce
    /// only through registered ASes — quiescent unregistered ASes
    /// (80 in the paper).
    pub fn quiescent_unregistered(&self) -> usize {
        self.orgs
            .iter()
            .filter(|o| !o.fully_registered() && o.announces_only_via_registered())
            .count()
    }
}

/// A population profile for the paper's RQ1: "we use customer-cone size,
/// size of originated address space, and size of address space covered
/// by RPKI objects ... to further characterize MANRS participants".
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PopulationProfile {
    /// ASes in the population.
    pub count: usize,
    /// Median customer-cone size.
    pub median_cone: usize,
    /// Largest customer cone.
    pub max_cone: usize,
    /// IPv4 /32-equivalents originated by the population.
    pub originated_space: u128,
    /// Percentage of that space covered by RPKI VRPs.
    pub rpki_covered_pct: f64,
}

/// Characterizes a set of ASes (RQ1).
pub fn characterize<'a, I: IntoIterator<Item = &'a manrs_net::Asn>>(
    asns: I,
    cones: &manrs_topology::ConeAnalysis,
    table: &Prefix2As,
    vrps: &manrs_rpki::VrpSet,
) -> PopulationProfile {
    let asns: Vec<manrs_net::Asn> = asns.into_iter().copied().collect();
    let mut cone_sizes: Vec<usize> = asns.iter().map(|a| cones.cone_size(*a)).collect();
    cone_sizes.sort_unstable();
    let space = table.space_of_many(asns.iter());
    let covered = vrps.covered_space();
    PopulationProfile {
        count: asns.len(),
        median_cone: cone_sizes.get(cone_sizes.len() / 2).copied().unwrap_or(0),
        max_cone: cone_sizes.last().copied().unwrap_or(0),
        originated_space: space.v4_len(),
        rpki_covered_pct: space.v4_covered_fraction(&covered) * 100.0,
    }
}

/// The participation analysis entry points.
pub struct ParticipationAnalysis;

impl ParticipationAnalysis {
    /// Fig. 2: growth of member organizations and ASes at each date.
    pub fn growth_series(registry: &ManrsRegistry, dates: &[Date]) -> Vec<GrowthPoint> {
        dates
            .iter()
            .map(|d| GrowthPoint {
                date: *d,
                orgs: registry.member_orgs(*d).len(),
                asns: registry.member_asns(*d).len(),
            })
            .collect()
    }

    /// Fig. 4a: member AS counts per RIR at each date. ASes whose RIR is
    /// unknown to the topology are skipped.
    pub fn by_rir_series(
        registry: &ManrsRegistry,
        topology: &AsTopology,
        dates: &[Date],
    ) -> Vec<(Date, BTreeMap<Rir, usize>)> {
        dates
            .iter()
            .map(|d| {
                let mut counts: BTreeMap<Rir, usize> = BTreeMap::new();
                for asn in registry.member_asns(*d) {
                    if let Some(info) = topology.info(asn) {
                        *counts.entry(info.rir).or_insert(0) += 1;
                    }
                }
                (*d, counts)
            })
            .collect()
    }

    /// Fig. 4b: percentage of routed IPv4 space announced by member ASes,
    /// per RIR, for one routing snapshot. The denominator is the entire
    /// routed space of the snapshot.
    pub fn routed_space_share(
        registry: &ManrsRegistry,
        topology: &AsTopology,
        table: &Prefix2As,
        date: Date,
    ) -> BTreeMap<Rir, f64> {
        let total = table.total_space().v4_len();
        let mut shares = BTreeMap::new();
        if total == 0 {
            return shares;
        }
        let members = registry.member_asns(date);
        let mut per_rir: BTreeMap<Rir, AddressSpace> = BTreeMap::new();
        for asn in members {
            let Some(info) = topology.info(asn) else { continue };
            let space = per_rir.entry(info.rir).or_default();
            for p in table.prefixes_of(asn) {
                space.add(p);
            }
        }
        for (rir, space) in per_rir {
            shares.insert(rir, space.v4_len() as f64 / total as f64 * 100.0);
        }
        shares
    }

    /// Finding 7.0: registration completeness of each member org at
    /// `date`, measured against a routing table.
    pub fn registration_completeness(
        registry: &ManrsRegistry,
        orgs: &OrgDirectory,
        table: &Prefix2As,
        date: Date,
    ) -> RegistrationCompleteness {
        let mut rows = Vec::new();
        for org in registry.member_orgs(date) {
            let owned = orgs.asns_of(org);
            let registered: Vec<_> = owned
                .iter()
                .filter(|a| registry.is_member_as(**a, date))
                .collect();
            let registered_space = table
                .space_of_many(registered.iter().copied())
                .v4_len();
            let total_space = table.space_of_many(owned.iter()).v4_len();
            rows.push(OrgCompleteness {
                org,
                owned_asns: owned.len(),
                registered_asns: registered.len(),
                registered_space,
                total_space,
            });
        }
        RegistrationCompleteness { orgs: rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ManrsProgram, MemberRecord};
    use manrs_net::{Asn, Prefix};
    use manrs_topology::{AsInfo, NetworkKind, Organization, OrgId};

    fn setup() -> (ManrsRegistry, AsTopology, OrgDirectory, Prefix2As) {
        let mut topology = AsTopology::new();
        let mut orgs = OrgDirectory::new();
        // Org 1 owns AS1 (ARIN) and AS2 (ARIN); registers only AS1.
        // Org 2 owns AS3 (RIPE); registers it.
        for (asn, org, rir) in [(1, 1, Rir::Arin), (2, 1, Rir::Arin), (3, 2, Rir::RipeNcc)] {
            if orgs.org(OrgId(org)).is_none() {
                orgs.add_org(Organization {
                    id: OrgId(org),
                    name: format!("O{org}"),
                    country: "US".into(),
                    rir,
                });
            }
            orgs.assign(Asn(asn), OrgId(org));
            topology.add_as(AsInfo {
                asn: Asn(asn),
                org: OrgId(org),
                rir,
                country: "US".into(),
                kind: NetworkKind::Stub,
            });
        }
        let mut registry = ManrsRegistry::new();
        registry.enroll(MemberRecord {
            org: OrgId(1),
            program: ManrsProgram::Isp,
            joined: Date::ymd(2019, 1, 1),
            registered_asns: vec![Asn(1)],
        });
        registry.enroll(MemberRecord {
            org: OrgId(2),
            program: ManrsProgram::Isp,
            joined: Date::ymd(2021, 1, 1),
            registered_asns: vec![Asn(3)],
        });
        let mut table = Prefix2As::new();
        table.add("10.0.0.0/16".parse::<Prefix>().unwrap(), Asn(1));
        table.add("10.1.0.0/16".parse::<Prefix>().unwrap(), Asn(2)); // unregistered sibling
        table.add("77.0.0.0/16".parse::<Prefix>().unwrap(), Asn(3));
        table.add("110.0.0.0/15".parse::<Prefix>().unwrap(), Asn(99)); // non-member
        (registry, topology, orgs, table)
    }

    #[test]
    fn growth_series_counts() {
        let (registry, ..) = setup();
        let series = ParticipationAnalysis::growth_series(
            &registry,
            &[Date::ymd(2018, 1, 1), Date::ymd(2020, 1, 1), Date::ymd(2022, 1, 1)],
        );
        assert_eq!(series[0].orgs, 0);
        assert_eq!(series[1].orgs, 1);
        assert_eq!(series[1].asns, 1);
        assert_eq!(series[2].orgs, 2);
        assert_eq!(series[2].asns, 2);
    }

    #[test]
    fn by_rir_counts() {
        let (registry, topology, ..) = setup();
        let series = ParticipationAnalysis::by_rir_series(
            &registry,
            &topology,
            &[Date::ymd(2022, 1, 1)],
        );
        let (_, counts) = &series[0];
        assert_eq!(counts[&Rir::Arin], 1);
        assert_eq!(counts[&Rir::RipeNcc], 1);
    }

    #[test]
    fn routed_space_share_percentages() {
        let (registry, topology, _, table) = setup();
        let shares = ParticipationAnalysis::routed_space_share(
            &registry,
            &topology,
            &table,
            Date::ymd(2022, 1, 1),
        );
        // Routed space: 3 × /16 + /15 = 5 × /16 total. Member ASes: AS1
        // (one /16, ARIN) and AS3 (one /16, RIPE) → 20% each.
        assert!((shares[&Rir::Arin] - 20.0).abs() < 1e-9);
        assert!((shares[&Rir::RipeNcc] - 20.0).abs() < 1e-9);
        assert!(!shares.contains_key(&Rir::Apnic));
    }

    #[test]
    fn completeness_finding_70() {
        let (registry, _, orgs, table) = setup();
        let c = ParticipationAnalysis::registration_completeness(
            &registry,
            &orgs,
            &table,
            Date::ymd(2022, 1, 1),
        );
        assert_eq!(c.total(), 2);
        // Org 2 registered its only AS; org 1 left AS2 out.
        assert_eq!(c.fully_registered(), 1);
        // Org 1 announces from the unregistered AS2 as well.
        assert_eq!(c.all_space_via_registered(), 1);
        assert_eq!(c.some_space_unregistered(), 1);
        assert_eq!(c.only_space_unregistered(), 0);
        assert_eq!(c.quiescent_unregistered(), 0);
    }

    #[test]
    fn quiescent_unregistered_orgs() {
        let (registry, _, orgs, _) = setup();
        // A table where org 1's unregistered AS2 announces nothing.
        let mut table = Prefix2As::new();
        table.add("10.0.0.0/16".parse::<Prefix>().unwrap(), Asn(1));
        table.add("77.0.0.0/16".parse::<Prefix>().unwrap(), Asn(3));
        let c = ParticipationAnalysis::registration_completeness(
            &registry,
            &orgs,
            &table,
            Date::ymd(2022, 1, 1),
        );
        assert_eq!(c.quiescent_unregistered(), 1);
        assert_eq!(c.all_space_via_registered(), 2);
    }

    #[test]
    fn characterize_profiles() {
        use manrs_rpki::{Vrp, VrpSet};
        use manrs_topology::{ConeAnalysis, SizeThresholds};
        let (_, topology, _, table) = setup();
        let cones = ConeAnalysis::compute(&topology, SizeThresholds::PAPER);
        let vrps: VrpSet = [Vrp::new("10.0.0.0/16".parse().unwrap(), Asn(1), 16)]
            .into_iter()
            .collect();
        let profile = super::characterize([Asn(1), Asn(2)].iter(), &cones, &table, &vrps);
        assert_eq!(profile.count, 2);
        assert_eq!(profile.median_cone, 1);
        assert_eq!(profile.max_cone, 1);
        // AS1 + AS2 originate two /16s; one is VRP-covered.
        assert_eq!(profile.originated_space, 2 << 16);
        assert!((profile.rpki_covered_pct - 50.0).abs() < 1e-9);
        let empty = super::characterize([].iter(), &cones, &table, &vrps);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.rpki_covered_pct, 0.0);
    }

    #[test]
    fn empty_table_has_no_shares() {
        let (registry, topology, ..) = setup();
        let shares = ParticipationAnalysis::routed_space_share(
            &registry,
            &topology,
            &Prefix2As::new(),
            Date::ymd(2022, 1, 1),
        );
        assert!(shares.is_empty());
    }
}
