//! Routing-incident analysis — the paper's §12 future work ("compare
//! the number of routing incidents before and after the launch of
//! MANRS").
//!
//! An incident is an observed mis-origination of someone's address
//! space. Given an incident log and the membership registry, this
//! module answers two questions:
//!
//! * **Exposure:** how often is each organization's space the victim of
//!   an incident before vs after it joined MANRS (normalizing by time
//!   at risk)?
//! * **Containment:** how far do incidents spread, split by whether the
//!   victim's space was RPKI-protected at the time — the operational
//!   payoff of Action 4.

use crate::registry::ManrsRegistry;
use manrs_net::{Asn, Date, Prefix};
use manrs_topology::OrgDirectory;
use serde::{Deserialize, Serialize};

/// One observed routing incident.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// When it was observed.
    pub date: Date,
    /// The victim's prefix (as forged by the attacker).
    pub prefix: Prefix,
    /// The legitimate holder's AS.
    pub victim: Asn,
    /// The mis-originating AS.
    pub attacker: Asn,
    /// Whether the victim's space had a covering ROA at the time.
    pub victim_protected: bool,
    /// How many vantage points accepted the forged route.
    pub vantages_accepting: usize,
    /// How many vantage points were watching.
    pub vantages_total: usize,
}

impl Incident {
    /// Fraction of viewpoints that accepted the forged route.
    pub fn visibility(&self) -> f64 {
        if self.vantages_total == 0 {
            0.0
        } else {
            self.vantages_accepting as f64 / self.vantages_total as f64
        }
    }
}

/// Exposure of one member organization before vs after joining.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrePostExposure {
    /// Incidents against the org's space before it joined.
    pub before: usize,
    /// Days in the observation window before joining.
    pub days_before: i64,
    /// Incidents after joining.
    pub after: usize,
    /// Days after joining (to the end of the window).
    pub days_after: i64,
}

impl PrePostExposure {
    /// Incidents per year before joining.
    pub fn rate_before(&self) -> f64 {
        if self.days_before <= 0 {
            0.0
        } else {
            self.before as f64 * 365.25 / self.days_before as f64
        }
    }

    /// Incidents per year after joining.
    pub fn rate_after(&self) -> f64 {
        if self.days_after <= 0 {
            0.0
        } else {
            self.after as f64 * 365.25 / self.days_after as f64
        }
    }
}

/// Aggregates pre/post-join exposure across all member organizations.
///
/// The window runs from `window_start` to `window_end`; incidents
/// outside it are ignored, as are organizations joining outside it.
pub fn pre_post_exposure(
    incidents: &[Incident],
    registry: &ManrsRegistry,
    orgs: &OrgDirectory,
    window_start: Date,
    window_end: Date,
) -> PrePostExposure {
    let mut total = PrePostExposure { before: 0, days_before: 0, after: 0, days_after: 0 };
    for record in registry.members() {
        if record.joined < window_start || record.joined > window_end {
            continue;
        }
        total.days_before += window_start.days_until(&record.joined);
        total.days_after += record.joined.days_until(&window_end);
        for incident in incidents {
            if incident.date < window_start || incident.date > window_end {
                continue;
            }
            let victim_org = orgs.org_of(incident.victim).map(|o| o.id);
            if victim_org != Some(record.org) {
                continue;
            }
            if incident.date < record.joined {
                total.before += 1;
            } else {
                total.after += 1;
            }
        }
    }
    total
}

/// Containment comparison: mean visibility of incidents against
/// protected vs unprotected victims. Returns `(protected, unprotected)`
/// mean visibilities; `None` for an empty side.
pub fn containment_by_protection(incidents: &[Incident]) -> (Option<f64>, Option<f64>) {
    let mean = |protected: bool| -> Option<f64> {
        let vis: Vec<f64> = incidents
            .iter()
            .filter(|i| i.victim_protected == protected)
            .map(|i| i.visibility())
            .collect();
        if vis.is_empty() {
            None
        } else {
            Some(vis.iter().sum::<f64>() / vis.len() as f64)
        }
    };
    (mean(true), mean(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ManrsProgram, MemberRecord};
    use manrs_topology::{Organization, OrgId};

    fn incident(date: Date, victim: u32, protected: bool, seen: usize) -> Incident {
        Incident {
            date,
            prefix: "10.0.0.0/16".parse().unwrap(),
            victim: Asn(victim),
            attacker: Asn(666),
            victim_protected: protected,
            vantages_accepting: seen,
            vantages_total: 10,
        }
    }

    fn setup() -> (ManrsRegistry, OrgDirectory) {
        let mut orgs = OrgDirectory::new();
        orgs.add_org(Organization {
            id: OrgId(1),
            name: "Org".into(),
            country: "US".into(),
            rir: manrs_net::Rir::Arin,
        });
        orgs.assign(Asn(1), OrgId(1));
        let mut reg = ManrsRegistry::new();
        reg.enroll(MemberRecord {
            org: OrgId(1),
            program: ManrsProgram::Isp,
            joined: Date::ymd(2019, 1, 1),
            registered_asns: vec![Asn(1)],
        });
        (reg, orgs)
    }

    #[test]
    fn splits_incidents_at_join_date() {
        let (reg, orgs) = setup();
        let incidents = vec![
            incident(Date::ymd(2017, 6, 1), 1, false, 8),
            incident(Date::ymd(2018, 6, 1), 1, false, 8),
            incident(Date::ymd(2020, 6, 1), 1, true, 2),
            incident(Date::ymd(2020, 7, 1), 99, true, 2), // different victim
        ];
        let e = pre_post_exposure(
            &incidents,
            &reg,
            &orgs,
            Date::ymd(2015, 1, 1),
            Date::ymd(2022, 5, 1),
        );
        assert_eq!(e.before, 2);
        assert_eq!(e.after, 1);
        assert!(e.days_before > 0 && e.days_after > 0);
        assert!(e.rate_before() > e.rate_after());
    }

    #[test]
    fn window_filters_incidents_and_members() {
        let (reg, orgs) = setup();
        let incidents = vec![incident(Date::ymd(2010, 1, 1), 1, false, 5)];
        let e = pre_post_exposure(
            &incidents,
            &reg,
            &orgs,
            Date::ymd(2015, 1, 1),
            Date::ymd(2022, 5, 1),
        );
        assert_eq!(e.before + e.after, 0);
    }

    #[test]
    fn containment_split() {
        let incidents = vec![
            incident(Date::ymd(2021, 1, 1), 1, true, 1),
            incident(Date::ymd(2021, 2, 1), 1, true, 3),
            incident(Date::ymd(2021, 3, 1), 1, false, 9),
        ];
        let (protected, unprotected) = containment_by_protection(&incidents);
        assert!((protected.unwrap() - 0.2).abs() < 1e-12);
        assert!((unprotected.unwrap() - 0.9).abs() < 1e-12);
        let (none_p, _) = containment_by_protection(&[incident(
            Date::ymd(2021, 1, 1),
            1,
            false,
            1,
        )]);
        assert!(none_p.is_none());
    }

    #[test]
    fn visibility_handles_zero_vantages() {
        let mut i = incident(Date::ymd(2021, 1, 1), 1, true, 0);
        i.vantages_total = 0;
        assert_eq!(i.visibility(), 0.0);
    }
}
