//! The MANRS membership registry.
//!
//! Membership is per-organization and per-program (§2.4): an organization
//! joins the Network Operators (ISP) or CDN & Cloud program and registers
//! a chosen subset of its AS numbers — possibly not all of them, which is
//! what Finding 7.0 measures. Join dates (the paper's private
//! *historical MANRS dataset*, §5.2) drive every time series.

use manrs_net::{Asn, Date};
use manrs_topology::OrgId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The two MANRS programs this reproduction analyzes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ManrsProgram {
    /// MANRS for Network Operators.
    Isp,
    /// MANRS for CDN and Cloud Providers (launched 2020).
    Cdn,
}

impl std::fmt::Display for ManrsProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ManrsProgram::Isp => "ISP",
            ManrsProgram::Cdn => "CDN",
        })
    }
}

/// One organization's membership in one program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberRecord {
    /// The member organization.
    pub org: OrgId,
    /// Which program it joined.
    pub program: ManrsProgram,
    /// When it joined.
    pub joined: Date,
    /// The AS numbers the organization registered (a subset of the ASes
    /// it owns).
    pub registered_asns: Vec<Asn>,
}

/// The registry of all memberships.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ManrsRegistry {
    members: Vec<MemberRecord>,
    by_asn: BTreeMap<Asn, usize>,
    by_org: BTreeMap<OrgId, Vec<usize>>,
}

impl ManrsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a membership record.
    ///
    /// # Panics
    /// Panics if one of the record's ASNs is already registered through
    /// another record — an AS belongs to at most one MANRS entry.
    pub fn enroll(&mut self, record: MemberRecord) {
        let idx = self.members.len();
        for asn in &record.registered_asns {
            let prev = self.by_asn.insert(*asn, idx);
            assert!(prev.is_none(), "{asn} registered twice in MANRS");
        }
        self.by_org.entry(record.org).or_default().push(idx);
        self.members.push(record);
    }

    /// All membership records.
    pub fn members(&self) -> &[MemberRecord] {
        &self.members
    }

    /// The record registering `asn`, if any.
    pub fn record_of(&self, asn: Asn) -> Option<&MemberRecord> {
        self.by_asn.get(&asn).map(|idx| &self.members[*idx])
    }

    /// `true` if `asn` is a MANRS member AS as of `date`.
    pub fn is_member_as(&self, asn: Asn, date: Date) -> bool {
        self.record_of(asn).is_some_and(|r| r.joined <= date)
    }

    /// The program of `asn` as of `date`.
    pub fn program_of(&self, asn: Asn, date: Date) -> Option<ManrsProgram> {
        self.record_of(asn)
            .filter(|r| r.joined <= date)
            .map(|r| r.program)
    }

    /// All member ASNs as of `date`.
    pub fn member_asns(&self, date: Date) -> BTreeSet<Asn> {
        self.members
            .iter()
            .filter(|r| r.joined <= date)
            .flat_map(|r| r.registered_asns.iter().copied())
            .collect()
    }

    /// Member ASNs of one program as of `date`.
    pub fn program_asns(&self, program: ManrsProgram, date: Date) -> BTreeSet<Asn> {
        self.members
            .iter()
            .filter(|r| r.joined <= date && r.program == program)
            .flat_map(|r| r.registered_asns.iter().copied())
            .collect()
    }

    /// All member organizations as of `date`.
    pub fn member_orgs(&self, date: Date) -> BTreeSet<OrgId> {
        self.members
            .iter()
            .filter(|r| r.joined <= date)
            .map(|r| r.org)
            .collect()
    }

    /// The records of one organization (an org can be in both programs).
    pub fn records_of_org(&self, org: OrgId) -> Vec<&MemberRecord> {
        self.by_org
            .get(&org)
            .map(|idxs| idxs.iter().map(|i| &self.members[*i]).collect())
            .unwrap_or_default()
    }

    /// `true` if `org` is a member (of any program) as of `date`.
    pub fn is_member_org(&self, org: OrgId, date: Date) -> bool {
        self.records_of_org(org).iter().any(|r| r.joined <= date)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(org: u32, program: ManrsProgram, joined: Date, asns: &[u32]) -> MemberRecord {
        MemberRecord {
            org: OrgId(org),
            program,
            joined,
            registered_asns: asns.iter().map(|a| Asn(*a)).collect(),
        }
    }

    #[test]
    fn membership_respects_join_date() {
        let mut reg = ManrsRegistry::new();
        reg.enroll(record(1, ManrsProgram::Isp, Date::ymd(2019, 6, 1), &[10, 11]));
        assert!(!reg.is_member_as(Asn(10), Date::ymd(2019, 5, 31)));
        assert!(reg.is_member_as(Asn(10), Date::ymd(2019, 6, 1)));
        assert!(reg.is_member_as(Asn(11), Date::ymd(2022, 5, 1)));
        assert!(!reg.is_member_as(Asn(12), Date::ymd(2022, 5, 1)));
    }

    #[test]
    fn program_queries() {
        let mut reg = ManrsRegistry::new();
        reg.enroll(record(1, ManrsProgram::Isp, Date::ymd(2018, 1, 1), &[10]));
        reg.enroll(record(2, ManrsProgram::Cdn, Date::ymd(2020, 3, 1), &[20, 21]));
        let d = Date::ymd(2022, 5, 1);
        assert_eq!(reg.program_of(Asn(10), d), Some(ManrsProgram::Isp));
        assert_eq!(reg.program_of(Asn(20), d), Some(ManrsProgram::Cdn));
        assert_eq!(reg.program_asns(ManrsProgram::Cdn, d).len(), 2);
        assert_eq!(reg.program_asns(ManrsProgram::Isp, d).len(), 1);
        // Before the CDN program existed.
        assert_eq!(reg.program_asns(ManrsProgram::Cdn, Date::ymd(2019, 1, 1)).len(), 0);
    }

    #[test]
    fn org_queries() {
        let mut reg = ManrsRegistry::new();
        reg.enroll(record(1, ManrsProgram::Isp, Date::ymd(2018, 1, 1), &[10]));
        reg.enroll(record(1, ManrsProgram::Cdn, Date::ymd(2021, 1, 1), &[11]));
        let d = Date::ymd(2022, 5, 1);
        assert_eq!(reg.records_of_org(OrgId(1)).len(), 2);
        assert!(reg.is_member_org(OrgId(1), d));
        assert!(!reg.is_member_org(OrgId(2), d));
        assert_eq!(reg.member_orgs(d).len(), 1);
        assert_eq!(reg.member_asns(d).len(), 2);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let mut reg = ManrsRegistry::new();
        reg.enroll(record(1, ManrsProgram::Isp, Date::ymd(2018, 1, 1), &[10]));
        reg.enroll(record(2, ManrsProgram::Isp, Date::ymd(2019, 1, 1), &[10]));
    }
}
