//! Property tests for the vantage-point value optimization.
//!
//! Random topologies, policies, and announcement mixes: the greedy
//! ranking must be bit-for-bit identical across serial and 2/4/8-thread
//! selection, `select_within(tol)` must never hand back a subset whose
//! *recomputed* bias violates the requested tolerance, tolerance zero
//! must return the full vantage set, and collecting on a selected
//! subset must equal projecting the full-vantage RIB onto it —
//! including the degenerate empty-vantage and single-vantage worlds.

use manrs_bgp::{
    Announcement, ParallelConfig, PolicyExtension, PolicySet, PolicyTable, TableCollector,
};
use manrs_ihr::{VantageSelector, VantageSet};
use manrs_irr::IrrStatus;
use manrs_net::{Asn, Rir};
use manrs_rpki::RpkiStatus;
use manrs_topology::{AsInfo, AsTopology, NetworkKind, OrgId};
use proptest::prelude::*;

/// Random layered topology free of provider cycles (providers only among
/// lower-numbered ASes).
fn arb_topology() -> impl Strategy<Value = AsTopology> {
    (
        4usize..25,
        prop::collection::vec((any::<u16>(), any::<u16>()), 0..35),
        prop::collection::vec((any::<u16>(), any::<u16>()), 0..12),
    )
        .prop_map(|(n, cp_seeds, pp_seeds)| {
            let mut t = AsTopology::new();
            for i in 0..n {
                t.add_as(AsInfo {
                    asn: Asn(i as u32 + 1),
                    org: OrgId(i as u32),
                    rir: Rir::Arin,
                    country: "US".into(),
                    kind: NetworkKind::Transit,
                });
            }
            for (a, b) in cp_seeds {
                let customer = (a as usize % n).max(1);
                let provider = b as usize % customer;
                t.add_provider_customer(Asn(provider as u32 + 1), Asn(customer as u32 + 1));
            }
            for (a, b) in pp_seeds {
                let x = a as usize % n;
                let y = b as usize % n;
                if x != y && t.relationship(Asn(x as u32 + 1), Asn(y as u32 + 1)).is_none() {
                    t.add_peer(Asn(x as u32 + 1), Asn(y as u32 + 1));
                }
            }
            t
        })
}

fn announcements(n: u32, specs: &[(u16, u8, u8)]) -> Vec<Announcement> {
    let rpki_of = |k: u8| {
        [RpkiStatus::Valid, RpkiStatus::InvalidAsn, RpkiStatus::InvalidLength, RpkiStatus::NotFound]
            [k as usize]
    };
    let irr_of = |k: u8| {
        [IrrStatus::Valid, IrrStatus::InvalidAsn, IrrStatus::InvalidLength, IrrStatus::NotFound]
            [k as usize]
    };
    specs
        .iter()
        .enumerate()
        .map(|(i, (o, r, ir))| {
            let prefix = format!("10.{}.0.0/16", i % 250).parse().unwrap();
            Announcement::new(prefix, Asn((*o as u32 % n) + 1), rpki_of(*r), irr_of(*ir))
        })
        .collect()
}

/// Heterogeneous path-blind policy mix, as in the pool-equivalence
/// suite: ISP default, one strict CDN, route servers sprinkled through.
fn policies(n: u32) -> PolicyTable {
    let mut policies = PolicyTable::with_default(PolicySet::MANRS_ISP);
    policies.set(Asn(3), PolicySet::MANRS_CDN.with(PolicyExtension::IrrStrictLength));
    for asn in (5..=n).step_by(7) {
        policies.set(Asn(asn), PolicySet::ROUTE_SERVER);
    }
    policies
}

/// Deduplicated vantage list drawn from raw seeds — may be empty or a
/// single vantage, covering the degenerate selector inputs.
fn vantages(n: u32, seeds: &[u16]) -> Vec<Asn> {
    let mut v: Vec<Asn> = Vec::new();
    for &s in seeds {
        let asn = Asn((s as u32 % n) + 1);
        if !v.contains(&asn) {
            v.push(asn);
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ranking_is_deterministic_across_thread_counts(
        t in arb_topology(),
        specs in prop::collection::vec((any::<u16>(), 0u8..4, 0u8..4), 1..10),
        vantage_seeds in prop::collection::vec(any::<u16>(), 0..7),
    ) {
        let n = t.len() as u32;
        let anns = announcements(n, &specs);
        let policies = policies(n);
        let vantages = vantages(n, &vantage_seeds);
        let rib = TableCollector::new(&t, &policies, &vantages).plan().collect(&anns);

        let baseline =
            VantageSelector::new(&rib).parallel(ParallelConfig::serial()).rank();
        prop_assert_eq!(baseline.scores.len(), vantages.len());
        prop_assert_eq!(&baseline.rib_vantages, &vantages);
        for threads in [2, 4, 8] {
            let ranking = VantageSelector::new(&rib)
                .parallel(ParallelConfig::with_threads(threads))
                .rank();
            prop_assert_eq!(&ranking, &baseline, "ranking diverged at {} threads", threads);
        }
        // Rank twice on the same selector: selection reads only the
        // frozen RIB, so repeats are bit-for-bit stable.
        let again = VantageSelector::new(&rib).parallel(ParallelConfig::serial()).rank();
        prop_assert_eq!(again, baseline);
    }

    #[test]
    fn select_within_never_exceeds_tolerance(
        t in arb_topology(),
        specs in prop::collection::vec((any::<u16>(), 0u8..4, 0u8..4), 1..10),
        vantage_seeds in prop::collection::vec(any::<u16>(), 0..7),
        tol_k in 0usize..3,
    ) {
        let n = t.len() as u32;
        let anns = announcements(n, &specs);
        let policies = policies(n);
        let vantages = vantages(n, &vantage_seeds);
        let rib = TableCollector::new(&t, &policies, &vantages).plan().collect(&anns);
        let selector = VantageSelector::new(&rib);
        let ranking = selector.rank();

        let tol = [0.05, 0.25, 1.0][tol_k];
        let (set, report) = selector.select_within(&ranking, tol);
        prop_assert!(report.within(tol), "returned report exceeds tolerance: {:?}", report);
        prop_assert!(set.len() <= vantages.len());
        // The returned report must agree with an independent bias
        // measurement of the same subset.
        let recomputed = selector.bias_of(&set);
        prop_assert_eq!(report, recomputed);

        // Tolerance zero always returns the full set with exact bias.
        let (full, exact) = selector.select_within(&ranking, 0.0);
        prop_assert_eq!(full.vantages(), &vantages[..]);
        prop_assert_eq!(exact.hegemony_max_abs_delta, 0.0);
        prop_assert_eq!(exact.max_conformance_drift, 0.0);
        prop_assert_eq!(exact.missed_links, 0);
    }

    #[test]
    fn subset_collection_equals_projection_of_full_rib(
        t in arb_topology(),
        specs in prop::collection::vec((any::<u16>(), 0u8..4, 0u8..4), 1..8),
        vantage_seeds in prop::collection::vec(any::<u16>(), 0..7),
        k_seed in any::<u16>(),
    ) {
        let n = t.len() as u32;
        let anns = announcements(n, &specs);
        let policies = policies(n);
        let vantages = vantages(n, &vantage_seeds);
        let collector = TableCollector::new(&t, &policies, &vantages);
        let rib = collector.clone().plan().collect(&anns);
        let ranking = VantageSelector::new(&rib).rank();

        // Any greedy prefix, not just the tolerance-chosen one.
        let k = if vantages.is_empty() { 0 } else { k_seed as usize % (vantages.len() + 1) };
        let set: VantageSet = ranking.select(k);
        let sub = collector.clone().plan().vantage_set(&set).collect(&anns);
        prop_assert_eq!(sub.observations.len(), rib.observations.len());
        for (obs_sub, obs_full) in sub.observations.iter().zip(&rib.observations) {
            let projected: Vec<Vec<Asn>> = rib
                .materialize_paths(obs_full)
                .into_iter()
                .filter(|p| p.first().is_some_and(|&v| set.contains(v)))
                .collect();
            prop_assert_eq!(sub.materialize_paths(obs_sub), projected);
        }
    }
}
