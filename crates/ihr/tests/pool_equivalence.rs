//! Interned collection ≡ pre-pool collection, end to end.
//!
//! Random topologies, policies, and announcement mixes: the pooled
//! representation must materialize to exactly the owned paths the
//! legacy per-announcement propagation produces, visibility must match,
//! and hegemony — computed by the dense [`HegemonyCounter`] over
//! interned paths — must be bit-for-bit equal to [`hegemony_scores`]
//! over the materialized paths, across serial and 2/4/8-thread
//! collection. The reverse collection strategy must produce the same
//! pool, the same observations, and therefore the same hegemony as the
//! forward strategy it replaces.

use manrs_bgp::{
    propagate, Announcement, CollectionStrategy, ParallelConfig, PolicyExtension, PolicySet,
    PolicyTable, TableCollector,
};
use manrs_ihr::hegemony::{hegemony_scores, HegemonyCounter};
use manrs_irr::IrrStatus;
use manrs_net::{Asn, Rir};
use manrs_rpki::RpkiStatus;
use manrs_topology::{AsInfo, AsTopology, NetworkKind, OrgId};
use proptest::prelude::*;

/// Random layered topology free of provider cycles (providers only among
/// lower-numbered ASes).
fn arb_topology() -> impl Strategy<Value = AsTopology> {
    (
        4usize..25,
        prop::collection::vec((any::<u16>(), any::<u16>()), 0..35),
        prop::collection::vec((any::<u16>(), any::<u16>()), 0..12),
    )
        .prop_map(|(n, cp_seeds, pp_seeds)| {
            let mut t = AsTopology::new();
            for i in 0..n {
                t.add_as(AsInfo {
                    asn: Asn(i as u32 + 1),
                    org: OrgId(i as u32),
                    rir: Rir::Arin,
                    country: "US".into(),
                    kind: NetworkKind::Transit,
                });
            }
            for (a, b) in cp_seeds {
                let customer = (a as usize % n).max(1);
                let provider = b as usize % customer;
                t.add_provider_customer(Asn(provider as u32 + 1), Asn(customer as u32 + 1));
            }
            for (a, b) in pp_seeds {
                let x = a as usize % n;
                let y = b as usize % n;
                if x != y && t.relationship(Asn(x as u32 + 1), Asn(y as u32 + 1)).is_none() {
                    t.add_peer(Asn(x as u32 + 1), Asn(y as u32 + 1));
                }
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interned_matches_legacy_paths_visibility_and_hegemony(
        t in arb_topology(),
        specs in prop::collection::vec((any::<u16>(), 0u8..4, 0u8..4), 1..10),
    ) {
        let n = t.len() as u32;
        let rpki_of = |k: u8| [RpkiStatus::Valid, RpkiStatus::InvalidAsn,
                               RpkiStatus::InvalidLength, RpkiStatus::NotFound][k as usize];
        let irr_of = |k: u8| [IrrStatus::Valid, IrrStatus::InvalidAsn,
                              IrrStatus::InvalidLength, IrrStatus::NotFound][k as usize];
        let anns: Vec<Announcement> = specs
            .iter()
            .enumerate()
            .map(|(i, (o, r, ir))| {
                let prefix = format!("10.{}.0.0/16", i % 250).parse().unwrap();
                Announcement::new(prefix, Asn((*o as u32 % n) + 1), rpki_of(*r), irr_of(*ir))
            })
            .collect();
        // Heterogeneous path-blind mixes: ISP default, one strict CDN,
        // route servers sprinkled through — the active union spans all
        // five path-blind extensions, so reverse collection runs with
        // fully widened accept classes.
        let mut policies = PolicyTable::with_default(PolicySet::MANRS_ISP);
        policies.set(Asn(3), PolicySet::MANRS_CDN.with(PolicyExtension::IrrStrictLength));
        for asn in (5..=n).step_by(7) {
            policies.set(Asn(asn), PolicySet::ROUTE_SERVER);
        }
        let vantages: Vec<Asn> = vec![Asn(1), Asn(2), Asn(n.min(4))];
        let collector = TableCollector::new(&t, &policies, &vantages);

        let configs = [
            ParallelConfig::serial(),
            ParallelConfig::with_threads(2),
            ParallelConfig::with_threads(4),
            ParallelConfig::with_threads(8),
        ];
        for cfg in configs {
            let rib = collector
                .clone()
                .parallel(cfg)
                .plan()
                .strategy(CollectionStrategy::Forward)
                .collect(&anns);
            // The per-vantage reverse traversal must reproduce the
            // forward table bit for bit: same interned pool, same
            // observations — and so identical hegemony downstream.
            let reversed = collector
                .clone()
                .parallel(cfg)
                .plan()
                .strategy(CollectionStrategy::Reverse)
                .collect(&anns);
            prop_assert_eq!(reversed.pool(), rib.pool());
            prop_assert_eq!(&reversed.observations, &rib.observations);
            let mut counter = HegemonyCounter::new();
            let mut reverse_counter = HegemonyCounter::new();
            let mut legacy_visible = 0usize;
            for (i, a) in anns.iter().enumerate() {
                // Legacy representation: one propagation per
                // announcement, owned Vec<Vec<Asn>> vantage paths.
                let (g, o) = propagate(&t, &policies, a);
                let legacy: Vec<Vec<Asn>> = vantages
                    .iter()
                    .filter_map(|v| o.as_path(&g, *v))
                    .collect();
                if !legacy.is_empty() {
                    legacy_visible += 1;
                }
                let obs = &rib.observations[i];
                prop_assert_eq!(rib.materialize_paths(obs), legacy.clone());
                prop_assert_eq!(obs.is_visible(), !legacy.is_empty());

                // Hegemony: dense counter over interned paths must equal
                // the HashMap estimator over materialized paths, bit for
                // bit (f64 equality, not tolerance).
                let dense = counter.scores(rib.pool(), &obs.paths, vantages.len());
                let reference = hegemony_scores(&legacy, vantages.len());
                prop_assert_eq!(&dense, &reference);
                let via_reverse = reverse_counter.scores(
                    reversed.pool(),
                    &reversed.observations[i].paths,
                    vantages.len(),
                );
                prop_assert_eq!(via_reverse, dense);
            }
            prop_assert_eq!(rib.visible_count(), legacy_visible);
        }
    }
}
