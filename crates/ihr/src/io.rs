//! CSV serialization of the IHR datasets.
//!
//! The real Internet Health Report exposes its ROV feed as CSV-ish rows;
//! these writers/parsers let a built snapshot live on disk and be
//! re-ingested by any analysis stage (the same decoupling the paper
//! relies on when it re-processes IHR snapshots for twelve weeks of
//! history).

use crate::dataset::{IhrSnapshot, PrefixOriginRecord, TransitRecord};
use manrs_net::{Asn, NetError, Prefix};
use std::fmt::Write as _;

/// Serializes the prefix-origin dataset:
/// `prefix,origin,rpki,irr,viewpoints`.
pub fn write_prefix_origins(snapshot: &IhrSnapshot) -> String {
    let mut out = String::from("prefix,origin,rpki,irr,viewpoints\n");
    for po in &snapshot.prefix_origins {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            po.prefix, po.origin, po.rpki, po.irr, po.viewpoints
        );
    }
    out
}

/// Serializes the transit dataset:
/// `prefix,origin,transit,rpki,irr,hegemony,from_customer`.
pub fn write_transits(snapshot: &IhrSnapshot) -> String {
    let mut out = String::from("prefix,origin,transit,rpki,irr,hegemony,from_customer\n");
    for t in &snapshot.transits {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.6},{}",
            t.prefix, t.origin, t.transit, t.rpki, t.irr, t.hegemony, t.from_customer
        );
    }
    out
}

fn split_fields(line: &str, expected: usize) -> Result<Vec<&str>, NetError> {
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    if fields.len() != expected {
        Err(NetError::InvalidAddress(line.to_owned()))
    } else {
        Ok(fields)
    }
}

/// Parses a prefix-origin CSV (header optional).
pub fn parse_prefix_origins(text: &str) -> Result<Vec<PrefixOriginRecord>, NetError> {
    let mut rows = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (idx == 0 && line.starts_with("prefix,")) {
            continue;
        }
        let f = split_fields(line, 5)?;
        rows.push(PrefixOriginRecord {
            prefix: f[0].parse::<Prefix>()?,
            origin: f[1].parse::<Asn>()?,
            rpki: f[2].parse()?,
            irr: f[3].parse()?,
            viewpoints: f[4]
                .parse()
                .map_err(|_| NetError::InvalidAddress(line.to_owned()))?,
        });
    }
    Ok(rows)
}

/// Parses a transit CSV (header optional).
pub fn parse_transits(text: &str) -> Result<Vec<TransitRecord>, NetError> {
    let mut rows = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (idx == 0 && line.starts_with("prefix,")) {
            continue;
        }
        let f = split_fields(line, 7)?;
        let bad = || NetError::InvalidAddress(line.to_owned());
        rows.push(TransitRecord {
            prefix: f[0].parse::<Prefix>()?,
            origin: f[1].parse::<Asn>()?,
            transit: f[2].parse::<Asn>()?,
            rpki: f[3].parse()?,
            irr: f[4].parse()?,
            hegemony: f[5].parse().map_err(|_| bad())?,
            from_customer: match f[6] {
                "true" => true,
                "false" => false,
                _ => return Err(bad()),
            },
        });
    }
    Ok(rows)
}

/// Full snapshot round trip: both datasets from their CSV forms.
pub fn parse_snapshot(prefix_origins: &str, transits: &str) -> Result<IhrSnapshot, NetError> {
    Ok(IhrSnapshot {
        prefix_origins: parse_prefix_origins(prefix_origins)?,
        transits: parse_transits(transits)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_irr::IrrStatus;
    use manrs_rpki::RpkiStatus;

    fn snapshot() -> IhrSnapshot {
        IhrSnapshot {
            prefix_origins: vec![PrefixOriginRecord {
                prefix: "10.0.0.0/16".parse().unwrap(),
                origin: Asn(64_500),
                rpki: RpkiStatus::Valid,
                irr: IrrStatus::InvalidLength,
                viewpoints: 7,
            }],
            transits: vec![TransitRecord {
                prefix: "10.0.0.0/16".parse().unwrap(),
                origin: Asn(64_500),
                transit: Asn(3356),
                rpki: RpkiStatus::Valid,
                irr: IrrStatus::InvalidLength,
                hegemony: 0.428571,
                from_customer: true,
            }],
        }
    }

    #[test]
    fn round_trip() {
        let s = snapshot();
        let back = parse_snapshot(&write_prefix_origins(&s), &write_transits(&s)).unwrap();
        assert_eq!(back.prefix_origins, s.prefix_origins);
        assert_eq!(back.transits.len(), 1);
        let t = &back.transits[0];
        assert_eq!(t.transit, Asn(3356));
        assert!((t.hegemony - 0.428571).abs() < 1e-9);
        assert!(t.from_customer);
    }

    #[test]
    fn header_and_blank_tolerance() {
        let rows = parse_prefix_origins(
            "prefix,origin,rpki,irr,viewpoints\n\n10.0.0.0/16,AS1,Valid,NotFound,3\n",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].viewpoints, 3);
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(parse_prefix_origins("10.0.0.0/16,AS1,Valid,NotFound\n").is_err());
        assert!(parse_prefix_origins("banana,AS1,Valid,NotFound,3\n").is_err());
        assert!(parse_prefix_origins("10.0.0.0/16,AS1,Martian,NotFound,3\n").is_err());
        assert!(parse_transits("10.0.0.0/16,AS1,AS2,Valid,NotFound,0.5,maybe\n").is_err());
        assert!(parse_transits("10.0.0.0/16,AS1,AS2,Valid,NotFound,x,true\n").is_err());
    }
}
