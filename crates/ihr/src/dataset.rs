//! The IHR prefix-origin and transit datasets.
//!
//! Built from a [`CollectedRib`]: each visible (prefix, origin) becomes
//! one [`PrefixOriginRecord`] (the trivial-transit row the paper splits
//! out, §5.3), and every non-origin AS with positive hegemony on its
//! paths becomes a [`TransitRecord`]. Transit records carry whether the
//! transit learned the route from a direct customer — the relationship
//! context Formula 6 (Action 1 unconformance) needs.

use crate::hegemony::HegemonyCounter;
use manrs_bgp::CollectedRib;
use manrs_irr::IrrStatus;
use manrs_net::{Asn, Prefix};
use manrs_rpki::RpkiStatus;
use manrs_topology::{AsTopology, Relationship};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One routed (prefix, origin) pair with registry statuses — a row of
/// the paper's *IHR prefix-origin dataset*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefixOriginRecord {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The origin AS (trivial transit, hegemony 1).
    pub origin: Asn,
    /// RPKI validation status.
    pub rpki: RpkiStatus,
    /// IRR validity.
    pub irr: IrrStatus,
    /// Number of vantage points that saw the announcement.
    pub viewpoints: usize,
}

/// One (prefix, origin, transit) row of the *IHR transit dataset*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitRecord {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The origin AS.
    pub origin: Asn,
    /// The transit AS (never the origin).
    pub transit: Asn,
    /// RPKI status of the announcement.
    pub rpki: RpkiStatus,
    /// IRR status of the announcement.
    pub irr: IrrStatus,
    /// AS hegemony of the transit toward this prefix.
    pub hegemony: f64,
    /// `true` if, on at least one observed path, the transit learned the
    /// announcement from one of its direct customers.
    pub from_customer: bool,
}

/// The two datasets for one snapshot date.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IhrSnapshot {
    /// Visible (prefix, origin) pairs.
    pub prefix_origins: Vec<PrefixOriginRecord>,
    /// Transit rows (hegemony > 0, transit ≠ origin).
    pub transits: Vec<TransitRecord>,
}

impl IhrSnapshot {
    /// Transit rows grouped by transit AS.
    pub fn transits_by_as(&self) -> BTreeMap<Asn, Vec<&TransitRecord>> {
        let mut map: BTreeMap<Asn, Vec<&TransitRecord>> = BTreeMap::new();
        for t in &self.transits {
            map.entry(t.transit).or_default().push(t);
        }
        map
    }

    /// Prefix-origin rows grouped by origin AS.
    pub fn origins_by_as(&self) -> BTreeMap<Asn, Vec<&PrefixOriginRecord>> {
        let mut map: BTreeMap<Asn, Vec<&PrefixOriginRecord>> = BTreeMap::new();
        for po in &self.prefix_origins {
            map.entry(po.origin).or_default().push(po);
        }
        map
    }
}

/// A reverse index from (prefix, origin) into a snapshot's rows, for
/// patching registry statuses **in place** instead of rebuilding the
/// snapshot — the core of incremental re-validation: a registry delta
/// touches a handful of pairs, and only those rows change.
///
/// The index stores row positions, so it stays valid as long as the
/// snapshot's row layout is unchanged (statuses may be patched freely;
/// rows must not be added, removed, or reordered).
#[derive(Debug, Clone, Default)]
pub struct SnapshotIndex {
    rows: BTreeMap<(Prefix, Asn), RowSet>,
}

/// Row positions for one (prefix, origin) pair.
#[derive(Debug, Clone, Default)]
struct RowSet {
    prefix_origins: Vec<usize>,
    transits: Vec<usize>,
}

impl SnapshotIndex {
    /// Indexes a snapshot's rows by (prefix, origin).
    pub fn build(snapshot: &IhrSnapshot) -> Self {
        let mut rows: BTreeMap<(Prefix, Asn), RowSet> = BTreeMap::new();
        for (i, po) in snapshot.prefix_origins.iter().enumerate() {
            rows.entry((po.prefix, po.origin)).or_default().prefix_origins.push(i);
        }
        for (i, t) in snapshot.transits.iter().enumerate() {
            rows.entry((t.prefix, t.origin)).or_default().transits.push(i);
        }
        SnapshotIndex { rows }
    }

    /// Number of distinct (prefix, origin) pairs indexed.
    pub fn pair_count(&self) -> usize {
        self.rows.len()
    }

    /// Writes new registry statuses onto every row of `(prefix, origin)`
    /// — the prefix-origin row and all of the pair's transit rows.
    /// Returns how many rows actually changed (0 both when the statuses
    /// already matched and when the pair has no rows).
    ///
    /// The snapshot must have the same row layout as the one the index
    /// was built from.
    pub fn patch(
        &self,
        snapshot: &mut IhrSnapshot,
        prefix: Prefix,
        origin: Asn,
        rpki: RpkiStatus,
        irr: IrrStatus,
    ) -> usize {
        let Some(set) = self.rows.get(&(prefix, origin)) else {
            return 0;
        };
        let mut changed = 0;
        for &i in &set.prefix_origins {
            let row = &mut snapshot.prefix_origins[i];
            if row.rpki != rpki || row.irr != irr {
                row.rpki = rpki;
                row.irr = irr;
                changed += 1;
            }
        }
        for &i in &set.transits {
            let row = &mut snapshot.transits[i];
            if row.rpki != rpki || row.irr != irr {
                row.rpki = rpki;
                row.irr = irr;
                changed += 1;
            }
        }
        changed
    }
}

/// Builds both datasets from a collected RIB.
///
/// Only visible observations contribute — announcements no vantage point
/// saw simply do not exist to the measurement, the §11 limitation.
pub fn build_snapshot(rib: &CollectedRib, topology: &AsTopology) -> IhrSnapshot {
    let mut snapshot = IhrSnapshot::default();
    // One dense counter reused across every (prefix, origin) pair; paths
    // resolve as borrowed pool slices, nothing is cloned per pair.
    let mut counter = HegemonyCounter::new();
    for obs in rib.visible() {
        snapshot.prefix_origins.push(PrefixOriginRecord {
            prefix: obs.prefix,
            origin: obs.origin,
            rpki: obs.rpki,
            irr: obs.irr,
            viewpoints: obs.paths.len(),
        });
        let scores = counter.scores(rib.pool(), &obs.paths, rib.vantages.len());
        for (asn, hegemony) in scores {
            if asn == obs.origin {
                continue; // trivial transit, lives in prefix_origins
            }
            // Did this transit learn the route from a direct customer on
            // any observed path? The AS after it (toward the origin) is
            // the neighbor it learned from.
            let mut from_customer = false;
            for path in rib.paths_of(obs) {
                if let Some(pos) = path.iter().position(|a| *a == asn) {
                    if let Some(next) = path.get(pos + 1) {
                        if topology.relationship(asn, *next) == Some(Relationship::Customer) {
                            from_customer = true;
                            break;
                        }
                    }
                }
            }
            snapshot.transits.push(TransitRecord {
                prefix: obs.prefix,
                origin: obs.origin,
                transit: asn,
                rpki: obs.rpki,
                irr: obs.irr,
                hegemony,
                from_customer,
            });
        }
    }
    snapshot
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_bgp::{Announcement, PolicyTable, TableCollector};
    use manrs_net::Rir;
    use manrs_topology::{AsInfo, NetworkKind, OrgId};

    fn topo() -> AsTopology {
        // 1 -> 2 -> 3; 1 -> 4; vantages at 1 and 4.
        let mut t = AsTopology::new();
        for asn in 1..=4 {
            t.add_as(AsInfo {
                asn: Asn(asn),
                org: OrgId(asn),
                rir: Rir::Arin,
                country: "US".into(),
                kind: NetworkKind::Transit,
            });
        }
        t.add_provider_customer(Asn(1), Asn(2));
        t.add_provider_customer(Asn(2), Asn(3));
        t.add_provider_customer(Asn(1), Asn(4));
        t
    }

    fn snapshot() -> IhrSnapshot {
        let t = topo();
        let anns = vec![Announcement::new(
            "10.0.0.0/16".parse().unwrap(),
            Asn(3),
            RpkiStatus::Valid,
            IrrStatus::Valid,
        )];
        let rib = TableCollector::new(&t, &PolicyTable::default(), &[Asn(1), Asn(4)])
            .plan()
            .collect(&anns);
        build_snapshot(&rib, &t)
    }

    #[test]
    fn prefix_origin_rows() {
        let s = snapshot();
        assert_eq!(s.prefix_origins.len(), 1);
        let po = &s.prefix_origins[0];
        assert_eq!(po.origin, Asn(3));
        assert_eq!(po.viewpoints, 2);
        assert_eq!(po.rpki, RpkiStatus::Valid);
    }

    #[test]
    fn transit_rows_exclude_origin_and_score_hegemony() {
        let s = snapshot();
        // Paths: [1,2,3] and [4,1,2,3]. Transits: 1 (2/2), 2 (2/2),
        // 4 appears only as a vantage head — 4 is on its own path so it
        // transits with score 1/2.
        let by_as = s.transits_by_as();
        assert!(by_as.contains_key(&Asn(1)));
        assert!(by_as.contains_key(&Asn(2)));
        assert!(!by_as.contains_key(&Asn(3)), "origin must not be a transit row");
        let t2 = &by_as[&Asn(2)][0];
        assert!((t2.hegemony - 1.0).abs() < 1e-12);
        let t4 = &by_as[&Asn(4)][0];
        assert!((t4.hegemony - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_customer_flags() {
        let s = snapshot();
        let by_as = s.transits_by_as();
        // AS2 learned from its customer AS3.
        assert!(by_as[&Asn(2)][0].from_customer);
        // AS1 learned from its customer AS2.
        assert!(by_as[&Asn(1)][0].from_customer);
        // AS4 learned from its *provider* AS1.
        assert!(!by_as[&Asn(4)][0].from_customer);
    }

    #[test]
    fn invisible_observations_excluded() {
        let t = topo();
        let anns = vec![Announcement::new(
            "10.0.0.0/16".parse().unwrap(),
            Asn(99), // unknown origin: reaches nobody
            RpkiStatus::Valid,
            IrrStatus::Valid,
        )];
        let rib = TableCollector::new(&t, &PolicyTable::default(), &[Asn(1)]).plan().collect(&anns);
        let s = build_snapshot(&rib, &t);
        assert!(s.prefix_origins.is_empty());
        assert!(s.transits.is_empty());
    }

    #[test]
    fn index_patches_all_rows_of_a_pair() {
        let mut s = snapshot();
        let index = SnapshotIndex::build(&s);
        assert_eq!(index.pair_count(), 1);
        let prefix: Prefix = "10.0.0.0/16".parse().unwrap();
        let transit_rows = s.transits.len();
        assert!(transit_rows > 0);

        let changed =
            index.patch(&mut s, prefix, Asn(3), RpkiStatus::InvalidAsn, IrrStatus::NotFound);
        assert_eq!(changed, 1 + transit_rows, "prefix-origin row plus every transit row");
        assert!(s.prefix_origins.iter().all(|po| po.rpki == RpkiStatus::InvalidAsn));
        assert!(s.transits.iter().all(|t| t.irr == IrrStatus::NotFound));

        // Idempotent: re-patching the same statuses changes nothing.
        assert_eq!(
            index.patch(&mut s, prefix, Asn(3), RpkiStatus::InvalidAsn, IrrStatus::NotFound),
            0
        );
        // Unknown pairs are a no-op.
        assert_eq!(
            index.patch(&mut s, prefix, Asn(9), RpkiStatus::Valid, IrrStatus::Valid),
            0
        );
    }

    #[test]
    fn grouping_helpers() {
        let s = snapshot();
        assert_eq!(s.origins_by_as().len(), 1);
        assert_eq!(s.origins_by_as()[&Asn(3)].len(), 1);
    }
}
