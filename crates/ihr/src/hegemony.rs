//! AS hegemony.
//!
//! Fontugne et al. define AS hegemony as the average, over BGP viewpoints,
//! of the fraction of paths toward some destination that cross a given
//! AS — after discarding the most and least biased viewpoints (a 10%
//! two-sided trim) so that one collector peer cannot dominate the score.
//! For a single prefix with one path per viewpoint, the per-viewpoint
//! fraction is an indicator, and hegemony reduces to the trimmed mean of
//! indicators. Scores sit in [0, 1]; the origin trivially scores 1.

use manrs_bgp::{PathId, PathPool};
use manrs_net::Asn;
use std::collections::{BTreeMap, HashMap};

/// The fraction trimmed from *each* side of the viewpoint distribution
/// (10%, following the AS hegemony paper).
pub const TRIM_FRACTION: f64 = 0.1;

/// Computes hegemony scores for every AS appearing on `paths`, where
/// each path is one viewpoint's AS path toward the destination
/// (viewpoint first, origin last).
///
/// `viewpoints` is the total number of viewpoints consulted — including
/// those with *no* route to the destination, which contribute
/// zero-indicators exactly as they do in the published estimator. This
/// matters: scoring only over the viewpoints that saw a route would
/// inflate every AS on a poorly-visible (e.g. heavily filtered)
/// announcement. When `viewpoints < paths.len()` the path count is used.
///
/// Returns an empty map when there are no paths. With `v` viewpoints,
/// `floor(v * 0.1)` are dropped from each end of each AS's indicator
/// distribution; for small `v` the trim vanishes, matching the
/// published estimator's behaviour at low viewpoint counts.
pub fn hegemony_scores(paths: &[Vec<Asn>], viewpoints: usize) -> BTreeMap<Asn, f64> {
    let v = viewpoints.max(paths.len());
    let mut scores = BTreeMap::new();
    if v == 0 || paths.is_empty() {
        return scores;
    }
    let trim = ((v as f64) * TRIM_FRACTION).floor() as usize;
    let kept = v - 2 * trim;
    if kept == 0 {
        return scores;
    }
    // Count, per AS, how many viewpoints' paths contain it. The counter
    // is a HashMap (O(1) updates on the hot loop); ordering is restored
    // once at the end when collecting into the BTreeMap result.
    let mut on_paths: HashMap<Asn, usize> = HashMap::new();
    // One sort+dedup buffer reused across paths instead of a fresh
    // BTreeSet per path.
    let mut unique: Vec<Asn> = Vec::new();
    for path in paths {
        // Dedup within a path defensively: a loop would double-count.
        unique.clear();
        unique.extend_from_slice(path);
        unique.sort_unstable();
        unique.dedup();
        for &asn in &unique {
            *on_paths.entry(asn).or_insert(0) += 1;
        }
    }
    // Trimmed mean of `count` ones and `v - count` zeros. The sorted
    // indicator list is [0 × zeros, 1 × ones]; the low-side trim removes
    // zeros first (then ones if it runs out), the high-side trim removes
    // ones first.
    for (asn, count) in on_paths {
        let ones = count.min(v);
        let zeros = v - ones;
        let low_from_zeros = trim.min(zeros);
        let low_from_ones = trim - low_from_zeros;
        let high_from_ones = trim.min(ones);
        let surviving_ones = ones.saturating_sub(low_from_ones + high_from_ones);
        let score = surviving_ones as f64 / kept as f64;
        if score > 0.0 {
            scores.insert(asn, score);
        }
    }
    scores
}

/// Reusable flat-counter hegemony over pool-interned paths.
///
/// [`hegemony_scores`] hashes every ASN of every path into a fresh
/// `HashMap` per (prefix, origin) pair. Interned paths come with a dense
/// `u32` id per distinct ASN (see `manrs_bgp::PathPool`), so the counter
/// can be a flat `Vec` indexed by dense id and reused across pairs —
/// no hashing, no per-pair allocation. Scores are bit-for-bit identical
/// to [`hegemony_scores`] over the materialized paths.
#[derive(Debug, Default)]
pub struct HegemonyCounter {
    /// Per dense id: how many of the current pair's paths contain it.
    counts: Vec<u32>,
    /// Per dense id: stamp of the last path that touched it (in-path
    /// dedup, so loops don't double-count).
    mark: Vec<u32>,
    /// Dense ids with a nonzero count this pair (reset list).
    touched: Vec<u32>,
    /// Monotonic per-path stamp.
    stamp: u32,
}

impl HegemonyCounter {
    /// A counter with no capacity; it grows to the pool's universe on
    /// first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// [`hegemony_scores`] over interned paths: `paths` hold ids into
    /// `pool`, `viewpoints` has the same semantics as there.
    pub fn scores(
        &mut self,
        pool: &PathPool,
        paths: &[PathId],
        viewpoints: usize,
    ) -> BTreeMap<Asn, f64> {
        let v = viewpoints.max(paths.len());
        let mut scores = BTreeMap::new();
        if v == 0 || paths.is_empty() {
            return scores;
        }
        let trim = ((v as f64) * TRIM_FRACTION).floor() as usize;
        let kept = v - 2 * trim;
        if kept == 0 {
            return scores;
        }
        let universe = pool.universe().len();
        if self.counts.len() < universe {
            self.counts.resize(universe, 0);
            self.mark.resize(universe, 0);
        }
        for &id in paths {
            self.stamp += 1;
            for &d in pool.dense_path(id) {
                let d = d as usize;
                if self.mark[d] != self.stamp {
                    self.mark[d] = self.stamp;
                    if self.counts[d] == 0 {
                        self.touched.push(d as u32);
                    }
                    self.counts[d] += 1;
                }
            }
        }
        for &d in &self.touched {
            let count = self.counts[d as usize] as usize;
            self.counts[d as usize] = 0;
            let ones = count.min(v);
            let zeros = v - ones;
            let low_from_zeros = trim.min(zeros);
            let low_from_ones = trim - low_from_zeros;
            let high_from_ones = trim.min(ones);
            let surviving_ones = ones.saturating_sub(low_from_ones + high_from_ones);
            let score = surviving_ones as f64 / kept as f64;
            if score > 0.0 {
                scores.insert(pool.universe()[d as usize], score);
            }
        }
        self.touched.clear();
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_bgp::PathInterner;

    fn paths(specs: &[&[u32]]) -> Vec<Vec<Asn>> {
        specs
            .iter()
            .map(|p| p.iter().map(|a| Asn(*a)).collect())
            .collect()
    }

    #[test]
    fn empty_input() {
        assert!(hegemony_scores(&[], 10).is_empty());
    }

    #[test]
    fn single_path_scores_all_ases_one() {
        let scores = hegemony_scores(&paths(&[&[1, 2, 3]]), 1);
        assert_eq!(scores.len(), 3);
        for asn in [1, 2, 3] {
            assert_eq!(scores[&Asn(asn)], 1.0);
        }
    }

    #[test]
    fn origin_scores_one_everywhere() {
        // Origin 9 on every path.
        let scores = hegemony_scores(&paths(&[&[1, 2, 9], &[3, 4, 9], &[5, 9]]), 3);
        assert_eq!(scores[&Asn(9)], 1.0);
    }

    #[test]
    fn fractional_scores_without_trim() {
        // 4 viewpoints (< 10 so trim = 0): AS2 on 2 of 4 paths.
        let scores = hegemony_scores(&paths(&[&[1, 2, 9], &[3, 2, 9], &[4, 9], &[5, 9]]), 4);
        assert_eq!(scores[&Asn(2)], 0.5);
        assert_eq!(scores[&Asn(9)], 1.0);
        assert_eq!(scores[&Asn(1)], 0.25);
    }

    #[test]
    fn trim_drops_outlier_viewpoints() {
        // 10 viewpoints: AS7 appears on exactly 1 path. Trim = 1 per
        // side; the single 1 is trimmed away → score 0 → absent.
        let mut ps: Vec<Vec<Asn>> = (0..9).map(|i| vec![Asn(100 + i), Asn(9)]).collect();
        ps.push(vec![Asn(50), Asn(7), Asn(9)]);
        let scores = hegemony_scores(&ps, 10);
        assert!(!scores.contains_key(&Asn(7)), "outlier should trim to zero");
        // The origin survives trimming: 10 ones, trim 1 each side → 8/8.
        assert_eq!(scores[&Asn(9)], 1.0);
    }

    #[test]
    fn trim_keeps_majority_ases() {
        // 10 viewpoints, AS7 on 5 paths: ones=5, zeros=5, trim=1.
        // low trim takes a zero, high trim takes a one → 4 ones / 8 kept.
        let mut ps: Vec<Vec<Asn>> = (0..5).map(|i| vec![Asn(100 + i), Asn(7), Asn(9)]).collect();
        ps.extend((0..5).map(|i| vec![Asn(200 + i), Asn(9)]));
        let scores = hegemony_scores(&ps, 10);
        assert!((scores[&Asn(7)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn loops_do_not_double_count() {
        // Defensive: a pathological path repeating AS2.
        let scores = hegemony_scores(&[vec![Asn(1), Asn(2), Asn(2), Asn(9)], vec![Asn(3), Asn(9)]], 2);
        assert_eq!(scores[&Asn(2)], 0.5);
    }

    #[test]
    fn scores_bounded() {
        let ps = paths(&[&[1, 2, 9], &[2, 9], &[3, 2, 9], &[4, 9], &[1, 9]]);
        for (_, s) in hegemony_scores(&ps, 5) {
            assert!(s > 0.0 && s <= 1.0);
        }
    }

    /// The dense counter matches the HashMap estimator exactly —
    /// including loops (in-path dedup), trims, and counter reuse across
    /// pairs with different path sets.
    #[test]
    fn counter_matches_hashmap_scores() {
        let pairs: Vec<Vec<Vec<Asn>>> = vec![
            paths(&[&[1, 2, 9], &[2, 9], &[3, 2, 9], &[4, 9], &[1, 9]]),
            paths(&[&[1, 2, 2, 9], &[3, 9]]), // loop: dedup in path
            (0..12).map(|i| vec![Asn(100 + i), Asn(7), Asn(9)]).collect(),
            vec![],
        ];
        let mut interner = PathInterner::new();
        let interned: Vec<Vec<PathId>> = pairs
            .iter()
            .map(|ps| ps.iter().map(|p| interner.intern(p)).collect())
            .collect();
        let pool = interner.into_pool();
        let mut counter = HegemonyCounter::new();
        for (ps, ids) in pairs.iter().zip(&interned) {
            for viewpoints in [0, 1, ps.len(), 20] {
                assert_eq!(
                    counter.scores(&pool, ids, viewpoints),
                    hegemony_scores(ps, viewpoints),
                    "paths={ps:?} viewpoints={viewpoints}"
                );
            }
        }
    }
}
