//! AS hegemony.
//!
//! Fontugne et al. define AS hegemony as the average, over BGP viewpoints,
//! of the fraction of paths toward some destination that cross a given
//! AS — after discarding the most and least biased viewpoints (a 10%
//! two-sided trim) so that one collector peer cannot dominate the score.
//! For a single prefix with one path per viewpoint, the per-viewpoint
//! fraction is an indicator, and hegemony reduces to the trimmed mean of
//! indicators. Scores sit in [0, 1]; the origin trivially scores 1.
//!
//! There is exactly one scoring implementation: [`HegemonyCounter`],
//! a flat dense-id counter over pool-interned paths. The original
//! [`hegemony_scores`] free function survives as a thin wrapper that
//! interns its materialized paths into a throwaway pool and defers to
//! the counter.

use manrs_bgp::{PathId, PathInterner, PathPool};
use manrs_net::Asn;
use std::collections::BTreeMap;

/// The fraction trimmed from *each* side of the viewpoint distribution
/// (10%, following the AS hegemony paper).
pub const TRIM_FRACTION: f64 = 0.1;

/// Trim parameters for `v` viewpoints: `(trim, kept)` where `trim`
/// indicators are dropped from each side and `kept = v - 2·trim`
/// survive. `None` when nothing survives (`v == 0` or the trim eats
/// the whole distribution).
#[inline]
fn trim_params(v: usize) -> Option<(usize, usize)> {
    if v == 0 {
        return None;
    }
    let trim = ((v as f64) * TRIM_FRACTION).floor() as usize;
    let kept = v - 2 * trim;
    if kept == 0 {
        None
    } else {
        Some((trim, kept))
    }
}

/// Trimmed mean of `count` ones and `v - count` zeros. The sorted
/// indicator list is [0 × zeros, 1 × ones]; the low-side trim removes
/// zeros first (then ones if it runs out), the high-side trim removes
/// ones first.
#[inline]
fn trimmed_mean(count: usize, v: usize, trim: usize, kept: usize) -> f64 {
    let ones = count.min(v);
    let zeros = v - ones;
    let low_from_zeros = trim.min(zeros);
    let low_from_ones = trim - low_from_zeros;
    let high_from_ones = trim.min(ones);
    let surviving_ones = ones.saturating_sub(low_from_ones + high_from_ones);
    surviving_ones as f64 / kept as f64
}

/// Computes hegemony scores for every AS appearing on `paths`, where
/// each path is one viewpoint's AS path toward the destination
/// (viewpoint first, origin last).
///
/// `viewpoints` is the total number of viewpoints consulted — including
/// those with *no* route to the destination, which contribute
/// zero-indicators exactly as they do in the published estimator. This
/// matters: scoring only over the viewpoints that saw a route would
/// inflate every AS on a poorly-visible (e.g. heavily filtered)
/// announcement. When `viewpoints < paths.len()` the path count is used.
///
/// Returns an empty map when there are no paths. With `v` viewpoints,
/// `floor(v * 0.1)` are dropped from each end of each AS's indicator
/// distribution; for small `v` the trim vanishes, matching the
/// published estimator's behaviour at low viewpoint counts.
///
/// This is a compatibility wrapper: it interns `paths` into a
/// throwaway pool and defers to [`HegemonyCounter::scores`]. Callers
/// that already hold interned paths should use the counter directly
/// and skip the interning cost.
pub fn hegemony_scores(paths: &[Vec<Asn>], viewpoints: usize) -> BTreeMap<Asn, f64> {
    if paths.is_empty() {
        return BTreeMap::new();
    }
    // Duplicate paths intern to the same id but stay distinct entries
    // in `ids`, and the counter counts per id occurrence — so two
    // viewpoints sharing an identical path still count twice, exactly
    // as the original per-path estimator did.
    let mut interner = PathInterner::new();
    let ids: Vec<PathId> = paths.iter().map(|p| interner.intern(p)).collect();
    let pool = interner.into_pool();
    HegemonyCounter::new().scores(&pool, &ids, viewpoints)
}

/// Reusable flat-counter hegemony over pool-interned paths.
///
/// Interned paths come with a dense `u32` id per distinct ASN (see
/// `manrs_bgp::PathPool`), so the counter is a flat `Vec` indexed by
/// dense id and reused across (prefix, origin) pairs — no hashing, no
/// per-pair allocation once warm. [`hegemony_scores`] is a thin
/// wrapper over this type for callers holding materialized paths.
#[derive(Debug, Default)]
pub struct HegemonyCounter {
    /// Per dense id: how many of the current pair's paths contain it.
    counts: Vec<u32>,
    /// Per dense id: stamp of the last path that touched it (in-path
    /// dedup, so loops don't double-count).
    mark: Vec<u32>,
    /// Dense ids with a nonzero count this pair (reset list).
    touched: Vec<u32>,
    /// Monotonic per-path stamp.
    stamp: u32,
}

impl HegemonyCounter {
    /// A counter with no capacity; it grows to the pool's universe on
    /// first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts, per dense id, how many of `paths` contain it (with
    /// in-path dedup). Fills `counts` and the `touched` reset list;
    /// the caller must drain both.
    fn count_paths(&mut self, pool: &PathPool, paths: &[PathId]) {
        let universe = pool.universe().len();
        if self.counts.len() < universe {
            self.counts.resize(universe, 0);
            self.mark.resize(universe, 0);
        }
        for &id in paths {
            self.stamp += 1;
            for &d in pool.dense_path(id) {
                let d = d as usize;
                if self.mark[d] != self.stamp {
                    self.mark[d] = self.stamp;
                    if self.counts[d] == 0 {
                        self.touched.push(d as u32);
                    }
                    self.counts[d] += 1;
                }
            }
        }
    }

    /// Hegemony over interned paths: `paths` hold ids into `pool`,
    /// `viewpoints` has the same semantics as [`hegemony_scores`].
    /// Only strictly positive scores are returned.
    pub fn scores(
        &mut self,
        pool: &PathPool,
        paths: &[PathId],
        viewpoints: usize,
    ) -> BTreeMap<Asn, f64> {
        let v = viewpoints.max(paths.len());
        let mut scores = BTreeMap::new();
        if paths.is_empty() {
            return scores;
        }
        let Some((trim, kept)) = trim_params(v) else {
            return scores;
        };
        self.count_paths(pool, paths);
        for &d in &self.touched {
            let count = self.counts[d as usize] as usize;
            self.counts[d as usize] = 0;
            let score = trimmed_mean(count, v, trim, kept);
            if score > 0.0 {
                scores.insert(pool.universe()[d as usize], score);
            }
        }
        self.touched.clear();
        scores
    }

    /// Adds this destination's hegemony scores into `mass`, indexed by
    /// dense id (`mass[d] += score(universe[d])`). Semantics match
    /// [`HegemonyCounter::scores`]; the only difference is the
    /// accumulation target — a caller-owned flat vector instead of a
    /// fresh `BTreeMap` — which keeps whole-table aggregation (one
    /// accumulate per visible pair) allocation-free once warm.
    ///
    /// `mass` must cover the pool's universe; shorter slices panic.
    pub fn accumulate_mass(
        &mut self,
        pool: &PathPool,
        paths: &[PathId],
        viewpoints: usize,
        mass: &mut [f64],
    ) {
        let v = viewpoints.max(paths.len());
        if paths.is_empty() {
            return;
        }
        let Some((trim, kept)) = trim_params(v) else {
            return;
        };
        self.count_paths(pool, paths);
        for &d in &self.touched {
            let count = self.counts[d as usize] as usize;
            self.counts[d as usize] = 0;
            mass[d as usize] += trimmed_mean(count, v, trim, kept);
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// The original pre-consolidation estimator (HashMap count per
    /// pair), kept verbatim as the equivalence oracle for the wrapper
    /// and the counter. Any drift between this and the dense-id path
    /// is a scoring bug.
    fn legacy_hegemony_scores(paths: &[Vec<Asn>], viewpoints: usize) -> BTreeMap<Asn, f64> {
        let v = viewpoints.max(paths.len());
        let mut scores = BTreeMap::new();
        if v == 0 || paths.is_empty() {
            return scores;
        }
        let trim = ((v as f64) * TRIM_FRACTION).floor() as usize;
        let kept = v - 2 * trim;
        if kept == 0 {
            return scores;
        }
        let mut on_paths: HashMap<Asn, usize> = HashMap::new();
        let mut unique: Vec<Asn> = Vec::new();
        for path in paths {
            unique.clear();
            unique.extend_from_slice(path);
            unique.sort_unstable();
            unique.dedup();
            for &asn in &unique {
                *on_paths.entry(asn).or_insert(0) += 1;
            }
        }
        for (asn, count) in on_paths {
            let ones = count.min(v);
            let zeros = v - ones;
            let low_from_zeros = trim.min(zeros);
            let low_from_ones = trim - low_from_zeros;
            let high_from_ones = trim.min(ones);
            let surviving_ones = ones.saturating_sub(low_from_ones + high_from_ones);
            let score = surviving_ones as f64 / kept as f64;
            if score > 0.0 {
                scores.insert(asn, score);
            }
        }
        scores
    }

    fn paths(specs: &[&[u32]]) -> Vec<Vec<Asn>> {
        specs
            .iter()
            .map(|p| p.iter().map(|a| Asn(*a)).collect())
            .collect()
    }

    #[test]
    fn empty_input() {
        assert!(hegemony_scores(&[], 10).is_empty());
    }

    #[test]
    fn single_path_scores_all_ases_one() {
        let scores = hegemony_scores(&paths(&[&[1, 2, 3]]), 1);
        assert_eq!(scores.len(), 3);
        for asn in [1, 2, 3] {
            assert_eq!(scores[&Asn(asn)], 1.0);
        }
    }

    #[test]
    fn origin_scores_one_everywhere() {
        // Origin 9 on every path.
        let scores = hegemony_scores(&paths(&[&[1, 2, 9], &[3, 4, 9], &[5, 9]]), 3);
        assert_eq!(scores[&Asn(9)], 1.0);
    }

    #[test]
    fn fractional_scores_without_trim() {
        // 4 viewpoints (< 10 so trim = 0): AS2 on 2 of 4 paths.
        let scores = hegemony_scores(&paths(&[&[1, 2, 9], &[3, 2, 9], &[4, 9], &[5, 9]]), 4);
        assert_eq!(scores[&Asn(2)], 0.5);
        assert_eq!(scores[&Asn(9)], 1.0);
        assert_eq!(scores[&Asn(1)], 0.25);
    }

    #[test]
    fn trim_drops_outlier_viewpoints() {
        // 10 viewpoints: AS7 appears on exactly 1 path. Trim = 1 per
        // side; the single 1 is trimmed away → score 0 → absent.
        let mut ps: Vec<Vec<Asn>> = (0..9).map(|i| vec![Asn(100 + i), Asn(9)]).collect();
        ps.push(vec![Asn(50), Asn(7), Asn(9)]);
        let scores = hegemony_scores(&ps, 10);
        assert!(!scores.contains_key(&Asn(7)), "outlier should trim to zero");
        // The origin survives trimming: 10 ones, trim 1 each side → 8/8.
        assert_eq!(scores[&Asn(9)], 1.0);
    }

    #[test]
    fn trim_keeps_majority_ases() {
        // 10 viewpoints, AS7 on 5 paths: ones=5, zeros=5, trim=1.
        // low trim takes a zero, high trim takes a one → 4 ones / 8 kept.
        let mut ps: Vec<Vec<Asn>> = (0..5).map(|i| vec![Asn(100 + i), Asn(7), Asn(9)]).collect();
        ps.extend((0..5).map(|i| vec![Asn(200 + i), Asn(9)]));
        let scores = hegemony_scores(&ps, 10);
        assert!((scores[&Asn(7)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn loops_do_not_double_count() {
        // Defensive: a pathological path repeating AS2.
        let scores = hegemony_scores(&[vec![Asn(1), Asn(2), Asn(2), Asn(9)], vec![Asn(3), Asn(9)]], 2);
        assert_eq!(scores[&Asn(2)], 0.5);
    }

    #[test]
    fn scores_bounded() {
        let ps = paths(&[&[1, 2, 9], &[2, 9], &[3, 2, 9], &[4, 9], &[1, 9]]);
        for (_, s) in hegemony_scores(&ps, 5) {
            assert!(s > 0.0 && s <= 1.0);
        }
    }

    /// Shared scenarios for the oracle tests: loops, duplicate paths
    /// across viewpoints, trim-active sizes, empties.
    fn scenario_pairs() -> Vec<Vec<Vec<Asn>>> {
        vec![
            paths(&[&[1, 2, 9], &[2, 9], &[3, 2, 9], &[4, 9], &[1, 9]]),
            paths(&[&[1, 2, 2, 9], &[3, 9]]), // loop: dedup in path
            paths(&[&[1, 2, 9], &[1, 2, 9], &[3, 9]]), // duplicate path, two viewpoints
            (0..12).map(|i| vec![Asn(100 + i), Asn(7), Asn(9)]).collect(),
            vec![],
        ]
    }

    /// The consolidated wrapper reproduces the pre-consolidation
    /// HashMap estimator exactly, across trim regimes, duplicate
    /// paths, loops, and empty inputs.
    #[test]
    fn wrapper_matches_legacy_estimator() {
        for ps in scenario_pairs() {
            for viewpoints in [0, 1, ps.len(), 10, 20, 50] {
                assert_eq!(
                    hegemony_scores(&ps, viewpoints),
                    legacy_hegemony_scores(&ps, viewpoints),
                    "paths={ps:?} viewpoints={viewpoints}"
                );
            }
        }
    }

    /// The dense counter matches the legacy estimator exactly —
    /// including loops (in-path dedup), trims, and counter reuse across
    /// pairs with different path sets.
    #[test]
    fn counter_matches_legacy_scores() {
        let pairs = scenario_pairs();
        let mut interner = PathInterner::new();
        let interned: Vec<Vec<PathId>> = pairs
            .iter()
            .map(|ps| ps.iter().map(|p| interner.intern(p)).collect())
            .collect();
        let pool = interner.into_pool();
        let mut counter = HegemonyCounter::new();
        for (ps, ids) in pairs.iter().zip(&interned) {
            for viewpoints in [0, 1, ps.len(), 20] {
                assert_eq!(
                    counter.scores(&pool, ids, viewpoints),
                    legacy_hegemony_scores(ps, viewpoints),
                    "paths={ps:?} viewpoints={viewpoints}"
                );
            }
        }
    }

    /// `accumulate_mass` deposits exactly the `scores` values at each
    /// AS's dense slot and accumulates across destinations.
    #[test]
    fn accumulate_mass_matches_scores() {
        let pairs = scenario_pairs();
        let mut interner = PathInterner::new();
        let interned: Vec<Vec<PathId>> = pairs
            .iter()
            .map(|ps| ps.iter().map(|p| interner.intern(p)).collect())
            .collect();
        let pool = interner.into_pool();
        let mut counter = HegemonyCounter::new();
        let mut mass = vec![0.0f64; pool.universe().len()];
        let mut expected: BTreeMap<Asn, f64> = BTreeMap::new();
        for ids in &interned {
            counter.accumulate_mass(&pool, ids, 10, &mut mass);
            for (asn, s) in counter.scores(&pool, ids, 10) {
                *expected.entry(asn).or_insert(0.0) += s;
            }
        }
        for (d, asn) in pool.universe().iter().enumerate() {
            let want = expected.get(asn).copied().unwrap_or(0.0);
            assert!(
                (mass[d] - want).abs() < 1e-12,
                "dense {d} ({asn:?}): {} vs {}",
                mass[d],
                want
            );
        }
    }
}
