//! Vantage-point value optimization.
//!
//! Reverse valley-free collection costs one backward traversal per
//! (vantage × acceptance-class), so wall-clock is linear in the vantage
//! count — yet most vantages are redundant: a handful of well-placed
//! peers observe almost every AS link the full population does. The
//! simulator uniquely holds full-vantage ground truth, so this module
//! both *selects* a minimal high-value vantage set and *quantifies* the
//! bias of using it:
//!
//! * [`VantageSelector::rank`] scores every vantage by marginal
//!   coverage — the AS links it is first to observe, weighted by how
//!   many observations cross them — via a greedy weighted set-cover
//!   over the interned [`PathPool`]'s dense ids (no per-observation
//!   hashing), and emits an ordered [`VantageRanking`].
//! * [`VantageSelector::select_within`] walks ranking prefixes and
//!   returns the smallest one whose hegemony and conformance results
//!   stay within a caller-given tolerance of the full-vantage run —
//!   verified against the actual full table, not estimated.
//! * [`BiasReport`] makes the speed/fidelity trade-off explicit:
//!   per-AS hegemony delta distribution, conformance-share drift, and
//!   missed-link count vs ground truth.
//!
//! Everything is integer-ordered (weights are observation counts) and
//! evaluated in deterministic order, so the ranking — and every table
//! derived from a selected set — is bit-for-bit identical for any
//! thread count. The selected [`VantageSet`] plugs straight into
//! `CollectionPlan::vantage_set`, whose `Auto` cost model scales
//! reverse cost with the *selected* vantage count.
//!
//! [`PathPool`]: manrs_bgp::PathPool
//! [`VantageSet`]: manrs_bgp::VantageSet

use crate::hegemony::HegemonyCounter;
use manrs_bgp::{par_map, CollectedRib, ParallelConfig, VantageSet};
use manrs_net::Asn;
use serde::{Deserialize, Serialize};

/// Sentinel for "path not attributable to any vantage" (defensive: a
/// collected path always starts at its vantage).
const NO_SLOT: u32 = u32::MAX;

/// One vantage's value scores, in greedy pick order within a
/// [`VantageRanking`].
///
/// `marginal_*` values are relative to the vantages picked before this
/// one: the links (and link weight) this vantage was first to cover.
/// `standalone_*` values ignore the rest of the ranking — what the
/// vantage would cover alone — and drive the naive top-k baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VantageScore {
    /// The vantage AS.
    pub vantage: Asn,
    /// Its slot in the RIB's original vantage order.
    pub slot: u32,
    /// Distinct AS links this pick covered first.
    pub marginal_links: usize,
    /// Total observation weight of those links (each link weighted by
    /// how many observation paths cross it, from any vantage).
    pub marginal_weight: u64,
    /// `marginal_weight` as a fraction of the total link weight.
    pub marginal_mass: f64,
    /// Distinct AS links this vantage observes at all.
    pub standalone_links: usize,
    /// Total observation weight of the links it observes.
    pub standalone_weight: u64,
    /// `standalone_weight` as a fraction of the total link weight.
    pub standalone_mass: f64,
}

/// The full greedy ranking of a RIB's vantages, most valuable first,
/// with the coverage totals needed to read scores as fractions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct VantageRanking {
    /// Per-vantage scores in greedy pick order (every vantage appears
    /// exactly once; redundant vantages trail with zero marginals).
    pub scores: Vec<VantageScore>,
    /// The RIB's vantages in their original collection order —
    /// [`VantageRanking::select`] emits subsets in this order so that
    /// collecting on a subset equals projecting the full RIB onto it.
    pub rib_vantages: Vec<Asn>,
    /// Distinct AS links observed by the full vantage population.
    pub total_links: usize,
    /// Total observation weight across those links.
    pub total_weight: u64,
}

impl VantageRanking {
    /// The top-`k` prefix of the ranking as a [`VantageSet`], emitted
    /// in original RIB vantage order (not greedy order). `k` saturates
    /// at the vantage count.
    pub fn select(&self, k: usize) -> VantageSet {
        let k = k.min(self.scores.len());
        let mut slots: Vec<u32> = self.scores[..k].iter().map(|s| s.slot).collect();
        slots.sort_unstable();
        VantageSet::new(slots.iter().map(|&s| self.rib_vantages[s as usize]).collect())
    }

    /// The naive baseline: the `k` vantages with the highest
    /// *standalone* weight (ties broken by RIB slot), ignoring
    /// redundancy between them. Emitted in RIB order like
    /// [`VantageRanking::select`].
    pub fn naive_top(&self, k: usize) -> VantageSet {
        let k = k.min(self.scores.len());
        let mut order: Vec<&VantageScore> = self.scores.iter().collect();
        order.sort_by(|a, b| {
            b.standalone_weight.cmp(&a.standalone_weight).then(a.slot.cmp(&b.slot))
        });
        let mut slots: Vec<u32> = order[..k].iter().map(|s| s.slot).collect();
        slots.sort_unstable();
        VantageSet::new(slots.iter().map(|&s| self.rib_vantages[s as usize]).collect())
    }

    /// Distinct links covered by the top-`k` prefix.
    pub fn covered_links(&self, k: usize) -> usize {
        self.scores[..k.min(self.scores.len())].iter().map(|s| s.marginal_links).sum()
    }

    /// Link weight covered by the top-`k` prefix.
    pub fn covered_weight(&self, k: usize) -> u64 {
        self.scores[..k.min(self.scores.len())].iter().map(|s| s.marginal_weight).sum()
    }
}

/// Measured bias of collecting from a vantage subset instead of the
/// full population, computed against the actual full-vantage RIB (the
/// projection of the full RIB onto a subset *is* what collecting with
/// that subset produces — per-vantage paths are independent).
///
/// Hegemony deltas compare per-AS mean hegemony over all visible
/// (prefix, origin) pairs; conformance drift compares the visible
/// conformant / unconformant shares of the whole table. Both live in
/// [0, 1], so one tolerance bounds both.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiasReport {
    /// Vantages in the subset (that exist in the RIB).
    pub selected: usize,
    /// Vantages in the full population.
    pub total_vantages: usize,
    /// Pairs visible from the full population.
    pub visible_full: usize,
    /// Pairs visible from the subset.
    pub visible_selected: usize,
    /// ASes with nonzero hegemony mass under either view.
    pub ases_scored: usize,
    /// Mean absolute per-AS hegemony delta.
    pub hegemony_mean_abs_delta: f64,
    /// Maximum absolute per-AS hegemony delta.
    pub hegemony_max_abs_delta: f64,
    /// 95th-percentile absolute per-AS hegemony delta.
    pub hegemony_p95_abs_delta: f64,
    /// Max drift across the visible-conformant and visible-unconformant
    /// shares of the table.
    pub max_conformance_drift: f64,
    /// AS links the full population observes but the subset misses.
    pub missed_links: usize,
    /// AS links the full population observes.
    pub total_links: usize,
}

impl BiasReport {
    /// True when both hegemony and conformance drift are within `tol`.
    pub fn within(&self, tol: f64) -> bool {
        self.hegemony_max_abs_delta <= tol && self.max_conformance_drift <= tol
    }

    /// A zero-bias report for the full set (or an empty RIB).
    fn exact(selected: usize, total_vantages: usize, visible: usize, links: usize) -> Self {
        BiasReport {
            selected,
            total_vantages,
            visible_full: visible,
            visible_selected: visible,
            ases_scored: 0,
            hegemony_mean_abs_delta: 0.0,
            hegemony_max_abs_delta: 0.0,
            hegemony_p95_abs_delta: 0.0,
            max_conformance_drift: 0.0,
            missed_links: 0,
            total_links: links,
        }
    }
}

/// Reusable working state for [`VantageSelector`]: every buffer the
/// prepare / greedy / bias passes need, so a warm selector re-ranks
/// with **zero** heap allocations on the serial path (gated by
/// `bench_vantage`'s counting allocator).
#[derive(Debug, Default)]
pub struct SelectionScratch {
    /// (vantage ASN, RIB slot), sorted by ASN for binary search.
    vantage_slots: Vec<(Asn, u32)>,
    /// Per pool path: owning vantage slot (`NO_SLOT` if unattributable).
    path_vantage: Vec<u32>,
    /// Per pool path: number of observations referencing it.
    path_weight: Vec<u64>,
    /// (link key, vantage slot, path index) triples before aggregation.
    triples: Vec<(u64, u32, u32)>,
    /// Distinct link keys, sorted; position = dense link id.
    link_keys: Vec<u64>,
    /// Per link: total observation weight across all paths crossing it.
    link_weight: Vec<u64>,
    /// (slot << 32 | link id), sorted + deduped → the per-vantage CSR.
    packed: Vec<u64>,
    /// CSR offsets into `vlink_ids`, one range per vantage slot.
    vlink_offsets: Vec<u32>,
    /// CSR payload: distinct link ids observed per vantage.
    vlink_ids: Vec<u32>,
    /// Per link: covered flag for the greedy / bias passes.
    covered: Vec<bool>,
    /// Vantage slots not yet picked by the greedy pass.
    remaining: Vec<u32>,
    /// Per remaining candidate: (gain, new links) this round.
    gain_buf: Vec<(u64, u32)>,
    /// Per vantage slot: membership flag for bias projection.
    sel_mark: Vec<bool>,
    /// Subset path-id buffer for bias projection.
    sel_paths: Vec<manrs_bgp::PathId>,
    /// Per dense ASN id: full-population hegemony mass.
    mass_full: Vec<f64>,
    /// Per dense ASN id: subset hegemony mass.
    mass_sel: Vec<f64>,
    /// Per-AS |delta| buffer for the percentile stats.
    deltas: Vec<f64>,
    /// Dense-id hegemony counter shared by both mass passes.
    counter: HegemonyCounter,
    /// True once the link structures describe the current RIB.
    prepared: bool,
}

impl SelectionScratch {
    /// Empty scratch; buffers grow to their high-water marks on first
    /// use and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Scores a [`CollectedRib`]'s vantages by marginal coverage and
/// selects minimal subsets within a measured bias tolerance. See the
/// module docs for the algorithm; construction is free — all work
/// happens in [`VantageSelector::rank`] / [`rank_into`] /
/// [`select_within`].
///
/// [`rank_into`]: VantageSelector::rank_into
/// [`select_within`]: VantageSelector::select_within
#[derive(Debug, Clone)]
pub struct VantageSelector<'a> {
    rib: &'a CollectedRib,
    parallel: ParallelConfig,
}

impl<'a> VantageSelector<'a> {
    /// A selector over `rib` with the thread count taken from
    /// `MANRS_THREADS` (auto-detected when unset).
    pub fn new(rib: &'a CollectedRib) -> Self {
        VantageSelector { rib, parallel: ParallelConfig::from_env() }
    }

    /// Overrides the parallelism configuration. The ranking is
    /// bit-for-bit identical for every thread count; parallelism only
    /// affects wall-clock of the per-round candidate evaluation.
    pub fn parallel(mut self, cfg: ParallelConfig) -> Self {
        self.parallel = cfg;
        self
    }

    /// Ranks every vantage by greedy marginal coverage. Convenience
    /// wrapper over [`VantageSelector::rank_into`] with throwaway
    /// scratch.
    pub fn rank(&self) -> VantageRanking {
        let mut scratch = SelectionScratch::new();
        let mut out = VantageRanking::default();
        self.rank_into(&mut scratch, &mut out);
        out
    }

    /// Ranks every vantage into `out`, reusing `scratch`'s buffers. A
    /// warm (scratch, out) pair makes this allocation-free on the
    /// serial path.
    pub fn rank_into(&self, scratch: &mut SelectionScratch, out: &mut VantageRanking) {
        self.prepare(scratch);
        self.greedy_into(scratch, out);
    }

    /// Measures the bias of collecting from `set` instead of the full
    /// population, against the actual full-vantage RIB.
    pub fn bias_of(&self, set: &VantageSet) -> BiasReport {
        let mut scratch = SelectionScratch::new();
        self.prepare(&mut scratch);
        self.bias_prepared(&mut scratch, set)
    }

    /// The smallest ranking prefix whose measured bias stays within
    /// `tolerance`, with that prefix's [`BiasReport`].
    ///
    /// `tolerance <= 0` asks for exactness and returns the full set
    /// (whose bias is zero by construction); the scan otherwise walks
    /// k = 1, 2, … and verifies each prefix against the full run, so
    /// the bound is measured, never estimated. Termination is
    /// guaranteed: the full prefix is the full population.
    pub fn select_within(
        &self,
        ranking: &VantageRanking,
        tolerance: f64,
    ) -> (VantageSet, BiasReport) {
        let total = ranking.scores.len();
        let mut scratch = SelectionScratch::new();
        self.prepare(&mut scratch);
        if total == 0 {
            return (
                VantageSet::default(),
                BiasReport::exact(0, 0, self.rib.visible_count(), scratch.link_keys.len()),
            );
        }
        if tolerance <= 0.0 {
            let set = ranking.select(total);
            let report = self.bias_prepared(&mut scratch, &set);
            return (set, report);
        }
        for k in 1..=total {
            let set = ranking.select(k);
            let report = self.bias_prepared(&mut scratch, &set);
            if report.within(tolerance) {
                return (set, report);
            }
        }
        unreachable!("full prefix has zero bias");
    }

    /// Builds the link structures: attributes every pool path to its
    /// vantage, weights it by observation references, extracts the AS
    /// links it crosses (consecutive dense-id pairs), and aggregates
    /// into global link weights plus a per-vantage CSR of distinct
    /// links. Pure integer passes over flat arrays — no hashing.
    fn prepare(&self, scratch: &mut SelectionScratch) {
        let rib = self.rib;
        let pool = rib.pool();
        let npaths = pool.len();

        scratch.vantage_slots.clear();
        scratch
            .vantage_slots
            .extend(rib.vantages.iter().enumerate().map(|(i, &v)| (v, i as u32)));
        scratch.vantage_slots.sort_unstable();

        // Pass 1: per-path owning vantage (paths run vantage → origin,
        // so the first hop is the vantage ASN).
        scratch.path_vantage.clear();
        scratch.path_vantage.resize(npaths, NO_SLOT);
        for (i, path) in pool.iter().enumerate() {
            if let Some(&first) = path.first() {
                if let Ok(pos) =
                    scratch.vantage_slots.binary_search_by_key(&first, |&(v, _)| v)
                {
                    scratch.path_vantage[i] = scratch.vantage_slots[pos].1;
                }
            }
        }

        // Pass 2: per-path observation weight (how many table entries
        // reference the interned path).
        scratch.path_weight.clear();
        scratch.path_weight.resize(npaths, 0);
        for obs in &rib.observations {
            for &id in &obs.paths {
                scratch.path_weight[id.index()] += 1;
            }
        }

        // Pass 3: link triples. A link is a directed adjacency of
        // dense ids; keys pack (a, b) into a u64 ordered like (a, b).
        let universe = pool.universe().len() as u64;
        scratch.triples.clear();
        for id in pool.ids() {
            let i = id.index();
            let vslot = scratch.path_vantage[i];
            if vslot == NO_SLOT || scratch.path_weight[i] == 0 {
                continue;
            }
            let dense = pool.dense_path(id);
            for w in dense.windows(2) {
                if w[0] != w[1] {
                    let key = w[0] as u64 * universe + w[1] as u64;
                    scratch.triples.push((key, vslot, i as u32));
                }
            }
        }
        // Dedup exact repeats (a pathological loop path crossing the
        // same link twice must count once).
        scratch.triples.sort_unstable();
        scratch.triples.dedup();

        // Distinct links, sorted: position in `link_keys` is the link
        // id the CSR and covered flags index by.
        scratch.link_keys.clear();
        scratch.link_keys.extend(scratch.triples.iter().map(|&(k, _, _)| k));
        scratch.link_keys.dedup();
        let nlinks = scratch.link_keys.len();

        scratch.link_weight.clear();
        scratch.link_weight.resize(nlinks, 0);
        scratch.packed.clear();
        {
            // Walk triples and link keys in lockstep (both sorted), so
            // link-id resolution is a merge, not a per-triple search.
            let mut l = 0usize;
            for &(key, vslot, pidx) in &scratch.triples {
                while scratch.link_keys[l] != key {
                    l += 1;
                }
                scratch.link_weight[l] += scratch.path_weight[pidx as usize];
                scratch.packed.push((vslot as u64) << 32 | l as u64);
            }
        }

        // Per-vantage CSR of distinct observed links.
        scratch.packed.sort_unstable();
        scratch.packed.dedup();
        let nv = rib.vantages.len();
        scratch.vlink_offsets.clear();
        scratch.vlink_offsets.resize(nv + 1, 0);
        scratch.vlink_ids.clear();
        for &p in &scratch.packed {
            let vslot = (p >> 32) as usize;
            scratch.vlink_offsets[vslot + 1] += 1;
            scratch.vlink_ids.push(p as u32);
        }
        for v in 0..nv {
            scratch.vlink_offsets[v + 1] += scratch.vlink_offsets[v];
        }
        scratch.prepared = true;
    }

    /// Greedy weighted set-cover over the prepared link structures.
    /// Gains are integers (observation weights) and ties break on
    /// (new-link count, RIB slot), so the order is exact and
    /// thread-invariant; fractional masses are derived afterwards.
    fn greedy_into(&self, scratch: &mut SelectionScratch, out: &mut VantageRanking) {
        debug_assert!(scratch.prepared);
        let nv = self.rib.vantages.len();
        let nlinks = scratch.link_keys.len();
        let total_weight: u64 = scratch.link_weight.iter().sum();

        out.scores.clear();
        out.rib_vantages.clear();
        out.rib_vantages.extend_from_slice(&self.rib.vantages);
        out.total_links = nlinks;
        out.total_weight = total_weight;

        scratch.covered.clear();
        scratch.covered.resize(nlinks, false);
        scratch.remaining.clear();
        scratch.remaining.extend(0..nv as u32);

        let norm = if total_weight == 0 { 1.0 } else { total_weight as f64 };
        while !scratch.remaining.is_empty() {
            // Split borrows: the evaluation closure reads the CSR and
            // covered flags while `gain_buf` collects results.
            let SelectionScratch {
                vlink_offsets, vlink_ids, link_weight, covered, remaining, gain_buf, ..
            } = scratch;
            let eval = |slot: u32| -> (u64, u32) {
                let (mut gain, mut new_links) = (0u64, 0u32);
                let lo = vlink_offsets[slot as usize] as usize;
                let hi = vlink_offsets[slot as usize + 1] as usize;
                for &l in &vlink_ids[lo..hi] {
                    if !covered[l as usize] {
                        gain += link_weight[l as usize];
                        new_links += 1;
                    }
                }
                (gain, new_links)
            };
            gain_buf.clear();
            if self.parallel.effective_threads(remaining.len()) > 1 {
                gain_buf.extend(par_map(&self.parallel, remaining, |&slot| eval(slot)));
            } else {
                gain_buf.extend(remaining.iter().map(|&slot| eval(slot)));
            }
            // Serial argmax: (gain desc, new links desc, slot asc).
            let mut best = 0usize;
            for i in 1..remaining.len() {
                let (g, n) = gain_buf[i];
                let (bg, bn) = gain_buf[best];
                if g > bg || (g == bg && (n > bn || (n == bn && remaining[i] < remaining[best])))
                {
                    best = i;
                }
            }
            let (gain, new_links) = gain_buf[best];
            let slot = remaining.swap_remove(best);
            // Keep `remaining` in ascending-slot order so candidate
            // evaluation order (and the slot tie-break above) stays
            // canonical; swap_remove perturbs it.
            remaining.sort_unstable();
            let lo = vlink_offsets[slot as usize] as usize;
            let hi = vlink_offsets[slot as usize + 1] as usize;
            let mut standalone_weight = 0u64;
            for &l in &vlink_ids[lo..hi] {
                standalone_weight += link_weight[l as usize];
                covered[l as usize] = true;
            }
            out.scores.push(VantageScore {
                vantage: self.rib.vantages[slot as usize],
                slot,
                marginal_links: new_links as usize,
                marginal_weight: gain,
                marginal_mass: gain as f64 / norm,
                standalone_links: hi - lo,
                standalone_weight,
                standalone_mass: standalone_weight as f64 / norm,
            });
        }
    }

    /// Bias of `set` over the prepared scratch: projects the full RIB
    /// onto the subset (per-pair path filtering by owning slot),
    /// accumulates both hegemony masses through the dense counter, and
    /// compares conformance shares and link coverage.
    fn bias_prepared(&self, scratch: &mut SelectionScratch, set: &VantageSet) -> BiasReport {
        debug_assert!(scratch.prepared);
        let rib = self.rib;
        let pool = rib.pool();
        let nv = rib.vantages.len();
        let nlinks = scratch.link_keys.len();
        let universe = pool.universe().len();

        scratch.sel_mark.clear();
        scratch.sel_mark.resize(nv, false);
        let mut selected = 0usize;
        for &v in set.vantages() {
            if let Ok(pos) = scratch.vantage_slots.binary_search_by_key(&v, |&(x, _)| x) {
                let slot = scratch.vantage_slots[pos].1 as usize;
                if !scratch.sel_mark[slot] {
                    scratch.sel_mark[slot] = true;
                    selected += 1;
                }
            }
        }
        if selected == nv {
            return BiasReport::exact(nv, nv, rib.visible_count(), nlinks);
        }

        scratch.mass_full.clear();
        scratch.mass_full.resize(universe, 0.0);
        scratch.mass_sel.clear();
        scratch.mass_sel.resize(universe, 0.0);

        let total_obs = rib.observations.len();
        let mut visible_sel = 0usize;
        let (mut conf_full, mut unconf_full) = (0usize, 0usize);
        let (mut conf_sel, mut unconf_sel) = (0usize, 0usize);
        for obs in &rib.observations {
            scratch.counter.accumulate_mass(pool, &obs.paths, nv, &mut scratch.mass_full);
            scratch.sel_paths.clear();
            scratch.sel_paths.extend(obs.paths.iter().copied().filter(|id| {
                let slot = scratch.path_vantage[id.index()];
                slot != NO_SLOT && scratch.sel_mark[slot as usize]
            }));
            scratch.counter.accumulate_mass(
                pool,
                &scratch.sel_paths,
                selected,
                &mut scratch.mass_sel,
            );
            let ann = obs.announcement();
            let (conformant, unconformant) =
                (ann.is_manrs_conformant(), ann.is_manrs_unconformant());
            if obs.is_visible() {
                conf_full += conformant as usize;
                unconf_full += unconformant as usize;
            }
            if !scratch.sel_paths.is_empty() {
                visible_sel += 1;
                conf_sel += conformant as usize;
                unconf_sel += unconformant as usize;
            }
        }

        // Per-AS hegemony = mean trimmed score over every pair visible
        // from the full population; the same denominator on both sides
        // makes lost visibility show up as score loss.
        let visible_full = rib.visible_count();
        let norm = visible_full.max(1) as f64;
        scratch.deltas.clear();
        for d in 0..universe {
            let (hf, hs) = (scratch.mass_full[d] / norm, scratch.mass_sel[d] / norm);
            if hf > 0.0 || hs > 0.0 {
                scratch.deltas.push((hf - hs).abs());
            }
        }
        let ases_scored = scratch.deltas.len();
        scratch.deltas.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let (mean, max, p95) = if ases_scored == 0 {
            (0.0, 0.0, 0.0)
        } else {
            let sum: f64 = scratch.deltas.iter().sum();
            let p95_idx = ((ases_scored - 1) as f64 * 0.95).floor() as usize;
            (sum / ases_scored as f64, scratch.deltas[ases_scored - 1], scratch.deltas[p95_idx])
        };

        let obs_norm = total_obs.max(1) as f64;
        let conf_drift = ((conf_full as f64 - conf_sel as f64) / obs_norm).abs();
        let unconf_drift = ((unconf_full as f64 - unconf_sel as f64) / obs_norm).abs();

        // Link coverage of the subset, straight off the CSR.
        scratch.covered.clear();
        scratch.covered.resize(nlinks, false);
        let mut covered_links = 0usize;
        for slot in 0..nv {
            if !scratch.sel_mark[slot] {
                continue;
            }
            let lo = scratch.vlink_offsets[slot] as usize;
            let hi = scratch.vlink_offsets[slot + 1] as usize;
            for &l in &scratch.vlink_ids[lo..hi] {
                if !scratch.covered[l as usize] {
                    scratch.covered[l as usize] = true;
                    covered_links += 1;
                }
            }
        }

        BiasReport {
            selected,
            total_vantages: nv,
            visible_full,
            visible_selected: visible_sel,
            ases_scored,
            hegemony_mean_abs_delta: mean,
            hegemony_max_abs_delta: max,
            hegemony_p95_abs_delta: p95,
            max_conformance_drift: conf_drift.max(unconf_drift),
            missed_links: nlinks - covered_links,
            total_links: nlinks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_bgp::{
        Announcement, CollectionStrategy, PolicyTable, TableCollector,
    };
    use manrs_irr::IrrStatus;
    use manrs_net::{Prefix, Rir};
    use manrs_rpki::RpkiStatus;
    use manrs_topology::{AsInfo, AsTopology, NetworkKind, OrgId};

    fn ann(prefix: &str, origin: u32, rpki: RpkiStatus, irr: IrrStatus) -> Announcement {
        Announcement::new(prefix.parse::<Prefix>().unwrap(), Asn(origin), rpki, irr)
    }

    /// A three-tier topology: core 1—2 (peers), each with customer
    /// subtrees. Vantages at leaves 5, 6, 7 (7 redundant with 6).
    fn topo() -> AsTopology {
        let mut t = AsTopology::new();
        for asn in 1..=7u32 {
            t.add_as(AsInfo {
                asn: Asn(asn),
                org: OrgId(asn),
                rir: Rir::Arin,
                country: "US".into(),
                kind: NetworkKind::Transit,
            });
        }
        for (c, p) in [(3, 1), (4, 2), (5, 3), (6, 4), (7, 4)] {
            t.add_provider_customer(Asn(p), Asn(c));
        }
        t.add_peer(Asn(1), Asn(2));
        t
    }

    fn announcements() -> Vec<Announcement> {
        vec![
            ann("10.0.0.0/16", 5, RpkiStatus::Valid, IrrStatus::Valid),
            ann("10.1.0.0/16", 6, RpkiStatus::Valid, IrrStatus::Valid),
            ann("10.2.0.0/16", 7, RpkiStatus::InvalidAsn, IrrStatus::InvalidAsn),
            ann("10.3.0.0/16", 3, RpkiStatus::Valid, IrrStatus::Valid),
        ]
    }

    fn rib(vantages: &[Asn]) -> CollectedRib {
        TableCollector::new(&topo(), &PolicyTable::default(), vantages)
            .parallel(ParallelConfig::serial())
            .collect(&announcements())
    }

    #[test]
    fn ranking_covers_all_vantages_once() {
        let rib = rib(&[Asn(5), Asn(6), Asn(7)]);
        let ranking = VantageSelector::new(&rib).parallel(ParallelConfig::serial()).rank();
        assert_eq!(ranking.scores.len(), 3);
        let mut slots: Vec<u32> = ranking.scores.iter().map(|s| s.slot).collect();
        slots.sort_unstable();
        assert_eq!(slots, vec![0, 1, 2]);
        assert_eq!(ranking.rib_vantages, rib.vantages);
        // Full prefix covers everything.
        assert_eq!(ranking.covered_links(3), ranking.total_links);
        assert_eq!(ranking.covered_weight(3), ranking.total_weight);
        // Marginal masses are a partition of 1.
        let mass: f64 = ranking.scores.iter().map(|s| s.marginal_mass).sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn redundant_vantage_ranks_last_with_zero_marginals() {
        // 6 and 7 hang off the same provider (4): whichever greedy
        // picks second leaves the other nearly redundant — only its
        // own first-hop links are new.
        let rib = rib(&[Asn(5), Asn(6), Asn(7)]);
        let ranking = VantageSelector::new(&rib).parallel(ParallelConfig::serial()).rank();
        let last = ranking.scores.last().unwrap();
        assert!(last.vantage == Asn(6) || last.vantage == Asn(7));
        assert!(
            last.marginal_weight < ranking.scores[0].marginal_weight,
            "redundant leaf must gain less than the first pick"
        );
    }

    #[test]
    fn select_emits_rib_order_and_projection_matches_collection() {
        let vantages = [Asn(5), Asn(6), Asn(7)];
        let rib = rib(&vantages);
        let ranking = VantageSelector::new(&rib).parallel(ParallelConfig::serial()).rank();
        for k in 0..=3 {
            let set = ranking.select(k);
            assert_eq!(set.len(), k);
            // RIB order, whatever the greedy order was.
            let order: Vec<usize> = set
                .vantages()
                .iter()
                .map(|v| vantages.iter().position(|x| x == v).unwrap())
                .collect();
            assert!(order.windows(2).all(|w| w[0] < w[1]), "{order:?}");
            // Collecting on the subset == projecting the full RIB.
            let sub = TableCollector::new(&topo(), &PolicyTable::default(), &vantages)
                .parallel(ParallelConfig::serial())
                .plan()
                .vantage_set(&set)
                .collect(&announcements());
            for (so, fo) in sub.observations.iter().zip(&rib.observations) {
                let projected: Vec<Vec<Asn>> = rib
                    .materialize_paths(fo)
                    .into_iter()
                    .filter(|p| set.contains(p[0]))
                    .collect();
                assert_eq!(sub.materialize_paths(so), projected);
            }
        }
    }

    #[test]
    fn full_set_bias_is_exactly_zero() {
        let rib = rib(&[Asn(5), Asn(6), Asn(7)]);
        let selector = VantageSelector::new(&rib).parallel(ParallelConfig::serial());
        let ranking = selector.rank();
        let report = selector.bias_of(&ranking.select(3));
        assert_eq!(report.selected, 3);
        assert_eq!(report.hegemony_max_abs_delta, 0.0);
        assert_eq!(report.max_conformance_drift, 0.0);
        assert_eq!(report.missed_links, 0);
        assert!(report.within(0.0));
    }

    #[test]
    fn dropping_a_vantage_is_measured_bias() {
        let rib = rib(&[Asn(5), Asn(6), Asn(7)]);
        let selector = VantageSelector::new(&rib).parallel(ParallelConfig::serial());
        let report = selector.bias_of(&VantageSet::new(vec![Asn(5)]));
        assert_eq!(report.selected, 1);
        assert_eq!(report.total_vantages, 3);
        assert!(report.visible_selected <= report.visible_full);
        assert!(report.hegemony_max_abs_delta > 0.0, "losing viewpoints must move scores");
        assert!(report.missed_links > 0);
        // Unknown ASNs in the set are ignored.
        let unknown = selector.bias_of(&VantageSet::new(vec![Asn(5), Asn(999)]));
        assert_eq!(unknown.selected, 1);
        assert_eq!(unknown.hegemony_max_abs_delta, report.hegemony_max_abs_delta);
    }

    #[test]
    fn select_within_zero_tolerance_returns_full_set() {
        let rib = rib(&[Asn(5), Asn(6), Asn(7)]);
        let selector = VantageSelector::new(&rib).parallel(ParallelConfig::serial());
        let ranking = selector.rank();
        let (set, report) = selector.select_within(&ranking, 0.0);
        assert_eq!(set.len(), 3);
        assert_eq!(report.hegemony_max_abs_delta, 0.0);
        assert!(report.within(0.0));
    }

    #[test]
    fn select_within_loose_tolerance_shrinks_the_set() {
        let rib = rib(&[Asn(5), Asn(6), Asn(7)]);
        let selector = VantageSelector::new(&rib).parallel(ParallelConfig::serial());
        let ranking = selector.rank();
        let (set, report) = selector.select_within(&ranking, 1.0);
        assert_eq!(set.len(), 1, "any single vantage is within tolerance 1.0");
        assert!(report.within(1.0));
        assert_eq!(report.selected, 1);
    }

    #[test]
    fn empty_vantage_list() {
        let rib = rib(&[]);
        let selector = VantageSelector::new(&rib).parallel(ParallelConfig::serial());
        let ranking = selector.rank();
        assert!(ranking.scores.is_empty());
        assert_eq!(ranking.total_links, 0);
        let (set, report) = selector.select_within(&ranking, 0.05);
        assert!(set.is_empty());
        assert!(report.within(0.0));
    }

    #[test]
    fn single_vantage() {
        let rib = rib(&[Asn(5)]);
        let selector = VantageSelector::new(&rib).parallel(ParallelConfig::serial());
        let ranking = selector.rank();
        assert_eq!(ranking.scores.len(), 1);
        assert_eq!(ranking.scores[0].marginal_links, ranking.total_links);
        let (set, report) = selector.select_within(&ranking, 0.01);
        assert_eq!(set.vantages(), &[Asn(5)]);
        assert_eq!(report.hegemony_max_abs_delta, 0.0);
    }

    #[test]
    fn empty_rib_observations() {
        let rib = TableCollector::new(&topo(), &PolicyTable::default(), &[Asn(5), Asn(6)])
            .collect(&[]);
        let selector = VantageSelector::new(&rib).parallel(ParallelConfig::serial());
        let ranking = selector.rank();
        assert_eq!(ranking.scores.len(), 2);
        assert_eq!(ranking.total_links, 0);
        assert_eq!(ranking.total_weight, 0);
        let (set, report) = selector.select_within(&ranking, 0.05);
        assert_eq!(set.len(), 1, "zero bias at any prefix; smallest wins");
        assert!(report.within(0.0));
    }

    #[test]
    fn warm_rank_into_is_stable() {
        let rib = rib(&[Asn(5), Asn(6), Asn(7)]);
        let selector = VantageSelector::new(&rib).parallel(ParallelConfig::serial());
        let mut scratch = SelectionScratch::new();
        let mut first = VantageRanking::default();
        selector.rank_into(&mut scratch, &mut first);
        let mut second = VantageRanking::default();
        selector.rank_into(&mut scratch, &mut second);
        assert_eq!(first, second);
        assert_eq!(first, selector.rank());
    }

    #[test]
    fn ranking_thread_invariant() {
        let rib = rib(&[Asn(5), Asn(6), Asn(7)]);
        let serial = VantageSelector::new(&rib).parallel(ParallelConfig::serial()).rank();
        for threads in [2, 4, 8] {
            let parallel = VantageSelector::new(&rib)
                .parallel(ParallelConfig::with_threads(threads))
                .rank();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn reverse_collection_on_selected_set_matches_projection() {
        // End-to-end: tolerance-selected set fed back through an
        // explicit-Reverse CollectionPlan reproduces the projection.
        let vantages = [Asn(5), Asn(6), Asn(7)];
        let rib = rib(&vantages);
        let selector = VantageSelector::new(&rib).parallel(ParallelConfig::serial());
        let ranking = selector.rank();
        let (set, _) = selector.select_within(&ranking, 0.5);
        let sub = TableCollector::new(&topo(), &PolicyTable::default(), &vantages)
            .parallel(ParallelConfig::serial())
            .plan()
            .strategy(CollectionStrategy::Reverse)
            .vantage_set(&set)
            .collect(&announcements());
        assert_eq!(sub.vantages, set.vantages());
        for (so, fo) in sub.observations.iter().zip(&rib.observations) {
            let projected: Vec<Vec<Asn>> = rib
                .materialize_paths(fo)
                .into_iter()
                .filter(|p| set.contains(p[0]))
                .collect();
            assert_eq!(sub.materialize_paths(so), projected);
        }
        // And Auto's cost model sees the smaller set.
        let (t, policies) = (topo(), PolicyTable::default());
        let plan = TableCollector::new(&t, &policies, &vantages).plan().vantage_set(&set);
        assert_eq!(plan.cost_report(&announcements()).vantages, set.len());
    }
}
