//! Internet Health Report analog.
//!
//! The paper consumes the IHR Route Origin Validation feed (§5.3): routed
//! (prefix, origin) pairs from RouteViews/RIS annotated with RPKI and IRR
//! statuses, each pair's transit ASes, and per-transit *AS hegemony*
//! scores. The IHR treats the origin as a trivial transit with hegemony
//! 1 and the paper splits those rows out as the *prefix-origin dataset*,
//! using the rest as the *transit dataset* — this crate reproduces both.
//!
//! * [`hegemony`] — Fontugne-style AS hegemony: the trimmed mean, over
//!   vantage points, of "is this AS on the vantage's path toward the
//!   prefix", discarding the most and least biased 10% of viewpoints.
//! * [`dataset`] — builds the two datasets from a [`CollectedRib`],
//!   carrying the relationship context (was the announcement learned
//!   from a direct customer?) that the Action 1 analysis needs.
//! * [`selection`] — vantage-point value optimization: greedy
//!   marginal-coverage ranking of a RIB's vantages, minimal-subset
//!   selection within a measured bias tolerance, and the
//!   [`BiasReport`] quantifying the subset's hegemony/conformance
//!   drift against the full-vantage ground truth.

pub mod dataset;
pub mod hegemony;
pub mod io;
pub mod selection;

pub use dataset::{build_snapshot, IhrSnapshot, PrefixOriginRecord, SnapshotIndex, TransitRecord};
pub use hegemony::{hegemony_scores, HegemonyCounter};
pub use io::{parse_snapshot, write_prefix_origins, write_transits};
pub use selection::{BiasReport, SelectionScratch, VantageRanking, VantageScore, VantageSelector};

// Re-exported so downstream analysis code can name the RIB and
// vantage-set types without depending on manrs-bgp directly.
pub use manrs_bgp::{CollectedRib, VantageSet};
