//! Property tests: RFC 6811 validation against a naive oracle, and
//! relying-party invariants.

use manrs_net::{Asn, Date, Ipv4Prefix, Prefix, Rir};
use manrs_rpki::repository::TrustAnchor;
use manrs_rpki::{validate_origin, RelyingParty, Roa, RpkiRepository, RpkiStatus, Vrp, VrpSet};
use proptest::prelude::*;

/// Small clustered prefix space so VRPs and routes actually interact.
fn prefix() -> impl Strategy<Value = Prefix> {
    (0u32..8, 8u8..=28).prop_map(|(net, len)| {
        let bits = 0x0A00_0000 | (net << 20);
        Prefix::V4(Ipv4Prefix::from_bits_truncated(bits, len).unwrap())
    })
}

fn vrp() -> impl Strategy<Value = Vrp> {
    (prefix(), 0u32..6, 0u8..=6).prop_map(|(p, asn, extra)| {
        let max_length = (p.len() + extra).min(32);
        Vrp::new(p, Asn(asn), max_length)
    })
}

/// A straight transcription of RFC 6811 §2 over a linear scan.
fn oracle(vrps: &[Vrp], prefix: &Prefix, origin: Asn) -> RpkiStatus {
    let covering: Vec<&Vrp> = vrps.iter().filter(|v| v.prefix.contains(prefix)).collect();
    if covering.is_empty() {
        return RpkiStatus::NotFound;
    }
    if covering
        .iter()
        .any(|v| !v.asn.is_zero() && v.asn == origin && prefix.len() <= v.max_length)
    {
        return RpkiStatus::Valid;
    }
    if covering.iter().any(|v| !v.asn.is_zero() && v.asn == origin) {
        RpkiStatus::InvalidLength
    } else {
        RpkiStatus::InvalidAsn
    }
}

proptest! {
    /// Trie-based validation agrees with the linear-scan oracle.
    #[test]
    fn validation_matches_oracle(
        vrps in prop::collection::vec(vrp(), 0..30),
        route in prefix(),
        origin in 0u32..6,
    ) {
        let set: VrpSet = vrps.iter().copied().collect();
        prop_assert_eq!(
            validate_origin(&set, &route, Asn(origin)),
            oracle(&vrps, &route, Asn(origin))
        );
    }

    /// A route exactly matching one of its own VRPs is always Valid
    /// (unless that VRP is AS0).
    #[test]
    fn own_vrp_validates(v in vrp()) {
        let set: VrpSet = [v].into_iter().collect();
        let status = validate_origin(&set, &v.prefix, v.asn);
        if v.asn.is_zero() {
            prop_assert_eq!(status, RpkiStatus::InvalidAsn);
        } else {
            prop_assert_eq!(status, RpkiStatus::Valid);
        }
    }

    /// Relying-party output is monotone in repository additions: adding a
    /// valid ROA never removes existing VRPs.
    #[test]
    fn rp_accepts_are_monotone(count in 1usize..10) {
        let eval = Date::ymd(2022, 5, 1);
        let mut repo = RpkiRepository::new();
        repo.install_anchor(TrustAnchor {
            rir: Rir::Arin,
            resources: vec!["10.0.0.0/8".parse().unwrap()],
        });
        let ca = repo
            .issue_ca(
                Rir::Arin,
                vec!["10.0.0.0/8".parse().unwrap()],
                Date::ymd(2020, 1, 1),
                Date::ymd(2024, 1, 1),
            )
            .unwrap();
        let mut prev = 0usize;
        for i in 0..count {
            let p: Prefix = format!("10.{}.0.0/16", i).parse().unwrap();
            repo.sign_roa(ca, Roa::exact(p, Asn(i as u32 + 1), Date::ymd(2021, 1, 1), Date::ymd(2023, 1, 1)))
                .unwrap();
            let (vrps, report) = RelyingParty::new(eval).validate(&repo);
            prop_assert!(vrps.len() > prev);
            prop_assert_eq!(report.accepted, vrps.len());
            prev = vrps.len();
        }
    }

    /// Accepted + rejected always equals examined.
    #[test]
    fn rp_report_is_consistent(
        windows in prop::collection::vec((0i64..2000, 0i64..2000), 1..20),
    ) {
        let eval = Date::ymd(2022, 5, 1);
        let mut repo = RpkiRepository::new();
        repo.install_anchor(TrustAnchor {
            rir: Rir::Arin,
            resources: vec!["10.0.0.0/8".parse().unwrap()],
        });
        let ca = repo
            .issue_ca(
                Rir::Arin,
                vec!["10.0.0.0/8".parse().unwrap()],
                Date::ymd(2015, 1, 1),
                Date::ymd(2030, 1, 1),
            )
            .unwrap();
        let base = Date::ymd(2020, 1, 1);
        for (i, (start, len)) in windows.iter().enumerate() {
            let nb = base.plus_days(*start);
            let na = nb.plus_days(*len);
            let p: Prefix = format!("10.{}.0.0/16", i % 250).parse().unwrap();
            repo.sign_roa(ca, Roa::exact(p, Asn(i as u32 + 1), nb, na)).unwrap();
        }
        let (vrps, report) = RelyingParty::new(eval).validate(&repo);
        prop_assert_eq!(report.examined, windows.len());
        prop_assert_eq!(report.accepted + report.rejected_total(), report.examined);
        prop_assert_eq!(vrps.len(), report.accepted);
    }
}
