//! Property tests: RFC 6811 validation against a naive oracle, and
//! relying-party invariants.

use manrs_net::{Asn, Date, Ipv4Prefix, Ipv6Prefix, Prefix, Rir};
use manrs_rpki::repository::TrustAnchor;
use manrs_rpki::{
    validate_origin, CompiledVrpIndex, RelyingParty, Roa, RpkiRepository, RpkiStatus, Vrp,
    VrpSet,
};
use proptest::prelude::*;

/// Small clustered prefix space so VRPs and routes actually interact.
fn prefix() -> impl Strategy<Value = Prefix> {
    (0u32..8, 8u8..=28).prop_map(|(net, len)| {
        let bits = 0x0A00_0000 | (net << 20);
        Prefix::V4(Ipv4Prefix::from_bits_truncated(bits, len).unwrap())
    })
}

/// Clustered space over both families (~25% v6, 2001:db8 subnets) so
/// the compiled index exercises both family tries and the shared arena.
fn any_prefix() -> impl Strategy<Value = Prefix> {
    (0u8..4, 0u32..8, 0u8..=20).prop_map(|(fam, net, extra)| {
        if fam == 0 {
            let bits =
                0x2001_0db8_0000_0000_0000_0000_0000_0000u128 | ((net as u128) << 88);
            Prefix::V6(Ipv6Prefix::from_bits_truncated(bits, 32 + extra).unwrap())
        } else {
            let bits = 0x0A00_0000 | (net << 20);
            Prefix::V4(Ipv4Prefix::from_bits_truncated(bits, 8 + extra).unwrap())
        }
    })
}

fn vrp() -> impl Strategy<Value = Vrp> {
    (prefix(), 0u32..6, 0u8..=6).prop_map(|(p, asn, extra)| {
        let max_length = (p.len() + extra).min(32);
        Vrp::new(p, Asn(asn), max_length)
    })
}

/// VRPs over both families; origin 0 (AS0) included deliberately.
fn vrp_any() -> impl Strategy<Value = Vrp> {
    (any_prefix(), 0u32..6, 0u8..=6).prop_map(|(p, asn, extra)| {
        let family_max = match p {
            Prefix::V4(_) => 32,
            Prefix::V6(_) => 128,
        };
        Vrp::new(p, Asn(asn), (p.len() + extra).min(family_max))
    })
}

/// A straight transcription of RFC 6811 §2 over a linear scan.
fn oracle(vrps: &[Vrp], prefix: &Prefix, origin: Asn) -> RpkiStatus {
    let covering: Vec<&Vrp> = vrps.iter().filter(|v| v.prefix.contains(prefix)).collect();
    if covering.is_empty() {
        return RpkiStatus::NotFound;
    }
    if covering
        .iter()
        .any(|v| !v.asn.is_zero() && v.asn == origin && prefix.len() <= v.max_length)
    {
        return RpkiStatus::Valid;
    }
    if covering.iter().any(|v| !v.asn.is_zero() && v.asn == origin) {
        RpkiStatus::InvalidLength
    } else {
        RpkiStatus::InvalidAsn
    }
}

proptest! {
    /// Trie-based validation agrees with the linear-scan oracle.
    #[test]
    fn validation_matches_oracle(
        vrps in prop::collection::vec(vrp(), 0..30),
        route in prefix(),
        origin in 0u32..6,
    ) {
        let set: VrpSet = vrps.iter().copied().collect();
        prop_assert_eq!(
            validate_origin(&set, &route, Asn(origin)),
            oracle(&vrps, &route, Asn(origin))
        );
    }

    /// A route exactly matching one of its own VRPs is always Valid
    /// (unless that VRP is AS0).
    #[test]
    fn own_vrp_validates(v in vrp()) {
        let set: VrpSet = [v].into_iter().collect();
        let status = validate_origin(&set, &v.prefix, v.asn);
        if v.asn.is_zero() {
            prop_assert_eq!(status, RpkiStatus::InvalidAsn);
        } else {
            prop_assert_eq!(status, RpkiStatus::Valid);
        }
    }

    /// The compiled batch engine agrees bit-for-bit with the scalar
    /// validator over mixed-family VRP sets (AS0 and duplicate prefixes
    /// included) and query batches with duplicate prefixes — including
    /// the empty set and the empty batch.
    #[test]
    fn batch_matches_scalar(
        vrps in prop::collection::vec(vrp_any(), 0..30),
        queries in prop::collection::vec((any_prefix(), 0u32..6), 0..40),
    ) {
        let set: VrpSet = vrps.iter().copied().collect();
        let index = CompiledVrpIndex::build(&set);
        let batch: Vec<(Prefix, Asn)> =
            queries.iter().map(|&(p, o)| (p, Asn(o))).collect();
        let got = index.validate_batch(&batch);
        let want: Vec<RpkiStatus> =
            batch.iter().map(|(p, o)| validate_origin(&set, p, *o)).collect();
        prop_assert_eq!(got, want);
    }

    /// Index compilation is a pure function of the VRP set: building
    /// twice (and from a clone) yields identical indexes.
    #[test]
    fn index_build_is_deterministic(vrps in prop::collection::vec(vrp_any(), 0..30)) {
        let set: VrpSet = vrps.iter().copied().collect();
        let again = set.clone();
        prop_assert_eq!(CompiledVrpIndex::build(&set), CompiledVrpIndex::build(&again));
    }

    /// Relying-party output is monotone in repository additions: adding a
    /// valid ROA never removes existing VRPs.
    #[test]
    fn rp_accepts_are_monotone(count in 1usize..10) {
        let eval = Date::ymd(2022, 5, 1);
        let mut repo = RpkiRepository::new();
        repo.install_anchor(TrustAnchor {
            rir: Rir::Arin,
            resources: vec!["10.0.0.0/8".parse().unwrap()],
        });
        let ca = repo
            .issue_ca(
                Rir::Arin,
                vec!["10.0.0.0/8".parse().unwrap()],
                Date::ymd(2020, 1, 1),
                Date::ymd(2024, 1, 1),
            )
            .unwrap();
        let mut prev = 0usize;
        for i in 0..count {
            let p: Prefix = format!("10.{}.0.0/16", i).parse().unwrap();
            repo.sign_roa(ca, Roa::exact(p, Asn(i as u32 + 1), Date::ymd(2021, 1, 1), Date::ymd(2023, 1, 1)))
                .unwrap();
            let (vrps, report) = RelyingParty::new(eval).validate(&repo);
            prop_assert!(vrps.len() > prev);
            prop_assert_eq!(report.accepted, vrps.len());
            prev = vrps.len();
        }
    }

    /// Accepted + rejected always equals examined.
    #[test]
    fn rp_report_is_consistent(
        windows in prop::collection::vec((0i64..2000, 0i64..2000), 1..20),
    ) {
        let eval = Date::ymd(2022, 5, 1);
        let mut repo = RpkiRepository::new();
        repo.install_anchor(TrustAnchor {
            rir: Rir::Arin,
            resources: vec!["10.0.0.0/8".parse().unwrap()],
        });
        let ca = repo
            .issue_ca(
                Rir::Arin,
                vec!["10.0.0.0/8".parse().unwrap()],
                Date::ymd(2015, 1, 1),
                Date::ymd(2030, 1, 1),
            )
            .unwrap();
        let base = Date::ymd(2020, 1, 1);
        for (i, (start, len)) in windows.iter().enumerate() {
            let nb = base.plus_days(*start);
            let na = nb.plus_days(*len);
            let p: Prefix = format!("10.{}.0.0/16", i % 250).parse().unwrap();
            repo.sign_roa(ca, Roa::exact(p, Asn(i as u32 + 1), nb, na)).unwrap();
        }
        let (vrps, report) = RelyingParty::new(eval).validate(&repo);
        prop_assert_eq!(report.examined, windows.len());
        prop_assert_eq!(report.accepted + report.rejected_total(), report.examined);
        prop_assert_eq!(vrps.len(), report.accepted);
    }
}
