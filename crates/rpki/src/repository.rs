//! The publication side of the RPKI: trust anchors, CA certificates, and
//! signed ROAs.
//!
//! Cryptographic signatures are simulated — what is modelled faithfully is
//! everything a relying party actually *checks* beyond the signature
//! bytes: certificate validity windows, RFC 6487 resource containment
//! (a CA may only sign ROAs for address space its own certificate holds),
//! and revocation. Those are the mechanisms behind the misconfigurations
//! the paper observes (expired ROAs, AS0 registrations, stale objects).

use crate::roa::Roa;
use manrs_net::{Date, Prefix, Rir};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a CA certificate within a repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CaId(pub u64);

/// Identifier of a signed ROA object within a repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RoaId(pub u64);

/// A CA certificate: the resources (prefixes) the subject may sign for,
/// and its validity window. Issued by an RIR trust anchor to an address
/// holder (or by the RIR on the holder's behalf — hosted RPKI).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaCertificate {
    /// The certificate's identifier.
    pub id: CaId,
    /// The trust anchor that issued it.
    pub issuer: Rir,
    /// Certified resources: the prefixes this CA may sign ROAs for.
    pub resources: Vec<Prefix>,
    /// Start of validity (inclusive).
    pub not_before: Date,
    /// End of validity (inclusive).
    pub not_after: Date,
    /// `true` once revoked by the trust anchor.
    pub revoked: bool,
}

impl CaCertificate {
    /// `true` if the certificate is usable on `date`.
    pub fn is_current(&self, date: Date) -> bool {
        !self.revoked && self.not_before <= date && date <= self.not_after
    }

    /// `true` if the certificate's resources contain `prefix`
    /// (RFC 6487 §7 resource containment).
    pub fn holds(&self, prefix: &Prefix) -> bool {
        self.resources.iter().any(|r| r.contains(prefix))
    }
}

/// A signed ROA object: a [`Roa`] payload bound to the CA that signed it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedRoa {
    /// The object's identifier.
    pub id: RoaId,
    /// The signing CA.
    pub ca: CaId,
    /// The payload.
    pub roa: Roa,
    /// `true` once revoked (withdrawn from the repository).
    pub revoked: bool,
}

/// One RIR trust anchor: the root of one of the five RPKI trees.
///
/// Its `resources` are the address space the RIR administers; every CA
/// certificate below it must stay within them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustAnchor {
    /// Which RIR this anchor belongs to.
    pub rir: Rir,
    /// The address space the RIR administers.
    pub resources: Vec<Prefix>,
}

impl TrustAnchor {
    /// `true` if the anchor administers `prefix`.
    pub fn holds(&self, prefix: &Prefix) -> bool {
        self.resources.iter().any(|r| r.contains(prefix))
    }
}

/// The global RPKI publication state: five trust anchors, the CA
/// certificates they issued, and the signed ROAs below those CAs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RpkiRepository {
    anchors: BTreeMap<Rir, TrustAnchor>,
    cas: BTreeMap<CaId, CaCertificate>,
    roas: BTreeMap<RoaId, SignedRoa>,
    next_ca: u64,
    next_roa: u64,
}

/// Errors from repository operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepositoryError {
    /// No trust anchor exists for the RIR.
    UnknownAnchor(Rir),
    /// The referenced CA does not exist.
    UnknownCa(CaId),
    /// The referenced ROA does not exist.
    UnknownRoa(RoaId),
    /// The requested resources are not held by the issuer
    /// (RFC 6487 containment violation at issuance time).
    ResourceNotHeld(Prefix),
}

impl std::fmt::Display for RepositoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepositoryError::UnknownAnchor(rir) => write!(f, "no trust anchor for {rir}"),
            RepositoryError::UnknownCa(id) => write!(f, "unknown CA certificate {}", id.0),
            RepositoryError::UnknownRoa(id) => write!(f, "unknown ROA object {}", id.0),
            RepositoryError::ResourceNotHeld(p) => {
                write!(f, "issuer does not hold resource {p}")
            }
        }
    }
}

impl std::error::Error for RepositoryError {}

impl RpkiRepository {
    /// Creates an empty repository with no trust anchors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a trust anchor (replacing any previous anchor for the RIR).
    pub fn install_anchor(&mut self, anchor: TrustAnchor) {
        self.anchors.insert(anchor.rir, anchor);
    }

    /// The trust anchor for `rir`, if installed.
    pub fn anchor(&self, rir: Rir) -> Option<&TrustAnchor> {
        self.anchors.get(&rir)
    }

    /// All installed anchors.
    pub fn anchors(&self) -> impl Iterator<Item = &TrustAnchor> {
        self.anchors.values()
    }

    /// Issues a CA certificate under `rir` for `resources`.
    ///
    /// Issuance enforces containment: the anchor must hold every requested
    /// prefix. (Relying parties re-check this at validation time, which
    /// matters once anchors or resources change after issuance.)
    pub fn issue_ca(
        &mut self,
        rir: Rir,
        resources: Vec<Prefix>,
        not_before: Date,
        not_after: Date,
    ) -> Result<CaId, RepositoryError> {
        let anchor = self.anchors.get(&rir).ok_or(RepositoryError::UnknownAnchor(rir))?;
        if let Some(outside) = resources.iter().find(|p| !anchor.holds(p)) {
            return Err(RepositoryError::ResourceNotHeld(*outside));
        }
        let id = CaId(self.next_ca);
        self.next_ca += 1;
        self.cas.insert(
            id,
            CaCertificate { id, issuer: rir, resources, not_before, not_after, revoked: false },
        );
        Ok(id)
    }

    /// Signs a ROA under CA `ca`. Containment within the CA's resources is
    /// enforced at signing time.
    pub fn sign_roa(&mut self, ca: CaId, roa: Roa) -> Result<RoaId, RepositoryError> {
        let cert = self.cas.get(&ca).ok_or(RepositoryError::UnknownCa(ca))?;
        if !cert.holds(&roa.prefix) {
            return Err(RepositoryError::ResourceNotHeld(roa.prefix));
        }
        let id = RoaId(self.next_roa);
        self.next_roa += 1;
        self.roas.insert(id, SignedRoa { id, ca, roa, revoked: false });
        Ok(id)
    }

    /// Signs a ROA without checking containment — models a misbehaving or
    /// misconfigured publication point that a relying party must reject.
    pub fn sign_roa_unchecked(&mut self, ca: CaId, roa: Roa) -> RoaId {
        let id = RoaId(self.next_roa);
        self.next_roa += 1;
        self.roas.insert(id, SignedRoa { id, ca, roa, revoked: false });
        id
    }

    /// Revokes a CA certificate (all ROAs under it become invalid to a
    /// relying party).
    pub fn revoke_ca(&mut self, ca: CaId) -> Result<(), RepositoryError> {
        self.cas.get_mut(&ca).ok_or(RepositoryError::UnknownCa(ca))?.revoked = true;
        Ok(())
    }

    /// Revokes (withdraws) a single ROA object.
    pub fn revoke_roa(&mut self, roa: RoaId) -> Result<(), RepositoryError> {
        self.roas.get_mut(&roa).ok_or(RepositoryError::UnknownRoa(roa))?.revoked = true;
        Ok(())
    }

    /// The CA certificate with the given id.
    pub fn ca(&self, id: CaId) -> Option<&CaCertificate> {
        self.cas.get(&id)
    }

    /// The signed ROA with the given id.
    pub fn roa(&self, id: RoaId) -> Option<&SignedRoa> {
        self.roas.get(&id)
    }

    /// All signed ROA objects (including revoked ones).
    pub fn roas(&self) -> impl Iterator<Item = &SignedRoa> {
        self.roas.values()
    }

    /// Number of signed, unrevoked ROA objects.
    pub fn active_roa_count(&self) -> usize {
        self.roas.values().filter(|r| !r.revoked).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_net::Asn;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn window() -> (Date, Date) {
        (Date::ymd(2020, 1, 1), Date::ymd(2024, 1, 1))
    }

    fn repo_with_arin() -> RpkiRepository {
        let mut repo = RpkiRepository::new();
        repo.install_anchor(TrustAnchor { rir: Rir::Arin, resources: vec![p("10.0.0.0/8")] });
        repo
    }

    #[test]
    fn issue_ca_enforces_containment() {
        let mut repo = repo_with_arin();
        let (nb, na) = window();
        assert!(repo.issue_ca(Rir::Arin, vec![p("10.1.0.0/16")], nb, na).is_ok());
        assert_eq!(
            repo.issue_ca(Rir::Arin, vec![p("11.0.0.0/16")], nb, na),
            Err(RepositoryError::ResourceNotHeld(p("11.0.0.0/16")))
        );
        assert_eq!(
            repo.issue_ca(Rir::Apnic, vec![p("10.1.0.0/16")], nb, na),
            Err(RepositoryError::UnknownAnchor(Rir::Apnic))
        );
    }

    #[test]
    fn sign_roa_enforces_containment() {
        let mut repo = repo_with_arin();
        let (nb, na) = window();
        let ca = repo.issue_ca(Rir::Arin, vec![p("10.1.0.0/16")], nb, na).unwrap();
        let inside = Roa::exact(p("10.1.2.0/24"), Asn(1), nb, na);
        let outside = Roa::exact(p("10.2.0.0/24"), Asn(1), nb, na);
        assert!(repo.sign_roa(ca, inside).is_ok());
        assert_eq!(
            repo.sign_roa(ca, outside),
            Err(RepositoryError::ResourceNotHeld(p("10.2.0.0/24")))
        );
        // The unchecked path records it anyway.
        let id = repo.sign_roa_unchecked(ca, outside);
        assert!(repo.roa(id).is_some());
        assert_eq!(repo.active_roa_count(), 2);
    }

    #[test]
    fn revocation() {
        let mut repo = repo_with_arin();
        let (nb, na) = window();
        let ca = repo.issue_ca(Rir::Arin, vec![p("10.1.0.0/16")], nb, na).unwrap();
        let roa = repo.sign_roa(ca, Roa::exact(p("10.1.2.0/24"), Asn(1), nb, na)).unwrap();
        repo.revoke_roa(roa).unwrap();
        assert!(repo.roa(roa).unwrap().revoked);
        assert_eq!(repo.active_roa_count(), 0);
        repo.revoke_ca(ca).unwrap();
        assert!(repo.ca(ca).unwrap().revoked);
        assert!(repo.revoke_roa(RoaId(999)).is_err());
        assert!(repo.revoke_ca(CaId(999)).is_err());
    }

    #[test]
    fn certificate_currency() {
        let (nb, na) = window();
        let cert = CaCertificate {
            id: CaId(0),
            issuer: Rir::Arin,
            resources: vec![p("10.0.0.0/8")],
            not_before: nb,
            not_after: na,
            revoked: false,
        };
        assert!(cert.is_current(Date::ymd(2022, 5, 1)));
        assert!(!cert.is_current(Date::ymd(2019, 1, 1)));
        let mut revoked = cert.clone();
        revoked.revoked = true;
        assert!(!revoked.is_current(Date::ymd(2022, 5, 1)));
    }
}
